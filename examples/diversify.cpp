// Code-layout diversity: rewriting the same binary with different seeds
// under the diversity placement strategy yields differently-laid-out but
// behaviourally identical binaries (paper Sec. III: the unconstrained
// default "naturally presents a way of realizing code layout diversity";
// cf. Binary Stirring).
//
//   $ ./examples/diversify
#include <cstdio>
#include <set>

#include "cgc/generator.h"
#include "cgc/poller.h"
#include "vm/machine.h"
#include "zipr/zipr.h"

int main() {
  using namespace zipr;

  // A generated challenge binary makes a good subject: jump tables,
  // function pointers, many functions.
  cgc::CbSpec spec;
  spec.name = "diversify-subject";
  spec.seed = 7;
  spec.handlers = 4;
  spec.filler_funcs = 10;
  spec.filler_ops = 12;
  auto cb = cgc::generate_cb(spec);
  if (!cb.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", cb.error().message.c_str());
    return 1;
  }
  auto polls = cgc::make_polls(*cb, 3, 123);

  std::printf("subject: %zu text bytes\n\n", cb->image.text().bytes.size());
  std::printf("  seed   text-prefix (first 24 bytes of rewritten text)      behaviour\n");

  std::set<Bytes> layouts;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RewriteOptions options;
    options.placement = rewriter::PlacementKind::kDiversity;
    options.seed = seed;
    auto variant = rewrite(cb->image, options);
    if (!variant.ok()) {
      std::fprintf(stderr, "rewrite failed: %s\n", variant.error().message.c_str());
      return 1;
    }
    layouts.insert(variant->image.text().bytes);

    bool functional = true;
    for (const auto& poll : polls)
      functional &= cgc::run_poll(cb->image, variant->image, poll).functional;

    Bytes prefix(variant->image.text().bytes.begin(),
                 variant->image.text().bytes.begin() + 24);
    std::printf("  %4llu   %s   %s\n", static_cast<unsigned long long>(seed),
                hex_dump(prefix).c_str(), functional ? "identical" : "DIVERGED");
  }

  std::printf("\n%zu distinct layouts from 6 seeds -- an attacker's knowledge of one\n"
              "variant's layout tells them nothing about another's.\n",
              layouts.size());
  return layouts.size() >= 5 ? 0 : 1;
}
