// A miniature Cyber Grand Challenge round: play the role of a cyber
// reasoning system. Given a previously-unseen challenge binary (no
// symbols, no source), produce a replacement CB by rewriting it with the
// full defense stack, then score it the way DARPA did: functionality
// under the pollers, file-size / execution / memory overhead against the
// budgets (20% / 5% / 5%), and resistance to a hijack exploit.
//
//   $ ./examples/cgc_pipeline
#include <cstdio>

#include "cgc/exploits.h"
#include "cgc/metrics.h"

int main() {
  using namespace zipr;

  std::printf("=== mini-CGC round ===\n\n");

  // DARPA hands the CRS a challenge binary.
  auto corpus = cgc::cfe_corpus();
  auto cb = cgc::generate_cb(corpus[54]);  // one of the larger services
  if (!cb.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", cb.error().message.c_str());
    return 1;
  }
  std::printf("challenge binary: %s, %zu bytes of machine code, no metadata\n",
              cb->spec.name.c_str(), cb->image.text().bytes.size());

  // The CRS defends it: rewrite with CFI + canaries + a fresh layout.
  cgc::EvalOptions eval;
  eval.rewrite.transforms = {"cfi", "canary"};
  eval.rewrite.seed = 0xC25;  // any per-round seed
  eval.polls = 16;
  auto metrics = cgc::evaluate_cb(*cb, eval);
  if (!metrics.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n", metrics.error().message.c_str());
    return 1;
  }

  std::printf("\nreplacement CB scorecard (budgets: size 20%%, cpu 5%%, memory 5%%):\n");
  std::printf("  functionality : %s (%zu/%zu polls)\n",
              metrics->functional ? "INTACT" : "BROKEN", metrics->polls, metrics->polls);
  auto budget = [](double v, double limit) { return v <= limit ? "within budget" : "OVER"; };
  std::printf("  file size     : %+6.2f%%  (%s)\n", metrics->filesize_overhead * 100,
              budget(metrics->filesize_overhead, 0.20));
  std::printf("  execution     : %+6.2f%%  (%s)\n", metrics->exec_overhead * 100,
              budget(metrics->exec_overhead, 0.05));
  std::printf("  memory        : %+6.2f%%  (%s)\n", metrics->mem_overhead * 100,
              budget(metrics->mem_overhead, 0.05));

  // Security check: the reference exploits against the defended corpus.
  std::printf("\nsecurity (reference exploits vs the same defense stack):\n");
  int blocked = 0;
  auto vulns = cgc::vulnerable_corpus();
  for (const auto& v : vulns) {
    RewriteOptions opts;
    opts.transforms = {"cfi", "canary"};
    auto guarded = rewrite(v.image, opts);
    if (!guarded.ok()) continue;
    auto outcome = cgc::assess(v, guarded->image);
    bool ok = outcome.benign_works && !outcome.exploit_leaked;
    blocked += ok;
    std::printf("  %-12s (%-15s): %s\n", v.name.c_str(), v.vuln_class.c_str(),
                ok ? "defended" : "NOT defended");
  }

  std::printf("\nround result: functionality %s, %d/%zu exploits blocked\n",
              metrics->functional ? "preserved" : "LOST", blocked, vulns.size());
  return metrics->functional && blocked == static_cast<int>(vulns.size()) ? 0 : 1;
}
