// Rewriting a program AND its shared library independently -- the paper's
// Apache experiment in miniature. Neither rewrite sees the other image;
// the loader binds them afterwards, and every combination (old/old,
// new/old, old/new, new/new) behaves identically because exported entry
// points are pinned.
//
//   $ ./examples/shared_library
#include <cstdio>

#include "asm/assembler.h"
#include "vm/link.h"
#include "vm/machine.h"
#include "zipr/zipr.h"

namespace {

const char* kLibrary = R"(
  ; libcheck: validates a 4-byte PIN against a stored value.
  .library
  .text
  .export check_pin
  .func check_pin
    ; r1 = candidate; returns r1 = 1 if correct else 0
    loadpc r2, stored
    cmp r1, r2
    jeq ok
    movi r1, 0
    ret
  ok:
    movi r1, 1
    ret
  .rodata
  stored: .quad 0x31337
)";

const char* kMain = R"(
  ; client: reads 8 bytes, asks the library, reports "yes"/"no".
  .entry main
  .text
  main:
    movi r0, 3
    movi r1, 0
    movi r2, buf
    movi r3, 8
    syscall
    movi r2, buf
    load r1, [r2]
    movi r6, got_check
    load r6, [r6]
    callr r6
    cmpi r1, 1
    jeq yes
    movi r2, no_msg
    jmp say
  yes:
    movi r2, yes_msg
  say:
    movi r0, 2
    movi r1, 1
    movi r3, 4
    syscall
    movi r0, 1
    movi r1, 0
    syscall
  .rodata
  yes_msg: .ascii "yes\n"
  no_msg:  .ascii "no!\n"
  .data
  .import got_check, check_pin
  .bss
  buf: .space 8
)";

zipr::Bytes pin_input(std::uint64_t v) {
  zipr::Bytes b;
  zipr::put_u64(b, v);
  return b;
}

std::string out_of(const zipr::vm::RunResult& r) {
  return std::string(r.output.begin(), r.output.end());
}

}  // namespace

int main() {
  using namespace zipr;

  auto main_img = assembler::assemble(kMain);
  assembler::Options lib_bases;
  lib_bases.text_base = 0x900000;
  lib_bases.rodata_base = 0xa00000;
  lib_bases.data_base = 0xa80000;
  lib_bases.bss_base = 0xb00000;
  auto lib_img = assembler::assemble(kLibrary, lib_bases);
  if (!main_img.ok() || !lib_img.ok()) {
    std::fprintf(stderr, "assembly failed\n");
    return 1;
  }

  // Rewrite each image in isolation with different defenses.
  RewriteOptions main_opts;
  main_opts.transforms = {"cfi"};
  auto new_main = rewrite(*main_img, main_opts);
  RewriteOptions lib_opts;
  lib_opts.transforms = {"cfi", "canary"};
  lib_opts.placement = rewriter::PlacementKind::kDiversity;
  lib_opts.seed = 7;
  auto new_lib = rewrite(*lib_img, lib_opts);
  if (!new_main.ok() || !new_lib.ok()) {
    std::fprintf(stderr, "rewrite failed\n");
    return 1;
  }
  std::printf("library rewritten alone: %zu insns lifted, exports pinned at ",
              new_lib->analysis.code_insns);
  for (const auto& e : new_lib->image.exports) std::printf("%s ", hex_addr(e.addr).c_str());
  std::printf("\n\n");

  struct Combo {
    const char* name;
    const zelf::Image* exe;
    const zelf::Image* lib;
  };
  const Combo combos[] = {
      {"original + original ", &*main_img, &*lib_img},
      {"original + rewritten", &*main_img, &new_lib->image},
      {"rewritten + original ", &new_main->image, &*lib_img},
      {"rewritten + rewritten", &new_main->image, &new_lib->image},
  };

  bool all_agree = true;
  std::printf("%-24s %-12s %-12s\n", "combination", "pin 0x31337", "pin 0xbad");
  for (const auto& combo : combos) {
    auto linked = vm::link({*combo.exe, *combo.lib});
    if (!linked.ok()) {
      std::fprintf(stderr, "link failed: %s\n", linked.error().message.c_str());
      return 1;
    }
    auto good = vm::run_linked(*linked, pin_input(0x31337));
    auto bad = vm::run_linked(*linked, pin_input(0xbad));
    std::printf("%-24s %-12s %-12s\n", combo.name,
                out_of(good).substr(0, 3).c_str(), out_of(bad).substr(0, 3).c_str());
    all_agree &= out_of(good) == "yes\n" && out_of(bad) == "no!\n";
  }

  std::printf("\n%s\n", all_agree
                            ? "every combination inter-operates: pinned exports keep the\n"
                              "library's ABI stable no matter how either side is rewritten."
                            : "ERROR: combinations diverged!");
  return all_agree ? 0 : 1;
}
