// Quickstart: assemble a program, rewrite it with Zipr (Null transform),
// and show that the rewritten binary behaves identically while containing
// no copy of the original code.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "asm/assembler.h"
#include "vm/machine.h"
#include "zelf/io.h"
#include "zipr/zipr.h"

namespace {

const char* kProgram = R"(
  ; A small service: reads bytes, replies with a running checksum.
  .entry main
  .text
  main:
    movi r4, 0              ; checksum accumulator
  loop:
    movi r0, 3              ; receive(fd=0, buf, 1)
    movi r1, 0
    movi r2, buf
    movi r3, 1
    syscall
    cmpi r0, 1
    jlt done                ; EOF
    load8 r5, [r2]
    add r4, r5
    movi r6, 0x1f
    mul r4, r6
    jmp loop
  done:
    movi r2, out
    store [r2], r4
    movi r0, 2              ; transmit(fd=1, out, 8)
    movi r1, 1
    movi r3, 8
    syscall
    movi r0, 1              ; terminate(0)
    movi r1, 0
    syscall
  .bss
  buf: .space 8
  out: .space 8
)";

}  // namespace

int main() {
  using namespace zipr;

  // 1. Build the input binary (normally you would load one from disk with
  //    zelf::load_image).
  auto original = assembler::assemble(kProgram);
  if (!original.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", original.error().message.c_str());
    return 1;
  }
  std::printf("original: %zu text bytes, %zu file bytes\n",
              original->text().bytes.size(), zelf::write_image(*original).size());

  // 2. Rewrite it. An empty transform list means the Null transform: the
  //    output is semantically identical, so every difference you see below
  //    is the cost of the rewriting machinery itself.
  RewriteOptions options;  // defaults: nearfit placement, seed 1
  auto rewritten = rewrite(*original, options);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "rewrite failed: %s\n", rewritten.error().message.c_str());
    return 1;
  }
  std::printf("rewritten: %zu text bytes, %zu file bytes (+%zu overflow)\n",
              rewritten->image.text().bytes.size(),
              zelf::write_image(rewritten->image).size(),
              static_cast<std::size_t>(rewritten->reassembly.overflow_bytes));
  std::printf("analysis:  %zu instructions lifted, %zu pins, %zu functions\n",
              rewritten->analysis.code_insns, rewritten->analysis.pins,
              rewritten->analysis.functions);
  std::printf("placement: %zu dollops, %zu splits, %zu references resolved\n",
              rewritten->reassembly.dollops_placed, rewritten->reassembly.dollop_splits,
              rewritten->reassembly.refs_resolved);

  // 3. Run both and compare behaviour.
  Bytes input{'z', 'i', 'p', 'r'};
  auto a = vm::run_program(*original, input);
  auto b = vm::run_program(rewritten->image, input);
  std::printf("\noriginal  -> exit=%lld checksum=%s (%llu insns)\n",
              static_cast<long long>(a.exit_status), hex_dump(a.output).c_str(),
              static_cast<unsigned long long>(a.stats.insns));
  std::printf("rewritten -> exit=%lld checksum=%s (%llu insns)\n",
              static_cast<long long>(b.exit_status), hex_dump(b.output).c_str(),
              static_cast<unsigned long long>(b.stats.insns));

  if (a.output != b.output || a.exit_status != b.exit_status) {
    std::printf("\nERROR: behaviour diverged!\n");
    return 1;
  }
  std::printf("\nbehaviour identical; rewritten binary keeps no copy of the original code.\n");
  return 0;
}
