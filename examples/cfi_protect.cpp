// Securing a vulnerable binary with CFI -- the paper's CGC scenario in
// miniature. A service with a function-pointer-overwrite bug is rewritten
// with the "cfi" transform; the same hijack input that compromises the
// original traps in the protected binary, while benign traffic is
// unaffected.
//
//   $ ./examples/cfi_protect
#include <cstdio>

#include "cgc/exploits.h"

namespace {

void show_run(const char* label, const zipr::vm::RunResult& r) {
  std::string out(r.output.begin(), r.output.end());
  for (auto& c : out)
    if (c == '\n') c = ' ';
  if (r.exited)
    std::printf("  %-26s exit=%lld output=\"%s\"\n", label,
                static_cast<long long>(r.exit_status), out.c_str());
  else
    std::printf("  %-26s FAULT=%s output=\"%s\"\n", label, zipr::vm::fault_name(r.fault),
                out.c_str());
}

}  // namespace

int main() {
  using namespace zipr;

  // The vulnerable service: it reads a session header straight over its
  // greeting callback, then calls through the (possibly clobbered)
  // pointer. cgc::vulnerable_corpus()[0] ships it with a working exploit.
  auto vulns = cgc::vulnerable_corpus();
  const cgc::VulnCb& cb = vulns[0];
  std::printf("subject: %s (%s)\n\n", cb.name.c_str(), cb.vuln_class.c_str());

  std::printf("unprotected original:\n");
  show_run("benign input", vm::run_program(cb.image, cb.benign_input));
  show_run("exploit input", vm::run_program(cb.image, cb.exploit_input));

  // Rewrite with control-flow integrity. The transform enumerates the
  // legitimate indirect targets found by the analysis and guards every
  // indirect transfer.
  RewriteOptions options;
  options.transforms = {"cfi"};
  auto guarded = rewrite(cb.image, options);
  if (!guarded.ok()) {
    std::fprintf(stderr, "rewrite failed: %s\n", guarded.error().message.c_str());
    return 1;
  }

  std::printf("\nafter `zipr --transform cfi`:\n");
  auto benign = vm::run_program(guarded->image, cb.benign_input);
  auto exploit = vm::run_program(guarded->image, cb.exploit_input);
  show_run("benign input", benign);
  show_run("exploit input", exploit);

  std::string leaked(exploit.output.begin(), exploit.output.end());
  bool blocked = leaked.find(cb.leak_marker) == std::string::npos;
  std::printf("\n%s\n", blocked
                            ? "exploit BLOCKED: the hijacked target is not a legitimate "
                              "indirect branch target, so the guard halts the program."
                            : "ERROR: exploit still works!");
  return blocked ? 0 : 1;
}
