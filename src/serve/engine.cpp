#include "serve/engine.h"

#include <chrono>

#include "support/log.h"
#include "zelf/io.h"
#include "zipr/options_codec.h"

namespace zipr::serve {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}
}  // namespace

const char* source_name(Source s) {
  switch (s) {
    case Source::kCold: return "cold";
    case Source::kCacheHit: return "cache-hit";
    case Source::kDeltaHit: return "delta-hit";
  }
  return "?";
}

ServeEngine::ServeEngine(ServeOptions options)
    : options_(options),
      cache_(options.cache_bytes),
      pool_(std::make_unique<batch::WorkerPool>(
          batch::effective_jobs(options.jobs, /*tasks=*/SIZE_MAX))) {
  if (!options_.cache_file.empty()) {
    // A broken persistence path degrades to a memory-only cache: the
    // service stays correct (and up) either way.
    Status attached = cache_.attach_file(options_.cache_file);
    if (!attached.ok()) {
      ZIPR_WARN << "serve: " << attached.error().message << "; running memory-only";
    }
  }
}

ServeEngine::~ServeEngine() { close(); }

void ServeEngine::close() {
  closed_.store(true, std::memory_order_release);
  // WorkerPool::shutdown drains queued tasks before joining, so every
  // accepted submit() still resolves its future.
  pool_->shutdown();
}

void ServeEngine::clear_cache() { cache_.clear(); }

Result<ServeResponse> ServeEngine::handle(ByteView input, const RewriteOptions& options) {
  Clock::time_point start = Clock::now();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }

  const std::string canonical = serialize_options(options);
  const CacheKey key = make_cache_key(input, canonical);
  const std::uint64_t odigest = options_digest(options);

  auto respond_from_artifact = [&](const Artifact& a, Source source,
                                   std::size_t changed_pages) {
    ServeResponse resp;
    resp.output = a.output;
    resp.source = source;
    resp.analysis = a.analysis;
    resp.reassembly = a.reassembly;
    resp.instrumentation = a.instrumentation;
    resp.cold_timing = a.cold_timing;
    resp.delta_changed_pages = changed_pages;
    resp.wall_ms = ms_since(start);
    return resp;
  };

  // 1. Full content-addressed hit: byte-identical input under identical
  //    canonical options. O(hash + memcmp + copy).
  if (auto hit = cache_.lookup(key, input)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.cache_hits;
    return respond_from_artifact(*hit, Source::kCacheHit, 0);
  }

  // The request missed, so the input gets parsed exactly once here: the
  // parse feeds the text digest (the delta-ancestor bucket) and, if no
  // delta lands, the cold rewrite below.
  auto fail = [&](Error e) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.failures;
    return e;
  };
  auto image = zelf::read_image(input);
  if (!image.ok()) return fail(image.error());
  const std::uint64_t tdigest = text_digest_of(*image);

  // 2. Delta path: probe same-options, same-text ancestors for a
  //    page-level diff the validator can prove equivalent.
  if (options_.enable_delta) {
    bool probed = false;
    for (const CacheKey& ck :
         cache_.recent_keys(odigest, tdigest, options_.delta_candidates)) {
      auto ancestor = cache_.peek(ck);
      if (!ancestor) continue;
      probed = true;
      std::string reason;
      // The pre-parsed overload: `input` was parsed once above; probing N
      // ancestors must not pay N more parses (that made delta probing
      // slower than the cold rewrite it replaces).
      auto delta = try_delta(ancestor->input, ancestor->output, *image, input,
                             options_.delta, &reason);
      if (!delta) continue;
      // Promote the delta result to a first-class artifact so the next
      // byte-identical submission is a full O(copy) hit.
      Artifact promoted = *ancestor;
      promoted.input.assign(input.begin(), input.end());
      promoted.output = delta->output;
      cache_.insert(key, promoted);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.delta_hits;
      }
      ServeResponse resp = respond_from_artifact(promoted, Source::kDeltaHit,
                                                 delta->changed_pages);
      return resp;
    }
    if (probed) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.delta_fallbacks;
    }
  }

  // 3. Cold path. Failures return here WITHOUT touching the cache: caching
  //    an error artifact would poison every retry of this key. The rewrite
  //    runs through a pooled workspace so repeated cold misses recycle the
  //    pipeline's transient tables (never the output: workspaces are an
  //    execution knob, identical bytes either way).
  auto lease = workspaces_.checkout();
  ExecPolicy exec;
  exec.workspace = lease.get();
  auto rewritten = rewrite(*image, options, exec);
  if (!rewritten.ok()) return fail(rewritten.error());

  Artifact artifact;
  artifact.input.assign(input.begin(), input.end());
  artifact.output = zelf::write_image(rewritten->image);
  artifact.options_text = canonical;
  artifact.options_digest = odigest;
  artifact.text_digest = tdigest;
  artifact.analysis = rewritten->analysis;
  artifact.reassembly = rewritten->reassembly;
  artifact.instrumentation = rewritten->instrumentation;
  artifact.cold_timing = rewritten->timing;
  ServeResponse resp = respond_from_artifact(artifact, Source::kCold, 0);
  cache_.insert(key, std::move(artifact));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.cold;
  }
  return resp;
}

std::future<Result<ServeResponse>> ServeEngine::submit(Bytes input, RewriteOptions options) {
  auto promise = std::make_shared<std::promise<Result<ServeResponse>>>();
  std::future<Result<ServeResponse>> future = promise->get_future();

  auto reject = [&] {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_closed;
    }
    promise->set_value(Error::unsupported("serve engine is closed"));
    return std::move(future);
  };
  if (closed_.load(std::memory_order_acquire)) return reject();

  bool accepted = pool_->submit(
      [this, promise, input = std::move(input), options = std::move(options)] {
        promise->set_value(handle(input, options));
      });
  if (!accepted) return reject();
  return future;
}

ServeStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ServeStats s = stats_;
  s.cache = cache_.stats();
  return s;
}

}  // namespace zipr::serve
