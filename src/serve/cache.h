// Content-addressed artifact cache for the rewrite service.
//
// Key = 128-bit digest of (canonical RewriteOptions text || input ZELF
// bytes). Value = the rewritten output bytes plus the stats the cold
// rewrite produced, so a warm hit reports exactly what the cold path
// reported. Two hardening properties the serve layer depends on:
//
//   * no hash trust: lookup() re-verifies the stored input bytes against
//     the request's input, so even a 128-bit collision degrades to a miss,
//     never to serving another binary's artifact;
//   * bounded memory: entries are LRU-evicted by TOTAL BYTES held (input +
//     output + bookkeeping), not entry count, so one huge binary cannot
//     silently blow the budget that a thousand small ones respect.
//
// The cache stores successful rewrites only -- the serve engine never
// inserts failures (see ServeEngine::handle), so a transient error can
// never poison future requests.
#pragma once

#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "zipr/zipr.h"

namespace zipr::serve {

struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Digest of (canonical options text, input bytes): the cache address.
CacheKey make_cache_key(ByteView input, std::string_view canonical_options);

/// Digest of a parsed image's entry point plus the bytes (and vaddr) of its
/// executable segments: the delta path's ancestor-bucket id. Inputs whose
/// text differs can never pass the delta validator, so probing is
/// restricted to same-text ancestors.
std::uint64_t text_digest_of(const zelf::Image& image);

/// One cached rewrite: everything needed to answer a repeat request and to
/// serve as a delta ancestor for a near-identical one.
struct Artifact {
  Bytes input;    ///< exact request bytes (collision check + delta diffing)
  Bytes output;   ///< serialized rewritten image (zelf::write_image form)
  /// Canonical RewriteOptions text the artifact was produced under. Stored
  /// so a persisted record can re-derive -- and therefore re-VERIFY -- its
  /// cache key from content on load instead of trusting the file.
  std::string options_text;
  std::uint64_t options_digest = 0;  ///< delta-ancestor bucket id
  /// Digest of the input's entry point and text-segment bytes (see
  /// text_digest_of). A data-only resubmission -- the delta workload --
  /// keeps its text identical, so delta-ancestor probing matches on this
  /// instead of hoping the ancestor is recent.
  std::uint64_t text_digest = 0;

  // Stats of the cold rewrite that produced `output`; replayed on hits.
  analysis::AnalysisStats analysis;
  rewriter::RewriteStats reassembly;
  transform::InstrumentationStats instrumentation;
  StageTimes cold_timing;

  std::size_t charge() const {
    return input.size() + output.size() + options_text.size() + 256;
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t oversize_skips = 0;  ///< artifact alone exceeded the budget
  std::uint64_t verify_rejects = 0;  ///< key matched, stored input did not
  std::size_t bytes = 0;             ///< currently charged bytes
  std::size_t max_bytes = 0;
};

class ArtifactCache {
 public:
  /// `max_bytes` bounds the sum of Artifact::charge() across entries.
  explicit ArtifactCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}
  ~ArtifactCache();

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Attach a persistence file: replay its surviving records into the
  /// cache (each re-verified -- checksum AND a key recomputed from the
  /// stored options text + input bytes -- so a corrupted or tampered file
  /// degrades to a smaller cache, never to a wrong answer), compact it to
  /// exactly those records, then append every future insert() to it. A
  /// missing file starts empty; an unwritable path is the only error.
  Status attach_file(const std::string& path);

  /// Drop every in-memory entry (hit/miss counters survive; the attached
  /// persistence file is NOT touched -- benchmarks use this to force cold
  /// paths without forgetting the on-disk state).
  void clear();

  /// Hit iff the key is present AND the stored input bytes equal `input`
  /// (content addressing verified, not assumed). Bumps recency.
  std::shared_ptr<const Artifact> lookup(const CacheKey& key, ByteView input);

  /// Insert (or replace) the artifact, evicting least-recently-used
  /// entries until the byte budget holds. An artifact that alone exceeds
  /// the budget is skipped (counted), never inserted half-evicted.
  void insert(const CacheKey& key, Artifact artifact);

  /// Most-recently-used keys whose artifact was produced under the same
  /// canonical options AND from an input with the same entry/text bytes
  /// (delta-ancestor candidates), capped at `limit`.
  std::vector<CacheKey> recent_keys(std::uint64_t options_digest, std::uint64_t text_digest,
                                    std::size_t limit) const;

  /// Entry by key with no input verification and no recency bump; used by
  /// the delta path to inspect ancestor candidates.
  std::shared_ptr<const Artifact> peek(const CacheKey& key) const;

  CacheStats stats() const;
  std::size_t entry_count() const;

 private:
  void evict_until_fits(std::size_t incoming);            // callers hold mu_
  void insert_locked(const CacheKey& key, Artifact artifact, bool persist);
  void append_record_locked(const CacheKey& key, const Artifact& artifact);

  struct Slot {
    std::shared_ptr<const Artifact> artifact;
    std::list<CacheKey>::iterator lru_it;
  };

  mutable std::mutex mu_;
  std::size_t max_bytes_;
  std::list<CacheKey> lru_;  ///< front = most recent
  std::unordered_map<CacheKey, Slot, CacheKeyHash> entries_;
  CacheStats stats_;
  std::FILE* persist_ = nullptr;  ///< append handle; null = memory-only
};

}  // namespace zipr::serve
