// Delta rewrite path: answer a near-identical resubmission from a cached
// ancestor without re-running the pipeline.
//
// The CI-fleet workload the serve layer exists for resubmits binaries that
// differ from a previous submission in a handful of data pages (embedded
// version strings, build ids, config blobs). For those, the ancestor's
// disassembly/IR -- and therefore its entire rewritten text -- is provably
// reusable: IR construction reads non-text segment bytes ONLY through
// 8-byte windows that are checked for "points into the text segment"
// (the data-pointer scan in analysis/disasm.cpp and jump-table slot
// reads), and the reassembled output carries every non-text segment
// through verbatim. So if
//
//   * the two inputs are structurally identical (entry, exports, imports,
//     symbols, segment table) and their text bytes match, and
//   * every 8-byte window overlapping a changed byte holds a non-code
//     pointer in BOTH versions (so the traversal fixpoint, pin set and
//     jump tables are bit-identical), and
//   * the diff spans at most `max_changed_pages` pages,
//
// then cold-rewriting the new input would reproduce the ancestor's output
// with just the changed data bytes substituted -- which is exactly what
// try_delta() emits, in O(diff) instead of O(rewrite). ANY doubt (text
// delta, a changed code-pointer-shaped word, structural drift, parse
// failure) refuses the delta and the caller falls back to the cold path,
// so the service can never emit bytes that diverge from a cold rewrite.
#pragma once

#include <optional>
#include <string>

#include "support/bytes.h"

namespace zipr::zelf {
class Image;
}

namespace zipr::serve {

struct DeltaOptions {
  /// Refuse deltas touching more pages than this: past the threshold a
  /// cold rewrite is cheap relative to the validation work.
  std::size_t max_changed_pages = 8;
};

struct DeltaResult {
  Bytes output;                   ///< byte-identical to a cold rewrite
  std::size_t changed_pages = 0;  ///< distinct pages the diff touched
};

/// Try to derive the rewrite of `new_input` from a cached ancestor
/// (`ancestor_input` -> `ancestor_output`, produced under the SAME
/// canonical options). Returns nullopt -- with a human-readable refusal in
/// `*reason` -- whenever the validator cannot prove equivalence.
std::optional<DeltaResult> try_delta(ByteView ancestor_input, ByteView ancestor_output,
                                     ByteView new_input, const DeltaOptions& options,
                                     std::string* reason);

/// Same validator, but with the resubmission already parsed (the serve
/// engine parses each miss exactly once and probes several ancestors, so
/// re-parsing `new_input` per probe would make delta probing cost more
/// than the cold rewrite it is meant to avoid). Also short-circuits on a
/// serialized-length mismatch BEFORE parsing the ancestor: structurally
/// identical inputs serialize to identical lengths, so a length delta can
/// never validate and refusing it costs two size() reads.
std::optional<DeltaResult> try_delta(ByteView ancestor_input, ByteView ancestor_output,
                                     const zelf::Image& new_img, ByteView new_input,
                                     const DeltaOptions& options, std::string* reason);

}  // namespace zipr::serve
