#include "serve/cache.h"

#include <algorithm>
#include <cstring>

namespace zipr::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// SplitMix64 finalizer: decorrelates the two key lanes so they are not
/// related by a simple multiplicative factor.
std::uint64_t avalanche(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

CacheKey make_cache_key(ByteView input, std::string_view canonical_options) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, canonical_options.data(), canonical_options.size());
  h = fnv1a(h, "\x1f", 1);  // unambiguous (options, input) boundary
  h = fnv1a(h, input.data(), input.size());
  CacheKey key;
  key.lo = h;
  key.hi = avalanche(h ^ (0x9e3779b97f4a7c15ULL + input.size()));
  return key;
}

std::uint64_t text_digest_of(const zelf::Image& image) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, &image.entry, sizeof(image.entry));
  for (const auto& seg : image.segments) {
    if (!seg.executable()) continue;
    h = fnv1a(h, &seg.vaddr, sizeof(seg.vaddr));
    h = fnv1a(h, seg.bytes.data(), seg.bytes.size());
  }
  return h;
}

std::shared_ptr<const Artifact> ArtifactCache::lookup(const CacheKey& key, ByteView input) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  const Artifact& a = *it->second.artifact;
  if (a.input.size() != input.size() ||
      (!input.empty() && std::memcmp(a.input.data(), input.data(), input.size()) != 0)) {
    ++stats_.misses;
    ++stats_.verify_rejects;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  return it->second.artifact;
}

void ArtifactCache::insert(const CacheKey& key, Artifact artifact) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t charge = artifact.charge();
  if (charge > max_bytes_) {
    ++stats_.oversize_skips;
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Replace in place (same key => same content in practice; a replace
    // still keeps the byte accounting exact).
    stats_.bytes -= it->second.artifact->charge();
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  evict_until_fits(charge);
  lru_.push_front(key);
  entries_.emplace(key, Slot{std::make_shared<const Artifact>(std::move(artifact)),
                             lru_.begin()});
  stats_.bytes += charge;
  ++stats_.insertions;
}

void ArtifactCache::evict_until_fits(std::size_t incoming) {
  while (!lru_.empty() && stats_.bytes + incoming > max_bytes_) {
    const CacheKey& victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.bytes -= it->second.artifact->charge();
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::vector<CacheKey> ArtifactCache::recent_keys(std::uint64_t options_digest,
                                                 std::uint64_t text_digest,
                                                 std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CacheKey> out;
  for (const CacheKey& key : lru_) {
    if (out.size() >= limit) break;
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.artifact->options_digest == options_digest &&
        it->second.artifact->text_digest == text_digest)
      out.push_back(key);
  }
  return out;
}

std::shared_ptr<const Artifact> ArtifactCache::peek(const CacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.artifact;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.max_bytes = max_bytes_;
  return s;
}

std::size_t ArtifactCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace zipr::serve
