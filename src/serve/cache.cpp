#include "serve/cache.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "support/log.h"

namespace zipr::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// SplitMix64 finalizer: decorrelates the two key lanes so they are not
/// related by a simple multiplicative factor.
std::uint64_t avalanche(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// ---- persistence format ----
//
// header:  magic "ZIPRACH1" | u32 version | u32 sizeof each stats struct
//          (AnalysisStats, RewriteStats, InstrumentationStats, StageTimes)
// record:  u64 checksum (fnv1a of the payload) | payload
// payload: u64 key.hi | u64 key.lo | u64 options_digest | u64 text_digest
//          | u32 options_len | u32 input_len | u32 output_len
//          | options text | input bytes | output bytes
//          | the four stats structs, memcpy'd
//
// The stats sizes in the header self-invalidate the file across struct
// layout changes: a rebuilt daemon with different stats shapes reads its
// old cache as empty instead of as garbage. Records are replayed only if
// BOTH the checksum matches AND the key recomputed from (options text,
// input bytes) equals the stored key -- the file is never trusted to name
// content it does not actually contain.

constexpr char kPersistMagic[8] = {'Z', 'I', 'P', 'R', 'A', 'C', 'H', '1'};
constexpr std::uint32_t kPersistVersion = 1;

static_assert(std::is_trivially_copyable_v<analysis::AnalysisStats>);
static_assert(std::is_trivially_copyable_v<rewriter::RewriteStats>);
static_assert(std::is_trivially_copyable_v<transform::InstrumentationStats>);
static_assert(std::is_trivially_copyable_v<StageTimes>);

void put_blob(Bytes& b, const void* p, std::size_t n) {
  const auto* bytes = static_cast<const Byte*>(p);
  b.insert(b.end(), bytes, bytes + n);
}

Bytes encode_header() {
  Bytes b;
  put_blob(b, kPersistMagic, sizeof(kPersistMagic));
  put_u32(b, kPersistVersion);
  put_u32(b, static_cast<std::uint32_t>(sizeof(analysis::AnalysisStats)));
  put_u32(b, static_cast<std::uint32_t>(sizeof(rewriter::RewriteStats)));
  put_u32(b, static_cast<std::uint32_t>(sizeof(transform::InstrumentationStats)));
  put_u32(b, static_cast<std::uint32_t>(sizeof(StageTimes)));
  return b;
}

Bytes encode_payload(const CacheKey& key, const Artifact& a) {
  Bytes b;
  put_u64(b, key.hi);
  put_u64(b, key.lo);
  put_u64(b, a.options_digest);
  put_u64(b, a.text_digest);
  put_u32(b, static_cast<std::uint32_t>(a.options_text.size()));
  put_u32(b, static_cast<std::uint32_t>(a.input.size()));
  put_u32(b, static_cast<std::uint32_t>(a.output.size()));
  put_blob(b, a.options_text.data(), a.options_text.size());
  put_blob(b, a.input.data(), a.input.size());
  put_blob(b, a.output.data(), a.output.size());
  put_blob(b, &a.analysis, sizeof(a.analysis));
  put_blob(b, &a.reassembly, sizeof(a.reassembly));
  put_blob(b, &a.instrumentation, sizeof(a.instrumentation));
  put_blob(b, &a.cold_timing, sizeof(a.cold_timing));
  return b;
}

/// Parse one record starting at `*off`. Advances `*off` past it on
/// success; false on truncation, checksum mismatch, or key mismatch --
/// the caller stops replaying there (append-only file: everything past
/// the first bad byte is suspect).
bool decode_record(ByteView file, std::size_t* off, CacheKey* key, Artifact* a) {
  std::size_t o = *off;
  // checksum + fixed fields: 8 + 32 + 12 bytes.
  if (file.size() - o < 52) return false;
  std::uint64_t checksum = get_u64(file, o);
  std::size_t payload_at = o + 8;
  key->hi = get_u64(file, o + 8);
  key->lo = get_u64(file, o + 16);
  a->options_digest = get_u64(file, o + 24);
  a->text_digest = get_u64(file, o + 32);
  std::size_t options_len = get_u32(file, o + 40);
  std::size_t input_len = get_u32(file, o + 44);
  std::size_t output_len = get_u32(file, o + 48);
  std::size_t stats_len = sizeof(a->analysis) + sizeof(a->reassembly) +
                          sizeof(a->instrumentation) + sizeof(a->cold_timing);
  std::size_t payload_len = 44 + options_len + input_len + output_len + stats_len;
  if (file.size() - payload_at < payload_len) return false;
  if (fnv1a(kFnvOffset, file.data() + payload_at, payload_len) != checksum) return false;

  std::size_t p = o + 52;
  a->options_text.assign(reinterpret_cast<const char*>(file.data() + p), options_len);
  p += options_len;
  a->input.assign(file.begin() + static_cast<std::ptrdiff_t>(p),
                  file.begin() + static_cast<std::ptrdiff_t>(p + input_len));
  p += input_len;
  a->output.assign(file.begin() + static_cast<std::ptrdiff_t>(p),
                   file.begin() + static_cast<std::ptrdiff_t>(p + output_len));
  p += output_len;
  std::memcpy(&a->analysis, file.data() + p, sizeof(a->analysis));
  p += sizeof(a->analysis);
  std::memcpy(&a->reassembly, file.data() + p, sizeof(a->reassembly));
  p += sizeof(a->reassembly);
  std::memcpy(&a->instrumentation, file.data() + p, sizeof(a->instrumentation));
  p += sizeof(a->instrumentation);
  std::memcpy(&a->cold_timing, file.data() + p, sizeof(a->cold_timing));
  p += sizeof(a->cold_timing);

  // Content re-verification: the record must name itself. A flipped byte
  // anywhere in (options, input) that survived the checksum -- or a
  // tampered key -- fails here and the record is dropped.
  CacheKey expect = make_cache_key(a->input, a->options_text);
  if (!(expect == *key)) return false;

  *off = p;
  return true;
}

Bytes read_whole_file(std::FILE* f) {
  Bytes data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    data.insert(data.end(), buf, buf + n);
  return data;
}

}  // namespace

CacheKey make_cache_key(ByteView input, std::string_view canonical_options) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, canonical_options.data(), canonical_options.size());
  h = fnv1a(h, "\x1f", 1);  // unambiguous (options, input) boundary
  h = fnv1a(h, input.data(), input.size());
  CacheKey key;
  key.lo = h;
  key.hi = avalanche(h ^ (0x9e3779b97f4a7c15ULL + input.size()));
  return key;
}

std::uint64_t text_digest_of(const zelf::Image& image) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, &image.entry, sizeof(image.entry));
  for (const auto& seg : image.segments) {
    if (!seg.executable()) continue;
    h = fnv1a(h, &seg.vaddr, sizeof(seg.vaddr));
    h = fnv1a(h, seg.bytes.data(), seg.bytes.size());
  }
  return h;
}

std::shared_ptr<const Artifact> ArtifactCache::lookup(const CacheKey& key, ByteView input) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  const Artifact& a = *it->second.artifact;
  if (a.input.size() != input.size() ||
      (!input.empty() && std::memcmp(a.input.data(), input.data(), input.size()) != 0)) {
    ++stats_.misses;
    ++stats_.verify_rejects;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  return it->second.artifact;
}

void ArtifactCache::insert(const CacheKey& key, Artifact artifact) {
  std::lock_guard<std::mutex> lock(mu_);
  insert_locked(key, std::move(artifact), /*persist=*/true);
}

void ArtifactCache::insert_locked(const CacheKey& key, Artifact artifact, bool persist) {
  std::size_t charge = artifact.charge();
  if (charge > max_bytes_) {
    ++stats_.oversize_skips;
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Replace in place (same key => same content in practice; a replace
    // still keeps the byte accounting exact).
    stats_.bytes -= it->second.artifact->charge();
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  evict_until_fits(charge);
  lru_.push_front(key);
  auto slot = entries_.emplace(key, Slot{std::make_shared<const Artifact>(std::move(artifact)),
                                         lru_.begin()});
  stats_.bytes += charge;
  ++stats_.insertions;
  // Spill AFTER the in-memory insert so the record written is exactly what
  // a hit would serve. Replayed records pass persist=false: re-appending
  // them on attach would double the file every restart.
  if (persist) append_record_locked(key, *slot.first->second.artifact);
}

void ArtifactCache::append_record_locked(const CacheKey& key, const Artifact& artifact) {
  if (persist_ == nullptr) return;
  Bytes payload = encode_payload(key, artifact);
  Bytes record;
  put_u64(record, fnv1a(kFnvOffset, payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  if (std::fwrite(record.data(), 1, record.size(), persist_) != record.size() ||
      std::fflush(persist_) != 0) {
    // Disk trouble must not take the service down; keep serving from
    // memory and stop spilling (the file ends at the last good record,
    // which is exactly the state reload recovers).
    ZIPR_WARN << "artifact cache: persist append failed; disabling spill";
    std::fclose(persist_);
    persist_ = nullptr;
  }
}

ArtifactCache::~ArtifactCache() {
  if (persist_ != nullptr) std::fclose(persist_);
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  stats_.bytes = 0;
}

Status ArtifactCache::attach_file(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (persist_ != nullptr) {
    std::fclose(persist_);
    persist_ = nullptr;
  }

  // Replay: collect every record that survives verification, stopping at
  // the first bad byte (append-only file; the tail past damage is suspect).
  std::vector<std::pair<CacheKey, Artifact>> good;
  if (std::FILE* in = std::fopen(path.c_str(), "rb")) {
    Bytes data = read_whole_file(in);
    std::fclose(in);
    const Bytes header = encode_header();
    if (data.size() >= header.size() &&
        std::memcmp(data.data(), header.data(), header.size()) == 0) {
      std::size_t off = header.size();
      CacheKey key;
      Artifact a;
      while (off < data.size() && decode_record(data, &off, &key, &a))
        good.emplace_back(key, std::move(a));
      if (off != data.size()) {
        ZIPR_WARN << "artifact cache: dropping corrupt tail of " << path << " ("
                  << (data.size() - off) << " bytes)";
      }
    } else if (!data.empty()) {
      ZIPR_WARN << "artifact cache: " << path
                << " has a foreign or stale header; starting empty";
    }
  }

  // Compact: rewrite the file to exactly the surviving records. This both
  // truncates corruption and garbage-collects superseded duplicates from
  // earlier runs, so the file cannot grow without bound across restarts.
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr)
    return Error::invalid_argument("artifact cache: cannot open " + path + " for writing");
  const Bytes header = encode_header();
  bool ok = std::fwrite(header.data(), 1, header.size(), out) == header.size();
  persist_ = out;
  for (auto& [key, artifact] : good) {
    // Oldest-first replay: later records land at the front of the LRU,
    // reproducing the recency order of the previous run's inserts.
    insert_locked(key, std::move(artifact), /*persist=*/ok);
  }
  if (!ok) {
    std::fclose(persist_);
    persist_ = nullptr;
    return Error::invalid_argument("artifact cache: cannot write header to " + path);
  }
  if (std::fflush(persist_) != 0) {
    ZIPR_WARN << "artifact cache: flush of compacted " << path << " failed";
  }
  return Status::success();
}

void ArtifactCache::evict_until_fits(std::size_t incoming) {
  while (!lru_.empty() && stats_.bytes + incoming > max_bytes_) {
    const CacheKey& victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.bytes -= it->second.artifact->charge();
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::vector<CacheKey> ArtifactCache::recent_keys(std::uint64_t options_digest,
                                                 std::uint64_t text_digest,
                                                 std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CacheKey> out;
  for (const CacheKey& key : lru_) {
    if (out.size() >= limit) break;
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.artifact->options_digest == options_digest &&
        it->second.artifact->text_digest == text_digest)
      out.push_back(key);
  }
  return out;
}

std::shared_ptr<const Artifact> ArtifactCache::peek(const CacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.artifact;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.max_bytes = max_bytes_;
  return s;
}

std::size_t ArtifactCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace zipr::serve
