// ServeEngine: the rewriter as a long-running service.
//
// One engine owns the artifact cache and a batch::WorkerPool; requests
// enter either synchronously (handle(), on the calling thread -- the
// deterministic reference path) or asynchronously (submit(), returning a
// future resolved by a pool worker). Request flow:
//
//   digest(input x canonical options) --> cache hit?   O(memcmp + copy)
//                                     --> delta hit?   O(page diff)
//                                     --> cold rewrite, cache on SUCCESS
//
// Failure paths never touch the cache: a malformed input or failing
// transform yields an error response and leaves the cache exactly as it
// was, so a retry after a transient condition re-runs cold (tested).
// close() stops admission and drains in-flight jobs; the destructor does
// the same, so futures handed out are always eventually resolved.
#pragma once

#include <atomic>
#include <future>
#include <memory>

#include "batch/worker_pool.h"
#include "serve/cache.h"
#include "serve/delta.h"
#include "zipr/workspace.h"
#include "zipr/zipr.h"

namespace zipr::serve {

struct ServeOptions {
  /// Pool workers for submit(); <= 0 means hardware concurrency.
  int jobs = 1;
  /// Artifact-cache budget (input + output bytes across entries).
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Delta path on/off plus its page threshold.
  bool enable_delta = true;
  DeltaOptions delta;
  /// How many same-options ancestors a miss probes before going cold.
  std::size_t delta_candidates = 8;
  /// Artifact-cache persistence file. Non-empty: previously cached
  /// artifacts are replayed (re-verified) at startup and every new insert
  /// is appended, so a restarted daemon answers repeat requests as
  /// byte-identical cache hits. Empty: memory-only.
  std::string cache_file;
};

enum class Source : std::uint8_t {
  kCold = 0,      ///< full pipeline ran
  kCacheHit = 1,  ///< byte-for-byte repeat served from the cache
  kDeltaHit = 2,  ///< derived from a near-identical cached ancestor
};

const char* source_name(Source s);

struct ServeResponse {
  Bytes output;  ///< serialized rewritten image
  Source source = Source::kCold;

  /// Stats of the rewrite that produced these bytes. For kCacheHit and
  /// kDeltaHit these replay the ORIGINAL cold rewrite's stats (cached with
  /// the artifact), so clients see consistent numbers either way.
  analysis::AnalysisStats analysis;
  rewriter::RewriteStats reassembly;
  transform::InstrumentationStats instrumentation;
  StageTimes cold_timing;

  double wall_ms = 0;  ///< time THIS request took inside the engine
  std::size_t delta_changed_pages = 0;  ///< kDeltaHit only
};

struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t cold = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t delta_hits = 0;
  std::uint64_t delta_fallbacks = 0;  ///< candidates probed, all refused
  std::uint64_t failures = 0;
  std::uint64_t rejected_closed = 0;  ///< submits after close()
  CacheStats cache;
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeOptions options = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Serve one request on the calling thread.
  Result<ServeResponse> handle(ByteView input, const RewriteOptions& options);

  /// Enqueue a request on the pool. The future always resolves: with the
  /// response, the rewrite error, or an "engine closed" error when the
  /// engine shut down before the job could be accepted.
  std::future<Result<ServeResponse>> submit(Bytes input, RewriteOptions options);

  /// Stop admitting work and drain in-flight jobs (idempotent).
  void close();

  /// Drop every in-memory cache entry (the persistence file, if any, is
  /// untouched). Benchmarks use this to re-run the cold path on a warm
  /// process -- with the recycled workspaces still warm.
  void clear_cache();

  ServeStats stats() const;
  const ServeOptions& options() const { return options_; }

 private:
  ServeOptions options_;
  ArtifactCache cache_;
  /// Recycled per-worker rewrite workspaces: a cold request checks one
  /// out for the pipeline call, so steady-state cold rewrites reuse the
  /// previous request's transient tables instead of re-faulting them.
  WorkspacePool workspaces_;
  std::atomic<bool> closed_{false};
  std::unique_ptr<batch::WorkerPool> pool_;

  mutable std::mutex stats_mu_;
  ServeStats stats_;
};

}  // namespace zipr::serve
