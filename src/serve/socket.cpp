#include "serve/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/log.h"
#include "zipr/options_codec.h"

namespace zipr::serve {

namespace {

constexpr std::uint32_t kRequestMagic = 0x3151535AU;   // 'ZSQ1' little-endian
constexpr std::uint32_t kResponseMagic = 0x3150535AU;  // 'ZSP1' little-endian

Error sys_error(const std::string& what) {
  return Error::internal(what + ": " + std::strerror(errno));
}

/// Full-buffer read/write with EINTR retry; short end-of-stream is an error.
Status read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  while (n > 0) {
    ssize_t got = ::read(fd, p, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return sys_error("socket read");
    }
    if (got == 0) return Error::parse("socket closed mid-frame");
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return {};
}

Status write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  while (n > 0) {
    ssize_t put = ::write(fd, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return sys_error("socket write");
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return {};
}

struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

Status fill_sockaddr(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr->sun_path))
    return Error::invalid_argument("socket path empty or too long: '" + path + "'");
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return {};
}

Status send_response(int fd, bool ok, Source source, Error::Kind kind, double wall_ms,
                     ByteView payload) {
  Bytes frame;
  put_u32(frame, kResponseMagic);
  put_u8(frame, ok ? 1 : 0);
  put_u8(frame, static_cast<std::uint8_t>(source));
  put_u8(frame, static_cast<std::uint8_t>(kind));
  put_u8(frame, 0);
  std::uint64_t wall_bits;
  std::memcpy(&wall_bits, &wall_ms, sizeof wall_bits);
  put_u64(frame, wall_bits);
  put_u64(frame, payload.size());
  put_bytes(frame, payload);
  return write_exact(fd, frame.data(), frame.size());
}

Status send_error(int fd, const Error& e) {
  const auto* msg = reinterpret_cast<const Byte*>(e.message.data());
  return send_response(fd, false, Source::kCold, e.kind, 0.0,
                       ByteView(msg, e.message.size()));
}

/// One request/response exchange. Frame-level failures are returned (the
/// connection is dead); engine-level failures are answered in-band.
Status serve_connection(ServeEngine& engine, int fd, std::uint64_t max_request_bytes) {
  std::uint8_t header[4 + 4 + 8];
  ZIPR_TRY(read_exact(fd, header, sizeof header));
  ByteView hv(header, sizeof header);
  if (get_u32(hv, 0) != kRequestMagic) {
    (void)send_error(fd, Error::parse("bad request magic"));
    return Error::parse("bad request magic");
  }
  std::uint64_t options_len = get_u32(hv, 4);
  std::uint64_t input_len = get_u64(hv, 8);
  if (input_len > max_request_bytes || options_len + input_len > max_request_bytes) {
    Error e = Error::invalid_argument("request exceeds max_request_bytes");
    (void)send_error(fd, e);
    return e;
  }

  std::string options_text(options_len, '\0');
  ZIPR_TRY(read_exact(fd, options_text.data(), options_text.size()));
  Bytes input(static_cast<std::size_t>(input_len));
  ZIPR_TRY(read_exact(fd, input.data(), input.size()));

  auto options = parse_options(options_text);
  if (!options.ok()) return send_error(fd, options.error());

  auto response = engine.handle(input, *options);
  if (!response.ok()) return send_error(fd, response.error());
  return send_response(fd, true, response->source, Error::Kind::kInternal,
                       response->wall_ms, response->output);
}

}  // namespace

Status serve_on_socket(ServeEngine& engine, const SocketServerOptions& options) {
  sockaddr_un addr;
  ZIPR_TRY(fill_sockaddr(options.path, &addr));

  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return sys_error("socket");
  FdCloser listen_closer{listen_fd};

  ::unlink(options.path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    return sys_error("bind " + options.path);
  if (::listen(listen_fd, options.backlog) < 0) return sys_error("listen");

  for (long served = 0; options.max_requests < 0 || served < options.max_requests;
       ++served) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        --served;
        continue;
      }
      return sys_error("accept");
    }
    FdCloser conn_closer{fd};
    Status st = serve_connection(engine, fd, options.max_request_bytes);
    if (!st.ok()) {
      ZIPR_WARN << "serve: connection failed: " << st.error().message;
    }
  }
  ::unlink(options.path.c_str());
  return {};
}

Result<SubmitReply> submit_over_socket(const std::string& path, ByteView input,
                                       const RewriteOptions& options) {
  sockaddr_un addr;
  ZIPR_TRY(fill_sockaddr(path, &addr));

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return sys_error("socket");
  FdCloser closer{fd};
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    return sys_error("connect " + path);

  std::string options_text = serialize_options(options);
  Bytes frame;
  put_u32(frame, kRequestMagic);
  put_u32(frame, static_cast<std::uint32_t>(options_text.size()));
  put_u64(frame, input.size());
  frame.insert(frame.end(), options_text.begin(), options_text.end());
  put_bytes(frame, input);
  ZIPR_TRY(write_exact(fd, frame.data(), frame.size()));

  std::uint8_t header[4 + 1 + 1 + 1 + 1 + 8 + 8];
  ZIPR_TRY(read_exact(fd, header, sizeof header));
  ByteView hv(header, sizeof header);
  if (get_u32(hv, 0) != kResponseMagic) return Error::parse("bad response magic");
  bool ok = header[4] == 1;
  auto source = static_cast<Source>(header[5]);
  auto kind = static_cast<Error::Kind>(header[6]);
  std::uint64_t wall_bits = get_u64(hv, 8);
  std::uint64_t payload_len = get_u64(hv, 16);
  if (payload_len > (std::uint64_t{1} << 31))
    return Error::parse("implausible response payload length");

  Bytes payload(static_cast<std::size_t>(payload_len));
  ZIPR_TRY(read_exact(fd, payload.data(), payload.size()));

  if (!ok)
    return Error(kind, "server: " + std::string(payload.begin(), payload.end()));

  SubmitReply reply;
  reply.output = std::move(payload);
  reply.source = source;
  std::memcpy(&reply.wall_ms, &wall_bits, sizeof reply.wall_ms);
  return reply;
}

}  // namespace zipr::serve
