#include "serve/delta.h"

#include <cstring>
#include <set>

#include "zelf/image.h"
#include "zelf/io.h"

namespace zipr::serve {

namespace {

bool same_symbols(const zelf::Image& a, const zelf::Image& b) {
  if (a.symbols.size() != b.symbols.size()) return false;
  for (std::size_t i = 0; i < a.symbols.size(); ++i) {
    const auto& x = a.symbols[i];
    const auto& y = b.symbols[i];
    if (x.kind != y.kind || x.addr != y.addr || x.size != y.size || x.name != y.name)
      return false;
  }
  return true;
}

bool same_abi_surface(const zelf::Image& a, const zelf::Image& b) {
  if (a.exports.size() != b.exports.size() || a.imports.size() != b.imports.size())
    return false;
  for (std::size_t i = 0; i < a.exports.size(); ++i)
    if (a.exports[i].name != b.exports[i].name || a.exports[i].addr != b.exports[i].addr)
      return false;
  for (std::size_t i = 0; i < a.imports.size(); ++i)
    if (a.imports[i].name != b.imports[i].name || a.imports[i].slot != b.imports[i].slot)
      return false;
  return true;
}

bool same_segment_shape(const zelf::Segment& a, const zelf::Segment& b) {
  return a.kind == b.kind && a.vaddr == b.vaddr && a.memsize == b.memsize &&
         a.bytes.size() == b.bytes.size();
}

}  // namespace

std::optional<DeltaResult> try_delta(ByteView ancestor_input, ByteView ancestor_output,
                                     ByteView new_input, const DeltaOptions& options,
                                     std::string* reason) {
  auto parsed = zelf::read_image(new_input);
  if (!parsed.ok()) {
    if (reason) *reason = "input does not parse";
    return std::nullopt;
  }
  return try_delta(ancestor_input, ancestor_output, *parsed, new_input, options, reason);
}

std::optional<DeltaResult> try_delta(ByteView ancestor_input, ByteView ancestor_output,
                                     const zelf::Image& new_image, ByteView new_input,
                                     const DeltaOptions& options, std::string* reason) {
  auto refuse = [&](std::string why) -> std::optional<DeltaResult> {
    if (reason) *reason = std::move(why);
    return std::nullopt;
  };

  // Cheapest prefilter first: every structural check below implies the two
  // inputs serialize to the same length, so a length mismatch can never
  // validate -- refuse it before paying the ancestor parse.
  if (ancestor_input.size() != new_input.size())
    return refuse("serialized sizes differ");

  auto old_img = zelf::read_image(ancestor_input);
  if (!old_img.ok()) return refuse("input does not parse");
  const zelf::Image* new_img = &new_image;

  if (old_img->entry != new_img->entry || old_img->library != new_img->library)
    return refuse("entry/library mismatch");
  if (!same_abi_surface(*old_img, *new_img)) return refuse("exports/imports differ");
  // Symbols are invisible to the rewriter but ARE serialized into the
  // output; patching only segment bytes requires them identical.
  if (!same_symbols(*old_img, *new_img)) return refuse("symbol table differs");
  if (old_img->segments.size() != new_img->segments.size())
    return refuse("segment count differs");

  // The conservative "looks like a code pointer" test: anything in
  // [text.vaddr, text.end()) in EITHER version. This is a superset of both
  // reader checks in IR construction (the data scan tests against the
  // text file-byte range, jump-table slots against memsize), so a word
  // that passes here is invisible to analysis in both versions.
  const zelf::Segment* old_text = nullptr;
  for (const auto& seg : old_img->segments)
    if (seg.executable()) old_text = &seg;
  if (old_text == nullptr) return refuse("no text segment");
  const std::uint64_t text_lo = old_text->vaddr;
  const std::uint64_t text_hi = old_text->end();
  auto code_pointer_shaped = [&](std::uint64_t v) { return v >= text_lo && v < text_hi; };

  std::set<std::uint64_t> changed_pages;
  struct Patch {
    std::size_t seg_index;
    std::size_t lo, hi;  ///< changed byte range within the segment
  };
  std::vector<Patch> patches;

  for (std::size_t si = 0; si < old_img->segments.size(); ++si) {
    const zelf::Segment& a = old_img->segments[si];
    const zelf::Segment& b = new_img->segments[si];
    if (!same_segment_shape(a, b)) return refuse("segment table differs");
    if (a.bytes == b.bytes) continue;
    if (a.executable()) return refuse("text bytes differ");

    // Locate the changed region (single [lo,hi) envelope per segment; the
    // per-window validation below only inspects actually-changed words).
    std::size_t lo = 0;
    while (lo < a.bytes.size() && a.bytes[lo] == b.bytes[lo]) ++lo;
    std::size_t hi = a.bytes.size();
    while (hi > lo && a.bytes[hi - 1] == b.bytes[hi - 1]) --hi;

    for (std::size_t off = lo; off < hi; ++off)
      if (a.bytes[off] != b.bytes[off])
        changed_pages.insert((a.vaddr + off) / zelf::layout::kPageSize);
    if (changed_pages.size() > options.max_changed_pages)
      return refuse("diff spans too many pages");

    // Validate every 8-byte window -- at EVERY byte alignment, since
    // jump-table bases come from code immediates and need not be aligned
    // -- that overlaps a changed byte: a differing window may not look
    // like a code pointer in either version, or analysis could see it.
    std::size_t w_begin = lo >= 7 ? lo - 7 : 0;
    std::size_t w_end = std::min(a.bytes.size(), hi + 7);
    for (std::size_t w = w_begin; w + 8 <= w_end; ++w) {
      std::uint64_t ov = get_u64(a.bytes, w);
      std::uint64_t nv = get_u64(b.bytes, w);
      if (ov == nv) continue;
      if (code_pointer_shaped(ov) || code_pointer_shaped(nv))
        return refuse("changed word is code-pointer shaped");
    }
    patches.push_back({si, lo, hi});
  }

  if (patches.empty()) return refuse("inputs are identical (full cache hit territory)");

  // Splice the changed data bytes into the ancestor's OUTPUT: the rewriter
  // copies every non-text input segment through unmodified, so the cold
  // rewrite of new_input equals ancestor_output with these bytes swapped.
  auto out_img = zelf::read_image(ancestor_output);
  if (!out_img.ok()) return refuse("cached output does not parse");
  for (const Patch& p : patches) {
    const zelf::Segment& src = new_img->segments[p.seg_index];
    zelf::Segment* dst = nullptr;
    for (auto& seg : out_img->segments)
      if (seg.vaddr == src.vaddr && !seg.executable()) dst = &seg;
    if (dst == nullptr || dst->bytes.size() != src.bytes.size() || dst->kind != src.kind)
      return refuse("output segment shape drifted");
    std::memcpy(dst->bytes.data() + p.lo, src.bytes.data() + p.lo, p.hi - p.lo);
  }

  DeltaResult result;
  result.output = zelf::write_image(*out_img);
  result.changed_pages = changed_pages.size();
  return result;
}

}  // namespace zipr::serve
