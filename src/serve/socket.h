// zipr-serve wire protocol over a local Unix-domain stream socket.
//
// One connection carries one request/response exchange (the CLI `submit`
// subcommand opens a fresh connection per job; amortizing connections is
// not worth protocol state at local-socket latencies). All integers are
// little-endian. Options travel in their canonical text form (see
// zipr/options_codec.h) -- the exact string the cache key hashes, so the
// client and server can never disagree about which configuration a job
// names.
//
//   request:  u32 magic 'ZSQ1' | u32 options_len | u64 input_len
//             | options text | input ZELF bytes
//   response: u32 magic 'ZSP1' | u8 ok | u8 source | u8 error_kind | u8 0
//             | f64 wall_ms | u64 payload_len | payload
//             (payload = output image bytes when ok, error text when not)
//
// Malformed frames, oversized lengths and short reads produce checked
// errors on both ends; the server survives any client and keeps serving.
#pragma once

#include <string>

#include "serve/engine.h"

namespace zipr::serve {

struct SocketServerOptions {
  std::string path;       ///< filesystem path to bind (unlinked first)
  int backlog = 16;
  /// Serve exactly this many requests then return; < 0 = run until the
  /// process dies. Tests and the smoke harness use a finite count.
  long max_requests = -1;
  /// Refuse request frames larger than this (options + input).
  std::uint64_t max_request_bytes = std::uint64_t{1} << 30;
};

/// Bind `options.path` and serve requests against `engine` on the calling
/// thread. Returns after max_requests exchanges (or on a fatal socket
/// error); per-connection failures are answered in-band and never abort
/// the loop.
Status serve_on_socket(ServeEngine& engine, const SocketServerOptions& options);

struct SubmitReply {
  Bytes output;
  Source source = Source::kCold;
  double wall_ms = 0;
};

/// Client side: send one rewrite job to a serve_on_socket() server.
Result<SubmitReply> submit_over_socket(const std::string& path, ByteView input,
                                       const RewriteOptions& options);

}  // namespace zipr::serve
