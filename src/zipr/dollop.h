// Dollops: linear sequences of instructions linked by fallthroughs
// (paper Sec. II-C1), and their manager.
//
// The DollopManager owns every not-yet-placed dollop, supports retrieving
// the dollop containing an instruction (splitting when the instruction is
// mid-dollop, as happens with shared code and jumps into loop bodies), and
// supports size-driven splitting so large dollops can fill small free
// blocks (Sec. II-C4).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "irdb/ir.h"

namespace zipr::rewriter {

/// Conservative (rel32-width) encoded size of one row when relocated.
std::uint64_t estimated_size(const irdb::Instruction& row);

struct Dollop {
  std::vector<irdb::InsnId> insns;

  /// If set, execution continues at this instruction after the last row:
  /// the dollop was truncated (by a split or by flowing into code that is
  /// already placed elsewhere) and a trailing jump must be emitted.
  irdb::InsnId continuation = irdb::kNullInsn;

  /// Conservative byte size if emitted now (instructions at rel32 widths
  /// plus a 5-byte continuation jump when present).
  std::uint64_t size_estimate = 0;

  /// Position in the owning DollopManager's list (maintained by the
  /// manager; lets retire() swap-erase in O(1)).
  std::size_t slot = 0;
};

class DollopManager {
 public:
  explicit DollopManager(const irdb::Database& db) : db_(db) {
    // Nearly every row passes through the index once; size it up front so
    // the resolution loop never rehashes.
    where_.reserve(db.insn_count());
  }

  /// The unplaced dollop that STARTS at `insn`, constructing or splitting
  /// as needed. Returns nullptr if `insn` is already placed (per
  /// `is_placed`) -- callers resolve against the placement map instead.
  ///
  /// Construction walks fallthrough links, stopping when an instruction is
  /// already placed or already owned by another dollop (the new dollop
  /// gains a continuation to it).
  template <typename IsPlacedFn>
  Dollop* dollop_starting_at(irdb::InsnId insn, IsPlacedFn&& is_placed) {
    if (is_placed(insn)) return nullptr;
    auto it = where_.find(insn);
    if (it != where_.end()) {
      Dollop* d = it->second.dollop;
      std::size_t pos = it->second.index;
      if (pos == 0) return d;
      return split(d, pos);
    }
    return construct(insn, is_placed);
  }

  /// Split `d` so that its first part is at most `max_bytes` long
  /// (including the 5-byte continuation jump the split adds). Returns the
  /// new dollop holding the tail, or nullptr if no viable split point
  /// exists (the first instruction + jump already exceed `max_bytes`).
  Dollop* split_to_fit(Dollop* d, std::uint64_t max_bytes);

  /// Remove a dollop that has been fully emitted. O(1) in the number of
  /// live dollops (swap-erase through the dollop's stored slot). Retiring a
  /// dollop the manager does not own -- including a double retire -- is an
  /// internal error and leaves the manager untouched.
  Status retire(Dollop* d);

  std::size_t unplaced_count() const { return dollops_.size(); }
  std::size_t total_splits() const { return splits_; }

 private:
  struct Location {
    Dollop* dollop;
    std::size_t index;
  };

  template <typename IsPlacedFn>
  Dollop* construct(irdb::InsnId start, IsPlacedFn&& is_placed) {
    auto d = std::make_unique<Dollop>();
    irdb::InsnId cur = start;
    while (cur != irdb::kNullInsn) {
      if (is_placed(cur) || where_.find(cur) != where_.end()) {
        d->continuation = cur;
        break;
      }
      d->insns.push_back(cur);
      cur = db_.insn(cur).fallthrough;
    }
    index(d.get());
    recompute(d.get());
    Dollop* out = d.get();
    adopt(std::move(d));
    return out;
  }

  /// Split `d` at instruction index `pos` (tail begins at pos).
  Dollop* split(Dollop* d, std::size_t pos);

  /// Take ownership of a dollop, recording its list slot.
  void adopt(std::unique_ptr<Dollop> d) {
    d->slot = dollops_.size();
    dollops_.push_back(std::move(d));
  }

  void index(Dollop* d);
  void recompute(Dollop* d);

  const irdb::Database& db_;
  std::vector<std::unique_ptr<Dollop>> dollops_;
  std::unordered_map<irdb::InsnId, Location> where_;
  std::size_t splits_ = 0;
};

}  // namespace zipr::rewriter
