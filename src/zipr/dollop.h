// Dollops: linear sequences of instructions linked by fallthroughs
// (paper Sec. II-C1), and their manager.
//
// The DollopManager owns every not-yet-placed dollop, supports retrieving
// the dollop containing an instruction (splitting when the instruction is
// mid-dollop, as happens with shared code and jumps into loop bodies), and
// supports size-driven splitting so large dollops can fill small free
// blocks (Sec. II-C4).
//
// Dollop nodes and their instruction lists live in a MonotonicArena whose
// lifetime is the enclosing rewrite: construction is a pointer bump, retire
// is O(insns) index clears (the node's bytes are reclaimed wholesale when
// the arena resets), and the instruction->dollop index is a flat array over
// row ids rather than a hash map.
#pragma once

#include <cstdint>
#include <vector>

#include "irdb/ir.h"
#include "support/arena.h"

namespace zipr::rewriter {

/// Conservative (rel32-width) encoded size of one row when relocated.
std::uint64_t estimated_size(irdb::ConstRowRef row);

struct Dollop {
  Dollop() = default;
  explicit Dollop(MonotonicArena* arena) : insns(arena) {}

  ArenaVector<irdb::InsnId> insns;

  /// 1-based creation ordinal within the owning manager (0 = unmanaged).
  /// The instruction index refers to dollops by this id, keeping its
  /// per-row entry at 8 bytes instead of carrying a pointer.
  std::uint32_t id = 0;

  /// If set, execution continues at this instruction after the last row:
  /// the dollop was truncated (by a split or by flowing into code that is
  /// already placed elsewhere) and a trailing jump must be emitted.
  irdb::InsnId continuation = irdb::kNullInsn;

  /// Conservative byte size if emitted now (instructions at rel32 widths
  /// plus a 5-byte continuation jump when present).
  std::uint64_t size_estimate = 0;

  /// Position in the owning DollopManager's list (maintained by the
  /// manager; lets retire() swap-erase in O(1)).
  std::size_t slot = 0;
};

class DollopManager {
 public:
  /// `arena` outlives the manager and owns every dollop node; when null the
  /// manager falls back to a private arena (standalone/test use).
  explicit DollopManager(const irdb::Database& db, MonotonicArena* arena = nullptr)
      : db_(db), arena_(arena != nullptr ? arena : &own_arena_) {
    // Nearly every row passes through the index once; size it up front so
    // the resolution loop never grows it (sled dispatch rows added later
    // extend it on demand, but they are few).
    where_.resize(db.insn_count());
  }

  /// The unplaced dollop that STARTS at `insn`, constructing or splitting
  /// as needed. Returns nullptr if `insn` is already placed (per
  /// `is_placed`) -- callers resolve against the placement map instead.
  ///
  /// Construction walks fallthrough links, stopping when an instruction is
  /// already placed or already owned by another dollop (the new dollop
  /// gains a continuation to it).
  template <typename IsPlacedFn>
  Dollop* dollop_starting_at(irdb::InsnId insn, IsPlacedFn&& is_placed) {
    if (is_placed(insn)) return nullptr;
    if (Location loc = lookup(insn); loc.dollop_id != 0) {
      Dollop* d = registry_[loc.dollop_id - 1];
      if (loc.index == 0) return d;
      return split(d, loc.index);
    }
    return construct(insn, is_placed);
  }

  /// Split `d` so that its first part is at most `max_bytes` long
  /// (including the 5-byte continuation jump the split adds). Returns the
  /// new dollop holding the tail, or nullptr if no viable split point
  /// exists (the first instruction + jump already exceed `max_bytes`).
  Dollop* split_to_fit(Dollop* d, std::uint64_t max_bytes);

  /// Remove a dollop that has been fully emitted. O(1) in the number of
  /// live dollops (swap-erase through the dollop's stored slot); the node's
  /// arena bytes stay allocated until the arena resets. Retiring a dollop
  /// the manager does not own -- including a double retire -- is an
  /// internal error and leaves the manager untouched.
  Status retire(Dollop* d);

  std::size_t unplaced_count() const { return dollops_.size(); }
  std::size_t total_splits() const { return splits_; }

 private:
  struct Location {
    std::uint32_t dollop_id = 0;  ///< 0: row not owned by any live dollop
    std::uint32_t index = 0;
  };

  /// Index entry for a row. dollop_id == 0 when unowned; ids past the
  /// index's extent (rows added to the database after construction) simply
  /// read as unowned.
  Location lookup(irdb::InsnId id) const {
    if (id == irdb::kNullInsn || id > where_.size()) return {};
    return where_[id - 1];
  }

  void set(irdb::InsnId id, Dollop* d, std::uint32_t index) {
    if (id > where_.size())
      where_.resize(std::max<std::size_t>(id, db_.insn_count()));
    where_[id - 1] = {d->id, index};
  }

  void clear(irdb::InsnId id) {
    if (id <= where_.size()) where_[id - 1] = {};
  }

  template <typename IsPlacedFn>
  Dollop* construct(irdb::InsnId start, IsPlacedFn&& is_placed) {
    Dollop* d = arena_->create<Dollop>(arena_);
    enroll(d);
    irdb::InsnId cur = start;
    std::uint64_t size = 0;  // accumulated during the walk: one row gather
                             // per instruction instead of a recompute() pass
    while (cur != irdb::kNullInsn) {
      if (is_placed(cur) || lookup(cur).dollop_id != 0) {
        d->continuation = cur;
        size += isa::kJmp32Len;
        break;
      }
      irdb::ConstRowRef row = db_.insn(cur);
      d->insns.push_back(cur);
      size += estimated_size(row);
      cur = row.fallthrough;
    }
    d->size_estimate = size;
    index(d);
    adopt(d);
    return d;
  }

  /// Split `d` at instruction index `pos` (tail begins at pos).
  Dollop* split(Dollop* d, std::size_t pos);

  /// Assign a fresh id and register the dollop for Location resolution.
  void enroll(Dollop* d) {
    registry_.push_back(d);
    d->id = static_cast<std::uint32_t>(registry_.size());
  }

  /// Record a dollop's list slot.
  void adopt(Dollop* d) {
    d->slot = dollops_.size();
    dollops_.push_back(d);
  }

  void index(Dollop* d);
  void recompute(Dollop* d);

  const irdb::Database& db_;
  MonotonicArena own_arena_;  ///< fallback when no shared arena is supplied
  MonotonicArena* arena_;
  std::vector<Dollop*> dollops_;   ///< live (unplaced) dollops; arena-owned
  std::vector<Dollop*> registry_;  ///< every created dollop, by id-1
  std::vector<Location> where_;    ///< row id-1 -> owning dollop id + position
  std::size_t splits_ = 0;
};

}  // namespace zipr::rewriter
