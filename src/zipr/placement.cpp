#include "zipr/placement.h"

#include "zelf/image.h"

namespace zipr::rewriter {

namespace {

constexpr std::uint64_t kPage = zelf::layout::kPageSize;

// All three strategies read the free set through the IntervalSet visitor /
// size-index API: pick() never materializes the free list. Whole-fit scans
// (size >= req.size) and viable-fragment scans (min_viable <= size <
// req.size) walk only the size-index range that can actually satisfy the
// request, so heavily fragmented spaces -- where almost every range is
// dust -- cost O(log n + fitting) instead of O(n).

class DiversityPlacement final : public PlacementStrategy {
 public:
  explicit DiversityPlacement(std::uint64_t seed) : rng_(seed) {}

  std::optional<Interval> pick(const MemorySpace& space,
                               const PlacementRequest& req) override {
    const IntervalSet& free = space.free_set();
    // Reservoir-sample one whole-fit range uniformly (single pass over the
    // fitting ranges only), falling back to a viable fragment.
    std::optional<Interval> chosen;
    std::uint64_t seen = 0;
    free.for_each_fitting(req.size, [&](const Interval& iv) {
      if (rng_.below(++seen) == 0) chosen = iv;
    });
    if (chosen) {
      // Random range AND random start inside it: even a program with one
      // big free range gets a different layout per seed.
      std::uint64_t slack = chosen->size() - req.size;
      std::uint64_t offset = slack == 0 ? 0 : rng_.below(slack + 1);
      return Interval{chosen->begin + offset, chosen->end};
    }
    if (req.min_viable < req.size) {
      free.for_each_sized_between(req.min_viable, req.size, [&](const Interval& iv) {
        if (rng_.below(++seen) == 0) chosen = iv;
      });
    }
    return chosen;
  }

  std::string name() const override { return "diversity"; }

 private:
  Rng rng_;
};

class NearfitPlacement final : public PlacementStrategy {
 public:
  std::optional<Interval> pick(const MemorySpace& space,
                               const PlacementRequest& req) override {
    const IntervalSet& free = space.free_set();
    const std::uint64_t anchor = req.preferred.value_or(space.main_span().begin);
    // Whole fits first: if any range holds req.size (one O(log n) probe),
    // walk outward from the anchor in both address directions and stop at
    // the first fitting range -- by construction the nearest one. The walk
    // touches only ranges nearer than the answer.
    if (free.best_fit(req.size)) {
      auto right = free.at_or_after(anchor);
      auto left = right == free.begin() ? free.end() : std::prev(right);
      if (left != free.end() && (*left).contains(anchor)) {
        if ((*left).size() >= req.size) return *left;
        left = left == free.begin() ? free.end() : std::prev(left);
      }
      while (left != free.end() || right != free.end()) {
        std::uint64_t ldist = left != free.end() ? anchor - ((*left).end - 1) : UINT64_MAX;
        std::uint64_t rdist = right != free.end() ? (*right).begin - anchor : UINT64_MAX;
        if (ldist <= rdist) {
          if ((*left).size() >= req.size) return *left;
          left = left == free.begin() ? free.end() : std::prev(left);
        } else {
          if ((*right).size() >= req.size) return *right;
          ++right;
        }
      }
      // Unreachable: best_fit said a whole fit exists.
    }
    // No whole fit: nearest viable fragment, scanning only the size-index
    // band [min_viable, req.size).
    std::optional<Interval> best_partial;
    std::uint64_t partial_dist = UINT64_MAX;
    free.for_each_sized_between(req.min_viable, req.size, [&](const Interval& iv) {
      std::uint64_t dist =
          iv.contains(anchor) ? 0
          : (anchor < iv.begin ? iv.begin - anchor : anchor - (iv.end - 1));
      if (dist < partial_dist) {
        partial_dist = dist;
        best_partial = iv;
      }
      return partial_dist != 0;
    });
    return best_partial;
  }

  std::string name() const override { return "nearfit"; }
};

class PinPagePlacement final : public PlacementStrategy {
 public:
  explicit PinPagePlacement(std::set<std::uint64_t> pinned_pages)
      : pinned_pages_(std::move(pinned_pages)) {}

  std::optional<Interval> pick(const MemorySpace& space,
                               const PlacementRequest& req) override {
    const IntervalSet& free = space.free_set();
    // Prefer the SMALLEST viable range on a pinned page (fill fragments
    // first), then the smallest viable range anywhere. Each pinned page is
    // queried for its overlapping free ranges; the global fallback is one
    // size-index probe.
    std::optional<Interval> best_pinned;
    for (std::uint64_t page : pinned_pages_) {
      free.for_each_in(page, page + kPage, [&](const Interval& iv) {
        if (iv.size() < req.min_viable) return;
        if (!best_pinned || iv.size() < best_pinned->size()) best_pinned = iv;
      });
    }
    if (best_pinned) return best_pinned;
    return free.best_fit(req.min_viable);
  }

  std::string name() const override { return "pinpage"; }

 private:
  std::set<std::uint64_t> pinned_pages_;
};

}  // namespace

const char* placement_kind_name(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kDiversity: return "diversity";
    case PlacementKind::kNearfit: return "nearfit";
    case PlacementKind::kPinPage: return "pinpage";
  }
  return "?";
}

std::unique_ptr<PlacementStrategy> make_placement(PlacementKind kind, std::uint64_t seed,
                                                  std::set<std::uint64_t> pinned_pages) {
  switch (kind) {
    case PlacementKind::kDiversity:
      return std::make_unique<DiversityPlacement>(seed);
    case PlacementKind::kNearfit:
      return std::make_unique<NearfitPlacement>();
    case PlacementKind::kPinPage:
      return std::make_unique<PinPagePlacement>(std::move(pinned_pages));
  }
  return nullptr;
}

}  // namespace zipr::rewriter
