#include "zipr/placement.h"

#include "zelf/image.h"

namespace zipr::rewriter {

namespace {

constexpr std::uint64_t kPage = zelf::layout::kPageSize;

class DiversityPlacement final : public PlacementStrategy {
 public:
  explicit DiversityPlacement(std::uint64_t seed) : rng_(seed) {}

  std::optional<Interval> pick(const MemorySpace& space,
                               const PlacementRequest& req) override {
    std::vector<Interval> whole, partial;
    for (const auto& iv : space.free_ranges()) {
      if (iv.size() >= req.size)
        whole.push_back(iv);
      else if (iv.size() >= req.min_viable)
        partial.push_back(iv);
    }
    if (!whole.empty()) {
      // Random range AND random start inside it: even a program with one
      // big free range gets a different layout per seed.
      Interval iv = whole[rng_.below(whole.size())];
      std::uint64_t slack = iv.size() - req.size;
      std::uint64_t offset = slack == 0 ? 0 : rng_.below(slack + 1);
      return Interval{iv.begin + offset, iv.end};
    }
    if (!partial.empty()) return partial[rng_.below(partial.size())];
    return std::nullopt;
  }

  std::string name() const override { return "diversity"; }

 private:
  Rng rng_;
};

class NearfitPlacement final : public PlacementStrategy {
 public:
  std::optional<Interval> pick(const MemorySpace& space,
                               const PlacementRequest& req) override {
    const std::uint64_t anchor = req.preferred.value_or(space.main_span().begin);
    std::optional<Interval> best_whole, best_partial;
    std::uint64_t whole_dist = UINT64_MAX, partial_dist = UINT64_MAX;
    for (const auto& iv : space.free_ranges()) {
      std::uint64_t dist =
          iv.contains(anchor) ? 0
          : (anchor < iv.begin ? iv.begin - anchor : anchor - (iv.end - 1));
      if (iv.size() >= req.size) {
        if (dist < whole_dist) {
          whole_dist = dist;
          best_whole = iv;
        }
      } else if (iv.size() >= req.min_viable) {
        if (dist < partial_dist) {
          partial_dist = dist;
          best_partial = iv;
        }
      }
    }
    if (best_whole) return best_whole;
    if (best_partial) return best_partial;
    return std::nullopt;
  }

  std::string name() const override { return "nearfit"; }
};

class PinPagePlacement final : public PlacementStrategy {
 public:
  explicit PinPagePlacement(std::set<std::uint64_t> pinned_pages)
      : pinned_pages_(std::move(pinned_pages)) {}

  std::optional<Interval> pick(const MemorySpace& space,
                               const PlacementRequest& req) override {
    // Prefer the SMALLEST viable range on a pinned page (fill fragments
    // first), then the smallest viable range anywhere.
    std::optional<Interval> best_pinned, best_any;
    for (const auto& iv : space.free_ranges()) {
      if (iv.size() < req.min_viable) continue;
      if (touches_pinned_page(iv)) {
        if (!best_pinned || iv.size() < best_pinned->size()) best_pinned = iv;
      }
      if (!best_any || iv.size() < best_any->size()) best_any = iv;
    }
    if (best_pinned) return best_pinned;
    return best_any;
  }

  std::string name() const override { return "pinpage"; }

 private:
  bool touches_pinned_page(const Interval& iv) const {
    for (std::uint64_t page = iv.begin & ~(kPage - 1); page < iv.end; page += kPage)
      if (pinned_pages_.count(page)) return true;
    return false;
  }

  std::set<std::uint64_t> pinned_pages_;
};

}  // namespace

const char* placement_kind_name(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kDiversity: return "diversity";
    case PlacementKind::kNearfit: return "nearfit";
    case PlacementKind::kPinPage: return "pinpage";
  }
  return "?";
}

std::unique_ptr<PlacementStrategy> make_placement(PlacementKind kind, std::uint64_t seed,
                                                  std::set<std::uint64_t> pinned_pages) {
  switch (kind) {
    case PlacementKind::kDiversity:
      return std::make_unique<DiversityPlacement>(seed);
    case PlacementKind::kNearfit:
      return std::make_unique<NearfitPlacement>();
    case PlacementKind::kPinPage:
      return std::make_unique<PinPagePlacement>(std::move(pinned_pages));
  }
  return nullptr;
}

}  // namespace zipr::rewriter
