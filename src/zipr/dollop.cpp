#include "zipr/dollop.h"

#include <cassert>

#include "isa/insn.h"

namespace zipr::rewriter {

namespace {
constexpr std::uint64_t kJumpSize = isa::kJmp32Len;
}

std::uint64_t estimated_size(irdb::ConstRowRef row) {
  if (row.verbatim) return row.orig_bytes.size();
  isa::Insn wide = row.decoded;
  // Branches may be emitted rel8 when their target lands nearby, but the
  // estimate assumes the full rel32 form.
  if (wide.op == isa::Op::kJmp || wide.op == isa::Op::kJcc)
    wide.width = isa::BranchWidth::kRel32;
  return static_cast<std::uint64_t>(isa::encoded_length(wide));
}

Dollop* DollopManager::split(Dollop* d, std::size_t pos) {
  assert(pos > 0 && pos < d->insns.size());
  Dollop* tail = arena_->create<Dollop>(arena_);
  enroll(tail);
  for (std::size_t i = pos; i < d->insns.size(); ++i) tail->insns.push_back(d->insns[i]);
  tail->continuation = d->continuation;
  d->insns.truncate(pos);
  d->continuation = tail->insns.front();
  ++splits_;

  index(tail);
  // Head keeps its entries; indices below pos are unchanged.
  recompute(d);
  recompute(tail);
  adopt(tail);
  return tail;
}

Dollop* DollopManager::split_to_fit(Dollop* d, std::uint64_t max_bytes) {
  if (d->insns.size() < 2) return nullptr;
  std::uint64_t used = 0;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < d->insns.size(); ++i) {
    std::uint64_t len = estimated_size(db_.insn(d->insns[i]));
    if (used + len + kJumpSize > max_bytes) break;
    used += len;
    pos = i + 1;
  }
  if (pos == 0 || pos >= d->insns.size()) return nullptr;
  return split(d, pos);
}

Status DollopManager::retire(Dollop* d) {
  std::size_t i = d->slot;
  if (i >= dollops_.size() || dollops_[i] != d)
    return Error::internal("retire of unknown (or already retired) dollop; slot " +
                           std::to_string(i) + " of " + std::to_string(dollops_.size()));
  for (irdb::InsnId id : d->insns) clear(id);
  if (i + 1 != dollops_.size()) {
    dollops_[i] = dollops_.back();
    dollops_[i]->slot = i;
  }
  dollops_.pop_back();
  return Status::success();
}

void DollopManager::index(Dollop* d) {
  for (std::size_t i = 0; i < d->insns.size(); ++i)
    set(d->insns[i], d, static_cast<std::uint32_t>(i));
}

void DollopManager::recompute(Dollop* d) {
  std::uint64_t size = 0;
  for (irdb::InsnId id : d->insns) size += estimated_size(db_.insn(id));
  if (d->continuation != irdb::kNullInsn) size += kJumpSize;
  d->size_estimate = size;
}

}  // namespace zipr::rewriter
