#include "zipr/memory_space.h"

#include <cassert>

namespace zipr::rewriter {

MemorySpace::MemorySpace(Interval main) : main_(main), overflow_next_(main.end) {
  free_.insert(main_.begin, main_.end);
}

Status MemorySpace::reserve(std::uint64_t addr, std::uint64_t size) {
  if (size == 0) return Status::success();
  if (!free_.contains_range(addr, addr + size))
    return Error::out_of_space("reserve of occupied range at " + hex_addr(addr));
  free_.erase(addr, addr + size);
  return Status::success();
}

void MemorySpace::release(std::uint64_t addr, std::uint64_t size) {
  if (size == 0) return;
  assert(addr >= main_.begin && addr + size <= main_.end);
  free_.insert(addr, addr + size);
}

bool MemorySpace::is_free(std::uint64_t addr, std::uint64_t size) const {
  if (size == 0) return true;
  return free_.contains_range(addr, addr + size);
}

std::optional<std::uint64_t> MemorySpace::allocate(std::uint64_t size) {
  for (const auto& iv : free_.intervals()) {
    if (iv.size() >= size) {
      free_.erase(iv.begin, iv.begin + size);
      return iv.begin;
    }
  }
  return std::nullopt;
}

std::optional<std::uint64_t> MemorySpace::allocate_in_window(std::uint64_t size, std::uint64_t lo,
                                                             std::uint64_t hi,
                                                             std::uint64_t prefer) {
  std::optional<std::uint64_t> best;
  std::uint64_t best_dist = UINT64_MAX;
  for (const auto& iv : free_.intervals()) {
    if (iv.size() < size) continue;
    // Candidate base range within this interval intersected with [lo, hi].
    std::uint64_t base_lo = std::max(iv.begin, lo);
    std::uint64_t base_hi_excl = iv.end - size + 1;  // iv.size() >= size
    std::uint64_t base_hi = hi < base_hi_excl - 1 ? hi : base_hi_excl - 1;
    if (base_lo > base_hi) continue;
    // Base nearest `prefer`, clamped into [base_lo, base_hi].
    std::uint64_t base = prefer < base_lo ? base_lo : (prefer > base_hi ? base_hi : prefer);
    std::uint64_t dist = base > prefer ? base - prefer : prefer - base;
    if (dist < best_dist) {
      best_dist = dist;
      best = base;
    }
  }
  if (best) free_.erase(*best, *best + size);
  return best;
}

std::uint64_t MemorySpace::allocate_overflow(std::uint64_t size) {
  std::uint64_t base = overflow_next_;
  overflow_next_ += size;
  return base;
}

void MemorySpace::shrink_overflow(std::uint64_t addr) {
  assert(addr >= main_.end);
  if (addr < overflow_next_) overflow_next_ = addr;
}

std::uint64_t MemorySpace::largest_free() const {
  std::uint64_t best = 0;
  for (const auto& iv : free_.intervals()) best = std::max(best, iv.size());
  return best;
}

}  // namespace zipr::rewriter
