#include "zipr/memory_space.h"

namespace zipr::rewriter {

MemorySpace::MemorySpace(Interval main) : main_(main), overflow_next_(main.end) {
  free_.insert(main_.begin, main_.end);
}

Status MemorySpace::reserve(std::uint64_t addr, std::uint64_t size) {
  if (size == 0) return Status::success();
  if (!free_.contains_range(addr, addr + size))
    return Error::out_of_space("reserve of occupied range at " + hex_addr(addr));
  free_.erase(addr, addr + size);
  return Status::success();
}

Status MemorySpace::release(std::uint64_t addr, std::uint64_t size) {
  if (size == 0) return Status::success();
  if (addr < main_.begin || addr + size > main_.end || addr + size < addr)
    return Error::invalid_argument("release of " + std::to_string(size) + " bytes at " +
                                   hex_addr(addr) + " outside main span [" +
                                   hex_addr(main_.begin) + ", " + hex_addr(main_.end) + ")");
  if (free_.overlaps(addr, addr + size))
    return Error::internal("double release of bytes at " + hex_addr(addr));
  free_.insert(addr, addr + size);
  return Status::success();
}

bool MemorySpace::is_free(std::uint64_t addr, std::uint64_t size) const {
  if (size == 0) return true;
  return free_.contains_range(addr, addr + size);
}

std::optional<std::uint64_t> MemorySpace::allocate(std::uint64_t size) {
  auto iv = free_.best_fit(size);
  if (!iv) return std::nullopt;
  free_.erase(iv->begin, iv->begin + size);
  return iv->begin;
}

std::optional<std::uint64_t> MemorySpace::allocate_in_window(std::uint64_t size, std::uint64_t lo,
                                                             std::uint64_t hi,
                                                             std::uint64_t prefer) {
  if (size == 0 || lo > hi) return std::nullopt;
  std::optional<std::uint64_t> best;
  std::uint64_t best_dist = UINT64_MAX;
  // A candidate base b in [lo, hi] needs [b, b+size) inside one free range,
  // so only ranges overlapping [lo, hi + size) matter.
  std::uint64_t scan_hi = hi + size < hi ? UINT64_MAX : hi + size;
  free_.for_each_in(lo, scan_hi, [&](const Interval& iv) {
    if (iv.size() < size) return true;
    // Candidate base range within this interval intersected with [lo, hi].
    std::uint64_t base_lo = std::max(iv.begin, lo);
    std::uint64_t base_hi_excl = iv.end - size + 1;  // iv.size() >= size
    std::uint64_t base_hi = hi < base_hi_excl - 1 ? hi : base_hi_excl - 1;
    if (base_lo > base_hi) return true;
    // Base nearest `prefer`, clamped into [base_lo, base_hi].
    std::uint64_t base = prefer < base_lo ? base_lo : (prefer > base_hi ? base_hi : prefer);
    std::uint64_t dist = base > prefer ? base - prefer : prefer - base;
    if (dist < best_dist) {
      best_dist = dist;
      best = base;
    }
    return best_dist != 0;  // cannot beat an exact hit
  });
  if (best) free_.erase(*best, *best + size);
  return best;
}

std::uint64_t MemorySpace::free_run_at(std::uint64_t addr) const {
  auto iv = free_.interval_containing(addr);
  if (!iv) return 0;
  return iv->end - addr;
}

std::uint64_t MemorySpace::allocate_overflow(std::uint64_t size) {
  std::uint64_t base = overflow_next_;
  overflow_next_ += size;
  return base;
}

Status MemorySpace::shrink_overflow(std::uint64_t addr) {
  if (addr < main_.end)
    return Error::invalid_argument("overflow shrink to " + hex_addr(addr) +
                                   " below the overflow base " + hex_addr(main_.end) +
                                   " would hand overflow bytes to the main span");
  if (addr < overflow_next_) overflow_next_ = addr;
  return Status::success();
}

std::uint64_t MemorySpace::largest_free() const {
  auto iv = free_.largest();
  return iv ? iv->size() : 0;
}

}  // namespace zipr::rewriter
