// The reassembly phase (paper Sec. II-C): convert the transformed IR back
// into machine code WITHOUT keeping a copy of the original program.
//
// Stages, mirroring the paper:
//   1. Initial reference placement -- the output text space starts empty
//      (verbatim Case-2/3 ranges excepted); a constrained unresolved
//      reference is reserved at every pinned address.
//   2. Dense references -- pins too close for even a 2-byte jump are
//      covered by SLEDS: overlapping 0x68 (push imm32) bytes terminated by
//      four 0x90s, so every landing offset pushes a distinct imm32; a
//      generated dispatch routine compares the pushed value and routes to
//      the right target (Sec. II-C2).
//   3. Expansion and chaining -- references widen to 5-byte jumps where
//      room allows; pins that must stay 2-byte chain through trampolines
//      placed within rel8 reach (Sec. II-C3).
//   4. Resolution and placement -- the uDR/D/M loop: unresolved references
//      drive on-demand dollop construction, placement (via the pluggable
//      strategy), splitting to fit free fragments, and patching
//      (Sec. II-C4). Unreferenced code is never placed (dead code drops
//      out naturally).
//
// Layout and byte emission are decoupled: the resolution loop decides every
// address and instruction width but only appends to an emission log; a
// final apply phase encodes the log into the output buffers. Because the
// logged writes are mutually disjoint (placeholder displacements excepted,
// which the later patch pass overwrites), the apply phase parallelizes
// across a worker pool with byte-identical output for any job count.
#pragma once

#include <span>
#include <vector>

#include "analysis/ir_builder.h"
#include "support/arena.h"
#include "zipr/dollop.h"
#include "zipr/memory_space.h"
#include "zipr/placement.h"

namespace zipr::rewriter {

struct ReassemblyOptions {
  PlacementKind placement = PlacementKind::kNearfit;
  std::uint64_t seed = 1;
  /// Emit 2-byte jump forms when the target is already placed within rel8
  /// reach (Sec. III relaxation). When false every reference is emitted
  /// unconstrained (rel32), the paper's diversity-friendly default.
  bool prefer_short_refs = true;
  /// Fallthrough coalescing (paper Sec. III): when a dollop's continuation
  /// is unplaced and the bytes past the emission cursor are free, keep
  /// emitting the successor in place and elide the trailing jump. Off for
  /// the diversity strategy by default (it would correlate successor
  /// layout with predecessor layout, weakening randomization).
  bool coalesce = true;
  /// Intra-rewrite parallelism for the emission phase (encode + patch
  /// apply). Never affects output bytes; <= 1 runs inline.
  int jobs = 1;
  /// Cap on how many successor dollops one emission region may absorb;
  /// bounds the main-span space a single placement decision can claim.
  std::size_t max_coalesce_run = 64;
  /// External rewrite arena (a RewriteWorkspace's, recycled across
  /// requests). Rewound before use; never affects output bytes. Null uses
  /// the bounded per-thread arena.
  MonotonicArena* arena = nullptr;
};

struct RewriteStats {
  std::size_t pins = 0;
  std::size_t pin_refs_short = 0;   ///< pins satisfied with 2-byte jumps
  std::size_t pin_refs_long = 0;    ///< pins widened to 5-byte jumps
  std::size_t pins_in_place = 0;    ///< 1-byte pinned insns emitted in place
  std::size_t sleds = 0;
  std::size_t sled_entries = 0;
  std::size_t chains = 0;           ///< pins resolved through trampolines
  std::size_t chain_hops = 0;       ///< total intermediate hops
  std::size_t dollops_placed = 0;
  std::size_t dollop_splits = 0;
  std::size_t insns_placed = 0;
  std::size_t refs_resolved = 0;
  std::size_t dollops_coalesced = 0;  ///< dollops emitted in place after a predecessor
  std::size_t jumps_elided = 0;       ///< trailing jumps removed by coalescing
  std::size_t cont_jumps = 0;         ///< trailing jumps actually emitted
  std::uint64_t trailing_jump_bytes = 0;  ///< bytes spent on emitted trailing jumps
  std::uint64_t bytes_saved = 0;      ///< bytes elision kept out of the output
  std::uint64_t overflow_bytes = 0;   ///< file-size overhead in text bytes
  std::uint64_t free_bytes_left = 0;  ///< unused main-span space
  std::uint64_t output_text_bytes = 0;

  /// Fraction of truncated-dollop continuations whose trailing jump was
  /// elided; 0 when no dollop needed one.
  double elision_rate() const {
    std::size_t total = jumps_elided + cont_jumps;
    return total == 0 ? 0.0 : static_cast<double>(jumps_elided) / static_cast<double>(total);
  }
};

class Reassembler {
 public:
  /// `prog` is consumed: dispatch code for sleds is added to its database.
  Reassembler(analysis::IrProgram& prog, const ReassemblyOptions& opts);

  /// Produce the rewritten image.
  Result<zelf::Image> run();

  const RewriteStats& stats() const { return stats_; }

  /// Final address of an instruction row in the output (tests/debugging);
  /// nullopt if the row was never placed.
  std::optional<std::uint64_t> placed_at(irdb::InsnId id) const;

 private:
  friend class ReassemblerTestPeer;  // regression tests for checked invariants

  static constexpr std::uint64_t kUnplaced = ~std::uint64_t{0};

  struct PinSite {
    std::uint64_t addr = 0;
    std::uint8_t reserved = 0;  ///< 2..5 bytes held for this reference
    irdb::InsnId target = irdb::kNullInsn;
    /// For constrained (reserved < 5) pins: a 5-byte trampoline slot
    /// reserved within rel8 reach BEFORE dollop placement consumes space
    /// (the paper runs expansion/chaining ahead of placement). Released if
    /// the target ends up directly reachable.
    std::optional<std::uint64_t> trampoline;
    bool trampoline_in_overflow = false;
  };

  /// An emitted 5-byte jump whose rel32 displacement awaits its target.
  struct PendingRef {
    std::uint64_t site = 0;  ///< address of the jump opcode byte
    irdb::InsnId target = irdb::kNullInsn;
    std::optional<std::uint64_t> preferred;  ///< placement hint
  };

  /// One deferred instruction emission: layout fixed the address and
  /// encoding width; the apply phase produces the bytes.
  struct EmitRec {
    isa::Insn in;
    std::uint64_t addr = 0;
    std::uint8_t len = 0;  ///< encoded length layout budgeted for
  };

  /// One rel32 displacement patch into a previously logged placeholder
  /// jump; applied strictly after every EmitRec (it overwrites the
  /// placeholder's displacement bytes).
  struct PatchRec {
    std::uint64_t site = 0;    ///< address of the jump opcode byte
    std::uint64_t target = 0;  ///< resolved target address
  };

  // -- stage drivers --
  Status place_verbatim_ranges();
  Status build_sleds();
  Status reserve_pin_sites();
  Status resolve_all();
  /// Encode the emission log into the output buffers (parallel across
  /// opts_.jobs workers), then apply the rel32 patches.
  Status apply_log();

  // -- helpers --
  Status resolve_pin(const PinSite& pin);
  Status resolve_ref(const PendingRef& ref);
  Status chain_pin(const PinSite& pin);
  Result<std::uint64_t> ensure_placed(irdb::InsnId insn, std::optional<std::uint64_t> preferred);
  Status place_dollop(Dollop* d, std::optional<std::uint64_t> preferred);
  Status emit_dollop_at(Dollop* d, std::uint64_t base, std::uint64_t budget, bool in_overflow);
  /// Log one IR row for emission at `addr`; returns its encoded length.
  Result<std::size_t> emit_row_at(irdb::ConstRowRef row, std::uint64_t addr);
  /// Log `in` for emission at `addr`; returns its encoded length.
  Result<std::size_t> emit_insn_at(const isa::Insn& in, std::uint64_t addr);
  /// Log a rel32 displacement patch for the placeholder jump at `site`.
  Status patch_rel32(std::uint64_t site, std::uint64_t target_addr);

  // -- placement map M, flattened --
  bool is_placed(irdb::InsnId id) const {
    return id != irdb::kNullInsn && id <= placed_cap_ && placed_[id - 1] != kUnplaced;
  }
  /// Precondition: is_placed(id).
  std::uint64_t placed_addr(irdb::InsnId id) const { return placed_[id - 1]; }
  void mark_placed(irdb::InsnId id, std::uint64_t addr);

  /// The one width decision shared by pins, continuation jumps and
  /// emit_row_at, so the three sites cannot drift. `can_short`: the op has
  /// a rel8 form at all (call does not). `glue`: the jump is rewriter glue
  /// rather than an original program reference -- glue takes the short
  /// form whenever it reaches regardless of prefer_short_refs (a squeezed
  /// pin has no room for rel32; a shorter continuation jump is pure
  /// savings and carries no diversity weight).
  isa::BranchWidth ref_width(std::uint64_t site, std::uint64_t target, bool can_short,
                             bool glue) const;

  /// Writable view of the output at [addr, addr+want), clamped to the main
  /// buffer's end when `addr` is in the main span (emission never straddles
  /// the main/overflow boundary; allocations come from exactly one side).
  std::span<Byte> out_span(std::uint64_t addr, std::size_t want);

  // Sled construction (Sec. II-C2).
  Result<irdb::InsnId> build_sled_dispatch(const std::vector<std::pair<std::uint64_t, std::uint32_t>>& entries,
                                           irdb::InsnId nop_region_target);

  // -- output buffer over [main.begin, +inf) --
  // Rejects addresses below the main span (checked even under NDEBUG: the
  // offset arithmetic would otherwise underflow into a wild OOB write).
  Status write_bytes(std::uint64_t addr, ByteView bytes);

  /// The per-thread rewrite arena, rewound (chunks retained) for this
  /// rewrite. One Reassembler per thread at a time: a warm batch/serve
  /// worker pays chunk malloc only on its first rewrite. Retention is
  /// bounded: an arena holding far more than the last two rewrites needed
  /// is trimmed here, so one oversized rewrite cannot pin its high-water
  /// mark in the thread_local forever.
  static MonotonicArena* acquire_arena();
  /// `opts.arena` (rewound) when set, else the per-thread arena.
  static MonotonicArena* select_arena(MonotonicArena* external);

  analysis::IrProgram& prog_;
  ReassemblyOptions opts_;
  MemorySpace space_;
  std::unique_ptr<PlacementStrategy> strategy_;
  MonotonicArena* arena_;  ///< per-thread; owns dollops, M, and the logs
  DollopManager dollops_;

  Bytes main_buf_;      ///< [main.begin, main.end)
  Bytes overflow_buf_;  ///< [main.end, ...)

  /// The map M as a dense array: output address per row id (id-1 indexed),
  /// kUnplaced sentinel. Arena-backed; grows when sled dispatch rows extend
  /// the id space mid-rewrite.
  std::uint64_t* placed_ = nullptr;
  std::size_t placed_cap_ = 0;

  std::vector<PendingRef> pending_;  ///< the list uDR
  std::vector<PinSite> pin_sites_;
  std::vector<std::uint64_t> sled_handled_;  ///< sorted; pins satisfied by a sled

  ArenaVector<EmitRec> emit_log_;
  ArenaVector<PatchRec> patch_log_;
  RewriteStats stats_;
};

/// Capacity currently pinned by the calling thread's rewrite arena
/// (regression tests for the bounded-retention policy in acquire_arena).
std::size_t thread_arena_retained_bytes();

}  // namespace zipr::rewriter
