#include "zipr/reassembler.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

#include "batch/worker_pool.h"
#include "support/log.h"

namespace zipr::rewriter {

using irdb::InsnId;
using irdb::kNullInsn;
using isa::BranchWidth;
using isa::Op;

namespace {

constexpr std::uint64_t kShortJump = isa::kJmp8Len;   // 2
constexpr std::uint64_t kLongJump = isa::kJmp32Len;   // 5
constexpr Byte kFillByte = 0xF4;  // hlt: stray control flow traps cleanly

// Reach of a 2-byte jump placed at `site`: its target t satisfies
// t - (site + 2) in [-128, 127].
bool rel8_reaches(std::uint64_t site, std::uint64_t target) {
  std::int64_t disp = static_cast<std::int64_t>(target) - static_cast<std::int64_t>(site + 2);
  return disp >= isa::kRel8Min && disp <= isa::kRel8Max;
}

}  // namespace

namespace {

MonotonicArena& thread_arena() {
  static thread_local MonotonicArena arena;
  return arena;
}

}  // namespace

std::size_t thread_arena_retained_bytes() { return thread_arena().retained_bytes(); }

MonotonicArena* Reassembler::acquire_arena() {
  // One arena per thread, rewound (chunks retained) for every rewrite.
  // Two live Reassemblers on one thread would clobber each other's
  // allocations; the pipeline constructs exactly one per rewrite and each
  // worker thread runs its rewrites sequentially.
  //
  // Retention is bounded by a two-cycle hysteresis: `prev_used` remembers
  // the demand of the rewrite before last, so the budget only collapses
  // once TWO consecutive rewrites were small -- a x50 request followed by
  // x1 traffic releases its ~100s-of-MB high-water mark on the second
  // small acquire instead of pinning it in the thread_local forever, while
  // alternating big/small traffic never thrashes.
  static thread_local std::size_t prev_used = 0;
  MonotonicArena& arena = thread_arena();
  std::size_t used = arena.used_bytes();  // demand of the previous rewrite
  std::size_t budget = 2 * std::max(used, prev_used) + (64 * 1024);
  if (arena.retained_bytes() > budget)
    arena.trim(budget);  // also rewinds
  else
    arena.reset();
  prev_used = used;
  return &arena;
}

MonotonicArena* Reassembler::select_arena(MonotonicArena* external) {
  if (!external) return acquire_arena();
  external->reset();
  return external;
}

Reassembler::Reassembler(analysis::IrProgram& prog, const ReassemblyOptions& opts)
    : prog_(prog),
      opts_(opts),
      space_(Interval{prog.original.text().vaddr,
                      prog.original.text().vaddr + prog.original.text().bytes.size()}),
      arena_(select_arena(opts.arena)),
      dollops_(prog.db, arena_),
      emit_log_(arena_),
      patch_log_(arena_) {
  std::set<std::uint64_t> pinned_pages;
  for (const auto& [addr, id] : prog_.db.pins())
    pinned_pages.insert(addr & ~(zelf::layout::kPageSize - 1));
  strategy_ = make_placement(opts.placement, opts.seed, std::move(pinned_pages));
  main_buf_.assign(space_.main_span().size(), kFillByte);
  // The map M sized for every current row (sled dispatch rows added later
  // grow it on demand, but they are few).
  placed_cap_ = std::max<std::size_t>(prog_.db.insn_count(), 64);
  placed_ = arena_->alloc_array<std::uint64_t>(placed_cap_);
  std::fill_n(placed_, placed_cap_, kUnplaced);
}

std::optional<std::uint64_t> Reassembler::placed_at(InsnId id) const {
  if (!is_placed(id)) return std::nullopt;
  return placed_addr(id);
}

void Reassembler::mark_placed(InsnId id, std::uint64_t addr) {
  if (id > placed_cap_) {
    std::size_t cap = std::max<std::size_t>(
        {static_cast<std::size_t>(id), prog_.db.insn_count(), placed_cap_ * 2});
    std::uint64_t* fresh = arena_->alloc_array<std::uint64_t>(cap);
    std::copy_n(placed_, placed_cap_, fresh);
    std::fill(fresh + placed_cap_, fresh + cap, kUnplaced);
    placed_ = fresh;
    placed_cap_ = cap;
  }
  placed_[id - 1] = addr;
}

Status Reassembler::write_bytes(std::uint64_t addr, ByteView bytes) {
  if (bytes.empty()) return Status::success();
  const Interval& main = space_.main_span();
  // An address below the main span has no byte to back it: the subtraction
  // `addr - main.begin` below would underflow into a wild out-of-bounds
  // write. Reject it as a checked invariant violation instead of relying on
  // an assert that vanishes under NDEBUG.
  if (addr < main.begin)
    return Error::internal("write of " + std::to_string(bytes.size()) + " bytes at " +
                           hex_addr(addr) + " below the output span base " +
                           hex_addr(main.begin));
  // Bulk-copy the main-span prefix and the overflow suffix (one resize,
  // one copy each) instead of dispatching per byte.
  std::size_t head = 0;
  if (addr < main.end) {
    head = static_cast<std::size_t>(std::min<std::uint64_t>(bytes.size(), main.end - addr));
    std::copy_n(bytes.data(), head,
                main_buf_.begin() + static_cast<std::ptrdiff_t>(addr - main.begin));
  }
  if (head < bytes.size()) {
    std::size_t off = static_cast<std::size_t>(addr + head - main.end);
    std::size_t tail = bytes.size() - head;
    if (off + tail > overflow_buf_.size()) overflow_buf_.resize(off + tail, kFillByte);
    std::copy_n(bytes.data() + head, tail,
                overflow_buf_.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return Status::success();
}

Status Reassembler::patch_rel32(std::uint64_t site, std::uint64_t target_addr) {
  if (site < space_.main_span().begin)
    return Error::internal("rel32 patch at " + hex_addr(site) + " outside the output span");
  patch_log_.push_back({site, target_addr});
  return Status::success();
}

std::span<Byte> Reassembler::out_span(std::uint64_t addr, std::size_t want) {
  const Interval& main = space_.main_span();
  if (addr < main.begin) return {};  // callers detect the empty span as an error
  if (addr < main.end) {
    std::size_t off = static_cast<std::size_t>(addr - main.begin);
    return {main_buf_.data() + off, std::min(want, main_buf_.size() - off)};
  }
  std::size_t off = static_cast<std::size_t>(addr - main.end);
  if (off + want > overflow_buf_.size()) overflow_buf_.resize(off + want, kFillByte);
  return {overflow_buf_.data() + off, want};
}

Result<std::size_t> Reassembler::emit_insn_at(const isa::Insn& in, std::uint64_t addr) {
  if (addr < space_.main_span().begin)
    return Error::internal("emission at " + hex_addr(addr) + " below the output span base");
  int len = isa::encoded_length(in);
  if (len <= 0)
    return Error::invalid_argument("cannot encode invalid instruction at " + hex_addr(addr));
  emit_log_.push_back({in, addr, static_cast<std::uint8_t>(len)});
  return static_cast<std::size_t>(len);
}

Status Reassembler::apply_log() {
  const Interval& main = space_.main_span();

  // Size the overflow buffer to its final extent ONCE, before the workers
  // start: every record then writes into stable storage and out_span never
  // resizes mid-flight.
  std::uint64_t need = space_.overflow_used();
  for (const EmitRec& r : emit_log_)
    if (r.addr >= main.end) need = std::max(need, r.addr + r.len - main.end);
  for (const PatchRec& r : patch_log_)
    if (r.site >= main.end) need = std::max(need, r.site + kLongJump - main.end);
  if (need > overflow_buf_.size())
    overflow_buf_.resize(static_cast<std::size_t>(need), kFillByte);

  auto encode_one = [&](std::size_t i) -> Status {
    const EmitRec& r = emit_log_[i];
    ZIPR_ASSIGN_OR_RETURN(std::size_t n, isa::encode_into(r.in, out_span(r.addr, r.len)));
    if (n != r.len)
      return Error::internal("encoded length drifted from layout at " + hex_addr(r.addr));
    return Status::success();
  };
  auto patch_one = [&](std::size_t i) -> Status {
    const PatchRec& r = patch_log_[i];
    std::int64_t disp =
        static_cast<std::int64_t>(r.target) - static_cast<std::int64_t>(r.site + kLongJump);
    std::span<Byte> out = out_span(r.site + 1, 4);
    if (out.size() < 4)
      return Error::internal("rel32 patch at " + hex_addr(r.site) + " outside the output span");
    std::uint32_t le = static_cast<std::uint32_t>(static_cast<std::int32_t>(disp));
    std::memcpy(out.data(), &le, 4);  // VLX is little-endian
    return Status::success();
  };

  // Each worker owns a contiguous log slice; records touch disjoint bytes,
  // so any interleaving produces the same buffer. Patches overwrite
  // placeholder displacements from the emit pass, hence the barrier
  // between the two parallel_for calls.
  auto run_slices = [&](std::size_t count,
                        const std::function<Status(std::size_t)>& one) -> Status {
    // Below ~4k records per worker the fork/join overhead dominates.
    std::size_t workers = batch::effective_jobs(opts_.jobs, count / 4096);
    if (workers <= 1) {
      for (std::size_t i = 0; i < count; ++i) ZIPR_TRY(one(i));
      return Status::success();
    }
    std::vector<Status> failed(workers);
    batch::parallel_for(static_cast<int>(workers), workers, [&](std::size_t w) {
      std::size_t lo = count * w / workers;
      std::size_t hi = count * (w + 1) / workers;
      for (std::size_t i = lo; i < hi; ++i) {
        Status s = one(i);
        if (!s.ok()) {
          failed[w] = std::move(s);
          return;
        }
      }
    });
    for (const Status& s : failed)
      if (!s.ok()) return s.error();
    return Status::success();
  };

  ZIPR_TRY(run_slices(emit_log_.size(), encode_one));
  ZIPR_TRY(run_slices(patch_log_.size(), patch_one));
  return Status::success();
}

isa::BranchWidth Reassembler::ref_width(std::uint64_t site, std::uint64_t target, bool can_short,
                                        bool glue) const {
  if (can_short && (glue || opts_.prefer_short_refs) && rel8_reaches(site, target))
    return BranchWidth::kRel8;
  return BranchWidth::kRel32;
}

// ---- stage 0: verbatim ranges stay put ----

Status Reassembler::place_verbatim_ranges() {
  for (const auto& [range, row_id] : prog_.verbatim) {
    ZIPR_TRY(space_.reserve(range.begin, range.size()));
    ZIPR_TRY(write_bytes(range.begin, prog_.db.insn(row_id).orig_bytes));
    mark_placed(row_id, range.begin);
  }
  return Status::success();
}

// ---- stage 1+2: pinned references and sleds ----

Status Reassembler::build_sleds() {
  // Collect pin addresses; find maximal runs where successive pins are one
  // byte apart -- too dense for any 2-byte jump.
  std::vector<std::uint64_t> addrs;
  for (const auto& [addr, id] : prog_.db.pins()) addrs.push_back(addr);

  for (std::size_t i = 0; i + 1 < addrs.size();) {
    if (addrs[i + 1] - addrs[i] != 1) {
      ++i;
      continue;
    }
    // Dense run [first..last].
    std::size_t j = i;
    while (j + 1 < addrs.size() && addrs[j + 1] - addrs[j] == 1) ++j;
    std::uint64_t first = addrs[i], last = addrs[j];
    std::size_t next_idx = j + 1;

    // Footprint: 0x68 bytes over [first..last], four 0x90s, then a 5-byte
    // jump to the dispatch routine.
    std::uint64_t nop_begin = last + 1, nop_end = last + 5;  // [nop_begin, nop_end)
    std::uint64_t jmp_at = last + 5;
    std::uint64_t footprint_end = jmp_at + kLongJump;

    // Pins falling inside the nop region converge on the dispatch
    // fallthrough; at most one is representable.
    InsnId nop_region_target = kNullInsn;
    while (next_idx < addrs.size() && addrs[next_idx] < footprint_end) {
      std::uint64_t extra = addrs[next_idx];
      if (extra >= nop_begin && extra < nop_end && nop_region_target == kNullInsn) {
        nop_region_target = prog_.db.pinned_at(extra);
        ++next_idx;
      } else {
        return Error::unsupported("pin at " + hex_addr(extra) +
                                  " collides with sled footprint starting at " +
                                  hex_addr(first));
      }
    }

    std::uint64_t push_len = last - first + 1;
    if (push_len > 5)
      return Error::unsupported("dense pin run of length " + std::to_string(push_len) +
                                " at " + hex_addr(first) +
                                " exceeds single-push sled capacity (the paper reports "
                                "dense areas of size 2-3 in practice)");

    ZIPR_TRY(space_.reserve(first, footprint_end - first));

    // Materialize the sled bytes.
    Bytes sled;
    for (std::uint64_t k = 0; k < push_len; ++k) sled.push_back(0x68);
    for (int k = 0; k < 4; ++k) sled.push_back(0x90);
    ZIPR_TRY(write_bytes(first, sled));

    // Each 0x68 entry pushes the imm32 formed by the 4 bytes after it.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;  // (value, entry addr)
    for (std::uint64_t p = first; p <= last; ++p) {
      std::uint32_t value = 0;
      for (int b = 0; b < 4; ++b) {
        std::uint64_t q = p + 1 + static_cast<std::uint64_t>(b);
        std::uint8_t byte = q <= last ? 0x68 : 0x90;
        value |= static_cast<std::uint32_t>(byte) << (8 * b);
      }
      entries.emplace_back(p, value);
    }

    ZIPR_ASSIGN_OR_RETURN(InsnId dispatch_head,
                          build_sled_dispatch(entries, nop_region_target));
    // The jump after the nop tail carries control into the dispatcher.
    ZIPR_TRY(emit_insn_at(isa::make_jmp(0, BranchWidth::kRel32), jmp_at));
    pending_.push_back({jmp_at, dispatch_head, jmp_at});

    ++stats_.sleds;
    stats_.sled_entries += entries.size() + (nop_region_target != kNullInsn ? 1 : 0);
    // Runs are discovered in ascending address order, so the vector stays
    // sorted for the binary searches in reserve_pin_sites().
    sled_handled_.insert(sled_handled_.end(),
                         addrs.begin() + static_cast<std::ptrdiff_t>(i),
                         addrs.begin() + static_cast<std::ptrdiff_t>(next_idx));
    i = next_idx;
  }
  return Status::success();
}

Result<InsnId> Reassembler::build_sled_dispatch(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& entries,
    InsnId nop_region_target) {
  irdb::Database& db = prog_.db;
  auto ri = [](Op op, std::uint8_t reg, std::int64_t imm) {
    isa::Insn in;
    in.op = op;
    in.ra = reg;
    in.imm = imm;
    return in;
  };
  auto reg1 = [](Op op, std::uint8_t reg) {
    isa::Insn in;
    in.op = op;
    in.ra = reg;
    return in;
  };
  auto mem = [](Op op, std::uint8_t ra, std::uint8_t rb, std::int64_t disp) {
    isa::Insn in;
    in.op = op;
    in.ra = ra;
    in.rb = rb;
    in.imm = disp;
    return in;
  };
  auto rr_cmp = [](std::uint8_t ra, std::uint8_t rb) {
    isa::Insn in;
    in.op = Op::kCmp;
    in.ra = ra;
    in.rb = rb;
    return in;
  };

  // Dispatch preamble: preserve r0/r6, fetch the sled's pushed word.
  //   push r0 ; push r6 ; load r0, [sp+16]
  // Sled constants exceed the signed imm32 range (they are built from
  // 0x68/0x90 bytes), so each comparison materializes its constant with
  // movi64 into the second saved scratch register.
  // NOTE (documented limitation, as in the paper): dispatch comparison
  // clobbers condition flags; programs that carry flags across an indirect
  // transfer into a dense-pin region are not supported.
  InsnId head = db.add_new(reg1(Op::kPush, 0));
  InsnId save6 = db.add_new(reg1(Op::kPush, 6));
  InsnId loadv = db.add_new(mem(Op::kLoad, 0, isa::kSpReg, 16));
  db.insn(head).fallthrough = save6;
  db.insn(save6).fallthrough = loadv;

  InsnId prev = loadv;
  for (const auto& [pin_addr, value] : entries) {
    InsnId pinned = db.pinned_at(pin_addr);
    if (pinned == kNullInsn)
      return Error::internal("sled entry at unpinned address " + hex_addr(pin_addr));
    // fix_i: pop r6 ; pop r0 ; addi sp, 8 (drop the pushed word) ; jmp target_i
    InsnId fix = db.add_new(reg1(Op::kPop, 6));
    InsnId fix2 = db.add_new(reg1(Op::kPop, 0));
    InsnId drop = db.add_new(ri(Op::kAddI, isa::kSpReg, 8));
    InsnId go = db.add_new(isa::make_jmp(0, BranchWidth::kRel32));
    db.insn(fix).fallthrough = fix2;
    db.insn(fix2).fallthrough = drop;
    db.insn(drop).fallthrough = go;
    db.insn(go).target = pinned;

    // movi64 r6, V_i ; cmp r0, r6 ; jeq fix_i
    InsnId setv = db.add_new(ri(Op::kMovI64, 6, static_cast<std::int64_t>(value)));
    InsnId cmp = db.add_new(rr_cmp(0, 6));
    InsnId br = db.add_new(isa::make_jcc(isa::Cond::kEq, 0, BranchWidth::kRel32));
    db.insn(br).target = fix;
    db.insn(prev).fallthrough = setv;
    db.insn(setv).fallthrough = cmp;
    db.insn(cmp).fallthrough = br;
    prev = br;
  }

  // No value matched: control entered through the nop region (no push).
  // Restore scratch state and continue at the nop-region pin, or trap.
  InsnId restore6 = db.add_new(reg1(Op::kPop, 6));
  InsnId restore0 = db.add_new(reg1(Op::kPop, 0));
  db.insn(prev).fallthrough = restore6;
  db.insn(restore6).fallthrough = restore0;
  if (nop_region_target != kNullInsn) {
    InsnId go = db.add_new(isa::make_jmp(0, BranchWidth::kRel32));
    db.insn(go).target = nop_region_target;
    db.insn(restore0).fallthrough = go;
  } else {
    InsnId trap = db.add_new(isa::make_hlt());
    db.insn(restore0).fallthrough = trap;
  }
  return head;
}

Status Reassembler::reserve_pin_sites() {
  // pins() is already a sorted flat vector; iterate it in place.
  const auto& pins = prog_.db.pins();
  stats_.pins = pins.size();

  for (std::size_t i = 0; i < pins.size(); ++i) {
    auto [addr, target] = pins[i];
    if (std::binary_search(sled_handled_.begin(), sled_handled_.end(), addr)) continue;

    std::uint64_t gap = UINT64_MAX;
    if (i + 1 < pins.size()) gap = pins[i + 1].first - addr;

    bool reserved = false;
    for (std::uint8_t size = 5; size >= 2; --size) {
      if (size <= gap && space_.is_free(addr, size)) {
        ZIPR_TRY(space_.reserve(addr, size));
        pin_sites_.push_back({addr, size, target, std::nullopt, false});
        reserved = true;
        break;
      }
    }
    if (reserved) continue;

    // Last resort: a pinned 1-byte terminator (ret/hlt) can simply be
    // emitted in place of a reference.
    const auto row = prog_.db.insn(target);
    if (!row.verbatim && row.decoded.length == 1 && !row.decoded.has_fallthrough() &&
        space_.is_free(addr, 1)) {
      ZIPR_TRY(space_.reserve(addr, 1));
      ZIPR_TRY(emit_insn_at(row.decoded, addr));
      ++stats_.pins_in_place;
      continue;
    }
    return Error::unsupported("pin at " + hex_addr(addr) +
                              " has no room for a reference (squeezed by neighbours)");
  }

  // Second pass, after every pin slot is held: secure a chaining
  // trampoline within rel8 reach of each constrained (reserved < 5)
  // reference, while the space around it is still free (the paper runs
  // expansion/chaining ahead of dollop placement, Sec. II-C3).
  for (PinSite& site : pin_sites_) {
    if (site.reserved >= kLongJump) continue;
    const std::uint64_t win_lo = site.addr + 2 >= 128 ? site.addr - 126 : 0;
    const std::uint64_t win_hi = site.addr + 129;
    site.trampoline = space_.allocate_in_window(kLongJump, win_lo, win_hi, site.addr);
    if (!site.trampoline && space_.overflow_end() >= win_lo &&
        space_.overflow_end() <= win_hi) {
      site.trampoline = space_.allocate_overflow(kLongJump);
      site.trampoline_in_overflow = true;
    }
  }
  return Status::success();
}

// ---- stage 3+4: resolution, chaining, placement ----

Status Reassembler::resolve_all() {
  for (const auto& pin : pin_sites_) ZIPR_TRY(resolve_pin(pin));
  // The uDR loop: new references are appended while we drain.
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingRef ref = pending_[i];
    ZIPR_TRY(resolve_ref(ref));
  }
  return Status::success();
}

Status Reassembler::resolve_pin(const PinSite& pin) {
  // Pin-site coalescing, the "unmoved dollop" case (paper Sec. II-C4): if
  // the pinned instruction is still unplaced and the pin's reserved bytes
  // plus the free run behind them can hold the front of its dollop, emit
  // the dollop directly at its pinned address and elide the reference jump
  // altogether. The capacity gate runs BEFORE constructing the dollop:
  // construction takes ownership of the downstream chain, which must not
  // happen for attempts that cannot succeed.
  if (opts_.coalesce && pin.reserved >= kLongJump && !is_placed(pin.target)) {
    const auto trow = prog_.db.insn(pin.target);
    std::uint64_t avail = pin.reserved + space_.free_run_at(pin.addr + pin.reserved);
    std::uint64_t min_need = estimated_size(trow) +
                             (trow.decoded.has_fallthrough() ? kLongJump : 0);
    if (!trow.verbatim && min_need <= avail) {
      auto placed_fn = [this](InsnId id) { return is_placed(id); };
      Dollop* d = dollops_.dollop_starting_at(pin.target, placed_fn);
      if (d != nullptr) {
        if (d->size_estimate > avail) dollops_.split_to_fit(d, avail);
        if (d->size_estimate <= avail) {
          std::uint64_t budget = std::max<std::uint64_t>(d->size_estimate, pin.reserved);
          if (budget > pin.reserved)
            ZIPR_TRY(space_.reserve(pin.addr + pin.reserved, budget - pin.reserved));
          ++stats_.pins_in_place;
          ++stats_.jumps_elided;
          stats_.bytes_saved += kLongJump;
          return emit_dollop_at(d, pin.addr, budget, /*in_overflow=*/false);
        }
        // Construction already happened; fall through and place the dollop
        // through the strategy as usual.
      }
    }
  }

  ZIPR_ASSIGN_OR_RETURN(std::uint64_t t, ensure_placed(pin.target, pin.addr));

  auto release_trampoline = [&]() -> Status {
    if (!pin.trampoline) return Status::success();
    if (!pin.trampoline_in_overflow) return space_.release(*pin.trampoline, kLongJump);
    // An unused overflow trampoline that is still the frontier allocation
    // can be handed straight back to the bump allocator; otherwise it stays
    // as 5 filler bytes already counted in overflow_bytes.
    if (*pin.trampoline + kLongJump == space_.overflow_end())
      return space_.shrink_overflow(*pin.trampoline);
    return Status::success();
  };

  // A squeezed pin (reserved < 5) is glue: it must take the short form
  // whenever it reaches, there is no room for anything else.
  BranchWidth w = ref_width(pin.addr, t, /*can_short=*/true, /*glue=*/pin.reserved < kLongJump);
  if (w == BranchWidth::kRel8) {
    ZIPR_TRY(emit_insn_at(
        isa::make_jmp(static_cast<std::int64_t>(t) - static_cast<std::int64_t>(pin.addr + 2),
                      BranchWidth::kRel8),
        pin.addr));
    if (pin.reserved > kShortJump)
      ZIPR_TRY(space_.release(pin.addr + kShortJump, pin.reserved - kShortJump));
    ZIPR_TRY(release_trampoline());
    ++stats_.pin_refs_short;
    return Status::success();
  }
  if (pin.reserved >= kLongJump) {
    ZIPR_TRY(emit_insn_at(
        isa::make_jmp(static_cast<std::int64_t>(t) - static_cast<std::int64_t>(pin.addr + 5),
                      BranchWidth::kRel32),
        pin.addr));
    ZIPR_TRY(release_trampoline());
    ++stats_.pin_refs_long;
    return Status::success();
  }
  return chain_pin(pin);
}

Status Reassembler::chain_pin(const PinSite& pin) {
  // The reference must stay 2 bytes; hop through trampolines until a
  // 5-byte slot is reachable (Sec. II-C3, span-dependent jump chaining).
  std::uint64_t cur = pin.addr;
  ++stats_.chains;

  // Fast path: the trampoline reserved before placement.
  if (pin.trampoline) {
    std::uint64_t b = *pin.trampoline;
    ZIPR_TRY(emit_insn_at(
        isa::make_jmp(static_cast<std::int64_t>(b) - static_cast<std::int64_t>(cur + 2),
                      BranchWidth::kRel8),
        cur));
    ZIPR_TRY(emit_insn_at(isa::make_jmp(0, BranchWidth::kRel32), b));
    pending_.push_back({b, pin.target, b});
    return Status::success();
  }

  for (int hops = 0; hops < 64; ++hops) {
    // Base window for a jump placed at b, reached from a 2-byte jmp at cur:
    // b = (cur+2) + disp8, disp8 in [-128, 127].
    const std::uint64_t win_lo = cur + 2 >= 128 ? cur - 126 : 0;
    const std::uint64_t win_hi = cur + 129;

    std::optional<std::uint64_t> slot = space_.allocate_in_window(kLongJump, win_lo, win_hi, cur);
    if (!slot && space_.overflow_end() >= win_lo && space_.overflow_end() <= win_hi) {
      // The overflow frontier itself is within reach: trampoline there.
      slot = space_.allocate_overflow(kLongJump);
    }
    if (slot) {
      ZIPR_TRY(emit_insn_at(
          isa::make_jmp(static_cast<std::int64_t>(*slot) - static_cast<std::int64_t>(cur + 2),
                        BranchWidth::kRel8),
          cur));
      ZIPR_TRY(emit_insn_at(isa::make_jmp(0, BranchWidth::kRel32), *slot));
      pending_.push_back({*slot, pin.target, *slot});
      return Status::success();
    }
    // No 5-byte slot in reach: take a 2-byte hop as far forward as we can.
    if (auto c = space_.allocate_in_window(kShortJump, win_lo, win_hi, win_hi)) {
      ZIPR_TRY(emit_insn_at(
          isa::make_jmp(static_cast<std::int64_t>(*c) - static_cast<std::int64_t>(cur + 2),
                        BranchWidth::kRel8),
          cur));
      cur = *c;
      ++stats_.chain_hops;
      continue;
    }
    return Error::out_of_space("chaining from pin " + hex_addr(pin.addr) +
                               " found no reachable trampoline space");
  }
  return Error::out_of_space("chain from pin " + hex_addr(pin.addr) + " exceeded hop limit");
}

Status Reassembler::resolve_ref(const PendingRef& ref) {
  ZIPR_ASSIGN_OR_RETURN(std::uint64_t t, ensure_placed(ref.target, ref.preferred));
  ZIPR_TRY(patch_rel32(ref.site, t));
  ++stats_.refs_resolved;
  return Status::success();
}

Result<std::uint64_t> Reassembler::ensure_placed(InsnId insn,
                                                 std::optional<std::uint64_t> preferred) {
  if (is_placed(insn)) return placed_addr(insn);
  auto placed_fn = [this](InsnId id) { return is_placed(id); };
  Dollop* d = dollops_.dollop_starting_at(insn, placed_fn);
  if (!d) return Error::internal("instruction neither placed nor materializable");
  ZIPR_TRY(place_dollop(d, preferred));
  if (!is_placed(insn)) return Error::internal("dollop placement failed to register target");
  return placed_addr(insn);
}

Status Reassembler::place_dollop(Dollop* d, std::optional<std::uint64_t> preferred) {
  assert(!d->insns.empty());
  PlacementRequest req;
  req.size = d->size_estimate;
  req.min_viable = estimated_size(prog_.db.insn(d->insns.front())) + kLongJump;
  req.preferred = preferred;

  std::optional<Interval> iv = strategy_->pick(space_, req);
  if (iv && iv->size() < req.size) {
    // Split the dollop so the head fills the fragment (Sec. II-C4).
    if (dollops_.split_to_fit(d, iv->size()) == nullptr) {
      iv = std::nullopt;  // unsplittable: send it to the overflow area
    }
  }

  if (!iv) {
    std::uint64_t base = space_.allocate_overflow(d->size_estimate);
    return emit_dollop_at(d, base, d->size_estimate, /*in_overflow=*/true);
  }
  ZIPR_TRY(space_.reserve(iv->begin, d->size_estimate));
  return emit_dollop_at(d, iv->begin, d->size_estimate, /*in_overflow=*/false);
}

Status Reassembler::emit_dollop_at(Dollop* d, std::uint64_t base, std::uint64_t budget,
                                   bool in_overflow) {
  std::uint64_t addr = base;
  std::uint64_t region_end = base + budget;  // bytes this emission owns
  std::size_t run = 0;                       // successors absorbed so far
  auto placed_fn = [this](InsnId id) { return is_placed(id); };

  // Bytes claimable past the cursor: slack inside our region plus the free
  // run after it (main span), or unbounded at the bump frontier (overflow;
  // emission performs no other overflow allocation, so our region is the
  // frontier and can grow without bound). Checked BEFORE constructing the
  // successor dollop: construction takes ownership of the downstream chain,
  // which perturbs every later placement decision, so it must not happen
  // for attempts that cannot possibly succeed (fragment regions walled in
  // by occupied bytes).
  auto claimable = [&]() -> std::uint64_t {
    std::uint64_t avail = region_end - addr;
    if (in_overflow)
      return region_end == space_.overflow_end() ? UINT64_MAX : avail;
    return avail + space_.free_run_at(region_end);
  };

  // Claim the successor dollop's bytes directly past the cursor, growing
  // the region. Only absorbs the successor whole -- splitting it to fit
  // would trade the elided jump for a new one at the split point. Returns
  // false when it does not fit.
  auto claim_successor = [&](Dollop* next) -> Result<bool> {
    std::uint64_t avail = region_end - addr;
    std::uint64_t cap = claimable();
    if (next->size_estimate > cap) return false;
    if (next->size_estimate > avail) {
      std::uint64_t extra = next->size_estimate - avail;
      if (in_overflow) {
        if (space_.allocate_overflow(extra) != region_end)
          return Error::internal("overflow frontier moved during dollop emission");
      } else {
        ZIPR_TRY(space_.reserve(region_end, extra));
      }
      region_end += extra;
    }
    ++run;
    ++stats_.dollops_coalesced;
    ++stats_.jumps_elided;
    stats_.bytes_saved += kLongJump;
    return true;
  };

  for (;;) {
    const bool may_coalesce = opts_.coalesce && run < opts_.max_coalesce_run;

    for (std::size_t i = 0; i + 1 < d->insns.size(); ++i) {
      InsnId id = d->insns[i];
      ZIPR_ASSIGN_OR_RETURN(std::size_t n, emit_row_at(prog_.db.insn(id), addr));
      mark_placed(id, addr);
      addr += n;
      ++stats_.insns_placed;
    }

    // The terminal row. An unconditional jmp to an unplaced target IS the
    // dollop's fallthrough continuation in disguise (jmp never has a
    // fallthrough, so it always ends its dollop): instead of emitting a
    // rel32 placeholder and letting the uDR loop place the target anywhere,
    // elide the jump and keep emitting the target dollop in place (paper
    // Sec. III). The elided row resolves to the successor's first byte, so
    // references to the jump itself still land on equivalent code.
    InsnId last = d->insns.back();
    const auto lrow = prog_.db.insn(last);
    Dollop* next = nullptr;
    if (may_coalesce && !lrow.verbatim && lrow.decoded.op == Op::kJmp &&
        lrow.target != kNullInsn && !is_placed(lrow.target) &&
        claimable() >= isa::kMaxInsnLen)
      next = dollops_.dollop_starting_at(lrow.target, placed_fn);
    if (next != nullptr) {
      ZIPR_ASSIGN_OR_RETURN(bool claimed, claim_successor(next));
      if (claimed) {
        mark_placed(last, addr);  // the jump's address is its target's code
        ++stats_.insns_placed;
        ++stats_.dollops_placed;
        ZIPR_TRY(dollops_.retire(d));
        d = next;
        continue;
      }
    }
    ZIPR_ASSIGN_OR_RETURN(std::size_t n, emit_row_at(lrow, addr));
    mark_placed(last, addr);
    addr += n;
    ++stats_.insns_placed;

    const InsnId cont = d->continuation;
    ++stats_.dollops_placed;
    ZIPR_TRY(dollops_.retire(d));
    d = nullptr;  // retired: the manager destroyed it

    if (cont == kNullInsn) break;  // ends in a non-fallthrough instruction

    if (is_placed(cont)) {
      // Already placed: the trailing jump is glue, shortest reaching form.
      std::uint64_t t = placed_addr(cont);
      BranchWidth w = ref_width(addr, t, /*can_short=*/true, /*glue=*/true);
      std::uint64_t len = w == BranchWidth::kRel8 ? kShortJump : kLongJump;
      ZIPR_TRY(emit_insn_at(
          isa::make_jmp(static_cast<std::int64_t>(t) - static_cast<std::int64_t>(addr + len), w),
          addr));
      addr += len;
      ++stats_.cont_jumps;
      stats_.trailing_jump_bytes += len;
      break;
    }

    // Unplaced continuation (a split tail): coalesce it in place if the
    // bytes past the cursor are claimable.
    if (may_coalesce && claimable() >= isa::kMaxInsnLen) {
      next = dollops_.dollop_starting_at(cont, placed_fn);
      if (next != nullptr) {
        ZIPR_ASSIGN_OR_RETURN(bool claimed, claim_successor(next));
        if (claimed) {
          d = next;
          continue;
        }
      }
    }

    // Trailing rel32 placeholder; the uDR loop patches it later.
    ZIPR_TRY(emit_insn_at(isa::make_jmp(0, BranchWidth::kRel32), addr));
    pending_.push_back({addr, cont, addr});
    addr += kLongJump;
    ++stats_.cont_jumps;
    stats_.trailing_jump_bytes += kLongJump;
    break;
  }

  if (addr > region_end)
    return Error::internal("dollop emission overran its budget at " + hex_addr(base));
  if (in_overflow) {
    // The bump allocator can hand back the conservative tail immediately.
    ZIPR_TRY(space_.shrink_overflow(addr));
  } else if (addr < region_end) {
    ZIPR_TRY(space_.release(addr, region_end - addr));
  }
  return Status::success();
}

Result<std::size_t> Reassembler::emit_row_at(irdb::ConstRowRef row, std::uint64_t addr) {
  if (row.verbatim)
    return Error::internal("verbatim row reached dollop emission");

  isa::Insn in = row.decoded;

  if (in.has_static_target()) {
    if (row.target != kNullInsn) {
      const bool can_short = in.op != Op::kCall;  // call has no rel8 form
      if (is_placed(row.target)) {
        std::uint64_t t = placed_addr(row.target);
        in.width = ref_width(addr, t, can_short, /*glue=*/false);
        int len = isa::encoded_length(in);
        in.imm = static_cast<std::int64_t>(t) - static_cast<std::int64_t>(addr + len);
        return emit_insn_at(in, addr);
      }
      // Unplaced: emit the unconstrained form and register an unresolved
      // reference (all jmp32/jcc32/call encodings are [op][rel32]).
      in.width = BranchWidth::kRel32;
      in.imm = 0;
      ZIPR_ASSIGN_OR_RETURN(std::size_t n, emit_insn_at(in, addr));
      pending_.push_back({addr, row.target, addr});
      return n;
    }
    if (row.abs_target) {
      in.width = BranchWidth::kRel32;
      in.imm = static_cast<std::int64_t>(*row.abs_target) -
               static_cast<std::int64_t>(addr + isa::kJmp32Len);
      return emit_insn_at(in, addr);
    }
    return Error::internal("branch row has neither logical nor absolute target");
  }

  if (in.is_pc_relative_data()) {
    if (!row.data_ref) return Error::internal("pc-relative row without data_ref");
    in.imm = static_cast<std::int64_t>(*row.data_ref) -
             static_cast<std::int64_t>(addr + isa::encoded_length(in));
  }

  return emit_insn_at(in, addr);
}

Result<zelf::Image> Reassembler::run() {
  ZIPR_TRY(place_verbatim_ranges());
  ZIPR_TRY(build_sleds());
  ZIPR_TRY(reserve_pin_sites());
  ZIPR_TRY(resolve_all());
  ZIPR_TRY(apply_log());

  stats_.dollop_splits = dollops_.total_splits();
  stats_.overflow_bytes = space_.overflow_used();
  stats_.free_bytes_left = space_.free_bytes();

  zelf::Image out = prog_.original;
  zelf::Segment& text = out.text();
  text.bytes = main_buf_;
  // Resize the overflow tail to exactly what the bump allocator handed out
  // (writes may have been shorter than allocations).
  overflow_buf_.resize(static_cast<std::size_t>(space_.overflow_used()), kFillByte);
  put_bytes(text.bytes, overflow_buf_);
  text.memsize = text.bytes.size();
  stats_.output_text_bytes = text.bytes.size();

  ZIPR_TRY(out.validate());
  return out;
}

}  // namespace zipr::rewriter
