// Output address-space management for reassembly (paper Sec. II-C1).
//
// The rewritten program's text space starts empty except for verbatim
// byte ranges; the span of the ORIGINAL text segment is reused as free
// space for references and relocated dollops, and an "infinite" overflow
// area beginning at the original text end absorbs whatever does not fit.
// File-size overhead of a rewrite is, by construction, the number of
// overflow bytes actually used.
//
// Every allocation-path query is O(log n) in the number of free ranges
// and allocation-free: the free set is an IntervalSet with a size-ordered
// secondary index (best-fit, largest) and window queries visit only the
// ranges overlapping the window. Placement strategies read the free set
// through free_set() visitors -- never through a materialized copy.
#pragma once

#include <optional>

#include "support/bytes.h"
#include "support/interval.h"
#include "support/status.h"

namespace zipr::rewriter {

class MemorySpace {
 public:
  /// `main` is the original text segment's address span. The overflow area
  /// begins at main.end.
  explicit MemorySpace(Interval main);

  /// Mark [addr, addr+size) occupied. Must currently be free. O(log n).
  Status reserve(std::uint64_t addr, std::uint64_t size);

  /// Return [addr, addr+size) to the free list (e.g. the unused tail of a
  /// conservatively-sized allocation). Only valid for main-span bytes that
  /// are currently occupied; out-of-span or already-free bytes yield an
  /// error (and leave the free set untouched) rather than corrupting the
  /// accounting when asserts are compiled out. O(log n).
  Status release(std::uint64_t addr, std::uint64_t size);

  /// True if [addr, addr+size) is entirely free main-span space. O(log n).
  bool is_free(std::uint64_t addr, std::uint64_t size) const;

  /// Allocate `size` bytes anywhere in the main span (best fit: the
  /// smallest free range that holds `size`). Returns the base address, or
  /// nullopt if no free range fits. O(log n).
  std::optional<std::uint64_t> allocate(std::uint64_t size);

  /// Allocate `size` bytes whose base lies in [lo, hi] (inclusive bounds on
  /// the base address), nearest to `prefer`. Used for chain trampolines
  /// that must sit within a short branch's reach. Visits only free ranges
  /// overlapping the window: O(log n + k) for k such ranges.
  std::optional<std::uint64_t> allocate_in_window(std::uint64_t size, std::uint64_t lo,
                                                  std::uint64_t hi, std::uint64_t prefer);

  /// Length of the contiguous free run starting exactly at `addr` (0 when
  /// `addr` is occupied or outside the main span). Lets the coalescing
  /// emitter ask "how far can I keep writing past my cursor?" in O(log n).
  std::uint64_t free_run_at(std::uint64_t addr) const;

  /// Allocate from the overflow area (always succeeds; bump pointer).
  std::uint64_t allocate_overflow(std::uint64_t size);

  /// Roll the overflow bump pointer back to `addr`. Only valid immediately
  /// after the most recent overflow allocation, to return its unused tail.
  /// An address below the overflow base is rejected (it would silently
  /// donate main-span bytes to the bump allocator); addresses at or past
  /// the current frontier are a no-op.
  Status shrink_overflow(std::uint64_t addr);

  /// The free set itself, for copy-free iteration / visitor queries
  /// (placement strategies use for_each_fitting / for_each_in / best_fit).
  const IntervalSet& free_set() const { return free_; }

  /// All free main-span ranges, ascending. Materializes a vector --
  /// stats/debug/test use only; allocation paths use free_set().
  std::vector<Interval> free_ranges() const { return free_.intervals(); }

  /// Largest free main-span range size (0 when full). O(1).
  std::uint64_t largest_free() const;

  const Interval& main_span() const { return main_; }
  std::uint64_t overflow_begin() const { return main_.end; }
  std::uint64_t overflow_end() const { return overflow_next_; }
  std::uint64_t overflow_used() const { return overflow_next_ - main_.end; }

  /// Total free main-span bytes. O(1).
  std::uint64_t free_bytes() const { return free_.total_size(); }

 private:
  Interval main_;
  IntervalSet free_;
  std::uint64_t overflow_next_;
};

}  // namespace zipr::rewriter
