// Output address-space management for reassembly (paper Sec. II-C1).
//
// The rewritten program's text space starts empty except for verbatim
// byte ranges; the span of the ORIGINAL text segment is reused as free
// space for references and relocated dollops, and an "infinite" overflow
// area beginning at the original text end absorbs whatever does not fit.
// File-size overhead of a rewrite is, by construction, the number of
// overflow bytes actually used.
#pragma once

#include <optional>

#include "support/bytes.h"
#include "support/interval.h"
#include "support/status.h"

namespace zipr::rewriter {

class MemorySpace {
 public:
  /// `main` is the original text segment's address span. The overflow area
  /// begins at main.end.
  explicit MemorySpace(Interval main);

  /// Mark [addr, addr+size) occupied. Must currently be free.
  Status reserve(std::uint64_t addr, std::uint64_t size);

  /// Return [addr, addr+size) to the free list (e.g. the unused tail of a
  /// conservatively-sized allocation). Only valid for main-span bytes.
  void release(std::uint64_t addr, std::uint64_t size);

  /// True if [addr, addr+size) is entirely free main-span space.
  bool is_free(std::uint64_t addr, std::uint64_t size) const;

  /// Allocate `size` bytes anywhere in the main span (first fit).
  /// Returns the base address, or nullopt if no free range fits.
  std::optional<std::uint64_t> allocate(std::uint64_t size);

  /// Allocate `size` bytes whose base lies in [lo, hi] (inclusive bounds on
  /// the base address), nearest to `prefer`. Used for chain trampolines
  /// that must sit within a short branch's reach.
  std::optional<std::uint64_t> allocate_in_window(std::uint64_t size, std::uint64_t lo,
                                                  std::uint64_t hi, std::uint64_t prefer);

  /// Allocate from the overflow area (always succeeds; bump pointer).
  std::uint64_t allocate_overflow(std::uint64_t size);

  /// Roll the overflow bump pointer back to `addr`. Only valid immediately
  /// after the most recent overflow allocation, to return its unused tail.
  void shrink_overflow(std::uint64_t addr);

  /// All free main-span ranges, ascending.
  std::vector<Interval> free_ranges() const { return free_.intervals(); }

  /// Largest free main-span range size (0 when full).
  std::uint64_t largest_free() const;

  const Interval& main_span() const { return main_; }
  std::uint64_t overflow_begin() const { return main_.end; }
  std::uint64_t overflow_end() const { return overflow_next_; }
  std::uint64_t overflow_used() const { return overflow_next_ - main_.end; }

  std::uint64_t free_bytes() const { return free_.total_size(); }

 private:
  Interval main_;
  IntervalSet free_;
  std::uint64_t overflow_next_;
};

}  // namespace zipr::rewriter
