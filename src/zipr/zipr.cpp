#include "zipr/zipr.h"

#include "transform/api.h"

namespace zipr {

Result<RewriteResult> rewrite(const zelf::Image& input, const RewriteOptions& options) {
  // Phase 1: IR Construction.
  ZIPR_ASSIGN_OR_RETURN(analysis::IrProgram prog, analysis::build_ir(input, options.analysis));

  // Phase 2: Transformation. Mandatory invariants are checked before and
  // after the user-specified transforms run.
  ZIPR_TRY(transform::verify_mandatory(prog));
  std::vector<std::string> names = options.transforms;
  if (names.empty()) names.push_back("null");
  std::uint64_t transform_seed = options.seed;
  for (const auto& name : names) {
    ZIPR_ASSIGN_OR_RETURN(auto t, transform::make_transform(name));
    transform::TransformContext ctx(prog, transform_seed++);
    ZIPR_TRY(t->apply(ctx));
  }
  ZIPR_TRY(transform::verify_mandatory(prog));

  // Phase 3: Reassembly.
  rewriter::ReassemblyOptions ropts;
  ropts.placement = options.placement;
  ropts.seed = options.seed;
  ropts.prefer_short_refs = options.prefer_short_refs.value_or(
      options.placement != rewriter::PlacementKind::kDiversity);
  rewriter::Reassembler reassembler(prog, ropts);
  ZIPR_ASSIGN_OR_RETURN(zelf::Image out, reassembler.run());

  RewriteResult result;
  result.image = std::move(out);
  result.analysis = prog.stats;
  result.reassembly = reassembler.stats();
  return result;
}

}  // namespace zipr
