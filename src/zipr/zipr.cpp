#include "zipr/zipr.h"

#include <chrono>

#include "analysis/scratch.h"
#include "support/rng.h"
#include "transform/api.h"
#include "zipr/workspace.h"

namespace zipr {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}
}  // namespace

// rewrite() is REENTRANT: every piece of pipeline state (IR program,
// transform contexts, reassembler, placement strategy, RNGs) lives in this
// call frame. The only process-global state it touches is the transform
// registry (mutex-guarded, and mutated only by register_transform) and the
// logger (thread-safe sink). Concurrent calls on distinct inputs -- or even
// the same input -- are safe; the batch engine (src/batch) relies on this.
Result<RewriteResult> rewrite(const zelf::Image& input, const RewriteOptions& options,
                              const ExecPolicy& exec) {
  StageTimes timing;
  Clock::time_point stage_start = Clock::now();

  // Phase 1: IR Construction.
  analysis::AnalysisScratch* scratch =
      exec.workspace ? &exec.workspace->analysis() : nullptr;
  ZIPR_ASSIGN_OR_RETURN(analysis::IrProgram prog,
                        analysis::build_ir(input, options.analysis, exec.jobs, scratch));
  timing.ir_ms = ms_since(stage_start);
  stage_start = Clock::now();

  // Phase 2: Transformation. Mandatory invariants are checked before and
  // after the user-specified transforms run.
  ZIPR_TRY(transform::verify_mandatory(prog));
  std::vector<std::string> names = options.transforms;
  if (names.empty()) names.push_back("null");
  // Every random consumer gets a seed mixed from (options.seed, stream id):
  // stream 0 is placement, stream 1+i is the i-th transform. Sequential
  // seeds (seed, seed+1, ...) would hand diversity placement and randomized
  // transforms correlated SplitMix64 streams.
  std::uint64_t stream = 1;
  transform::TransformConfig tconfig;
  tconfig.cov_prune = options.cov_prune;
  transform::InstrumentationStats instrumentation;
  for (const auto& name : names) {
    ZIPR_ASSIGN_OR_RETURN(auto t, transform::make_transform(name));
    transform::TransformContext ctx(prog, derive_seed(options.seed, stream++), tconfig);
    ZIPR_TRY(t->apply(ctx));
    instrumentation += ctx.instrumentation();
  }
  ZIPR_TRY(transform::verify_mandatory(prog));
  timing.transform_ms = ms_since(stage_start);
  stage_start = Clock::now();

  // Phase 3: Reassembly.
  rewriter::ReassemblyOptions ropts;
  ropts.placement = options.placement;
  ropts.seed = derive_seed(options.seed, 0);
  ropts.prefer_short_refs = options.prefer_short_refs.value_or(
      options.placement != rewriter::PlacementKind::kDiversity);
  ropts.coalesce = options.coalesce.value_or(
      options.placement != rewriter::PlacementKind::kDiversity);
  ropts.jobs = exec.jobs;
  ropts.arena = exec.workspace ? exec.workspace->arena() : nullptr;
  rewriter::Reassembler reassembler(prog, ropts);
  ZIPR_ASSIGN_OR_RETURN(zelf::Image out, reassembler.run());

  timing.reassembly_ms = ms_since(stage_start);

  RewriteResult result;
  result.image = std::move(out);
  result.analysis = prog.stats;
  result.reassembly = reassembler.stats();
  result.instrumentation = instrumentation;
  result.timing = timing;
  // Let the workspace see this cycle's demand (and trim if an earlier
  // oversized request left it holding far more than recent traffic needs).
  if (exec.workspace) exec.workspace->finish_cycle();
  return result;
}

}  // namespace zipr
