#include "zipr/workspace.h"

namespace zipr {

void RewriteWorkspace::finish_cycle() {
  std::size_t demand = arena_.used_bytes() + analysis_.used_bytes();
  window_[cycles_++ % kWindow] = demand;
  std::size_t peak = *std::max_element(window_, window_ + kWindow);
  std::size_t budget = 2 * peak + kSlack;
  if (retained_bytes() <= budget) return;
  // The arena trims to whole chunks; the scratch vectors release outright
  // and re-reserve to exact need next pass. Both are cost, not
  // correctness: the next rewrite simply starts cold again.
  arena_.trim(2 * arena_.used_bytes() + kSlack);
  analysis_.trim();
}

WorkspacePool::Lease WorkspacePool::checkout() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      auto ws = std::move(idle_.back());
      idle_.pop_back();
      return Lease(this, std::move(ws));
    }
    ++created_;
  }
  // Construct outside the lock: a fresh workspace is cheap but there is no
  // reason to serialize concurrent cold checkouts on it.
  return Lease(this, std::make_unique<RewriteWorkspace>());
}

std::size_t WorkspacePool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

std::size_t WorkspacePool::idle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_.size();
}

void WorkspacePool::give_back(std::unique_ptr<RewriteWorkspace> ws) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(ws));
}

}  // namespace zipr
