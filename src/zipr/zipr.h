// Zipr: the public entry point of the static binary rewriter.
//
// One call drives the paper's full pipeline (Fig. 1):
//
//   IR Construction  ->  Transformation  ->  Reassembly
//   (analysis/)          (transform/)        (zipr/)
//
//   zelf::Image in = ...;
//   zipr::RewriteOptions opts;
//   opts.transforms = {"cfi"};                 // or {}, {"stackpad"}, ...
//   auto result = zipr::rewrite(in, opts);
//   // result->image runs in the VM / serializes with zelf::write_image.
//
// The rewriter consumes only segment bytes and the entry point -- never
// symbols, debug info or source -- and the output binary contains NO copy
// of the original code: original text space is reclaimed for references
// and relocated dollops, with spill appended as overflow.
#pragma once

#include "analysis/ir_builder.h"
#include "transform/api.h"
#include "zipr/reassembler.h"

namespace zipr {

struct RewriteOptions {
  analysis::AnalysisOptions analysis;

  /// Dollop placement strategy (paper Sec. III). kNearfit favors memory
  /// overhead (the CGC configuration); kDiversity favors layout
  /// randomization; kPinPage aggressively fills pinned pages.
  rewriter::PlacementKind placement = rewriter::PlacementKind::kNearfit;

  /// Seed for all randomized decisions (diversity layout, transform
  /// randomness). Same seed + same input => identical output.
  std::uint64_t seed = 1;

  /// Override the short-reference relaxation choice; by default it tracks
  /// the strategy (nearfit/pinpage relax lazily, diversity unconstrains
  /// everything as the paper's default does).
  std::optional<bool> prefer_short_refs;

  /// Override fallthrough dollop coalescing (elide the trailing jump by
  /// emitting an unplaced successor directly past the cursor). Defaults to
  /// the strategy's preference: on for nearfit/pinpage, off for diversity
  /// (coalescing correlates successor layout with predecessor layout,
  /// which would weaken the randomization diversity exists to provide).
  std::optional<bool> coalesce;

  /// Registered transform names, applied in order (Sec. II-B2). An empty
  /// list equals {"null"}.
  std::vector<std::string> transforms;

  /// CFG-aware selective coverage instrumentation (dominator pruning,
  /// liveness-elided stubs). Off falls back to the conservative
  /// every-block instrumentation.
  bool cov_prune = true;
};

/// Wall-clock time spent in each pipeline phase of one rewrite() call.
struct StageTimes {
  double ir_ms = 0;          ///< Phase 1: IR construction
  double transform_ms = 0;   ///< Phase 2: mandatory checks + transforms
  double reassembly_ms = 0;  ///< Phase 3: reassembly
  double total_ms() const { return ir_ms + transform_ms + reassembly_ms; }
};

struct RewriteResult {
  zelf::Image image;
  analysis::AnalysisStats analysis;
  rewriter::RewriteStats reassembly;
  transform::InstrumentationStats instrumentation;  ///< summed over transforms
  StageTimes timing;
};

/// Execution policy for one rewrite() call: knobs that control HOW the
/// pipeline runs, never WHAT it produces. Deliberately separate from
/// RewriteOptions -- options are the semantic cache/serialization key
/// (serve layer), and the output is byte-identical for any jobs value,
/// so keying on jobs would only split the artifact cache.
class RewriteWorkspace;  // workspace.h: recycled per-worker scratch state

struct ExecPolicy {
  /// Intra-rewrite parallelism: worker count for the parallel phases
  /// (chunked linear-sweep disassembly, dollop encode + patch apply).
  /// <= 1 runs every phase inline on the calling thread; 0 or negative
  /// means "use the hardware". Output bytes are identical for all values.
  int jobs = 1;

  /// Recycled scratch state (see workspace.h): the pipeline's large
  /// transient tables and the reassembly arena borrow this workspace's
  /// capacity instead of allocating fresh. Null allocates per call (the
  /// reassembly arena then falls back to its bounded thread_local). Every
  /// borrowed buffer is re-initialized per rewrite -- output bytes are
  /// identical with or without a workspace, so like `jobs` this stays an
  /// execution knob, never part of the cache key.
  RewriteWorkspace* workspace = nullptr;
};

/// Rewrite `input`, applying the configured transforms.
///
/// REENTRANT: all pipeline state is per-call; concurrent rewrites from
/// multiple threads are safe (see the batch engine, src/batch). The only
/// shared state touched is the mutex-guarded transform registry and the
/// thread-safe logger.
Result<RewriteResult> rewrite(const zelf::Image& input, const RewriteOptions& options = {},
                              const ExecPolicy& exec = {});

}  // namespace zipr
