#include "zipr/options_codec.h"

#include <bit>
#include <charconv>
#include <cstdio>

namespace zipr {

namespace {

// ---- completeness guard -------------------------------------------------
//
// Every aggregate that feeds the canonical form is counted here. If any of
// these asserts fire you added (or removed) an option field: update
// serialize_options(), parse_options(), the round-trip test in
// tests/serve_test.cpp, and then the expected count. Skipping this step
// would let two different configurations hash to the same cache key and
// serve each other's artifacts.
using codec_detail::field_count;

static_assert(field_count<analysis::TraversalOptions>() == 2,
              "TraversalOptions changed: update the canonical options serialization "
              "(options_codec.cpp) and its round-trip test before bumping this count");
static_assert(field_count<analysis::PinningOptions>() == 4,
              "PinningOptions changed: update the canonical options serialization "
              "(options_codec.cpp) and its round-trip test before bumping this count");
static_assert(field_count<analysis::AnalysisOptions>() == 2,
              "AnalysisOptions changed: update the canonical options serialization "
              "(options_codec.cpp) and its round-trip test before bumping this count");
static_assert(field_count<RewriteOptions>() == 7,
              "RewriteOptions changed: update the canonical options serialization "
              "(options_codec.cpp) and its round-trip test before bumping this count");

/// Total leaf fields the canonical form must carry (nested aggregates
/// flattened). Mirrored by the per-field checklist in serve_test.cpp.
constexpr std::size_t kLeafFields = field_count<analysis::TraversalOptions>() +
                                    field_count<analysis::PinningOptions>() +
                                    (field_count<RewriteOptions>() - 1);
static_assert(kLeafFields == 12);

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += key;
  out += '=';
  out += buf;
  out += ';';
}

void append_bool(std::string& out, const char* key, bool v) {
  out += key;
  out += v ? "=1;" : "=0;";
}

void append_tristate(std::string& out, const char* key, const std::optional<bool>& v) {
  out += key;
  out += !v.has_value() ? "=a;" : (*v ? "=1;" : "=0;");
}

const char* placement_name(rewriter::PlacementKind k) {
  switch (k) {
    case rewriter::PlacementKind::kNearfit: return "nearfit";
    case rewriter::PlacementKind::kDiversity: return "diversity";
    case rewriter::PlacementKind::kPinPage: return "pinpage";
  }
  return "?";
}

/// Cursor over the serialized text; every reader fails with the offending
/// region of the input rather than silently defaulting.
struct Reader {
  std::string_view text;
  std::size_t pos = 0;

  Error fail(const std::string& what) const {
    return Error::parse("options: " + what + " at '" +
                        std::string(text.substr(pos, 24)) + "'");
  }

  Status expect_key(const char* key) {
    std::string want = std::string(key) + "=";
    if (text.substr(pos, want.size()) != want) return fail("expected '" + want + "'");
    pos += want.size();
    return {};
  }

  Result<std::string> until_semicolon() {
    auto end = text.find(';', pos);
    if (end == std::string_view::npos) return fail("missing ';' terminator");
    std::string out(text.substr(pos, end - pos));
    pos = end + 1;
    return out;
  }

  Result<std::uint64_t> read_u64(const char* key) {
    ZIPR_TRY(expect_key(key));
    auto tok = until_semicolon();
    if (!tok.ok()) return tok.error();
    std::uint64_t v = 0;
    auto [p, ec] = std::from_chars(tok->data(), tok->data() + tok->size(), v);
    if (ec != std::errc() || p != tok->data() + tok->size())
      return Error::parse("options: bad integer '" + *tok + "' for " + key);
    return v;
  }

  Result<bool> read_bool(const char* key) {
    ZIPR_ASSIGN_OR_RETURN(std::uint64_t v, read_u64(key));
    if (v > 1) return Error::parse(std::string("options: bad flag value for ") + key);
    return v == 1;
  }

  Result<std::optional<bool>> read_tristate(const char* key) {
    ZIPR_TRY(expect_key(key));
    auto tok = until_semicolon();
    if (!tok.ok()) return tok.error();
    if (*tok == "a") return std::optional<bool>();
    if (*tok == "0") return std::optional<bool>(false);
    if (*tok == "1") return std::optional<bool>(true);
    return Error::parse(std::string("options: bad tristate '") + *tok + "' for " + key);
  }
};

}  // namespace

std::string serialize_options(const RewriteOptions& o) {
  std::string out = "zopt1;";
  // analysis.traversal
  append_u64(out, "jts", o.analysis.traversal.max_jump_table_slots);
  append_bool(out, "scan", o.analysis.traversal.scan_data_for_pointers);
  // analysis.pinning
  append_bool(out, "pcr", o.analysis.pinning.pin_call_returns);
  append_bool(out, "npa", o.analysis.pinning.naive_pin_all);
  // Doubles go through their bit pattern: no formatting round-trip loss,
  // and distinct values can never canonicalize to the same text.
  append_u64(out, "epf", std::bit_cast<std::uint64_t>(o.analysis.pinning.extra_pin_fraction));
  append_u64(out, "eps", o.analysis.pinning.extra_pin_seed);
  // top-level rewrite knobs
  out += "place=";
  out += placement_name(o.placement);
  out += ';';
  append_u64(out, "seed", o.seed);
  append_tristate(out, "short", o.prefer_short_refs);
  append_tristate(out, "coal", o.coalesce);
  append_bool(out, "covp", o.cov_prune);
  // transforms: length-prefixed names, so names survive any separator char
  append_u64(out, "tf", o.transforms.size());
  for (const auto& name : o.transforms) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%zu.", name.size());
    out += buf;
    out += name;
    out += ';';
  }
  return out;
}

Result<RewriteOptions> parse_options(std::string_view text) {
  Reader r{text};
  if (text.substr(0, 6) != "zopt1;") return r.fail("bad options header");
  r.pos = 6;

  RewriteOptions o;
  ZIPR_ASSIGN_OR_RETURN(o.analysis.traversal.max_jump_table_slots, r.read_u64("jts"));
  ZIPR_ASSIGN_OR_RETURN(o.analysis.traversal.scan_data_for_pointers, r.read_bool("scan"));
  ZIPR_ASSIGN_OR_RETURN(o.analysis.pinning.pin_call_returns, r.read_bool("pcr"));
  ZIPR_ASSIGN_OR_RETURN(o.analysis.pinning.naive_pin_all, r.read_bool("npa"));
  std::uint64_t frac_bits = 0;
  ZIPR_ASSIGN_OR_RETURN(frac_bits, r.read_u64("epf"));
  o.analysis.pinning.extra_pin_fraction = std::bit_cast<double>(frac_bits);
  ZIPR_ASSIGN_OR_RETURN(o.analysis.pinning.extra_pin_seed, r.read_u64("eps"));

  ZIPR_TRY(r.expect_key("place"));
  ZIPR_ASSIGN_OR_RETURN(std::string place, r.until_semicolon());
  if (place == "nearfit")
    o.placement = rewriter::PlacementKind::kNearfit;
  else if (place == "diversity")
    o.placement = rewriter::PlacementKind::kDiversity;
  else if (place == "pinpage")
    o.placement = rewriter::PlacementKind::kPinPage;
  else
    return Error::parse("options: unknown placement '" + place + "'");

  ZIPR_ASSIGN_OR_RETURN(o.seed, r.read_u64("seed"));
  ZIPR_ASSIGN_OR_RETURN(o.prefer_short_refs, r.read_tristate("short"));
  ZIPR_ASSIGN_OR_RETURN(o.coalesce, r.read_tristate("coal"));
  ZIPR_ASSIGN_OR_RETURN(o.cov_prune, r.read_bool("covp"));

  std::uint64_t n = 0;
  ZIPR_ASSIGN_OR_RETURN(n, r.read_u64("tf"));
  if (n > 1024) return Error::parse("options: implausible transform count");
  o.transforms.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    auto dot = r.text.find('.', r.pos);
    if (dot == std::string_view::npos) return r.fail("expected '<len>.<name>;'");
    std::size_t len = 0;
    auto [p, ec] = std::from_chars(r.text.data() + r.pos, r.text.data() + dot, len);
    if (ec != std::errc() || p != r.text.data() + dot || len > 4096)
      return r.fail("bad transform-name length");
    r.pos = dot + 1;
    if (r.pos + len + 1 > r.text.size() || r.text[r.pos + len] != ';')
      return r.fail("truncated transform name");
    o.transforms.emplace_back(r.text.substr(r.pos, len));
    r.pos += len + 1;
  }
  if (r.pos != r.text.size()) return r.fail("trailing bytes after options");
  return o;
}

std::uint64_t options_digest(const RewriteOptions& options) {
  std::string s = serialize_options(options);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace zipr
