// Canonical serialization of RewriteOptions.
//
// The serve layer's artifact cache is keyed on EVERYTHING that can change
// rewrite output: the input bytes and the full option set. Hashing the
// in-memory struct would silently alias entries whenever padding differs or
// a new field is added, so the cache key goes through this canonical text
// form instead: a single line with every field in a fixed order, stable
// across processes and rebuilds. The same encoding doubles as the
// wire format for options in the zipr-serve socket protocol.
//
// Completeness is enforced, not hoped for: options_codec.cpp counts the
// aggregate fields of RewriteOptions (and each nested options struct) at
// compile time and static_asserts the expected count. Adding an option
// without teaching serialize_options()/parse_options() about it fails the
// build instead of silently serving stale artifacts across configs.
#pragma once

#include <string>
#include <string_view>

#include "zipr/zipr.h"

namespace zipr {

namespace codec_detail {

/// Implicitly convertible to anything: probe argument for aggregate
/// initialization (boost::pfr style field counting).
struct AnyField {
  template <typename T>
  operator T() const;  // never defined; used in unevaluated contexts only
};

template <typename T, std::size_t N>
constexpr bool initializable_with_n = []<std::size_t... I>(std::index_sequence<I...>) {
  return requires { T{(static_cast<void>(I), AnyField{})...}; };
}(std::make_index_sequence<N>{});

/// Number of direct (non-flattened) fields of aggregate T.
template <typename T, std::size_t N = 0>
constexpr std::size_t field_count() {
  if constexpr (initializable_with_n<T, N + 1>)
    return field_count<T, N + 1>();
  else
    return N;
}

}  // namespace codec_detail

/// Canonical single-line text form of `options`. Deterministic: equal
/// option sets serialize identically, differing option sets differ.
std::string serialize_options(const RewriteOptions& options);

/// Inverse of serialize_options. Rejects malformed or trailing input with
/// the offending text in the error message.
Result<RewriteOptions> parse_options(std::string_view text);

/// FNV-1a digest of the canonical form; the options half of a cache key
/// and the bucket id for delta-ancestor lookup (only artifacts produced
/// under identical options are delta candidates).
std::uint64_t options_digest(const RewriteOptions& options);

}  // namespace zipr
