// Dollop-placement strategies (paper Sec. III).
//
// The paper implements layout algorithms as plugins through Zipr's API so
// they can be swapped without recompiling the rewriter; PlacementStrategy
// is that plugin interface. Three built-ins reproduce the paper's design
// space:
//
//   * DiversityPlacement -- the default/unoptimized algorithm: place
//     dollops at (seeded-)random free ranges. Maximum layout diversity,
//     no locality. Every run with a different seed yields a different
//     layout (the "code layout diversity" defense).
//
//   * NearfitPlacement -- the optimized algorithm modeled on LLVM's jump
//     relaxation: place dollops as close to their referents as possible so
//     short 2-byte jumps reach their targets and pages holding pins also
//     hold code. Favors memory overhead over diversity.
//
//   * PinPagePlacement -- MaxRSS-focused: fill pages that already contain
//     pinned addresses before touching fresh pages, taking the smallest
//     viable ranges first (aggressive dollop splitting).
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>

#include "support/rng.h"
#include "zipr/memory_space.h"

namespace zipr::rewriter {

struct PlacementRequest {
  std::uint64_t size = 0;        ///< conservative dollop size
  std::uint64_t min_viable = 0;  ///< smallest usable prefix (first insn + jump)
  std::optional<std::uint64_t> preferred;  ///< referring site, when known
};

class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  /// Choose a free main-span range to emit into. The caller uses a prefix
  /// of the returned interval and splits the dollop if the interval is
  /// smaller than request.size. Returns nullopt to send the dollop to the
  /// overflow area.
  virtual std::optional<Interval> pick(const MemorySpace& space,
                                       const PlacementRequest& request) = 0;

  virtual std::string name() const = 0;
};

/// Which built-in strategy to use.
enum class PlacementKind { kDiversity, kNearfit, kPinPage };

const char* placement_kind_name(PlacementKind kind);

/// Factory for the built-in strategies. `pinned_pages` (page base
/// addresses) is consulted by PinPagePlacement only.
std::unique_ptr<PlacementStrategy> make_placement(PlacementKind kind, std::uint64_t seed,
                                                  std::set<std::uint64_t> pinned_pages);

}  // namespace zipr::rewriter
