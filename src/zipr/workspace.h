// Per-worker recycled state for repeated cold rewrites.
//
// One cold rewrite of a multi-MB binary allocates (and page-faults) tens
// of MB of transient tables: the analysis layer's claim vectors and
// bitmaps (analysis::AnalysisScratch) and the reassembler's bump arena
// (dollops, the placement map M, the emission/patch logs). All of it dies
// with the rewrite -- and on a serve/batch worker is immediately rebuilt
// for the next request. A RewriteWorkspace owns both pieces so successive
// rewrites through the same workspace run with near-zero allocation cost:
// pass it via ExecPolicy::workspace and every large transient reuses the
// previous request's capacity.
//
// Recycling NEVER affects output bytes: each buffer is fully
// re-initialized per rewrite, and the arena is rewound before use. A
// workspace serves at most one rewrite at a time (not thread-safe); the
// WorkspacePool below hands distinct workspaces to concurrent workers.
//
// Trim policy: finish_cycle() (called by rewrite() on success) tracks the
// demand of the last kWindow cycles; when retained capacity exceeds twice
// the window's peak demand (plus slack), the workspace releases memory
// down to that budget. One oversized request therefore stops pinning its
// high-water mark as soon as the window full of smaller requests ages it
// out, while steady same-sized traffic never trims (and never reallocates).
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "analysis/scratch.h"
#include "support/arena.h"

namespace zipr {

class RewriteWorkspace {
 public:
  analysis::AnalysisScratch& analysis() { return analysis_; }
  MonotonicArena* arena() { return &arena_; }

  /// Record the finished rewrite's memory demand and release capacity if
  /// the retained high-water mark has outgrown recent traffic. Called by
  /// rewrite() after a successful pass through this workspace.
  void finish_cycle();

  /// Capacity currently pinned by this workspace (tests + trim policy).
  std::size_t retained_bytes() const {
    return arena_.retained_bytes() + analysis_.retained_bytes();
  }

  std::size_t cycles() const { return cycles_; }

 private:
  static constexpr std::size_t kWindow = 4;
  static constexpr std::size_t kSlack = 64 * 1024;

  analysis::AnalysisScratch analysis_;
  MonotonicArena arena_;
  std::size_t window_[kWindow] = {};  ///< demand of the last kWindow cycles
  std::size_t cycles_ = 0;
};

/// Mutex-guarded free list of workspaces shared by a worker pool
/// (ServeEngine, BatchRewriter). checkout() prefers a warm idle workspace
/// and creates a fresh one only when all are busy, so the pool's footprint
/// tracks peak concurrency, not request count.
class WorkspacePool {
 public:
  /// RAII checkout: returns the workspace to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ws_(std::move(other.ws_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        ws_ = std::move(other.ws_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    RewriteWorkspace* get() const { return ws_.get(); }
    RewriteWorkspace* operator->() const { return ws_.get(); }
    explicit operator bool() const { return ws_ != nullptr; }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, std::unique_ptr<RewriteWorkspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    void release() {
      if (pool_ && ws_) pool_->give_back(std::move(ws_));
      pool_ = nullptr;
      ws_.reset();
    }

    WorkspacePool* pool_ = nullptr;
    std::unique_ptr<RewriteWorkspace> ws_;
  };

  Lease checkout();

  /// Workspaces ever created (== peak concurrency observed); tests use it
  /// to prove recycling actually happened.
  std::size_t created() const;
  std::size_t idle_count() const;

 private:
  void give_back(std::unique_ptr<RewriteWorkspace> ws);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<RewriteWorkspace>> idle_;
  std::size_t created_ = 0;
};

}  // namespace zipr
