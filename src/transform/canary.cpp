// Dynamic canary randomization (backward-edge protection; the paper's
// companion technique to CFI, cf. its Sec. IV-B and reference [14]).
//
// Each instrumented function pushes a per-rewrite random canary word at
// entry and, on every return path, verifies the word is intact before
// releasing it -- corrupting the saved return address requires writing
// through the canary first, and the value changes every time the binary
// is rewritten. Guards clobber condition flags at function boundaries
// (the documented ABI assumption).
#include "transform/api.h"

namespace zipr::transform {

namespace {

using irdb::InsnId;
using isa::BranchWidth;
using isa::Cond;
using isa::Insn;
using isa::Op;

Insn ri(Op op, std::uint8_t reg, std::int64_t imm) {
  Insn in;
  in.op = op;
  in.ra = reg;
  in.imm = imm;
  return in;
}

Insn reg1(Op op, std::uint8_t reg) {
  Insn in;
  in.op = op;
  in.ra = reg;
  return in;
}

Insn mem(Op op, std::uint8_t ra, std::uint8_t rb, std::int64_t disp) {
  Insn in;
  in.op = op;
  in.ra = ra;
  in.rb = rb;
  in.imm = disp;
  return in;
}

class CanaryTransform final : public Transform {
 public:
  std::string name() const override { return "canary"; }

  Status apply(TransformContext& ctx) override {
    irdb::Database& db = ctx.db();
    // Positive-i32 range so the pushi (zero-extended) and cmpi
    // (sign-extended) views of the value agree; never zero.
    const std::uint32_t canary =
        static_cast<std::uint32_t>((ctx.rng().next() & 0x7fffffff) | 1);

    InsnId violation = db.add_new(isa::make_hlt());

    db.for_each_function([&](irdb::Function& func) {
      if (func.entry == irdb::kNullInsn) return;

      // Collect this function's return instructions up front; guards we
      // add must not be revisited.
      std::vector<InsnId> rets;
      bool safe = true;
      for (InsnId m : func.members) {
        const auto row = db.insn(m);
        if (row.verbatim) safe = false;
        if (row.decoded.op == Op::kRet) rets.push_back(m);
      }
      if (!safe || rets.empty()) return;

      // Entry: push the canary under the frame.
      db.insert_before(func.entry, isa::make_push_imm(canary));

      // Every return: verify and strip the canary.
      //   push r6 ; load r6,[sp+8] ; cmpi r6,C ; jne violation ;
      //   pop r6 ; addi sp, 8 ; ret
      for (InsnId ret : rets) {
        db.insert_before(ret, reg1(Op::kPush, 6));
        InsnId cursor = ret;
        cursor = db.insert_after(cursor, mem(Op::kLoad, 6, isa::kSpReg, 8));
        cursor = db.insert_after(cursor, ri(Op::kCmpI, 6, static_cast<std::int64_t>(canary)));
        InsnId br = db.insert_after(cursor, isa::make_jcc(Cond::kNe, 0, BranchWidth::kRel32));
        db.insn(br).target = violation;
        cursor = db.insert_after(br, reg1(Op::kPop, 6));
        db.insert_after(cursor, ri(Op::kAddI, isa::kSpReg, 8));
      }
      ++instrumented_;
    });
    return db.validate();
  }

 private:
  std::size_t instrumented_ = 0;
};

}  // namespace

std::unique_ptr<Transform> make_canary_transform() {
  return std::make_unique<CanaryTransform>();
}

}  // namespace zipr::transform
