// Mandatory transformations (paper Sec. II-B1).
//
// On x86, Zipr's mandatory transforms rewrite PC-relative relationships
// (branch displacements, RIP-relative memory operands) into logical links
// so user transforms and the reassembler can ignore the original layout.
// In this implementation the IR builder performs that conversion while
// original addresses are still in scope (see analysis/ir_builder.h); this
// translation unit holds the checkable contract: verify_mandatory()
// asserts that every relocatable row is fully layout-independent before
// reassembly is allowed to run.
#include "transform/api.h"

namespace zipr::transform {

Status verify_mandatory(const analysis::IrProgram& prog) {
  Status failure = Status::success();
  prog.db.for_each_insn([&](const auto& row) {
    if (!failure.ok() || row.verbatim) return;
    if (row.decoded.has_static_target() && row.target == irdb::kNullInsn && !row.abs_target)
      failure = Error::internal("insn " + std::to_string(row.id) +
                                " has a static target but no logical/absolute link");
    if (row.decoded.is_pc_relative_data() && !row.data_ref)
      failure = Error::internal("insn " + std::to_string(row.id) +
                                " is PC-relative but has no data_ref");
  });
  if (!failure.ok()) return failure;
  return prog.db.validate();
}

}  // namespace zipr::transform
