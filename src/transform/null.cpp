// The Null Transformation (paper Sec. IV-A): a no-op user transform.
//
// Rewriting with Null yields a semantically-equivalent binary whose only
// differences come from the rewriting machinery itself, so any overhead it
// shows is the floor every security transform must pay. The robustness
// evaluation and the baseline bars of Figs. 4-7 all use it.
#include "transform/api.h"

namespace zipr::transform {

namespace {

class NullTransform final : public Transform {
 public:
  std::string name() const override { return "null"; }
  Status apply(TransformContext&) override { return Status::success(); }
};

}  // namespace

std::unique_ptr<Transform> make_null_transform() { return std::make_unique<NullTransform>(); }

}  // namespace zipr::transform
