// "cov": AFL/ZAFL-style coverage instrumentation (binary-only fuzzing,
// the highest-impact Zipr application named by the follow-on papers).
//
// Every basic-block entry receives a compile-time random id and a short
// stub that bumps an 8-bit hit counter in a writable coverage-map segment
// added to the image. Two granularities:
//
//   * edge  (default, AFL classic): the counter index is cur ^ prev where
//     prev is the previous block's id shifted right once, kept in a
//     prev-loc slot at the head of the map segment -- distinguishes A->B
//     from B->A and different predecessors of the same block;
//   * block (ZAFL's cheaper mode): the counter index is the block id
//     itself -- no prev-loc traffic, roughly half the stub length.
//
// This header is the coverage-map ABI shared between the transform (which
// emits the stubs) and the fuzzing executor (which reads the map back out
// of VM memory after every run); see fuzz/executor.h.
#pragma once

#include <cstdint>

namespace zipr::transform {

/// Coverage granularity of the "cov" transform.
enum class CovMode { kEdge, kBlock };

/// Hit-counter count; indices are block ids (block mode) or id xor
/// shifted-prev (edge mode), both already reduced mod this value.
inline constexpr std::uint64_t kCovMapEntries = 4096;

/// Segment layout: [u64 prev-loc][kCovMapEntries 8-bit counters].
inline constexpr std::uint64_t kCovPrevOffset = 0;
inline constexpr std::uint64_t kCovMapOffset = 8;
inline constexpr std::uint64_t kCovSegBytes = kCovMapOffset + kCovMapEntries;

/// Where an image's coverage segment is mapped: a fixed arena plus the
/// text base scaled down, so instrumented images with disjoint text spans
/// keep disjoint maps (same scheme as CFI's bitmap and profile's
/// counters, in a separate arena).
inline constexpr std::uint64_t cov_map_base(std::uint64_t text_vaddr) {
  return 0x7b000000 + (text_vaddr >> 2);
}

/// Address of the prev-loc slot / first counter for an image whose text
/// starts at `text_vaddr`.
inline constexpr std::uint64_t cov_prev_addr(std::uint64_t text_vaddr) {
  return cov_map_base(text_vaddr) + kCovPrevOffset;
}
inline constexpr std::uint64_t cov_counters_addr(std::uint64_t text_vaddr) {
  return cov_map_base(text_vaddr) + kCovMapOffset;
}

}  // namespace zipr::transform
