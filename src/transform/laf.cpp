// "laf": constant-compare decomposition (laf-intel / CompareCoverage
// style). A multi-byte immediate equality test
//
//     cmpi rX, imm32        ; A
//     jeq  T                ; B   (or jne)
//
// is an all-or-nothing gate for coverage-guided fuzzing: the map looks
// identical whether 0 or 3 of the 4 magic bytes match, so the fuzzer gets
// no gradient and every shard stalls on the same comparison. The lowering
// splits the 64-bit comparison (kCmpI sign-extends its imm32, so the
// chain checks all 8 bytes of the extended value) into byte-wise checks,
// each guarded byte bumping its own coverage counter:
//
//     mov  S1, rX                     ; check k = 0..7
//     shri S1, 8k                     ;   (omitted for k = 0)
//     andi S1, 0xff
//     cmpi S1, byte_k(imm)
//     jne  EXIT                       ;   k < 7: mismatch exits early
//     <map[id_k]++ via S1/S2>         ;   byte k matched: novelty
//     ...
//     cmpi S1, byte_7(imm)
//     jeq  T                          ; B, UNCHANGED: reads the last cmp
//
// where EXIT is the jcc's fallthrough for the eq form (any byte differs
// => not equal) and its taken target for the ne form. The probes are
// emitted by laf itself, into the same coverage-map segment the cov
// transform uses (shared via ensure_cov_map_segment): the chain blocks
// are synthetic single-pred/shared-exit diamonds that cov's pred-rule
// pruning would legitimately dissolve -- their paths reconverge
// immediately, so block probes carry no information -- but the laf
// gradient is exactly the per-BYTE hit counts, which only inline
// counters preserve. Each matched byte is fresh map novelty and the
// deterministic stage solves the magic value byte-by-byte.
//
// Liveness keeps the lowering cheap and sound (the analysis layer is
// computed once, before any edit):
//   * The chain clobbers the condition flags on the early-exit paths, so
//     a site is only lowered when flags are DEAD at both successor block
//     entries (a `jeq X; jlt Y` pair reading one cmp is refused).
//   * The scratches S1/S2 prefer registers dead at both successor
//     entries; live ones fall back to a push/pop save: the chain head
//     pushes, the final check pops before B (kPop writes no flags, so
//     the last cmp still reaches B), and early exits leave through a
//     [pops; jmp EXIT] trampoline.
//
// B itself is never touched: rows that jump straight to B from elsewhere
// arrive with their own flags and B still branches on them, so no
// constraint on B's other predecessors is needed. Pins and branches to A
// keep hitting the chain head (replace/insert_after keep row identity).
#include <vector>

#include "analysis/cfg.h"
#include "analysis/liveness.h"
#include "transform/api.h"
#include "transform/cov.h"

namespace zipr::transform {

// Shared with the cov transform (defined in cov.cpp): add the coverage
// map segment unless an earlier transform in the stack already did.
Status ensure_cov_map_segment(TransformContext& ctx);

namespace {

using analysis::BlockId;
using analysis::Cfg;
using analysis::kNoBlock;
using irdb::InsnId;
using isa::Cond;
using isa::Insn;
using isa::Op;

Insn ri(Op op, std::uint8_t reg, std::int64_t imm) {
  Insn in;
  in.op = op;
  in.ra = reg;
  in.imm = imm;
  return in;
}

Insn reg1(Op op, std::uint8_t reg) {
  Insn in;
  in.op = op;
  in.ra = reg;
  return in;
}

Insn mov2(std::uint8_t dst, std::uint8_t src) {
  Insn in;
  in.op = Op::kMov;
  in.ra = dst;
  in.rb = src;
  return in;
}

Insn mem(Op op, std::uint8_t ra, std::uint8_t rb, std::int64_t disp) {
  Insn in;
  in.op = op;
  in.ra = ra;
  in.rb = rb;
  in.imm = disp;
  return in;
}

/// Same preference order as the cov stub codegen. Never sp.
constexpr std::uint8_t kScratchOrder[] = {5, 6, 0, 1, 2, 3, 4};

struct Site {
  InsnId cmp = irdb::kNullInsn;   ///< A: the kCmpI row (becomes the chain head)
  InsnId exit = irdb::kNullInsn;  ///< early-exit row (F for eq, T for ne)
  std::uint8_t x = 0;             ///< compared register
  std::uint8_t s1 = 0;            ///< chain scratch (byte extraction + probe addr)
  std::uint8_t s2 = 0;            ///< probe counter scratch
  std::uint64_t imm = 0;          ///< full sign-extended comparison value
  bool save1 = false;             ///< s1 live at an exit: push/pop fallback
  bool save2 = false;
};

class LafTransform final : public Transform {
 public:
  std::string name() const override { return "laf"; }

  Status apply(TransformContext& ctx) override {
    irdb::Database& db = ctx.db();
    InstrumentationStats& st = ctx.instrumentation();

    // Analysis facts are gathered against the pre-edit program; row ids
    // are stable under the edits below and every fact used (flag/register
    // deadness at successor entries) is preserved by the lowering itself,
    // so one pass suffices even when sites are adjacent.
    const Cfg cfg = Cfg::build(ctx.program());
    const analysis::Liveness lv = analysis::Liveness::compute(ctx.program(), cfg);

    std::vector<Site> sites;
    const auto count = static_cast<InsnId>(db.insn_count());
    for (InsnId id = 1; id <= count; ++id) {
      const auto row = db.insn(id);
      if (row.verbatim || row.decoded.op != Op::kCmpI) continue;
      const std::int64_t imm = row.decoded.imm;
      if (imm >= -128 && imm <= 127) continue;  // single byte: nothing to split
      const InsnId b = row.fallthrough;
      if (b == irdb::kNullInsn) continue;
      const auto brow = db.insn(b);
      if (brow.verbatim || brow.decoded.op != Op::kJcc) continue;
      const Cond cc = brow.decoded.cond;
      if (cc != Cond::kEq && cc != Cond::kNe) continue;
      if (brow.target == irdb::kNullInsn || brow.fallthrough == irdb::kNullInsn) continue;

      const BlockId tb = cfg.block_of(brow.target);
      const BlockId fb = cfg.block_of(brow.fallthrough);
      if (tb == kNoBlock || fb == kNoBlock) {
        ++st.compares_skipped;
        continue;
      }
      const std::uint16_t live = lv.live_in(tb) | lv.live_in(fb);
      if (analysis::flags_live(live)) {
        ++st.compares_skipped;  // a second jcc still reads this cmp
        continue;
      }

      Site s;
      s.cmp = id;
      s.exit = cc == Cond::kEq ? brow.fallthrough : brow.target;
      s.x = row.decoded.ra;
      s.imm = static_cast<std::uint64_t>(imm);
      std::vector<std::uint8_t> dead;
      for (std::uint8_t r : kScratchOrder)
        if (r != s.x && !analysis::reg_live(live, r)) dead.push_back(r);
      auto fallback = [&s](std::uint8_t taken) {
        for (std::uint8_t r : kScratchOrder)
          if (r != s.x && r != taken) return r;
        return std::uint8_t{0};  // unreachable: 7 candidates, 2 excluded
      };
      if (!dead.empty()) {
        s.s1 = dead[0];
      } else {
        s.s1 = fallback(0xff);
        s.save1 = true;
      }
      if (dead.size() >= 2) {
        s.s2 = dead[1];
      } else {
        s.s2 = fallback(s.s1);
        s.save2 = true;
      }
      sites.push_back(s);
    }

    if (!sites.empty()) ZIPR_TRY(ensure_cov_map_segment(ctx));
    for (const Site& s : sites) apply_site(ctx, s);
    return db.validate();
  }

 private:
  static void apply_site(TransformContext& ctx, const Site& s) {
    irdb::Database& db = ctx.db();
    InstrumentationStats& st = ctx.instrumentation();
    const auto counters =
        static_cast<std::int64_t>(cov_counters_addr(ctx.program().original.text().vaddr));

    InsnId exit_row = s.exit;
    if (s.save1 || s.save2) {
      // Early exits must restore the pushed scratches (reverse order) first.
      std::vector<InsnId> tramp;
      if (s.save2) tramp.push_back(db.add_new(reg1(Op::kPop, s.s2)));
      if (s.save1) tramp.push_back(db.add_new(reg1(Op::kPop, s.s1)));
      Insn jmp;
      jmp.op = Op::kJmp;
      tramp.push_back(db.add_new(jmp));
      for (std::size_t i = 0; i + 1 < tramp.size(); ++i)
        db.insn(tramp[i]).fallthrough = tramp[i + 1];
      db.insn(tramp.back()).target = s.exit;
      exit_row = tramp.front();
      ++st.compare_save_fallbacks;
    }

    std::vector<Insn> seq;
    if (s.save1) seq.push_back(reg1(Op::kPush, s.s1));
    if (s.save2) seq.push_back(reg1(Op::kPush, s.s2));
    for (int k = 0; k < 8; ++k) {
      if (k > 0) {
        // Byte k-1 matched: bump this byte's dedicated hit counter.
        const auto cur = static_cast<std::int64_t>(ctx.rng().below(kCovMapEntries));
        seq.push_back(ri(Op::kMovI, s.s1, counters + cur));
        seq.push_back(mem(Op::kLoad8, s.s2, s.s1, 0));
        seq.push_back(ri(Op::kAddI, s.s2, 1));
        seq.push_back(mem(Op::kStore8, s.s1, s.s2, 0));
      }
      seq.push_back(mov2(s.s1, s.x));
      if (k > 0) seq.push_back(ri(Op::kShrI, s.s1, 8 * k));
      seq.push_back(ri(Op::kAndI, s.s1, 0xff));
      seq.push_back(ri(Op::kCmpI, s.s1,
                       static_cast<std::int64_t>((s.imm >> (8 * k)) & 0xff)));
      if (k < 7) {
        Insn j;
        j.op = Op::kJcc;
        j.cond = Cond::kNe;
        seq.push_back(j);
      }
    }
    // kPop writes no flags: the final cmp's result still reaches B.
    if (s.save2) seq.push_back(reg1(Op::kPop, s.s2));
    if (s.save1) seq.push_back(reg1(Op::kPop, s.s1));

    // Head replaces A in place (pins and branches to A keep working);
    // the rest splices between A and the original jcc.
    db.replace(s.cmp, seq[0]);
    InsnId cursor = s.cmp;
    std::vector<InsnId> exits;
    for (std::size_t i = 1; i < seq.size(); ++i) {
      cursor = db.insert_after(cursor, seq[i]);
      if (seq[i].op == Op::kJcc) exits.push_back(cursor);
    }
    for (InsnId j : exits) db.insn(j).target = exit_row;
    ++st.compares_split;
  }
};

}  // namespace

std::unique_ptr<Transform> make_laf_transform() { return std::make_unique<LafTransform>(); }

}  // namespace zipr::transform
