// Forward-edge control-flow integrity (the defense Xandra deployed in the
// CGC, paper Sec. IV-B).
//
// Indirect control flow in a Zipr-rewritten binary always lands on
// ORIGINAL pinned addresses (function pointers and jump-table slots hold
// original-program addresses), so the set of legitimate indirect targets
// is exactly the set of analysis-identified IBTs: pins from jump tables,
// code/data constants and the entry point, plus IBTs covered by verbatim
// ranges.
//
// Every indirect call (callr), indirect jump (jmpr) and table jump (jmpt)
// gets a guard, inserted via the transform API, that computes the
// eventual target and validates it, halting on violation. Two guard
// flavors keep the overhead CGC-shaped:
//
//   * inline compare chain -- when the legitimate-target set is small
//     (typical CBs), the guard compares the target against each address
//     directly: no data-segment cost, O(|set|) cycles;
//   * target bitmap -- for larger programs, a read-only bitmap over the
//     text span (one bit per byte) ships as an extra rodata segment and
//     the guard tests the target's bit after a bounds check.
//
// Return-edge protection is left to the "canary" transform, mirroring the
// paper's "simple form of CFI". Guards clobber condition flags; the
// (documented) ABI assumption is that flags are dead across indirect
// transfers.
#include <algorithm>

#include "transform/api.h"

namespace zipr::transform {

namespace {

using irdb::InsnId;
using isa::BranchWidth;
using isa::Cond;
using isa::Insn;
using isa::Op;

/// Where an image's target bitmap is mapped: a fixed arena plus the text
/// base scaled by the bitmap's own 1-bit-per-byte ratio, so bitmaps of
/// images with disjoint text spans are themselves disjoint (a program and
/// its libraries can all carry CFI).
std::uint64_t bitmap_base_for(std::uint64_t text_vaddr) {
  return 0x7c000000 + (text_vaddr >> 3);
}

/// Valid-target sets up to this size use the inline compare chain.
constexpr std::size_t kInlineChainLimit = 24;

Insn ri(Op op, std::uint8_t reg, std::int64_t imm) {
  Insn in;
  in.op = op;
  in.ra = reg;
  in.imm = imm;
  return in;
}

Insn rr(Op op, std::uint8_t ra, std::uint8_t rb) {
  Insn in;
  in.op = op;
  in.ra = ra;
  in.rb = rb;
  return in;
}

Insn mem(Op op, std::uint8_t ra, std::uint8_t rb, std::int64_t disp) {
  Insn in;
  in.op = op;
  in.ra = ra;
  in.rb = rb;
  in.imm = disp;
  return in;
}

Insn reg1(Op op, std::uint8_t reg) {
  Insn in;
  in.op = op;
  in.ra = reg;
  return in;
}

class CfiTransform final : public Transform {
 public:
  std::string name() const override { return "cfi"; }

  Status apply(TransformContext& ctx) override {
    analysis::IrProgram& prog = ctx.program();
    const zelf::Segment& text = prog.original.text();
    const std::uint64_t text_base = text.vaddr;
    const std::uint64_t text_end = text.vaddr + text.bytes.size();

    // ---- 1. the legitimate-target set ----
    std::vector<std::uint64_t> targets;
    for (const auto& [addr, reasons] : prog.pin_reasons) {
      constexpr std::uint32_t kIbtReasons =
          analysis::kPinEntry | analysis::kPinJumpTable | analysis::kPinCodeConst |
          analysis::kPinDataConst | analysis::kPinVerbatimTarget | analysis::kPinVerbatimFall |
          analysis::kPinExport;
      if (reasons & kIbtReasons) targets.push_back(addr);
    }
    for (std::uint64_t addr : prog.verbatim_ibts) targets.push_back(addr);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

    const bool use_chain = targets.size() <= kInlineChainLimit;
    // Bitmap mode covers only the span actually containing legitimate
    // targets: a tighter policy than the whole text segment, and a much
    // smaller on-disk bitmap.
    std::uint64_t span_lo = text_base, span_hi = text_end;
    if (!use_chain) {
      span_lo = targets.front();
      span_hi = targets.back() + 1;
      Bytes bitmap((span_hi - span_lo + 7) / 8, 0);
      for (std::uint64_t addr : targets) {
        std::uint64_t idx = addr - span_lo;
        bitmap[idx >> 3] |= static_cast<Byte>(1u << (idx & 7));
      }
      zelf::Segment seg;
      seg.kind = zelf::SegKind::kRodata;
      seg.vaddr = bitmap_base_for(text_base);
      seg.memsize = bitmap.size();
      seg.bytes = std::move(bitmap);
      ZIPR_TRY(ctx.add_segment(std::move(seg)));
    }

    // ---- 2. guards in front of every indirect transfer ----
    irdb::Database& db = ctx.db();
    InsnId violation = db.add_new(isa::make_hlt());  // shared sink

    ctx.for_each_existing_insn([&](InsnId id) {
      const auto row = db.insn(id);
      if (row.verbatim) return;
      const Insn& in = row.decoded;
      if (in.op != Op::kCallR && in.op != Op::kJmpR && in.op != Op::kJmpT) return;

      // Compute the eventual target into r5 without disturbing program
      // state (r5 -- and r6 in bitmap mode -- are saved around the guard).
      std::vector<Insn> guard;
      std::vector<std::size_t> viol_branches;  // jcc-to-violation indices
      std::vector<std::size_t> ok_branches;    // jcc-to-accept indices
      auto jcc_to_violation = [&](Cond c) {
        guard.push_back(isa::make_jcc(c, 0, BranchWidth::kRel32));
        viol_branches.push_back(guard.size() - 1);
      };

      const auto& imports = prog.original.imports;
      const bool save_r6 = !use_chain || !imports.empty();

      guard.push_back(reg1(Op::kPush, 5));
      if (save_r6) guard.push_back(reg1(Op::kPush, 6));
      if (in.op == Op::kJmpT) {
        guard.push_back(rr(Op::kMov, 5, in.ra));  // index
        guard.push_back(ri(Op::kShlI, 5, 3));
        guard.push_back(ri(Op::kAddI, 5, in.imm));  // slot address
        guard.push_back(mem(Op::kLoad, 5, 5, 0));   // target
      } else {
        guard.push_back(rr(Op::kMov, 5, in.ra));  // target register
      }

      // Cross-module calls: a target equal to the CURRENT value of one of
      // this image's import slots is loader-sanctioned (the slots are
      // written by the loader at bind time; the per-module analysis cannot
      // know the addresses behind them).
      for (const auto& imp : imports) {
        guard.push_back(ri(Op::kMovI, 6, static_cast<std::int64_t>(imp.slot)));
        guard.push_back(mem(Op::kLoad, 6, 6, 0));
        guard.push_back(rr(Op::kCmp, 5, 6));
        guard.push_back(isa::make_jcc(Cond::kEq, 0, BranchWidth::kRel32));
        ok_branches.push_back(guard.size() - 1);
      }

      std::size_t accept_index;  // guard index of the first restore insn
      if (use_chain) {
        // Inline chain: equality against each legitimate address.
        for (std::uint64_t t : targets) {
          guard.push_back(ri(Op::kCmpI, 5, static_cast<std::int64_t>(t)));
          guard.push_back(isa::make_jcc(Cond::kEq, 0, BranchWidth::kRel32));
          ok_branches.push_back(guard.size() - 1);
        }
        guard.push_back(isa::make_hlt());  // no match: violation (inline)
        accept_index = guard.size();
        if (save_r6) guard.push_back(reg1(Op::kPop, 6));
        guard.push_back(reg1(Op::kPop, 5));
      } else {
        // Bounds check against the legitimate-target span, then bitmap bit
        // test: bit = bitmap[(t - lo) >> 3] >> ((t - lo) & 7).
        guard.push_back(ri(Op::kCmpI, 5, static_cast<std::int64_t>(span_lo)));
        jcc_to_violation(Cond::kB);
        guard.push_back(ri(Op::kCmpI, 5, static_cast<std::int64_t>(span_hi)));
        jcc_to_violation(Cond::kAe);
        guard.push_back(rr(Op::kMov, 6, 5));
        guard.push_back(ri(Op::kSubI, 5, static_cast<std::int64_t>(span_lo)));
        guard.push_back(ri(Op::kSubI, 6, static_cast<std::int64_t>(span_lo)));
        guard.push_back(ri(Op::kShrI, 5, 3));
        guard.push_back(ri(Op::kAddI, 5, static_cast<std::int64_t>(bitmap_base_for(text_base))));
        guard.push_back(mem(Op::kLoad8, 5, 5, 0));
        guard.push_back(ri(Op::kAndI, 6, 7));
        guard.push_back(rr(Op::kShr, 5, 6));
        guard.push_back(ri(Op::kAndI, 5, 1));
        guard.push_back(ri(Op::kCmpI, 5, 1));
        jcc_to_violation(Cond::kNe);
        accept_index = guard.size();
        guard.push_back(reg1(Op::kPop, 6));
        guard.push_back(reg1(Op::kPop, 5));
      }
      // ...then the original indirect transfer executes unchanged.

      // Insert the guard: the first insert_before(id, ...) moves the
      // original payload and repurposes row `id` (so pins and incoming
      // links reach the guard first); subsequent instructions chain after.
      db.insert_before(id, guard[0]);
      InsnId cursor = id;
      std::vector<InsnId> guard_ids{id};
      for (std::size_t g = 1; g < guard.size(); ++g) {
        cursor = db.insert_after(cursor, guard[g]);
        guard_ids.push_back(cursor);
      }
      for (std::size_t vi : viol_branches) db.insn(guard_ids[vi]).target = violation;
      for (std::size_t oki : ok_branches)
        db.insn(guard_ids[oki]).target = guard_ids[accept_index];
      ++guards_;
    });
    return db.validate();
  }

 private:
  std::size_t guards_ = 0;
};

}  // namespace

std::unique_ptr<Transform> make_cfi_transform() { return std::make_unique<CfiTransform>(); }

}  // namespace zipr::transform
