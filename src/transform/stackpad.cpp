// Stack-frame padding: the paper's Fig. 2 worked example ("Pad Stack") and
// a simplified form of speculative stack layout transformation.
//
// For every function whose prologue allocates a frame with `subi sp, N`
// and whose epilogues release exactly N (`addi sp, N`), both sides are
// grown by a (seeded-)random pad, displacing locals relative to any
// attacker-predicted layout. Functions that do not match the pattern are
// skipped -- the conservative stance the paper takes everywhere.
#include "transform/api.h"

namespace zipr::transform {

namespace {

using irdb::InsnId;
using isa::Op;

class StackPadTransform final : public Transform {
 public:
  std::string name() const override { return "stackpad"; }

  Status apply(TransformContext& ctx) override {
    irdb::Database& db = ctx.db();
    db.for_each_function([&](irdb::Function& func) {
      if (func.entry == irdb::kNullInsn) return;
      const auto entry = db.insn(func.entry);
      if (entry.decoded.op != Op::kSubI || entry.decoded.ra != isa::kSpReg) return;
      const std::int64_t frame = entry.decoded.imm;
      if (frame <= 0) return;

      // All sp-adjusting instructions in the function must be the exact
      // prologue/epilogue pair; anything else disqualifies it.
      std::vector<InsnId> releases;
      bool safe = true;
      for (InsnId m : func.members) {
        const auto row = db.insn(m);
        if (row.verbatim) {
          safe = false;
          break;
        }
        if (row.decoded.ra != isa::kSpReg) continue;
        if (row.decoded.op == Op::kSubI) {
          if (m != func.entry) safe = false;
        } else if (row.decoded.op == Op::kAddI) {
          if (row.decoded.imm != frame) safe = false;
          releases.push_back(m);
        } else if (row.decoded.op == Op::kMov || row.decoded.op == Op::kMovI ||
                   row.decoded.op == Op::kMovI64 || row.decoded.op == Op::kPop) {
          safe = false;  // sp is rewritten wholesale; do not touch
        }
        if (!safe) break;
      }
      if (!safe || releases.empty()) return;

      // Pad by a random multiple of 8 in [8, 128].
      const std::int64_t pad = static_cast<std::int64_t>(ctx.rng().range(1, 16)) * 8;
      isa::Insn grown = db.insn(func.entry).decoded;
      grown.imm = frame + pad;
      db.replace(func.entry, grown);
      for (InsnId m : releases) {
        isa::Insn shrunk = db.insn(m).decoded;
        shrunk.imm = frame + pad;
        db.replace(m, shrunk);
      }
      ++padded_;
    });
    return db.validate();
  }

 private:
  std::size_t padded_ = 0;
};

}  // namespace

std::unique_ptr<Transform> make_stackpad_transform() {
  return std::make_unique<StackPadTransform>();
}

}  // namespace zipr::transform
