// The user-specified transformation API (paper Sec. II-B2).
//
// Instead of a fixed menu of hardening passes, Zipr exposes an API: users
// iterate functions and instructions of the program under rewrite and
// change, replace, remove, or insert instructions; transforms register by
// name and are selected per rewrite. The built-in transforms double as
// worked examples of the API:
//
//   "null"     -- no-op (the paper's baseline for all overhead numbers)
//   "cfi"      -- forward-edge control-flow integrity: indirect calls and
//                 jumps are checked against a bitmap of legitimate targets
//   "stackpad" -- the paper's Fig. 2 example: grow matched stack frames
//   "canary"   -- per-rewrite randomized return canaries (backward edge)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/ir_builder.h"
#include "support/rng.h"

namespace zipr::transform {

/// Handed to Transform::apply. Wraps the IR program plus the services the
/// paper's SDK provides (deterministic randomness, image-level additions).
class TransformContext {
 public:
  TransformContext(analysis::IrProgram& prog, std::uint64_t seed)
      : prog_(prog), rng_(seed) {}

  irdb::Database& db() { return prog_.db; }
  const irdb::Database& db() const { return prog_.db; }
  analysis::IrProgram& program() { return prog_; }
  Rng& rng() { return rng_; }

  /// Iterate over the ids of instructions that existed when the call was
  /// made (safe against rows the callback adds).
  void for_each_existing_insn(const std::function<void(irdb::InsnId)>& fn) {
    const auto count = static_cast<irdb::InsnId>(db().insn_count());
    for (irdb::InsnId id = 1; id <= count; ++id) fn(id);
  }

  /// Add a data segment to the output image (e.g. CFI's target bitmap).
  /// Fails if it would overlap an existing segment.
  Status add_segment(zelf::Segment segment);

 private:
  analysis::IrProgram& prog_;
  Rng rng_;
};

class Transform {
 public:
  virtual ~Transform() = default;
  virtual std::string name() const = 0;
  virtual Status apply(TransformContext& ctx) = 0;
};

using TransformFactory = std::function<std::unique_ptr<Transform>()>;

/// Register a transform under `name` (user transforms use this too).
/// Re-registering a name replaces the factory.
void register_transform(const std::string& name, TransformFactory factory);

/// Instantiate a registered transform. Built-ins are always available.
Result<std::unique_ptr<Transform>> make_transform(const std::string& name);

/// Names of all registered transforms (built-ins first, then user ones).
std::vector<std::string> registered_transforms();

/// Verify the mandatory-transformation invariants (paper Sec. II-B1): every
/// relocatable control transfer carries a logical or absolute target and
/// every PC-relative data access carries a data_ref; run before reassembly.
Status verify_mandatory(const analysis::IrProgram& prog);

}  // namespace zipr::transform
