// The user-specified transformation API (paper Sec. II-B2).
//
// Instead of a fixed menu of hardening passes, Zipr exposes an API: users
// iterate functions and instructions of the program under rewrite and
// change, replace, remove, or insert instructions; transforms register by
// name and are selected per rewrite. The built-in transforms double as
// worked examples of the API:
//
//   "null"     -- no-op (the paper's baseline for all overhead numbers)
//   "cfi"      -- forward-edge control-flow integrity: indirect calls and
//                 jumps are checked against a bitmap of legitimate targets
//   "stackpad" -- the paper's Fig. 2 example: grow matched stack frames
//   "canary"   -- per-rewrite randomized return canaries (backward edge)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/ir_builder.h"
#include "support/rng.h"

namespace zipr::transform {

/// Per-rewrite knobs transforms consult (plumbed from RewriteOptions).
struct TransformConfig {
  /// CFG-aware selective coverage instrumentation: dominator/
  /// post-dominator probe pruning, single-predecessor collapsing and
  /// liveness-elided stubs. Off reproduces the conservative
  /// every-block instrumentation bit-for-bit.
  bool cov_prune = true;
};

/// Counters instrumentation transforms report (the coverage transform
/// today); aggregated across transforms by zipr::rewrite and surfaced
/// next to the reassembly stats.
struct InstrumentationStats {
  std::size_t candidate_sites = 0;      ///< probe-eligible block entries
  std::size_t probes = 0;               ///< stubs actually emitted
  std::size_t pruned_dominated = 0;     ///< implied by dom/postdom probes
  std::size_t collapsed_single_pred = 0;///< straight-line chains: one probe
  std::size_t split_critical_edges = 0; ///< edges split to keep precision
  std::size_t elided_flag_saves = 0;    ///< probes the conservative flag
                                        ///< walk would have refused
  std::size_t elided_reg_saves = 0;     ///< push/pop pairs proven dead
  std::size_t skipped_flags = 0;        ///< sites left bare: flags live
  std::size_t compares_split = 0;       ///< laf: cmp+jcc sites decomposed
  std::size_t compares_skipped = 0;     ///< laf: eligible sites refused
  std::size_t compare_save_fallbacks = 0; ///< laf: push/pop scratch saves

  /// Fraction of probe-eligible sites whose probe was pruned away.
  double prune_rate() const {
    return candidate_sites == 0
               ? 0.0
               : static_cast<double>(pruned_dominated + collapsed_single_pred) /
                     static_cast<double>(candidate_sites);
  }

  InstrumentationStats& operator+=(const InstrumentationStats& o) {
    candidate_sites += o.candidate_sites;
    probes += o.probes;
    pruned_dominated += o.pruned_dominated;
    collapsed_single_pred += o.collapsed_single_pred;
    split_critical_edges += o.split_critical_edges;
    elided_flag_saves += o.elided_flag_saves;
    elided_reg_saves += o.elided_reg_saves;
    skipped_flags += o.skipped_flags;
    compares_split += o.compares_split;
    compares_skipped += o.compares_skipped;
    compare_save_fallbacks += o.compare_save_fallbacks;
    return *this;
  }
};

/// Handed to Transform::apply. Wraps the IR program plus the services the
/// paper's SDK provides (deterministic randomness, image-level additions).
class TransformContext {
 public:
  TransformContext(analysis::IrProgram& prog, std::uint64_t seed, TransformConfig config = {})
      : prog_(prog), rng_(seed), config_(config) {}

  irdb::Database& db() { return prog_.db; }
  const irdb::Database& db() const { return prog_.db; }
  analysis::IrProgram& program() { return prog_; }
  Rng& rng() { return rng_; }
  const TransformConfig& config() const { return config_; }
  InstrumentationStats& instrumentation() { return instr_; }
  const InstrumentationStats& instrumentation() const { return instr_; }

  /// Iterate over the ids of instructions that existed when the call was
  /// made (safe against rows the callback adds).
  void for_each_existing_insn(const std::function<void(irdb::InsnId)>& fn) {
    const auto count = static_cast<irdb::InsnId>(db().insn_count());
    for (irdb::InsnId id = 1; id <= count; ++id) fn(id);
  }

  /// Add a data segment to the output image (e.g. CFI's target bitmap).
  /// Fails if it would overlap an existing segment.
  Status add_segment(zelf::Segment segment);

 private:
  analysis::IrProgram& prog_;
  Rng rng_;
  TransformConfig config_;
  InstrumentationStats instr_;
};

class Transform {
 public:
  virtual ~Transform() = default;
  virtual std::string name() const = 0;
  virtual Status apply(TransformContext& ctx) = 0;
};

using TransformFactory = std::function<std::unique_ptr<Transform>()>;

/// Register a transform under `name` (user transforms use this too).
/// Re-registering a name replaces the factory.
void register_transform(const std::string& name, TransformFactory factory);

/// Instantiate a registered transform. Built-ins are always available.
Result<std::unique_ptr<Transform>> make_transform(const std::string& name);

/// Names of all registered transforms (built-ins first, then user ones).
std::vector<std::string> registered_transforms();

/// Verify the mandatory-transformation invariants (paper Sec. II-B1): every
/// relocatable control transfer carries a logical or absolute target and
/// every PC-relative data access carries a data_ref; run before reassembly.
Status verify_mandatory(const analysis::IrProgram& prog);

}  // namespace zipr::transform
