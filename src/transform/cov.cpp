// "cov": AFL-style edge/block coverage instrumentation (see cov.h for the
// map ABI). Two code paths, selected by TransformConfig::cov_prune:
//
//   * The CONSERVATIVE path (prune off) reproduces the historical
//     transform bit-for-bit: every probe-eligible block entry -- targets
//     of static branches, jcc fallthroughs, function entries, pins --
//     gets a stub that saves/restores r5/r6, unless the forward flag
//     walk (analysis::flags_live_at) says condition flags may be live at
//     the entry (VLX has no pushf).
//
//   * The PRUNED path is ZAFL-style selective instrumentation on top of
//     the analysis layer (Cfg + dominators + Liveness):
//
//       1. Equivalence merging: block b joins the class of a = idom(b)
//          when b post-dominates a. All members of a class execute on
//          exactly the same runs, so one probe per class suffices.
//          Members folded away are counted as collapsed_single_pred
//          (straight-line chains) or pruned_dominated.
//       2. Pred-rule pruning: a class whose region entry a has only
//          instrumented predecessors p with a pdom p (and, in edge
//          mode, a single static successor) is implied by its preds'
//          probes and is dropped. Accepting a prune LOCKS the
//          supporting classes so later prunes cannot remove them.
//       3. Probe placement: the class representative is the cheapest
//          member position where flags are dead -- probes may sink past
//          flag-live entries into the block body (never past a call or
//          syscall), rescuing sites the conservative walk refused
//          (elided_flag_saves).
//       4. Stub codegen uses liveness to pick two DEAD scratch
//          registers; each proven-dead register elides one push/pop
//          pair (elided_reg_saves).
//       5. Degenerate critical edges -- a jcc whose taken and
//          fallthrough arms reach the same block -- are split in edge
//          mode with a fresh probe on the taken arm, restoring the edge
//          precision pruning would otherwise blur.
//
//     Soundness leans entirely on the CFG being a conservative
//     over-approximation: indirectly-reachable (pinned) blocks keep an
//     UNKNOWN predecessor, so neither rule ever removes their probes.
//
//   * Counters are 8-bit and wrap naturally (store8 keeps the low byte).
#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/liveness.h"
#include "transform/api.h"
#include "transform/cov.h"

namespace zipr::transform {

Status ensure_cov_map_segment(TransformContext& ctx);

namespace {

using analysis::BlockId;
using analysis::Cfg;
using analysis::kNoBlock;
using irdb::InsnId;
using isa::Insn;
using isa::Op;

Insn ri(Op op, std::uint8_t reg, std::int64_t imm) {
  Insn in;
  in.op = op;
  in.ra = reg;
  in.imm = imm;
  return in;
}

Insn reg1(Op op, std::uint8_t reg) {
  Insn in;
  in.op = op;
  in.ra = reg;
  return in;
}

Insn mem(Op op, std::uint8_t ra, std::uint8_t rb, std::int64_t disp) {
  Insn in;
  in.op = op;
  in.ra = ra;
  in.rb = rb;
  in.imm = disp;
  return in;
}

/// Scratch preference: the historical pair first, then the argument
/// registers (most often dead late in a block). Never sp.
constexpr std::uint8_t kScratchOrder[] = {5, 6, 0, 1, 2, 3, 4};

struct ScratchPlan {
  std::uint8_t a = 5, b = 6;   ///< stub scratch registers
  std::uint8_t saved[2];       ///< registers needing push/pop
  std::size_t nsaved = 0;
};

ScratchPlan plan_scratch(std::uint16_t live) {
  ScratchPlan p;
  std::uint8_t picked[2];
  std::size_t npicked = 0;
  for (std::uint8_t r : kScratchOrder) {
    if (npicked == 2) break;
    if (!analysis::reg_live(live, r)) picked[npicked++] = r;
  }
  for (std::uint8_t r : {std::uint8_t{5}, std::uint8_t{6}}) {
    if (npicked == 2) break;
    bool taken = false;
    for (std::size_t i = 0; i < npicked; ++i) taken |= picked[i] == r;
    if (taken) continue;
    picked[npicked++] = r;
    p.saved[p.nsaved++] = r;
  }
  p.a = picked[0];
  p.b = picked[1];
  return p;
}

/// Natural-loop nesting depth per block: the number of distinct loop
/// headers h (back edge p->h with h dominating p) whose loop body
/// contains the block. Multiple back edges to one header share a body.
/// Depth estimates execution frequency -- a probe at depth 2 fires once
/// per inner-loop iteration, a probe at depth 0 once per entry -- which
/// is what the prune pass orders by. Virtual nodes stay at depth 0 and
/// loop bodies never grow through them.
std::vector<int> loop_depth(const Cfg& cfg) {
  const std::size_t n = cfg.size();
  std::vector<int> depth(n, 0);
  std::map<BlockId, std::set<BlockId>> loops;  // header -> unioned body
  for (BlockId p = 3; p < n; ++p) {
    for (BlockId h : cfg.block(p).succs) {
      if (h < 3 || !cfg.dominates(h, p)) continue;
      auto& body = loops[h];
      body.insert(h);
      std::vector<BlockId> work;
      if (body.insert(p).second) work.push_back(p);
      while (!work.empty()) {
        BlockId b = work.back();
        work.pop_back();
        for (BlockId q : cfg.block(b).preds)
          if (q >= 3 && body.insert(q).second) work.push_back(q);
      }
    }
  }
  for (const auto& [h, body] : loops)
    for (BlockId b : body) ++depth[b];
  return depth;
}

class CovTransform final : public Transform {
 public:
  explicit CovTransform(CovMode mode) : mode_(mode) {}

  std::string name() const override { return mode_ == CovMode::kEdge ? "cov" : "cov-block"; }

  Status apply(TransformContext& ctx) override {
    ZIPR_TRY(ensure_cov_map_segment(ctx));
    if (ctx.config().cov_prune) return apply_pruned(ctx);
    return apply_conservative(ctx);
  }

 private:
  /// Emit one stub before `at_row`, scratch chosen from the dead set of
  /// `live`. `cur` is the probe's map id.
  void emit_stub(TransformContext& ctx, InsnId at_row, std::uint16_t live, std::int64_t cur) {
    const std::uint64_t text_vaddr = ctx.program().original.text().vaddr;
    const auto prev_slot = static_cast<std::int64_t>(cov_prev_addr(text_vaddr));
    const auto counters = static_cast<std::int64_t>(cov_counters_addr(text_vaddr));
    const ScratchPlan sp = plan_scratch(live);
    const std::uint8_t A = sp.a, B = sp.b;

    std::vector<Insn> stub;
    for (std::size_t i = 0; i < sp.nsaved; ++i) stub.push_back(reg1(Op::kPush, sp.saved[i]));
    if (mode_ == CovMode::kEdge) {
      // idx = prev ^ cur; map[idx]++; prev = cur >> 1
      stub.push_back(ri(Op::kMovI, A, prev_slot));
      stub.push_back(mem(Op::kLoad, B, A, 0));
      stub.push_back(ri(Op::kXorI, B, cur));
      stub.push_back(mem(Op::kAdd, B, A, 0));  // B = prev_slot + idx
      stub.push_back(mem(Op::kLoad8, A, B, counters - prev_slot));
      stub.push_back(ri(Op::kAddI, A, 1));
      stub.push_back(mem(Op::kStore8, B, A, counters - prev_slot));
      stub.push_back(ri(Op::kMovI, A, prev_slot));
      stub.push_back(ri(Op::kMovI, B, cur >> 1));
      stub.push_back(mem(Op::kStore, A, B, 0));
    } else {
      // map[cur]++
      stub.push_back(ri(Op::kMovI, A, counters + cur));
      stub.push_back(mem(Op::kLoad8, B, A, 0));
      stub.push_back(ri(Op::kAddI, B, 1));
      stub.push_back(mem(Op::kStore8, A, B, 0));
    }
    for (std::size_t i = sp.nsaved; i-- > 0;) stub.push_back(reg1(Op::kPop, sp.saved[i]));

    irdb::Database& db = ctx.db();
    db.insert_before(at_row, stub[0]);
    InsnId cursor = at_row;
    for (std::size_t i = 1; i < stub.size(); ++i) cursor = db.insert_after(cursor, stub[i]);

    InstrumentationStats& st = ctx.instrumentation();
    ++st.probes;
    st.elided_reg_saves += 2 - sp.nsaved;
  }

  // ---- conservative path (prune off): the historical transform,
  // preserved bit-for-bit (same stub bytes, same rng draw sequence) ----
  Status apply_conservative(TransformContext& ctx) {
    irdb::Database& db = ctx.db();
    const std::uint64_t text_vaddr = ctx.program().original.text().vaddr;
    const std::uint64_t text_end = ctx.program().original.text().end();
    const auto prev_slot = static_cast<std::int64_t>(cov_prev_addr(text_vaddr));
    const auto counters = static_cast<std::int64_t>(cov_counters_addr(text_vaddr));
    InstrumentationStats& st = ctx.instrumentation();

    // Basic-block entries, in ascending row-id order.
    std::set<InsnId> leaders;
    db.for_each_insn([&](const auto& row) {
      if (row.target != irdb::kNullInsn) leaders.insert(row.target);
      if (row.decoded.op == Op::kJcc && row.fallthrough != irdb::kNullInsn)
        leaders.insert(row.fallthrough);
    });
    db.for_each_function([&](const irdb::Function& func) {
      if (func.entry != irdb::kNullInsn) leaders.insert(func.entry);
    });
    for (const auto& [addr, id] : db.pins()) leaders.insert(id);

    // One stub per safely-instrumentable block entry. The stub always
    // saves r5/r6: register liveness is not consulted on this path.
    for (InsnId leader : leaders) {
      if (db.insn(leader).verbatim) continue;
      ++st.candidate_sites;
      if (analysis::flags_live_at(db, leader, text_end)) {
        ++st.skipped_flags;
        continue;
      }
      const auto cur = static_cast<std::int64_t>(ctx.rng().below(kCovMapEntries));

      std::vector<Insn> stub;
      stub.push_back(reg1(Op::kPush, 5));
      stub.push_back(reg1(Op::kPush, 6));
      if (mode_ == CovMode::kEdge) {
        // idx = prev ^ cur; map[idx]++; prev = cur >> 1
        stub.push_back(ri(Op::kMovI, 5, prev_slot));
        stub.push_back(mem(Op::kLoad, 6, 5, 0));
        stub.push_back(ri(Op::kXorI, 6, cur));
        stub.push_back(ri(Op::kMovI, 5, counters));
        stub.push_back(mem(Op::kAdd, 5, 6, 0));
        stub.push_back(mem(Op::kLoad8, 6, 5, 0));
        stub.push_back(ri(Op::kAddI, 6, 1));
        stub.push_back(mem(Op::kStore8, 5, 6, 0));
        stub.push_back(ri(Op::kMovI, 5, prev_slot));
        stub.push_back(ri(Op::kMovI, 6, cur >> 1));
        stub.push_back(mem(Op::kStore, 5, 6, 0));
      } else {
        // map[cur]++
        stub.push_back(ri(Op::kMovI, 5, counters + cur));
        stub.push_back(mem(Op::kLoad8, 6, 5, 0));
        stub.push_back(ri(Op::kAddI, 6, 1));
        stub.push_back(mem(Op::kStore8, 5, 6, 0));
      }
      stub.push_back(reg1(Op::kPop, 6));
      stub.push_back(reg1(Op::kPop, 5));

      db.insert_before(leader, stub[0]);
      InsnId cursor = leader;
      for (std::size_t i = 1; i < stub.size(); ++i) cursor = db.insert_after(cursor, stub[i]);
      ++st.probes;
    }
    return db.validate();
  }

  // ---- pruned path: CFG-aware selective instrumentation ----
  Status apply_pruned(TransformContext& ctx) {
    irdb::Database& db = ctx.db();
    const std::uint64_t text_end = ctx.program().original.text().end();
    InstrumentationStats& st = ctx.instrumentation();

    const Cfg cfg = Cfg::build(ctx.program());
    const analysis::Liveness lv = analysis::Liveness::compute(ctx.program(), cfg);
    const std::size_t n = cfg.size();

    std::vector<std::uint32_t> rpo_index(n, 0);
    for (std::size_t i = 0; i < cfg.rpo().size(); ++i)
      rpo_index[cfg.rpo()[i]] = static_cast<std::uint32_t>(i);

    // -- 1. equivalence classes (union-find; roots are dom-most) --
    std::vector<BlockId> uf(n);
    for (std::size_t i = 0; i < n; ++i) uf[i] = static_cast<BlockId>(i);
    auto find = [&](BlockId b) {
      BlockId root = b;
      while (uf[root] != root) root = uf[root];
      while (uf[b] != root) {
        BlockId up = uf[b];
        uf[b] = root;
        b = up;
      }
      return root;
    };
    for (BlockId b : cfg.rpo()) {
      if (b < 3 || cfg.block(b).opaque) continue;
      BlockId a = cfg.idom()[b];
      if (a == kNoBlock || a < 3 || cfg.block(a).opaque) continue;
      if (cfg.postdominates(b, a)) uf[b] = find(a);
    }

    struct Cls {
      std::vector<BlockId> members;     ///< ascending block id
      std::vector<BlockId> ps_members;  ///< probe-eligible members
      bool instrumented = false;
      bool pruned_by_pred = false;
      bool locked = false;  ///< supports an accepted prune: keep
      BlockId rep = kNoBlock;
      std::size_t rep_idx = 0;       ///< row index within rep for the stub
      std::uint16_t rep_live = analysis::kAllLive;
    };
    std::map<BlockId, Cls> classes;  // keyed by root: deterministic order
    for (BlockId b = 3; b < static_cast<BlockId>(n); ++b) {
      Cls& c = classes[find(b)];
      c.members.push_back(b);
      const analysis::BasicBlock& blk = cfg.block(b);
      if (blk.probe_site && !db.insn(blk.leader).verbatim) {
        c.ps_members.push_back(b);
        ++st.candidate_sites;
      }
    }

    // -- 2. pick each class's probe position --
    // Score: avoid loop headers (members with a retreating-edge pred),
    // then latest RPO (past loop exits), then most dead scratch
    // registers, then shallowest sink.
    for (auto& [root, cls] : classes) {
      if (cls.ps_members.empty()) continue;
      using Score = std::tuple<int, std::uint32_t, int, int>;
      Score best{-1, 0, 0, 0};
      for (BlockId m : cls.members) {
        const analysis::BasicBlock& blk = cfg.block(m);
        if (blk.opaque || blk.insns.empty()) continue;
        bool back_pred = false;
        for (BlockId p : blk.preds)
          if (p >= 3 && rpo_index[p] >= rpo_index[m]) back_pred = true;
        const std::size_t max_idx = std::min(blk.first_unsafe, blk.insns.size() - 1);
        for (std::size_t idx = 0; idx <= max_idx; ++idx) {
          const std::uint16_t live = lv.live_before(m, idx);
          if (analysis::flags_live(live)) continue;
          int dead = 0;
          for (std::uint8_t r : kScratchOrder)
            if (!analysis::reg_live(live, r)) ++dead;
          Score s{back_pred ? 0 : 1, rpo_index[m], std::min(dead, 2),
                  -static_cast<int>(idx)};
          if (cls.rep == kNoBlock || s > best) {
            best = s;
            cls.rep = m;
            cls.rep_idx = idx;
            cls.rep_live = live;
          }
        }
      }
      if (cls.rep != kNoBlock)
        cls.instrumented = true;
      else
        st.skipped_flags += cls.ps_members.size();  // flags live everywhere
    }

    // -- 3. pred-rule pruning, in RPO with a locked set --
    // A class may lose its probe when its coverage is derivable from the
    // probes around it: every external predecessor p is itself probed or
    // was pruned the same way (derivability is transitive along p's own
    // support chain), and every OTHER successor of each p keeps a live
    // probe -- so whether control left p toward this class or elsewhere
    // stays distinguishable in the map. EXIT needs no probe (the run
    // ends); an UNKNOWN successor or a virtual/opaque pred blocks the
    // prune, which automatically protects pinned (indirectly-targetable)
    // blocks. Accepting a prune LOCKS the disambiguating other-successor
    // probes so a later prune cannot remove them: every branch keeps at
    // least one live arm. Predecessors are NOT locked -- a pruned pred
    // only lengthens the derivation chain -- which is what lets whole
    // loop spines and dispatch chains dissolve while their branch arms
    // stay probed.
    // Candidates are considered hottest-first: a class whose probe sits
    // deep in a loop nest fires once per iteration, so it gets first
    // claim on the prunes before shallower classes consume its
    // disambiguators as locked. A payload loop then loses its
    // per-iteration body probe and keeps the once-per-call probe at the
    // handler entry it locked. Ties break in RPO for determinism.
    const std::vector<int> depth = loop_depth(cfg);
    std::vector<BlockId> prune_order;
    for (BlockId a : cfg.rpo()) {
      if (a < 3 || find(a) != a) continue;
      const Cls& cls = classes[a];
      if (cls.instrumented && cls.rep != kNoBlock) prune_order.push_back(a);
    }
    std::stable_sort(prune_order.begin(), prune_order.end(),
                     [&](BlockId x, BlockId y) {
                       return depth[classes[x].rep] > depth[classes[y].rep];
                     });
    for (BlockId a : prune_order) {
      Cls& cls = classes[a];
      if (!cls.instrumented || cls.locked || cfg.block(a).pinned) continue;
      std::set<BlockId> preds;
      for (BlockId p : cfg.block(a).preds)
        if (find(p) != a) preds.insert(p);  // external region entries only
      if (preds.empty()) continue;
      bool ok = true;
      std::vector<Cls*> disambiguators;
      for (BlockId p : preds) {
        if (p < 3 || cfg.block(p).opaque) { ok = false; break; }
        Cls& pc = classes[find(p)];
        if (!pc.instrumented && !pc.pruned_by_pred) { ok = false; break; }
        std::set<BlockId> succs;
        for (BlockId s : cfg.block(p).succs)
          succs.insert(s < 3 ? s : find(s));
        for (BlockId s : succs) {
          if (s == a || s == Cfg::kExit) continue;
          if (s < 3) { ok = false; break; }  // ENTRY/UNKNOWN: cannot account
          Cls& scls = classes[s];
          if (!scls.instrumented) { ok = false; break; }
          disambiguators.push_back(&scls);
        }
        if (!ok) break;
      }
      if (!ok) continue;
      cls.instrumented = false;
      cls.pruned_by_pred = true;
      for (Cls* c : disambiguators) c->locked = true;
    }

    // -- 4. accounting --
    for (auto& [root, cls] : classes) {
      if (cls.ps_members.empty() || (!cls.instrumented && !cls.pruned_by_pred)) continue;
      bool billed = cls.pruned_by_pred;  // pred-pruned: every site saved
      for (BlockId m : cls.ps_members) {
        if (!billed && cls.instrumented) {
          billed = true;  // this class's one probe covers m
          continue;
        }
        std::set<BlockId> preds(cfg.block(m).preds.begin(), cfg.block(m).preds.end());
        if (preds.size() == 1 && find(*preds.begin()) == root)
          ++st.collapsed_single_pred;
        else
          ++st.pruned_dominated;
      }
    }

    // -- 5. emit class probes in ascending insertion-row order --
    struct Emit {
      InsnId at_row;
      std::uint16_t live;
      BlockId rep;
    };
    std::vector<Emit> emits;
    for (auto& [root, cls] : classes) {
      if (!cls.instrumented || cls.ps_members.empty()) continue;
      const analysis::BasicBlock& blk = cfg.block(cls.rep);
      emits.push_back({blk.insns[cls.rep_idx], cls.rep_live, cls.rep});
    }
    std::sort(emits.begin(), emits.end(),
              [](const Emit& x, const Emit& y) { return x.at_row < y.at_row; });
    for (const Emit& e : emits) {
      const auto cur = static_cast<std::int64_t>(ctx.rng().below(kCovMapEntries));
      if (analysis::flags_live_at(db, cfg.block(e.rep).leader, text_end))
        ++st.elided_flag_saves;  // the conservative walk refused this site
      emit_stub(ctx, e.at_row, e.live, cur);
    }

    // -- 6. split degenerate critical edges (edge mode) --
    // A jcc whose two arms enter the same block makes the taken and
    // fallthrough paths indistinguishable in the edge map. Give the
    // taken arm its own trampoline [stub; jmp target]; the edge keeps a
    // distinct probe id and the fallthrough arm keeps the block's.
    if (mode_ == CovMode::kEdge) {
      std::vector<InsnId> degenerate;
      const auto count = static_cast<InsnId>(db.insn_count());
      for (InsnId id = 1; id <= count; ++id) {
        const auto row = db.insn(id);
        if (row.verbatim || row.decoded.op != Op::kJcc) continue;
        if (row.target != irdb::kNullInsn && row.target == row.fallthrough)
          degenerate.push_back(id);
      }
      for (InsnId jcc : degenerate) {
        const BlockId tb = cfg.block_of(db.insn(jcc).target);
        if (tb == kNoBlock) continue;
        const std::uint16_t live = lv.live_in(tb);
        if (analysis::flags_live(live)) continue;  // cannot clobber: keep alias
        Insn jmp;
        jmp.op = Op::kJmp;
        const InsnId wid = db.add_new(jmp);
        db.insn(wid).target = db.insn(jcc).target;
        db.insn(jcc).target = wid;
        const auto cur = static_cast<std::int64_t>(ctx.rng().below(kCovMapEntries));
        emit_stub(ctx, wid, live, cur);
        ++st.split_critical_edges;
      }
    }

    return db.validate();
  }

  CovMode mode_;
};

}  // namespace

Status ensure_cov_map_segment(TransformContext& ctx) {
  const std::uint64_t base = cov_map_base(ctx.program().original.text().vaddr);
  for (const auto& seg : ctx.program().original.segments)
    if (seg.vaddr == base) return Status::success();  // another transform added it
  zelf::Segment seg;
  seg.kind = zelf::SegKind::kBss;
  seg.vaddr = base;
  seg.memsize = kCovSegBytes;
  return ctx.add_segment(std::move(seg));
}

std::unique_ptr<Transform> make_cov_transform(CovMode mode) {
  return std::make_unique<CovTransform>(mode);
}

}  // namespace zipr::transform
