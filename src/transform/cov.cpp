// "cov": AFL-style edge/block coverage instrumentation (see cov.h for the
// map ABI). Implementation notes:
//
//   * Basic-block entries are discovered from the IRDB's logical links:
//     targets of static branches, fallthroughs of conditional branches,
//     function entries, and every pinned address (anything reachable
//     indirectly at runtime enters a block).
//   * Stubs save/restore their scratch registers (r5, r6) but CANNOT save
//     condition flags (VLX has no pushf). Instead of assuming flags are
//     dead at every block entry, the transform runs a small forward
//     liveness walk (ZAFL's liveness-aware instrumentation): a block whose
//     entry can reach a jcc before any flag-writing instruction is left
//     uninstrumented. Flags are assumed dead across indirect transfers and
//     returns -- the same documented ABI assumption CFI and the canary
//     transform already rely on.
//   * Counters are 8-bit and wrap naturally (store8 keeps the low byte).
#include <set>
#include <vector>

#include "transform/api.h"
#include "transform/cov.h"

namespace zipr::transform {

namespace {

using irdb::InsnId;
using isa::Insn;
using isa::Op;

Insn ri(Op op, std::uint8_t reg, std::int64_t imm) {
  Insn in;
  in.op = op;
  in.ra = reg;
  in.imm = imm;
  return in;
}

Insn reg1(Op op, std::uint8_t reg) {
  Insn in;
  in.op = op;
  in.ra = reg;
  return in;
}

Insn mem(Op op, std::uint8_t ra, std::uint8_t rb, std::int64_t disp) {
  Insn in;
  in.op = op;
  in.ra = ra;
  in.rb = rb;
  in.imm = disp;
  return in;
}

bool writes_flags(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kMul: case Op::kDiv: case Op::kMod: case Op::kShl: case Op::kShr:
    case Op::kSar: case Op::kAddI: case Op::kSubI: case Op::kAndI: case Op::kOrI:
    case Op::kXorI: case Op::kShlI: case Op::kShrI: case Op::kCmp: case Op::kCmpI:
    case Op::kTest:
      return true;
    default:
      return false;
  }
}

/// True if condition flags may be LIVE at the entry of `start`'s block: a
/// forward walk over logical successors reaches a jcc before any
/// flag-writing instruction. Conservative on anything it cannot see
/// (verbatim rows, targets kept inside original text). `text_end` is the
/// original text segment's end: the IR builder models control flow that
/// runs off the end of text as a synthetic jump to the original address
/// past the segment, which can only fault -- flags are dead there, and
/// treating it as live would skip every block that ends the program.
bool flags_live_at(const irdb::Database& db, InsnId start, std::uint64_t text_end) {
  std::vector<InsnId> work{start};
  std::set<InsnId> seen;
  while (!work.empty()) {
    InsnId id = work.back();
    work.pop_back();
    if (id == irdb::kNullInsn || !seen.insert(id).second) continue;
    if (seen.size() > 256) return true;  // walk exploded: assume live
    const irdb::Instruction& row = db.insn(id);
    if (row.verbatim) return true;  // opaque bytes: assume live
    const Insn& in = row.decoded;
    if (in.op == Op::kJcc) return true;   // consumer before any writer
    if (writes_flags(in.op)) continue;    // this path redefines flags first
    switch (in.op) {
      case Op::kRet: case Op::kCallR: case Op::kJmpR: case Op::kJmpT: case Op::kHlt:
        continue;  // flags dead across indirect transfers/returns (ABI)
      case Op::kJmp:
      case Op::kCall:
        // Follow the target (for calls, flags flow into the callee).
        if (row.target != irdb::kNullInsn)
          work.push_back(row.target);
        else if (row.abs_target && *row.abs_target >= text_end)
          continue;  // runs off text end: faults, flags cannot matter
        else
          return true;  // target kept inside original text: cannot see it
        continue;
      default:
        break;
    }
    if (row.fallthrough != irdb::kNullInsn) work.push_back(row.fallthrough);
  }
  return false;
}

class CovTransform final : public Transform {
 public:
  explicit CovTransform(CovMode mode) : mode_(mode) {}

  std::string name() const override { return mode_ == CovMode::kEdge ? "cov" : "cov-block"; }

  Status apply(TransformContext& ctx) override {
    irdb::Database& db = ctx.db();
    const zelf::Segment& text = ctx.program().original.text();
    const std::uint64_t text_vaddr = text.vaddr;
    const std::uint64_t text_end = text.end();  // memsize end: zero tail stays conservative
    const auto prev_slot = static_cast<std::int64_t>(cov_prev_addr(text_vaddr));
    const auto counters = static_cast<std::int64_t>(cov_counters_addr(text_vaddr));

    // ---- 1. basic-block entries, in ascending row-id order ----
    std::set<InsnId> leaders;
    db.for_each_insn([&](const irdb::Instruction& row) {
      if (row.target != irdb::kNullInsn) leaders.insert(row.target);
      if (row.decoded.op == Op::kJcc && row.fallthrough != irdb::kNullInsn)
        leaders.insert(row.fallthrough);
    });
    db.for_each_function([&](const irdb::Function& func) {
      if (func.entry != irdb::kNullInsn) leaders.insert(func.entry);
    });
    for (const auto& [addr, id] : db.pins()) leaders.insert(id);

    // ---- 2. the map segment (zero-initialized rw, no file bytes) ----
    zelf::Segment seg;
    seg.kind = zelf::SegKind::kBss;
    seg.vaddr = cov_map_base(text_vaddr);
    seg.memsize = kCovSegBytes;
    ZIPR_TRY(ctx.add_segment(std::move(seg)));

    // ---- 3. one stub per safely-instrumentable block entry ----
    for (InsnId leader : leaders) {
      const irdb::Instruction& row = db.insn(leader);
      if (row.verbatim) continue;
      if (flags_live_at(db, leader, text_end)) {
        ++skipped_flags_;
        continue;
      }
      const auto cur =
          static_cast<std::int64_t>(ctx.rng().below(kCovMapEntries));

      std::vector<Insn> stub;
      stub.push_back(reg1(Op::kPush, 5));
      stub.push_back(reg1(Op::kPush, 6));
      if (mode_ == CovMode::kEdge) {
        // idx = prev ^ cur; map[idx]++; prev = cur >> 1
        stub.push_back(ri(Op::kMovI, 5, prev_slot));
        stub.push_back(mem(Op::kLoad, 6, 5, 0));
        stub.push_back(ri(Op::kXorI, 6, cur));
        stub.push_back(ri(Op::kMovI, 5, counters));
        stub.push_back(mem(Op::kAdd, 5, 6, 0));
        stub.push_back(mem(Op::kLoad8, 6, 5, 0));
        stub.push_back(ri(Op::kAddI, 6, 1));
        stub.push_back(mem(Op::kStore8, 5, 6, 0));
        stub.push_back(ri(Op::kMovI, 5, prev_slot));
        stub.push_back(ri(Op::kMovI, 6, cur >> 1));
        stub.push_back(mem(Op::kStore, 5, 6, 0));
      } else {
        // map[cur]++
        stub.push_back(ri(Op::kMovI, 5, counters + cur));
        stub.push_back(mem(Op::kLoad8, 6, 5, 0));
        stub.push_back(ri(Op::kAddI, 6, 1));
        stub.push_back(mem(Op::kStore8, 5, 6, 0));
      }
      stub.push_back(reg1(Op::kPop, 6));
      stub.push_back(reg1(Op::kPop, 5));

      db.insert_before(leader, stub[0]);
      InsnId cursor = leader;
      for (std::size_t i = 1; i < stub.size(); ++i) cursor = db.insert_after(cursor, stub[i]);
      ++instrumented_;
    }
    return db.validate();
  }

 private:
  CovMode mode_;
  std::size_t instrumented_ = 0;
  std::size_t skipped_flags_ = 0;
};

}  // namespace

std::unique_ptr<Transform> make_cov_transform(CovMode mode) {
  return std::make_unique<CovTransform>(mode);
}

}  // namespace zipr::transform
