#include "transform/api.h"

#include <map>
#include <mutex>

#include "transform/cov.h"

namespace zipr::transform {

Status TransformContext::add_segment(zelf::Segment segment) {
  const std::uint64_t seg_end = segment.vaddr + segment.memsize;
  for (const auto& existing : prog_.original.segments) {
    if (segment.vaddr < existing.end() && existing.vaddr < seg_end)
      return Error::invalid_argument(
          "added segment [" + hex_addr(segment.vaddr) + ", " + hex_addr(seg_end) +
          ") overlaps existing segment [" + hex_addr(existing.vaddr) + ", " +
          hex_addr(existing.end()) + ")");
  }
  prog_.original.segments.push_back(std::move(segment));
  return Status::success();
}

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::string, TransformFactory> factories;
  std::vector<std::string> order;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

// Built-in factories (defined in their own translation units).
std::unique_ptr<Transform> make_null_transform();
std::unique_ptr<Transform> make_cfi_transform();
std::unique_ptr<Transform> make_stackpad_transform();
std::unique_ptr<Transform> make_canary_transform();
std::unique_ptr<Transform> make_profile_transform();
std::unique_ptr<Transform> make_cov_transform(CovMode mode);
std::unique_ptr<Transform> make_laf_transform();

namespace {

void ensure_builtins() {
  static std::once_flag once;
  std::call_once(once, [] {
    register_transform("null", make_null_transform);
    register_transform("cfi", make_cfi_transform);
    register_transform("stackpad", make_stackpad_transform);
    register_transform("canary", make_canary_transform);
    register_transform("profile", make_profile_transform);
    register_transform("cov", [] { return make_cov_transform(CovMode::kEdge); });
    register_transform("cov-block", [] { return make_cov_transform(CovMode::kBlock); });
    register_transform("laf", make_laf_transform);
  });
}

}  // namespace

void register_transform(const std::string& name, TransformFactory factory) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (!r.factories.count(name)) r.order.push_back(name);
  r.factories[name] = std::move(factory);
}

Result<std::unique_ptr<Transform>> make_transform(const std::string& name) {
  ensure_builtins();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.factories.find(name);
  if (it == r.factories.end()) {
    std::string known;
    for (const auto& n : r.order) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Error::not_found("no transform named '" + name + "' (registered: " + known + ")");
  }
  return it->second();
}

std::vector<std::string> registered_transforms() {
  ensure_builtins();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.order;
}

}  // namespace zipr::transform
