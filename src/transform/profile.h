// "profile": function-entry execution counters.
//
// A worked example of the non-security side of the transform API (the
// paper: Zipr is "generally well-suited for program optimization and
// transformation"): every discovered function's entry is instrumented to
// increment a 64-bit counter in a writable segment added to the image.
// After a run, counter i (in function-table order) holds how many times
// function id i+1 was entered -- read it from the VM's memory at
// profile_counter_addr(i).
//
// Guards clobber condition flags at function entry (the documented ABI
// assumption).
#pragma once

#include <cstdint>

namespace zipr::transform {

/// Base address of the counter segment the transform adds for an image
/// whose text starts at `text_vaddr`. Scaled by the text base so images
/// with disjoint (reasonably sized) text spans get disjoint counter
/// segments when several profiled images are linked together.
inline constexpr std::uint64_t profile_counter_base(std::uint64_t text_vaddr) {
  return 0x7d000000 + (text_vaddr >> 1);
}

/// Address of the counter for the function with table index `index`
/// (function id - 1) in the image whose text starts at `text_vaddr`.
inline constexpr std::uint64_t profile_counter_addr(std::uint64_t text_vaddr,
                                                    std::size_t index) {
  return profile_counter_base(text_vaddr) + 8 * static_cast<std::uint64_t>(index);
}

}  // namespace zipr::transform
