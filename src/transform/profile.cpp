#include "transform/profile.h"

#include "transform/api.h"

namespace zipr::transform {

namespace {

using irdb::InsnId;
using isa::Insn;
using isa::Op;

Insn ri(Op op, std::uint8_t reg, std::int64_t imm) {
  Insn in;
  in.op = op;
  in.ra = reg;
  in.imm = imm;
  return in;
}

Insn reg1(Op op, std::uint8_t reg) {
  Insn in;
  in.op = op;
  in.ra = reg;
  return in;
}

Insn mem(Op op, std::uint8_t ra, std::uint8_t rb, std::int64_t disp) {
  Insn in;
  in.op = op;
  in.ra = ra;
  in.rb = rb;
  in.imm = disp;
  return in;
}

class ProfileTransform final : public Transform {
 public:
  std::string name() const override { return "profile"; }

  Status apply(TransformContext& ctx) override {
    irdb::Database& db = ctx.db();
    const std::size_t functions = db.function_count();
    if (functions == 0) return Status::success();

    const std::uint64_t text_vaddr = ctx.program().original.text().vaddr;

    // One zero-initialized 64-bit counter per function.
    zelf::Segment seg;
    seg.kind = zelf::SegKind::kData;
    seg.vaddr = profile_counter_base(text_vaddr);
    seg.memsize = 8 * functions;
    seg.bytes = Bytes(8 * functions, 0);
    ZIPR_TRY(ctx.add_segment(std::move(seg)));

    db.for_each_function([&](irdb::Function& func) {
      if (func.entry == irdb::kNullInsn) return;
      const auto slot =
          static_cast<std::int64_t>(profile_counter_addr(text_vaddr, func.id - 1));
      // push r5 ; push r6 ; movi r5, slot ; load r6,[r5] ; addi r6,1 ;
      // store [r5], r6 ; pop r6 ; pop r5 ; <original entry>
      db.insert_before(func.entry, reg1(Op::kPush, 5));
      InsnId cursor = func.entry;
      cursor = db.insert_after(cursor, reg1(Op::kPush, 6));
      cursor = db.insert_after(cursor, ri(Op::kMovI, 5, slot));
      cursor = db.insert_after(cursor, mem(Op::kLoad, 6, 5, 0));
      cursor = db.insert_after(cursor, ri(Op::kAddI, 6, 1));
      cursor = db.insert_after(cursor, mem(Op::kStore, 5, 6, 0));
      cursor = db.insert_after(cursor, reg1(Op::kPop, 6));
      db.insert_after(cursor, reg1(Op::kPop, 5));
      ++instrumented_;
    });
    return db.validate();
  }

 private:
  std::size_t instrumented_ = 0;
};

}  // namespace

std::unique_ptr<Transform> make_profile_transform() {
  return std::make_unique<ProfileTransform>();
}

}  // namespace zipr::transform
