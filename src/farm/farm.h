// Multi-shard fuzzing farm: a campaign orchestrator that runs many
// fuzz::Fuzzer streams on a pool of persistent-mode executors and merges
// them at sync epochs -- the ZAFL/StochFuzz-scale workload the Zipr
// executor was built for, with the same reproducibility contract the
// single-shard fuzzer gives:
//
//   merged corpus, crash set, and triage keys are a pure function of
//   (image, seeds, campaign seed, epoch geometry) -- NOT of the shard
//   count, the worker count, or any scheduling order.
//
// How that holds (the determinism argument, long form in DESIGN.md):
//
//   * A campaign advances in SYNC EPOCHS. Each epoch spawns a fixed set
//     of logical streams; stream s draws all its randomness from
//     derive_seed(campaign_seed, kFarmStreamBase + epoch * streams + s),
//     and every stream shares the campaign-global GUEST seed, so an
//     input's coverage path -- and therefore its CrashKey -- is
//     stream-independent.
//   * Each stream adopts a snapshot of the merged corpus + virgin map
//     and runs a fixed number of plan/execute/merge rounds on ONE
//     persistent executor. Executors are interchangeable (every run
//     restores the same startup snapshot), so which shard's executor a
//     stream lands on cannot leak into its results.
//   * Shards are physical lanes: stream s runs on executor s % shards,
//     streams on the same lane run back-to-back. Changing the shard
//     count changes only the lane assignment; `jobs` (<= shards) only
//     oversubscribes lanes onto fewer threads. Neither is observable.
//   * At the epoch barrier the orchestrator merges sequentially in
//     stream order: deterministic-stage cursors max-merge on the
//     adopted prefix, new entries re-prove novelty against the LIVE
//     global virgin map word-wise (fuzz::has_new_bits/merge_bits), and
//     crashes dedup by CrashKey with the winner rule "lowest (epoch,
//     stream, stream-schedule ordinal) keeps the input"; later sightings
//     are recorded as duplicates, never replace the winner.
#pragma once

#include <vector>

#include "fuzz/fuzzer.h"

namespace zipr::farm {

struct FarmOptions {
  std::uint64_t seed = 1;           ///< campaign seed (streams, guest rng)
  std::size_t shards = 1;           ///< persistent executors (physical lanes)
  int jobs = 0;                     ///< worker threads; <=0 or >shards clamps to shards
  std::uint64_t max_execs = 20000;  ///< stop after at least this many runs
                                    ///< (checked at epoch boundaries)
  std::size_t streams_per_epoch = 8;  ///< logical streams per sync epoch
  std::size_t rounds_per_stream = 2;  ///< fuzzer rounds between syncs
  std::size_t tasks_per_round = 4;
  std::size_t execs_per_task = 24;
  vm::RunLimits limits{.max_insns = 2'000'000, .max_output = 1 << 20};
  bool trim = true;
};

/// Where a crash was first (or subsequently) sighted. `shard` is derived
/// metadata (stream % shards): it names the executor lane for reporting
/// but is excluded from identity -- results compare equal across shard
/// counts.
struct CrashOrigin {
  std::uint64_t epoch = 0;
  std::size_t stream = 0;    ///< logical stream within the epoch
  std::uint64_t ordinal = 0; ///< stream-local exec count at the merge
  std::size_t shard = 0;     ///< stream % shards (reporting only)
};

/// A deduped crash plus its winning origin and every later sighting of
/// the same CrashKey (the cross-shard dedup trail).
struct Crash {
  fuzz::Crash crash;
  CrashOrigin origin;
  std::vector<CrashOrigin> duplicates;
};

struct ShardStats {
  std::uint64_t execs = 0;
  std::uint64_t streams_run = 0;
};

struct FarmStats {
  std::uint64_t execs = 0;
  std::uint64_t crashing_execs = 0;
  std::uint64_t epochs = 0;
  std::uint64_t imported_entries = 0;    ///< novelty-bearing entries synced in
  std::uint64_t rejected_duplicates = 0; ///< stream entries with no new bits at sync
  std::uint64_t duplicate_crashes = 0;   ///< later sightings of known CrashKeys
  double wall_seconds = 0;
  double execs_per_sec = 0;
  std::size_t map_indices_hit = 0;
  fuzz::StageCounters stages;        ///< per-stage admissions/crashes, campaign-wide
  std::vector<ShardStats> shards;    ///< per-lane work accounting (scheduling-dependent
                                     ///< wall time aside, exec counts are deterministic)
};

struct FarmResult {
  std::vector<fuzz::CorpusEntry> corpus;
  std::vector<Crash> crashes;        ///< deduped, sorted by CrashKey
  FarmStats stats;
};

/// Run a sharded campaign over a cov-instrumented image. Deterministic in
/// (image, seeds, opts.seed, epoch geometry); invariant to opts.shards
/// and opts.jobs (wall-clock stats and per-shard accounting aside).
Result<FarmResult> run_campaign(const zelf::Image& instrumented,
                                const std::vector<Bytes>& seeds, const FarmOptions& opts);

}  // namespace zipr::farm
