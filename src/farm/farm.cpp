#include "farm/farm.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

#include "batch/worker_pool.h"
#include "support/rng.h"

namespace zipr::farm {

namespace {

/// Stream-seed arena. Far above the fuzzer's own planner (1<<20) and task
/// (1<<30) stream bases so a farm stream's derived seed can never collide
/// with a single-campaign stream of the same campaign seed.
constexpr std::uint64_t kFarmStreamBase = 1ull << 40;

/// A crash's global identity + provenance while the campaign runs.
struct CrashSlot {
  fuzz::Fuzzer::CrashRec rec;
  CrashOrigin origin;
  std::vector<CrashOrigin> duplicates;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

Result<FarmResult> run_campaign(const zelf::Image& instrumented,
                                const std::vector<Bytes>& seeds, const FarmOptions& opts) {
  if (opts.shards == 0) return Error::invalid_argument("farm needs at least one shard");
  if (opts.streams_per_epoch == 0)
    return Error::invalid_argument("farm needs at least one stream per epoch");
  if (opts.rounds_per_stream == 0)
    return Error::invalid_argument("farm needs at least one round per stream");
  const auto t0 = std::chrono::steady_clock::now();

  // Physical lanes: one persistent executor per shard. `jobs` may
  // undersubscribe the lanes (oversubscription the other way -- more
  // jobs than shards -- is clamped: a lane is a serial resource).
  std::vector<fuzz::Executor> executors;
  executors.reserve(opts.shards);
  for (std::size_t p = 0; p < opts.shards; ++p) executors.emplace_back(instrumented, opts.limits);
  const int jobs = static_cast<int>(batch::effective_jobs(
      opts.jobs <= 0 ? static_cast<int>(opts.shards) : opts.jobs, opts.shards));

  fuzz::FuzzOptions base;
  base.seed = opts.seed;
  base.jobs = 1;
  base.max_execs = opts.max_execs;
  base.tasks_per_round = opts.tasks_per_round;
  base.execs_per_task = opts.execs_per_task;
  base.limits = opts.limits;
  base.trim = opts.trim;

  FarmResult out;
  FarmStats& st = out.stats;
  st.shards.resize(opts.shards);

  // ---- seed phase (epoch 0): one sequential fuzzer seeds the global
  // state on shard 0, and fixes the campaign-wide guest seed every
  // stream shares (same input => same path => same CrashKey anywhere).
  fuzz::Fuzzer seeder(instrumented, base);
  const std::uint64_t guest_seed = seeder.guest_seed();
  ZIPR_TRY(seeder.seed_corpus(seeds, executors[0]));

  std::vector<fuzz::CorpusEntry> corpus = seeder.corpus();
  Bytes virgin = seeder.virgin();
  std::map<fuzz::CrashKey, CrashSlot> crashes;
  for (const auto& [key, rec] : seeder.crash_log()) {
    CrashSlot slot;
    slot.rec = rec;
    slot.origin = {0, 0, rec.ordinal, 0};
    crashes.emplace(key, std::move(slot));
  }
  st.execs += seeder.stats().execs;
  st.crashing_execs += seeder.stats().crashing_execs;
  st.stages += seeder.stats().stages;  // seed admissions + the crashes above
  st.shards[0].execs += seeder.stats().execs;

  // ---- sync epochs ----
  for (std::uint64_t epoch = 1; st.execs < opts.max_execs; ++epoch) {
    // Build this epoch's streams sequentially: each adopts a snapshot of
    // the merged state and owns a fresh (epoch, stream)-derived seed.
    std::vector<fuzz::Fuzzer> streams;
    streams.reserve(opts.streams_per_epoch);
    for (std::size_t s = 0; s < opts.streams_per_epoch; ++s) {
      fuzz::FuzzOptions fo = base;
      fo.seed = derive_seed(opts.seed,
                            kFarmStreamBase + (epoch - 1) * opts.streams_per_epoch + s);
      streams.emplace_back(instrumented, fo);
      streams.back().set_guest_seed(guest_seed);
      streams.back().adopt(corpus, virgin);
    }

    // Run the lanes in parallel; lane p serially runs every stream
    // s == p (mod shards) on its own executor. parallel_for is the epoch
    // barrier: it gives the sequential sync below happens-before on all
    // stream and executor state.
    std::mutex err_mu;
    Status first_error = Status::success();
    batch::parallel_for(jobs, opts.shards, [&](std::size_t p) {
      for (std::size_t s = p; s < streams.size(); s += opts.shards) {
        for (std::size_t r = 0; r < opts.rounds_per_stream; ++r) {
          auto tasks = streams[s].plan_round();
          Status status = streams[s].execute_serial(tasks, executors[p]);
          if (status.ok()) status = streams[s].merge_round(tasks, executors[p]);
          if (!status.ok()) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (first_error.ok()) first_error = std::move(status);
            return;
          }
        }
      }
    });
    ZIPR_TRY(std::move(first_error));

    // Sequential merge in stream order -- the deterministic winner rule
    // "lowest (epoch, stream, ordinal)" falls out of insertion order.
    for (std::size_t s = 0; s < streams.size(); ++s) {
      fuzz::Fuzzer& fz = streams[s];
      const std::size_t shard = s % opts.shards;

      // Deterministic-stage cursors advance monotonically; keep the
      // furthest progress any stream made on the shared prefix.
      for (std::size_t i = 0; i < fz.adopted() && i < corpus.size(); ++i)
        corpus[i].det_done = std::max(corpus[i].det_done, fz.corpus()[i].det_done);

      // Novelty-bearing entries: re-prove against the LIVE virgin map
      // (an earlier stream may have claimed the same word this epoch).
      for (std::size_t i = fz.adopted(); i < fz.corpus().size(); ++i) {
        const fuzz::CorpusEntry& entry = fz.corpus()[i];
        if (fuzz::has_new_bits(entry.map, virgin)) {
          fuzz::merge_bits(entry.map, virgin);
          corpus.push_back(entry);
          ++st.imported_entries;
          ++st.stages.admit(entry.stage);
        } else {
          ++st.rejected_duplicates;
        }
      }

      // Cross-shard crash dedup by CrashKey: first sighting in (epoch,
      // stream, ordinal) order wins; later ones join the duplicate trail.
      for (const auto& [key, rec] : fz.crash_log()) {
        const CrashOrigin origin{epoch, s, rec.ordinal, shard};
        auto [it, fresh] = crashes.try_emplace(key);
        if (fresh) {
          it->second.rec = rec;
          it->second.origin = origin;
          ++st.stages.crash(rec.stage);
        } else {
          it->second.duplicates.push_back(origin);
          ++st.duplicate_crashes;
        }
      }

      st.execs += fz.stats().execs;
      st.crashing_execs += fz.stats().crashing_execs;
      st.shards[shard].execs += fz.stats().execs;
      ++st.shards[shard].streams_run;
    }
    fuzz::recompute_favored(corpus);
    st.epochs = epoch;
  }

  out.corpus = std::move(corpus);
  for (auto& [key, slot] : crashes) {
    Crash c;
    c.crash.fault = std::get<0>(key);
    c.crash.fault_pc = std::get<1>(key);
    c.crash.path = std::get<2>(key);
    c.crash.input = std::move(slot.rec.input);
    c.crash.stage = slot.rec.stage;
    c.origin = slot.origin;
    c.duplicates = std::move(slot.duplicates);
    out.crashes.push_back(std::move(c));
  }
  for (Byte b : virgin)
    if (b != 0) ++st.map_indices_hit;
  st.wall_seconds = seconds_since(t0);
  st.execs_per_sec = st.wall_seconds > 0 ? static_cast<double>(st.execs) / st.wall_seconds : 0;
  return out;
}

}  // namespace zipr::farm
