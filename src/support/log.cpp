#include "support/log.h"

#include <atomic>
#include <cstdio>

namespace zipr {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[zipr %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace zipr
