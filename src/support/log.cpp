#include "support/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace zipr {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Guards the sink pointer and serializes emission: a line is written (or a
// custom sink invoked) atomically with respect to every other logging
// thread and to set_log_sink.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_slot() {
  static LogSink sink;  // empty = default stderr writer
  return sink;
}

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = std::move(sink);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (LogSink& sink = sink_slot()) {
    sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[zipr %s] %s\n", level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace zipr
