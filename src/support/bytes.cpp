#include "support/bytes.h"

#include <cstdio>

namespace zipr {

void put_u8(Bytes& b, std::uint8_t v) { b.push_back(v); }

void put_u16(Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<Byte>(v & 0xff));
  b.push_back(static_cast<Byte>((v >> 8) & 0xff));
}

void put_u32(Bytes& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<Byte>((v >> (8 * i)) & 0xff));
}

void put_u64(Bytes& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b.push_back(static_cast<Byte>((v >> (8 * i)) & 0xff));
}

void put_i8(Bytes& b, std::int8_t v) { b.push_back(static_cast<Byte>(v)); }

void put_i32(Bytes& b, std::int32_t v) { put_u32(b, static_cast<std::uint32_t>(v)); }

void put_bytes(Bytes& b, ByteView v) { b.insert(b.end(), v.begin(), v.end()); }

std::uint16_t get_u16(ByteView b, std::size_t off) {
  return static_cast<std::uint16_t>(b[off] | (b[off + 1] << 8));
}

std::uint32_t get_u32(ByteView b, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[off + i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(ByteView b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[off + i]) << (8 * i);
  return v;
}

std::int8_t get_i8(ByteView b, std::size_t off) { return static_cast<std::int8_t>(b[off]); }

std::int32_t get_i32(ByteView b, std::size_t off) {
  return static_cast<std::int32_t>(get_u32(b, off));
}

void patch_u32(std::span<Byte> b, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b[off + i] = static_cast<Byte>((v >> (8 * i)) & 0xff);
}

void patch_i32(std::span<Byte> b, std::size_t off, std::int32_t v) {
  patch_u32(b, off, static_cast<std::uint32_t>(v));
}

void patch_i8(std::span<Byte> b, std::size_t off, std::int8_t v) {
  b[off] = static_cast<Byte>(v);
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return Error::parse("u8 past end");
  return data_[off_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return Error::parse("u16 past end");
  auto v = get_u16(data_, off_);
  off_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return Error::parse("u32 past end");
  auto v = get_u32(data_, off_);
  off_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  if (remaining() < 8) return Error::parse("u64 past end");
  auto v = get_u64(data_, off_);
  off_ += 8;
  return v;
}

Result<std::int8_t> ByteReader::i8() {
  if (remaining() < 1) return Error::parse("i8 past end");
  return static_cast<std::int8_t>(data_[off_++]);
}

Result<std::int32_t> ByteReader::i32() {
  if (remaining() < 4) return Error::parse("i32 past end");
  auto v = get_i32(data_, off_);
  off_ += 4;
  return v;
}

Result<Bytes> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) return Error::parse("bytes past end");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(off_),
            data_.begin() + static_cast<std::ptrdiff_t>(off_ + n));
  off_ += n;
  return out;
}

Status ByteReader::skip(std::size_t n) {
  if (remaining() < n) return Error::parse("skip past end");
  off_ += n;
  return Status::success();
}

std::string hex_dump(ByteView b) {
  std::string out;
  char buf[4];
  for (std::size_t i = 0; i < b.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%02x", b[i]);
    if (i) out.push_back(' ');
    out += buf;
  }
  return out;
}

std::string hex_addr(std::uint64_t a) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(a));
  return buf;
}

}  // namespace zipr
