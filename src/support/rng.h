// Deterministic pseudo-random number generation.
//
// All randomness in the library (corpus generation, pollers, diversity
// placement) flows through Rng so every test and benchmark is reproducible
// from a seed. The generator is SplitMix64: tiny, fast, and adequate for
// layout/workload diversity (not cryptographic).
#pragma once

#include <cassert>
#include <cstdint>

namespace zipr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    // Modulo bias is acceptable for workload/layout diversity purposes.
    return next() % bound;
  }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial: true with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  /// Derive an independent child generator (for per-item determinism).
  Rng fork() { return Rng(next()); }

 private:
  std::uint64_t state_;
};

/// Derive a decorrelated seed for consumer `stream` of a base seed.
///
/// Adjacent base seeds (or adjacent streams) map to statistically unrelated
/// values: the pair is mixed through two full SplitMix64 finalization
/// rounds. Used wherever one user-supplied seed fans out to several
/// independent random consumers (chained transforms, placement, per-item
/// batch seeds) so none of them draw correlated streams.
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace zipr
