// Byte-buffer utilities: little-endian codecs over raw byte vectors and a
// cursor-style reader used by the ZELF loader and the instruction decoder.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "support/status.h"

namespace zipr {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using ByteView = std::span<const Byte>;

/// Append little-endian encodings to a byte vector.
void put_u8(Bytes& b, std::uint8_t v);
void put_u16(Bytes& b, std::uint16_t v);
void put_u32(Bytes& b, std::uint32_t v);
void put_u64(Bytes& b, std::uint64_t v);
void put_i8(Bytes& b, std::int8_t v);
void put_i32(Bytes& b, std::int32_t v);
void put_bytes(Bytes& b, ByteView v);

/// Unchecked little-endian reads; caller guarantees bounds.
std::uint16_t get_u16(ByteView b, std::size_t off);
std::uint32_t get_u32(ByteView b, std::size_t off);
std::uint64_t get_u64(ByteView b, std::size_t off);
std::int8_t get_i8(ByteView b, std::size_t off);
std::int32_t get_i32(ByteView b, std::size_t off);

/// Overwrite little-endian encodings in place; caller guarantees bounds.
void patch_u32(std::span<Byte> b, std::size_t off, std::uint32_t v);
void patch_i32(std::span<Byte> b, std::size_t off, std::int32_t v);
void patch_i8(std::span<Byte> b, std::size_t off, std::int8_t v);

/// Bounds-checked sequential reader over a byte view.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}

  std::size_t offset() const { return off_; }
  std::size_t remaining() const { return data_.size() - off_; }
  bool at_end() const { return off_ == data_.size(); }

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int8_t> i8();
  Result<std::int32_t> i32();
  Result<Bytes> bytes(std::size_t n);
  Status skip(std::size_t n);

 private:
  ByteView data_;
  std::size_t off_ = 0;
};

/// Render bytes as lowercase hex pairs separated by spaces ("68 90 90").
std::string hex_dump(ByteView b);

/// Format a 64-bit address as 0x-prefixed hex.
std::string hex_addr(std::uint64_t a);

}  // namespace zipr
