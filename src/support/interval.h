// Half-open address intervals and an ordered, coalescing interval set.
//
// Used by analysis (code/data range classification) and by the reassembler's
// free-space manager (zipr::MemorySpace builds on IntervalSet).
//
// IntervalSet maintains two indexes over the same disjoint intervals:
//
//   * an address-ordered std::map (begin -> end), supporting point/range
//     queries and the coalescing insert/erase;
//   * a size-ordered std::multiset of {size, begin} keys, supporting
//     best_fit()/largest() in O(log n) without touching intervals that
//     cannot satisfy a request.
//
// A running byte total makes total_size() O(1). Allocation-style callers
// (MemorySpace, the placement strategies) must use the iterators, the
// for_each* visitors, or the fit queries -- intervals() materializes a
// fresh vector and exists only for stats, debugging, and tests.
#pragma once

#include <cstdint>
#include <iterator>
#include <map>
#include <optional>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

namespace zipr {

/// Half-open interval [begin, end) over 64-bit addresses.
struct Interval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  ///< exclusive

  std::uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  bool contains(std::uint64_t a) const { return a >= begin && a < end; }
  bool contains(const Interval& o) const { return o.begin >= begin && o.end <= end; }
  bool overlaps(const Interval& o) const { return begin < o.end && o.begin < end; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// An ordered set of disjoint intervals with automatic coalescing on insert.
///
/// insert() merges adjacent/overlapping intervals; erase() splits as needed.
/// All operations are O(log n) amortized.
class IntervalSet {
  using Map = std::map<std::uint64_t, std::uint64_t>;

 public:
  /// Copy-free forward iteration over the intervals in address order.
  class const_iterator {
   public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = Interval;
    using difference_type = std::ptrdiff_t;
    using pointer = const Interval*;
    using reference = Interval;

    const_iterator() = default;
    Interval operator*() const { return {it_->first, it_->second}; }
    const_iterator& operator++() { ++it_; return *this; }
    const_iterator operator++(int) { auto t = *this; ++it_; return t; }
    const_iterator& operator--() { --it_; return *this; }
    const_iterator operator--(int) { auto t = *this; --it_; return t; }
    friend bool operator==(const const_iterator&, const const_iterator&) = default;

   private:
    friend class IntervalSet;
    explicit const_iterator(Map::const_iterator it) : it_(it) {}
    Map::const_iterator it_;
  };

  const_iterator begin() const { return const_iterator(ivs_.begin()); }
  const_iterator end() const { return const_iterator(ivs_.end()); }

  /// Add [begin,end), merging with neighbours. Empty intervals are ignored.
  void insert(std::uint64_t begin, std::uint64_t end);
  void insert(const Interval& iv) { insert(iv.begin, iv.end); }

  /// Remove [begin,end) from the set, splitting containing intervals.
  void erase(std::uint64_t begin, std::uint64_t end);

  /// True if `a` is covered by some interval.
  bool contains(std::uint64_t a) const;

  /// True if all of [begin,end) is covered by a single interval.
  bool contains_range(std::uint64_t begin, std::uint64_t end) const;

  /// True if [begin,end) overlaps any interval.
  bool overlaps(std::uint64_t begin, std::uint64_t end) const;

  /// The interval covering `a`, if any.
  std::optional<Interval> interval_containing(std::uint64_t a) const;

  /// First interval with begin >= a, if any.
  std::optional<Interval> next_at_or_after(std::uint64_t a) const;

  /// Iterator to the last interval whose begin is <= a (the interval that
  /// covers or precedes a), or end() when none exists. O(log n).
  const_iterator at_or_before(std::uint64_t a) const;

  /// Iterator to the first interval whose begin is >= a. O(log n).
  const_iterator at_or_after(std::uint64_t a) const;

  /// Visit every interval overlapping [lo, hi) in address order without
  /// copying. O(log n + k) for k overlapping intervals. The visitor may
  /// return void, or bool where returning false stops the walk early.
  template <typename Fn>
  void for_each_in(std::uint64_t lo, std::uint64_t hi, Fn&& fn) const {
    if (lo >= hi) return;
    auto it = ivs_.lower_bound(lo);
    if (it != ivs_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > lo) it = prev;
    }
    for (; it != ivs_.end() && it->first < hi; ++it)
      if (!visit(fn, Interval{it->first, it->second})) return;
  }

  /// Visit every interval in address order without copying.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [b, e] : ivs_)
      if (!visit(fn, Interval{b, e})) return;
  }

  /// Visit every interval with size() >= min_size, smallest first (ties by
  /// begin). O(log n + k) for k fitting intervals -- intervals too small to
  /// fit are never touched. Early-exit as in for_each_in.
  template <typename Fn>
  void for_each_fitting(std::uint64_t min_size, Fn&& fn) const {
    for (auto it = by_size_.lower_bound({min_size, 0}); it != by_size_.end(); ++it)
      if (!visit(fn, Interval{it->second, it->second + it->first})) return;
  }

  /// Visit every interval with size() in [min_size, max_size_excl), smallest
  /// first. Used for "viable fragment" scans that must skip both dust and
  /// whole-fit ranges. Early-exit as in for_each_in.
  template <typename Fn>
  void for_each_sized_between(std::uint64_t min_size, std::uint64_t max_size_excl,
                              Fn&& fn) const {
    auto it = by_size_.lower_bound({min_size, 0});
    auto stop = by_size_.lower_bound({max_size_excl, 0});
    for (; it != stop; ++it)
      if (!visit(fn, Interval{it->second, it->second + it->first})) return;
  }

  /// Smallest interval with size() >= min_size (ties broken by lowest
  /// begin), if any. O(log n).
  std::optional<Interval> best_fit(std::uint64_t min_size) const;

  /// Lowest-address interval with size() >= min_size, if any.
  /// O(log n + f) where f is the number of intervals that fit; prefer
  /// best_fit() on hot paths.
  std::optional<Interval> first_fit(std::uint64_t min_size) const;

  /// The largest interval (ties broken by highest begin), if any. O(1).
  std::optional<Interval> largest() const;

  bool empty() const { return ivs_.empty(); }
  std::size_t count() const { return ivs_.size(); }

  /// Total number of addresses covered. O(1).
  std::uint64_t total_size() const { return total_; }

  /// All intervals in ascending order. Materializes a fresh vector --
  /// stats/debug/test use only; never call on an allocation path.
  std::vector<Interval> intervals() const;

 private:
  template <typename Fn>
  static bool visit(Fn&& fn, const Interval& iv) {
    if constexpr (std::is_convertible_v<decltype(fn(iv)), bool>) {
      return static_cast<bool>(fn(iv));
    } else {
      fn(iv);
      return true;
    }
  }

  // Map-mutation helpers that keep the size index and byte total in sync.
  Map::iterator map_erase(Map::iterator it);
  void map_emplace(std::uint64_t begin, std::uint64_t end);

  // Keyed by begin; values are exclusive ends. Invariant: disjoint and
  // non-adjacent (adjacent runs are coalesced).
  Map ivs_;
  // Secondary index: one {size, begin} key per interval in ivs_.
  std::set<std::pair<std::uint64_t, std::uint64_t>> by_size_;
  // Running sum of interval sizes.
  std::uint64_t total_ = 0;
};

}  // namespace zipr
