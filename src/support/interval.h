// Half-open address intervals and an ordered, coalescing interval set.
//
// Used by analysis (code/data range classification) and by the reassembler's
// free-space manager (zipr::MemorySpace builds on IntervalSet).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace zipr {

/// Half-open interval [begin, end) over 64-bit addresses.
struct Interval {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  ///< exclusive

  std::uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  bool contains(std::uint64_t a) const { return a >= begin && a < end; }
  bool contains(const Interval& o) const { return o.begin >= begin && o.end <= end; }
  bool overlaps(const Interval& o) const { return begin < o.end && o.begin < end; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// An ordered set of disjoint intervals with automatic coalescing on insert.
///
/// insert() merges adjacent/overlapping intervals; erase() splits as needed.
/// All operations are O(log n) amortized.
class IntervalSet {
 public:
  /// Add [begin,end), merging with neighbours. Empty intervals are ignored.
  void insert(std::uint64_t begin, std::uint64_t end);
  void insert(const Interval& iv) { insert(iv.begin, iv.end); }

  /// Remove [begin,end) from the set, splitting containing intervals.
  void erase(std::uint64_t begin, std::uint64_t end);

  /// True if `a` is covered by some interval.
  bool contains(std::uint64_t a) const;

  /// True if all of [begin,end) is covered by a single interval.
  bool contains_range(std::uint64_t begin, std::uint64_t end) const;

  /// True if [begin,end) overlaps any interval.
  bool overlaps(std::uint64_t begin, std::uint64_t end) const;

  /// The interval covering `a`, if any.
  std::optional<Interval> interval_containing(std::uint64_t a) const;

  /// First interval with begin >= a, if any.
  std::optional<Interval> next_at_or_after(std::uint64_t a) const;

  bool empty() const { return ivs_.empty(); }
  std::size_t count() const { return ivs_.size(); }

  /// Total number of addresses covered.
  std::uint64_t total_size() const;

  /// All intervals in ascending order.
  std::vector<Interval> intervals() const;

 private:
  // Keyed by begin; values are exclusive ends. Invariant: disjoint and
  // non-adjacent (adjacent runs are coalesced).
  std::map<std::uint64_t, std::uint64_t> ivs_;
};

}  // namespace zipr
