#include "support/interval.h"

#include <cassert>

namespace zipr {

IntervalSet::Map::iterator IntervalSet::map_erase(Map::iterator it) {
  by_size_.erase({it->second - it->first, it->first});
  total_ -= it->second - it->first;
  return ivs_.erase(it);
}

void IntervalSet::map_emplace(std::uint64_t begin, std::uint64_t end) {
  ivs_.emplace(begin, end);
  by_size_.emplace(end - begin, begin);
  total_ += end - begin;
}

void IntervalSet::insert(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;

  // Start at the first interval that could overlap or adjoin [begin,end),
  // then absorb every interval forward until a gap.
  auto it = ivs_.lower_bound(begin);
  if (it != ivs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;
  }
  while (it != ivs_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    it = map_erase(it);
  }
  map_emplace(begin, end);
}

void IntervalSet::erase(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;

  auto it = ivs_.lower_bound(begin);
  if (it != ivs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  while (it != ivs_.end() && it->first < end) {
    std::uint64_t ib = it->first, ie = it->second;
    it = map_erase(it);
    if (ib < begin) map_emplace(ib, begin);
    if (ie > end) {
      map_emplace(end, ie);
      break;
    }
  }
}

bool IntervalSet::contains(std::uint64_t a) const {
  return interval_containing(a).has_value();
}

bool IntervalSet::contains_range(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return true;
  auto iv = interval_containing(begin);
  return iv && iv->end >= end;
}

bool IntervalSet::overlaps(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return false;
  auto it = ivs_.lower_bound(begin);
  if (it != ivs_.end() && it->first < end) return true;
  if (it != ivs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) return true;
  }
  return false;
}

std::optional<Interval> IntervalSet::interval_containing(std::uint64_t a) const {
  auto it = ivs_.upper_bound(a);
  if (it == ivs_.begin()) return std::nullopt;
  --it;
  if (it->second > a) return Interval{it->first, it->second};
  return std::nullopt;
}

std::optional<Interval> IntervalSet::next_at_or_after(std::uint64_t a) const {
  auto it = ivs_.lower_bound(a);
  if (it == ivs_.end()) return std::nullopt;
  return Interval{it->first, it->second};
}

IntervalSet::const_iterator IntervalSet::at_or_before(std::uint64_t a) const {
  auto it = ivs_.upper_bound(a);
  if (it == ivs_.begin()) return end();
  return const_iterator(std::prev(it));
}

IntervalSet::const_iterator IntervalSet::at_or_after(std::uint64_t a) const {
  return const_iterator(ivs_.lower_bound(a));
}

std::optional<Interval> IntervalSet::best_fit(std::uint64_t min_size) const {
  auto it = by_size_.lower_bound({min_size, 0});
  if (it == by_size_.end()) return std::nullopt;
  return Interval{it->second, it->second + it->first};
}

std::optional<Interval> IntervalSet::first_fit(std::uint64_t min_size) const {
  std::optional<Interval> lowest;
  for (auto it = by_size_.lower_bound({min_size, 0}); it != by_size_.end(); ++it)
    if (!lowest || it->second < lowest->begin)
      lowest = Interval{it->second, it->second + it->first};
  return lowest;
}

std::optional<Interval> IntervalSet::largest() const {
  if (by_size_.empty()) return std::nullopt;
  auto it = std::prev(by_size_.end());
  return Interval{it->second, it->second + it->first};
}

std::vector<Interval> IntervalSet::intervals() const {
  std::vector<Interval> out;
  out.reserve(ivs_.size());
  for (const auto& [b, e] : ivs_) out.push_back({b, e});
  return out;
}

}  // namespace zipr
