#include "support/interval.h"

#include <cassert>

namespace zipr {

void IntervalSet::insert(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;

  // Start at the first interval that could overlap or adjoin [begin,end),
  // then absorb every interval forward until a gap.
  auto it = ivs_.lower_bound(begin);
  if (it != ivs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) it = prev;
  }
  while (it != ivs_.end() && it->first <= end) {
    begin = std::min(begin, it->first);
    end = std::max(end, it->second);
    it = ivs_.erase(it);
  }
  ivs_.emplace(begin, end);
}

void IntervalSet::erase(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;

  auto it = ivs_.lower_bound(begin);
  if (it != ivs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) it = prev;
  }
  while (it != ivs_.end() && it->first < end) {
    std::uint64_t ib = it->first, ie = it->second;
    it = ivs_.erase(it);
    if (ib < begin) ivs_.emplace(ib, begin);
    if (ie > end) {
      ivs_.emplace(end, ie);
      break;
    }
  }
}

bool IntervalSet::contains(std::uint64_t a) const {
  return interval_containing(a).has_value();
}

bool IntervalSet::contains_range(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return true;
  auto iv = interval_containing(begin);
  return iv && iv->end >= end;
}

bool IntervalSet::overlaps(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return false;
  auto it = ivs_.lower_bound(begin);
  if (it != ivs_.end() && it->first < end) return true;
  if (it != ivs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) return true;
  }
  return false;
}

std::optional<Interval> IntervalSet::interval_containing(std::uint64_t a) const {
  auto it = ivs_.upper_bound(a);
  if (it == ivs_.begin()) return std::nullopt;
  --it;
  if (it->second > a) return Interval{it->first, it->second};
  return std::nullopt;
}

std::optional<Interval> IntervalSet::next_at_or_after(std::uint64_t a) const {
  auto it = ivs_.lower_bound(a);
  if (it == ivs_.end()) return std::nullopt;
  return Interval{it->first, it->second};
}

std::uint64_t IntervalSet::total_size() const {
  std::uint64_t total = 0;
  for (const auto& [b, e] : ivs_) total += e - b;
  return total;
}

std::vector<Interval> IntervalSet::intervals() const {
  std::vector<Interval> out;
  out.reserve(ivs_.size());
  for (const auto& [b, e] : ivs_) out.push_back({b, e});
  return out;
}

}  // namespace zipr
