// Lightweight error-reporting primitives used across the library.
//
// We deliberately avoid exceptions on hot rewriting paths: analysis and
// reassembly report recoverable failures through Result<T>, reserving
// exceptions for programming errors (contract violations).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace zipr {

/// A recoverable error: a category tag plus a human-readable message.
struct Error {
  enum class Kind {
    kInvalidArgument,   ///< caller passed something malformed
    kParse,             ///< malformed input bytes / text
    kDecode,            ///< undecodable instruction bytes
    kUnsupported,       ///< valid input outside implemented scope
    kOutOfSpace,        ///< address-space or file-space exhaustion
    kNotFound,          ///< lookup miss
    kInternal,          ///< invariant violation detected at runtime
  };

  Kind kind = Kind::kInternal;
  std::string message;

  Error() = default;
  Error(Kind k, std::string msg) : kind(k), message(std::move(msg)) {}

  static Error invalid_argument(std::string m) { return {Kind::kInvalidArgument, std::move(m)}; }
  static Error parse(std::string m) { return {Kind::kParse, std::move(m)}; }
  static Error decode(std::string m) { return {Kind::kDecode, std::move(m)}; }
  static Error unsupported(std::string m) { return {Kind::kUnsupported, std::move(m)}; }
  static Error out_of_space(std::string m) { return {Kind::kOutOfSpace, std::move(m)}; }
  static Error not_found(std::string m) { return {Kind::kNotFound, std::move(m)}; }
  static Error internal(std::string m) { return {Kind::kInternal, std::move(m)}; }

  /// Short tag for log lines ("parse", "decode", ...).
  const char* kind_name() const {
    switch (kind) {
      case Kind::kInvalidArgument: return "invalid-argument";
      case Kind::kParse: return "parse";
      case Kind::kDecode: return "decode";
      case Kind::kUnsupported: return "unsupported";
      case Kind::kOutOfSpace: return "out-of-space";
      case Kind::kNotFound: return "not-found";
      case Kind::kInternal: return "internal";
    }
    return "unknown";
  }
};

/// Minimal expected-like result type (std::expected is C++23).
///
/// Either holds a value of T or an Error. Access to the wrong alternative
/// asserts in debug builds and is undefined in release, mirroring
/// std::expected's contract.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}        // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  T& value() & { assert(ok()); return std::get<T>(v_); }
  const T& value() const& { assert(ok()); return std::get<T>(v_); }
  T&& value() && { assert(ok()); return std::get<T>(std::move(v_)); }

  const Error& error() const { assert(!ok()); return std::get<Error>(v_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> v_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;                                   // success
  Status(Error error) : err_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const { assert(!ok()); return *err_; }

  static Status success() { return {}; }

 private:
  std::optional<Error> err_;
};

/// Propagate an error from an expression yielding Result/Status.
#define ZIPR_TRY(expr)                         \
  do {                                         \
    auto _zipr_try_status = (expr);            \
    if (!_zipr_try_status.ok()) return _zipr_try_status.error(); \
  } while (0)

#define ZIPR_CONCAT_INNER(a, b) a##b
#define ZIPR_CONCAT(a, b) ZIPR_CONCAT_INNER(a, b)

/// Assign from a Result, propagating the error.
#define ZIPR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.error();               \
  lhs = std::move(tmp).value()

#define ZIPR_ASSIGN_OR_RETURN(lhs, expr) \
  ZIPR_ASSIGN_OR_RETURN_IMPL(ZIPR_CONCAT(_zipr_res_, __LINE__), lhs, expr)

}  // namespace zipr
