// Leveled logging to stderr.
//
// The rewriter follows the paper's practice of emitting warnings when it
// makes conservative calls (e.g. ambiguous code/data classification) so
// failures are debuggable; those flow through LOG at kWarn level.
#pragma once

#include <sstream>
#include <string>

namespace zipr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define ZIPR_LOG(level)                                   \
  if (::zipr::log_level() > ::zipr::LogLevel::level) {    \
  } else                                                  \
    ::zipr::detail::LogMessage(::zipr::LogLevel::level)

#define ZIPR_DEBUG ZIPR_LOG(kDebug)
#define ZIPR_INFO ZIPR_LOG(kInfo)
#define ZIPR_WARN ZIPR_LOG(kWarn)
#define ZIPR_ERROR ZIPR_LOG(kError)

}  // namespace zipr
