// Leveled logging to stderr.
//
// The rewriter follows the paper's practice of emitting warnings when it
// makes conservative calls (e.g. ambiguous code/data classification) so
// failures are debuggable; those flow through LOG at kWarn level.
//
// The logger is THREAD-SAFE: the level is atomic, and sink dispatch is
// serialized under a mutex so concurrent rewrites (src/batch worker pools)
// never interleave bytes within a line or race a sink swap. Each message is
// formatted into a private buffer first; only the final emit takes the lock.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace zipr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every emitted line (already filtered by level). Invoked under
/// the logger mutex: calls are serialized, and the sink must not log.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replace the output sink (nullptr restores the default stderr writer).
/// Safe to call while other threads are logging.
void set_log_sink(LogSink sink);

namespace detail {
void log_line(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define ZIPR_LOG(level)                                   \
  if (::zipr::log_level() > ::zipr::LogLevel::level) {    \
  } else                                                  \
    ::zipr::detail::LogMessage(::zipr::LogLevel::level)

#define ZIPR_DEBUG ZIPR_LOG(kDebug)
#define ZIPR_INFO ZIPR_LOG(kInfo)
#define ZIPR_WARN ZIPR_LOG(kWarn)
#define ZIPR_ERROR ZIPR_LOG(kError)

}  // namespace zipr
