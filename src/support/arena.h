// Monotonic (bump) arena for per-rewrite scratch structures.
//
// The rewrite pipeline builds many short-lived, densely-linked structures
// (dollops, placement bookkeeping) whose lifetimes all end together when
// the rewrite finishes. A monotonic arena turns those thousands of
// individual heap operations into pointer bumps over a few retained
// chunks: reset() rewinds to empty but KEEPS the chunks, so a warm serve
// or batch worker pays malloc only on its first rewrite (and whenever a
// later input needs more capacity than any earlier one did).
//
// Not thread-safe: each worker owns its own arena (see thread_local use in
// zipr::Reassembler). Trivially-destructible payloads only -- reset() does
// not run destructors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace zipr {

class MonotonicArena {
 public:
  explicit MonotonicArena(std::size_t first_chunk = kDefaultChunk)
      : next_chunk_size_(first_chunk ? first_chunk : kDefaultChunk) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Raw aligned allocation; never returns nullptr (throws bad_alloc on
  /// chunk-allocation failure, like operator new).
  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t off = (cursor_ + (align - 1)) & ~(align - 1);
    if (chunk_ >= chunks_.size() || off + bytes > chunks_[chunk_].size) {
      next_chunk(bytes + align);
      off = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = off + bytes;
    return chunks_[chunk_].data.get() + off;
  }

  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena reset() does not run destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Construct a single object in the arena.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena reset() does not run destructors");
    return ::new (allocate(sizeof(T), alignof(T))) T(static_cast<Args&&>(args)...);
  }

  /// Rewind to empty, retaining every chunk for reuse.
  void reset() {
    chunk_ = 0;
    cursor_ = 0;
  }

  /// Total bytes owned (capacity, not live bytes).
  std::size_t retained_bytes() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

  /// Bytes bumped since the last reset(): the demand of the current cycle.
  /// Capacity-granular (whole chunks behind the bump chunk count fully),
  /// which is exactly the granularity trim() can release at.
  std::size_t used_bytes() const {
    std::size_t total = 0;
    for (std::size_t i = 0; i < chunk_ && i < chunks_.size(); ++i)
      total += chunks_[i].size;
    return total + cursor_;
  }

  /// Release whole chunks (largest first: growth is geometric, so the
  /// biggest capacity sits at the back) until at most `budget` bytes stay
  /// retained. Also rewinds to empty and restarts the growth schedule from
  /// the surviving capacity, so one oversized request does not pin its
  /// high-water mark -- or its doubled next-chunk size -- forever.
  void trim(std::size_t budget) {
    while (!chunks_.empty() && retained_bytes() > budget) chunks_.pop_back();
    next_chunk_size_ = chunks_.empty() ? kDefaultChunk : chunks_.back().size * 2;
    chunk_ = 0;
    cursor_ = 0;
  }

 private:
  static constexpr std::size_t kDefaultChunk = 64 * 1024;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void next_chunk(std::size_t min_bytes) {
    // Advance through retained chunks; later chunks are geometrically larger,
    // so skipping a too-small one wastes at most its (smaller) capacity until
    // the next reset.
    while (chunk_ + 1 < chunks_.size()) {
      ++chunk_;
      cursor_ = 0;
      if (chunks_[chunk_].size >= min_bytes) return;
    }
    std::size_t size = next_chunk_size_ < min_bytes ? min_bytes : next_chunk_size_;
    chunks_.push_back({std::make_unique<std::byte[]>(size), size});
    next_chunk_size_ = size * 2;
    chunk_ = chunks_.size() - 1;
    cursor_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;        ///< index of the chunk being bumped
  std::size_t cursor_ = 0;       ///< bump offset within chunks_[chunk_]
  std::size_t next_chunk_size_;  ///< geometric growth schedule
};

/// A push_back-only array whose storage lives in a MonotonicArena.
/// Grows geometrically by allocating a larger arena block and copying;
/// abandoned blocks are reclaimed wholesale at arena reset.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>);

 public:
  ArenaVector() = default;
  explicit ArenaVector(MonotonicArena* arena) : arena_(arena) {}

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    data_[size_++] = v;
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drop every element at index >= n (storage stays; the arena reclaims
  /// abandoned blocks wholesale at reset).
  void truncate(std::size_t n) {
    if (n < size_) size_ = n;
  }

 private:
  void grow() {
    std::size_t new_cap = cap_ ? cap_ * 2 : 8;
    T* fresh = arena_->alloc_array<T>(new_cap);
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = data_[i];
    data_ = fresh;
    cap_ = new_cap;
  }

  MonotonicArena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace zipr
