#include "cgc/filter.h"

#include <cassert>

#include "asm/assembler.h"

namespace zipr::cgc {

namespace {

bool matches_at(const FilterRule& rule, ByteView input, std::size_t at) {
  if (at + rule.pattern.size() > input.size()) return false;
  for (std::size_t i = 0; i < rule.pattern.size(); ++i) {
    Byte mask = rule.mask.empty() ? Byte{0xff} : rule.mask[i];
    if ((input[at + i] & mask) != (rule.pattern[i] & mask)) return false;
  }
  return true;
}

}  // namespace

const FilterRule* NetworkFilter::match(ByteView input) const {
  for (const auto& rule : rules_) {
    if (rule.pattern.empty()) continue;
    if (rule.anchored) {
      if (matches_at(rule, input, 0)) return &rule;
      continue;
    }
    for (std::size_t at = 0; at + rule.pattern.size() <= input.size(); ++at)
      if (matches_at(rule, input, at)) return &rule;
  }
  return nullptr;
}

vm::RunResult run_filtered(const NetworkFilter& filter, const zelf::Image& image,
                           ByteView input, std::uint64_t seed) {
  if (!filter.allows(input)) {
    vm::RunResult refused;
    refused.exited = true;
    refused.exit_status = -2;  // session dropped before reaching the CB
    return refused;
  }
  return vm::run_program(image, input, seed);
}

DisclosureCb make_disclosure_cb() {
  DisclosureCb cb;
  cb.leak_marker = "SECRET";
  auto img = assembler::assemble(R"(
    ; echo service: [len u8][payload] -> echoes len bytes of the buffer.
    ; BUG: len is never clamped to the 32-byte buffer, so len > 32 leaks
    ; whatever sits after it -- an information-disclosure vulnerability
    ; no control-flow defense can see.
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, lenbuf
      movi r3, 1
      syscall
      cmpi r0, 1
      jlt quit
      movi r0, 3
      movi r1, 0
      movi r2, buf
      movi r3, 32
      syscall
      movi r2, lenbuf
      load8 r3, [r2]
      movi r0, 2
      movi r1, 1
      movi r2, buf
      syscall             ; transmit(buf, len)  <- the unclamped echo
    quit:
      movi r0, 1
      movi r1, 0
      syscall
    .data
    buf:    .space 32, 0x2e
    secret: .ascii "SECRET\n"
    .bss
    lenbuf: .space 1
  )");
  assert(img.ok());
  cb.image = std::move(img).value();

  cb.benign_input = Bytes{5, 'h', 'e', 'l', 'l', 'o'};
  cb.exploit_input = Bytes{39};  // 32 filler + the 7 secret bytes

  // The deployed signature: drop any session whose requested length has
  // the 32-bit set (len in [32, 63] -- always out of bounds here).
  cb.signature.name = "oversized-echo-length";
  cb.signature.pattern = {0x20};
  cb.signature.mask = {0xe0};
  cb.signature.anchored = true;
  return cb;
}

}  // namespace zipr::cgc
