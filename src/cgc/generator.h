// Synthetic challenge-binary (CB) generation.
//
// DARPA's CGC evaluated rewriters on challenge binaries written from
// scratch for the competition: small network services with a command
// protocol, deliberately diverse in structure. This generator plays the CB
// authors' role: from a seed and a feature spec it emits a deterministic
// VLX service that exercises a chosen mix of rewriting hazards --
// jump-table dispatch, function-pointer dispatch, dense (sled-forcing)
// indirect targets, data embedded in text, recursion, deep call chains,
// large straight-line code (big dollops), and address-taken functions only
// reachable through data.
//
// Protocol of every generated service: repeat { read 1 command byte; 0xFF
// or EOF terminates; otherwise index = byte % handler_count selects a
// handler, which reads its fixed-size payload, computes, and transmits an
// 8-byte result }. The matching poller (poller.h) builds well-formed
// inputs from the returned CbProgram metadata.
#pragma once

#include <string>
#include <vector>

#include "zelf/image.h"

namespace zipr::cgc {

enum class DispatchMode {
  kJmpTable,    ///< jmpt through an rodata table of stubs
  kFptrTable,   ///< load function pointer from rodata, callr
  kDenseTable,  ///< jmpt targets 1 byte apart: forces sleds
};

struct CbSpec {
  std::string name;
  std::uint64_t seed = 1;

  int handlers = 4;           ///< command handlers (>= 1)
  DispatchMode dispatch = DispatchMode::kJmpTable;

  int filler_funcs = 4;       ///< chained helper functions
  int filler_ops = 10;        ///< ALU ops per helper
  int straightline = 0;       ///< extra straight-line insns per handler (big dollops)
  int scratch_pages = 1;      ///< bss working-set pages handlers touch
  bool data_in_text = false;  ///< embed blobs + a key read via loadpc
  bool recursion = false;     ///< one handler recurses on its payload
  bool unused_fptrs = false;  ///< data words point at never-called functions
  int payload_max = 12;       ///< handler payload lengths drawn from [0, max]

  /// > 0 turns handler 0 into an interpreter: a 2-byte payload selects one
  /// of this many 15-byte case blocks reached through a COMPUTED jump
  /// (case addresses appear in an rodata registry, so they are all pinned,
  /// but dispatch never touches it at runtime). The pinned case region
  /// fragments the address space into slivers too small for any dollop,
  /// so the rewritten case bodies all land in the overflow area -- the
  /// paper's pathological memory-overhead mechanism (Fig. 6). Must be a
  /// power of two.
  int interpreter_cases = 0;
};

/// A generated CB: its image plus the protocol metadata pollers need.
struct CbProgram {
  CbSpec spec;
  zelf::Image image;                 ///< symbol-free (as CBs shipped)
  std::vector<int> payload_len;      ///< per handler index
};

/// Generate one CB (deterministic in spec.seed).
Result<CbProgram> generate_cb(const CbSpec& spec);

/// The evaluation corpus: 62 CB specs mirroring the CFE set's diversity,
/// including one deliberately pathological CB (many pins + large dollops,
/// the >50 % memory outlier of the paper's Fig. 6).
std::vector<CbSpec> cfe_corpus();

/// Source text of the CB (exposed for debugging and the asm examples).
Result<std::string> generate_cb_source(const CbSpec& spec, std::vector<int>* payload_len);

}  // namespace zipr::cgc
