// Pollers: deterministic functionality checks for challenge binaries.
//
// In the CGC, DARPA required CB authors to ship pollers exercising all of
// a CB's functionality; the scoring infrastructure replayed them against
// each replacement CB to measure functionality and performance. Here a
// poller is a seeded generator of well-formed (and some deliberately
// truncated) protocol inputs for a generated CB, plus the golden-run
// comparison: the original binary's output is the oracle.
#pragma once

#include "cgc/generator.h"
#include "vm/machine.h"

namespace zipr::cgc {

struct Poll {
  Bytes input;
  std::uint64_t vm_seed = 0;  ///< seed for the random() syscall
};

/// Build `count` polls for a CB (deterministic in `seed`).
std::vector<Poll> make_polls(const CbProgram& cb, int count, std::uint64_t seed);

/// Outcome of replaying one poll against original and rewritten binaries.
struct PollComparison {
  bool functional = false;  ///< identical exit + output
  vm::RunResult original;
  vm::RunResult rewritten;
};

PollComparison run_poll(const zelf::Image& original, const zelf::Image& rewritten,
                        const Poll& poll);

}  // namespace zipr::cgc
