// Robustness workloads (paper Sec. IV-A).
//
// The paper demonstrates robustness by Null-rewriting three large real
// code bases -- libc (1.6 MB, 22 % handwritten assembly), OpenJDK's libjvm
// (12 MB, ~5x libc) and Apache (624 KB) -- and re-running their unit-test
// suites. These generators build libraries with the same *relative* size
// ratios and the same hazard profile (address-taken entry points, shared
// tails, data interleaved with code, deep call chains), each with a
// unit-test runner: input selects a function and an argument, output is
// the function's result. The suite passes iff the rewritten library
// produces byte-identical results for every test.
#pragma once

#include "cgc/poller.h"
#include "zelf/image.h"

namespace zipr::cgc {

struct WorkloadSpec {
  std::string name;
  std::uint64_t seed = 1;
  int functions = 200;       ///< exported, address-taken entry points
  int ops_per_function = 16; ///< body size knob
  bool irregular = false;    ///< handwritten-assembly-style hazards:
                             ///< data blobs between functions, shared tails
  int tests_per_function = 1;
};

struct Workload {
  WorkloadSpec spec;
  zelf::Image image;              ///< symbol-free
  std::vector<Poll> unit_tests;   ///< the "unit-test suite"
};

/// Build a library workload (deterministic in spec.seed).
Result<Workload> make_workload(const WorkloadSpec& spec);

/// The paper's three subjects, scaled ~16x down but ratio-preserving:
/// libc-like (irregular, mid-size), libjvm-like (~5x libc), apache-like
/// (~0.4x libc).
WorkloadSpec libc_like_spec();
WorkloadSpec libjvm_like_spec();
WorkloadSpec apache_like_spec();

/// Run the unit-test suite against original and rewritten images.
struct SuiteResult {
  int total = 0;
  int passed = 0;
  bool all_passed() const { return passed == total; }
};
SuiteResult run_suite(const Workload& workload, const zelf::Image& rewritten);

/// A main executable plus shared libraries -- the paper's Apache shape:
/// the test runner dispatches into the libraries through import slots, so
/// every image can be rewritten independently.
struct SharedWorkload {
  WorkloadSpec spec;
  zelf::Image main_image;
  std::vector<zelf::Image> libraries;
  std::vector<Poll> unit_tests;  ///< covers every function of every library
};

/// Split `spec.functions` across `libraries` shared objects behind one
/// test-runner executable.
Result<SharedWorkload> make_shared_workload(const WorkloadSpec& spec, int libraries);

/// Run the suite on the ORIGINAL set vs a replacement set ({main, libs...},
/// same order). Any or all images may have been rewritten.
Result<SuiteResult> run_shared_suite(const SharedWorkload& workload,
                                     std::vector<zelf::Image> replacement);

}  // namespace zipr::cgc
