#include "cgc/metrics.h"

#include "batch/worker_pool.h"
#include "zelf/io.h"

namespace zipr::cgc {

const char* const kHistogramLabels[kHistogramBins] = {
    "<=0%", "0-5%", "5-10%", "10-20%", "20-50%", ">50%",
};

int histogram_bin(double overhead) {
  if (overhead <= 0.0) return 0;
  if (overhead <= 0.05) return 1;
  if (overhead <= 0.10) return 2;
  if (overhead <= 0.20) return 3;
  if (overhead <= 0.50) return 4;
  return 5;
}

Result<CbMetrics> evaluate_cb(const CbProgram& cb, const EvalOptions& opts) {
  CbMetrics m;
  m.name = cb.spec.name;

  ZIPR_ASSIGN_OR_RETURN(RewriteResult rewritten, rewrite(cb.image, opts.rewrite));
  m.rewrite_stats = rewritten.reassembly;
  m.instrumentation = rewritten.instrumentation;

  m.original_file = zelf::write_image(cb.image).size();
  m.rewritten_file = zelf::write_image(rewritten.image).size();
  m.filesize_overhead =
      static_cast<double>(m.rewritten_file) / static_cast<double>(m.original_file) - 1.0;

  auto polls = make_polls(cb, opts.polls, opts.poll_seed);
  m.polls = polls.size();
  m.functional = true;
  std::uint64_t orig_cycles = 0, new_cycles = 0;
  double worst_mem = 0.0;
  for (const auto& poll : polls) {
    PollComparison cmp = run_poll(cb.image, rewritten.image, poll);
    if (!cmp.functional) m.functional = false;
    orig_cycles += cmp.original.stats.cycles;
    new_cycles += cmp.rewritten.stats.cycles;
    if (cmp.original.stats.max_rss_pages > 0) {
      double mem = static_cast<double>(cmp.rewritten.stats.max_rss_pages) /
                       static_cast<double>(cmp.original.stats.max_rss_pages) -
                   1.0;
      worst_mem = std::max(worst_mem, mem);
    }
  }
  m.exec_overhead =
      orig_cycles == 0 ? 0.0
                       : static_cast<double>(new_cycles) / static_cast<double>(orig_cycles) - 1.0;
  m.mem_overhead = worst_mem;
  return m;
}

Result<std::vector<CbMetrics>> evaluate_corpus(const std::vector<CbSpec>& corpus,
                                               const EvalOptions& opts) {
  // Per-index slots: workers never share results, and corpus order is
  // preserved by construction whatever the completion order.
  std::vector<std::optional<Result<CbMetrics>>> slots(corpus.size());
  batch::parallel_for(opts.jobs, corpus.size(), [&](std::size_t i) {
    Result<CbProgram> cb = generate_cb(corpus[i]);
    if (!cb.ok()) {
      slots[i] = cb.error();
      return;
    }
    slots[i] = evaluate_cb(*cb, opts);
  });

  std::vector<CbMetrics> out;
  out.reserve(corpus.size());
  for (auto& slot : slots) {
    if (!slot) return Error::internal("corpus evaluation slot never ran");
    if (!slot->ok()) return slot->error();  // first failure in corpus order
    out.push_back(std::move(*std::move(*slot)));
  }
  return out;
}

double mean_overhead(const std::vector<CbMetrics>& ms, double CbMetrics::*field) {
  if (ms.empty()) return 0.0;
  double sum = 0;
  for (const auto& m : ms) sum += m.*field;
  return sum / static_cast<double>(ms.size());
}

}  // namespace zipr::cgc
