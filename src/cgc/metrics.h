// The CGC scoring metrics (paper Sec. IV-B): per-CB file-size, execution
// and memory overhead of a rewritten binary relative to the original,
// under the pollers' workload, plus histogram helpers matching the bins
// of the paper's Figs. 4-6.
#pragma once

#include "cgc/generator.h"
#include "cgc/poller.h"
#include "zipr/zipr.h"

namespace zipr::cgc {

/// One CB's evaluation under one rewrite configuration.
struct CbMetrics {
  std::string name;
  bool functional = false;      ///< every poll matched the original
  double filesize_overhead = 0; ///< (rewritten - original) / original
  double exec_overhead = 0;     ///< cycle-count ratio - 1 across polls
  double mem_overhead = 0;      ///< MaxRSS page ratio - 1 (max over polls)
  std::size_t polls = 0;

  std::size_t original_file = 0;
  std::size_t rewritten_file = 0;
  rewriter::RewriteStats rewrite_stats;
  transform::InstrumentationStats instrumentation;
};

struct EvalOptions {
  RewriteOptions rewrite;
  int polls = 12;
  std::uint64_t poll_seed = 0xD0D0;
  /// Worker threads for corpus evaluation: 1 = serial (the reference
  /// path), <= 0 = hardware concurrency. Results are deterministic and
  /// identical to the serial path regardless of the worker count (each CB
  /// is generated, rewritten and polled independently; see src/batch).
  int jobs = 1;
};

/// Rewrite `cb` and measure it against the original under the pollers.
Result<CbMetrics> evaluate_cb(const CbProgram& cb, const EvalOptions& opts);

/// Evaluate a whole corpus across opts.jobs workers. All CBs are evaluated
/// even when some fail; the FIRST failure (in corpus order, independent of
/// scheduling) is then reported, preserving the serial contract.
Result<std::vector<CbMetrics>> evaluate_corpus(const std::vector<CbSpec>& corpus,
                                               const EvalOptions& opts);

/// Histogram bins used by the paper's figures, in percent overhead:
/// (-inf,0], (0,5], (5,10], (10,20], (20,50], (50,inf).
inline constexpr int kHistogramBins = 6;
extern const char* const kHistogramLabels[kHistogramBins];

/// Bin index for an overhead fraction (e.g. 0.031 -> "(0,5]").
int histogram_bin(double overhead);

struct Histogram {
  int counts[kHistogramBins] = {};
  void add(double overhead) { ++counts[histogram_bin(overhead)]; }
};

/// Mean of a metric across CBs.
double mean_overhead(const std::vector<CbMetrics>& ms, double CbMetrics::*field);

}  // namespace zipr::cgc
