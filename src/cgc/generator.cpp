#include "cgc/generator.h"

#include <cassert>

#include "asm/assembler.h"
#include "support/rng.h"

namespace zipr::cgc {

namespace {

/// Builds the assembly text of one CB. All randomness flows from the
/// spec seed, so generation is reproducible.
class CbBuilder {
 public:
  explicit CbBuilder(const CbSpec& spec) : spec_(spec), rng_(spec.seed) {}

  std::string build(std::vector<int>* payload_len) {
    draw_payload_lengths();
    emit_header();
    emit_main();
    if (spec_.dispatch != DispatchMode::kDenseTable) {
      for (int i = 0; i < spec_.handlers; ++i) emit_handler(i);
    }
    emit_transmit_result();
    for (int j = 0; j < spec_.filler_funcs; ++j) emit_filler(j);
    if (spec_.recursion) emit_recur();
    if (spec_.unused_fptrs) emit_unused_functions();
    if (spec_.data_in_text) emit_text_blobs();
    emit_data_sections();
    *payload_len = payload_len_;
    return std::move(out_);
  }

 private:
  // ---- low-level emission ----
  void line(const std::string& s) { out_ += s + "\n"; }
  void label(const std::string& s) { out_ += s + ":\n"; }
  void insn(const std::string& s) { out_ += "  " + s + "\n"; }
  static std::string num(std::uint64_t v) { return std::to_string(v); }

  void draw_payload_lengths() {
    payload_len_.resize(static_cast<std::size_t>(spec_.handlers), 0);
    if (spec_.dispatch == DispatchMode::kDenseTable) return;  // no payloads
    for (auto& l : payload_len_)
      l = static_cast<int>(rng_.below(static_cast<std::uint64_t>(spec_.payload_max) + 1));
    if (spec_.interpreter_cases > 0) payload_len_[0] = 2;  // the case selector
  }

  void emit_header() {
    line("; generated challenge binary: " + spec_.name);
    line(".entry main");
    line(".text");
  }

  // Seeded ALU mutation of the accumulator r4 using r6 as a constant.
  void emit_acc_ops(int count) {
    for (int i = 0; i < count; ++i) {
      switch (rng_.below(7)) {
        case 0: insn("addi r4, " + num(rng_.below(1 << 20))); break;
        case 1: insn("xori r4, " + num(rng_.below(1 << 20))); break;
        case 2: insn("subi r4, " + num(rng_.below(1 << 16))); break;
        case 3:
          insn("movi r6, " + num(3 + rng_.below(97)));
          insn("mul r4, r6");
          break;
        case 4: insn("shli r4, " + num(1 + rng_.below(3))); break;
        case 5: insn("shri r4, " + num(1 + rng_.below(3))); break;
        case 6:
          insn("movi r6, " + num(1 + rng_.below(1u << 30)));
          insn("add r4, r6");
          break;
      }
    }
  }

  // Seeded scratch-memory traffic (drives the MaxRSS metric).
  void emit_memory_traffic(int rounds) {
    const std::uint64_t span = static_cast<std::uint64_t>(spec_.scratch_pages) * 4096 - 8;
    for (int i = 0; i < rounds; ++i) {
      std::uint64_t off1 = rng_.below(span) & ~7ull;
      std::uint64_t off2 = rng_.below(span) & ~7ull;
      insn("movi r2, scratch");
      insn("store [r2+" + num(off1) + "], r4");
      insn("load r5, [r2+" + num(off2) + "]");
      insn("add r4, r5");
    }
  }

  void emit_main() {
    line(".func main");
    label("svc_loop");
    insn("movi r0, 3");
    insn("movi r1, 0");
    insn("movi r2, cmdbuf");
    insn("movi r3, 1");
    insn("syscall");
    insn("cmpi r0, 1");
    insn("jlt svc_exit");
    insn("movi r2, cmdbuf");
    insn("load8 r1, [r2]");
    insn("cmpi r1, 0xff");
    insn("jeq svc_exit");
    insn("movi r2, " + num(static_cast<std::uint64_t>(spec_.handlers)));
    insn("mod r1, r2");

    switch (spec_.dispatch) {
      case DispatchMode::kJmpTable: {
        insn("jmpt r1, dtable");
        for (int i = 0; i < spec_.handlers; ++i) {
          label("stub_" + num(i));
          insn("call handler_" + num(i));
          insn("jmp svc_loop");
        }
        break;
      }
      case DispatchMode::kFptrTable: {
        insn("shli r1, 3");
        insn("movi r2, ftable");
        insn("add r2, r1");
        insn("load r6, [r2]");
        insn("callr r6");
        insn("jmp svc_loop");
        break;
      }
      case DispatchMode::kDenseTable: {
        // Adjacent 1-byte targets: landing depth is observable through the
        // number of pushes, so a mis-routed sled changes the output.
        insn("mov r6, sp");
        insn("jmpt r1, dtable");
        for (int i = 0; i < spec_.handlers; ++i) {
          label("dense_" + num(i));
          insn("push r1");  // 1 byte: consecutive entry points
        }
        insn("mov r5, r6");
        insn("sub r5, sp");
        insn("shri r5, 3");  // pushes executed = handlers - index
        insn("mov sp, r6");
        insn("mov r4, r5");
        insn("addi r4, " + num(rng_.below(1u << 24)));
        if (spec_.filler_funcs > 0) insn("call filler_0");
        insn("call transmit_result");
        insn("jmp svc_loop");
        break;
      }
    }

    label("svc_exit");
    insn("movi r0, 1");
    insn("movi r1, 0");
    insn("syscall");
    insn("hlt");
  }

  // The interpreter handler: a 2-byte selector picks one of N fixed-size
  // case blocks reached via computed jump (base + idx * 15). Every case is
  // address-taken through the rodata registry, hence pinned; the 15-byte
  // spacing leaves 10-byte fragments after each 5-byte reference --
  // unusable by any dollop -- so all case code relocates to overflow.
  void emit_interpreter_handler() {
    const int cases = spec_.interpreter_cases;
    line(".func handler_0");
    insn("subi sp, 32");
    insn("movi r0, 3");
    insn("movi r1, 0");
    insn("movi r2, pbuf");
    insn("movi r3, 2");
    insn("syscall");
    insn("movi r2, pbuf");
    insn("load8 r5, [r2]");
    insn("load8 r6, [r2+1]");
    insn("shli r6, 8");
    insn("or r5, r6");
    insn("mov r4, r5");
    insn("movi r3, 34");  // chain length: dispatches per command
    insn("jmp interp_next");
    // Dispatch loop: each iteration derives the next case index from the
    // accumulator and re-enters the case region through a COMPUTED jump to
    // the case's ORIGINAL (pinned) address. One command thus touches ~33
    // case pages both at their pinned addresses and wherever the bodies
    // were relocated -- the working set the memory metric sees.
    label("interp_next");
    insn("subi r3, 1");
    insn("cmpi r3, 0");
    insn("jle interp_done");
    insn("mov r5, r4");
    insn("andi r5, " + num(static_cast<std::uint64_t>(cases - 1)));
    insn("movi r6, 15");  // case block size
    insn("mul r5, r6");
    insn("addi r5, case_0");
    insn("jmpr r5");
    // The case region: fixed 15-byte blocks (movi64 + jmp), each pinned
    // via the registry. After the 5-byte reference at each pin only 10
    // free bytes remain -- less than any dollop's minimum footprint -- so
    // every relocated body spills to the overflow area.
    for (int k = 0; k < cases; ++k) {
      label("case_" + num(k));
      insn("movi64 r4, " + num(rng_.next()));  // 10 bytes
      insn("jmp interp_next");                 // 5 bytes -> 15-byte blocks
    }
    label("interp_done");
    insn("call transmit_result");
    insn("addi sp, 32");
    insn("ret");
  }

  void emit_handler(int i) {
    if (spec_.interpreter_cases > 0 && i == 0) {
      emit_interpreter_handler();
      return;
    }
    const std::string id = num(i);
    const int len = payload_len_[static_cast<std::size_t>(i)];
    line(".func handler_" + id);
    insn("subi sp, 32");
    if (len > 0) {
      insn("movi r0, 3");
      insn("movi r1, 0");
      insn("movi r2, pbuf");
      insn("movi r3, " + num(len));
      insn("syscall");
    }
    insn("movi r4, " + num(rng_.below(1u << 31)));  // accumulator seed

    if (len > 0) {
      insn("movi r2, pbuf");
      insn("movi r3, 0");
      label("hloop_" + id);
      insn("cmpi r3, " + num(len));
      insn("jge hdone_" + id);
      insn("load8 r5, [r2]");
      // 1-3 seeded payload-byte mixes.
      int mixes = 1 + static_cast<int>(rng_.below(3));
      for (int m = 0; m < mixes; ++m) {
        switch (rng_.below(4)) {
          case 0: insn("add r4, r5"); break;
          case 1: insn("xor r4, r5"); break;
          case 2: insn("sub r4, r5"); break;
          case 3:
            insn("shli r4, 1");
            insn("add r4, r5");
            break;
        }
      }
      insn("addi r2, 1");
      insn("addi r3, 1");
      insn("jmp hloop_" + id);
      label("hdone_" + id);
    }

    emit_acc_ops(2 + static_cast<int>(rng_.below(4)));
    if (spec_.straightline > 0) emit_acc_ops(spec_.straightline);
    emit_memory_traffic(1 + static_cast<int>(rng_.below(3)));

    if (spec_.filler_funcs > 0) {
      // Interpreter CBs keep their filler bulk cold (reachable, but the
      // pollers' working set stays in the case region).
      std::uint64_t pick = spec_.interpreter_cases > 0
                               ? 0
                               : rng_.below(static_cast<std::uint64_t>(spec_.filler_funcs));
      insn("call filler_" + num(pick));
    }

    if (spec_.data_in_text && i == 0) {
      insn("loadpc r5, key_0");
      insn("xor r4, r5");
    }
    if (spec_.recursion && i == std::min(1, spec_.handlers - 1)) {
      insn("mov r1, r4");
      insn("andi r1, 15");
      insn("call recur");
    }

    insn("call transmit_result");
    insn("addi sp, 32");
    insn("ret");
  }

  void emit_transmit_result() {
    line(".func transmit_result");
    insn("movi r2, outbuf");
    insn("store [r2], r4");
    insn("movi r0, 2");
    insn("movi r1, 1");
    insn("movi r3, 8");
    insn("syscall");
    insn("ret");
  }

  void emit_filler(int j) {
    line(".func filler_" + num(j));
    emit_acc_ops(spec_.filler_ops);
    // Seeded call chain deeper into the filler stack.
    if (j + 1 < spec_.filler_funcs && rng_.chance(1, 2))
      insn("call filler_" + num(j + 1));
    insn("ret");
  }

  void emit_recur() {
    line(".func recur");
    label("recur_top");
    insn("cmpi r1, 0");
    insn("jle recur_done");
    insn("addi r4, 7");
    insn("subi r1, 1");
    insn("call recur");
    label("recur_done");
    insn("ret");
  }

  void emit_unused_functions() {
    for (int k = 0; k < 3; ++k) {
      line(".func unused_" + num(k));
      emit_acc_ops(3 + static_cast<int>(rng_.below(5)));
      insn("ret");
    }
  }

  void emit_text_blobs() {
    for (int k = 0; k < 2; ++k) {
      const std::string id = num(k);
      insn("jmp after_blob_" + id);
      label("blob_" + id);
      // Random bytes with a guaranteed undecodable anchor (0x00).
      std::string bytes = ".byte 0x00";
      int n = 8 + static_cast<int>(rng_.below(17));
      for (int b = 0; b < n; ++b) bytes += ", " + num(rng_.below(256));
      insn(bytes);
      label("key_" + id);
      insn(".quad " + num(rng_.next()));
      label("after_blob_" + id);
    }
  }

  void emit_data_sections() {
    line(".rodata");
    if (spec_.dispatch == DispatchMode::kJmpTable) {
      label("dtable");
      std::string slots = ".quad stub_0";
      for (int i = 1; i < spec_.handlers; ++i) slots += ", stub_" + num(i);
      insn(slots);
      insn(".quad 0");
    } else if (spec_.dispatch == DispatchMode::kDenseTable) {
      label("dtable");
      std::string slots = ".quad dense_0";
      for (int i = 1; i < spec_.handlers; ++i) slots += ", dense_" + num(i);
      insn(slots);
      insn(".quad 0");
    } else {
      label("ftable");
      std::string slots = ".quad handler_0";
      for (int i = 1; i < spec_.handlers; ++i) slots += ", handler_" + num(i);
      insn(slots);
    }

    if (spec_.interpreter_cases > 0) {
      // The static address registry: the only place case addresses appear.
      // The analysis' data scan pins every case; the running program never
      // reads these pages.
      label("case_registry");
      for (int k = 0; k < spec_.interpreter_cases; k += 8) {
        std::string slots = ".quad case_" + num(k);
        for (int j = k + 1; j < std::min(k + 8, spec_.interpreter_cases); ++j)
          slots += ", case_" + num(j);
        insn(slots);
      }
    }

    if (spec_.unused_fptrs) {
      line(".data");
      label("fregistry");
      insn(".quad unused_0, unused_1, unused_2");
    }

    line(".bss");
    label("cmdbuf");
    insn(".space 8");
    label("pbuf");
    insn(".space 32");
    label("outbuf");
    insn(".space 8");
    label("scratch");
    insn(".space " + num(static_cast<std::uint64_t>(spec_.scratch_pages) * 4096));
  }

  const CbSpec& spec_;
  Rng rng_;
  std::string out_;
  std::vector<int> payload_len_;
};

}  // namespace

Result<std::string> generate_cb_source(const CbSpec& spec, std::vector<int>* payload_len) {
  if (spec.handlers < 1) return Error::invalid_argument("CB needs at least one handler");
  if (spec.dispatch == DispatchMode::kDenseTable && spec.handlers > 5)
    return Error::invalid_argument("dense dispatch supports at most 5 adjacent targets");
  if (spec.interpreter_cases > 0) {
    if (spec.dispatch == DispatchMode::kDenseTable)
      return Error::invalid_argument("interpreter handler requires a non-dense dispatch");
    if ((spec.interpreter_cases & (spec.interpreter_cases - 1)) != 0)
      return Error::invalid_argument("interpreter_cases must be a power of two");
  }
  CbBuilder builder(spec);
  return builder.build(payload_len);
}

Result<CbProgram> generate_cb(const CbSpec& spec) {
  CbProgram prog;
  prog.spec = spec;
  ZIPR_ASSIGN_OR_RETURN(std::string src, generate_cb_source(spec, &prog.payload_len));
  assembler::Options opts;
  opts.emit_symbols = false;  // CBs ship without metadata
  ZIPR_ASSIGN_OR_RETURN(prog.image, assembler::assemble(src, opts));
  return prog;
}

std::vector<CbSpec> cfe_corpus() {
  std::vector<CbSpec> corpus;
  Rng rng(0xCFE2016);

  auto add = [&](CbSpec spec) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "cb_%03zu", corpus.size() + 1);
    spec.name = buf;
    spec.seed = rng.next();
    corpus.push_back(spec);
  };

  // 30 jump-table services of varied size.
  for (int i = 0; i < 30; ++i) {
    CbSpec s;
    s.dispatch = DispatchMode::kJmpTable;
    s.handlers = 2 + static_cast<int>(rng.below(7));
    s.filler_funcs = 8 + static_cast<int>(rng.below(13));
    s.filler_ops = 16 + static_cast<int>(rng.below(19));
    s.scratch_pages = 1 + static_cast<int>(rng.below(5));
    s.payload_max = static_cast<int>(rng.below(17));
    s.straightline = (i % 5 == 0) ? 40 + static_cast<int>(rng.below(60)) : 0;
    s.data_in_text = i % 4 == 0;
    s.recursion = i % 3 == 0;
    s.unused_fptrs = i % 6 == 0;
    add(s);
  }

  // 20 function-pointer services.
  for (int i = 0; i < 20; ++i) {
    CbSpec s;
    s.dispatch = DispatchMode::kFptrTable;
    s.handlers = 2 + static_cast<int>(rng.below(7));
    s.filler_funcs = 8 + static_cast<int>(rng.below(11));
    s.filler_ops = 16 + static_cast<int>(rng.below(25));
    s.scratch_pages = 1 + static_cast<int>(rng.below(7));
    s.payload_max = static_cast<int>(rng.below(13));
    s.straightline = (i % 6 == 0) ? 60 + static_cast<int>(rng.below(80)) : 0;
    s.data_in_text = i % 5 == 0;
    s.recursion = i % 4 == 0;
    s.unused_fptrs = i % 5 == 1;
    add(s);
  }

  // 3 dense-dispatch services (sled-forcing, sizes 2-3 as in the paper).
  for (int i = 0; i < 3; ++i) {
    CbSpec s;
    s.dispatch = DispatchMode::kDenseTable;
    s.handlers = 2 + (i % 2);
    s.filler_funcs = 10 + static_cast<int>(rng.below(5));
    s.filler_ops = 24;
    s.scratch_pages = 1;
    add(s);
  }

  // 8 larger services (bigger code, deeper call chains).
  for (int i = 0; i < 8; ++i) {
    CbSpec s;
    s.dispatch = i % 2 == 0 ? DispatchMode::kJmpTable : DispatchMode::kFptrTable;
    s.handlers = 6 + static_cast<int>(rng.below(3));
    s.filler_funcs = 12 + static_cast<int>(rng.below(9));
    s.filler_ops = 20 + static_cast<int>(rng.below(21));
    s.straightline = 80 + static_cast<int>(rng.below(120));
    s.scratch_pages = 2 + static_cast<int>(rng.below(7));
    s.payload_max = 16;
    s.data_in_text = i % 2 == 1;
    s.recursion = i % 3 == 0;
    add(s);
  }

  // The pathological CB (paper Fig. 6's >50 % memory outlier): thousands
  // of pinned interpreter cases fragment the address space into slivers no
  // dollop fits, so the case bodies -- most of the program's code -- end
  // up in the overflow area; every executed case then touches a pin page
  // AND an overflow page. (Pin-site coalescing defuses this by emitting
  // each body at its pinned address; fig6 demonstrates the mechanism with
  // coalescing disabled.)
  // The hot interpreter region spills while the (large) cold filler code
  // re-packs into its own freed space, so file-size overhead stays small
  // even as the hot working set doubles.
  {
    CbSpec s;
    s.dispatch = DispatchMode::kJmpTable;
    s.handlers = 4;
    s.filler_funcs = 420;
    s.filler_ops = 50;
    s.interpreter_cases = 2048;
    s.scratch_pages = 1;
    s.payload_max = 8;
    add(s);
  }

  assert(corpus.size() == 62);
  return corpus;
}

}  // namespace zipr::cgc
