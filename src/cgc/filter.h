// Network filters: the second half of Xandra's CGC strategy.
//
// The paper (Sec. IV-B): exploits were split into control-flow hijacking
// and information-disclosure attacks; "[o]ur team's strategy was to handle
// the former by rewriting CBs ... and the latter by deploying network
// filters." A filter sits in front of a CB and drops sessions whose input
// matches an attack signature, without touching the binary at all.
#pragma once

#include "support/bytes.h"
#include "vm/machine.h"

namespace zipr::cgc {

/// One signature: a byte pattern with optional per-bit masking.
struct FilterRule {
  std::string name;
  Bytes pattern;
  Bytes mask;  ///< same length; bit set = must match. Empty = exact match.
  bool anchored = false;  ///< match only at offset 0 (session header rules)
};

class NetworkFilter {
 public:
  void add_rule(FilterRule rule) { rules_.push_back(std::move(rule)); }
  std::size_t rule_count() const { return rules_.size(); }

  /// Name of the first rule matching anywhere in `input`, or nullptr.
  const FilterRule* match(ByteView input) const;

  /// True if the input may pass to the service.
  bool allows(ByteView input) const { return match(input) == nullptr; }

 private:
  std::vector<FilterRule> rules_;
};

/// Run `image` on `input` behind `filter`. A dropped session produces no
/// output and exits with status -2 (connection refused), which still
/// counts as "no fault" for availability scoring.
vm::RunResult run_filtered(const NetworkFilter& filter, const zelf::Image& image,
                           ByteView input, std::uint64_t seed = 0);

/// A CB with an information-disclosure bug (an over-long echo leaks a
/// secret adjacent to the request buffer), a benign input, a disclosure
/// exploit, and the filter signature that stops it.
struct DisclosureCb {
  zelf::Image image;
  Bytes benign_input;
  Bytes exploit_input;
  std::string leak_marker;
  FilterRule signature;
};

DisclosureCb make_disclosure_cb();

}  // namespace zipr::cgc
