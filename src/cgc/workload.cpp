#include "cgc/workload.h"

#include "asm/assembler.h"
#include "support/rng.h"
#include "vm/link.h"
#include "vm/machine.h"

namespace zipr::cgc {

namespace {

/// Emits the library's assembly text.
class WorkloadBuilder {
 public:
  explicit WorkloadBuilder(const WorkloadSpec& spec) : spec_(spec), rng_(spec.seed) {}

  std::string build() {
    line("; generated library workload: " + spec_.name);
    line(".entry main");
    line(".text");
    emit_runner();
    for (int i = 0; i < spec_.functions; ++i) emit_function(i);
    if (spec_.irregular) emit_shared_tail();
    emit_data();
    return std::move(out_);
  }

 private:
  void line(const std::string& s) { out_ += s + "\n"; }
  void label(const std::string& s) { out_ += s + ":\n"; }
  void insn(const std::string& s) { out_ += "  " + s + "\n"; }
  static std::string num(std::uint64_t v) { return std::to_string(v); }

  // Test-runner protocol: [u16 index][u64 arg] per test, 0xFFFF ends.
  void emit_runner() {
    line(".func main");
    label("runner_loop");
    insn("movi r0, 3");
    insn("movi r1, 0");
    insn("movi r2, idxbuf");
    insn("movi r3, 2");
    insn("syscall");
    insn("cmpi r0, 2");
    insn("jlt runner_exit");
    insn("movi r2, idxbuf");
    insn("load8 r1, [r2]");
    insn("load8 r5, [r2+1]");
    insn("shli r5, 8");
    insn("or r1, r5");
    insn("cmpi r1, 0xffff");
    insn("jeq runner_exit");
    insn("movi r2, " + num(static_cast<std::uint64_t>(spec_.functions)));
    insn("mod r1, r2");
    insn("movi r0, 3");        // read the argument
    insn("mov r5, r1");        // keep index
    insn("movi r1, 0");
    insn("movi r2, argbuf");
    insn("movi r3, 8");
    insn("syscall");
    insn("movi r2, argbuf");
    insn("load r1, [r2]");     // r1 = argument
    insn("shli r5, 3");        // index into the export table
    insn("movi r2, exports");
    insn("add r2, r5");
    insn("load r6, [r2]");
    insn("callr r6");          // r4 = result
    insn("movi r2, outbuf");
    insn("store [r2], r4");
    insn("movi r0, 2");
    insn("movi r1, 1");
    insn("movi r3, 8");
    insn("syscall");
    insn("jmp runner_loop");
    label("runner_exit");
    insn("movi r0, 1");
    insn("movi r1, 0");
    insn("syscall");
    insn("hlt");
  }

  void emit_function(int i) {
    const std::string id = num(i);
    if (spec_.irregular && i % 16 == 7) {
      // Data interleaved with code, as handwritten assembly does.
      insn("jmp lib_skip_" + id);
      label("lib_blob_" + id);
      std::string bytes = ".byte 0x00";
      for (int b = 0; b < 10; ++b) bytes += ", " + num(rng_.below(256));
      insn(bytes);
      label("lib_key_" + id);
      insn(".quad " + num(rng_.next() & 0xffffffffull));
      label("lib_skip_" + id);
    }

    line(".func lib_fn_" + id);
    insn("subi sp, 16");
    insn("mov r4, r1");  // result accumulates from the argument

    // Bounded loop driven by the low bits of the argument.
    insn("mov r3, r1");
    insn("andi r3, 7");
    label("fnloop_" + id);
    insn("cmpi r3, 0");
    insn("jle fnbody_" + id);
    insn("addi r4, " + num(1 + rng_.below(999)));
    insn("subi r3, 1");
    insn("jmp fnloop_" + id);
    label("fnbody_" + id);

    for (int k = 0; k < spec_.ops_per_function; ++k) {
      switch (rng_.below(6)) {
        case 0: insn("addi r4, " + num(rng_.below(1 << 20))); break;
        case 1: insn("xori r4, " + num(rng_.below(1 << 20))); break;
        case 2:
          insn("movi r6, " + num(3 + rng_.below(61)));
          insn("mul r4, r6");
          break;
        case 3: insn("shli r4, " + num(1 + rng_.below(2))); break;
        case 4: insn("shri r4, " + num(1 + rng_.below(2))); break;
        case 5: insn("subi r4, " + num(rng_.below(1 << 16))); break;
      }
    }

    if (spec_.irregular && i % 16 == 7) {
      insn("loadpc r6, lib_key_" + id);
      insn("xor r4, r6");
    }

    // Acyclic call deeper into the library.
    if (i + 1 < spec_.functions && rng_.chance(2, 5)) {
      std::uint64_t callee =
          static_cast<std::uint64_t>(i) + 1 +
          rng_.below(static_cast<std::uint64_t>(spec_.functions - i - 1) / 4 + 1);
      insn("push r1");
      insn("mov r1, r4");
      insn("call lib_fn_" + num(callee));
      insn("pop r1");
    }

    insn("addi sp, 16");
    if (spec_.irregular && i % 23 == 5) {
      insn("jmp lib_tail");  // shared epilogue (tail merging)
    } else {
      insn("ret");
    }
  }

  void emit_shared_tail() {
    label("lib_tail");
    insn("addi r4, 1");
    insn("ret");
  }

  void emit_data() {
    line(".rodata");
    label("exports");
    for (int i = 0; i < spec_.functions; i += 8) {
      std::string slots = ".quad lib_fn_" + num(i);
      for (int j = i + 1; j < std::min(i + 8, spec_.functions); ++j)
        slots += ", lib_fn_" + num(j);
      insn(slots);
    }
    line(".bss");
    label("idxbuf");
    insn(".space 8");
    label("argbuf");
    insn(".space 8");
    label("outbuf");
    insn(".space 8");
  }

  const WorkloadSpec& spec_;
  Rng rng_;
  std::string out_;
};

}  // namespace

Result<Workload> make_workload(const WorkloadSpec& spec) {
  if (spec.functions < 1 || spec.functions > 0xfffe)
    return Error::invalid_argument("workload needs 1..65534 functions");
  Workload w;
  w.spec = spec;
  WorkloadBuilder builder(spec);
  assembler::Options opts;
  opts.emit_symbols = false;
  ZIPR_ASSIGN_OR_RETURN(w.image, assembler::assemble(builder.build(), opts));

  // The unit-test suite: every function, with seeded arguments.
  Rng rng(spec.seed ^ 0x7e575);
  for (int i = 0; i < spec.functions; ++i) {
    for (int t = 0; t < spec.tests_per_function; ++t) {
      Poll poll;
      poll.vm_seed = rng.next();
      put_u16(poll.input, static_cast<std::uint16_t>(i));
      put_u64(poll.input, rng.next());
      put_u16(poll.input, 0xffff);
      w.unit_tests.push_back(std::move(poll));
    }
  }
  return w;
}

WorkloadSpec libc_like_spec() {
  WorkloadSpec s;
  s.name = "libc-like";
  s.seed = 0x11bc;
  s.functions = 640;
  s.ops_per_function = 18;
  s.irregular = true;  // the paper: 22% handwritten assembly
  return s;
}

WorkloadSpec libjvm_like_spec() {
  WorkloadSpec s;
  s.name = "libjvm-like";
  s.seed = 0x11b7;
  s.functions = 3200;  // ~5x libc, as in the paper
  s.ops_per_function = 18;
  s.irregular = true;
  return s;
}

WorkloadSpec apache_like_spec() {
  WorkloadSpec s;
  s.name = "apache-like";
  s.seed = 0xa9ac;
  s.functions = 240;  // ~0.4x libc
  s.ops_per_function = 18;
  s.irregular = false;  // plain compiled C
  return s;
}

SuiteResult run_suite(const Workload& workload, const zelf::Image& rewritten) {
  SuiteResult result;
  for (const auto& test : workload.unit_tests) {
    ++result.total;
    auto a = vm::run_program(workload.image, test.input, test.vm_seed);
    auto b = vm::run_program(rewritten, test.input, test.vm_seed);
    if (a.exited == b.exited && a.exit_status == b.exit_status && a.output == b.output)
      ++result.passed;
  }
  return result;
}

namespace {

/// Emits one shared library: an exported dispatcher over `functions`
/// internal function bodies (r5 = function index, r1 = argument, result
/// in r4).
std::string library_source(int lib_index, int functions, Rng& rng) {
  std::string out;
  auto line = [&](const std::string& s) { out += s + "\n"; };
  auto insn = [&](const std::string& s) { out += "  " + s + "\n"; };
  auto num = [](std::uint64_t v) { return std::to_string(v); };

  line("; generated shared library " + num(lib_index));
  line(".library");
  line(".text");
  line(".export dispatch_" + num(lib_index));
  line(".func dispatch_" + num(lib_index));
  insn("movi r2, " + num(functions));
  insn("mov r0, r5");
  insn("mod r0, r2");
  insn("shli r0, 3");
  insn("movi r2, vtable");
  insn("add r2, r0");
  insn("load r6, [r2]");
  insn("callr r6");
  insn("ret");

  for (int i = 0; i < functions; ++i) {
    const std::string id = num(i);
    line(".func fn_" + id);
    insn("subi sp, 16");
    insn("mov r4, r1");
    insn("mov r3, r1");
    insn("andi r3, 7");
    out += "fnloop_" + id + ":\n";
    insn("cmpi r3, 0");
    insn("jle fnbody_" + id);
    insn("addi r4, " + num(1 + rng.below(999)));
    insn("subi r3, 1");
    insn("jmp fnloop_" + id);
    out += "fnbody_" + id + ":\n";
    for (int k = 0; k < 12; ++k) {
      switch (rng.below(5)) {
        case 0: insn("addi r4, " + num(rng.below(1 << 20))); break;
        case 1: insn("xori r4, " + num(rng.below(1 << 20))); break;
        case 2:
          insn("movi r6, " + num(3 + rng.below(61)));
          insn("mul r4, r6");
          break;
        case 3: insn("shri r4, " + num(1 + rng.below(2))); break;
        case 4: insn("subi r4, " + num(rng.below(1 << 16))); break;
      }
    }
    // Intra-library acyclic call deeper into the table.
    if (i + 1 < functions && rng.chance(1, 3)) {
      insn("push r1");
      insn("mov r1, r4");
      insn("call fn_" + num(i + 1 + rng.below(
                                static_cast<std::uint64_t>(functions - i - 1) / 4 + 1)));
      insn("pop r1");
    }
    insn("addi sp, 16");
    insn("ret");
  }

  line(".rodata");
  out += "vtable:\n";
  for (int i = 0; i < functions; i += 8) {
    std::string slots = "  .quad fn_" + num(i);
    for (int j = i + 1; j < std::min(i + 8, functions); ++j) slots += ", fn_" + num(j);
    line(slots);
  }
  return out;
}

/// The main executable: reads [u16 test-id][u64 arg] records, routes id to
/// (library, function) and calls through the library's import slot.
std::string shared_main_source(int libraries) {
  std::string out;
  auto line = [&](const std::string& s) { out += s + "\n"; };
  auto insn = [&](const std::string& s) { out += "  " + s + "\n"; };
  auto num = [](std::uint64_t v) { return std::to_string(v); };

  line(".entry main");
  line(".text");
  line(".func main");
  out += "runner_loop:\n";
  insn("movi r0, 3");
  insn("movi r1, 0");
  insn("movi r2, idxbuf");
  insn("movi r3, 2");
  insn("syscall");
  insn("cmpi r0, 2");
  insn("jlt runner_exit");
  insn("movi r2, idxbuf");
  insn("load8 r4, [r2]");
  insn("load8 r5, [r2+1]");
  insn("shli r5, 8");
  insn("or r4, r5");
  insn("cmpi r4, 0xffff");
  insn("jeq runner_exit");
  insn("movi r0, 3");  // the argument
  insn("movi r1, 0");
  insn("movi r2, argbuf");
  insn("movi r3, 8");
  insn("syscall");
  insn("movi r2, argbuf");
  insn("load r1, [r2]");
  insn("mov r5, r4");  // fn = id / libraries
  insn("movi r6, " + num(libraries));
  insn("div r5, r6");
  insn("mov r6, r4");  // lib = id % libraries
  insn("movi r2, " + num(libraries));
  insn("mod r6, r2");
  insn("jmpt r6, libtable");
  for (int l = 0; l < libraries; ++l) {
    out += "stub_" + num(l) + ":\n";
    insn("movi r6, got_" + num(l));
    insn("load r6, [r6]");
    insn("callr r6");
    insn("jmp emit_result");
  }
  out += "emit_result:\n";
  insn("movi r2, outbuf");
  insn("store [r2], r4");
  insn("movi r0, 2");
  insn("movi r1, 1");
  insn("movi r3, 8");
  insn("syscall");
  insn("jmp runner_loop");
  out += "runner_exit:\n";
  insn("movi r0, 1");
  insn("movi r1, 0");
  insn("syscall");
  insn("hlt");
  line(".rodata");
  out += "libtable:\n";
  std::string slots = "  .quad stub_0";
  for (int l = 1; l < libraries; ++l) slots += ", stub_" + num(l);
  line(slots);
  line("  .quad 0");
  line(".data");
  for (int l = 0; l < libraries; ++l)
    line(".import got_" + num(l) + ", dispatch_" + num(l));
  line(".bss");
  line("idxbuf: .space 8");
  line("argbuf: .space 8");
  line("outbuf: .space 8");
  return out;
}

}  // namespace

Result<SharedWorkload> make_shared_workload(const WorkloadSpec& spec, int libraries) {
  if (libraries < 1 || libraries > 8)
    return Error::invalid_argument("shared workload supports 1..8 libraries");
  if (spec.functions < libraries)
    return Error::invalid_argument("need at least one function per library");

  SharedWorkload w;
  w.spec = spec;
  Rng rng(spec.seed);

  assembler::Options main_opts;
  main_opts.emit_symbols = false;
  ZIPR_ASSIGN_OR_RETURN(w.main_image,
                        assembler::assemble(shared_main_source(libraries), main_opts));

  const int per_lib = spec.functions / libraries;
  for (int l = 0; l < libraries; ++l) {
    assembler::Options lib_opts;
    lib_opts.emit_symbols = false;
    lib_opts.text_base = 0x1000000 + static_cast<std::uint64_t>(l) * 0x800000;
    lib_opts.rodata_base = lib_opts.text_base + 0x400000;
    lib_opts.data_base = lib_opts.text_base + 0x500000;
    lib_opts.bss_base = lib_opts.text_base + 0x600000;
    ZIPR_ASSIGN_OR_RETURN(zelf::Image lib,
                          assembler::assemble(library_source(l, per_lib, rng), lib_opts));
    w.libraries.push_back(std::move(lib));
  }

  // One test per (library, function): id = fn * libraries + lib.
  Rng test_rng(spec.seed ^ 0x5ea7);
  for (int l = 0; l < libraries; ++l) {
    for (int fn = 0; fn < per_lib; ++fn) {
      Poll poll;
      poll.vm_seed = test_rng.next();
      put_u16(poll.input, static_cast<std::uint16_t>(fn * libraries + l));
      put_u64(poll.input, test_rng.next());
      put_u16(poll.input, 0xffff);
      w.unit_tests.push_back(std::move(poll));
    }
  }
  return w;
}

Result<SuiteResult> run_shared_suite(const SharedWorkload& workload,
                                     std::vector<zelf::Image> replacement) {
  std::vector<zelf::Image> originals{workload.main_image};
  for (const auto& lib : workload.libraries) originals.push_back(lib);
  ZIPR_ASSIGN_OR_RETURN(vm::LinkResult orig, vm::link(std::move(originals)));
  ZIPR_ASSIGN_OR_RETURN(vm::LinkResult repl, vm::link(std::move(replacement)));

  SuiteResult result;
  for (const auto& test : workload.unit_tests) {
    ++result.total;
    auto a = vm::run_linked(orig, test.input, test.vm_seed);
    auto b = vm::run_linked(repl, test.input, test.vm_seed);
    if (a.exited == b.exited && a.exit_status == b.exit_status && a.output == b.output)
      ++result.passed;
  }
  return result;
}

}  // namespace zipr::cgc
