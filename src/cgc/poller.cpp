#include "cgc/poller.h"

#include "support/rng.h"

namespace zipr::cgc {

std::vector<Poll> make_polls(const CbProgram& cb, int count, std::uint64_t seed) {
  Rng rng(seed ^ cb.spec.seed);
  std::vector<Poll> polls;
  polls.reserve(static_cast<std::size_t>(count));
  const int handlers = cb.spec.handlers;

  for (int p = 0; p < count; ++p) {
    Poll poll;
    poll.vm_seed = rng.next();
    const int commands = 1 + static_cast<int>(rng.below(8));
    for (int c = 0; c < commands; ++c) {
      const auto cmd = static_cast<Byte>(rng.below(0xff));  // never 0xFF here
      poll.input.push_back(cmd);
      const int idx = cmd % handlers;
      const int len = cb.payload_len[static_cast<std::size_t>(idx)];
      for (int b = 0; b < len; ++b)
        poll.input.push_back(static_cast<Byte>(rng.below(256)));
    }
    // Most polls terminate cleanly; some end in EOF (truncated session),
    // and some truncate mid-payload.
    const auto ending = rng.below(10);
    if (ending < 7) {
      poll.input.push_back(0xFF);
    } else if (ending < 9 && poll.input.size() > 2) {
      poll.input.resize(poll.input.size() - 1 - rng.below(poll.input.size() / 2));
    }
    polls.push_back(std::move(poll));
  }
  return polls;
}

PollComparison run_poll(const zelf::Image& original, const zelf::Image& rewritten,
                        const Poll& poll) {
  PollComparison cmp;
  cmp.original = vm::run_program(original, poll.input, poll.vm_seed);
  cmp.rewritten = vm::run_program(rewritten, poll.input, poll.vm_seed);
  cmp.functional = cmp.original.exited == cmp.rewritten.exited &&
                   cmp.original.exit_status == cmp.rewritten.exit_status &&
                   cmp.original.fault == cmp.rewritten.fault &&
                   cmp.original.output == cmp.rewritten.output;
  return cmp;
}

}  // namespace zipr::cgc
