#include <cstddef>

#include "isa/insn.h"

namespace zipr::isa {

namespace {

// Split a packed register byte (dst<<4 | src); each nibble must name a
// valid register.
Result<std::pair<std::uint8_t, std::uint8_t>> reg_pair(std::uint8_t b) {
  std::uint8_t hi = b >> 4, lo = b & 0x0f;
  if (hi >= kNumRegs || lo >= kNumRegs)
    return Error::decode("register operand out of range");
  return std::make_pair(hi, lo);
}

Result<std::uint8_t> one_reg(std::uint8_t b) {
  if (b >= kNumRegs) return Error::decode("register operand out of range");
  return b;
}

}  // namespace

Result<Insn> decode(ByteView bytes) {
  if (bytes.empty()) return Error::decode("empty byte range");
  ByteReader r(bytes);
  const std::uint8_t op0 = r.u8().value();

  Insn in;
  auto rr_form = [&](Op op) -> Result<Insn> {
    auto b = r.u8();
    if (!b.ok()) return Error::decode("truncated reg-pair operand");
    ZIPR_ASSIGN_OR_RETURN(auto pr, reg_pair(*b));
    in.op = op;
    in.ra = pr.first;
    in.rb = pr.second;
    in.length = 2;
    return in;
  };
  auto ri_form = [&](Op op) -> Result<Insn> {
    auto b = r.u8();
    if (!b.ok()) return Error::decode("truncated reg operand");
    ZIPR_ASSIGN_OR_RETURN(in.ra, one_reg(*b));
    auto imm = r.i32();
    if (!imm.ok()) return Error::decode("truncated imm32 operand");
    in.op = op;
    in.imm = *imm;
    in.length = 6;
    return in;
  };
  auto mem_form = [&](Op op) -> Result<Insn> {
    auto b = r.u8();
    if (!b.ok()) return Error::decode("truncated reg-pair operand");
    ZIPR_ASSIGN_OR_RETURN(auto pr, reg_pair(*b));
    auto disp = r.i32();
    if (!disp.ok()) return Error::decode("truncated disp32 operand");
    in.op = op;
    in.ra = pr.first;
    in.rb = pr.second;
    in.imm = *disp;
    in.length = 6;
    return in;
  };

  switch (op0) {
    case opc::kNop:
      in.op = Op::kNop;
      in.length = 1;
      return in;
    case opc::kHlt:
      in.op = Op::kHlt;
      in.length = 1;
      return in;
    case opc::kRet:
      in.op = Op::kRet;
      in.length = 1;
      return in;

    case opc::kJmp8: {
      auto d = r.i8();
      if (!d.ok()) return Error::decode("truncated jmp rel8");
      in.op = Op::kJmp;
      in.width = BranchWidth::kRel8;
      in.imm = *d;
      in.length = kJmp8Len;
      return in;
    }
    case opc::kJmp32: {
      auto d = r.i32();
      if (!d.ok()) return Error::decode("truncated jmp rel32");
      in.op = Op::kJmp;
      in.width = BranchWidth::kRel32;
      in.imm = *d;
      in.length = kJmp32Len;
      return in;
    }
    case opc::kCall: {
      auto d = r.i32();
      if (!d.ok()) return Error::decode("truncated call rel32");
      in.op = Op::kCall;
      in.imm = *d;
      in.length = kCallLen;
      return in;
    }
    case opc::kPushI: {
      auto v = r.u32();
      if (!v.ok()) return Error::decode("truncated push imm32");
      in.op = Op::kPushI;
      in.imm = static_cast<std::int64_t>(*v);  // zero-extended
      in.length = 5;
      return in;
    }
    case opc::kMovI64: {
      auto b = r.u8();
      if (!b.ok()) return Error::decode("truncated movi64 reg");
      ZIPR_ASSIGN_OR_RETURN(in.ra, one_reg(*b));
      auto v = r.u64();
      if (!v.ok()) return Error::decode("truncated movi64 imm");
      in.op = Op::kMovI64;
      in.imm = static_cast<std::int64_t>(*v);
      in.length = 10;
      return in;
    }
    case opc::kMovI:
      return ri_form(Op::kMovI);
    case opc::kMov:
      return rr_form(Op::kMov);
    case opc::kLoad:
      return mem_form(Op::kLoad);
    case opc::kStore:
      return mem_form(Op::kStore);
    case opc::kLoad8:
      return mem_form(Op::kLoad8);
    case opc::kStore8:
      return mem_form(Op::kStore8);
    case opc::kLoadPc: {
      auto b = r.u8();
      if (!b.ok()) return Error::decode("truncated loadpc reg");
      ZIPR_ASSIGN_OR_RETURN(in.ra, one_reg(*b));
      auto d = r.i32();
      if (!d.ok()) return Error::decode("truncated loadpc disp");
      in.op = Op::kLoadPc;
      in.imm = *d;
      in.length = 6;
      return in;
    }
    case opc::kLea: {
      auto b = r.u8();
      if (!b.ok()) return Error::decode("truncated lea reg");
      ZIPR_ASSIGN_OR_RETURN(in.ra, one_reg(*b));
      auto d = r.i32();
      if (!d.ok()) return Error::decode("truncated lea disp");
      in.op = Op::kLea;
      in.imm = *d;
      in.length = 6;
      return in;
    }

    case opc::kCallR: {
      auto b = r.u8();
      if (!b.ok()) return Error::decode("truncated callr reg");
      ZIPR_ASSIGN_OR_RETURN(in.ra, one_reg(*b));
      in.op = Op::kCallR;
      in.length = 2;
      return in;
    }
    case opc::kJmpR: {
      auto b = r.u8();
      if (!b.ok()) return Error::decode("truncated jmpr reg");
      ZIPR_ASSIGN_OR_RETURN(in.ra, one_reg(*b));
      in.op = Op::kJmpR;
      in.length = 2;
      return in;
    }
    case opc::kJmpT: {
      auto b = r.u8();
      if (!b.ok()) return Error::decode("truncated jmpt reg");
      ZIPR_ASSIGN_OR_RETURN(in.ra, one_reg(*b));
      auto tab = r.u32();
      if (!tab.ok()) return Error::decode("truncated jmpt table");
      in.op = Op::kJmpT;
      in.imm = static_cast<std::int64_t>(*tab);  // absolute table address
      in.length = 6;
      return in;
    }

    case opc::kSysPrefix: {
      auto b = r.u8();
      if (!b.ok() || *b != opc::kSysSuffix) return Error::decode("bad syscall suffix");
      in.op = Op::kSyscall;
      in.length = 2;
      return in;
    }

    case opc::kAdd: return rr_form(Op::kAdd);
    case opc::kSub: return rr_form(Op::kSub);
    case opc::kAnd: return rr_form(Op::kAnd);
    case opc::kOr: return rr_form(Op::kOr);
    case opc::kXor: return rr_form(Op::kXor);
    case opc::kMul: return rr_form(Op::kMul);
    case opc::kDiv: return rr_form(Op::kDiv);
    case opc::kMod: return rr_form(Op::kMod);
    case opc::kShl: return rr_form(Op::kShl);
    case opc::kShr: return rr_form(Op::kShr);
    case opc::kSar: return rr_form(Op::kSar);
    case opc::kCmp: return rr_form(Op::kCmp);
    case opc::kTest: return rr_form(Op::kTest);

    case opc::kAddI: return ri_form(Op::kAddI);
    case opc::kSubI: return ri_form(Op::kSubI);
    case opc::kAndI: return ri_form(Op::kAndI);
    case opc::kOrI: return ri_form(Op::kOrI);
    case opc::kXorI: return ri_form(Op::kXorI);
    case opc::kShlI: return ri_form(Op::kShlI);
    case opc::kShrI: return ri_form(Op::kShrI);
    case opc::kCmpI: return ri_form(Op::kCmpI);

    default:
      break;
  }

  if (op0 >= opc::kPushBase && op0 < opc::kPushBase + kNumRegs) {
    in.op = Op::kPush;
    in.ra = op0 & 0x07;
    in.length = 1;
    return in;
  }
  if (op0 >= opc::kPopBase && op0 < opc::kPopBase + kNumRegs) {
    in.op = Op::kPop;
    in.ra = op0 & 0x07;
    in.length = 1;
    return in;
  }
  if (op0 >= opc::kJcc8Base && op0 < opc::kJcc8Base + 8) {
    auto d = r.i8();
    if (!d.ok()) return Error::decode("truncated jcc rel8");
    in.op = Op::kJcc;
    in.cond = static_cast<Cond>(op0 & 0x07);
    in.width = BranchWidth::kRel8;
    in.imm = *d;
    in.length = kJcc8Len;
    return in;
  }
  if (op0 >= opc::kJcc32Base && op0 < opc::kJcc32Base + 8) {
    auto d = r.i32();
    if (!d.ok()) return Error::decode("truncated jcc rel32");
    in.op = Op::kJcc;
    in.cond = static_cast<Cond>(op0 & 0x07);
    in.width = BranchWidth::kRel32;
    in.imm = *d;
    in.length = kJcc32Len;
    return in;
  }

  return Error::decode("invalid opcode " + hex_addr(op0));
}

// Allocation-free twin of decode(): same accepted encodings, same Insn
// fields, but failures return false instead of composing an Error string.
// Kept structurally parallel to decode() above; IsaDecode.DecodeAtAgrees
// (isa_test) differentially checks the two over exhaustive-prefix and
// random byte strings so they cannot drift apart.
bool decode_at(ByteView bytes, Insn& out) {
  const std::size_t n = bytes.size();
  if (n == 0) return false;
  const Byte* b = bytes.data();
  const std::uint8_t op0 = b[0];

  auto rr_form = [&](Op op) {
    if (n < 2) return false;
    const std::uint8_t hi = b[1] >> 4, lo = b[1] & 0x0f;
    if (hi >= kNumRegs || lo >= kNumRegs) return false;
    out.op = op;
    out.ra = hi;
    out.rb = lo;
    out.length = 2;
    return true;
  };
  auto ri_form = [&](Op op) {
    if (n < 6 || b[1] >= kNumRegs) return false;
    out.op = op;
    out.ra = b[1];
    out.imm = get_i32(bytes, 2);
    out.length = 6;
    return true;
  };
  auto mem_form = [&](Op op) {
    if (n < 6) return false;
    const std::uint8_t hi = b[1] >> 4, lo = b[1] & 0x0f;
    if (hi >= kNumRegs || lo >= kNumRegs) return false;
    out.op = op;
    out.ra = hi;
    out.rb = lo;
    out.imm = get_i32(bytes, 2);
    out.length = 6;
    return true;
  };
  out = Insn{};
  switch (op0) {
    case opc::kNop: out.op = Op::kNop; out.length = 1; return true;
    case opc::kHlt: out.op = Op::kHlt; out.length = 1; return true;
    case opc::kRet: out.op = Op::kRet; out.length = 1; return true;

    case opc::kJmp8:
      if (n < 2) return false;
      out.op = Op::kJmp;
      out.width = BranchWidth::kRel8;
      out.imm = static_cast<std::int8_t>(b[1]);
      out.length = kJmp8Len;
      return true;
    case opc::kJmp32:
      if (n < 5) return false;
      out.op = Op::kJmp;
      out.width = BranchWidth::kRel32;
      out.imm = get_i32(bytes, 1);
      out.length = kJmp32Len;
      return true;
    case opc::kCall:
      if (n < 5) return false;
      out.op = Op::kCall;
      out.imm = get_i32(bytes, 1);
      out.length = kCallLen;
      return true;
    case opc::kPushI:
      if (n < 5) return false;
      out.op = Op::kPushI;
      out.imm = static_cast<std::int64_t>(get_u32(bytes, 1));  // zero-extended
      out.length = 5;
      return true;
    case opc::kMovI64:
      if (n < 10 || b[1] >= kNumRegs) return false;
      out.op = Op::kMovI64;
      out.ra = b[1];
      out.imm = static_cast<std::int64_t>(get_u64(bytes, 2));
      out.length = 10;
      return true;
    case opc::kMovI: return ri_form(Op::kMovI);
    case opc::kMov: return rr_form(Op::kMov);
    case opc::kLoad: return mem_form(Op::kLoad);
    case opc::kStore: return mem_form(Op::kStore);
    case opc::kLoad8: return mem_form(Op::kLoad8);
    case opc::kStore8: return mem_form(Op::kStore8);
    case opc::kLoadPc: return ri_form(Op::kLoadPc);
    case opc::kLea: return ri_form(Op::kLea);

    case opc::kCallR:
      if (n < 2 || b[1] >= kNumRegs) return false;
      out.op = Op::kCallR;
      out.ra = b[1];
      out.length = 2;
      return true;
    case opc::kJmpR:
      if (n < 2 || b[1] >= kNumRegs) return false;
      out.op = Op::kJmpR;
      out.ra = b[1];
      out.length = 2;
      return true;
    case opc::kJmpT:
      if (n < 6 || b[1] >= kNumRegs) return false;
      out.op = Op::kJmpT;
      out.ra = b[1];
      out.imm = static_cast<std::int64_t>(get_u32(bytes, 2));  // absolute table address
      out.length = 6;
      return true;

    case opc::kSysPrefix:
      if (n < 2 || b[1] != opc::kSysSuffix) return false;
      out.op = Op::kSyscall;
      out.length = 2;
      return true;

    case opc::kAdd: return rr_form(Op::kAdd);
    case opc::kSub: return rr_form(Op::kSub);
    case opc::kAnd: return rr_form(Op::kAnd);
    case opc::kOr: return rr_form(Op::kOr);
    case opc::kXor: return rr_form(Op::kXor);
    case opc::kMul: return rr_form(Op::kMul);
    case opc::kDiv: return rr_form(Op::kDiv);
    case opc::kMod: return rr_form(Op::kMod);
    case opc::kShl: return rr_form(Op::kShl);
    case opc::kShr: return rr_form(Op::kShr);
    case opc::kSar: return rr_form(Op::kSar);
    case opc::kCmp: return rr_form(Op::kCmp);
    case opc::kTest: return rr_form(Op::kTest);

    case opc::kAddI: return ri_form(Op::kAddI);
    case opc::kSubI: return ri_form(Op::kSubI);
    case opc::kAndI: return ri_form(Op::kAndI);
    case opc::kOrI: return ri_form(Op::kOrI);
    case opc::kXorI: return ri_form(Op::kXorI);
    case opc::kShlI: return ri_form(Op::kShlI);
    case opc::kShrI: return ri_form(Op::kShrI);
    case opc::kCmpI: return ri_form(Op::kCmpI);

    default:
      break;
  }

  if (op0 >= opc::kPushBase && op0 < opc::kPushBase + kNumRegs) {
    out.op = Op::kPush;
    out.ra = op0 & 0x07;
    out.length = 1;
    return true;
  }
  if (op0 >= opc::kPopBase && op0 < opc::kPopBase + kNumRegs) {
    out.op = Op::kPop;
    out.ra = op0 & 0x07;
    out.length = 1;
    return true;
  }
  if (op0 >= opc::kJcc8Base && op0 < opc::kJcc8Base + 8) {
    if (n < 2) return false;
    out.op = Op::kJcc;
    out.cond = static_cast<Cond>(op0 & 0x07);
    out.width = BranchWidth::kRel8;
    out.imm = static_cast<std::int8_t>(b[1]);
    out.length = kJcc8Len;
    return true;
  }
  if (op0 >= opc::kJcc32Base && op0 < opc::kJcc32Base + 8) {
    if (n < 5) return false;
    out.op = Op::kJcc;
    out.cond = static_cast<Cond>(op0 & 0x07);
    out.width = BranchWidth::kRel32;
    out.imm = get_i32(bytes, 1);
    out.length = kJcc32Len;
    return true;
  }

  return false;
}

int cost_of(Op op) {
  switch (op) {
    case Op::kLoad: case Op::kStore: case Op::kLoad8: case Op::kStore8:
    case Op::kLoadPc: case Op::kPush: case Op::kPop: case Op::kPushI:
      return 3;
    case Op::kCall: case Op::kRet: case Op::kCallR: case Op::kJmpR:
    case Op::kJmpT:
      return 4;
    case Op::kJmp: case Op::kJcc:
      return 2;
    case Op::kSyscall:
      return 20;
    case Op::kMul:
      return 3;
    case Op::kDiv: case Op::kMod:
      return 10;
    default:
      return 1;
  }
}

}  // namespace zipr::isa
