// Decoded VLX instruction representation and classification helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "isa/opcodes.h"
#include "support/bytes.h"
#include "support/status.h"

namespace zipr::isa {

/// A decoded instruction. `length` is the encoded size in bytes; operand
/// fields are meaningful only for ops that use them.
struct Insn {
  Op op = Op::kInvalid;
  std::uint8_t length = 0;

  std::uint8_t ra = 0;   ///< first register operand (dst where applicable)
  std::uint8_t rb = 0;   ///< second register operand
  Cond cond = Cond::kEq; ///< for kJcc
  BranchWidth width = BranchWidth::kRel32;  ///< for kJmp / kJcc
  std::int64_t imm = 0;  ///< immediate / displacement (sign- or zero-extended
                         ///< per the op's semantics; rel branches keep the
                         ///< raw displacement here)

  // ---- classification ----
  bool is_control_flow() const {
    switch (op) {
      case Op::kJmp: case Op::kJcc: case Op::kCall: case Op::kRet:
      case Op::kCallR: case Op::kJmpR: case Op::kJmpT: case Op::kHlt:
        return true;
      default:
        return false;
    }
  }

  /// True for control flow through a runtime-computed target.
  bool is_indirect() const {
    return op == Op::kRet || op == Op::kCallR || op == Op::kJmpR || op == Op::kJmpT;
  }

  bool is_call() const { return op == Op::kCall || op == Op::kCallR; }
  bool is_ret() const { return op == Op::kRet; }
  bool is_conditional() const { return op == Op::kJcc; }

  /// True if the instruction has a statically-known control-flow target.
  bool has_static_target() const {
    return op == Op::kJmp || op == Op::kJcc || op == Op::kCall;
  }

  /// True if execution can continue at the next sequential instruction.
  /// (Unconditional jmp, ret, indirect jmp and hlt have no fallthrough;
  /// calls do: the callee returns to the next instruction.)
  bool has_fallthrough() const {
    switch (op) {
      case Op::kJmp: case Op::kRet: case Op::kJmpR: case Op::kJmpT:
      case Op::kHlt:
        return false;
      default:
        return true;
    }
  }

  /// True if the instruction reads data at a PC-relative address (the
  /// subject of mandatory transformations).
  bool is_pc_relative_data() const { return op == Op::kLea || op == Op::kLoadPc; }

  /// Static branch target given this instruction's address.
  /// Only valid when has_static_target().
  std::uint64_t target(std::uint64_t addr) const {
    return addr + length + static_cast<std::uint64_t>(imm);
  }

  /// Referenced data address for PC-relative data ops, given this
  /// instruction's address. Only valid when is_pc_relative_data().
  std::uint64_t pc_ref(std::uint64_t addr) const {
    return addr + length + static_cast<std::uint64_t>(imm);
  }

  friend bool operator==(const Insn&, const Insn&) = default;
};

/// Decode one instruction from `bytes` (which starts at the instruction's
/// first byte). Fails with Error::decode on an invalid opcode or truncated
/// operands. Decoding never consults the address: VLX, like x86, has a
/// position-independent wire format (targets are computed from addr+imm).
Result<Insn> decode(ByteView bytes);

/// Allocation-free decode of one instruction from `bytes` into `out`.
/// Returns false (leaving `out` unspecified) on an invalid opcode or
/// truncated operands -- exactly the inputs decode() rejects, without
/// composing an error message. This is the hot-path entry used by the
/// VM's predecoded-page builder and interpreter loop, where a failed
/// decode is an expected outcome (data bytes inside an executable page),
/// not a diagnostic event.
bool decode_at(ByteView bytes, Insn& out);

/// Encode `insn` directly into `out`, returning the number of bytes written.
/// Allocation-free: this is the hot-path entry used by the reassembler to
/// write into the output image in place. Fails if the operand values do not
/// fit the encoding or if `out` is too small (provide >= kMaxInsnLen to be
/// safe for any instruction).
Result<std::size_t> encode_into(const Insn& insn, std::span<Byte> out);

/// Encode `insn` by appending its wire form to `out`. Fails if the operand
/// values do not fit the encoding (e.g. rel8 displacement out of range).
Status encode(const Insn& insn, Bytes& out);

/// Convenience: encode to a fresh byte vector.
Result<Bytes> encode(const Insn& insn);

/// Encoded length the instruction will have. Mirrors encode().
int encoded_length(const Insn& insn);

/// Disassembly-style text ("jmp +0x12", "add r1, r2"), address-independent.
std::string to_string(const Insn& insn);

/// Text with resolved targets for branches ("jmp 0x40010a").
std::string to_string_at(const Insn& insn, std::uint64_t addr);

// ---- small constructors used throughout the rewriter ----
Insn make_jmp(std::int64_t rel, BranchWidth w);
Insn make_jcc(Cond c, std::int64_t rel, BranchWidth w);
Insn make_call(std::int64_t rel);
Insn make_nop();
Insn make_push_imm(std::uint32_t imm);
Insn make_ret();
Insn make_hlt();

/// Execution cost in abstract cycles; used by the VM's stats so "execution
/// overhead" reflects that transfers and memory ops cost more than ALU ops.
int cost_of(Op op);

}  // namespace zipr::isa
