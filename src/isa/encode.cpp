#include "isa/insn.h"

namespace zipr::isa {

namespace {

bool fits_i8(std::int64_t v) { return v >= kRel8Min && v <= kRel8Max; }
bool fits_i32(std::int64_t v) {
  return v >= INT32_MIN && v <= INT32_MAX;
}
bool fits_u32(std::int64_t v) { return v >= 0 && v <= UINT32_MAX; }

std::uint8_t pack_rr(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>((a << 4) | (b & 0x0f));
}

Status check_reg(std::uint8_t r) {
  if (r >= kNumRegs) return Error::invalid_argument("register out of range");
  return Status::success();
}

// Bounds-checked little-endian cursor over a caller-supplied span. The
// allocation-free core of both encode() overloads: all wire bytes flow
// through here, never through a heap-backed Bytes.
class SpanWriter {
 public:
  explicit SpanWriter(std::span<Byte> out)
      : p_(out.data()), begin_(out.data()), end_(out.data() + out.size()) {}

  bool overflowed() const { return overflowed_; }
  std::size_t written() const { return static_cast<std::size_t>(p_ - begin_); }

  void u8(std::uint8_t v) {
    if (end_ - p_ < 1) { overflowed_ = true; return; }
    *p_++ = v;
  }
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void u32(std::uint32_t v) { put_le(&v, 4); }
  void i32(std::int32_t v) { put_le(&v, 4); }
  void u64(std::uint64_t v) { put_le(&v, 8); }

 private:
  void put_le(const void* v, std::ptrdiff_t n) {
    if (end_ - p_ < n) { overflowed_ = true; return; }
    std::memcpy(p_, v, static_cast<std::size_t>(n));  // VLX is little-endian
    p_ += n;
  }

  Byte* p_;
  Byte* begin_;
  Byte* end_;
  bool overflowed_ = false;
};

Status encode_impl(const Insn& insn, SpanWriter& out) {
  auto rr_form = [&](std::uint8_t opbyte) -> Status {
    ZIPR_TRY(check_reg(insn.ra));
    ZIPR_TRY(check_reg(insn.rb));
    out.u8(opbyte);
    out.u8(pack_rr(insn.ra, insn.rb));
    return Status::success();
  };
  auto ri_form = [&](std::uint8_t opbyte) -> Status {
    ZIPR_TRY(check_reg(insn.ra));
    if (!fits_i32(insn.imm)) return Error::invalid_argument("imm32 out of range");
    out.u8(opbyte);
    out.u8(insn.ra);
    out.i32(static_cast<std::int32_t>(insn.imm));
    return Status::success();
  };
  auto mem_form = [&](std::uint8_t opbyte) -> Status {
    ZIPR_TRY(check_reg(insn.ra));
    ZIPR_TRY(check_reg(insn.rb));
    if (!fits_i32(insn.imm)) return Error::invalid_argument("disp32 out of range");
    out.u8(opbyte);
    out.u8(pack_rr(insn.ra, insn.rb));
    out.i32(static_cast<std::int32_t>(insn.imm));
    return Status::success();
  };

  switch (insn.op) {
    case Op::kNop:
      out.u8(opc::kNop);
      return Status::success();
    case Op::kHlt:
      out.u8(opc::kHlt);
      return Status::success();
    case Op::kRet:
      out.u8(opc::kRet);
      return Status::success();

    case Op::kJmp:
      if (insn.width == BranchWidth::kRel8) {
        if (!fits_i8(insn.imm)) return Error::invalid_argument("jmp rel8 out of range");
        out.u8(opc::kJmp8);
        out.i8(static_cast<std::int8_t>(insn.imm));
      } else {
        if (!fits_i32(insn.imm)) return Error::invalid_argument("jmp rel32 out of range");
        out.u8(opc::kJmp32);
        out.i32(static_cast<std::int32_t>(insn.imm));
      }
      return Status::success();

    case Op::kJcc: {
      auto cc = static_cast<std::uint8_t>(insn.cond);
      if (insn.width == BranchWidth::kRel8) {
        if (!fits_i8(insn.imm)) return Error::invalid_argument("jcc rel8 out of range");
        out.u8(static_cast<std::uint8_t>(opc::kJcc8Base | cc));
        out.i8(static_cast<std::int8_t>(insn.imm));
      } else {
        if (!fits_i32(insn.imm)) return Error::invalid_argument("jcc rel32 out of range");
        out.u8(static_cast<std::uint8_t>(opc::kJcc32Base | cc));
        out.i32(static_cast<std::int32_t>(insn.imm));
      }
      return Status::success();
    }

    case Op::kCall:
      if (!fits_i32(insn.imm)) return Error::invalid_argument("call rel32 out of range");
      out.u8(opc::kCall);
      out.i32(static_cast<std::int32_t>(insn.imm));
      return Status::success();

    case Op::kCallR:
      ZIPR_TRY(check_reg(insn.ra));
      out.u8(opc::kCallR);
      out.u8(insn.ra);
      return Status::success();
    case Op::kJmpR:
      ZIPR_TRY(check_reg(insn.ra));
      out.u8(opc::kJmpR);
      out.u8(insn.ra);
      return Status::success();
    case Op::kJmpT:
      ZIPR_TRY(check_reg(insn.ra));
      if (!fits_u32(insn.imm)) return Error::invalid_argument("jmpt table out of range");
      out.u8(opc::kJmpT);
      out.u8(insn.ra);
      out.u32(static_cast<std::uint32_t>(insn.imm));
      return Status::success();

    case Op::kSyscall:
      out.u8(opc::kSysPrefix);
      out.u8(opc::kSysSuffix);
      return Status::success();

    case Op::kPush:
      ZIPR_TRY(check_reg(insn.ra));
      out.u8(static_cast<std::uint8_t>(opc::kPushBase | insn.ra));
      return Status::success();
    case Op::kPop:
      ZIPR_TRY(check_reg(insn.ra));
      out.u8(static_cast<std::uint8_t>(opc::kPopBase | insn.ra));
      return Status::success();
    case Op::kPushI:
      if (!fits_u32(insn.imm)) return Error::invalid_argument("push imm32 out of range");
      out.u8(opc::kPushI);
      out.u32(static_cast<std::uint32_t>(insn.imm));
      return Status::success();

    case Op::kMovI64:
      ZIPR_TRY(check_reg(insn.ra));
      out.u8(opc::kMovI64);
      out.u8(insn.ra);
      out.u64(static_cast<std::uint64_t>(insn.imm));
      return Status::success();
    case Op::kMovI:
      return ri_form(opc::kMovI);
    case Op::kMov:
      return rr_form(opc::kMov);
    case Op::kLoad:
      return mem_form(opc::kLoad);
    case Op::kStore:
      return mem_form(opc::kStore);
    case Op::kLoad8:
      return mem_form(opc::kLoad8);
    case Op::kStore8:
      return mem_form(opc::kStore8);
    case Op::kLoadPc:
      return ri_form(opc::kLoadPc);
    case Op::kLea:
      return ri_form(opc::kLea);

    case Op::kAdd: return rr_form(opc::kAdd);
    case Op::kSub: return rr_form(opc::kSub);
    case Op::kAnd: return rr_form(opc::kAnd);
    case Op::kOr: return rr_form(opc::kOr);
    case Op::kXor: return rr_form(opc::kXor);
    case Op::kMul: return rr_form(opc::kMul);
    case Op::kDiv: return rr_form(opc::kDiv);
    case Op::kMod: return rr_form(opc::kMod);
    case Op::kShl: return rr_form(opc::kShl);
    case Op::kShr: return rr_form(opc::kShr);
    case Op::kSar: return rr_form(opc::kSar);
    case Op::kCmp: return rr_form(opc::kCmp);
    case Op::kTest: return rr_form(opc::kTest);

    case Op::kAddI: return ri_form(opc::kAddI);
    case Op::kSubI: return ri_form(opc::kSubI);
    case Op::kAndI: return ri_form(opc::kAndI);
    case Op::kOrI: return ri_form(opc::kOrI);
    case Op::kXorI: return ri_form(opc::kXorI);
    case Op::kShlI: return ri_form(opc::kShlI);
    case Op::kShrI: return ri_form(opc::kShrI);
    case Op::kCmpI: return ri_form(opc::kCmpI);

    case Op::kInvalid:
      break;
  }
  return Error::invalid_argument("cannot encode invalid instruction");
}

}  // namespace

Result<std::size_t> encode_into(const Insn& insn, std::span<Byte> out) {
  SpanWriter w(out);
  ZIPR_TRY(encode_impl(insn, w));
  if (w.overflowed())
    return Error::invalid_argument("encode buffer too small (" + std::to_string(out.size()) +
                                   " bytes) for instruction");
  return w.written();
}

Status encode(const Insn& insn, Bytes& out) {
  Byte buf[kMaxInsnLen];
  ZIPR_ASSIGN_OR_RETURN(std::size_t n, encode_into(insn, std::span<Byte>(buf, sizeof buf)));
  out.insert(out.end(), buf, buf + n);
  return Status::success();
}

Result<Bytes> encode(const Insn& insn) {
  Bytes out;
  ZIPR_TRY(encode(insn, out));
  return out;
}

int encoded_length(const Insn& insn) {
  switch (insn.op) {
    case Op::kNop: case Op::kHlt: case Op::kRet: case Op::kPush: case Op::kPop:
      return 1;
    case Op::kJmp:
      return insn.width == BranchWidth::kRel8 ? kJmp8Len : kJmp32Len;
    case Op::kJcc:
      return insn.width == BranchWidth::kRel8 ? kJcc8Len : kJcc32Len;
    case Op::kCall: case Op::kPushI:
      return 5;
    case Op::kCallR: case Op::kJmpR: case Op::kSyscall: case Op::kMov:
    case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kMul: case Op::kDiv: case Op::kMod: case Op::kShl: case Op::kShr:
    case Op::kSar: case Op::kCmp: case Op::kTest:
      return 2;
    case Op::kJmpT: case Op::kMovI: case Op::kLoadPc: case Op::kLea:
    case Op::kAddI: case Op::kSubI: case Op::kAndI: case Op::kOrI:
    case Op::kXorI: case Op::kShlI: case Op::kShrI: case Op::kCmpI:
    case Op::kLoad: case Op::kStore: case Op::kLoad8: case Op::kStore8:
      return 6;
    case Op::kMovI64:
      return 10;
    case Op::kInvalid:
      return 0;
  }
  return 0;
}

Insn make_jmp(std::int64_t rel, BranchWidth w) {
  Insn i;
  i.op = Op::kJmp;
  i.width = w;
  i.imm = rel;
  i.length = static_cast<std::uint8_t>(w == BranchWidth::kRel8 ? kJmp8Len : kJmp32Len);
  return i;
}

Insn make_jcc(Cond c, std::int64_t rel, BranchWidth w) {
  Insn i;
  i.op = Op::kJcc;
  i.cond = c;
  i.width = w;
  i.imm = rel;
  i.length = static_cast<std::uint8_t>(w == BranchWidth::kRel8 ? kJcc8Len : kJcc32Len);
  return i;
}

Insn make_call(std::int64_t rel) {
  Insn i;
  i.op = Op::kCall;
  i.imm = rel;
  i.length = kCallLen;
  return i;
}

Insn make_nop() {
  Insn i;
  i.op = Op::kNop;
  i.length = 1;
  return i;
}

Insn make_push_imm(std::uint32_t imm) {
  Insn i;
  i.op = Op::kPushI;
  i.imm = imm;
  i.length = 5;
  return i;
}

Insn make_ret() {
  Insn i;
  i.op = Op::kRet;
  i.length = 1;
  return i;
}

Insn make_hlt() {
  Insn i;
  i.op = Op::kHlt;
  i.length = 1;
  return i;
}

}  // namespace zipr::isa
