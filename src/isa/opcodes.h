// VLX: a variable-length, x86-flavoured instruction set.
//
// VLX is the target ISA for this Zipr reproduction. It is deliberately built
// to exhibit every property that makes static rewriting of x86 hard, with
// the same opcode values where the paper depends on them:
//
//   * variable instruction length (1-10 bytes);
//   * short PC-relative branches with a +/-127 byte reach (0xEB rel8) and
//     long 5-byte branches (0xE9 rel32) -- the basis of constrained vs
//     unconstrained references and of relaxation (paper Sec. III);
//   * a 1-byte NOP (0x90) and a push-imm32 (0x68) so the paper's sled
//     construction (Sec. II-C2) is encodable byte-for-byte;
//   * PC-relative data addressing (LEA/LOADPC), the subject of the
//     mandatory transformations (Sec. II-B1);
//   * indirect calls/jumps and memory-table jumps, which force pinned
//     addresses (Sec. II-A2);
//   * a dense opcode map in the ASCII-letter range (0x61..0x7a decode as
//     ALU/branch instructions) so embedded data plausibly decodes as code,
//     reproducing the code/data disambiguation problem (Sec. II-A1).
//
// Registers: 8 general-purpose 64-bit registers r0..r7; r7 is the stack
// pointer by convention (push/pop/call/ret use it). All immediates and
// displacements are little-endian; rel displacements are measured from the
// END of the instruction, as on x86.
#pragma once

#include <cstdint>

namespace zipr::isa {

inline constexpr int kNumRegs = 8;
inline constexpr int kSpReg = 7;  ///< stack pointer register index

/// Condition codes for conditional branches (Jcc).
enum class Cond : std::uint8_t {
  kEq = 0,  ///< equal (ZF)
  kNe = 1,  ///< not equal
  kLt = 2,  ///< signed less-than
  kLe = 3,  ///< signed less-or-equal
  kGt = 4,  ///< signed greater-than
  kGe = 5,  ///< signed greater-or-equal
  kB = 6,   ///< unsigned below
  kAe = 7,  ///< unsigned at-or-above
};

/// Semantic operation, independent of encoding width.
enum class Op : std::uint8_t {
  // Control flow
  kJmp,      ///< unconditional PC-relative jump (rel8 or rel32 encoding)
  kJcc,      ///< conditional PC-relative jump (rel8 or rel32 encoding)
  kCall,     ///< PC-relative call; pushes 8-byte return address
  kRet,      ///< pop 8-byte address and jump
  kCallR,    ///< indirect call through register
  kJmpR,     ///< indirect jump through register
  kJmpT,     ///< indirect jump via memory table: pc = mem64[imm + reg*8]
  kSyscall,  ///< DECREE-style system call (number in r0)
  kHlt,      ///< halt with fault
  kNop,

  // Stack
  kPush,   ///< push register
  kPop,    ///< pop register
  kPushI,  ///< push zero-extended imm32 (opcode 0x68 -- the sled builder)

  // Data movement
  kMovI64,   ///< reg <- imm64
  kMovI,     ///< reg <- sign-extended imm32
  kMov,      ///< reg <- reg
  kLoad,     ///< reg <- mem64[reg + disp32]
  kStore,    ///< mem64[reg + disp32] <- reg
  kLoad8,    ///< reg <- zero-extended mem8[reg + disp32]
  kStore8,   ///< mem8[reg + disp32] <- low byte of reg
  kLea,      ///< reg <- pc_end + disp32 (PC-relative address formation)
  kLoadPc,   ///< reg <- mem64[pc_end + disp32] (PC-relative load)

  // ALU, register-register (set ZF/SLT from result)
  kAdd, kSub, kAnd, kOr, kXor, kMul, kDiv, kMod, kShl, kShr, kSar,
  // ALU, register-immediate
  kAddI, kSubI, kAndI, kOrI, kXorI, kShlI, kShrI,
  // Comparison (set full flags)
  kCmp, kCmpI, kTest,

  kInvalid,
};

/// Encoding widths for PC-relative control transfers.
enum class BranchWidth : std::uint8_t {
  kRel8,   ///< 1-byte displacement, reach [-128, +127] from end of insn
  kRel32,  ///< 4-byte displacement, full address space
};

// ---- Opcode byte values (the wire encoding) ----
// Chosen to match x86 where the paper's techniques depend on exact bytes.
namespace opc {
inline constexpr std::uint8_t kAdd = 0x01;
inline constexpr std::uint8_t kShl = 0x02;
inline constexpr std::uint8_t kShr = 0x03;
inline constexpr std::uint8_t kSar = 0x04;
inline constexpr std::uint8_t kAddI = 0x05;
inline constexpr std::uint8_t kShlI = 0x06;
inline constexpr std::uint8_t kShrI = 0x07;
inline constexpr std::uint8_t kOr = 0x09;
inline constexpr std::uint8_t kMod = 0x0A;
inline constexpr std::uint8_t kOrI = 0x0B;
inline constexpr std::uint8_t kMul = 0x0D;
inline constexpr std::uint8_t kDiv = 0x0E;
inline constexpr std::uint8_t kSysPrefix = 0x0F;  // 0x0F 0x05 = syscall
inline constexpr std::uint8_t kSysSuffix = 0x05;
inline constexpr std::uint8_t kAnd = 0x21;
inline constexpr std::uint8_t kAndI = 0x25;
inline constexpr std::uint8_t kSub = 0x29;
inline constexpr std::uint8_t kSubI = 0x2D;
inline constexpr std::uint8_t kXor = 0x31;
inline constexpr std::uint8_t kXorI = 0x35;
inline constexpr std::uint8_t kCmp = 0x39;
inline constexpr std::uint8_t kCmpI = 0x3D;
inline constexpr std::uint8_t kPushBase = 0x50;  // 0x50|r
inline constexpr std::uint8_t kPopBase = 0x58;   // 0x58|r
inline constexpr std::uint8_t kPushI = 0x68;     // as x86 push imm32 (sleds)
inline constexpr std::uint8_t kJcc8Base = 0x70;  // 0x70|cc, rel8
inline constexpr std::uint8_t kJcc32Base = 0x78; // 0x78|cc, rel32
inline constexpr std::uint8_t kLoad8 = 0x84;
inline constexpr std::uint8_t kStore8 = 0x85;
inline constexpr std::uint8_t kTest = 0x86;
inline constexpr std::uint8_t kMov = 0x89;
inline constexpr std::uint8_t kStore = 0x8A;
inline constexpr std::uint8_t kLoad = 0x8B;
inline constexpr std::uint8_t kLoadPc = 0x8C;
inline constexpr std::uint8_t kLea = 0x8D;
inline constexpr std::uint8_t kNop = 0x90;       // as x86 nop (sleds)
inline constexpr std::uint8_t kMovI64 = 0xB8;
inline constexpr std::uint8_t kMovI = 0xB9;
inline constexpr std::uint8_t kRet = 0xC3;       // as x86 ret
inline constexpr std::uint8_t kCall = 0xE8;      // as x86 call rel32
inline constexpr std::uint8_t kJmp32 = 0xE9;     // as x86 jmp rel32
inline constexpr std::uint8_t kJmp8 = 0xEB;      // as x86 jmp rel8
inline constexpr std::uint8_t kHlt = 0xF4;       // as x86 hlt
inline constexpr std::uint8_t kCallR = 0xFD;
inline constexpr std::uint8_t kJmpR = 0xFE;
inline constexpr std::uint8_t kJmpT = 0xFF;
}  // namespace opc

/// Encoded lengths of fixed-size instruction forms.
inline constexpr int kJmp8Len = 2;
inline constexpr int kJmp32Len = 5;
inline constexpr int kJcc8Len = 2;
inline constexpr int kJcc32Len = 5;
inline constexpr int kCallLen = 5;
inline constexpr int kMaxInsnLen = 10;  ///< MOVI64

/// Reach of a rel8 displacement measured from end-of-instruction.
inline constexpr std::int64_t kRel8Min = -128;
inline constexpr std::int64_t kRel8Max = 127;

}  // namespace zipr::isa
