#include <cstdio>

#include "isa/insn.h"

namespace zipr::isa {

namespace {

const char* cond_name(Cond c) {
  switch (c) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kLe: return "le";
    case Cond::kGt: return "gt";
    case Cond::kGe: return "ge";
    case Cond::kB: return "b";
    case Cond::kAe: return "ae";
  }
  return "?";
}

std::string reg(std::uint8_t r) {
  if (r == kSpReg) return "sp";
  return "r" + std::to_string(r);
}

std::string imm_str(std::int64_t v) {
  char buf[32];
  if (v < 0)
    std::snprintf(buf, sizeof buf, "-0x%llx", static_cast<unsigned long long>(-v));
  else
    std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string rel_str(std::int64_t v) {
  return (v >= 0 ? "+" : "") + imm_str(v);
}

const char* alu_name(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kAddI: return "add";
    case Op::kSub: case Op::kSubI: return "sub";
    case Op::kAnd: case Op::kAndI: return "and";
    case Op::kOr: case Op::kOrI: return "or";
    case Op::kXor: case Op::kXorI: return "xor";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kShl: case Op::kShlI: return "shl";
    case Op::kShr: case Op::kShrI: return "shr";
    case Op::kSar: return "sar";
    case Op::kCmp: case Op::kCmpI: return "cmp";
    case Op::kTest: return "test";
    default: return "?";
  }
}

std::string branch_text(const Insn& in, std::string target) {
  switch (in.op) {
    case Op::kJmp: return "jmp " + target;
    case Op::kJcc: return std::string("j") + cond_name(in.cond) + " " + target;
    case Op::kCall: return "call " + target;
    default: return "?";
  }
}

std::string body(const Insn& in, const std::string& target) {
  switch (in.op) {
    case Op::kNop: return "nop";
    case Op::kHlt: return "hlt";
    case Op::kRet: return "ret";
    case Op::kSyscall: return "syscall";
    case Op::kJmp: case Op::kJcc: case Op::kCall: return branch_text(in, target);
    case Op::kCallR: return "callr " + reg(in.ra);
    case Op::kJmpR: return "jmpr " + reg(in.ra);
    case Op::kJmpT: return "jmpt " + reg(in.ra) + ", " + imm_str(in.imm);
    case Op::kPush: return "push " + reg(in.ra);
    case Op::kPop: return "pop " + reg(in.ra);
    case Op::kPushI: return "pushi " + imm_str(in.imm);
    case Op::kMovI64: return "movi64 " + reg(in.ra) + ", " + imm_str(in.imm);
    case Op::kMovI: return "movi " + reg(in.ra) + ", " + imm_str(in.imm);
    case Op::kMov: return "mov " + reg(in.ra) + ", " + reg(in.rb);
    case Op::kLoad: return "load " + reg(in.ra) + ", [" + reg(in.rb) + rel_str(in.imm) + "]";
    case Op::kStore: return "store [" + reg(in.ra) + rel_str(in.imm) + "], " + reg(in.rb);
    case Op::kLoad8: return "load8 " + reg(in.ra) + ", [" + reg(in.rb) + rel_str(in.imm) + "]";
    case Op::kStore8: return "store8 [" + reg(in.ra) + rel_str(in.imm) + "], " + reg(in.rb);
    case Op::kLea: return "lea " + reg(in.ra) + ", [pc" + rel_str(in.imm) + "]";
    case Op::kLoadPc: return "loadpc " + reg(in.ra) + ", [pc" + rel_str(in.imm) + "]";
    case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kMul: case Op::kDiv: case Op::kMod: case Op::kShl: case Op::kShr:
    case Op::kSar: case Op::kCmp: case Op::kTest:
      return std::string(alu_name(in.op)) + " " + reg(in.ra) + ", " + reg(in.rb);
    case Op::kAddI: case Op::kSubI: case Op::kAndI: case Op::kOrI:
    case Op::kXorI: case Op::kShlI: case Op::kShrI: case Op::kCmpI:
      return std::string(alu_name(in.op)) + "i " + reg(in.ra) + ", " + imm_str(in.imm);
    case Op::kInvalid: return "(invalid)";
  }
  return "?";
}

}  // namespace

std::string to_string(const Insn& in) { return body(in, rel_str(in.imm)); }

std::string to_string_at(const Insn& in, std::uint64_t addr) {
  if (in.has_static_target()) return body(in, hex_addr(in.target(addr)));
  return body(in, rel_str(in.imm));
}

}  // namespace zipr::isa
