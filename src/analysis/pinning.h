// Pinned-address analysis (paper Sec. II-A2).
//
// A pinned address is an original-program location that runtime control
// flow may reach indirectly; the rewritten binary must make "executing
// address a" behave as "executing a's (possibly transformed) instruction".
// Correctness requires B (true indirect branch targets) to be a subset of
// P (pinned addresses); efficiency degrades as |P - B| grows -- a relation
// the pinning ablation benchmark measures directly.
//
// Pin sources reproduced from the paper:
//   * the program entry point;
//   * jump-table slots;
//   * code addresses materialized as immediates (function pointers) or
//     found as aligned words in data segments;
//   * targets of control transfers embedded in verbatim (Case 2/3) byte
//     ranges, plus the fallthrough address at a verbatim range's end --
//     those instructions execute in place with their ORIGINAL
//     displacements, so whatever they reach must stay reachable at its
//     original address;
//   * optionally, call-return sites ("immediately after call
//     instructions" -- conservative, P grows beyond B);
//   * optionally, every instruction (the naive P assignment the paper
//     mentions and rejects; kept for the ablation);
//   * optionally, a random extra fraction of instruction addresses
//     (sweeping |P - B| for the ablation).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "analysis/disasm.h"
#include "support/rng.h"

namespace zipr::analysis {

/// Why an address is pinned (bitmask; an address can have several reasons).
enum PinReason : std::uint32_t {
  kPinEntry = 1u << 0,
  kPinJumpTable = 1u << 1,
  kPinCodeConst = 1u << 2,     ///< immediate in code names this address
  kPinDataConst = 1u << 3,     ///< data word names this address
  kPinVerbatimTarget = 1u << 4,///< verbatim-embedded branch reaches it
  kPinVerbatimFall = 1u << 5,  ///< fallthrough off the end of a verbatim range
  kPinCallReturn = 1u << 6,    ///< conservative call-return-site pin
  kPinNaive = 1u << 7,         ///< pin-all mode
  kPinExtra = 1u << 8,         ///< ablation-injected extra pin
  kPinExport = 1u << 9,        ///< exported entry point (library ABI surface)
};

struct PinningOptions {
  /// Pin the address after every call. The paper lists call-return sites
  /// among possible IBTs; on VLX this is provably unnecessary (calls push
  /// the RELOCATED return address and only ret consumes it), so the
  /// default is off and the option exists to reproduce the conservative
  /// configuration's cost.
  bool pin_call_returns = false;
  bool naive_pin_all = false;      ///< the paper's rejected P = "everything"
  double extra_pin_fraction = 0.0; ///< ablation: extra |P-B| as a fraction of insns
  std::uint64_t extra_pin_seed = 1;
};

struct PinSet {
  /// Pinned addresses that name definite-code instruction starts; the
  /// reassembler places references at these.
  std::map<std::uint64_t, std::uint32_t> pins;  ///< addr -> PinReason mask
  /// Candidate pins satisfied implicitly because they lie inside verbatim
  /// ranges (the bytes stay at their original addresses).
  std::set<std::uint64_t> covered_by_verbatim;
  /// Candidate pins dropped with a warning: they name neither an
  /// instruction start nor a verbatim byte (Case-4-style suspects).
  std::set<std::uint64_t> dropped;
};

/// Compute the pin set for an aggregated program.
PinSet compute_pins(const zelf::Image& image, const Aggregate& agg,
                    const TraversalResult& recursive, const PinningOptions& opts = {});

}  // namespace zipr::analysis
