#include "analysis/disasm.h"

#include "analysis/scratch.h"
#include "batch/worker_pool.h"
#include "support/log.h"

namespace zipr::analysis {

namespace {

/// Decode the instruction at `addr` out of the text segment into `out`.
/// False past the FILE-backed bytes (a text segment's memsize may exceed
/// its file size; the zero-filled tail holds no decodable content) or on
/// an invalid encoding. Allocation-free: both sweeps probe every data
/// byte embedded in text, so a failed decode must not compose an error
/// message.
bool decode_at(const zelf::Segment& text, std::uint64_t addr, isa::Insn& out) {
  if (addr < text.vaddr) return false;
  std::uint64_t off = addr - text.vaddr;
  if (off >= text.bytes.size()) return false;
  std::size_t avail = text.bytes.size() - static_cast<std::size_t>(off);
  std::size_t want = std::min<std::size_t>(isa::kMaxInsnLen, avail);
  return isa::decode_at(ByteView(text.bytes.data() + off, want), out);
}

/// True if `insn` carries an immediate that plausibly names a code address
/// (a materialized function pointer / label). lea's displacement is
/// PC-relative and is resolved by the caller.
bool immediate_names_code(const isa::Insn& insn, const zelf::Segment& text,
                          std::uint64_t* out_addr) {
  using isa::Op;
  switch (insn.op) {
    case Op::kMovI:
    case Op::kMovI64:
    case Op::kPushI: {
      auto v = static_cast<std::uint64_t>(insn.imm);
      if (v >= text.vaddr && v < text.end()) {
        *out_addr = v;
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

/// Insert the byte coverage of an address-sorted, non-overlapping
/// instruction sequence as maximal contiguous runs: one IntervalSet node
/// per run instead of two transient node allocations per instruction
/// (insert-then-coalesce).
template <typename Range>
void insert_coverage(const Range& insns, IntervalSet* code) {
  std::uint64_t run_lo = 0, run_hi = 0;
  for (const auto& [addr, insn] : insns) {
    if (addr != run_hi) {
      if (run_lo != run_hi) code->insert(run_lo, run_hi);
      run_lo = addr;
    }
    run_hi = addr + insn.length;
  }
  if (run_lo != run_hi) code->insert(run_lo, run_hi);
}

/// One parallel sweep chunk: the decode stream started at `start`,
/// truncated to entries below the next chunk's start, plus the address the
/// stream exited the chunk at (>= the next chunk's start).
struct SweepChunk {
  std::vector<AddrInsnMap::value_type> insns;
  std::uint64_t exit = 0;
};

/// Decode forward from `addr`, recording entries with address < `limit`;
/// returns the first reached address >= `limit` (the stream's exit point).
std::uint64_t sweep_run(const zelf::Segment& text, std::uint64_t addr, std::uint64_t limit,
                        std::vector<AddrInsnMap::value_type>* out) {
  isa::Insn insn;
  while (addr < limit) {
    if (!decode_at(text, addr, insn)) {
      // Resynchronize one byte later, like objdump's ".byte" fallback.
      ++addr;
      continue;
    }
    out->emplace_back(addr, insn);
    addr += insn.length;
  }
  return addr;
}

}  // namespace

DisasmResult linear_sweep(const zelf::Segment& text, int jobs,
                          std::vector<AddrInsnMap::value_type>* claims_scratch) {
  const std::uint64_t begin = text.vaddr;
  const std::uint64_t end = text.vaddr + text.bytes.size();
  DisasmResult out;

  // Chunks below ~16 KB are not worth a dispatch; this also keeps tiny
  // binaries on the serial path regardless of the requested job count.
  std::size_t workers = batch::effective_jobs(jobs, text.bytes.size() / (16 * 1024));
  if (workers <= 1) {
    std::vector<AddrInsnMap::value_type> v;
    if (claims_scratch) {
      v = std::move(*claims_scratch);
      v.clear();
    }
    v.reserve(text.bytes.size() / 4);
    sweep_run(text, begin, end, &v);
    insert_coverage(v, &out.code);
    out.insns.adopt_sorted(std::move(v));
    return out;
  }

  // Parallel sweep: fixed chunks decode independently, then a sequential
  // stitch repairs each boundary. Decoding at an address is memoryless --
  // it depends only on the bytes there, not on how the sweep arrived -- so
  // once the true stream reaches ANY address a chunk's local stream also
  // decoded, the two streams coincide from that point on. The stitch
  // re-decodes from the previous chunk's exit address until it hits such
  // an address (usually within a few instructions) and splices the rest.
  const std::uint64_t chunk = (end - begin + workers - 1) / workers;
  std::vector<SweepChunk> chunks(workers);
  if (claims_scratch) {
    // Chunk 0's stream seeds the merged vector below, so the donated
    // capacity ends up backing the full stitched table.
    chunks[0].insns = std::move(*claims_scratch);
    chunks[0].insns.clear();
  }
  batch::parallel_for(static_cast<int>(workers), workers, [&](std::size_t i) {
    std::uint64_t lo = begin + chunk * i;
    std::uint64_t hi = std::min<std::uint64_t>(end, lo + chunk);
    if (lo >= hi) {
      chunks[i].exit = lo;
      return;
    }
    chunks[i].insns.reserve(static_cast<std::size_t>(hi - lo) / 4);
    chunks[i].exit = sweep_run(text, lo, hi, &chunks[i].insns);
  });

  // Chunk 0's local stream IS the true stream over its range.
  std::vector<AddrInsnMap::value_type> merged = std::move(chunks[0].insns);
  std::uint64_t stream_pos = chunks[0].exit;  // true stream's next address
  for (std::size_t i = 1; i < workers; ++i) {
    const std::uint64_t lo = begin + chunk * i;
    const std::uint64_t hi = std::min<std::uint64_t>(end, lo + chunk);
    if (lo >= hi) continue;
    const auto& local = chunks[i].insns;
    // Walk the true stream until it lands on a locally-decoded start (or
    // leaves the chunk). Locally decoded starts form one monotone chain,
    // so membership is a binary search.
    std::size_t sync = 0;
    while (stream_pos < hi) {
      auto it = std::lower_bound(
          local.begin(), local.end(), stream_pos,
          [](const AddrInsnMap::value_type& p, std::uint64_t a) { return p.first < a; });
      if (it != local.end() && it->first == stream_pos) {
        sync = static_cast<std::size_t>(it - local.begin());
        break;
      }
      isa::Insn insn;
      if (!decode_at(text, stream_pos, insn)) {
        ++stream_pos;
        continue;
      }
      merged.emplace_back(stream_pos, insn);
      stream_pos += insn.length;
    }
    if (stream_pos >= hi) continue;  // never synchronized; chunk fully re-decoded
    merged.insert(merged.end(), local.begin() + static_cast<std::ptrdiff_t>(sync),
                  local.end());
    stream_pos = chunks[i].exit;
  }

  insert_coverage(merged, &out.code);
  out.insns.adopt_sorted(std::move(merged));
  return out;
}

namespace {

/// Shared traversal state. Claim-tracking lives in a per-byte state array
/// over the text segment (bit 0: an instruction STARTS here; bit 1: the
/// byte is covered by some claimed instruction) -- O(1) queries with no
/// per-claim allocation; the sorted claim table is built once at the end.
struct Traverser {
  static constexpr std::uint8_t kStart = 1;
  static constexpr std::uint8_t kCovered = 2;

  const zelf::Image& image;
  const zelf::Segment& text;
  const TraversalOptions& opts;
  AnalysisScratch* scratch;  ///< optional recycled buffers (may be null)
  TraversalResult result;
  /// FIFO via head index: identical visit order to a deque, but one flat
  /// recyclable buffer instead of per-chunk node churn (a deque allocates
  /// and frees a block every 64 pops on this push/pop-heavy walk).
  std::vector<std::uint64_t> worklist;
  std::size_t work_head = 0;
  std::vector<std::uint8_t> state;  ///< per text byte
  std::size_t claim_count = 0;

  Traverser(const zelf::Image& img, const TraversalOptions& o, AnalysisScratch* s)
      : image(img), text(img.text()), opts(o), scratch(s) {
    if (scratch) {
      state = std::move(scratch->byte_state);
      worklist = std::move(scratch->traversal_work);
      worklist.clear();
    }
    state.assign(text.bytes.size(), 0);
  }

  bool in_text(std::uint64_t addr) const {
    return addr >= text.vaddr && addr - text.vaddr < state.size();
  }
  bool claimed_at(std::uint64_t addr) const {
    return in_text(addr) && (state[addr - text.vaddr] & kStart);
  }
  bool covered_at(std::uint64_t addr) const {
    return in_text(addr) && (state[addr - text.vaddr] & kCovered);
  }
  bool covered_any(std::uint64_t lo, std::uint64_t hi) const {
    for (std::uint64_t a = lo; a < hi; ++a)
      if (covered_at(a)) return true;
    return false;
  }
  void claim(std::uint64_t addr, const isa::Insn& insn) {
    ++claim_count;
    std::uint64_t off = addr - text.vaddr;
    state[off] |= kStart;
    for (std::uint8_t b = 0; b < insn.length; ++b) state[off + b] |= kCovered;
  }

  /// Validate a tentative code seed: walk the fallthrough chain from
  /// `seed`; accept only if every byte decodes and the run terminates at a
  /// non-fallthrough instruction or flows into already-claimed code. This
  /// is the Case-4 guard: data that merely looks address-like rarely
  /// decodes into a clean, properly-terminated run.
  bool validate_run(std::uint64_t seed) const {
    std::uint64_t addr = seed;
    isa::Insn insn;
    for (int steps = 0; steps < 100000; ++steps) {
      if (claimed_at(addr)) return true;  // flows into known code
      if (covered_at(addr)) return false;  // mid-insn overlap
      if (!decode_at(text, addr, insn)) return false;
      if (insn.has_static_target()) {
        std::uint64_t t = insn.target(addr);
        if (!text.contains(t)) return false;  // branch out of text
      }
      if (!insn.has_fallthrough()) return true;  // clean terminator
      addr += insn.length;
      if (addr >= text.vaddr + text.bytes.size()) {
        // Ran off the end. A trailing syscall is an idiomatic terminator
        // (terminate never returns); anything else is rejected.
        return insn.op == isa::Op::kSyscall;
      }
    }
    return false;
  }

  /// Claim one instruction; push its control-flow successors.
  void visit(std::uint64_t addr) {
    if (claimed_at(addr)) return;
    if (covered_at(addr)) {
      // Overlaps a previously-claimed instruction at a different offset --
      // conflicting evidence; leave for the aggregator.
      ZIPR_WARN << "traversal: misaligned overlap at " << hex_addr(addr);
      return;
    }
    isa::Insn insn;
    if (!decode_at(text, addr, insn)) {
      ZIPR_DEBUG << "traversal: undecodable at " << hex_addr(addr);
      return;
    }
    if (covered_any(addr, addr + insn.length)) {
      ZIPR_WARN << "traversal: tail overlap at " << hex_addr(addr);
      return;
    }
    claim(addr, insn);

    if (insn.has_fallthrough()) worklist.push_back(addr + insn.length);
    if (insn.has_static_target()) {
      std::uint64_t t = insn.target(addr);
      if (text.contains(t)) {
        worklist.push_back(t);
        if (insn.is_call()) result.function_entries.insert(t);
      }
    }
    if (insn.op == isa::Op::kJmpT) discover_jump_table(addr, insn);

    std::uint64_t const_target = 0;
    if (immediate_names_code(insn, text, &const_target)) {
      accept_indirect_target(const_target);
    }
    if (insn.op == isa::Op::kLea) {
      std::uint64_t ref = insn.pc_ref(addr);
      if (text.contains(ref)) accept_indirect_target(ref);
    }
  }

  /// Record a runtime-computable code address; validated seeds also become
  /// traversal roots (and function entries: address-taken code).
  void accept_indirect_target(std::uint64_t addr) {
    result.indirect_targets.insert(addr);
    if (claimed_at(addr)) {
      result.function_entries.insert(addr);
      return;
    }
    if (validate_run(addr)) {
      result.function_entries.insert(addr);
      worklist.push_back(addr);
    } else {
      result.rejected_seeds.insert(addr);
      ZIPR_WARN << "analysis: address-like constant " << hex_addr(addr)
                << " failed code validation; leaving bytes ambiguous";
    }
  }

  void discover_jump_table(std::uint64_t jmpt_addr, const isa::Insn& insn) {
    JumpTable table;
    table.jmpt_addr = jmpt_addr;
    table.table_addr = static_cast<std::uint64_t>(insn.imm);
    for (std::size_t i = 0; i < opts.max_jump_table_slots; ++i) {
      auto bytes = image.read_bytes(table.table_addr + 8 * i, 8);
      if (!bytes.ok()) break;
      std::uint64_t slot = get_u64(*bytes, 0);
      if (!text.contains(slot)) break;  // table terminator
      if (!claimed_at(slot) && !validate_run(slot)) break;
      table.slots.push_back(slot);
      result.indirect_targets.insert(slot);
      worklist.push_back(slot);
    }
    if (!table.slots.empty()) result.jump_tables.push_back(std::move(table));
  }

  void drain() {
    while (work_head < worklist.size()) visit(worklist[work_head++]);
    worklist.clear();
    work_head = 0;
  }

  void scan_data_segments() {
    for (const auto& seg : image.segments) {
      if (seg.kind == zelf::SegKind::kText || seg.bytes.empty()) continue;
      for (std::size_t off = 0; off + 8 <= seg.bytes.size(); off += 8) {
        std::uint64_t v = get_u64(seg.bytes, off);
        if (v >= text.vaddr && v < text.vaddr + text.bytes.size())
          accept_indirect_target(v);
        // Process discoveries eagerly so later words see updated claims.
        drain();
      }
    }
  }

  /// Build the sorted claim table + coverage set by scanning the state
  /// bitmap in address order and re-decoding each claimed start (decoding
  /// is deterministic in the bytes, so this reproduces exactly what
  /// claim() saw). One sequential pass over text-sized data, instead of
  /// accumulating claims in discovery order and paying an O(n log n) sort
  /// over a multi-MB table -- the only superlinear term in the pipeline.
  void finalize() {
    std::vector<AddrInsnMap::value_type> sorted;
    if (scratch) {
      sorted = std::move(scratch->code_claims);
      sorted.clear();
    }
    sorted.reserve(claim_count);
    isa::Insn insn;
    for (std::size_t off = 0; off < state.size(); ++off) {
      if (!(state[off] & kStart)) continue;
      std::uint64_t addr = text.vaddr + off;
      if (decode_at(text, addr, insn)) sorted.emplace_back(addr, insn);
    }
    insert_coverage(sorted, &result.dis.code);
    result.dis.insns.adopt_sorted(std::move(sorted));
  }
};

}  // namespace

TraversalResult recursive_traversal(const zelf::Image& image, const TraversalOptions& opts,
                                    AnalysisScratch* scratch) {
  Traverser t(image, opts, scratch);
  if (image.entry != 0) {
    t.worklist.push_back(image.entry);
    t.result.function_entries.insert(image.entry);
  }
  // Exported entry points are conclusive roots: the loader hands them to
  // other images, so they are both code and indirect branch targets.
  for (const auto& exp : image.exports) {
    t.worklist.push_back(exp.addr);
    t.result.function_entries.insert(exp.addr);
    t.result.indirect_targets.insert(exp.addr);
  }
  t.drain();
  if (opts.scan_data_for_pointers) {
    t.scan_data_segments();
    t.drain();
  }
  t.finalize();
  // Return the bitmap's and worklist's capacity to the donor for the next
  // rewrite.
  if (scratch) {
    scratch->byte_state = std::move(t.state);
    scratch->traversal_work = std::move(t.worklist);
  }
  return std::move(t.result);
}

namespace {

Aggregate aggregate_impl(const zelf::Segment& text, const DisasmResult& linear,
                         AddrInsnMap code_insns, IntervalSet definite_code) {
  Aggregate out;
  out.code_insns = std::move(code_insns);
  out.definite_code = std::move(definite_code);

  // Everything in the text segment's file bytes that conclusive traversal
  // did not claim is Case 2/3: kept verbatim (data) AND decodable as code.
  const std::uint64_t lo = text.vaddr;
  const std::uint64_t hi = text.vaddr + text.bytes.size();
  out.ambiguous.insert(lo, hi);
  for (const auto& iv : out.definite_code.intervals()) out.ambiguous.erase(iv.begin, iv.end);

  // Count active disagreements: ambiguous ranges where linear sweep claims
  // decodable instructions (the paper's Case 3, engines disagree).
  for (const auto& iv : out.ambiguous.intervals()) {
    auto it = linear.insns.lower_bound(iv.begin);
    if (it != linear.insns.end() && it->first < iv.end) ++out.disagreements;
  }
  return out;
}

}  // namespace

Aggregate aggregate(const zelf::Segment& text, const DisasmResult& linear,
                    const TraversalResult& recursive) {
  return aggregate_impl(text, linear, recursive.dis.insns, recursive.dis.code);
}

Aggregate aggregate(const zelf::Segment& text, const DisasmResult& linear,
                    TraversalResult&& recursive) {
  return aggregate_impl(text, linear, std::move(recursive.dis.insns),
                        std::move(recursive.dis.code));
}

}  // namespace zipr::analysis
