#include "analysis/disasm.h"

#include <deque>

#include "support/log.h"

namespace zipr::analysis {

namespace {

/// Decode the instruction at `addr` out of the text segment. Fails past
/// the FILE-backed bytes (a text segment's memsize may exceed its file
/// size; the zero-filled tail holds no decodable content) or on an
/// invalid encoding.
Result<isa::Insn> decode_at(const zelf::Segment& text, std::uint64_t addr) {
  if (addr < text.vaddr) return Error::decode("address outside text");
  std::uint64_t off = addr - text.vaddr;
  if (off >= text.bytes.size()) return Error::decode("past end of text bytes");
  std::size_t avail = text.bytes.size() - static_cast<std::size_t>(off);
  std::size_t want = std::min<std::size_t>(isa::kMaxInsnLen, avail);
  return isa::decode(ByteView(text.bytes.data() + off, want));
}

/// True if `insn` carries an immediate that plausibly names a code address
/// (a materialized function pointer / label). lea's displacement is
/// PC-relative and is resolved by the caller.
bool immediate_names_code(const isa::Insn& insn, const zelf::Segment& text,
                          std::uint64_t* out_addr) {
  using isa::Op;
  switch (insn.op) {
    case Op::kMovI:
    case Op::kMovI64:
    case Op::kPushI: {
      auto v = static_cast<std::uint64_t>(insn.imm);
      if (v >= text.vaddr && v < text.end()) {
        *out_addr = v;
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

}  // namespace

DisasmResult linear_sweep(const zelf::Segment& text) {
  DisasmResult out;
  std::uint64_t addr = text.vaddr;
  const std::uint64_t end = text.vaddr + text.bytes.size();
  while (addr < end) {
    auto insn = decode_at(text, addr);
    if (!insn.ok()) {
      // Resynchronize one byte later, like objdump's ".byte" fallback.
      ++addr;
      continue;
    }
    out.insns.emplace(addr, *insn);
    out.code.insert(addr, addr + insn->length);
    addr += insn->length;
  }
  return out;
}

namespace {

/// Shared traversal state.
struct Traverser {
  const zelf::Image& image;
  const zelf::Segment& text;
  const TraversalOptions& opts;
  TraversalResult result;
  std::deque<std::uint64_t> worklist;

  explicit Traverser(const zelf::Image& img, const TraversalOptions& o)
      : image(img), text(img.text()), opts(o) {}

  bool claimed_at(std::uint64_t addr) const { return result.dis.insns.count(addr) != 0; }

  /// Validate a tentative code seed: walk the fallthrough chain from
  /// `seed`; accept only if every byte decodes and the run terminates at a
  /// non-fallthrough instruction or flows into already-claimed code. This
  /// is the Case-4 guard: data that merely looks address-like rarely
  /// decodes into a clean, properly-terminated run.
  bool validate_run(std::uint64_t seed) const {
    std::uint64_t addr = seed;
    for (int steps = 0; steps < 100000; ++steps) {
      if (claimed_at(addr)) return true;  // flows into known code
      if (result.dis.code.contains(addr)) return false;  // mid-insn overlap
      auto insn = decode_at(text, addr);
      if (!insn.ok()) return false;
      if (insn->has_static_target()) {
        std::uint64_t t = insn->target(addr);
        if (!text.contains(t)) return false;  // branch out of text
      }
      if (!insn->has_fallthrough()) return true;  // clean terminator
      addr += insn->length;
      if (addr >= text.vaddr + text.bytes.size()) {
        // Ran off the end. A trailing syscall is an idiomatic terminator
        // (terminate never returns); anything else is rejected.
        return insn->op == isa::Op::kSyscall;
      }
    }
    return false;
  }

  /// Claim one instruction; push its control-flow successors.
  void visit(std::uint64_t addr) {
    if (claimed_at(addr)) return;
    if (result.dis.code.contains(addr)) {
      // Overlaps a previously-claimed instruction at a different offset --
      // conflicting evidence; leave for the aggregator.
      ZIPR_WARN << "traversal: misaligned overlap at " << hex_addr(addr);
      return;
    }
    auto insn = decode_at(text, addr);
    if (!insn.ok()) {
      ZIPR_DEBUG << "traversal: undecodable at " << hex_addr(addr);
      return;
    }
    if (result.dis.code.overlaps(addr, addr + insn->length)) {
      ZIPR_WARN << "traversal: tail overlap at " << hex_addr(addr);
      return;
    }
    result.dis.insns.emplace(addr, *insn);
    result.dis.code.insert(addr, addr + insn->length);

    if (insn->has_fallthrough()) worklist.push_back(addr + insn->length);
    if (insn->has_static_target()) {
      std::uint64_t t = insn->target(addr);
      if (text.contains(t)) {
        worklist.push_back(t);
        if (insn->is_call()) result.function_entries.insert(t);
      }
    }
    if (insn->op == isa::Op::kJmpT) discover_jump_table(addr, *insn);

    std::uint64_t const_target = 0;
    if (immediate_names_code(*insn, text, &const_target)) {
      accept_indirect_target(const_target);
    }
    if (insn->op == isa::Op::kLea) {
      std::uint64_t ref = insn->pc_ref(addr);
      if (text.contains(ref)) accept_indirect_target(ref);
    }
  }

  /// Record a runtime-computable code address; validated seeds also become
  /// traversal roots (and function entries: address-taken code).
  void accept_indirect_target(std::uint64_t addr) {
    result.indirect_targets.insert(addr);
    if (claimed_at(addr)) {
      result.function_entries.insert(addr);
      return;
    }
    if (validate_run(addr)) {
      result.function_entries.insert(addr);
      worklist.push_back(addr);
    } else {
      result.rejected_seeds.insert(addr);
      ZIPR_WARN << "analysis: address-like constant " << hex_addr(addr)
                << " failed code validation; leaving bytes ambiguous";
    }
  }

  void discover_jump_table(std::uint64_t jmpt_addr, const isa::Insn& insn) {
    JumpTable table;
    table.jmpt_addr = jmpt_addr;
    table.table_addr = static_cast<std::uint64_t>(insn.imm);
    for (std::size_t i = 0; i < opts.max_jump_table_slots; ++i) {
      auto bytes = image.read_bytes(table.table_addr + 8 * i, 8);
      if (!bytes.ok()) break;
      std::uint64_t slot = get_u64(*bytes, 0);
      if (!text.contains(slot)) break;  // table terminator
      if (!claimed_at(slot) && !validate_run(slot)) break;
      table.slots.push_back(slot);
      result.indirect_targets.insert(slot);
      worklist.push_back(slot);
    }
    if (!table.slots.empty()) result.jump_tables.push_back(std::move(table));
  }

  void drain() {
    while (!worklist.empty()) {
      std::uint64_t addr = worklist.front();
      worklist.pop_front();
      visit(addr);
    }
  }

  void scan_data_segments() {
    for (const auto& seg : image.segments) {
      if (seg.kind == zelf::SegKind::kText || seg.bytes.empty()) continue;
      for (std::size_t off = 0; off + 8 <= seg.bytes.size(); off += 8) {
        std::uint64_t v = get_u64(seg.bytes, off);
        if (v >= text.vaddr && v < text.vaddr + text.bytes.size())
          accept_indirect_target(v);
        // Process discoveries eagerly so later words see updated claims.
        drain();
      }
    }
  }
};

}  // namespace

TraversalResult recursive_traversal(const zelf::Image& image, const TraversalOptions& opts) {
  Traverser t(image, opts);
  if (image.entry != 0) {
    t.worklist.push_back(image.entry);
    t.result.function_entries.insert(image.entry);
  }
  // Exported entry points are conclusive roots: the loader hands them to
  // other images, so they are both code and indirect branch targets.
  for (const auto& exp : image.exports) {
    t.worklist.push_back(exp.addr);
    t.result.function_entries.insert(exp.addr);
    t.result.indirect_targets.insert(exp.addr);
  }
  t.drain();
  if (opts.scan_data_for_pointers) {
    t.scan_data_segments();
    t.drain();
  }
  return std::move(t.result);
}

Aggregate aggregate(const zelf::Segment& text, const DisasmResult& linear,
                    const TraversalResult& recursive) {
  Aggregate out;
  out.code_insns = recursive.dis.insns;
  out.definite_code = recursive.dis.code;

  // Everything in the text segment's file bytes that conclusive traversal
  // did not claim is Case 2/3: kept verbatim (data) AND decodable as code.
  const std::uint64_t lo = text.vaddr;
  const std::uint64_t hi = text.vaddr + text.bytes.size();
  out.ambiguous.insert(lo, hi);
  for (const auto& iv : out.definite_code.intervals()) out.ambiguous.erase(iv.begin, iv.end);

  // Count active disagreements: ambiguous ranges where linear sweep claims
  // decodable instructions (the paper's Case 3, engines disagree).
  for (const auto& iv : out.ambiguous.intervals()) {
    bool linear_claims = false;
    for (auto it = linear.insns.lower_bound(iv.begin);
         it != linear.insns.end() && it->first < iv.end; ++it) {
      linear_claims = true;
      break;
    }
    if (linear_claims) ++out.disagreements;
  }
  return out;
}

}  // namespace zipr::analysis
