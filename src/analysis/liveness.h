// Backward register + flag liveness over the CFG, plus the conservative
// forward flag walk it generalizes.
//
// The coverage transform's original flag analysis -- a forward DFS from a
// block entry that reports "live" if any path reaches a jcc before a
// flag-writing instruction -- lives here now (`flags_live_at`), kept
// bit-for-bit as the regression baseline and as the prune-off code path.
//
// The precise pass (`Liveness`) is a classic backward dataflow fixpoint
// over `Cfg` blocks with a 9-bit lattice: one bit per general-purpose
// register plus one for the condition flags. Conservatism:
//
//   * UNKNOWN and opaque (verbatim) blocks demand everything live;
//   * flags are dropped on edges leaving ret/callr/jmpr/jmpt -- the
//     documented VLX ABI assumption (flags dead across indirect
//     transfers and returns) that CFI and the canary transform already
//     rely on;
//   * syscalls read r0-r3 and define r0; kInvalid rows read everything.
//
// One flag bit suffices even though the VM keeps zf/slt/ult separately:
// ALU ops rewrite exactly zf/slt, and every instruction a coverage stub
// can emit either writes no flags or writes only zf/slt, so the bits a
// stub can clobber are precisely the bits an ALU "kill" redefines.
#pragma once

#include "analysis/cfg.h"

namespace zipr::analysis {

/// True for instructions that (re)define condition flags. ALU ops write
/// zf/slt; cmp/cmpi/test write all flag bits.
bool writes_flags(isa::Op op);

/// The historical conservative answer: true if condition flags may be
/// LIVE at the entry of `start`'s block, via a forward walk over logical
/// successors that reports live on anything it cannot see (verbatim
/// rows, targets kept inside original text) or when the walk explodes
/// past 256 rows. `text_end` is the original text segment's end; control
/// flow modeled as running off it can only fault, so flags are dead there.
bool flags_live_at(const irdb::Database& db, irdb::InsnId start, std::uint64_t text_end);

/// Liveness bit positions: bits 0..7 are r0..r7, bit 8 is the flags.
inline constexpr std::uint16_t kLiveFlagBit = 1u << isa::kNumRegs;
inline constexpr std::uint16_t kAllLive = (1u << (isa::kNumRegs + 1)) - 1;

inline constexpr bool reg_live(std::uint16_t set, int r) { return (set >> r) & 1; }
inline constexpr bool flags_live(std::uint16_t set) { return (set & kLiveFlagBit) != 0; }

/// May-use / must-define sets of one instruction.
struct InsnEffects {
  std::uint16_t use = 0;
  std::uint16_t def = 0;
};
InsnEffects effects_of(const isa::Insn& in);

class Liveness {
 public:
  static Liveness compute(const IrProgram& prog, const Cfg& cfg);

  std::uint16_t live_in(BlockId b) const { return in_[b]; }
  std::uint16_t live_out(BlockId b) const { return out_[b]; }

  /// Live set immediately before the `index`-th row of block `b`
  /// (index == insns.size() gives live_out). Recomputed by a backward
  /// scan; cheap for the short blocks this ISA produces.
  std::uint16_t live_before(BlockId b, std::size_t index) const;

 private:
  const irdb::Database* db_ = nullptr;
  const Cfg* cfg_ = nullptr;
  std::vector<std::uint16_t> in_, out_;
};

}  // namespace zipr::analysis
