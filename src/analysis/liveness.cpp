#include "analysis/liveness.h"

#include <set>
#include <vector>

namespace zipr::analysis {

namespace {
using irdb::InsnId;
using isa::Insn;
using isa::Op;

constexpr std::uint16_t reg_bit(unsigned r) { return static_cast<std::uint16_t>(1u << r); }
constexpr std::uint16_t kSp = reg_bit(isa::kSpReg);
constexpr std::uint16_t kAllRegs = static_cast<std::uint16_t>((1u << isa::kNumRegs) - 1);
}  // namespace

bool writes_flags(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kMul: case Op::kDiv: case Op::kMod: case Op::kShl: case Op::kShr:
    case Op::kSar: case Op::kAddI: case Op::kSubI: case Op::kAndI: case Op::kOrI:
    case Op::kXorI: case Op::kShlI: case Op::kShrI: case Op::kCmp: case Op::kCmpI:
    case Op::kTest:
      return true;
    default:
      return false;
  }
}

bool flags_live_at(const irdb::Database& db, InsnId start, std::uint64_t text_end) {
  std::vector<InsnId> work{start};
  std::set<InsnId> seen;
  while (!work.empty()) {
    InsnId id = work.back();
    work.pop_back();
    if (id == irdb::kNullInsn || !seen.insert(id).second) continue;
    if (seen.size() > 256) return true;  // walk exploded: assume live
    const auto row = db.insn(id);
    if (row.verbatim) return true;  // opaque bytes: assume live
    const Insn& in = row.decoded;
    if (in.op == Op::kJcc) return true;   // consumer before any writer
    if (writes_flags(in.op)) continue;    // this path redefines flags first
    switch (in.op) {
      case Op::kRet: case Op::kCallR: case Op::kJmpR: case Op::kJmpT: case Op::kHlt:
        continue;  // flags dead across indirect transfers/returns (ABI)
      case Op::kJmp:
      case Op::kCall:
        // Follow the target (for calls, flags flow into the callee).
        if (row.target != irdb::kNullInsn)
          work.push_back(row.target);
        else if (row.abs_target && *row.abs_target >= text_end)
          continue;  // runs off text end: faults, flags cannot matter
        else
          return true;  // target kept inside original text: cannot see it
        continue;
      default:
        break;
    }
    if (row.fallthrough != irdb::kNullInsn) work.push_back(row.fallthrough);
  }
  return false;
}

InsnEffects effects_of(const Insn& in) {
  InsnEffects e;
  const std::uint16_t ra = reg_bit(in.ra), rb = reg_bit(in.rb);
  switch (in.op) {
    case Op::kNop: case Op::kHlt: case Op::kJmp:
      break;
    case Op::kSyscall:
      e.use = reg_bit(0) | reg_bit(1) | reg_bit(2) | reg_bit(3);
      e.def = reg_bit(0);
      break;
    case Op::kJcc:
      e.use = kLiveFlagBit;
      break;
    case Op::kCall: case Op::kRet:
      e.use = kSp;
      e.def = kSp;
      break;
    case Op::kCallR:
      e.use = ra | kSp;
      e.def = kSp;
      break;
    case Op::kJmpR: case Op::kJmpT:
      e.use = ra;
      break;
    case Op::kPush:
      e.use = ra | kSp;
      e.def = kSp;
      break;
    case Op::kPushI:
      e.use = kSp;
      e.def = kSp;
      break;
    case Op::kPop:
      e.use = kSp;
      e.def = ra | kSp;
      break;
    case Op::kMovI64: case Op::kMovI: case Op::kLea: case Op::kLoadPc:
      e.def = ra;
      break;
    case Op::kMov:
      e.use = rb;
      e.def = ra;
      break;
    case Op::kLoad: case Op::kLoad8:
      e.use = rb;
      e.def = ra;
      break;
    case Op::kStore: case Op::kStore8:
      e.use = ra | rb;
      break;
    case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kMul: case Op::kDiv: case Op::kMod: case Op::kShl: case Op::kShr:
    case Op::kSar:
      e.use = ra | rb;
      e.def = ra | kLiveFlagBit;
      break;
    case Op::kAddI: case Op::kSubI: case Op::kAndI: case Op::kOrI: case Op::kXorI:
    case Op::kShlI: case Op::kShrI:
      e.use = ra;
      e.def = ra | kLiveFlagBit;
      break;
    case Op::kCmp: case Op::kTest:
      e.use = ra | rb;
      e.def = kLiveFlagBit;
      break;
    case Op::kCmpI:
      e.use = ra;
      e.def = kLiveFlagBit;
      break;
    case Op::kInvalid:
      e.use = kAllRegs | kLiveFlagBit;  // faulting row: stay conservative
      break;
  }
  return e;
}

namespace {

/// Does `b`'s terminator drop flags on its outgoing edges? (The ABI
/// assumption: flags are dead across indirect transfers and returns.)
bool edge_kills_flags(const irdb::Database& db, const BasicBlock& b) {
  if (b.insns.empty()) return false;
  switch (db.insn(b.insns.back()).decoded.op) {
    case Op::kRet: case Op::kCallR: case Op::kJmpR: case Op::kJmpT:
      return true;
    default:
      return false;
  }
}

std::uint16_t transfer(const irdb::Database& db, const BasicBlock& b, std::uint16_t live,
                       std::size_t down_to) {
  for (std::size_t i = b.insns.size(); i-- > down_to;) {
    const auto row = db.insn(b.insns[i]);
    if (row.verbatim) {
      live = kAllLive;
      continue;
    }
    InsnEffects e = effects_of(row.decoded);
    live = static_cast<std::uint16_t>((live & ~e.def) | e.use);
  }
  return live;
}

}  // namespace

Liveness Liveness::compute(const IrProgram& prog, const Cfg& cfg) {
  Liveness lv;
  lv.db_ = &prog.db;
  lv.cfg_ = &cfg;
  const std::size_t n = cfg.size();
  lv.in_.assign(n, 0);
  lv.out_.assign(n, 0);
  lv.in_[Cfg::kUnknown] = kAllLive;  // code we cannot see may read anything

  // Backward fixpoint; post-order (reverse of RPO) converges fastest but
  // correctness only needs iteration to stability over all blocks.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = n; i-- > 0;) {
      const BlockId b = static_cast<BlockId>(i);
      const BasicBlock& blk = cfg.block(b);
      if (blk.is_virtual) continue;
      std::uint16_t out = 0;
      for (BlockId s : blk.succs) out |= lv.in_[s];
      if (edge_kills_flags(prog.db, blk))
        out = static_cast<std::uint16_t>(out & ~kLiveFlagBit);
      std::uint16_t in = blk.opaque ? kAllLive : transfer(prog.db, blk, out, 0);
      if (out != lv.out_[b] || in != lv.in_[b]) {
        lv.out_[b] = out;
        lv.in_[b] = in;
        changed = true;
      }
    }
  }
  return lv;
}

std::uint16_t Liveness::live_before(BlockId b, std::size_t index) const {
  // out_ already has the terminator's edge flag-kill applied.
  return transfer(*db_, cfg_->block(b), out_[b], index);
}

}  // namespace zipr::analysis
