#include "analysis/pinning.h"

#include "support/log.h"

namespace zipr::analysis {

namespace {

/// Decode every instruction embedded in a verbatim range (best effort,
/// resynchronizing on failure like linear sweep) and report the addresses
/// its control transfers can reach outside the range, plus whether
/// execution can fall off the end.
void verbatim_range_targets(const zelf::Segment& text, const Interval& range,
                            std::set<std::uint64_t>* out_targets, bool* out_falls_off_end) {
  *out_falls_off_end = false;
  std::uint64_t addr = range.begin;
  while (addr < range.end) {
    std::uint64_t off = addr - text.vaddr;
    // A range may extend into the zero-filled memsize tail of the segment
    // (memsize > filesize images): no file bytes exist there to decode, and
    // `bytes.size() - off` would underflow into a huge bogus span.
    if (off >= text.bytes.size()) break;
    std::size_t avail = static_cast<std::size_t>(
        std::min<std::uint64_t>(range.end - addr, text.bytes.size() - off));
    isa::Insn insn;
    if (!isa::decode_at(ByteView(text.bytes.data() + off, avail), insn)) {
      ++addr;
      continue;
    }
    if (insn.has_static_target()) {
      std::uint64_t t = insn.target(addr);
      if (!range.contains(t) && text.contains(t)) out_targets->insert(t);
    }
    addr += insn.length;
    if (addr >= range.end && insn.has_fallthrough()) *out_falls_off_end = true;
  }
}

}  // namespace

PinSet compute_pins(const zelf::Image& image, const Aggregate& agg,
                    const TraversalResult& recursive, const PinningOptions& opts) {
  PinSet out;
  const zelf::Segment& text = image.text();

  // Route one candidate address into pins / covered / dropped.
  auto add_pin = [&](std::uint64_t addr, std::uint32_t reason) {
    if (agg.code_insns.count(addr)) {
      out.pins[addr] |= reason;
      return;
    }
    if (agg.ambiguous.contains(addr)) {
      out.covered_by_verbatim.insert(addr);
      return;
    }
    out.dropped.insert(addr);
    ZIPR_WARN << "pinning: candidate " << hex_addr(addr)
              << " is neither an instruction start nor verbatim; dropping";
  };

  if (image.entry != 0) add_pin(image.entry, kPinEntry);
  for (const auto& exp : image.exports) add_pin(exp.addr, kPinExport);

  for (const auto& table : recursive.jump_tables)
    for (std::uint64_t slot : table.slots) add_pin(slot, kPinJumpTable);

  // indirect_targets covers code constants from both code immediates and
  // data words; distinguishing the source is not needed for correctness,
  // so tag them all as code/data constants.
  for (std::uint64_t t : recursive.indirect_targets) {
    bool in_table = false;
    for (const auto& table : recursive.jump_tables) {
      for (std::uint64_t slot : table.slots)
        if (slot == t) {
          in_table = true;
          break;
        }
      if (in_table) break;
    }
    if (!in_table) add_pin(t, kPinCodeConst);
  }

  // Verbatim ranges execute in place: pin everything they can reach, and
  // the address just past any range execution can fall out of.
  for (const auto& range : agg.ambiguous.intervals()) {
    std::set<std::uint64_t> targets;
    bool falls = false;
    verbatim_range_targets(text, range, &targets, &falls);
    for (std::uint64_t t : targets) add_pin(t, kPinVerbatimTarget);
    if (falls && text.contains(range.end)) add_pin(range.end, kPinVerbatimFall);
  }

  if (opts.pin_call_returns) {
    for (const auto& [addr, insn] : agg.code_insns)
      if (insn.is_call()) add_pin(addr + insn.length, kPinCallReturn);
  }

  // Ablation pins (naive / extra) are not real IBTs, so B remains a subset
  // of P if we skip any that would be awkward to reference: artificial
  // pins only go where an unconstrained 5-byte reference fits (at least 5
  // bytes from any neighbouring pin or verbatim range), never forcing
  // sleds or chains that exist to serve real indirect targets.
  auto artificial_pin_ok = [&](std::uint64_t addr, const isa::Insn& insn) {
    (void)insn;
    auto it = out.pins.lower_bound(addr);
    if (it != out.pins.end() && it->first - addr < 5) return false;
    if (it != out.pins.begin() && addr - std::prev(it)->first < 5) return false;
    if (agg.ambiguous.overlaps(addr, addr + 5)) return false;
    return true;
  };

  if (opts.naive_pin_all) {
    for (const auto& [addr, insn] : agg.code_insns)
      if (artificial_pin_ok(addr, insn)) add_pin(addr, kPinNaive);
  } else if (opts.extra_pin_fraction > 0.0) {
    Rng rng(opts.extra_pin_seed);
    const auto den = 1000000ull;
    const auto num = static_cast<std::uint64_t>(opts.extra_pin_fraction * 1000000.0);
    for (const auto& [addr, insn] : agg.code_insns)
      if (rng.chance(num, den) && artificial_pin_ok(addr, insn)) add_pin(addr, kPinExtra);
  }

  return out;
}

}  // namespace zipr::analysis
