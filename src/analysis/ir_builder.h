// IR Construction (paper Sec. II-A): disassemble, aggregate, pin, and
// populate the IRDB with logically-linked instructions.
//
// The "mandatory transformations" of Sec. II-B1 -- converting PC-relative
// relationships into layout-independent logical links -- are performed
// here while original addresses are still known:
//   * branch targets become row ids (or absolute original addresses when
//     the target stays fixed in a verbatim range);
//   * fallthroughs become row ids, with synthetic jumps materialized where
//     execution would flow into bytes that remain at original addresses;
//   * PC-relative data references (lea/loadpc) become absolute `data_ref`
//     links (data keeps its original addresses after rewriting).
// transform::verify_mandatory() checks these invariants hold before
// reassembly.
#pragma once

#include "analysis/disasm.h"
#include "analysis/pinning.h"
#include "irdb/ir.h"

namespace zipr::analysis {

struct AnalysisOptions {
  TraversalOptions traversal;
  PinningOptions pinning;
};

struct AnalysisStats {
  std::size_t code_insns = 0;       ///< relocatable instructions lifted
  std::size_t synthetic_jumps = 0;  ///< jumps added for fallthrough-to-fixed
  std::size_t verbatim_ranges = 0;
  std::size_t verbatim_bytes = 0;
  std::size_t pins = 0;             ///< pins requiring references
  std::size_t pins_covered = 0;     ///< pins satisfied by verbatim bytes
  std::size_t pins_dropped = 0;
  std::size_t functions = 0;
  std::size_t jump_tables = 0;
  std::size_t disagreements = 0;    ///< Case-3 engine disagreements
};

/// The rewriter's working representation of one program.
struct IrProgram {
  irdb::Database db;
  zelf::Image original;

  /// Verbatim (Case 2/3) byte ranges and the row holding each one's bytes.
  std::vector<std::pair<Interval, irdb::InsnId>> verbatim;

  std::map<std::uint64_t, std::uint32_t> pin_reasons;  ///< addr -> PinReason mask

  /// Indirect-branch-target candidates satisfied implicitly because they
  /// lie inside verbatim ranges (consumed by CFI's valid-target set).
  std::set<std::uint64_t> verbatim_ibts;

  std::vector<JumpTable> jump_tables;
  AnalysisStats stats;
};

/// Run the full IR Construction phase on a binary image. `jobs` bounds
/// intra-phase parallelism (the linear-sweep engine); it NEVER affects the
/// resulting IR, so it is an execution knob, not an analysis option.
/// `scratch` likewise: if given, the phase's large transient tables borrow
/// the scratch buffers' capacity and return it (grown) on success, so a
/// long-lived worker stops re-faulting them every rewrite. Each buffer is
/// fully re-initialized here -- scratch NEVER affects the resulting IR.
Result<IrProgram> build_ir(const zelf::Image& image, const AnalysisOptions& opts = {},
                           int jobs = 1, AnalysisScratch* scratch = nullptr);

}  // namespace zipr::analysis
