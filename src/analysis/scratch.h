// Recyclable scratch buffers for one IR-construction pass.
//
// A cold rewrite of a multi-MB binary builds several text-proportional
// tables that die with the pass: the linear sweep's claim vector, the
// traversal's per-byte state bitmap and sorted claim table, and the IR
// builder's dense offset->row map plus function-grouping marks. On a
// long-lived serve/batch worker those allocations (and their page faults)
// repeat for every request. AnalysisScratch owns the backing buffers so a
// worker can hand the SAME storage to successive rewrites: build_ir()
// borrows each buffer by move, sizes it for the current input (capacity
// retained), and moves it back before returning.
//
// Not thread-safe; one scratch belongs to at most one rewrite at a time
// (see zipr::RewriteWorkspace for pooling). Never affects output bytes:
// every buffer is fully re-initialized for each use.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/disasm.h"
#include "irdb/ir.h"

namespace zipr::analysis {

struct AnalysisScratch {
  /// Linear sweep's decode stream (build_ir reclaims it from the sweep's
  /// AddrInsnMap once the aggregate no longer needs it).
  std::vector<AddrInsnMap::value_type> sweep_claims;
  /// Recursive traversal's sorted claim table (reclaimed the same way).
  std::vector<AddrInsnMap::value_type> code_claims;
  /// Traversal per-text-byte claim/coverage bitmap.
  std::vector<std::uint8_t> byte_state;
  /// IR builder's dense text-offset -> row-id map.
  std::vector<irdb::InsnId> row_at;
  /// IR builder's function-entry row marks + BFS worklist.
  std::vector<bool> entry_rows;
  std::vector<irdb::InsnId> work;
  /// Recursive traversal's pending-address queue.
  std::vector<std::uint64_t> traversal_work;
  /// IR builder's per-function member staging (copied into the database
  /// with one exact-size allocation per function).
  std::vector<irdb::InsnId> function_members;

  /// Bytes the buffers currently HOLD (capacity): what recycling pins.
  std::size_t retained_bytes() const {
    return sweep_claims.capacity() * sizeof(AddrInsnMap::value_type) +
           code_claims.capacity() * sizeof(AddrInsnMap::value_type) +
           byte_state.capacity() * sizeof(std::uint8_t) +
           row_at.capacity() * sizeof(irdb::InsnId) + entry_rows.capacity() / 8 +
           work.capacity() * sizeof(irdb::InsnId) +
           traversal_work.capacity() * sizeof(std::uint64_t) +
           function_members.capacity() * sizeof(irdb::InsnId);
  }

  /// Bytes the LAST pass actually needed (sizes): the demand signal the
  /// workspace trim policy compares retained capacity against.
  std::size_t used_bytes() const {
    return sweep_claims.size() * sizeof(AddrInsnMap::value_type) +
           code_claims.size() * sizeof(AddrInsnMap::value_type) +
           byte_state.size() * sizeof(std::uint8_t) +
           row_at.size() * sizeof(irdb::InsnId) + entry_rows.size() / 8 +
           work.size() * sizeof(irdb::InsnId) +
           traversal_work.size() * sizeof(std::uint64_t) +
           function_members.size() * sizeof(irdb::InsnId);
  }

  /// Release every buffer (capacity included). The next pass re-reserves
  /// to its actual need, so trimming after an oversized input costs one
  /// round of fresh allocations, not correctness.
  void trim() {
    sweep_claims = {};
    code_claims = {};
    byte_state = {};
    row_at = {};
    entry_rows = {};
    work = {};
    traversal_work = {};
    function_members = {};
  }
};

}  // namespace zipr::analysis
