// Basic-block CFG, dominator/post-dominator trees over the IRDB.
//
// Shared infrastructure for CFG-aware transforms (selective coverage
// instrumentation today; CFI precision and compare-splitting later).
// Blocks are discovered from the IRDB's logical links with the same
// leader rule the coverage transform uses -- static branch targets, jcc
// fallthroughs, function entries and pinned addresses -- plus call
// continuations, so calls can carry interprocedural edges.
//
// The graph is a conservative over-approximation of runtime control
// flow. Three virtual nodes close it:
//
//   * ENTRY precedes the program entry point;
//   * EXIT succeeds halts, run-off-text jumps and possibly-terminating
//     syscalls (a `movi r0, K` peephole right before a syscall resolves
//     the number; only terminate -- or an unknown number -- gets an
//     EXIT edge);
//   * UNKNOWN absorbs indirect transfers we cannot resolve (jmpr,
//     callr, jmpt without table metadata, rets of address-taken
//     functions, branches into verbatim bytes) and fans back out to
//     every pinned block and every call continuation. Pinned blocks
//     therefore keep an un-analyzable predecessor whenever any
//     indirect flow exists -- exactly the conservative fallback the
//     instrumentation pruner needs.
//
// Dominators/post-dominators use the Cooper-Harvey-Kennedy iterative
// algorithm over reverse postorder; unreachable blocks get no idom and
// are excluded from any client optimization.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/ir_builder.h"

namespace zipr::analysis {

using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = static_cast<BlockId>(-1);

struct BasicBlock {
  irdb::InsnId leader = irdb::kNullInsn;  ///< first row; null for virtual nodes
  std::vector<irdb::InsnId> insns;        ///< rows in fallthrough order
  std::vector<BlockId> succs;
  std::vector<BlockId> preds;
  bool is_virtual = false;   ///< ENTRY / EXIT / UNKNOWN
  bool opaque = false;       ///< contains verbatim rows: contents unknown
  bool pinned = false;       ///< leader is an indirectly-targetable pin
  bool probe_site = false;   ///< leader under the coverage transform's rule
  bool may_exit = false;     ///< contains a possibly-terminating syscall
  /// First row index within `insns` holding a call/callr/syscall, or
  /// insns.size() if none: past it, straight-line execution of the rest
  /// of the block is no longer guaranteed (the callee may terminate).
  std::size_t first_unsafe = 0;
};

class Cfg {
 public:
  /// Build the CFG for a lifted program. Never fails: anything that
  /// cannot be modeled precisely degrades to UNKNOWN/EXIT edges.
  static Cfg build(const IrProgram& prog);

  static constexpr BlockId kEntry = 0;
  static constexpr BlockId kExit = 1;
  static constexpr BlockId kUnknown = 2;

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const BasicBlock& block(BlockId b) const { return blocks_[b]; }
  std::size_t size() const { return blocks_.size(); }

  /// Block containing `id`, or kNoBlock (virtual nodes, unreachable
  /// rows never claimed by a leader chain, verbatim-only rows).
  BlockId block_of(irdb::InsnId id) const;

  /// Immediate (post)dominators; kNoBlock when unreachable from
  /// ENTRY (resp. when EXIT is unreachable from the block).
  const std::vector<BlockId>& idom() const { return idom_; }
  const std::vector<BlockId>& ipdom() const { return ipdom_; }

  /// Reflexive dominance queries; false when either side is
  /// unreachable (clients must stay conservative there).
  bool dominates(BlockId a, BlockId b) const;
  bool postdominates(BlockId a, BlockId b) const;

  /// Reverse postorder over forward edges from ENTRY (reachable
  /// blocks only) -- the canonical iteration order for dataflow.
  const std::vector<BlockId>& rpo() const { return rpo_; }

 private:
  std::vector<BasicBlock> blocks_;
  std::unordered_map<irdb::InsnId, BlockId> row_block_;
  std::vector<BlockId> idom_, ipdom_;
  std::vector<BlockId> rpo_;

  void add_edge(BlockId from, BlockId to);
  void compute_dominators();
};

}  // namespace zipr::analysis
