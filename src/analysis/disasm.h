// Disassembly engines and their conservative aggregation (paper Sec. II-A1).
//
// The paper aggregates the output of multiple disassemblers (objdump + IDA
// Pro) so each tool's strengths compensate for the others' weaknesses. We
// reproduce that architecture with two engines with different failure
// modes:
//
//   * linear_sweep()        -- objdump-like: decodes the text segment
//     front-to-back. Strength: sees every byte. Weakness: embedded data
//     desynchronizes it and data bytes often decode as plausible code.
//
//   * recursive_traversal() -- IDA-like: follows control flow from the
//     entry point, discovering call targets, jump tables, and code
//     addresses materialized as immediates. Strength: everything it claims
//     is reachable, hence conclusively code. Weakness: misses code only
//     reachable through pointers it cannot model.
//
// aggregate() combines them into the paper's four-outcome scheme:
//   Case 1  both engines agree a range is code (recursive reached it)  ->
//           definite code, free to relocate;
//   Case 2  conclusively data (recursive never reached it; linear sweep
//           cannot decode it cleanly)                                   ->
//           kept verbatim at its original address AND decoded as code
//           for CFG/pinning purposes;
//   Case 3  ambiguous (engines disagree: linear sweep decodes it but
//           nothing conclusive reaches it)                              ->
//           treated exactly like Case 2 (both code and data);
//   Case 4  (mislabeling data as conclusive code) is avoided by only
//           letting *validated* traversal claim bytes; tentative seeds
//           whose decode runs fail validation stay in Case 3.
#pragma once

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>
#include <vector>

#include "isa/insn.h"
#include "support/interval.h"
#include "support/status.h"
#include "zelf/image.h"

namespace zipr::analysis {

/// Sorted flat (address -> decoded instruction) table. Exposes the subset
/// of the std::map interface the pipeline uses -- count/find/lower_bound/
/// ranged iteration over pairs -- but stores one contiguous vector, so
/// building a 20k-instruction table is a handful of allocations instead
/// of 20k node allocations, and iteration streams linearly.
class AddrInsnMap {
 public:
  using value_type = std::pair<std::uint64_t, isa::Insn>;
  using const_iterator = std::vector<value_type>::const_iterator;

  /// Append an entry with an address greater than every existing one
  /// (engines discover code in ascending order or sort before adoption).
  void append(std::uint64_t addr, const isa::Insn& insn) {
    v_.emplace_back(addr, insn);
  }

  /// Take ownership of unsorted (addr, insn) claims; sorts by address.
  /// Addresses must be unique (one claim per address).
  void adopt_unsorted(std::vector<value_type> v) {
    v_ = std::move(v);
    std::sort(v_.begin(), v_.end(),
              [](const value_type& a, const value_type& b) { return a.first < b.first; });
  }

  /// Take ownership of claims already in ascending address order (the
  /// linear sweep discovers them that way); skips the sort AND the
  /// element-wise copy a rebuild through append() would cost.
  void adopt_sorted(std::vector<value_type> v) {
    assert(std::is_sorted(v.begin(), v.end(),
                          [](const value_type& a, const value_type& b) { return a.first < b.first; }));
    v_ = std::move(v);
  }

  std::size_t count(std::uint64_t addr) const { return find(addr) ? 1 : 0; }
  const isa::Insn* find(std::uint64_t addr) const {
    auto it = lower_bound(addr);
    return (it != v_.end() && it->first == addr) ? &it->second : nullptr;
  }
  const_iterator lower_bound(std::uint64_t addr) const {
    return std::lower_bound(
        v_.begin(), v_.end(), addr,
        [](const value_type& p, std::uint64_t a) { return p.first < a; });
  }

  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }
  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  void reserve(std::size_t n) { v_.reserve(n); }

  /// Steal the backing vector (the map becomes empty). Lets a recycling
  /// caller reclaim the table's capacity once it is done with the entries.
  std::vector<value_type> release() { return std::move(v_); }

 private:
  std::vector<value_type> v_;
};

/// Output of one disassembly engine.
struct DisasmResult {
  /// Decoded instruction at each address the engine claims is code.
  AddrInsnMap insns;
  /// Byte ranges covered by claimed instructions.
  IntervalSet code;
};

/// A discovered jump table: `slots[i]` is the code address stored at
/// table_addr + 8*i in the original image.
struct JumpTable {
  std::uint64_t jmpt_addr = 0;   ///< address of the jmpt instruction
  std::uint64_t table_addr = 0;  ///< address of the first slot
  std::vector<std::uint64_t> slots;
};

struct AnalysisScratch;  // scratch.h; buffers recycled across rewrites

/// objdump-like engine. Decodes `text` sequentially; after an undecodable
/// byte it advances one byte and resynchronizes. `jobs` > 1 decodes fixed
/// chunks in parallel and stitches boundaries sequentially; because a
/// decode at a given address is independent of how the sweep arrived
/// there, the stitched result is EXACTLY the serial sweep's output.
///
/// `claims_scratch`, if given, donates its capacity to the decode stream
/// (the vector is moved out and left empty); reclaim it afterwards via
/// `result.insns.release()`. Never changes the result.
DisasmResult linear_sweep(const zelf::Segment& text, int jobs = 1,
                          std::vector<AddrInsnMap::value_type>* claims_scratch = nullptr);

struct TraversalResult {
  DisasmResult dis;
  std::set<std::uint64_t> function_entries;  ///< entry + call targets + fptrs
  std::vector<JumpTable> jump_tables;
  /// Code addresses discovered as immediates/table slots (indirect branch
  /// targets the rewriter must pin).
  std::set<std::uint64_t> indirect_targets;
  /// Tentative seeds that failed validation (left ambiguous).
  std::set<std::uint64_t> rejected_seeds;
};

struct TraversalOptions {
  std::size_t max_jump_table_slots = 4096;
  /// Scan rodata/data for 8-byte words that look like text addresses and
  /// treat them as tentative code seeds (validated before acceptance).
  bool scan_data_for_pointers = true;
};

/// IDA-like engine: follow control flow from the entry point to a fixpoint,
/// including jump-table and address-constant discovery.
///
/// `scratch`, if given, donates `byte_state` (returned on exit) and
/// `code_claims` (escapes into `result.dis.insns`; reclaim via release()
/// once the table is dead). Never changes the result.
TraversalResult recursive_traversal(const zelf::Image& image, const TraversalOptions& opts = {},
                                    AnalysisScratch* scratch = nullptr);

/// Aggregated classification of the text segment.
struct Aggregate {
  /// Authoritative decodes for relocatable (Case 1) code.
  AddrInsnMap code_insns;
  IntervalSet definite_code;
  /// Case 2/3 byte ranges: kept verbatim, also decoded for CFG purposes.
  IntervalSet ambiguous;
  /// Count of Case 3 decisions where the engines actively disagreed
  /// (linear sweep decoded bytes that nothing conclusive reaches).
  std::size_t disagreements = 0;
};

Aggregate aggregate(const zelf::Segment& text, const DisasmResult& linear,
                    const TraversalResult& recursive);

/// Move overload for the pipeline hot path: steals `recursive.dis` (a
/// multi-MB table on big binaries) instead of copying it. The traversal's
/// metadata fields -- function_entries, jump_tables, indirect_targets,
/// rejected_seeds -- are NOT consumed and stay valid for compute_pins and
/// function grouping.
Aggregate aggregate(const zelf::Segment& text, const DisasmResult& linear,
                    TraversalResult&& recursive);

}  // namespace zipr::analysis
