#include "analysis/ir_builder.h"

#include <deque>

#include "support/log.h"

namespace zipr::analysis {

using irdb::InsnId;
using irdb::kNullInsn;

namespace {

/// Instruction bytes as they appear in the original image.
Bytes original_bytes(const zelf::Segment& text, std::uint64_t addr, std::uint8_t len) {
  std::uint64_t off = addr - text.vaddr;
  return Bytes(text.bytes.begin() + static_cast<std::ptrdiff_t>(off),
               text.bytes.begin() + static_cast<std::ptrdiff_t>(off + len));
}

}  // namespace

Result<IrProgram> build_ir(const zelf::Image& image, const AnalysisOptions& opts) {
  ZIPR_TRY(image.validate());
  IrProgram prog;
  prog.original = image;
  // The rewriter must not depend on metadata: strip ground-truth symbols
  // from its working copy so accidental use is impossible.
  prog.original.symbols.clear();

  const zelf::Segment& text = image.text();
  DisasmResult linear = linear_sweep(text);
  TraversalResult recursive = recursive_traversal(image, opts.traversal);
  Aggregate agg = aggregate(text, linear, recursive);
  PinSet pins = compute_pins(image, agg, recursive, opts.pinning);

  // ---- lift definite code into rows ----
  std::map<std::uint64_t, InsnId> row_at;
  for (const auto& [addr, insn] : agg.code_insns) {
    irdb::Instruction row;
    row.decoded = insn;
    row.orig_addr = addr;
    row.orig_bytes = original_bytes(text, addr, insn.length);
    row_at[addr] = prog.db.add_instruction(std::move(row));
  }
  prog.stats.code_insns = row_at.size();

  // ---- link fallthroughs and targets (the mandatory transformation) ----
  // Synthetic jumps are appended when control flows from lifted code into
  // bytes that stay at original addresses.
  auto synthesize_jump_to = [&](std::uint64_t abs_addr, irdb::FuncId func) -> InsnId {
    irdb::Instruction j;
    j.decoded = isa::make_jmp(0, isa::BranchWidth::kRel32);
    j.abs_target = abs_addr;
    j.function = func;
    ++prog.stats.synthetic_jumps;
    return prog.db.add_instruction(std::move(j));
  };

  for (const auto& [addr, id] : row_at) {
    // Copy the decoded form: adding synthetic rows below may reallocate
    // the instruction table and invalidate references into it.
    const isa::Insn insn = prog.db.insn(id).decoded;

    if (insn.has_static_target()) {
      std::uint64_t t = insn.target(addr);
      auto it = row_at.find(t);
      if (it != row_at.end())
        prog.db.insn(id).target = it->second;
      else
        prog.db.insn(id).abs_target = t;  // stays at its original address
    }
    if (insn.is_pc_relative_data()) prog.db.insn(id).data_ref = insn.pc_ref(addr);

    if (insn.has_fallthrough()) {
      std::uint64_t next = addr + insn.length;
      auto it = row_at.find(next);
      if (it != row_at.end()) {
        prog.db.insn(id).fallthrough = it->second;
      } else {
        // Falls into verbatim bytes / past text end: jump to the original
        // address, reproducing in-place behaviour.
        InsnId j = synthesize_jump_to(next, irdb::kNullFunc);
        prog.db.insn(id).fallthrough = j;
      }
    }
  }

  // ---- verbatim rows for ambiguous ranges ----
  for (const auto& range : agg.ambiguous.intervals()) {
    irdb::Instruction row;
    row.verbatim = true;
    row.orig_addr = range.begin;
    row.orig_bytes = Bytes(text.bytes.begin() + static_cast<std::ptrdiff_t>(range.begin - text.vaddr),
                           text.bytes.begin() + static_cast<std::ptrdiff_t>(range.end - text.vaddr));
    InsnId id = prog.db.add_instruction(std::move(row));
    prog.verbatim.emplace_back(range, id);
    prog.stats.verbatim_bytes += range.size();
  }
  prog.stats.verbatim_ranges = prog.verbatim.size();

  // ---- record pins ----
  for (const auto& [addr, reasons] : pins.pins) {
    auto it = row_at.find(addr);
    if (it == row_at.end())
      return Error::internal("pin at " + hex_addr(addr) + " has no lifted row");
    ZIPR_TRY(prog.db.pin(addr, it->second));
    prog.pin_reasons[addr] = reasons;
  }
  prog.stats.pins = pins.pins.size();
  prog.stats.pins_covered = pins.covered_by_verbatim.size();
  prog.stats.pins_dropped = pins.dropped.size();
  prog.verbatim_ibts = pins.covered_by_verbatim;

  // ---- group rows into functions ----
  // Intra-procedural reachability from each entry: follow fallthrough and
  // branch links, but do not cross call edges into callees and do not run
  // through another function's entry (a fallthrough off one function's
  // final instruction into the next function's first is a layout accident,
  // not membership).
  std::set<InsnId> entry_rows;
  for (std::uint64_t entry : recursive.function_entries) {
    auto eit = row_at.find(entry);
    if (eit != row_at.end()) entry_rows.insert(eit->second);
  }
  for (std::uint64_t entry : recursive.function_entries) {
    auto eit = row_at.find(entry);
    if (eit == row_at.end()) continue;
    if (prog.db.insn(eit->second).function != irdb::kNullFunc) continue;

    irdb::Function f;
    f.name = "func_" + hex_addr(entry).substr(2);
    f.entry = eit->second;
    irdb::FuncId fid = prog.db.add_function(std::move(f));

    std::deque<InsnId> work{eit->second};
    while (!work.empty()) {
      InsnId id = work.front();
      work.pop_front();
      irdb::Instruction& row = prog.db.insn(id);
      if (row.function != irdb::kNullFunc) continue;
      if (id != eit->second && entry_rows.count(id)) continue;
      row.function = fid;
      prog.db.function(fid).members.push_back(id);
      if (row.fallthrough != kNullInsn) work.push_back(row.fallthrough);
      if (row.target != kNullInsn && !row.decoded.is_call()) work.push_back(row.target);
    }
  }
  prog.stats.functions = prog.db.function_count();

  prog.jump_tables = std::move(recursive.jump_tables);
  prog.stats.jump_tables = prog.jump_tables.size();
  prog.stats.disagreements = agg.disagreements;

  ZIPR_TRY(prog.db.validate());
  return prog;
}

}  // namespace zipr::analysis
