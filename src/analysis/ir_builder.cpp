#include "analysis/ir_builder.h"

#include "analysis/scratch.h"
#include "support/log.h"

namespace zipr::analysis {

using irdb::InsnId;
using irdb::kNullInsn;

Result<IrProgram> build_ir(const zelf::Image& image, const AnalysisOptions& opts, int jobs,
                           AnalysisScratch* scratch) {
  ZIPR_TRY(image.validate());
  IrProgram prog;
  prog.original = image;
  // The rewriter must not depend on metadata: strip ground-truth symbols
  // from its working copy so accidental use is impossible.
  prog.original.symbols.clear();

  const zelf::Segment& text = image.text();
  DisasmResult linear =
      linear_sweep(text, jobs, scratch ? &scratch->sweep_claims : nullptr);
  TraversalResult recursive = recursive_traversal(image, opts.traversal, scratch);
  // The move overload steals recursive.dis (the traversal metadata the
  // later stages read stays valid).
  Aggregate agg = aggregate(text, linear, std::move(recursive));
  PinSet pins = compute_pins(image, agg, recursive, opts.pinning);

  // The database references original bytes as views into one retained
  // copy of the text image -- rows carry (offset, length), not buffers.
  prog.db.set_backing(text.bytes, text.vaddr);
  prog.db.reserve_insns(agg.code_insns.size() + agg.code_insns.size() / 8 + 64);

  // ---- lift definite code into rows ----
  // row_at: text offset -> row id, a dense array instead of a tree (lookup
  // is one load; the text segment is at most a few MB).
  std::vector<InsnId> row_at;
  if (scratch) row_at = std::move(scratch->row_at);
  row_at.assign(text.bytes.size(), kNullInsn);
  auto row_at_addr = [&](std::uint64_t addr) -> InsnId {
    return (addr >= text.vaddr && addr - text.vaddr < row_at.size())
               ? row_at[addr - text.vaddr]
               : kNullInsn;
  };
  for (const auto& [addr, insn] : agg.code_insns)
    row_at[addr - text.vaddr] = prog.db.add_original(insn, addr);
  prog.stats.code_insns = agg.code_insns.size();

  // ---- link fallthroughs and targets (the mandatory transformation) ----
  // Synthetic jumps are appended when control flows from lifted code into
  // bytes that stay at original addresses.
  auto synthesize_jump_to = [&](std::uint64_t abs_addr, irdb::FuncId func) -> InsnId {
    irdb::Instruction j;
    j.decoded = isa::make_jmp(0, isa::BranchWidth::kRel32);
    j.abs_target = abs_addr;
    j.function = func;
    ++prog.stats.synthetic_jumps;
    return prog.db.add_instruction(std::move(j));
  };

  for (const auto& [addr, insn] : agg.code_insns) {
    // (`insn` is read from the aggregate, not the database: appending
    // synthetic rows below may reallocate the decoded column.)
    InsnId row_id = row_at[addr - text.vaddr];

    if (insn.has_static_target()) {
      std::uint64_t t = insn.target(addr);
      if (InsnId tid = row_at_addr(t); tid != kNullInsn)
        prog.db.insn(row_id).target = tid;
      else
        prog.db.insn(row_id).abs_target = t;  // stays at its original address
    }
    if (insn.is_pc_relative_data()) prog.db.insn(row_id).data_ref = insn.pc_ref(addr);

    if (insn.has_fallthrough()) {
      std::uint64_t next = addr + insn.length;
      if (InsnId nid = row_at_addr(next); nid != kNullInsn) {
        prog.db.insn(row_id).fallthrough = nid;
      } else {
        // Falls into verbatim bytes / past text end: jump to the original
        // address, reproducing in-place behaviour.
        InsnId j = synthesize_jump_to(next, irdb::kNullFunc);
        prog.db.insn(row_id).fallthrough = j;
      }
    }
  }

  // ---- verbatim rows for ambiguous ranges ----
  for (const auto& range : agg.ambiguous.intervals()) {
    InsnId id = prog.db.add_verbatim_range(range.begin,
                                           static_cast<std::uint32_t>(range.size()));
    prog.verbatim.emplace_back(range, id);
    prog.stats.verbatim_bytes += range.size();
  }
  prog.stats.verbatim_ranges = prog.verbatim.size();

  // ---- record pins ----
  for (const auto& [addr, reasons] : pins.pins) {
    InsnId id = row_at_addr(addr);
    if (id == kNullInsn)
      return Error::internal("pin at " + hex_addr(addr) + " has no lifted row");
    ZIPR_TRY(prog.db.pin(addr, id));
    prog.pin_reasons[addr] = reasons;
  }
  prog.stats.pins = pins.pins.size();
  prog.stats.pins_covered = pins.covered_by_verbatim.size();
  prog.stats.pins_dropped = pins.dropped.size();
  prog.verbatim_ibts = pins.covered_by_verbatim;

  // ---- group rows into functions ----
  // Intra-procedural reachability from each entry: follow fallthrough and
  // branch links, but do not cross call edges into callees and do not run
  // through another function's entry (a fallthrough off one function's
  // final instruction into the next function's first is a layout accident,
  // not membership).
  // Entry membership as a bitmap over row ids: the BFS below queries it
  // once per visited row, so a node-based set would be a cache miss per
  // instruction on big binaries.
  std::vector<bool> entry_rows;
  if (scratch) entry_rows = std::move(scratch->entry_rows);
  entry_rows.assign(prog.db.insn_count() + 1, false);
  for (std::uint64_t entry : recursive.function_entries) {
    if (InsnId id = row_at_addr(entry); id != kNullInsn) entry_rows[id] = true;
  }
  std::vector<InsnId> work;  // FIFO via head index (same order as a deque)
  std::vector<InsnId> members;  // staged, then copied in one exact-size alloc
  if (scratch) {
    work = std::move(scratch->work);
    work.clear();
    members = std::move(scratch->function_members);
  }
  for (std::uint64_t entry : recursive.function_entries) {
    InsnId entry_id = row_at_addr(entry);
    if (entry_id == kNullInsn) continue;
    if (prog.db.insn(entry_id).function != irdb::kNullFunc) continue;

    irdb::Function f;
    f.name = "func_" + hex_addr(entry).substr(2);
    f.entry = entry_id;
    irdb::FuncId fid = prog.db.add_function(std::move(f));

    work.clear();
    work.push_back(entry_id);
    // Members are staged in the recycled buffer and copied into the
    // database afterwards: one allocation sized to the function, instead
    // of a geometric push_back growth chain per function.
    members.clear();
    for (std::size_t head = 0; head < work.size(); ++head) {
      InsnId id = work[head];
      auto row = prog.db.insn(id);
      if (row.function != irdb::kNullFunc) continue;
      if (id != entry_id && entry_rows[id]) continue;
      row.function = fid;
      members.push_back(id);
      if (row.fallthrough != kNullInsn) work.push_back(row.fallthrough);
      if (row.target != kNullInsn && !row.decoded.is_call()) work.push_back(row.target);
    }
    prog.db.function(fid).members.assign(members.begin(), members.end());
  }
  prog.stats.functions = prog.db.function_count();

  prog.jump_tables = std::move(recursive.jump_tables);
  prog.stats.jump_tables = prog.jump_tables.size();
  prog.stats.disagreements = agg.disagreements;

  ZIPR_TRY(prog.db.validate());

  // Hand every borrowed buffer back (grown to this input's demand) so the
  // next rewrite through the same scratch starts warm. The engine tables
  // are dead at this point: the database copied what it keeps. On the
  // early error returns above the buffers simply die with their locals and
  // the scratch re-reserves next time -- a cost, never a correctness issue.
  if (scratch) {
    scratch->sweep_claims = linear.insns.release();
    scratch->code_claims = agg.code_insns.release();
    scratch->row_at = std::move(row_at);
    scratch->entry_rows = std::move(entry_rows);
    scratch->work = std::move(work);
    scratch->function_members = std::move(members);
  }
  return prog;
}

}  // namespace zipr::analysis
