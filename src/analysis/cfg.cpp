#include "analysis/cfg.h"

#include <algorithm>
#include <set>

namespace zipr::analysis {

namespace {

using irdb::InsnId;
using isa::Op;

bool is_terminator(Op op) {
  switch (op) {
    case Op::kJmp: case Op::kJcc: case Op::kCall: case Op::kCallR:
    case Op::kJmpR: case Op::kJmpT: case Op::kRet: case Op::kHlt:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Cfg::add_edge(BlockId from, BlockId to) {
  blocks_[from].succs.push_back(to);
  blocks_[to].preds.push_back(from);
}

BlockId Cfg::block_of(irdb::InsnId id) const {
  auto it = row_block_.find(id);
  return it == row_block_.end() ? kNoBlock : it->second;
}

Cfg Cfg::build(const IrProgram& prog) {
  Cfg cfg;
  const irdb::Database& db = prog.db;
  const std::uint64_t text_end = prog.original.text().end();

  // Virtual nodes first so their ids are the fixed constants.
  for (int i = 0; i < 3; ++i) {
    BasicBlock v;
    v.is_virtual = true;
    cfg.blocks_.push_back(std::move(v));
  }

  // ---- leaders ----
  // The probe-site set matches the coverage transform's historical rule
  // exactly; call continuations are CFG-only leaders (calls end blocks
  // here so they can carry interprocedural edges).
  std::set<InsnId> leaders;
  std::set<InsnId> probe_sites;
  std::set<InsnId> continuations;
  db.for_each_insn([&](const auto& row) {
    if (row.target != irdb::kNullInsn) {
      leaders.insert(row.target);
      probe_sites.insert(row.target);
    }
    if (row.decoded.op == Op::kJcc && row.fallthrough != irdb::kNullInsn) {
      leaders.insert(row.fallthrough);
      probe_sites.insert(row.fallthrough);
    }
    if ((row.decoded.op == Op::kCall || row.decoded.op == Op::kCallR) &&
        row.fallthrough != irdb::kNullInsn)
      leaders.insert(row.fallthrough);
  });
  db.for_each_function([&](const irdb::Function& func) {
    if (func.entry != irdb::kNullInsn) {
      leaders.insert(func.entry);
      probe_sites.insert(func.entry);
    }
  });
  std::set<InsnId> pinned_rows;
  for (const auto& [addr, id] : db.pins()) {
    leaders.insert(id);
    probe_sites.insert(id);
    pinned_rows.insert(id);
  }

  for (InsnId leader : leaders) {
    BasicBlock b;
    b.leader = leader;
    b.pinned = pinned_rows.count(leader) > 0;
    b.probe_site = probe_sites.count(leader) > 0;
    BlockId id = static_cast<BlockId>(cfg.blocks_.size());
    cfg.blocks_.push_back(std::move(b));
    cfg.row_block_.emplace(leader, id);
  }

  // ---- chain rows into blocks ----
  struct CallSite {
    InsnId callee_entry;  ///< null when the callee is unresolved
    BlockId cont;         ///< continuation block (kNoBlock if none)
  };
  std::vector<CallSite> call_sites;
  std::map<irdb::FuncId, std::vector<BlockId>> ret_blocks;

  auto leader_block = [&](InsnId row) -> BlockId {
    auto it = cfg.row_block_.find(row);
    return it == cfg.row_block_.end() ? kUnknown : it->second;
  };
  // Static-target edge: a lifted row, a fixed original address (off-text
  // ends the program; inside text it enters verbatim bytes), or opaque.
  auto target_edge = [&](const auto& row) -> BlockId {
    if (row.target != irdb::kNullInsn) return leader_block(row.target);
    if (row.abs_target && *row.abs_target >= text_end) return kExit;
    return kUnknown;
  };

  for (BlockId bid = 3; bid < static_cast<BlockId>(cfg.blocks_.size()); ++bid) {
    BasicBlock& b = cfg.blocks_[bid];
    InsnId cur = b.leader;
    bool have_unsafe = false;
    while (cur != irdb::kNullInsn) {
      const auto row = db.insn(cur);
      if (cur != b.leader && leaders.count(cur)) break;  // next block starts
      b.insns.push_back(cur);
      if (cur != b.leader) cfg.row_block_.emplace(cur, bid);
      const Op op = row.decoded.op;
      if (!have_unsafe &&
          (op == Op::kCall || op == Op::kCallR || op == Op::kSyscall || row.verbatim)) {
        b.first_unsafe = b.insns.size() - 1;
        have_unsafe = true;
      }
      if (row.verbatim) {
        b.opaque = true;
        break;
      }
      if (op == Op::kSyscall) {
        // Peephole: `movi r0, K` directly before resolves the number.
        std::int64_t num = -1;
        if (b.insns.size() >= 2) {
          const auto prev = db.insn(b.insns[b.insns.size() - 2]);
          if ((prev.decoded.op == Op::kMovI || prev.decoded.op == Op::kMovI64) &&
              prev.decoded.ra == 0)
            num = prev.decoded.imm;
        }
        if (num == 1) {  // terminate: never falls through
          b.may_exit = true;
          break;
        }
        if (num < 0) b.may_exit = true;  // unknown number: may terminate
      }
      if (is_terminator(op)) break;
      cur = row.fallthrough;
      if (cur == irdb::kNullInsn) break;
    }
    if (!have_unsafe) b.first_unsafe = b.insns.size();
  }

  // ---- edges ----
  for (BlockId bid = 3; bid < static_cast<BlockId>(cfg.blocks_.size()); ++bid) {
    BasicBlock& b = cfg.blocks_[bid];
    if (b.insns.empty()) {
      cfg.add_edge(bid, kUnknown);
      continue;
    }
    if (b.opaque) {
      cfg.add_edge(bid, kUnknown);
      continue;
    }
    if (b.may_exit) cfg.add_edge(bid, kExit);
    const auto last = db.insn(b.insns.back());
    const Op op = last.decoded.op;
    switch (op) {
      case Op::kJmp:
        cfg.add_edge(bid, target_edge(last));
        break;
      case Op::kJcc:
        cfg.add_edge(bid, target_edge(last));
        cfg.add_edge(bid, last.fallthrough != irdb::kNullInsn ? leader_block(last.fallthrough)
                                                              : kExit);
        break;
      case Op::kCall:
      case Op::kCallR: {
        BlockId callee = op == Op::kCall ? target_edge(last) : kUnknown;
        cfg.add_edge(bid, callee);
        BlockId cont = last.fallthrough != irdb::kNullInsn ? leader_block(last.fallthrough)
                                                           : kNoBlock;
        InsnId callee_entry =
            op == Op::kCall && last.target != irdb::kNullInsn ? last.target : irdb::kNullInsn;
        call_sites.push_back({callee_entry, cont});
        break;
      }
      case Op::kJmpR:
      case Op::kJmpT:
        cfg.add_edge(bid, kUnknown);
        break;
      case Op::kRet:
        ret_blocks[last.function].push_back(bid);
        break;
      case Op::kHlt:
        cfg.add_edge(bid, kExit);
        break;
      case Op::kSyscall: {
        // Chain building only breaks on a syscall when the peephole
        // resolved it to `terminate` -- which never falls through. (The
        // EXIT edge was added above via may_exit.)
        bool resolved_terminate = false;
        if (b.insns.size() >= 2) {
          const auto prev = db.insn(b.insns[b.insns.size() - 2]);
          resolved_terminate = (prev.decoded.op == Op::kMovI || prev.decoded.op == Op::kMovI64) &&
                               prev.decoded.ra == 0 && prev.decoded.imm == 1;
        }
        if (!resolved_terminate)
          cfg.add_edge(bid, last.fallthrough != irdb::kNullInsn ? leader_block(last.fallthrough)
                                                                : kExit);
        break;
      }
      default:
        // Fell off at a leader boundary or a null fallthrough.
        cfg.add_edge(bid, last.fallthrough != irdb::kNullInsn ? leader_block(last.fallthrough)
                                                              : kExit);
        break;
    }
  }

  // Return edges. A function returns to the continuations of its known
  // call sites -- context-insensitively, which only ADDS paths and so
  // stays conservative for dominance. A function is only modeled this
  // precisely when every way into it is a direct call we saw: a pinned
  // entry (indirect callers) or any cross-function jmp/jcc into it
  // (tail calls, shared tails) taints it, routing its rets -- and the
  // continuations of its call sites -- through UNKNOWN instead.
  std::set<irdb::FuncId> tainted;
  db.for_each_insn([&](const auto& row) {
    if (row.target == irdb::kNullInsn || row.decoded.op == Op::kCall) return;
    irdb::FuncId tf = db.insn(row.target).function;
    if (tf != irdb::kNullFunc && tf != row.function) tainted.insert(tf);
  });
  auto analyzable = [&](irdb::FuncId f) {
    if (f == irdb::kNullFunc || tainted.count(f)) return false;
    InsnId entry = db.function(f).entry;
    BlockId eb = entry != irdb::kNullInsn ? cfg.block_of(entry) : kNoBlock;
    return eb != kNoBlock && !cfg.block(eb).pinned;
  };

  std::map<irdb::FuncId, std::vector<BlockId>> conts_of;
  std::set<BlockId> unknown_conts;  // continuations reachable from UNKNOWN
  for (const auto& cs : call_sites) {
    if (cs.cont == kNoBlock) continue;
    irdb::FuncId f = cs.callee_entry != irdb::kNullInsn ? db.insn(cs.callee_entry).function
                                                        : irdb::kNullFunc;
    if (analyzable(f))
      conts_of[f].push_back(cs.cont);
    else
      unknown_conts.insert(cs.cont);
  }
  for (auto& [func, rets] : ret_blocks) {
    auto it = analyzable(func) ? conts_of.find(func) : conts_of.end();
    if (it == conts_of.end()) {
      for (BlockId r : rets) cfg.add_edge(r, kUnknown);
      continue;
    }
    std::set<std::pair<BlockId, BlockId>> seen;
    for (BlockId r : rets)
      for (BlockId c : it->second)
        if (seen.insert({r, c}).second) cfg.add_edge(r, c);
  }

  // UNKNOWN fans out to everything indirect flow can reach: pinned
  // blocks, continuations of un-analyzable calls, and termination.
  {
    std::set<BlockId> fan(unknown_conts.begin(), unknown_conts.end());
    for (InsnId pin : pinned_rows) {
      BlockId p = cfg.block_of(pin);
      if (p != kNoBlock) fan.insert(p);
    }
    for (BlockId t : fan) cfg.add_edge(kUnknown, t);
    cfg.add_edge(kUnknown, kExit);
  }

  // ENTRY precedes the program's entry point.
  {
    InsnId entry_row = db.pinned_at(prog.original.entry);
    BlockId eb = entry_row != irdb::kNullInsn ? cfg.block_of(entry_row) : kNoBlock;
    cfg.add_edge(kEntry, eb != kNoBlock ? eb : kUnknown);
  }

  cfg.compute_dominators();
  return cfg;
}

namespace {

/// Reverse postorder from `root` following `next` (succs or preds).
std::vector<BlockId> reverse_postorder(std::size_t n, BlockId root,
                                       const std::vector<BasicBlock>& blocks,
                                       std::vector<BlockId> BasicBlock::*next) {
  std::vector<std::uint8_t> state(n, 0);  // 0 unseen, 1 on stack, 2 done
  std::vector<BlockId> order;
  order.reserve(n);
  std::vector<std::pair<BlockId, std::size_t>> stack{{root, 0}};
  state[root] = 1;
  while (!stack.empty()) {
    auto& [b, i] = stack.back();
    const auto& edges = blocks[b].*next;
    if (i < edges.size()) {
      BlockId s = edges[i++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

/// Cooper-Harvey-Kennedy: iterate idom to a fixpoint over RPO.
std::vector<BlockId> iterate_doms(std::size_t n, BlockId root, const std::vector<BlockId>& rpo,
                                  const std::vector<BasicBlock>& blocks,
                                  std::vector<BlockId> BasicBlock::*pred_edges) {
  std::vector<std::uint32_t> rpo_num(n, static_cast<std::uint32_t>(-1));
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_num[rpo[i]] = static_cast<std::uint32_t>(i);
  std::vector<BlockId> idom(n, kNoBlock);
  idom[root] = root;
  auto intersect = [&](BlockId u, BlockId v) {
    while (u != v) {
      while (rpo_num[u] > rpo_num[v]) u = idom[u];
      while (rpo_num[v] > rpo_num[u]) v = idom[v];
    }
    return u;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == root) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : blocks[b].*pred_edges) {
        if (idom[p] == kNoBlock) continue;
        new_idom = new_idom == kNoBlock ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool chain_reaches(const std::vector<BlockId>& idom, BlockId a, BlockId b) {
  if (a == kNoBlock || b == kNoBlock || idom[b] == kNoBlock) return false;
  for (BlockId cur = b;;) {
    if (cur == a) return true;
    BlockId up = idom[cur];
    if (up == kNoBlock || up == cur) return false;
    cur = up;
  }
}

}  // namespace

void Cfg::compute_dominators() {
  const std::size_t n = blocks_.size();
  rpo_ = reverse_postorder(n, kEntry, blocks_, &BasicBlock::succs);
  idom_ = iterate_doms(n, kEntry, rpo_, blocks_, &BasicBlock::preds);
  std::vector<BlockId> rrpo = reverse_postorder(n, kExit, blocks_, &BasicBlock::preds);
  ipdom_ = iterate_doms(n, kExit, rrpo, blocks_, &BasicBlock::succs);
}

bool Cfg::dominates(BlockId a, BlockId b) const { return chain_reaches(idom_, a, b); }
bool Cfg::postdominates(BlockId a, BlockId b) const { return chain_reaches(ipdom_, a, b); }

}  // namespace zipr::analysis
