#include "batch/worker_pool.h"

#include <algorithm>

namespace zipr::batch {

WorkerPool::WorkerPool(std::size_t workers, std::size_t queue_capacity)
    : queue_(queue_capacity != 0
                 ? queue_capacity
                 : 2 * std::max<std::size_t>(
                           1, workers != 0 ? workers : std::thread::hardware_concurrency())) {
  std::size_t n = workers != 0 ? workers : std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) threads_.emplace_back([this] { run_worker(); });
}

WorkerPool::~WorkerPool() { shutdown(); }

bool WorkerPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
  }
  if (queue_.push(std::move(task))) return true;
  // Queue already closed: roll the accounting back so wait_idle() holds.
  std::lock_guard<std::mutex> lock(mu_);
  if (--in_flight_ == 0) idle_.notify_all();
  return false;
}

void WorkerPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return in_flight_ == 0; });
}

void WorkerPool::shutdown() {
  queue_.close();
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  threads_.clear();  // jthread dtor joins
}

void WorkerPool::run_worker() {
  while (auto task = queue_.pop()) {
    (*task)();
    std::lock_guard<std::mutex> lock(mu_);
    if (--in_flight_ == 0) idle_.notify_all();
  }
}

std::size_t effective_jobs(int requested, std::size_t tasks) {
  std::size_t jobs = requested > 0 ? static_cast<std::size_t>(requested)
                                   : std::max(1u, std::thread::hardware_concurrency());
  return std::max<std::size_t>(1, std::min(jobs, std::max<std::size_t>(1, tasks)));
}

void parallel_for(int jobs, std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::size_t workers = effective_jobs(jobs, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool pool(workers);
  for (std::size_t i = 0; i < n; ++i) pool.submit([&fn, i] { fn(i); });
  pool.wait_idle();
}

}  // namespace zipr::batch
