// The parallel batch-rewrite engine.
//
// Zipr's evaluation is corpus-scale: the paper rewrites ~100 CGC challenge
// binaries per configuration, and robustness is judged by how gracefully a
// rewriter fails across thousands of inputs. BatchRewriter drives N inputs
// through the (reentrant) zipr::rewrite pipeline on a fixed-size worker
// pool with:
//
//   * deterministic output ordering -- result slot i always corresponds to
//     task i, regardless of completion order, so a parallel batch is
//     byte-identical to the serial one;
//   * per-task fault isolation -- a failing binary yields an error slot
//     (its Error kind and message preserved), never aborts the batch;
//   * aggregated BatchStats -- success/failure counts by error kind and
//     per-stage wall-time percentiles across the corpus.
//
// Inputs are either materialized images or lazy factories (e.g. a CGC
// generator closure), so corpus generation parallelizes with rewriting and
// the whole corpus need not be resident at once.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "zipr/zipr.h"

namespace zipr::batch {

/// Produces one input image on the worker thread (must be safe to invoke
/// concurrently with other tasks' factories).
using ImageFactory = std::function<Result<zelf::Image>()>;

/// One unit of batch work: an input binary plus optional per-task options.
struct BatchTask {
  std::string name;
  std::variant<zelf::Image, ImageFactory> input;
  /// Per-task override; when unset the batch-wide options apply.
  std::optional<RewriteOptions> options;
};

struct BatchOptions {
  /// Worker threads; <= 0 means hardware concurrency. 1 runs inline on the
  /// calling thread (the serial reference path).
  int jobs = 1;
  /// Default rewrite configuration for tasks without an override.
  RewriteOptions rewrite;
};

/// Wall-time distribution of one pipeline stage across a batch (over the
/// tasks that reached the stage, i.e. successes).
struct StagePercentiles {
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

inline constexpr std::size_t kErrorKinds = 7;  // Error::Kind cardinality

struct BatchStats {
  std::size_t total = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  /// failed, bucketed by Error::Kind (index = static_cast<int>(kind)).
  std::array<std::size_t, kErrorKinds> failures_by_kind{};

  StagePercentiles ir;           ///< Phase 1: IR construction
  StagePercentiles transform;    ///< Phase 2: transforms
  StagePercentiles reassembly;   ///< Phase 3: reassembly
  StagePercentiles item_total;   ///< materialize + full rewrite per item

  double wall_ms = 0;  ///< whole-batch wall-clock time
  std::size_t jobs = 0;  ///< worker threads actually used
};

/// One task's outcome, in task-submission order.
struct BatchItem {
  std::string name;
  Result<RewriteResult> result;
  double total_ms = 0;  ///< materialization + rewrite wall time
};

struct BatchResult {
  std::vector<BatchItem> items;  ///< items[i] corresponds to tasks[i]
  BatchStats stats;
};

class BatchRewriter {
 public:
  explicit BatchRewriter(BatchOptions options = {}) : options_(std::move(options)) {}

  /// Rewrite every task. Never fails as a whole: per-task errors land in
  /// their result slots. Deterministic: items[i] depends only on tasks[i]
  /// and its options, not on scheduling.
  BatchResult run(std::vector<BatchTask> tasks) const;

  const BatchOptions& options() const { return options_; }

 private:
  BatchOptions options_;
};

/// Convenience: batch-rewrite a set of images under one configuration.
BatchResult rewrite_batch(const std::vector<zelf::Image>& images, const BatchOptions& options);

}  // namespace zipr::batch
