#include "batch/batch_rewriter.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "batch/worker_pool.h"
#include "support/log.h"
#include "zipr/workspace.h"

namespace zipr::batch {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Run one task start-to-finish on whatever thread calls this. Exceptions
/// (the library itself reports via Result, but e.g. bad_alloc can still
/// surface) are converted to error slots: one bad input must never take the
/// batch down.
BatchItem run_task(const BatchTask& task, const RewriteOptions& defaults,
                   WorkspacePool& workspaces) {
  Clock::time_point start = Clock::now();
  auto finish = [&](Result<RewriteResult> r) {
    BatchItem item{task.name, std::move(r), ms_since(start)};
    return item;
  };
  try {
    const RewriteOptions& opts = task.options ? *task.options : defaults;
    // Tasks on the same worker recycle a pooled workspace, so a 100-binary
    // corpus allocates its big transient tables ~jobs times, not 100 times.
    // Workspaces never affect output bytes, so determinism is untouched.
    auto lease = workspaces.checkout();
    ExecPolicy exec;
    exec.workspace = lease.get();
    if (const auto* factory = std::get_if<ImageFactory>(&task.input)) {
      if (!*factory)
        return finish(Error::invalid_argument("batch task '" + task.name +
                                              "' has an empty image factory"));
      Result<zelf::Image> img = (*factory)();
      if (!img.ok()) return finish(img.error());
      return finish(rewrite(*img, opts, exec));
    }
    return finish(rewrite(std::get<zelf::Image>(task.input), opts, exec));
  } catch (const std::exception& e) {
    return finish(Error::internal("uncaught exception in batch task '" + task.name +
                                  "': " + e.what()));
  } catch (...) {
    return finish(Error::internal("uncaught non-standard exception in batch task '" +
                                  task.name + "'"));
  }
}

StagePercentiles percentiles_of(std::vector<double>& samples) {
  StagePercentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    std::size_t i = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(i, samples.size() - 1)];
  };
  p.p50_ms = at(0.50);
  p.p90_ms = at(0.90);
  p.p99_ms = at(0.99);
  p.max_ms = samples.back();
  return p;
}

BatchStats aggregate(const std::vector<BatchItem>& items, double wall_ms, std::size_t jobs) {
  BatchStats stats;
  stats.total = items.size();
  stats.wall_ms = wall_ms;
  stats.jobs = jobs;

  std::vector<double> ir, transform, reassembly, total;
  for (const BatchItem& item : items) {
    total.push_back(item.total_ms);
    if (!item.result.ok()) {
      ++stats.failed;
      auto kind = static_cast<std::size_t>(item.result.error().kind);
      if (kind < stats.failures_by_kind.size()) ++stats.failures_by_kind[kind];
      continue;
    }
    ++stats.succeeded;
    const StageTimes& t = item.result->timing;
    ir.push_back(t.ir_ms);
    transform.push_back(t.transform_ms);
    reassembly.push_back(t.reassembly_ms);
  }
  stats.ir = percentiles_of(ir);
  stats.transform = percentiles_of(transform);
  stats.reassembly = percentiles_of(reassembly);
  stats.item_total = percentiles_of(total);
  return stats;
}

}  // namespace

BatchResult BatchRewriter::run(std::vector<BatchTask> tasks) const {
  Clock::time_point start = Clock::now();
  std::size_t jobs = effective_jobs(options_.jobs, tasks.size());

  // Workers fill disjoint slots of a pre-sized vector, so the output order
  // is the submission order by construction and no result lock is needed.
  WorkspacePool workspaces;  // shared by the workers for this batch
  std::vector<std::optional<BatchItem>> slots(tasks.size());
  parallel_for(static_cast<int>(jobs), tasks.size(), [&](std::size_t i) {
    slots[i] = run_task(tasks[i], options_.rewrite, workspaces);
  });

  BatchResult out;
  out.items.reserve(tasks.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i]) {
      // Unreachable with a healthy pool; keep the slot accounted for
      // rather than silently shifting later items.
      out.items.push_back({tasks[i].name,
                           Error::internal("batch task '" + tasks[i].name + "' never ran"), 0});
      continue;
    }
    out.items.push_back(std::move(*slots[i]));
  }
  out.stats = aggregate(out.items, ms_since(start), jobs);

  if (out.stats.failed > 0)
    ZIPR_INFO << "batch: " << out.stats.failed << " of " << out.stats.total
              << " task(s) failed (isolated; batch completed)";
  return out;
}

BatchResult rewrite_batch(const std::vector<zelf::Image>& images, const BatchOptions& options) {
  std::vector<BatchTask> tasks;
  tasks.reserve(images.size());
  for (std::size_t i = 0; i < images.size(); ++i)
    tasks.push_back({"image-" + std::to_string(i), images[i], std::nullopt});
  return BatchRewriter(options).run(std::move(tasks));
}

}  // namespace zipr::batch
