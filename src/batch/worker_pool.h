// A fixed-size worker pool over the bounded task queue.
//
// Workers are std::jthreads that pop std::function tasks until the queue
// closes. submit() applies backpressure (blocks while the queue is full);
// wait_idle() blocks until every submitted task has finished, so a batch
// driver can reuse one pool across rounds. The pool joins on destruction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "batch/task_queue.h"

namespace zipr::batch {

class WorkerPool {
 public:
  /// `workers` == 0 means std::thread::hardware_concurrency() (min 1).
  /// `queue_capacity` == 0 defaults to 2x the worker count.
  explicit WorkerPool(std::size_t workers, std::size_t queue_capacity = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task; blocks while the queue is full. Returns false if the
  /// pool has been shut down.
  bool submit(std::function<void()> task);

  /// Block until every task submitted so far has completed.
  void wait_idle();

  /// Close the queue and join all workers. Idempotent AND safe to call
  /// concurrently (the serve lifecycle can race an explicit close()
  /// against the destructor): joining is serialized on its own mutex.
  void shutdown();

  std::size_t worker_count() const { return threads_.size(); }

 private:
  void run_worker();

  TaskQueue<std::function<void()>> queue_;
  std::mutex shutdown_mu_;  ///< serializes concurrent shutdown() calls
  std::vector<std::jthread> threads_;

  std::mutex mu_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;  // submitted but not yet finished
};

/// Resolved worker count for a requested job count: n <= 0 means "use the
/// hardware", otherwise n, capped at `tasks` when the batch is smaller.
std::size_t effective_jobs(int requested, std::size_t tasks);

/// Run fn(0..n-1) across `jobs` workers and block until all complete.
/// jobs <= 1 runs inline on the calling thread (no pool, identical order).
/// Each index is invoked exactly once; fn must handle its own synchronization
/// for any shared state beyond per-index slots.
void parallel_for(int jobs, std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace zipr::batch
