// A bounded multi-producer / multi-consumer task queue.
//
// The batch engine's backpressure primitive: producers block when the queue
// is full (so a huge corpus never materializes all its tasks at once) and
// consumers block when it is empty. close() wakes everyone; consumers drain
// the remaining items and then observe end-of-stream.
//
// Implementation: ring buffer + one mutex + two condition variables. The
// rewrite work units are milliseconds long, so a lock per push/pop is
// negligible against the work they hand over; correctness and simplicity
// beat a lock-free design here.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

namespace zipr::batch {

template <typename T>
class TaskQueue {
 public:
  /// `capacity` must be >= 1: the queue holds at most that many items.
  explicit TaskQueue(std::size_t capacity) : buf_(capacity == 0 ? 1 : capacity) {}

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Block until there is room, then enqueue. Returns false (dropping
  /// `item`) if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || size_ < buf_.size(); });
    if (closed_) return false;
    buf_[(head_ + size_) % buf_.size()] = std::move(item);
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available, then dequeue. Returns nullopt once
  /// the queue is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;  // closed and drained
    T out = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// End-of-stream: pending items remain poppable, new pushes fail, and all
  /// blocked producers/consumers wake.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return buf_.size(); }

 private:
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> buf_;  // ring buffer: [head_, head_ + size_) mod capacity
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace zipr::batch
