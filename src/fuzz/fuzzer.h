// The coverage-guided fuzzer core: corpus scheduling, coverage-novelty
// admission, crash triage, and a parallel execution plan that is
// REPRODUCIBLE INDEPENDENT OF THE WORKER COUNT.
//
// Determinism design (the part worth reading twice): a campaign advances
// in rounds. At every round boundary a sequential planner snapshots the
// corpus, picks entries (favored first) and emits a fixed number of
// tasks, each a concrete list of mutated inputs -- deterministic stages
// are pure index enumerations (mutator.h) and randomized stages draw from
// per-task Rng streams derived from (campaign seed, global task ordinal).
// Workers only EXECUTE inputs; executors are interchangeable because each
// run starts from the same startup snapshot. Results are merged back
// sequentially in task order. Nothing observable depends on which worker
// ran what, so `--jobs 1` and `--jobs 4` produce byte-identical corpora
// and crash sets.
#pragma once

#include <map>
#include <tuple>
#include <vector>

#include "fuzz/executor.h"

namespace zipr::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;          ///< campaign seed (mutations + scheduling)
  int jobs = 1;                    ///< worker threads; <=0 = hardware
  std::uint64_t max_execs = 20000; ///< stop after at least this many runs
                                   ///< (checked at round boundaries)
  std::size_t tasks_per_round = 8; ///< fixed per round, NOT scaled by jobs
  std::size_t execs_per_task = 24;
  vm::RunLimits limits{.max_insns = 2'000'000, .max_output = 1 << 20};
  bool trim = true;                ///< cut unread tail bytes off new entries
};

struct CorpusEntry {
  Bytes input;
  Bytes map;                    ///< classified coverage of this input
  std::uint64_t exec_insns = 0; ///< instructions the run retired
  bool favored = false;         ///< minimal (len x insns) for some map index
  std::size_t det_done = 0;     ///< deterministic-stage progress cursor
};

/// Crash identity for deduplication: two inputs are "the same bug" when
/// they fault the same way, at the same pc, along the same coverage path.
/// One wrinkle: a hijacked control transfer faults AT the attacker-chosen
/// target, so a raw fault_pc would mint a "new bug" per mutated pointer.
/// Triage therefore collapses fault pcs outside the image's mapped
/// segments to kWildFaultPc and lets the path hash discriminate.
using CrashKey = std::tuple<vm::Fault, std::uint64_t, std::uint64_t>;

/// Sentinel fault_pc for wild transfers (pc outside every image segment).
inline constexpr std::uint64_t kWildFaultPc = ~0ull;

struct Crash {
  vm::Fault fault = vm::Fault::kNone;
  std::uint64_t fault_pc = 0;
  std::uint64_t path = 0;       ///< path_hash of the crashing run's map
  Bytes input;                  ///< first input (in schedule order) to hit it
};

struct FuzzStats {
  std::uint64_t execs = 0;
  std::uint64_t crashing_execs = 0;  ///< before triage deduplication
  std::uint64_t rounds = 0;
  std::uint64_t resets = 0;       ///< snapshot restores across all executors
  double wall_seconds = 0;
  double execs_per_sec = 0;
  std::size_t map_indices_hit = 0;  ///< distinct map indices ever nonzero
};

struct FuzzResult {
  std::vector<CorpusEntry> corpus;
  std::vector<Crash> crashes;   ///< deduped, sorted by (fault, pc, path)
  FuzzStats stats;
};

/// Fuzz a cov-instrumented image starting from `seeds`. Runs until
/// opts.max_execs executions have been spent (rounded up to a whole
/// round). Fully deterministic in (image, seeds, opts.seed) -- wall-clock
/// stats aside -- regardless of opts.jobs.
Result<FuzzResult> fuzz(const zelf::Image& instrumented, const std::vector<Bytes>& seeds,
                        const FuzzOptions& opts);

}  // namespace zipr::fuzz
