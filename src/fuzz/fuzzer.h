// The coverage-guided fuzzer core: corpus scheduling, coverage-novelty
// admission, crash triage, and a parallel execution plan that is
// REPRODUCIBLE INDEPENDENT OF THE WORKER COUNT.
//
// Determinism design (the part worth reading twice): a campaign advances
// in rounds. At every round boundary a sequential planner snapshots the
// corpus, picks entries (favored first) and emits a fixed number of
// tasks, each a concrete list of mutated inputs -- deterministic stages
// are pure index enumerations (mutator.h) and randomized stages draw from
// per-task Rng streams derived from (campaign seed, global task ordinal).
// Workers only EXECUTE inputs; executors are interchangeable because each
// run starts from the same startup snapshot. Results are merged back
// sequentially in task order. Nothing observable depends on which worker
// ran what, so `--jobs 1` and `--jobs 4` produce byte-identical corpora
// and crash sets.
//
// The same machinery is exposed as the `Fuzzer` class -- one campaign
// stream's corpus/virgin/crash state plus the plan/execute/merge round
// loop -- so the multi-shard farm (src/farm) can run many streams, each
// on its own persistent executor, and merge them deterministically at
// sync epochs. `fuzz()` below is a single-stream campaign whose task
// execution fans out over a worker pool.
#pragma once

#include <array>
#include <map>
#include <tuple>
#include <vector>

#include "fuzz/executor.h"

namespace zipr::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;          ///< campaign seed (mutations + scheduling)
  int jobs = 1;                    ///< worker threads; <=0 = hardware
  std::uint64_t max_execs = 20000; ///< stop after at least this many runs
                                   ///< (checked at round boundaries)
  std::size_t tasks_per_round = 8; ///< fixed per round, NOT scaled by jobs
  std::size_t execs_per_task = 24;
  vm::RunLimits limits{.max_insns = 2'000'000, .max_output = 1 << 20};
  bool trim = true;                ///< cut unread tail bytes off new entries
};

/// Which mutation stage produced an input. Satellite visibility for "why
/// is this campaign stalling": a campaign that admits only havoc entries
/// has exhausted its deterministic frontier; one that admits nothing at
/// all is gated (see the laf transform).
enum class MutationStage : std::uint8_t { kSeed = 0, kDet = 1, kHavoc = 2, kSplice = 3 };

inline constexpr std::size_t kStageCount = 4;

const char* stage_name(MutationStage stage);

/// Per-stage novelty counters: corpus admissions and unique crashes
/// attributed to the stage that produced the input.
struct StageCounters {
  std::array<std::uint64_t, kStageCount> admitted{};
  std::array<std::uint64_t, kStageCount> crashes{};

  std::uint64_t& admit(MutationStage s) { return admitted[static_cast<std::size_t>(s)]; }
  std::uint64_t& crash(MutationStage s) { return crashes[static_cast<std::size_t>(s)]; }

  StageCounters& operator+=(const StageCounters& o) {
    for (std::size_t i = 0; i < kStageCount; ++i) {
      admitted[i] += o.admitted[i];
      crashes[i] += o.crashes[i];
    }
    return *this;
  }
};

struct CorpusEntry {
  Bytes input;
  Bytes map;                    ///< classified coverage of this input
  std::uint64_t exec_insns = 0; ///< instructions the run retired
  bool favored = false;         ///< minimal (len x insns) for some map index
  std::size_t det_done = 0;     ///< deterministic-stage progress cursor
  MutationStage stage = MutationStage::kSeed;  ///< stage that produced it
};

/// Crash identity for deduplication: two inputs are "the same bug" when
/// they fault the same way, at the same pc, along the same coverage path.
/// One wrinkle: a hijacked control transfer faults AT the attacker-chosen
/// target, so a raw fault_pc would mint a "new bug" per mutated pointer.
/// Triage therefore collapses fault pcs outside the image's mapped
/// segments to kWildFaultPc and lets the path hash discriminate.
using CrashKey = std::tuple<vm::Fault, std::uint64_t, std::uint64_t>;

/// Sentinel fault_pc for wild transfers (pc outside every image segment).
inline constexpr std::uint64_t kWildFaultPc = ~0ull;

struct Crash {
  vm::Fault fault = vm::Fault::kNone;
  std::uint64_t fault_pc = 0;
  std::uint64_t path = 0;       ///< path_hash of the crashing run's map
  Bytes input;                  ///< first input (in schedule order) to hit it
  MutationStage stage = MutationStage::kSeed;  ///< stage that produced it
};

struct FuzzStats {
  std::uint64_t execs = 0;
  std::uint64_t crashing_execs = 0;  ///< before triage deduplication
  std::uint64_t rounds = 0;
  std::uint64_t resets = 0;       ///< snapshot restores across all executors
  double wall_seconds = 0;
  double execs_per_sec = 0;
  std::size_t map_indices_hit = 0;  ///< distinct map indices ever nonzero
  StageCounters stages;             ///< per-stage admissions / unique crashes
};

struct FuzzResult {
  std::vector<CorpusEntry> corpus;
  std::vector<Crash> crashes;   ///< deduped, sorted by (fault, pc, path)
  FuzzStats stats;
};

/// What a worker hands back to the sequential merge, per executed input.
struct RunOut {
  Bytes map;
  bool crashed = false;
  vm::Fault fault = vm::Fault::kNone;
  std::uint64_t fault_pc = 0;
  std::uint64_t exec_insns = 0;
  std::size_t consumed = 0;     ///< input bytes the guest actually read
};

/// Condense an ExecResult for the merge (moves the map out of `res`).
RunOut summarize(ExecResult& res);

/// Word-wise map scans (used per executed input; maps are kMapSize bytes
/// of mostly zero). Exposed so the farm's sync epochs can merge stream
/// virgin maps with the exact same novelty semantics.
bool has_new_bits(const Bytes& map, const Bytes& virgin);
void merge_bits(const Bytes& map, Bytes& virgin);

/// Favored = for some map index, this entry is the cheapest way (smallest
/// input-length x instructions product) to reach it. AFL's queue culling.
void recompute_favored(std::vector<CorpusEntry>& corpus);

/// One campaign stream: corpus + virgin map + deduped crash log + the
/// deterministic plan/execute/merge round loop. All methods are serial;
/// `fuzz()` parallelizes by executing a round's tasks on a worker pool,
/// the farm by running whole streams on per-shard executors. Determinism
/// contract: every observable result is a pure function of (image bytes,
/// adopted state, opts.seed, guest seed) -- never of which executor ran
/// an input, because executors are interchangeable snapshots.
class Fuzzer {
 public:
  /// One planned task: a concrete input list plus the stage that minted
  /// each input. `outs` is filled by the executor side (same length).
  struct Task {
    std::vector<Bytes> inputs;
    std::vector<MutationStage> stages;
    std::vector<RunOut> outs;
  };

  /// Deduped crash record, first occurrence in schedule order wins.
  struct CrashRec {
    Bytes input;
    MutationStage stage = MutationStage::kSeed;
    std::uint64_t ordinal = 0;  ///< execs count when the crash merged
  };

  Fuzzer(const zelf::Image& image, FuzzOptions opts);

  /// Override the guest random() seed. The farm shares one campaign-wide
  /// guest stream across all streams so an input's path identity (and
  /// therefore its CrashKey) is stream-independent.
  void set_guest_seed(std::uint64_t guest_seed);
  std::uint64_t guest_seed() const { return guest_seed_; }

  /// Run + admit the initial seeds (sequential, on `ex`). Installs a
  /// schedulable fallback entry when every seed crashes or none are given.
  Status seed_corpus(const std::vector<Bytes>& seeds, Executor& ex);

  /// Adopt a merged snapshot (farm sync): replaces corpus + virgin; the
  /// adopted prefix is remembered so take-side accessors can tell local
  /// admissions apart from inherited entries.
  void adopt(std::vector<CorpusEntry> corpus, Bytes virgin);

  /// Plan one round: deterministic in (corpus, opts.seed, round count).
  std::vector<Task> plan_round();

  /// Execute planned tasks back-to-back on one executor (farm streams).
  Status execute_serial(std::vector<Task>& tasks, Executor& ex);

  /// Merge executed tasks sequentially in task order; re-checks novelty
  /// against the live virgin map, trims admissions on `trim_ex`.
  Status merge_round(std::vector<Task>& tasks, Executor& trim_ex);

  const std::vector<CorpusEntry>& corpus() const { return corpus_; }
  const Bytes& virgin() const { return virgin_; }
  /// Index of the first locally-admitted entry (== adopted corpus size).
  std::size_t adopted() const { return adopted_; }
  /// Deduped crashes in key order (deterministic), first-sighting inputs.
  const std::map<CrashKey, CrashRec>& crash_log() const { return crashes_; }
  FuzzStats& stats() { return stats_; }
  const FuzzOptions& options() const { return opts_; }

  /// Drain state into a FuzzResult (corpus moved out, crashes sorted by
  /// key, map_indices_hit computed from the virgin map).
  FuzzResult take_result();

 private:
  Status admit(Bytes input, RunOut out, MutationStage stage, Executor& trim_ex);
  void record_crash(const RunOut& out, const Bytes& input, MutationStage stage);

  const zelf::Image& image_;
  FuzzOptions opts_;
  std::uint64_t guest_seed_;
  std::vector<CorpusEntry> corpus_;
  Bytes virgin_;
  std::map<CrashKey, CrashRec> crashes_;  // ordered: deterministic triage
  FuzzStats stats_;
  std::size_t adopted_ = 0;
  std::uint64_t task_ordinal_ = 0;
};

/// Fuzz a cov-instrumented image starting from `seeds`. Runs until
/// opts.max_execs executions have been spent (rounded up to a whole
/// round). Fully deterministic in (image, seeds, opts.seed) -- wall-clock
/// stats aside -- regardless of opts.jobs.
Result<FuzzResult> fuzz(const zelf::Image& instrumented, const std::vector<Bytes>& seeds,
                        const FuzzOptions& opts);

}  // namespace zipr::fuzz
