// Persistent-mode fuzzing executor (the "fork server" of a binary-only
// AFL, minus the fork): load a cov-instrumented ZELF into a VM once, take
// a whole-machine snapshot after startup, then run inputs back-to-back by
// restoring the snapshot between runs instead of re-linking and re-mapping
// the address space. Dirty-page tracking in vm::Memory makes the restore
// proportional to the pages a run actually wrote, so resets are much
// cheaper than a full VM rebuild (BENCH_fuzz.json gates the speedup).
//
// After every run the executor reads the coverage map (transform/cov.h's
// ABI) straight out of guest memory and bucket-classifies the 8-bit hit
// counts the way AFL does, so "new coverage" is insensitive to loop-count
// jitter.
#pragma once

#include "transform/cov.h"
#include "vm/machine.h"

namespace zipr::fuzz {

/// Classified coverage-map size (one byte per counter index).
inline constexpr std::size_t kMapSize = transform::kCovMapEntries;

/// AFL's hit-count bucketing: collapse a raw 8-bit counter into a power-
/// of-two bucket bitmask so e.g. 5 vs 6 loop iterations look identical but
/// 1 vs 2 vs many do not.
std::uint8_t classify_count(std::uint8_t count);

/// FNV-1a over a classified map: the run's path identity (crash dedup).
std::uint64_t path_hash(ByteView classified_map);

struct ExecResult {
  vm::RunResult run;
  Bytes map;            ///< kMapSize classified counters (all zero when
                        ///< the image carries no coverage segment)
  bool crashed = false; ///< faulted (gas exhaustion is a hang, not a crash)
};

class Executor {
 public:
  /// Maps `image` into a fresh VM and snapshots it. The image is typically
  /// the output of zipr::rewrite with the "cov" transform; uninstrumented
  /// images still execute but report an all-zero map.
  explicit Executor(const zelf::Image& image, vm::RunLimits limits = {});

  /// Run one input from the startup snapshot. `random_seed` seeds the
  /// guest's random() syscall; the fuzzer passes a per-campaign constant
  /// so path identity depends only on the input bytes.
  Result<ExecResult> execute(ByteView input, std::uint64_t random_seed = 0);

  bool instrumented() const { return instrumented_; }
  std::uint64_t resets() const { return resets_; }

  /// The underlying machine (trim's insns_by_pc hook, white-box tests).
  vm::Machine& machine() { return machine_; }

 private:
  vm::Machine machine_;
  vm::Machine::Snapshot snapshot_;
  Bytes raw_map_;  ///< reusable peek buffer: no per-run allocation
  std::uint64_t map_addr_ = 0;
  bool instrumented_ = false;
  bool first_run_ = true;
  std::uint64_t resets_ = 0;
};

}  // namespace zipr::fuzz
