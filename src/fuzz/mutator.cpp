#include "fuzz/mutator.h"

#include <algorithm>
#include <cstring>

namespace zipr::fuzz {

namespace {

// AFL's interesting 8-bit constants (boundary values that trip off-by-one
// and sign bugs).
constexpr std::int8_t kInteresting8[] = {-128, -1, 0, 1, 16, 32, 64, 100, 127};
constexpr std::size_t kNumInteresting8 = sizeof(kInteresting8);

// 64-bit constants worth writing whole: powers of two around address/size
// boundaries plus all-ones patterns.
constexpr std::uint64_t kInteresting64[] = {
    0,
    1,
    0x7fULL,
    0x80ULL,
    0xffULL,
    0x7fffULL,
    0x8000ULL,
    0xffffULL,
    0x7fffffffULL,
    0x80000000ULL,
    0xffffffffULL,
    0x4141414141414141ULL,
    0x7fffffffffffffffULL,
    0x8000000000000000ULL,
    0xffffffffffffffffULL,
};
constexpr std::size_t kNumInteresting64 = sizeof(kInteresting64) / sizeof(kInteresting64[0]);

// Per-byte deterministic sub-stage sizes.
constexpr std::size_t kArithMax = 16;                      // +/- 1..16
constexpr std::size_t kPerByte = 8                         // bitflips
                                 + 1                       // invert
                                 + 2 * kArithMax           // arith8
                                 + kNumInteresting8;       // interesting8

}  // namespace

std::size_t det_count(std::size_t len) { return len * kPerByte; }

Bytes det_mutate(ByteView input, std::size_t idx) {
  Bytes out(input.begin(), input.end());
  const std::size_t byte = idx / kPerByte;
  std::size_t sub = idx % kPerByte;
  if (byte >= out.size()) return out;  // defensive: idx past det_count
  if (sub < 8) {
    out[byte] ^= static_cast<Byte>(1u << sub);
    return out;
  }
  sub -= 8;
  if (sub < 1) {
    out[byte] ^= 0xff;
    return out;
  }
  sub -= 1;
  if (sub < 2 * kArithMax) {
    const auto delta = static_cast<Byte>(sub / 2 + 1);
    out[byte] = sub % 2 == 0 ? static_cast<Byte>(out[byte] + delta)
                             : static_cast<Byte>(out[byte] - delta);
    return out;
  }
  sub -= 2 * kArithMax;
  out[byte] = static_cast<Byte>(kInteresting8[sub]);
  return out;
}

Bytes havoc_mutate(ByteView input, Rng& rng) {
  Bytes out(input.begin(), input.end());
  const auto ops = std::size_t{1} << rng.range(1, 5);  // 2..32 stacked edits
  for (std::size_t n = 0; n < ops; ++n) {
    switch (rng.below(8)) {
      case 0:  // flip one bit
        if (!out.empty()) out[rng.below(out.size())] ^= static_cast<Byte>(1u << rng.below(8));
        break;
      case 1:  // set a byte to a random value
        if (!out.empty()) out[rng.below(out.size())] = static_cast<Byte>(rng.next());
        break;
      case 2:  // set a byte to an interesting value
        if (!out.empty())
          out[rng.below(out.size())] =
              static_cast<Byte>(kInteresting8[rng.below(kNumInteresting8)]);
        break;
      case 3:  // add/subtract a small delta
        if (!out.empty()) {
          Byte& b = out[rng.below(out.size())];
          const auto delta = static_cast<Byte>(rng.range(1, 35));
          b = rng.chance(1, 2) ? static_cast<Byte>(b + delta) : static_cast<Byte>(b - delta);
        }
        break;
      case 4:  // overwrite an aligned-size word with a random/interesting u64
        if (out.size() >= 8) {
          const std::size_t pos = rng.below(out.size() - 7);
          const std::uint64_t v = rng.chance(3, 4)
                                      ? kInteresting64[rng.below(kNumInteresting64)]
                                      : rng.next();
          for (int i = 0; i < 8; ++i)
            out[pos + static_cast<std::size_t>(i)] = static_cast<Byte>(v >> (8 * i));
        }
        break;
      case 5:  // delete a block
        if (out.size() > 1) {
          const std::size_t len = rng.range(1, out.size() - 1);
          const std::size_t pos = rng.below(out.size() - len + 1);
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos),
                    out.begin() + static_cast<std::ptrdiff_t>(pos + len));
        }
        break;
      case 6: {  // insert a block (the growth operator)
        const std::size_t len = rng.range(1, 64);
        if (out.size() + len > kMaxInputLen) break;
        const std::size_t pos = rng.below(out.size() + 1);
        Bytes block(len);
        if (rng.chance(1, 2)) {
          const auto fill = static_cast<Byte>(rng.next());
          std::memset(block.data(), fill, len);
        } else {
          for (auto& b : block) b = static_cast<Byte>(rng.next());
        }
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), block.begin(), block.end());
        break;
      }
      case 7:  // clone an existing block to another position
        if (out.size() > 1 && out.size() < kMaxInputLen) {
          const std::size_t len = rng.range(1, std::min<std::size_t>(out.size(), 32));
          const std::size_t src = rng.below(out.size() - len + 1);
          const std::size_t dst = rng.below(out.size() + 1);
          Bytes block(out.begin() + static_cast<std::ptrdiff_t>(src),
                      out.begin() + static_cast<std::ptrdiff_t>(src + len));
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(dst), block.begin(), block.end());
        }
        break;
    }
  }
  if (out.size() > kMaxInputLen) out.resize(kMaxInputLen);
  return out;
}

Bytes splice_mutate(ByteView a, ByteView b, Rng& rng) {
  Bytes out;
  const std::size_t cut_a = a.empty() ? 0 : rng.below(a.size() + 1);
  const std::size_t cut_b = b.empty() ? 0 : rng.below(b.size() + 1);
  out.insert(out.end(), a.begin(), a.begin() + static_cast<std::ptrdiff_t>(cut_a));
  out.insert(out.end(), b.begin() + static_cast<std::ptrdiff_t>(cut_b), b.end());
  return havoc_mutate(out, rng);
}

}  // namespace zipr::fuzz
