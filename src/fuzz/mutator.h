// Deterministic mutation engine (AFL's stage lineup on a diet).
//
// Two families:
//   * deterministic stages -- a pure enumeration over an input: walking
//     bitflips, byte inversions, 8-bit arithmetic and "interesting"
//     constants. det_mutate(input, i) is a pure function, so any slice of
//     the enumeration can be (re)generated anywhere -- the fuzzer's
//     planner hands index ranges to workers without sharing state;
//   * randomized stages -- havoc (a stack of random edits, including
//     block inserts so inputs can GROW, which buffer-overflow bugs need)
//     and splice (crossover of two corpus entries followed by havoc).
//     Both draw every decision from a caller-provided Rng, so a seed
//     fully determines the mutation.
#pragma once

#include "support/bytes.h"
#include "support/rng.h"

namespace zipr::fuzz {

/// Inputs never grow beyond this (receive() reads are bounded anyway).
inline constexpr std::size_t kMaxInputLen = 4096;

/// Number of deterministic mutations defined for an input of `len` bytes.
std::size_t det_count(std::size_t len);

/// The `idx`-th deterministic mutation of `input`; idx < det_count(size).
Bytes det_mutate(ByteView input, std::size_t idx);

/// A stacked batch of 2..32 random edits (flip/set/arith/word-overwrite/
/// delete/insert/clone) of `input`.
Bytes havoc_mutate(ByteView input, Rng& rng);

/// Crossover: a prefix of `a` glued to a suffix of `b`, then havoc'd.
Bytes splice_mutate(ByteView a, ByteView b, Rng& rng);

}  // namespace zipr::fuzz
