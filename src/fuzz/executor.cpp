#include "fuzz/executor.h"

namespace zipr::fuzz {

std::uint8_t classify_count(std::uint8_t count) {
  if (count == 0) return 0;
  if (count == 1) return 1;
  if (count == 2) return 2;
  if (count == 3) return 4;
  if (count <= 7) return 8;
  if (count <= 15) return 16;
  if (count <= 31) return 32;
  if (count <= 127) return 64;
  return 128;
}

std::uint64_t path_hash(ByteView classified_map) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (Byte b : classified_map) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Executor::Executor(const zelf::Image& image, vm::RunLimits limits)
    : machine_(image, limits) {
  map_addr_ = transform::cov_counters_addr(image.text().vaddr);
  instrumented_ = image.segment_containing(map_addr_) != nullptr;
  snapshot_ = machine_.snapshot();
}

Result<ExecResult> Executor::execute(ByteView input, std::uint64_t random_seed) {
  if (first_run_) {
    first_run_ = false;
  } else {
    ZIPR_TRY(machine_.restore(snapshot_));
    ++resets_;
  }
  machine_.set_input(Bytes(input.begin(), input.end()));
  machine_.set_random_seed(random_seed);

  ExecResult res;
  res.run = machine_.run();
  res.crashed = !res.run.exited && res.run.fault != vm::Fault::kGasExhausted;

  res.map.assign(kMapSize, 0);
  if (instrumented_) {
    ZIPR_ASSIGN_OR_RETURN(Bytes raw, machine_.memory().peek_block(map_addr_, kMapSize));
    for (std::size_t i = 0; i < kMapSize; ++i) res.map[i] = classify_count(raw[i]);
  }
  return res;
}

}  // namespace zipr::fuzz
