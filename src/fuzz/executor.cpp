#include "fuzz/executor.h"

#include <cstring>

namespace zipr::fuzz {

std::uint8_t classify_count(std::uint8_t count) {
  if (count == 0) return 0;
  if (count == 1) return 1;
  if (count == 2) return 2;
  if (count == 3) return 4;
  if (count <= 7) return 8;
  if (count <= 15) return 16;
  if (count <= 31) return 32;
  if (count <= 127) return 64;
  return 128;
}

std::uint64_t path_hash(ByteView classified_map) {
  // FNV-flavored mixing over 8-byte blocks with a final avalanche: one
  // multiply per word instead of per byte. The value is purely a run-path
  // identity for crash dedup, so any deterministic well-distributed
  // function of the map works -- and this runs on every crashing exec, so
  // it is squarely on the fuzzer's hot path.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::size_t i = 0;
  for (; i + 8 <= classified_map.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, classified_map.data() + i, 8);
    h = (h ^ w) * 0x100000001b3ULL;
  }
  for (; i < classified_map.size(); ++i) h = (h ^ classified_map[i]) * 0x100000001b3ULL;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

Executor::Executor(const zelf::Image& image, vm::RunLimits limits)
    : machine_(image, limits) {
  map_addr_ = transform::cov_counters_addr(image.text().vaddr);
  instrumented_ = image.segment_containing(map_addr_) != nullptr;
  snapshot_ = machine_.snapshot();
}

Result<ExecResult> Executor::execute(ByteView input, std::uint64_t random_seed) {
  if (first_run_) {
    first_run_ = false;
  } else {
    ZIPR_TRY(machine_.restore(snapshot_));
    ++resets_;
  }
  machine_.set_input(Bytes(input.begin(), input.end()));
  machine_.set_random_seed(random_seed);

  ExecResult res;
  res.run = machine_.run();
  res.crashed = !res.run.exited && res.run.fault != vm::Fault::kGasExhausted;

  res.map.assign(kMapSize, 0);
  if (instrumented_) {
    raw_map_.resize(kMapSize);
    ZIPR_TRY(machine_.memory().peek_into(map_addr_, std::span<Byte>(raw_map_)));
    // The map is almost entirely zero; scan word-wise and classify only
    // the words with live counters (res.map is already zeroed).
    static_assert(kMapSize % 8 == 0);
    for (std::size_t i = 0; i < kMapSize; i += 8) {
      std::uint64_t w;
      std::memcpy(&w, raw_map_.data() + i, 8);
      if (w == 0) continue;
      for (std::size_t j = i; j < i + 8; ++j) res.map[j] = classify_count(raw_map_[j]);
    }
  }
  return res;
}

}  // namespace zipr::fuzz
