#include "fuzz/fuzzer.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "batch/worker_pool.h"
#include "fuzz/mutator.h"

namespace zipr::fuzz {

namespace {

// Rng stream ids carved out of the campaign seed (support/rng.h's
// derive_seed decorrelates adjacent streams, these just keep the spaces
// disjoint and self-describing).
constexpr std::uint64_t kGuestRngStream = 0x6775;     // guest random() syscall
constexpr std::uint64_t kPlannerStreamBase = 1u << 20;  // + round
constexpr std::uint64_t kTaskStreamBase = 1u << 30;     // + global task ordinal

/// Interchangeable-executor pool: workers borrow whichever executor is
/// free. Legal because every run starts from the same startup snapshot,
/// so results do not depend on which executor ran an input.
class ExecutorPool {
 public:
  ExecutorPool(const zelf::Image& image, std::size_t lanes, vm::RunLimits limits) {
    for (std::size_t i = 0; i < lanes; ++i)
      all_.push_back(std::make_unique<Executor>(image, limits));
    for (auto& e : all_) free_.push_back(e.get());
  }

  Executor* acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !free_.empty(); });
    Executor* e = free_.back();
    free_.pop_back();
    return e;
  }

  void release(Executor* e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      free_.push_back(e);
    }
    cv_.notify_one();
  }

  Executor& first() { return *all_.front(); }

  std::uint64_t total_resets() const {
    std::uint64_t n = 0;
    for (const auto& e : all_) n += e->resets();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Executor>> all_;
  std::vector<Executor*> free_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace

const char* stage_name(MutationStage stage) {
  switch (stage) {
    case MutationStage::kSeed: return "seed";
    case MutationStage::kDet: return "det";
    case MutationStage::kHavoc: return "havoc";
    case MutationStage::kSplice: return "splice";
  }
  return "?";
}

RunOut summarize(ExecResult& res) {
  RunOut out;
  out.map = std::move(res.map);
  out.crashed = res.crashed;
  out.fault = res.run.fault;
  out.fault_pc = res.run.fault_pc;
  out.exec_insns = res.run.stats.insns;
  out.consumed = res.run.input_bytes_consumed;
  return out;
}

// Word-wise map scans: these run against every executed input, and the
// maps are kMapSize (4096) bytes of mostly zero.
bool has_new_bits(const Bytes& map, const Bytes& virgin) {
  std::size_t i = 0;
  for (; i + 8 <= map.size(); i += 8) {
    std::uint64_t m, v;
    std::memcpy(&m, map.data() + i, 8);
    std::memcpy(&v, virgin.data() + i, 8);
    if (m & ~v) return true;
  }
  for (; i < map.size(); ++i)
    if (map[i] & ~virgin[i]) return true;
  return false;
}

void merge_bits(const Bytes& map, Bytes& virgin) {
  std::size_t i = 0;
  for (; i + 8 <= map.size(); i += 8) {
    std::uint64_t m, v;
    std::memcpy(&m, map.data() + i, 8);
    std::memcpy(&v, virgin.data() + i, 8);
    v |= m;
    std::memcpy(virgin.data() + i, &v, 8);
  }
  for (; i < map.size(); ++i) virgin[i] |= map[i];
}

void recompute_favored(std::vector<CorpusEntry>& corpus) {
  for (auto& e : corpus) e.favored = false;
  for (std::size_t i = 0; i < kMapSize; ++i) {
    std::size_t best = corpus.size();
    std::uint64_t best_score = 0;
    for (std::size_t j = 0; j < corpus.size(); ++j) {
      if (!corpus[j].map[i]) continue;
      const std::uint64_t score =
          static_cast<std::uint64_t>(corpus[j].input.size() + 1) * (corpus[j].exec_insns + 1);
      if (best == corpus.size() || score < best_score) {
        best = j;
        best_score = score;
      }
    }
    if (best != corpus.size()) corpus[best].favored = true;
  }
}

Fuzzer::Fuzzer(const zelf::Image& image, FuzzOptions opts)
    : image_(image),
      opts_(std::move(opts)),
      guest_seed_(derive_seed(opts_.seed, kGuestRngStream)),
      virgin_(kMapSize, 0) {}

void Fuzzer::set_guest_seed(std::uint64_t guest_seed) { guest_seed_ = guest_seed; }

void Fuzzer::record_crash(const RunOut& out, const Bytes& input, MutationStage stage) {
  ++stats_.crashing_execs;
  const std::uint64_t pc =
      image_.segment_containing(out.fault_pc) ? out.fault_pc : kWildFaultPc;
  CrashRec rec;
  rec.input = input;
  rec.stage = stage;
  rec.ordinal = stats_.execs;
  auto [it, fresh] =
      crashes_.try_emplace(CrashKey{out.fault, pc, path_hash(out.map)}, std::move(rec));
  if (fresh) ++stats_.stages.crash(stage);
  (void)it;
}

// Trimmed admission: cut the unread tail off, then prove on the trim
// executor that the truncated input retires the exact same per-pc
// instruction counts (the vm's hot-counter hook) before adopting it.
Status Fuzzer::admit(Bytes input, RunOut out, MutationStage stage, Executor& trim_ex) {
  if (opts_.trim && out.consumed < input.size()) {
    Bytes trimmed(input.begin(), input.begin() + static_cast<std::ptrdiff_t>(out.consumed));
    trim_ex.machine().set_count_pcs(true);
    ZIPR_ASSIGN_OR_RETURN(ExecResult full, trim_ex.execute(input, guest_seed_));
    auto full_hist = trim_ex.machine().insns_by_pc();
    ZIPR_ASSIGN_OR_RETURN(ExecResult cut, trim_ex.execute(trimmed, guest_seed_));
    trim_ex.machine().set_count_pcs(false);
    stats_.execs += 2;
    if (!cut.crashed && cut.map == full.map && trim_ex.machine().insns_by_pc() == full_hist) {
      input = std::move(trimmed);
      out.exec_insns = cut.run.stats.insns;
    }
  }
  merge_bits(out.map, virgin_);
  CorpusEntry entry;
  entry.input = std::move(input);
  entry.map = std::move(out.map);
  entry.exec_insns = out.exec_insns;
  entry.stage = stage;
  corpus_.push_back(std::move(entry));
  ++stats_.stages.admit(stage);
  return Status::success();
}

Status Fuzzer::seed_corpus(const std::vector<Bytes>& seeds, Executor& ex) {
  for (const auto& seed_input : seeds) {
    ZIPR_ASSIGN_OR_RETURN(ExecResult res, ex.execute(seed_input, guest_seed_));
    ++stats_.execs;
    RunOut out = summarize(res);
    if (out.crashed) {
      record_crash(out, seed_input, MutationStage::kSeed);
      continue;
    }
    ZIPR_TRY(admit(seed_input, std::move(out), MutationStage::kSeed, ex));
  }
  if (corpus_.empty()) {
    // Every seed crashed (or none were given): keep something schedulable.
    CorpusEntry entry;
    entry.input = seeds.empty() ? Bytes{} : seeds.front();
    entry.map.assign(kMapSize, 0);
    corpus_.push_back(std::move(entry));
  }
  recompute_favored(corpus_);
  return Status::success();
}

void Fuzzer::adopt(std::vector<CorpusEntry> corpus, Bytes virgin) {
  corpus_ = std::move(corpus);
  virgin_ = std::move(virgin);
  adopted_ = corpus_.size();
}

std::vector<Fuzzer::Task> Fuzzer::plan_round() {
  const std::size_t tasks_per_round = std::max<std::size_t>(1, opts_.tasks_per_round);
  Rng planner(derive_seed(opts_.seed, kPlannerStreamBase + stats_.rounds));
  std::vector<std::size_t> favored;
  for (std::size_t j = 0; j < corpus_.size(); ++j)
    if (corpus_[j].favored) favored.push_back(j);

  std::vector<Task> tasks(tasks_per_round);
  for (auto& task : tasks) {
    const std::uint64_t ordinal = task_ordinal_++;
    std::size_t pick;
    if (!favored.empty() && planner.chance(3, 4))
      pick = favored[planner.below(favored.size())];
    else
      pick = planner.below(corpus_.size());
    CorpusEntry& entry = corpus_[pick];

    const std::size_t det_total = det_count(entry.input.size());
    if (entry.det_done < det_total) {
      const std::size_t end = std::min(det_total, entry.det_done + opts_.execs_per_task);
      for (std::size_t i = entry.det_done; i < end; ++i) {
        task.inputs.push_back(det_mutate(entry.input, i));
        task.stages.push_back(MutationStage::kDet);
      }
      entry.det_done = end;
    } else {
      Rng rng(derive_seed(opts_.seed, kTaskStreamBase + ordinal));
      for (std::size_t k = 0; k < opts_.execs_per_task; ++k) {
        if (corpus_.size() > 1 && rng.chance(1, 4)) {
          std::size_t other = rng.below(corpus_.size() - 1);
          if (other >= pick) ++other;
          task.inputs.push_back(splice_mutate(entry.input, corpus_[other].input, rng));
          task.stages.push_back(MutationStage::kSplice);
        } else {
          task.inputs.push_back(havoc_mutate(entry.input, rng));
          task.stages.push_back(MutationStage::kHavoc);
        }
      }
    }
    task.outs.resize(task.inputs.size());
  }
  return tasks;
}

Status Fuzzer::execute_serial(std::vector<Task>& tasks, Executor& ex) {
  for (auto& task : tasks) {
    for (std::size_t k = 0; k < task.inputs.size(); ++k) {
      ZIPR_ASSIGN_OR_RETURN(ExecResult res, ex.execute(task.inputs[k], guest_seed_));
      task.outs[k] = summarize(res);
    }
  }
  return Status::success();
}

Status Fuzzer::merge_round(std::vector<Task>& tasks, Executor& trim_ex) {
  // Sequential, in task order; re-checks novelty against the LIVE virgin
  // map so duplicates across concurrent tasks collapse identically no
  // matter how they were scheduled.
  for (auto& task : tasks) {
    for (std::size_t k = 0; k < task.inputs.size(); ++k) {
      RunOut& out = task.outs[k];
      ++stats_.execs;
      if (out.crashed) {
        record_crash(out, task.inputs[k], task.stages[k]);
        continue;
      }
      if (has_new_bits(out.map, virgin_))
        ZIPR_TRY(admit(std::move(task.inputs[k]), std::move(out), task.stages[k], trim_ex));
    }
  }
  recompute_favored(corpus_);
  ++stats_.rounds;
  return Status::success();
}

FuzzResult Fuzzer::take_result() {
  FuzzResult result;
  result.corpus = std::move(corpus_);
  for (const auto& [key, rec] : crashes_) {
    Crash c;
    c.fault = std::get<0>(key);
    c.fault_pc = std::get<1>(key);
    c.path = std::get<2>(key);
    c.input = rec.input;
    c.stage = rec.stage;
    result.crashes.push_back(std::move(c));
  }
  stats_.map_indices_hit =
      static_cast<std::size_t>(std::count_if(virgin_.begin(), virgin_.end(),
                                             [](Byte b) { return b != 0; }));
  result.stats = stats_;
  return result;
}

Result<FuzzResult> fuzz(const zelf::Image& instrumented, const std::vector<Bytes>& seeds,
                        const FuzzOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t tasks_per_round = std::max<std::size_t>(1, opts.tasks_per_round);
  const std::size_t jobs = batch::effective_jobs(opts.jobs, tasks_per_round);

  ExecutorPool pool(instrumented, jobs, opts.limits);
  Fuzzer fz(instrumented, opts);

  // ---- seed the corpus (sequentially, on the merge executor) ----
  ZIPR_TRY(fz.seed_corpus(seeds, pool.first()));

  // ---- rounds: sequential plan, parallel execute, sequential merge ----
  while (fz.stats().execs < opts.max_execs) {
    std::vector<Fuzzer::Task> tasks = fz.plan_round();

    // Workers borrow interchangeable executors; the only shared state
    // they write is their own task's result slots.
    std::mutex err_mu;
    Status first_error;
    batch::parallel_for(static_cast<int>(jobs), tasks.size(), [&](std::size_t t) {
      Executor* ex = pool.acquire();
      for (std::size_t k = 0; k < tasks[t].inputs.size(); ++k) {
        auto res = ex->execute(tasks[t].inputs[k], fz.guest_seed());
        if (!res.ok()) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.ok()) first_error = res.error();
          break;
        }
        tasks[t].outs[k] = summarize(*res);
      }
      pool.release(ex);
    });
    ZIPR_TRY(first_error);

    ZIPR_TRY(fz.merge_round(tasks, pool.first()));
  }

  FuzzResult result = fz.take_result();
  result.stats.resets = pool.total_resets();
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  result.stats.wall_seconds = elapsed.count();
  result.stats.execs_per_sec =
      result.stats.wall_seconds > 0 ? static_cast<double>(result.stats.execs) / result.stats.wall_seconds : 0;
  return result;
}

}  // namespace zipr::fuzz
