#include "fuzz/fuzzer.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "batch/worker_pool.h"
#include "fuzz/mutator.h"

namespace zipr::fuzz {

namespace {

// Rng stream ids carved out of the campaign seed (support/rng.h's
// derive_seed decorrelates adjacent streams, these just keep the spaces
// disjoint and self-describing).
constexpr std::uint64_t kGuestRngStream = 0x6775;     // guest random() syscall
constexpr std::uint64_t kPlannerStreamBase = 1u << 20;  // + round
constexpr std::uint64_t kTaskStreamBase = 1u << 30;     // + global task ordinal

/// What the workers hand back to the sequential merge, per executed input.
struct RunOut {
  Bytes map;
  bool crashed = false;
  vm::Fault fault = vm::Fault::kNone;
  std::uint64_t fault_pc = 0;
  std::uint64_t exec_insns = 0;
  std::size_t consumed = 0;
};

struct Task {
  std::vector<Bytes> inputs;
  std::vector<RunOut> outs;
};

/// Interchangeable-executor pool: workers borrow whichever executor is
/// free. Legal because every run starts from the same startup snapshot,
/// so results do not depend on which executor ran an input.
class ExecutorPool {
 public:
  ExecutorPool(const zelf::Image& image, std::size_t lanes, vm::RunLimits limits) {
    for (std::size_t i = 0; i < lanes; ++i)
      all_.push_back(std::make_unique<Executor>(image, limits));
    for (auto& e : all_) free_.push_back(e.get());
  }

  Executor* acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !free_.empty(); });
    Executor* e = free_.back();
    free_.pop_back();
    return e;
  }

  void release(Executor* e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      free_.push_back(e);
    }
    cv_.notify_one();
  }

  Executor& first() { return *all_.front(); }

  std::uint64_t total_resets() const {
    std::uint64_t n = 0;
    for (const auto& e : all_) n += e->resets();
    return n;
  }

 private:
  std::vector<std::unique_ptr<Executor>> all_;
  std::vector<Executor*> free_;
  std::mutex mu_;
  std::condition_variable cv_;
};

// Word-wise map scans: these run against every executed input, and the
// maps are kMapSize (4096) bytes of mostly zero.
bool has_new_bits(const Bytes& map, const Bytes& virgin) {
  std::size_t i = 0;
  for (; i + 8 <= map.size(); i += 8) {
    std::uint64_t m, v;
    std::memcpy(&m, map.data() + i, 8);
    std::memcpy(&v, virgin.data() + i, 8);
    if (m & ~v) return true;
  }
  for (; i < map.size(); ++i)
    if (map[i] & ~virgin[i]) return true;
  return false;
}

void merge_bits(const Bytes& map, Bytes& virgin) {
  std::size_t i = 0;
  for (; i + 8 <= map.size(); i += 8) {
    std::uint64_t m, v;
    std::memcpy(&m, map.data() + i, 8);
    std::memcpy(&v, virgin.data() + i, 8);
    v |= m;
    std::memcpy(virgin.data() + i, &v, 8);
  }
  for (; i < map.size(); ++i) virgin[i] |= map[i];
}

/// Favored = for some map index, this entry is the cheapest way (smallest
/// input-length x instructions product) to reach it. AFL's queue culling.
void recompute_favored(std::vector<CorpusEntry>& corpus) {
  for (auto& e : corpus) e.favored = false;
  for (std::size_t i = 0; i < kMapSize; ++i) {
    std::size_t best = corpus.size();
    std::uint64_t best_score = 0;
    for (std::size_t j = 0; j < corpus.size(); ++j) {
      if (!corpus[j].map[i]) continue;
      const std::uint64_t score =
          static_cast<std::uint64_t>(corpus[j].input.size() + 1) * (corpus[j].exec_insns + 1);
      if (best == corpus.size() || score < best_score) {
        best = j;
        best_score = score;
      }
    }
    if (best != corpus.size()) corpus[best].favored = true;
  }
}

}  // namespace

Result<FuzzResult> fuzz(const zelf::Image& instrumented, const std::vector<Bytes>& seeds,
                        const FuzzOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t tasks_per_round = std::max<std::size_t>(1, opts.tasks_per_round);
  const std::size_t jobs = batch::effective_jobs(opts.jobs, tasks_per_round);
  const std::uint64_t guest_seed = derive_seed(opts.seed, kGuestRngStream);

  ExecutorPool pool(instrumented, jobs, opts.limits);

  FuzzResult result;
  Bytes virgin(kMapSize, 0);
  std::map<CrashKey, Bytes> crashes;  // ordered: deterministic triage output

  auto record_crash = [&](const RunOut& out, const Bytes& input) {
    ++result.stats.crashing_execs;
    const std::uint64_t pc =
        instrumented.segment_containing(out.fault_pc) ? out.fault_pc : kWildFaultPc;
    crashes.try_emplace(CrashKey{out.fault, pc, path_hash(out.map)}, input);
  };

  // Trimmed admission: cut the unread tail off, then prove on the merge
  // executor that the truncated input retires the exact same per-pc
  // instruction counts (the vm's hot-counter hook) before adopting it.
  auto admit = [&](Bytes input, RunOut out) -> Status {
    if (opts.trim && out.consumed < input.size()) {
      Bytes trimmed(input.begin(), input.begin() + static_cast<std::ptrdiff_t>(out.consumed));
      Executor& ex = pool.first();
      ex.machine().set_count_pcs(true);
      ZIPR_ASSIGN_OR_RETURN(ExecResult full, ex.execute(input, guest_seed));
      auto full_hist = ex.machine().insns_by_pc();
      ZIPR_ASSIGN_OR_RETURN(ExecResult cut, ex.execute(trimmed, guest_seed));
      ex.machine().set_count_pcs(false);
      result.stats.execs += 2;
      if (!cut.crashed && cut.map == full.map && ex.machine().insns_by_pc() == full_hist) {
        input = std::move(trimmed);
        out.exec_insns = cut.run.stats.insns;
      }
    }
    merge_bits(out.map, virgin);
    CorpusEntry entry;
    entry.input = std::move(input);
    entry.map = std::move(out.map);
    entry.exec_insns = out.exec_insns;
    result.corpus.push_back(std::move(entry));
    return Status::success();
  };

  auto to_out = [](ExecResult& res) {  // moves the map out of res
    RunOut out;
    out.map = std::move(res.map);
    out.crashed = res.crashed;
    out.fault = res.run.fault;
    out.fault_pc = res.run.fault_pc;
    out.exec_insns = res.run.stats.insns;
    out.consumed = res.run.input_bytes_consumed;
    return out;
  };

  // ---- seed the corpus (sequentially, on the merge executor) ----
  for (const auto& seed_input : seeds) {
    ZIPR_ASSIGN_OR_RETURN(ExecResult res, pool.first().execute(seed_input, guest_seed));
    ++result.stats.execs;
    RunOut out = to_out(res);
    if (out.crashed) {
      record_crash(out, seed_input);
      continue;
    }
    ZIPR_TRY(admit(seed_input, std::move(out)));
  }
  if (result.corpus.empty()) {
    // Every seed crashed (or none were given): keep something schedulable.
    CorpusEntry entry;
    entry.input = seeds.empty() ? Bytes{} : seeds.front();
    entry.map.assign(kMapSize, 0);
    result.corpus.push_back(std::move(entry));
  }
  recompute_favored(result.corpus);

  // ---- rounds ----
  std::uint64_t task_ordinal = 0;
  while (result.stats.execs < opts.max_execs) {
    // 1. Plan: sequential, deterministic in (corpus, seed, round).
    Rng planner(derive_seed(opts.seed, kPlannerStreamBase + result.stats.rounds));
    std::vector<std::size_t> favored;
    for (std::size_t j = 0; j < result.corpus.size(); ++j)
      if (result.corpus[j].favored) favored.push_back(j);

    std::vector<Task> tasks(tasks_per_round);
    for (auto& task : tasks) {
      const std::uint64_t ordinal = task_ordinal++;
      std::size_t pick;
      if (!favored.empty() && planner.chance(3, 4))
        pick = favored[planner.below(favored.size())];
      else
        pick = planner.below(result.corpus.size());
      CorpusEntry& entry = result.corpus[pick];

      const std::size_t det_total = det_count(entry.input.size());
      if (entry.det_done < det_total) {
        const std::size_t end =
            std::min(det_total, entry.det_done + opts.execs_per_task);
        for (std::size_t i = entry.det_done; i < end; ++i)
          task.inputs.push_back(det_mutate(entry.input, i));
        entry.det_done = end;
      } else {
        Rng rng(derive_seed(opts.seed, kTaskStreamBase + ordinal));
        for (std::size_t k = 0; k < opts.execs_per_task; ++k) {
          if (result.corpus.size() > 1 && rng.chance(1, 4)) {
            std::size_t other = rng.below(result.corpus.size() - 1);
            if (other >= pick) ++other;
            task.inputs.push_back(
                splice_mutate(entry.input, result.corpus[other].input, rng));
          } else {
            task.inputs.push_back(havoc_mutate(entry.input, rng));
          }
        }
      }
      task.outs.resize(task.inputs.size());
    }

    // 2. Execute: workers borrow interchangeable executors; the only
    // shared state they write is their own task's result slots.
    std::mutex err_mu;
    Status first_error;
    batch::parallel_for(static_cast<int>(jobs), tasks.size(), [&](std::size_t t) {
      Executor* ex = pool.acquire();
      for (std::size_t k = 0; k < tasks[t].inputs.size(); ++k) {
        auto res = ex->execute(tasks[t].inputs[k], guest_seed);
        if (!res.ok()) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (first_error.ok()) first_error = res.error();
          break;
        }
        tasks[t].outs[k] = to_out(*res);
      }
      pool.release(ex);
    });
    ZIPR_TRY(first_error);

    // 3. Merge: sequential, in task order; re-checks novelty against the
    // LIVE virgin map so duplicates across concurrent tasks collapse
    // identically no matter how they were scheduled.
    for (auto& task : tasks) {
      for (std::size_t k = 0; k < task.inputs.size(); ++k) {
        RunOut& out = task.outs[k];
        ++result.stats.execs;
        if (out.crashed) {
          record_crash(out, task.inputs[k]);
          continue;
        }
        if (has_new_bits(out.map, virgin))
          ZIPR_TRY(admit(std::move(task.inputs[k]), std::move(out)));
      }
    }
    recompute_favored(result.corpus);
    ++result.stats.rounds;
  }

  for (const auto& [key, input] : crashes) {
    Crash c;
    c.fault = std::get<0>(key);
    c.fault_pc = std::get<1>(key);
    c.path = std::get<2>(key);
    c.input = input;
    result.crashes.push_back(std::move(c));
  }
  result.stats.resets = pool.total_resets();
  result.stats.map_indices_hit =
      static_cast<std::size_t>(std::count_if(virgin.begin(), virgin.end(),
                                             [](Byte b) { return b != 0; }));
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  result.stats.wall_seconds = elapsed.count();
  result.stats.execs_per_sec =
      result.stats.wall_seconds > 0 ? static_cast<double>(result.stats.execs) / result.stats.wall_seconds : 0;
  return result;
}

}  // namespace zipr::fuzz
