#include "zelf/io.h"

#include <cstdio>

namespace zipr::zelf {

namespace {
constexpr std::uint8_t kMagic[4] = {'Z', 'E', 'L', 'F'};
constexpr std::uint16_t kVersion = 2;
constexpr std::uint16_t kFlagLibrary = 1;

void put_name(Bytes& out, const std::string& name) {
  put_u16(out, static_cast<std::uint16_t>(name.size()));
  put_bytes(out, ByteView(reinterpret_cast<const Byte*>(name.data()), name.size()));
}
}  // namespace

Bytes write_image(const Image& image) {
  Bytes out;
  put_bytes(out, ByteView(kMagic, 4));
  put_u16(out, kVersion);
  put_u16(out, image.library ? kFlagLibrary : 0);
  put_u64(out, image.entry);
  put_u32(out, static_cast<std::uint32_t>(image.segments.size()));
  put_u32(out, static_cast<std::uint32_t>(image.symbols.size()));
  put_u32(out, static_cast<std::uint32_t>(image.exports.size()));
  put_u32(out, static_cast<std::uint32_t>(image.imports.size()));
  for (const auto& s : image.segments) {
    put_u8(out, static_cast<std::uint8_t>(s.kind));
    put_u8(out, 0);  // pad
    put_u64(out, s.vaddr);
    put_u64(out, s.memsize);
    put_u64(out, s.bytes.size());
    put_bytes(out, s.bytes);
  }
  for (const auto& sym : image.symbols) {
    put_u8(out, static_cast<std::uint8_t>(sym.kind));
    put_u64(out, sym.addr);
    put_u64(out, sym.size);
    put_name(out, sym.name);
  }
  for (const auto& exp : image.exports) {
    put_u64(out, exp.addr);
    put_name(out, exp.name);
  }
  for (const auto& imp : image.imports) {
    put_u64(out, imp.slot);
    put_name(out, imp.name);
  }
  return out;
}

Result<Image> read_image(ByteView bytes) {
  ByteReader r(bytes);
  ZIPR_ASSIGN_OR_RETURN(Bytes magic, r.bytes(4));
  if (!std::equal(magic.begin(), magic.end(), kMagic))
    return Error::parse("bad ZELF magic");
  ZIPR_ASSIGN_OR_RETURN(std::uint16_t version, r.u16());
  if (version != kVersion) return Error::parse("unsupported ZELF version");
  ZIPR_ASSIGN_OR_RETURN(std::uint16_t flags, r.u16());
  if (flags & ~kFlagLibrary) return Error::parse("unknown ZELF flags");

  Image img;
  img.library = (flags & kFlagLibrary) != 0;
  ZIPR_ASSIGN_OR_RETURN(img.entry, r.u64());
  ZIPR_ASSIGN_OR_RETURN(std::uint32_t nseg, r.u32());
  ZIPR_ASSIGN_OR_RETURN(std::uint32_t nsym, r.u32());
  ZIPR_ASSIGN_OR_RETURN(std::uint32_t nexp, r.u32());
  ZIPR_ASSIGN_OR_RETURN(std::uint32_t nimp, r.u32());

  for (std::uint32_t i = 0; i < nseg; ++i) {
    Segment s;
    ZIPR_ASSIGN_OR_RETURN(std::uint8_t kind, r.u8());
    if (kind > static_cast<std::uint8_t>(SegKind::kBss))
      return Error::parse("bad segment kind");
    s.kind = static_cast<SegKind>(kind);
    ZIPR_TRY(r.skip(1));
    ZIPR_ASSIGN_OR_RETURN(s.vaddr, r.u64());
    ZIPR_ASSIGN_OR_RETURN(s.memsize, r.u64());
    ZIPR_ASSIGN_OR_RETURN(std::uint64_t fsize, r.u64());
    ZIPR_ASSIGN_OR_RETURN(s.bytes, r.bytes(fsize));
    img.segments.push_back(std::move(s));
  }
  for (std::uint32_t i = 0; i < nsym; ++i) {
    Symbol sym;
    ZIPR_ASSIGN_OR_RETURN(std::uint8_t kind, r.u8());
    if (kind > static_cast<std::uint8_t>(Symbol::Kind::kLabel))
      return Error::parse("bad symbol kind");
    sym.kind = static_cast<Symbol::Kind>(kind);
    ZIPR_ASSIGN_OR_RETURN(sym.addr, r.u64());
    ZIPR_ASSIGN_OR_RETURN(sym.size, r.u64());
    ZIPR_ASSIGN_OR_RETURN(std::uint16_t namelen, r.u16());
    ZIPR_ASSIGN_OR_RETURN(Bytes name, r.bytes(namelen));
    sym.name.assign(name.begin(), name.end());
    img.symbols.push_back(std::move(sym));
  }
  for (std::uint32_t i = 0; i < nexp; ++i) {
    Export exp;
    ZIPR_ASSIGN_OR_RETURN(exp.addr, r.u64());
    ZIPR_ASSIGN_OR_RETURN(std::uint16_t namelen, r.u16());
    ZIPR_ASSIGN_OR_RETURN(Bytes name, r.bytes(namelen));
    exp.name.assign(name.begin(), name.end());
    img.exports.push_back(std::move(exp));
  }
  for (std::uint32_t i = 0; i < nimp; ++i) {
    Import imp;
    ZIPR_ASSIGN_OR_RETURN(imp.slot, r.u64());
    ZIPR_ASSIGN_OR_RETURN(std::uint16_t namelen, r.u16());
    ZIPR_ASSIGN_OR_RETURN(Bytes name, r.bytes(namelen));
    imp.name.assign(name.begin(), name.end());
    img.imports.push_back(std::move(imp));
  }
  if (!r.at_end()) return Error::parse("trailing bytes after ZELF payload");
  ZIPR_TRY(img.validate());
  return img;
}

Status save_image(const Image& image, const std::string& path) {
  Bytes bytes = write_image(image);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Error::invalid_argument("cannot open " + path);
  std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Error::internal("short write to " + path);
  return Status::success();
}

Result<Image> load_image(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Error::not_found("cannot open " + path);
  Bytes bytes;
  Byte buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return read_image(bytes);
}

}  // namespace zipr::zelf
