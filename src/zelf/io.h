// ZELF serialization: byte-level reader/writer for Image.
#pragma once

#include "support/status.h"
#include "zelf/image.h"

namespace zipr::zelf {

/// Serialize an image to its on-disk byte form. The result's size equals
/// Image::file_size().
Bytes write_image(const Image& image);

/// Parse an image from bytes; validates structure.
Result<Image> read_image(ByteView bytes);

/// Convenience file I/O.
Status save_image(const Image& image, const std::string& path);
Result<Image> load_image(const std::string& path);

}  // namespace zipr::zelf
