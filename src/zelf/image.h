// ZELF: the executable container format for VLX programs.
//
// ZELF plays the role ELF plays in the paper: a segment-based loadable
// image with an entry point. The rewriter consumes only segment bytes,
// permissions and the entry address -- never symbols. Symbols are an
// OPTIONAL side table carrying ground truth (function starts, data objects)
// used exclusively by tests and accuracy benchmarks, mirroring the paper's
// setting where binaries ship without metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/status.h"

namespace zipr::zelf {

/// Segment role. Execution permission is derived from kind.
enum class SegKind : std::uint8_t {
  kText = 0,    ///< executable code (r-x)
  kRodata = 1,  ///< read-only data (r--)
  kData = 2,    ///< initialized writable data (rw-)
  kBss = 3,     ///< zero-initialized writable data (rw-, no file bytes)
};

const char* seg_kind_name(SegKind k);

struct Segment {
  SegKind kind = SegKind::kText;
  std::uint64_t vaddr = 0;
  std::uint64_t memsize = 0;  ///< in-memory size; >= bytes.size()
  Bytes bytes;                ///< file contents (empty for bss)

  std::uint64_t end() const { return vaddr + memsize; }
  bool contains(std::uint64_t a) const { return a >= vaddr && a < end(); }
  bool executable() const { return kind == SegKind::kText; }
  bool writable() const { return kind == SegKind::kData || kind == SegKind::kBss; }
};

/// Ground-truth symbol (tests/accuracy only; invisible to the rewriter).
struct Symbol {
  enum class Kind : std::uint8_t { kFunc = 0, kObject = 1, kLabel = 2 };
  Kind kind = Kind::kLabel;
  std::uint64_t addr = 0;
  std::uint64_t size = 0;
  std::string name;
};

/// An exported entry point: part of the image's ABI surface (like ELF
/// .dynsym), visible to the loader AND to the rewriter -- every export is
/// an indirect branch target other images may call, so it must stay
/// reachable at its original address (a pin).
struct Export {
  std::string name;
  std::uint64_t addr = 0;
};

/// An imported function: `slot` names an 8-byte cell in this image's data
/// that the loader fills with the exporting image's address before
/// execution begins (a GOT entry). Code calls through the slot.
struct Import {
  std::string name;
  std::uint64_t slot = 0;
};

/// Conventional address-space layout for VLX programs. The assembler and
/// the CB generator lay out programs this way; the VM only needs segments.
namespace layout {
inline constexpr std::uint64_t kTextBase = 0x400000;
inline constexpr std::uint64_t kRodataBase = 0x600000;
inline constexpr std::uint64_t kDataBase = 0x700000;
inline constexpr std::uint64_t kBssBase = 0x780000;
inline constexpr std::uint64_t kStackTop = 0x7ff00000;   ///< initial sp
inline constexpr std::uint64_t kStackSize = 0x100000;    ///< 1 MiB
inline constexpr std::uint64_t kHeapBase = 0x10000000;   ///< allocate() arena
inline constexpr std::uint64_t kPageSize = 4096;
}  // namespace layout

/// A loadable VLX program image: an executable (has an entry point) or a
/// shared library (entry == 0, library == true; enters only through its
/// exports).
class Image {
 public:
  std::uint64_t entry = 0;
  bool library = false;
  std::vector<Segment> segments;
  std::vector<Symbol> symbols;   ///< optional ground truth
  std::vector<Export> exports;   ///< ABI surface (loader + rewriter visible)
  std::vector<Import> imports;   ///< GOT slots the loader must fill

  /// Segment containing address `a`, if any.
  const Segment* segment_containing(std::uint64_t a) const;
  Segment* segment_containing(std::uint64_t a);

  /// First segment of the given kind, if any.
  const Segment* segment_of(SegKind kind) const;
  Segment* segment_of(SegKind kind);

  /// The (single) text segment. Asserts if absent.
  const Segment& text() const;
  Segment& text();

  /// Read bytes [addr, addr+n) out of file-backed segment contents.
  /// Fails if the range is not fully covered by file bytes.
  Result<Bytes> read_bytes(std::uint64_t addr, std::size_t n) const;

  /// Structural validation: non-overlapping segments, entry inside an
  /// executable segment, memsize >= filesize, exactly one text segment.
  Status validate() const;

  /// Serialized file size in bytes (what "on-disk file size" means for the
  /// paper's file-size overhead metric).
  std::size_t file_size() const;
};

}  // namespace zipr::zelf
