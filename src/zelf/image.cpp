#include "zelf/image.h"

#include <algorithm>
#include <cassert>

namespace zipr::zelf {

const char* seg_kind_name(SegKind k) {
  switch (k) {
    case SegKind::kText: return "text";
    case SegKind::kRodata: return "rodata";
    case SegKind::kData: return "data";
    case SegKind::kBss: return "bss";
  }
  return "?";
}

const Segment* Image::segment_containing(std::uint64_t a) const {
  for (const auto& s : segments)
    if (s.contains(a)) return &s;
  return nullptr;
}

Segment* Image::segment_containing(std::uint64_t a) {
  return const_cast<Segment*>(static_cast<const Image*>(this)->segment_containing(a));
}

const Segment* Image::segment_of(SegKind kind) const {
  for (const auto& s : segments)
    if (s.kind == kind) return &s;
  return nullptr;
}

Segment* Image::segment_of(SegKind kind) {
  return const_cast<Segment*>(static_cast<const Image*>(this)->segment_of(kind));
}

const Segment& Image::text() const {
  const Segment* s = segment_of(SegKind::kText);
  assert(s && "image has no text segment");
  return *s;
}

Segment& Image::text() {
  Segment* s = segment_of(SegKind::kText);
  assert(s && "image has no text segment");
  return *s;
}

Result<Bytes> Image::read_bytes(std::uint64_t addr, std::size_t n) const {
  const Segment* s = segment_containing(addr);
  if (!s) return Error::not_found("no segment at " + hex_addr(addr));
  std::uint64_t off = addr - s->vaddr;
  if (off + n > s->bytes.size())
    return Error::invalid_argument("range extends past file-backed bytes at " + hex_addr(addr));
  return Bytes(s->bytes.begin() + static_cast<std::ptrdiff_t>(off),
               s->bytes.begin() + static_cast<std::ptrdiff_t>(off + n));
}

Status Image::validate() const {
  int text_count = 0;
  for (const auto& s : segments) {
    if (s.memsize < s.bytes.size())
      return Error::invalid_argument("segment memsize < filesize");
    if (s.kind == SegKind::kBss && !s.bytes.empty())
      return Error::invalid_argument("bss segment has file bytes");
    if (s.kind == SegKind::kText) ++text_count;
  }
  if (text_count != 1) return Error::invalid_argument("image must have exactly one text segment");

  // Overlap check over sorted copies.
  std::vector<const Segment*> sorted;
  sorted.reserve(segments.size());
  for (const auto& s : segments) sorted.push_back(&s);
  std::sort(sorted.begin(), sorted.end(),
            [](const Segment* a, const Segment* b) { return a->vaddr < b->vaddr; });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1]->end() > sorted[i]->vaddr)
      return Error::invalid_argument("segments overlap at " + hex_addr(sorted[i]->vaddr));
  }

  if (library) {
    if (entry != 0) return Error::invalid_argument("library image must have entry 0");
  } else {
    const Segment* es = segment_containing(entry);
    if (!es || !es->executable())
      return Error::invalid_argument("entry point not in executable segment");
  }

  for (const auto& exp : exports) {
    const Segment* s = segment_containing(exp.addr);
    if (!s || !s->executable())
      return Error::invalid_argument("export '" + exp.name + "' not in executable segment");
  }
  for (const auto& imp : imports) {
    const Segment* s = segment_containing(imp.slot);
    if (!s || !s->writable() || imp.slot + 8 > s->end())
      return Error::invalid_argument("import '" + imp.name + "' slot not in writable segment");
  }
  return Status::success();
}

std::size_t Image::file_size() const {
  // Header: magic(4) + version(2) + flags(2) + entry(8) + counts(4*4).
  std::size_t size = 4 + 2 + 2 + 8 + 4 * 4;
  for (const auto& s : segments) {
    // Record: kind(1) + pad(1) + vaddr(8) + memsize(8) + filesize(8) + bytes.
    size += 1 + 1 + 8 + 8 + 8 + s.bytes.size();
  }
  for (const auto& sym : symbols) size += 1 + 8 + 8 + 2 + sym.name.size();
  for (const auto& exp : exports) size += 8 + 2 + exp.name.size();
  for (const auto& imp : imports) size += 8 + 2 + imp.name.size();
  return size;
}

}  // namespace zipr::zelf
