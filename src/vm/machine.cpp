#include "vm/machine.h"

namespace zipr::vm {

using isa::Cond;
using isa::Insn;
using isa::Op;

namespace {
// Syscall numbers (DECREE-style).
enum : std::uint64_t {
  kSysTerminate = 1,
  kSysTransmit = 2,
  kSysReceive = 3,
  kSysFdwait = 4,
  kSysAllocate = 5,
  kSysDeallocate = 6,
  kSysRandom = 7,
};

// allocate() may never grow the heap into the guard page below the stack
// mapping (the stack itself is [kStackTop - kStackSize, kStackTop)).
constexpr std::uint64_t kHeapCeiling =
    zelf::layout::kStackTop - zelf::layout::kStackSize - kPageSize;
}  // namespace

Machine::Machine(const zelf::Image& image, RunLimits limits) : limits_(limits) {
  for (const auto& seg : image.segments) mem_.map_segment(seg);
  mem_.map_anon(zelf::layout::kStackTop - zelf::layout::kStackSize, zelf::layout::kStackSize,
                kPermRead | kPermWrite);
  regs_[isa::kSpReg] = zelf::layout::kStackTop;
  pc_ = image.entry;
}

Machine::Machine(const LinkResult& linked, RunLimits limits) : limits_(limits) {
  for (const auto& image : linked.images)
    for (const auto& seg : image.segments) mem_.map_segment(seg);
  mem_.map_anon(zelf::layout::kStackTop - zelf::layout::kStackSize, zelf::layout::kStackSize,
                kPermRead | kPermWrite);
  regs_[isa::kSpReg] = zelf::layout::kStackTop;
  pc_ = linked.entry;
}

bool Machine::eval_cond(Cond c) const {
  switch (c) {
    case Cond::kEq: return flags_.zf;
    case Cond::kNe: return !flags_.zf;
    case Cond::kLt: return flags_.slt;
    case Cond::kLe: return flags_.slt || flags_.zf;
    case Cond::kGt: return !(flags_.slt || flags_.zf);
    case Cond::kGe: return !flags_.slt;
    case Cond::kB: return flags_.ult;
    case Cond::kAe: return !flags_.ult;
  }
  return false;
}

std::optional<Fault> Machine::push64(std::uint64_t v) {
  std::uint64_t& sp = regs_[isa::kSpReg];
  if (sp < zelf::layout::kStackTop - zelf::layout::kStackSize + 8)
    return Fault::kStackOverflow;
  sp -= 8;
  if (!mem_.write_u64(sp, v).ok()) return Fault::kBadAccess;
  return std::nullopt;
}

Result<std::uint64_t> Machine::pop64() {
  std::uint64_t& sp = regs_[isa::kSpReg];
  auto v = mem_.read_u64(sp);
  if (!v.ok()) return v.error();
  sp += 8;
  return *v;
}

std::optional<Fault> Machine::do_syscall() {
  ++stats_.syscalls;
  std::uint64_t no = regs_[0];
  switch (no) {
    case kSysTerminate:
      exited_ = true;
      exit_status_ = static_cast<std::int64_t>(regs_[1]);
      return std::nullopt;
    case kSysTransmit: {
      std::uint64_t buf = regs_[2], count = regs_[3];
      if (output_.size() + count > limits_.max_output) return Fault::kBadSyscall;
      auto data = mem_.read_block(buf, count);
      if (!data.ok()) return Fault::kBadAccess;
      put_bytes(output_, *data);
      regs_[0] = count;
      return std::nullopt;
    }
    case kSysReceive: {
      std::uint64_t buf = regs_[2], count = regs_[3];
      std::size_t avail = input_.size() - input_pos_;
      std::size_t n = std::min<std::size_t>(count, avail);
      if (n > 0) {
        if (!mem_.write_block(buf, ByteView(input_.data() + input_pos_, n)).ok())
          return Fault::kBadAccess;
        input_pos_ += n;
      }
      regs_[0] = n;
      return std::nullopt;
    }
    case kSysFdwait:
      regs_[0] = 0;
      return std::nullopt;
    case kSysAllocate: {
      std::uint64_t size = regs_[1];
      if (size == 0 || size > (64ull << 20)) return Fault::kBadSyscall;
      std::uint64_t base = heap_next_;
      std::uint64_t mapped = (size + kPageSize - 1) & kPageMask;
      if (base > kHeapCeiling || mapped > kHeapCeiling - base)
        return Fault::kBadSyscall;  // heap would run into the stack guard
      mem_.map_anon(base, mapped, kPermRead | kPermWrite);
      heap_next_ += mapped;
      regs_[0] = base;
      return std::nullopt;
    }
    case kSysDeallocate:
      regs_[0] = 0;
      return std::nullopt;
    case kSysRandom: {
      std::uint64_t buf = regs_[1], count = regs_[2];
      Bytes data;
      data.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i)
        data.push_back(static_cast<Byte>(rng_.next() & 0xff));
      if (!mem_.write_block(buf, data).ok()) return Fault::kBadAccess;
      regs_[0] = count;
      return std::nullopt;
    }
    default:
      return Fault::kBadSyscall;
  }
}

std::optional<Fault> Machine::dispatch(const Insn& in) {
  const std::uint64_t next = pc_ + in.length;
  auto set_zs = [&](std::uint64_t r) {
    flags_.zf = r == 0;
    flags_.slt = static_cast<std::int64_t>(r) < 0;
  };

  switch (in.op) {
    case Op::kNop:
      break;
    case Op::kHlt:
      return Fault::kHalt;
    case Op::kSyscall: {
      auto f = do_syscall();
      if (f) return f;
      break;
    }

    case Op::kJmp:
      pc_ = in.target(pc_);
      return std::nullopt;
    case Op::kJcc:
      if (eval_cond(in.cond)) {
        pc_ = in.target(pc_);
        return std::nullopt;
      }
      break;
    case Op::kCall: {
      if (auto f = push64(next)) return f;
      pc_ = in.target(pc_);
      return std::nullopt;
    }
    case Op::kCallR: {
      if (auto f = push64(next)) return f;
      pc_ = regs_[in.ra];
      return std::nullopt;
    }
    case Op::kJmpR:
      pc_ = regs_[in.ra];
      return std::nullopt;
    case Op::kJmpT: {
      std::uint64_t slot = static_cast<std::uint64_t>(in.imm) + regs_[in.ra] * 8;
      auto t = mem_.read_u64(slot);
      if (!t.ok()) return Fault::kBadAccess;
      pc_ = *t;
      return std::nullopt;
    }
    case Op::kRet: {
      auto t = pop64();
      if (!t.ok()) return Fault::kBadAccess;
      pc_ = *t;
      return std::nullopt;
    }

    case Op::kPush:
      if (auto f = push64(regs_[in.ra])) return f;
      break;
    case Op::kPushI:
      if (auto f = push64(static_cast<std::uint64_t>(in.imm))) return f;
      break;
    case Op::kPop: {
      auto v = pop64();
      if (!v.ok()) return Fault::kBadAccess;
      regs_[in.ra] = *v;
      break;
    }

    case Op::kMovI64:
    case Op::kMovI:
      regs_[in.ra] = static_cast<std::uint64_t>(in.imm);
      break;
    case Op::kMov:
      regs_[in.ra] = regs_[in.rb];
      break;
    case Op::kLea:
      regs_[in.ra] = in.pc_ref(pc_);
      break;
    case Op::kLoadPc: {
      auto v = mem_.read_u64(in.pc_ref(pc_));
      if (!v.ok()) return Fault::kBadAccess;
      regs_[in.ra] = *v;
      break;
    }
    case Op::kLoad: {
      auto v = mem_.read_u64(regs_[in.rb] + static_cast<std::uint64_t>(in.imm));
      if (!v.ok()) return Fault::kBadAccess;
      regs_[in.ra] = *v;
      break;
    }
    case Op::kStore:
      if (!mem_.write_u64(regs_[in.ra] + static_cast<std::uint64_t>(in.imm), regs_[in.rb]).ok())
        return Fault::kBadAccess;
      break;
    case Op::kLoad8: {
      auto v = mem_.read_u8(regs_[in.rb] + static_cast<std::uint64_t>(in.imm));
      if (!v.ok()) return Fault::kBadAccess;
      regs_[in.ra] = *v;
      break;
    }
    case Op::kStore8:
      if (!mem_.write_u8(regs_[in.ra] + static_cast<std::uint64_t>(in.imm),
                         static_cast<std::uint8_t>(regs_[in.rb] & 0xff))
               .ok())
        return Fault::kBadAccess;
      break;

    case Op::kAdd: regs_[in.ra] += regs_[in.rb]; set_zs(regs_[in.ra]); break;
    case Op::kSub: regs_[in.ra] -= regs_[in.rb]; set_zs(regs_[in.ra]); break;
    case Op::kAnd: regs_[in.ra] &= regs_[in.rb]; set_zs(regs_[in.ra]); break;
    case Op::kOr: regs_[in.ra] |= regs_[in.rb]; set_zs(regs_[in.ra]); break;
    case Op::kXor: regs_[in.ra] ^= regs_[in.rb]; set_zs(regs_[in.ra]); break;
    case Op::kMul: regs_[in.ra] *= regs_[in.rb]; set_zs(regs_[in.ra]); break;
    case Op::kDiv:
      if (regs_[in.rb] == 0) return Fault::kDivByZero;
      regs_[in.ra] /= regs_[in.rb];
      set_zs(regs_[in.ra]);
      break;
    case Op::kMod:
      if (regs_[in.rb] == 0) return Fault::kDivByZero;
      regs_[in.ra] %= regs_[in.rb];
      set_zs(regs_[in.ra]);
      break;
    case Op::kShl: regs_[in.ra] <<= (regs_[in.rb] & 63); set_zs(regs_[in.ra]); break;
    case Op::kShr: regs_[in.ra] >>= (regs_[in.rb] & 63); set_zs(regs_[in.ra]); break;
    case Op::kSar:
      regs_[in.ra] = static_cast<std::uint64_t>(static_cast<std::int64_t>(regs_[in.ra]) >>
                                                (regs_[in.rb] & 63));
      set_zs(regs_[in.ra]);
      break;

    case Op::kAddI: regs_[in.ra] += static_cast<std::uint64_t>(in.imm); set_zs(regs_[in.ra]); break;
    case Op::kSubI: regs_[in.ra] -= static_cast<std::uint64_t>(in.imm); set_zs(regs_[in.ra]); break;
    case Op::kAndI: regs_[in.ra] &= static_cast<std::uint64_t>(in.imm); set_zs(regs_[in.ra]); break;
    case Op::kOrI: regs_[in.ra] |= static_cast<std::uint64_t>(in.imm); set_zs(regs_[in.ra]); break;
    case Op::kXorI: regs_[in.ra] ^= static_cast<std::uint64_t>(in.imm); set_zs(regs_[in.ra]); break;
    case Op::kShlI: regs_[in.ra] <<= (static_cast<std::uint64_t>(in.imm) & 63); set_zs(regs_[in.ra]); break;
    case Op::kShrI: regs_[in.ra] >>= (static_cast<std::uint64_t>(in.imm) & 63); set_zs(regs_[in.ra]); break;

    case Op::kCmp: {
      std::uint64_t a = regs_[in.ra], b = regs_[in.rb];
      flags_.zf = a == b;
      flags_.slt = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
      flags_.ult = a < b;
      break;
    }
    case Op::kCmpI: {
      std::uint64_t a = regs_[in.ra], b = static_cast<std::uint64_t>(in.imm);
      flags_.zf = a == b;
      flags_.slt = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
      flags_.ult = a < b;
      break;
    }
    case Op::kTest: {
      std::uint64_t t = regs_[in.ra] & regs_[in.rb];
      flags_.zf = t == 0;
      flags_.slt = static_cast<std::int64_t>(t) < 0;
      flags_.ult = false;
      break;
    }

    case Op::kInvalid:
      return Fault::kBadInsn;
  }

  pc_ = next;
  return std::nullopt;
}

std::optional<Fault> Machine::step() {
  auto bytes = mem_.fetch(pc_, isa::kMaxInsnLen);
  if (!bytes.ok()) return Fault::kBadAccess;
  Insn in;
  if (!isa::decode_at(*bytes, in)) return Fault::kBadInsn;

  if (trace_) trace_(pc_, in);
  if (count_pcs_) count_pc(pc_);
  ++stats_.insns;
  stats_.cycles += static_cast<std::uint64_t>(isa::cost_of(in.op));
  return dispatch(in);
}

void Machine::count_pc(std::uint64_t pc) {
  const std::uint64_t base = pc & kPageMask;
  if (base != pc_count_base_) {
    auto [it, inserted] = pc_counts_.try_emplace(base);
    if (inserted) it->second = std::make_unique<std::uint64_t[]>(kPageSize);  // zeroed
    pc_count_base_ = base;
    pc_count_page_ = it->second.get();
  }
  ++pc_count_page_[pc & (kPageSize - 1)];
}

std::unordered_map<std::uint64_t, std::uint64_t> Machine::insns_by_pc() const {
  std::unordered_map<std::uint64_t, std::uint64_t> out;
  for (const auto& [base, counters] : pc_counts_)
    for (std::uint64_t off = 0; off < kPageSize; ++off)
      if (counters[off] != 0) out.emplace(base + off, counters[off]);
  return out;
}

const Machine::CodePage* Machine::code_page(std::uint64_t base) {
  if (code_cache_epoch_ != mem_.code_epoch()) {
    // Executable content changed somewhere: drop every decode table and
    // rebuild lazily (events are rare -- exec pages are r-x in practice).
    code_cache_.clear();
    code_cache_epoch_ = mem_.code_epoch();
  }
  auto it = code_cache_.find(base);
  if (it != code_cache_.end()) return it->second.get();
  const Byte* data = mem_.exec_page_data(base);
  if (data == nullptr) return nullptr;  // negatives are not cached: mappings can appear
  auto page = std::make_unique<CodePage>();
  page->slots.resize(kPageSize);
  for (std::size_t off = 0; off < kPageSize; ++off) {
    CodePage::Slot& slot = page->slots[off];
    if (off + isa::kMaxInsnLen > kPageSize) {
      slot.kind = CodePage::Kind::kBoundary;
    } else if (isa::decode_at(ByteView(data + off, isa::kMaxInsnLen), slot.insn)) {
      slot.cost = static_cast<std::uint16_t>(isa::cost_of(slot.insn.op));
      slot.kind = CodePage::Kind::kDecoded;
    }  // else stays kBadInsn
  }
  return code_cache_.emplace(base, std::move(page)).first->second.get();
}

void Machine::run_slow(RunResult& r) {
  while (!exited_) {
    if (stats_.insns >= limits_.max_insns) {
      r.fault = Fault::kGasExhausted;
      r.fault_pc = pc_;
      return;
    }
    const std::uint64_t pc_before = pc_;
    auto fault = step();
    if (fault) {
      r.fault = *fault;
      r.fault_pc = pc_before;
      return;
    }
  }
}

void Machine::run_fast(RunResult& r) {
  const CodePage* page = nullptr;
  std::uint64_t page_base = kNoPage;
  std::uint64_t epoch = mem_.code_epoch();
  while (!exited_) {
    if (stats_.insns >= limits_.max_insns) {
      r.fault = Fault::kGasExhausted;
      r.fault_pc = pc_;
      return;
    }
    const std::uint64_t base = pc_ & kPageMask;
    if (base != page_base || epoch != mem_.code_epoch()) {
      page = code_page(base);
      epoch = mem_.code_epoch();
      page_base = base;
      // One page per retired instruction is exactly the slow path's
      // touched set: non-boundary slots have in-page fetch windows.
      if (page != nullptr) mem_.touch_page(base);
    }
    const std::uint64_t pc_before = pc_;
    std::optional<Fault> fault;
    if (page == nullptr) {
      fault = step();      // unmapped / non-exec pc: fault via the slow path
      page_base = kNoPage;  // pc may have moved into freshly visible code
    } else {
      const CodePage::Slot& slot = page->slots[pc_ & (kPageSize - 1)];
      switch (slot.kind) {
        case CodePage::Kind::kDecoded:
          ++stats_.insns;
          stats_.cycles += slot.cost;
          fault = dispatch(slot.insn);
          break;
        case CodePage::Kind::kBoundary:
          fault = step();  // fetch window crosses the page edge
          page_base = kNoPage;
          break;
        case CodePage::Kind::kBadInsn:
          fault = Fault::kBadInsn;
          break;
      }
    }
    if (fault) {
      r.fault = *fault;
      r.fault_pc = pc_before;
      return;
    }
  }
}

RunResult Machine::run() {
  RunResult r;
  // Tracing and pc counting observe every retired instruction: take the
  // per-instruction slow path so hook behavior is independent of caching.
  if (decode_cache_on_ && !trace_ && !count_pcs_)
    run_fast(r);
  else
    run_slow(r);
  r.exited = exited_;
  if (exited_) r.exit_status = exit_status_;
  r.stats = stats_;
  r.stats.max_rss_pages = mem_.pages_touched();
  r.output = std::move(output_);
  r.input_bytes_consumed = input_pos_;
  return r;
}

Machine::Snapshot Machine::snapshot() {
  Snapshot snap;
  snap.mem = mem_.snapshot();
  for (int i = 0; i < isa::kNumRegs; ++i) snap.regs[i] = regs_[i];
  snap.pc = pc_;
  snap.flags = flags_;
  snap.heap_next = heap_next_;
  return snap;
}

Status Machine::restore(const Snapshot& snap) {
  ZIPR_TRY(mem_.restore(snap.mem));
  for (int i = 0; i < isa::kNumRegs; ++i) regs_[i] = snap.regs[i];
  pc_ = snap.pc;
  flags_ = snap.flags;
  heap_next_ = snap.heap_next;
  rng_ = Rng(0);
  input_.clear();
  input_pos_ = 0;
  output_.clear();
  stats_ = ExecStats{};
  exited_ = false;
  exit_status_ = -1;
  pc_counts_.clear();
  pc_count_base_ = kNoPage;
  pc_count_page_ = nullptr;
  return Status::success();
}

RunResult run_program(const zelf::Image& image, ByteView input, std::uint64_t seed,
                      RunLimits limits) {
  Machine m(image, limits);
  m.set_input(Bytes(input.begin(), input.end()));
  m.set_random_seed(seed);
  return m.run();
}

RunResult run_linked(const LinkResult& linked, ByteView input, std::uint64_t seed,
                     RunLimits limits) {
  Machine m(linked, limits);
  m.set_input(Bytes(input.begin(), input.end()));
  m.set_random_seed(seed);
  return m.run();
}

}  // namespace zipr::vm
