// The loader: combine an executable image with shared-library images into
// one runnable address space, binding imports to exports.
//
// This is the role the dynamic loader plays in the paper's Apache
// experiment ("the transformed main executable inter-operating with the
// transformed shared libraries"): each image is built -- and rewritten --
// independently; at load time every import's GOT slot is filled with the
// exporting image's address. Because an export address is part of a
// library's ABI surface, the rewriter pins it, so a library rewritten in
// isolation keeps all its exported entry points valid for callers it has
// never seen.
#pragma once

#include "support/status.h"
#include "zelf/image.h"

namespace zipr::vm {

struct LinkResult {
  std::vector<zelf::Image> images;  ///< import slots patched
  std::uint64_t entry = 0;          ///< the executable's entry point
};

/// Link images[0] (the executable) against the rest (libraries). Checks
/// cross-image segment overlap, resolves every import by name, and writes
/// the resolved addresses into the import slots. Fails on duplicate or
/// missing exports.
Result<LinkResult> link(std::vector<zelf::Image> images);

}  // namespace zipr::vm
