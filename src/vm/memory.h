// Paged virtual memory for the VLX VM.
//
// Pages are materialized lazily; the set of pages ever touched is the VM's
// MaxRSS statistic (in pages), the paper's memory-overhead metric. Page
// permissions mirror segment kinds so the VM faults on writes to text or
// rodata and on execution of non-executable pages.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "support/bytes.h"
#include "support/status.h"
#include "zelf/image.h"

namespace zipr::vm {

inline constexpr std::uint64_t kPageSize = zelf::layout::kPageSize;
inline constexpr std::uint64_t kPageMask = ~(kPageSize - 1);

enum Perm : std::uint8_t {
  kPermRead = 1,
  kPermWrite = 2,
  kPermExec = 4,
};

/// Machine fault kinds surfaced as run termination reasons.
enum class Fault {
  kNone,
  kBadAccess,     ///< unmapped address
  kBadPerm,       ///< permission violation
  kBadInsn,       ///< undecodable instruction
  kBadSyscall,    ///< unknown syscall number
  kDivByZero,
  kHalt,          ///< executed hlt
  kGasExhausted,  ///< ran past the instruction budget
  kStackOverflow,
};

const char* fault_name(Fault f);

class Memory {
 public:
  /// Map a segment's bytes with permissions derived from its kind.
  void map_segment(const zelf::Segment& seg);

  /// Map an anonymous zeroed region (stack, heap arena).
  void map_anon(std::uint64_t vaddr, std::uint64_t size, std::uint8_t perms);

  bool is_mapped(std::uint64_t addr) const;

  /// Reads/writes checked against mapping + permissions.
  Result<std::uint8_t> read_u8(std::uint64_t addr);
  Result<std::uint64_t> read_u64(std::uint64_t addr);
  Status write_u8(std::uint64_t addr, std::uint8_t v);
  Status write_u64(std::uint64_t addr, std::uint64_t v);

  /// Fetch up to `n` bytes for instruction decode; requires exec permission
  /// on the first byte's page. May return fewer bytes at a mapping edge.
  Result<Bytes> fetch(std::uint64_t addr, std::size_t n);

  /// Bulk access for syscalls (transmit/receive).
  Result<Bytes> read_block(std::uint64_t addr, std::size_t n);
  Status write_block(std::uint64_t addr, ByteView data);

  /// Bulk introspection read that neither checks permissions nor marks
  /// pages touched: harness/debugger access (e.g. the fuzzing executor
  /// reading the coverage map back) that must not perturb the RSS metric.
  /// Fails if any byte of the range is unmapped.
  Result<Bytes> peek_block(std::uint64_t addr, std::size_t n) const;

  // ---- snapshot / restore (the fuzzing executor's persistent mode) ----

  /// A deep copy of the current contents, plus the touched-page set.
  struct Snapshot {
    struct PageCopy {
      Bytes data;
      std::uint8_t perms = 0;
    };
    std::unordered_map<std::uint64_t, PageCopy> pages;
    std::unordered_map<std::uint64_t, bool> touched;
  };

  /// Capture the current state and begin dirty-page tracking: from now on
  /// every written or newly mapped page is recorded so restore() can roll
  /// back by copying only those pages instead of the whole address space.
  Snapshot snapshot();

  /// Roll memory back to `snap`. Only valid on the Memory that produced
  /// the snapshot (dirty tracking must be active). Pages mapped since the
  /// snapshot are unmapped; dirtied pages get their bytes and permissions
  /// restored; the touched set reverts, so per-run RSS restarts clean.
  Status restore(const Snapshot& snap);

  /// Pages ever touched (read, written, or executed): the MaxRSS metric.
  std::size_t pages_touched() const { return touched_.size(); }

  /// Pages touched restricted to a given address window (used to separate
  /// text-resident from data-resident RSS in benchmarks).
  std::size_t pages_touched_in(std::uint64_t lo, std::uint64_t hi) const;

 private:
  struct Page {
    std::unique_ptr<Byte[]> data;
    std::uint8_t perms = 0;
  };

  Page* page_at(std::uint64_t addr);
  const Page* page_at(std::uint64_t addr) const;
  Page& ensure_page(std::uint64_t page_base, std::uint8_t perms);
  void touch(std::uint64_t addr);
  void mark_dirty(std::uint64_t page_base);

  std::unordered_map<std::uint64_t, Page> pages_;
  std::unordered_map<std::uint64_t, bool> touched_;

  bool tracking_ = false;
  std::unordered_set<std::uint64_t> dirty_;  ///< pages written/mapped since snapshot
};

}  // namespace zipr::vm
