// Paged virtual memory for the VLX VM.
//
// Pages are materialized lazily; the set of pages ever touched is the VM's
// MaxRSS statistic (in pages), the paper's memory-overhead metric. Page
// permissions mirror segment kinds so the VM faults on writes to text or
// rodata and on execution of non-executable pages.
//
// Hot-path design (the fuzzer's persistent-mode executor drives millions
// of accesses per second through here):
//   * a tiny inline TLB in front of the page hash map -- the overwhelmingly
//     common same-page access skips the unordered_map probe entirely
//     (page nodes are stable across inserts, so cached Page* stay valid;
//     the TLB is flushed on restore(), the only path that erases pages);
//   * single-entry dedup caches in front of the touched-page and dirty-page
//     sets, so a run hammering one page pays the hash insert once;
//   * aligned u64 accesses and block transfers move whole page runs with
//     memcpy instead of byte-at-a-time loops.
//
// Code-cache contract: `code_epoch()` increments whenever the bytes or
// permissions of any executable page may have changed -- writes landing on
// an exec page, map_segment()/map_anon() creating or widening an exec
// mapping, and restore() rolling back or unmapping an exec page. The
// machine's predecoded-instruction cache keys its validity on this epoch
// and drops stale decode tables before the next instruction executes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "support/bytes.h"
#include "support/status.h"
#include "zelf/image.h"

namespace zipr::vm {

inline constexpr std::uint64_t kPageSize = zelf::layout::kPageSize;
inline constexpr std::uint64_t kPageMask = ~(kPageSize - 1);

enum Perm : std::uint8_t {
  kPermRead = 1,
  kPermWrite = 2,
  kPermExec = 4,
};

/// Machine fault kinds surfaced as run termination reasons.
enum class Fault {
  kNone,
  kBadAccess,     ///< unmapped address
  kBadPerm,       ///< permission violation
  kBadInsn,       ///< undecodable instruction
  kBadSyscall,    ///< unknown syscall number
  kDivByZero,
  kHalt,          ///< executed hlt
  kGasExhausted,  ///< ran past the instruction budget
  kStackOverflow,
};

const char* fault_name(Fault f);

class Memory {
 public:
  /// Map a segment's bytes with permissions derived from its kind.
  void map_segment(const zelf::Segment& seg);

  /// Map an anonymous zeroed region (stack, heap arena).
  void map_anon(std::uint64_t vaddr, std::uint64_t size, std::uint8_t perms);

  bool is_mapped(std::uint64_t addr) const;

  /// Reads/writes checked against mapping + permissions.
  Result<std::uint8_t> read_u8(std::uint64_t addr);
  Result<std::uint64_t> read_u64(std::uint64_t addr);
  Status write_u8(std::uint64_t addr, std::uint8_t v);
  Status write_u64(std::uint64_t addr, std::uint64_t v);

  /// Fetch up to `n` bytes for instruction decode; requires exec permission
  /// on the first byte's page. May return fewer bytes at a mapping edge.
  Result<Bytes> fetch(std::uint64_t addr, std::size_t n);

  /// Bulk access for syscalls (transmit/receive). Copied per contiguous
  /// page run with memcpy. Failure semantics match the byte-loop original:
  /// a write that faults mid-range has already applied every byte before
  /// the faulting page (page granularity == byte granularity here, since
  /// mapping and permissions are per page).
  Result<Bytes> read_block(std::uint64_t addr, std::size_t n);
  Status write_block(std::uint64_t addr, ByteView data);

  /// Bulk introspection read that neither checks permissions nor marks
  /// pages touched: harness/debugger access (e.g. the fuzzing executor
  /// reading the coverage map back) that must not perturb the RSS metric.
  /// Fails if any byte of the range is unmapped.
  Result<Bytes> peek_block(std::uint64_t addr, std::size_t n) const;

  /// peek_block into a caller-owned buffer (allocation-free: the fuzzing
  /// executor reuses one buffer across millions of runs). Reads
  /// `out.size()` bytes starting at `addr`.
  Status peek_into(std::uint64_t addr, std::span<Byte> out) const;

  // ---- execution-engine access (vm::Machine's predecoded cache) ----

  /// Raw bytes of an executable page, or nullptr if `page_base` is not a
  /// mapped page with exec permission. Does not mark the page touched --
  /// the machine pairs this with touch_page() at execution time so the RSS
  /// metric matches the fetch-based slow path.
  const Byte* exec_page_data(std::uint64_t page_base) const;

  /// Mark one page touched (the predecoded fast path's replacement for
  /// fetch()'s per-byte touching; slots whose fetch window would cross the
  /// page edge take the slow path, so one page per retired instruction is
  /// exactly what fetch would have touched).
  void touch_page(std::uint64_t page_base) { touch(page_base); }

  /// Monotone counter of "executable content may have changed" events; see
  /// the header comment for the exact trigger set.
  std::uint64_t code_epoch() const { return code_epoch_; }

  // ---- snapshot / restore (the fuzzing executor's persistent mode) ----

  /// A deep copy of the current contents, plus the touched-page set.
  struct Snapshot {
    struct PageCopy {
      Bytes data;
      std::uint8_t perms = 0;
    };
    std::unordered_map<std::uint64_t, PageCopy> pages;
    std::unordered_map<std::uint64_t, bool> touched;
  };

  /// Capture the current state and begin dirty-page tracking: from now on
  /// every written or newly mapped page is recorded so restore() can roll
  /// back by copying only those pages instead of the whole address space.
  Snapshot snapshot();

  /// Roll memory back to `snap`. Only valid on the Memory that produced
  /// the snapshot (dirty tracking must be active). Pages mapped since the
  /// snapshot are unmapped; dirtied pages get their bytes and permissions
  /// restored; the touched set reverts, so per-run RSS restarts clean.
  Status restore(const Snapshot& snap);

  /// Pages ever touched (read, written, or executed): the MaxRSS metric.
  std::size_t pages_touched() const { return touched_.size(); }

  /// Pages touched restricted to a given address window (used to separate
  /// text-resident from data-resident RSS in benchmarks).
  std::size_t pages_touched_in(std::uint64_t lo, std::uint64_t hi) const;

 private:
  struct Page {
    std::unique_ptr<Byte[]> data;
    std::uint8_t perms = 0;
  };

  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};

  Page* page_at(std::uint64_t addr);
  const Page* page_at(std::uint64_t addr) const;
  Page& ensure_page(std::uint64_t page_base, std::uint8_t perms);
  void touch(std::uint64_t addr);
  void mark_dirty(std::uint64_t page_base);
  void note_code_change() { ++code_epoch_; }
  void flush_tlb() const;

  /// TLB probe + fill: the resolved Page* for `addr`, or nullptr.
  const Page* lookup(std::uint64_t addr) const;

  std::unordered_map<std::uint64_t, Page> pages_;
  std::unordered_map<std::uint64_t, bool> touched_;

  bool tracking_ = false;
  std::unordered_set<std::uint64_t> dirty_;  ///< pages written/mapped since snapshot

  /// 2-entry direct-mapped TLB (indexed by page-number parity). Page*
  /// values stay valid across pages_ inserts (node-based map); restore()
  /// is the only eraser and flushes. Mutable: const reads warm it too.
  struct TlbEntry {
    std::uint64_t base = kNoPage;
    const Page* page = nullptr;
  };
  mutable TlbEntry tlb_[2];

  std::uint64_t last_touched_ = kNoPage;  ///< dedup cache over touched_
  std::uint64_t last_dirty_ = kNoPage;    ///< dedup cache over dirty_
  std::uint64_t code_epoch_ = 0;
};

}  // namespace zipr::vm
