// The VLX virtual machine: a deterministic interpreter for ZELF images.
//
// This plays the role of DARPA's DECREE environment in the paper's
// evaluation: a minimal, restricted OS (seven syscalls, no filesystem or
// network) in which challenge binaries run and their characteristics --
// execution time (instructions/cycles), memory use (pages touched) and
// functionality (output bytes) -- can be measured deterministically.
//
// Syscalls (number in r0, args r1..r3, result in r0):
//   1 terminate(status)           ends the run with exit status r1
//   2 transmit(fd, buf, count)    appends bytes to the output stream
//   3 receive(fd, buf, count)     reads bytes from the input stream (0=EOF)
//   4 fdwait()                    no-op, returns 0
//   5 allocate(size)              maps zeroed rw pages, returns base address
//   6 deallocate(addr, size)      accepted and ignored, returns 0
//   7 random(buf, count)          fills buf from the seeded RNG
//
// Execution engine: the hot loop runs from a predecoded-instruction cache.
// Each executable page is decoded once -- at every byte offset, superset
// style, since control flow may land anywhere -- into a table of
// {decoded Insn, cost, tag} slots, so retiring an instruction is a slot
// load plus dispatch: no per-step fetch allocation, no re-decode, no page
// hash probe (vm::Memory's inline TLB covers the data path). Slots whose
// fetch window would cross the page edge are tagged to take the legacy
// fetch+decode slow path, which keeps faults, stats and the touched-page
// (MaxRSS) set bit-identical to the uncached interpreter. The cache keys
// its validity on Memory::code_epoch(): writes to executable pages, new or
// widened exec mappings, and snapshot-restore rollback of exec pages all
// invalidate before the next instruction executes. Tracing and pc-count
// hooks force the per-instruction slow path so observable behavior never
// depends on the cache; set_decode_cache(false) disables it outright
// (differential tests run both ways and assert identical results).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "isa/insn.h"
#include "support/rng.h"
#include "vm/link.h"
#include "vm/memory.h"

namespace zipr::vm {

struct RunLimits {
  std::uint64_t max_insns = 50'000'000;  ///< gas budget
  std::size_t max_output = 1 << 24;      ///< transmit cap (16 MiB)
};

/// Execution statistics: the paper's performance & memory metrics.
struct ExecStats {
  std::uint64_t insns = 0;     ///< instructions retired
  std::uint64_t cycles = 0;    ///< cost-model cycles
  std::uint64_t syscalls = 0;
  std::size_t max_rss_pages = 0;  ///< pages ever touched
};

struct RunResult {
  bool exited = false;             ///< terminated via syscall (vs fault)
  std::int64_t exit_status = -1;
  Fault fault = Fault::kNone;      ///< set when !exited
  std::uint64_t fault_pc = 0;
  ExecStats stats;
  Bytes output;                    ///< transmitted bytes
  /// Bytes of the input stream actually receive()d before the run ended.
  /// Corpus trimming uses this to cut unread tail bytes off fuzz inputs.
  std::size_t input_bytes_consumed = 0;
};

class Machine {
 private:
  struct Flags {
    bool zf = false;
    bool slt = false;  ///< signed less-than at last compare
    bool ult = false;  ///< unsigned less-than at last compare
  };

 public:
  explicit Machine(const zelf::Image& image, RunLimits limits = {});

  /// Run a linked executable+libraries address space (see vm/link.h).
  explicit Machine(const LinkResult& linked, RunLimits limits = {});

  /// Bytes the program can receive(); unread input means EOF after the end.
  void set_input(Bytes input) { input_ = std::move(input); }

  /// Seed for the random() syscall (deterministic pollers rely on this).
  void set_random_seed(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Optional per-instruction hook (tests/tracing). Forces the slow path.
  using TraceFn = std::function<void(std::uint64_t pc, const isa::Insn&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  /// Optional per-run hot counters: instructions retired by pc. Off by
  /// default; the fuzzer's trim stage turns it on to prove a truncated
  /// input executes the same path. Counted in flat per-exec-page arrays
  /// (no hash insert per retired instruction); forces the slow path.
  void set_count_pcs(bool on) { count_pcs_ = on; }
  std::unordered_map<std::uint64_t, std::uint64_t> insns_by_pc() const;

  /// Toggle the predecoded-instruction cache (default on). The cached and
  /// uncached interpreters are observably identical -- RunResult, faults,
  /// stats, output -- which the differential tests assert corpus-wide.
  void set_decode_cache(bool on) { decode_cache_on_ = on; }
  bool decode_cache() const { return decode_cache_on_; }

  /// Run until terminate, fault, or gas exhaustion.
  RunResult run();

  // ---- snapshot / restore (persistent-mode fuzzing) ----

  /// Full machine state at a point in time; restore() rolls back to it.
  struct Snapshot {
    Memory::Snapshot mem;
    std::uint64_t regs[isa::kNumRegs] = {};
    std::uint64_t pc = 0;
    Flags flags;
    std::uint64_t heap_next = 0;
  };

  /// Capture registers + memory and arm the memory's dirty-page tracking;
  /// typically taken right after construction ("after startup") so every
  /// later run can start from a pristine address space without re-linking.
  Snapshot snapshot();

  /// Roll the machine back to `snap` and reset all per-run state (input,
  /// output, statistics, termination). The caller re-arms input and the
  /// random() seed for the next run. Decode tables survive unless the
  /// rollback touched an executable page (Memory::code_epoch()).
  Status restore(const Snapshot& snap);

  // ---- state access for white-box tests ----
  std::uint64_t reg(int i) const { return regs_[i]; }
  void set_reg(int i, std::uint64_t v) { regs_[i] = v; }
  std::uint64_t pc() const { return pc_; }
  Memory& memory() { return mem_; }
  std::uint64_t heap_next() const { return heap_next_; }
  void set_heap_next(std::uint64_t v) { heap_next_ = v; }

 private:
  /// One executable page decoded at every byte offset.
  struct CodePage {
    enum class Kind : std::uint8_t {
      kDecoded,   ///< valid instruction wholly inside the page
      kBadInsn,   ///< undecodable bytes at this offset
      kBoundary,  ///< fetch window crosses the page edge: slow path
    };
    struct Slot {
      isa::Insn insn;
      std::uint16_t cost = 0;  ///< precomputed isa::cost_of(insn.op)
      Kind kind = Kind::kBadInsn;
    };
    std::vector<Slot> slots;  ///< kPageSize entries, indexed by page offset
  };

  std::optional<Fault> step();
  /// Everything after fetch+decode: stats are the caller's job.
  std::optional<Fault> dispatch(const isa::Insn& in);
  void run_slow(RunResult& r);
  void run_fast(RunResult& r);
  /// Decode table for the exec page at `base` (built on first use),
  /// nullptr if the page is unmapped or not executable.
  const CodePage* code_page(std::uint64_t base);
  void count_pc(std::uint64_t pc);
  bool eval_cond(isa::Cond c) const;
  std::optional<Fault> do_syscall();
  std::optional<Fault> push64(std::uint64_t v);
  Result<std::uint64_t> pop64();

  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};

  Memory mem_;
  RunLimits limits_;
  std::uint64_t regs_[isa::kNumRegs] = {};
  std::uint64_t pc_ = 0;
  Flags flags_;
  Rng rng_{0};

  Bytes input_;
  std::size_t input_pos_ = 0;
  Bytes output_;
  std::uint64_t heap_next_ = zelf::layout::kHeapBase;

  ExecStats stats_;
  bool exited_ = false;
  std::int64_t exit_status_ = -1;
  TraceFn trace_;
  bool count_pcs_ = false;

  bool decode_cache_on_ = true;
  std::unordered_map<std::uint64_t, std::unique_ptr<CodePage>> code_cache_;
  std::uint64_t code_cache_epoch_ = 0;  ///< Memory::code_epoch() at last sync

  /// Flat per-exec-page retired-instruction counters (count_pcs_ mode).
  std::unordered_map<std::uint64_t, std::unique_ptr<std::uint64_t[]>> pc_counts_;
  std::uint64_t pc_count_base_ = kNoPage;      ///< page of pc_count_page_
  std::uint64_t* pc_count_page_ = nullptr;     ///< counters of the last page
};

/// Convenience: run `image` with `input` and `seed`, default limits.
RunResult run_program(const zelf::Image& image, ByteView input = {},
                      std::uint64_t seed = 0, RunLimits limits = {});

/// Convenience: link and run an executable with its libraries.
RunResult run_linked(const LinkResult& linked, ByteView input = {},
                     std::uint64_t seed = 0, RunLimits limits = {});

}  // namespace zipr::vm
