#include "vm/memory.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace zipr::vm {

// The aligned u64 fast paths assemble values with memcpy straight from
// page storage; guest memory is defined little-endian (bytes.h codecs).
static_assert(std::endian::native == std::endian::little,
              "VLX VM fast paths assume a little-endian host");

const char* fault_name(Fault f) {
  switch (f) {
    case Fault::kNone: return "none";
    case Fault::kBadAccess: return "bad-access";
    case Fault::kBadPerm: return "bad-perm";
    case Fault::kBadInsn: return "bad-insn";
    case Fault::kBadSyscall: return "bad-syscall";
    case Fault::kDivByZero: return "div-by-zero";
    case Fault::kHalt: return "halt";
    case Fault::kGasExhausted: return "gas-exhausted";
    case Fault::kStackOverflow: return "stack-overflow";
  }
  return "?";
}

namespace {
std::uint8_t perms_for(zelf::SegKind kind) {
  switch (kind) {
    case zelf::SegKind::kText: return kPermRead | kPermExec;
    case zelf::SegKind::kRodata: return kPermRead;
    case zelf::SegKind::kData:
    case zelf::SegKind::kBss: return kPermRead | kPermWrite;
  }
  return 0;
}
}  // namespace

Memory::Page& Memory::ensure_page(std::uint64_t page_base, std::uint8_t perms) {
  auto [it, inserted] = pages_.try_emplace(page_base);
  Page& p = it->second;
  if (inserted) {
    p.data = std::make_unique<Byte[]>(kPageSize);
    std::memset(p.data.get(), 0, kPageSize);
    p.perms = perms;
  } else {
    p.perms |= perms;
  }
  mark_dirty(page_base);  // new mapping or widened permissions
  if (p.perms & kPermExec) note_code_change();
  return p;
}

void Memory::mark_dirty(std::uint64_t page_base) {
  if (!tracking_ || page_base == last_dirty_) return;
  dirty_.insert(page_base);
  last_dirty_ = page_base;
}

void Memory::map_segment(const zelf::Segment& seg) {
  const std::uint8_t perms = perms_for(seg.kind);
  for (std::uint64_t a = seg.vaddr & kPageMask; a < seg.end(); a += kPageSize)
    ensure_page(a, perms);
  // Copy file bytes per page run; ensure_page above already recorded the
  // dirty/code-change events for every covered page.
  std::size_t done = 0;
  while (done < seg.bytes.size()) {
    const std::uint64_t a = seg.vaddr + done;
    const std::size_t off = static_cast<std::size_t>(a & (kPageSize - 1));
    const std::size_t take = std::min(static_cast<std::size_t>(kPageSize) - off,
                                      seg.bytes.size() - done);
    std::memcpy(pages_.at(a & kPageMask).data.get() + off, seg.bytes.data() + done, take);
    done += take;
  }
}

void Memory::map_anon(std::uint64_t vaddr, std::uint64_t size, std::uint8_t perms) {
  for (std::uint64_t a = vaddr & kPageMask; a < vaddr + size; a += kPageSize)
    ensure_page(a, perms);
}

bool Memory::is_mapped(std::uint64_t addr) const { return lookup(addr) != nullptr; }

void Memory::flush_tlb() const {
  tlb_[0] = TlbEntry{};
  tlb_[1] = TlbEntry{};
}

const Memory::Page* Memory::lookup(std::uint64_t addr) const {
  const std::uint64_t base = addr & kPageMask;
  TlbEntry& e = tlb_[(base / kPageSize) & 1];
  if (e.base == base) return e.page;
  auto it = pages_.find(base);
  if (it == pages_.end()) return nullptr;  // negative results are not cached
  e.base = base;
  e.page = &it->second;
  return e.page;
}

Memory::Page* Memory::page_at(std::uint64_t addr) {
  return const_cast<Page*>(lookup(addr));
}

const Memory::Page* Memory::page_at(std::uint64_t addr) const { return lookup(addr); }

void Memory::touch(std::uint64_t addr) {
  const std::uint64_t base = addr & kPageMask;
  if (base == last_touched_) return;
  touched_[base] = true;
  last_touched_ = base;
}

Result<std::uint8_t> Memory::read_u8(std::uint64_t addr) {
  const Page* p = lookup(addr);
  if (!p) return Error::invalid_argument("read unmapped " + hex_addr(addr));
  if (!(p->perms & kPermRead)) return Error::invalid_argument("read !R " + hex_addr(addr));
  touch(addr);
  return p->data[addr & (kPageSize - 1)];
}

Result<std::uint64_t> Memory::read_u64(std::uint64_t addr) {
  const std::size_t off = static_cast<std::size_t>(addr & (kPageSize - 1));
  if (off <= kPageSize - 8) {  // within one page: single lookup + memcpy
    const Page* p = lookup(addr);
    if (!p) return Error::invalid_argument("read unmapped " + hex_addr(addr));
    if (!(p->perms & kPermRead)) return Error::invalid_argument("read !R " + hex_addr(addr));
    touch(addr);
    std::uint64_t v;
    std::memcpy(&v, p->data.get() + off, 8);
    return v;
  }
  std::uint64_t v = 0;  // page-crossing: byte loop keeps first-fault addressing
  for (int i = 0; i < 8; ++i) {
    ZIPR_ASSIGN_OR_RETURN(std::uint8_t b, read_u8(addr + static_cast<std::uint64_t>(i)));
    v |= static_cast<std::uint64_t>(b) << (8 * i);
  }
  return v;
}

Status Memory::write_u8(std::uint64_t addr, std::uint8_t v) {
  Page* p = page_at(addr);
  if (!p) return Error::invalid_argument("write unmapped " + hex_addr(addr));
  if (!(p->perms & kPermWrite)) return Error::invalid_argument("write !W " + hex_addr(addr));
  touch(addr);
  mark_dirty(addr & kPageMask);
  if (p->perms & kPermExec) note_code_change();
  p->data[addr & (kPageSize - 1)] = v;
  return Status::success();
}

Status Memory::write_u64(std::uint64_t addr, std::uint64_t v) {
  const std::size_t off = static_cast<std::size_t>(addr & (kPageSize - 1));
  if (off <= kPageSize - 8) {
    Page* p = page_at(addr);
    if (!p) return Error::invalid_argument("write unmapped " + hex_addr(addr));
    if (!(p->perms & kPermWrite)) return Error::invalid_argument("write !W " + hex_addr(addr));
    touch(addr);
    mark_dirty(addr & kPageMask);
    if (p->perms & kPermExec) note_code_change();
    std::memcpy(p->data.get() + off, &v, 8);
    return Status::success();
  }
  for (int i = 0; i < 8; ++i)
    ZIPR_TRY(write_u8(addr + static_cast<std::uint64_t>(i),
                      static_cast<std::uint8_t>((v >> (8 * i)) & 0xff)));
  return Status::success();
}

Result<Bytes> Memory::fetch(std::uint64_t addr, std::size_t n) {
  const Page* p = lookup(addr);
  if (!p) return Error::invalid_argument("fetch unmapped " + hex_addr(addr));
  if (!(p->perms & kPermExec)) return Error::invalid_argument("fetch !X " + hex_addr(addr));
  Bytes out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t a = addr + i;
    const Page* q = lookup(a);
    if (!q || !(q->perms & kPermExec)) break;  // stop at mapping edge
    touch(a);
    out.push_back(q->data[a & (kPageSize - 1)]);
  }
  if (out.empty()) return Error::invalid_argument("fetch empty at " + hex_addr(addr));
  return out;
}

Result<Bytes> Memory::read_block(std::uint64_t addr, std::size_t n) {
  Bytes out(n);
  std::size_t done = 0;
  while (done < n) {  // per contiguous page run
    const std::uint64_t a = addr + done;
    const Page* p = lookup(a);
    if (!p) return Error::invalid_argument("read unmapped " + hex_addr(a));
    if (!(p->perms & kPermRead)) return Error::invalid_argument("read !R " + hex_addr(a));
    touch(a);
    const std::size_t off = static_cast<std::size_t>(a & (kPageSize - 1));
    const std::size_t take = std::min(static_cast<std::size_t>(kPageSize) - off, n - done);
    std::memcpy(out.data() + done, p->data.get() + off, take);
    done += take;
  }
  return out;
}

Status Memory::write_block(std::uint64_t addr, ByteView data) {
  std::size_t done = 0;
  while (done < data.size()) {  // per page run; earlier pages stay written on fault
    const std::uint64_t a = addr + done;
    Page* p = page_at(a);
    if (!p) return Error::invalid_argument("write unmapped " + hex_addr(a));
    if (!(p->perms & kPermWrite)) return Error::invalid_argument("write !W " + hex_addr(a));
    touch(a);
    mark_dirty(a & kPageMask);
    if (p->perms & kPermExec) note_code_change();
    const std::size_t off = static_cast<std::size_t>(a & (kPageSize - 1));
    const std::size_t take =
        std::min(static_cast<std::size_t>(kPageSize) - off, data.size() - done);
    std::memcpy(p->data.get() + off, data.data() + done, take);
    done += take;
  }
  return Status::success();
}

Result<Bytes> Memory::peek_block(std::uint64_t addr, std::size_t n) const {
  Bytes out(n);
  ZIPR_TRY(peek_into(addr, std::span<Byte>(out)));
  return out;
}

Status Memory::peek_into(std::uint64_t addr, std::span<Byte> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t a = addr + done;
    const Page* p = lookup(a);
    if (!p) return Error::invalid_argument("peek unmapped " + hex_addr(a));
    const std::size_t off = static_cast<std::size_t>(a & (kPageSize - 1));
    const std::size_t take =
        std::min(static_cast<std::size_t>(kPageSize) - off, out.size() - done);
    std::memcpy(out.data() + done, p->data.get() + off, take);
    done += take;
  }
  return Status::success();
}

const Byte* Memory::exec_page_data(std::uint64_t page_base) const {
  const Page* p = lookup(page_base);
  return (p != nullptr && (p->perms & kPermExec)) ? p->data.get() : nullptr;
}

Memory::Snapshot Memory::snapshot() {
  Snapshot snap;
  snap.pages.reserve(pages_.size());
  for (const auto& [base, page] : pages_) {
    Snapshot::PageCopy copy;
    copy.data.assign(page.data.get(), page.data.get() + kPageSize);
    copy.perms = page.perms;
    snap.pages.emplace(base, std::move(copy));
  }
  snap.touched = touched_;
  tracking_ = true;
  dirty_.clear();
  last_dirty_ = kNoPage;
  return snap;
}

Status Memory::restore(const Snapshot& snap) {
  if (!tracking_)
    return Error::invalid_argument("restore without an active snapshot (dirty tracking off)");
  flush_tlb();  // erasures below would dangle cached Page*
  bool code_changed = false;
  for (std::uint64_t base : dirty_) {
    auto live = pages_.find(base);
    auto it = snap.pages.find(base);
    if (it == snap.pages.end()) {
      // Mapped after the snapshot.
      if (live != pages_.end() && (live->second.perms & kPermExec)) code_changed = true;
      pages_.erase(base);
      continue;
    }
    if (live == pages_.end())
      return Error::internal("dirty page " + hex_addr(base) + " vanished before restore");
    if ((live->second.perms | it->second.perms) & kPermExec) code_changed = true;
    std::memcpy(live->second.data.get(), it->second.data.data(), kPageSize);
    live->second.perms = it->second.perms;
  }
  if (code_changed) note_code_change();
  dirty_.clear();
  last_dirty_ = kNoPage;
  touched_ = snap.touched;
  last_touched_ = kNoPage;
  return Status::success();
}

std::size_t Memory::pages_touched_in(std::uint64_t lo, std::uint64_t hi) const {
  std::size_t n = 0;
  for (const auto& [base, _] : touched_)
    if (base >= lo && base < hi) ++n;
  return n;
}

}  // namespace zipr::vm
