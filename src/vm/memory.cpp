#include "vm/memory.h"

#include <algorithm>
#include <cstring>

namespace zipr::vm {

const char* fault_name(Fault f) {
  switch (f) {
    case Fault::kNone: return "none";
    case Fault::kBadAccess: return "bad-access";
    case Fault::kBadPerm: return "bad-perm";
    case Fault::kBadInsn: return "bad-insn";
    case Fault::kBadSyscall: return "bad-syscall";
    case Fault::kDivByZero: return "div-by-zero";
    case Fault::kHalt: return "halt";
    case Fault::kGasExhausted: return "gas-exhausted";
    case Fault::kStackOverflow: return "stack-overflow";
  }
  return "?";
}

namespace {
std::uint8_t perms_for(zelf::SegKind kind) {
  switch (kind) {
    case zelf::SegKind::kText: return kPermRead | kPermExec;
    case zelf::SegKind::kRodata: return kPermRead;
    case zelf::SegKind::kData:
    case zelf::SegKind::kBss: return kPermRead | kPermWrite;
  }
  return 0;
}
}  // namespace

Memory::Page& Memory::ensure_page(std::uint64_t page_base, std::uint8_t perms) {
  auto [it, inserted] = pages_.try_emplace(page_base);
  Page& p = it->second;
  if (inserted) {
    p.data = std::make_unique<Byte[]>(kPageSize);
    std::memset(p.data.get(), 0, kPageSize);
    p.perms = perms;
  } else {
    p.perms |= perms;
  }
  mark_dirty(page_base);  // new mapping or widened permissions
  return p;
}

void Memory::mark_dirty(std::uint64_t page_base) {
  if (tracking_) dirty_.insert(page_base);
}

void Memory::map_segment(const zelf::Segment& seg) {
  const std::uint8_t perms = perms_for(seg.kind);
  for (std::uint64_t a = seg.vaddr & kPageMask; a < seg.end(); a += kPageSize)
    ensure_page(a, perms);
  for (std::size_t i = 0; i < seg.bytes.size(); ++i) {
    std::uint64_t addr = seg.vaddr + i;
    Page& p = pages_.at(addr & kPageMask);
    p.data[addr & (kPageSize - 1)] = seg.bytes[i];
  }
}

void Memory::map_anon(std::uint64_t vaddr, std::uint64_t size, std::uint8_t perms) {
  for (std::uint64_t a = vaddr & kPageMask; a < vaddr + size; a += kPageSize)
    ensure_page(a, perms);
}

bool Memory::is_mapped(std::uint64_t addr) const { return page_at(addr) != nullptr; }

Memory::Page* Memory::page_at(std::uint64_t addr) {
  auto it = pages_.find(addr & kPageMask);
  return it == pages_.end() ? nullptr : &it->second;
}

const Memory::Page* Memory::page_at(std::uint64_t addr) const {
  auto it = pages_.find(addr & kPageMask);
  return it == pages_.end() ? nullptr : &it->second;
}

void Memory::touch(std::uint64_t addr) { touched_[addr & kPageMask] = true; }

Result<std::uint8_t> Memory::read_u8(std::uint64_t addr) {
  const Page* p = page_at(addr);
  if (!p) return Error::invalid_argument("read unmapped " + hex_addr(addr));
  if (!(p->perms & kPermRead)) return Error::invalid_argument("read !R " + hex_addr(addr));
  touch(addr);
  return p->data[addr & (kPageSize - 1)];
}

Result<std::uint64_t> Memory::read_u64(std::uint64_t addr) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    ZIPR_ASSIGN_OR_RETURN(std::uint8_t b, read_u8(addr + static_cast<std::uint64_t>(i)));
    v |= static_cast<std::uint64_t>(b) << (8 * i);
  }
  return v;
}

Status Memory::write_u8(std::uint64_t addr, std::uint8_t v) {
  Page* p = page_at(addr);
  if (!p) return Error::invalid_argument("write unmapped " + hex_addr(addr));
  if (!(p->perms & kPermWrite)) return Error::invalid_argument("write !W " + hex_addr(addr));
  touch(addr);
  mark_dirty(addr & kPageMask);
  p->data[addr & (kPageSize - 1)] = v;
  return Status::success();
}

Status Memory::write_u64(std::uint64_t addr, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    ZIPR_TRY(write_u8(addr + static_cast<std::uint64_t>(i),
                      static_cast<std::uint8_t>((v >> (8 * i)) & 0xff)));
  return Status::success();
}

Result<Bytes> Memory::fetch(std::uint64_t addr, std::size_t n) {
  const Page* p = page_at(addr);
  if (!p) return Error::invalid_argument("fetch unmapped " + hex_addr(addr));
  if (!(p->perms & kPermExec)) return Error::invalid_argument("fetch !X " + hex_addr(addr));
  Bytes out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t a = addr + i;
    const Page* q = page_at(a);
    if (!q || !(q->perms & kPermExec)) break;  // stop at mapping edge
    touch(a);
    out.push_back(q->data[a & (kPageSize - 1)]);
  }
  if (out.empty()) return Error::invalid_argument("fetch empty at " + hex_addr(addr));
  return out;
}

Result<Bytes> Memory::read_block(std::uint64_t addr, std::size_t n) {
  Bytes out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ZIPR_ASSIGN_OR_RETURN(std::uint8_t b, read_u8(addr + i));
    out.push_back(b);
  }
  return out;
}

Status Memory::write_block(std::uint64_t addr, ByteView data) {
  for (std::size_t i = 0; i < data.size(); ++i) ZIPR_TRY(write_u8(addr + i, data[i]));
  return Status::success();
}

Result<Bytes> Memory::peek_block(std::uint64_t addr, std::size_t n) const {
  Bytes out(n);
  std::size_t done = 0;
  while (done < n) {
    const std::uint64_t a = addr + done;
    const Page* p = page_at(a);
    if (!p) return Error::invalid_argument("peek unmapped " + hex_addr(a));
    const std::size_t in_page = static_cast<std::size_t>(kPageSize - (a & (kPageSize - 1)));
    const std::size_t take = std::min(in_page, n - done);
    std::memcpy(out.data() + done, p->data.get() + (a & (kPageSize - 1)), take);
    done += take;
  }
  return out;
}

Memory::Snapshot Memory::snapshot() {
  Snapshot snap;
  snap.pages.reserve(pages_.size());
  for (const auto& [base, page] : pages_) {
    Snapshot::PageCopy copy;
    copy.data.assign(page.data.get(), page.data.get() + kPageSize);
    copy.perms = page.perms;
    snap.pages.emplace(base, std::move(copy));
  }
  snap.touched = touched_;
  tracking_ = true;
  dirty_.clear();
  return snap;
}

Status Memory::restore(const Snapshot& snap) {
  if (!tracking_)
    return Error::invalid_argument("restore without an active snapshot (dirty tracking off)");
  for (std::uint64_t base : dirty_) {
    auto it = snap.pages.find(base);
    if (it == snap.pages.end()) {
      pages_.erase(base);  // mapped after the snapshot
      continue;
    }
    auto live = pages_.find(base);
    if (live == pages_.end())
      return Error::internal("dirty page " + hex_addr(base) + " vanished before restore");
    std::memcpy(live->second.data.get(), it->second.data.data(), kPageSize);
    live->second.perms = it->second.perms;
  }
  dirty_.clear();
  touched_ = snap.touched;
  return Status::success();
}

std::size_t Memory::pages_touched_in(std::uint64_t lo, std::uint64_t hi) const {
  std::size_t n = 0;
  for (const auto& [base, _] : touched_)
    if (base >= lo && base < hi) ++n;
  return n;
}

}  // namespace zipr::vm
