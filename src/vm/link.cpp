#include "vm/link.h"

#include <algorithm>
#include <map>

namespace zipr::vm {

Result<LinkResult> link(std::vector<zelf::Image> images) {
  if (images.empty()) return Error::invalid_argument("nothing to link");
  if (images[0].library) return Error::invalid_argument("images[0] must be an executable");
  for (std::size_t i = 1; i < images.size(); ++i)
    if (!images[i].library)
      return Error::invalid_argument("image " + std::to_string(i) + " is not a library");
  for (const auto& img : images) ZIPR_TRY(img.validate());

  // Cross-image overlap check.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (const auto& img : images)
    for (const auto& seg : img.segments) spans.emplace_back(seg.vaddr, seg.end());
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i)
    if (spans[i - 1].second > spans[i].first)
      return Error::invalid_argument("images overlap at " + hex_addr(spans[i].first));

  // Global export table.
  std::map<std::string, std::uint64_t> exports;
  for (const auto& img : images) {
    for (const auto& exp : img.exports) {
      auto [it, inserted] = exports.emplace(exp.name, exp.addr);
      (void)it;
      if (!inserted) return Error::invalid_argument("duplicate export '" + exp.name + "'");
    }
  }

  // Bind imports: write each resolved address into its GOT slot.
  for (auto& img : images) {
    for (const auto& imp : img.imports) {
      auto it = exports.find(imp.name);
      if (it == exports.end())
        return Error::not_found("unresolved import '" + imp.name + "'");
      zelf::Segment* seg = img.segment_containing(imp.slot);
      // validate() guarantees a writable segment; binding also needs the
      // slot inside file-backed bytes so the value survives into mapping.
      std::uint64_t off = imp.slot - seg->vaddr;
      if (off + 8 > seg->bytes.size())
        return Error::invalid_argument("import '" + imp.name +
                                       "' slot is not file-backed (is it in .bss?)");
      patch_u32(std::span<Byte>(seg->bytes), off, static_cast<std::uint32_t>(it->second));
      patch_u32(std::span<Byte>(seg->bytes), off + 4,
                static_cast<std::uint32_t>(it->second >> 32));
    }
  }

  LinkResult out;
  out.entry = images[0].entry;
  out.images = std::move(images);
  return out;
}

}  // namespace zipr::vm
