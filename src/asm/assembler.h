// Two-pass assembler for VLX text assembly, producing ZELF images.
//
// The assembler exists so the rest of the repository can build realistic
// input binaries: the challenge-binary generator, the robustness workloads
// and most tests express programs as assembly text. It is NOT part of the
// rewriting pipeline (Zipr consumes only binaries).
//
// Language summary (line oriented; ';' and '#' start comments):
//
//   .text / .rodata / .data / .bss     switch section
//   .entry <label>                     program entry point (executables)
//   .library                           mark image as a shared library
//   .export <label>                    add to the ABI export table
//   .import <slot>, <name>             8-byte GOT slot bound at load time
//   .func <name>                       define label + ground-truth func symbol
//   .object <name>                     define label + ground-truth object symbol
//   .align <n>                         pad with zeros (nop 0x90 in .text)
//   .org <addr>                        advance current address (same section)
//   .byte a, b, ...                    8-bit data (also legal inside .text --
//                                      this is how tests embed data in code)
//   .word / .long / .quad v, ...       16/32/64-bit little-endian data;
//                                      values may be `label` or `label+off`
//   .ascii "s" / .asciz "s"            string bytes (asciz adds NUL)
//   .space n [, fill]                  n fill bytes (default 0)
//   label:                             define label at current address
//
// Instructions: mnemonics mirror isa::to_string() -- e.g.
//   movi r0, 42        movi64 r1, 0x123456789        mov r0, r1
//   load r1, [r2+8]    store [r2-4], r3              lea r1, mylabel
//   jmp target         jmp8 target (forced rel8)     jeq/jne/... target
//   call f             callr r1     jmpr r2          jmpt r0, table
//   push r1  pop r2    pushi 0x90909090   ret  nop  hlt  syscall
//   add r0, r1  addi r0, 5  cmp r0, r1  cmpi r0, 10  test r0, r1 ...
//
// Immediate operands accept decimal, 0x-hex, negative values, 'c' char
// literals, and `label` / `label+const` / `label-const` expressions (labels
// evaluate to their absolute address -- the idiom that creates indirect
// branch targets).
#pragma once

#include <string>
#include <string_view>

#include "support/status.h"
#include "zelf/image.h"

namespace zipr::assembler {

struct Options {
  std::uint64_t text_base = zelf::layout::kTextBase;
  std::uint64_t rodata_base = zelf::layout::kRodataBase;
  std::uint64_t data_base = zelf::layout::kDataBase;
  std::uint64_t bss_base = zelf::layout::kBssBase;
  bool emit_symbols = true;  ///< include ground-truth symbols in the image
};

/// Assemble `source` into a ZELF image. Errors carry "line N: ..." context.
Result<zelf::Image> assemble(std::string_view source, const Options& opts = {});

}  // namespace zipr::assembler
