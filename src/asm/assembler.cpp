#include "asm/assembler.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "isa/insn.h"

namespace zipr::assembler {

namespace {

using isa::BranchWidth;
using isa::Cond;
using isa::Insn;
using isa::Op;

enum class Section { kText, kRodata, kData, kBss };

// symbol+addend expression; empty symbol means a plain constant.
struct Expr {
  std::string symbol;
  std::int64_t addend = 0;
  bool is_constant() const { return symbol.empty(); }
};

enum class StmtKind { kInsn, kData, kSpace, kAlign, kOrg };

struct Stmt {
  StmtKind kind = StmtKind::kInsn;
  int line = 0;
  Section section = Section::kText;
  std::uint64_t addr = 0;   // assigned in pass 1
  std::size_t size = 0;     // byte size, known at parse time (except org/align)

  // kInsn
  Insn insn;                  // template; imm filled in pass 2 where symbolic
  Expr target;                // branch target / absolute operand / immediate
  bool has_target = false;    // insn.imm comes from `target` in pass 2
  bool target_is_relative = false;  // value becomes value - (addr + size)

  // kData
  int width = 1;              // 1/2/4/8
  std::vector<Expr> values;
  std::string ascii;          // for .ascii/.asciz (already includes NUL if z)

  // kSpace
  std::uint8_t fill = 0;
  std::uint64_t count = 0;

  // kAlign / kOrg
  std::uint64_t arg = 0;
};

struct LineError {
  int line;
  std::string msg;
};

class Parser {
 public:
  Parser(std::string_view src, const Options& opts) : src_(src), opts_(opts) {}

  Result<zelf::Image> run() {
    auto st = pass1();
    if (!st.ok()) return st.error();
    return pass2();
  }

 private:
  std::string_view src_;
  const Options& opts_;

  std::vector<Stmt> stmts_;
  std::map<std::string, std::uint64_t> labels_;
  std::map<std::string, zelf::Symbol::Kind> symbol_kinds_;
  std::vector<std::string> symbol_order_;
  std::string entry_label_;
  bool library_ = false;
  std::vector<std::string> export_labels_;
  std::vector<std::pair<std::string, std::string>> imports_;  // (slot label, extern name)

  // per-section cursors (pass 1) and byte sinks (pass 2)
  std::uint64_t cursor_[4] = {};
  Bytes body_[4];

  Section cur_section_ = Section::kText;
  int line_no_ = 0;

  std::uint64_t section_base(Section s) const {
    switch (s) {
      case Section::kText: return opts_.text_base;
      case Section::kRodata: return opts_.rodata_base;
      case Section::kData: return opts_.data_base;
      case Section::kBss: return opts_.bss_base;
    }
    return 0;
  }

  Error err(const std::string& m) const {
    return Error::parse("line " + std::to_string(line_no_) + ": " + m);
  }

  // ---- lexical helpers ----

  static std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
    return s;
  }

  // Strip comments outside of string/char literals.
  static std::string_view strip_comment(std::string_view s) {
    bool in_str = false, in_chr = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
      char c = s[i];
      if (in_str) {
        if (c == '"') in_str = false;
      } else if (in_chr) {
        if (c == '\'') in_chr = false;
      } else if (c == '"') {
        in_str = true;
      } else if (c == '\'') {
        in_chr = true;
      } else if (c == ';' || c == '#') {
        return s.substr(0, i);
      }
    }
    return s;
  }

  static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '$';
  }

  // Split on commas respecting brackets and quotes.
  static std::vector<std::string_view> split_operands(std::string_view s) {
    std::vector<std::string_view> out;
    int depth = 0;
    bool in_str = false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      char c = s[i];
      if (in_str) {
        if (c == '"') in_str = false;
      } else if (c == '"') {
        in_str = true;
      } else if (c == '[') {
        ++depth;
      } else if (c == ']') {
        --depth;
      } else if (c == ',' && depth == 0) {
        out.push_back(trim(s.substr(start, i - start)));
        start = i + 1;
      }
    }
    auto last = trim(s.substr(start));
    if (!last.empty() || !out.empty()) out.push_back(last);
    return out;
  }

  Result<std::uint8_t> parse_reg(std::string_view t) const {
    t = trim(t);
    if (t == "sp") return static_cast<std::uint8_t>(isa::kSpReg);
    if (t.size() >= 2 && t[0] == 'r' && std::isdigit(static_cast<unsigned char>(t[1]))) {
      int r = t[1] - '0';
      if (t.size() == 2 && r < isa::kNumRegs) return static_cast<std::uint8_t>(r);
    }
    return err("expected register, got '" + std::string(t) + "'");
  }

  static std::optional<std::int64_t> parse_int(std::string_view t) {
    t = trim(t);
    if (t.empty()) return std::nullopt;
    bool neg = false;
    if (t[0] == '-' || t[0] == '+') {
      neg = t[0] == '-';
      t.remove_prefix(1);
    }
    if (t.empty()) return std::nullopt;
    if (t.size() >= 3 && t[0] == '\'' && t.back() == '\'') {
      if (t.size() == 3) return neg ? -t[1] : t[1];
      if (t.size() == 4 && t[1] == '\\') {
        char c = t[2];
        std::int64_t v = c == 'n' ? '\n' : c == 't' ? '\t' : c == '0' ? '\0' : c == 'r' ? '\r' : c;
        return neg ? -v : v;
      }
      return std::nullopt;
    }
    std::int64_t v = 0;
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
      for (char c : t.substr(2)) {
        int d;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else return std::nullopt;
        v = v * 16 + d;
      }
    } else {
      for (char c : t) {
        if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
        v = v * 10 + (c - '0');
      }
    }
    return neg ? -v : v;
  }

  // Parse `const` | `symbol` | `symbol+const` | `symbol-const`.
  Result<Expr> parse_expr(std::string_view t) const {
    t = trim(t);
    if (t.empty()) return err("empty expression");
    if (auto v = parse_int(t)) return Expr{"", *v};
    // symbol [±const]
    std::size_t i = 0;
    while (i < t.size() && is_ident_char(t[i])) ++i;
    if (i == 0) return err("bad expression '" + std::string(t) + "'");
    Expr e;
    e.symbol = std::string(t.substr(0, i));
    auto rest = trim(t.substr(i));
    if (!rest.empty()) {
      auto v = parse_int(rest);
      if (!v) return err("bad expression suffix '" + std::string(rest) + "'");
      e.addend = *v;
    }
    return e;
  }

  // Parse `[reg+disp]` / `[reg-disp]` / `[reg]`.
  Result<std::pair<std::uint8_t, std::int64_t>> parse_mem(std::string_view t) const {
    t = trim(t);
    if (t.size() < 3 || t.front() != '[' || t.back() != ']')
      return err("expected memory operand [reg+disp], got '" + std::string(t) + "'");
    auto inner = trim(t.substr(1, t.size() - 2));
    std::size_t i = 0;
    while (i < inner.size() && is_ident_char(inner[i])) ++i;
    ZIPR_ASSIGN_OR_RETURN(std::uint8_t r, parse_reg(inner.substr(0, i)));
    std::int64_t disp = 0;
    auto rest = trim(inner.substr(i));
    if (!rest.empty()) {
      auto v = parse_int(rest);
      if (!v) return err("bad displacement '" + std::string(rest) + "'");
      disp = *v;
    }
    return std::make_pair(r, disp);
  }

  // ---- pass 1: parse + layout ----

  Status pass1() {
    std::size_t pos = 0;
    while (pos <= src_.size()) {
      std::size_t nl = src_.find('\n', pos);
      std::string_view line =
          src_.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
      pos = nl == std::string_view::npos ? src_.size() + 1 : nl + 1;
      ++line_no_;
      ZIPR_TRY(handle_line(line));
    }
    if (library_) {
      if (!entry_label_.empty())
        return Error::parse("a .library image cannot also have an .entry");
    } else {
      if (entry_label_.empty()) return Error::parse("missing .entry directive");
      if (!labels_.count(entry_label_))
        return Error::parse("entry label '" + entry_label_ + "' undefined");
    }
    return Status::success();
  }

  Status handle_line(std::string_view raw) {
    auto line = trim(strip_comment(raw));
    if (line.empty()) return Status::success();

    // Peel off any leading `label:` definitions.
    while (true) {
      std::size_t i = 0;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      if (i > 0 && i < line.size() && line[i] == ':') {
        std::string name(line.substr(0, i));
        if (labels_.count(name)) return err("duplicate label '" + name + "'");
        labels_[name] = cur_addr();
        if (!symbol_kinds_.count(name)) {
          symbol_kinds_[name] = cur_section_ == Section::kText
                                    ? zelf::Symbol::Kind::kLabel
                                    : zelf::Symbol::Kind::kObject;
          symbol_order_.push_back(name);
        }
        line = trim(line.substr(i + 1));
        if (line.empty()) return Status::success();
        continue;
      }
      break;
    }

    if (line[0] == '.') return handle_directive(line);
    return handle_insn(line);
  }

  // Masked section index: the enum has exactly four values, but the mask
  // also proves it to the optimizer (silencing -Warray-bounds).
  static std::size_t idx(Section s) { return static_cast<std::size_t>(s) & 3; }

  std::uint64_t cur_addr() const {
    return section_base(cur_section_) + cursor_[idx(cur_section_)];
  }

  void advance(std::size_t n) { cursor_[idx(cur_section_)] += n; }

  Status push_stmt(Stmt s) {
    s.line = line_no_;
    s.section = cur_section_;
    s.addr = cur_addr();
    advance(s.size);
    if (cur_section_ == Section::kBss && s.kind != StmtKind::kSpace &&
        s.kind != StmtKind::kAlign && s.kind != StmtKind::kOrg)
      return err(".bss may contain only .space/.align/.org");
    stmts_.push_back(std::move(s));
    return Status::success();
  }

  Status handle_directive(std::string_view line) {
    std::size_t sp = line.find_first_of(" \t");
    std::string_view name = line.substr(0, sp);
    std::string_view rest = sp == std::string_view::npos ? "" : trim(line.substr(sp));

    if (name == ".text") { cur_section_ = Section::kText; return Status::success(); }
    if (name == ".rodata") { cur_section_ = Section::kRodata; return Status::success(); }
    if (name == ".data") { cur_section_ = Section::kData; return Status::success(); }
    if (name == ".bss") { cur_section_ = Section::kBss; return Status::success(); }

    if (name == ".entry") {
      if (rest.empty()) return err(".entry needs a label");
      entry_label_ = std::string(rest);
      return Status::success();
    }
    if (name == ".library") {
      library_ = true;
      return Status::success();
    }
    if (name == ".export") {
      if (rest.empty()) return err(".export needs a label");
      export_labels_.emplace_back(rest);
      return Status::success();
    }
    if (name == ".import") {
      // `.import slot_label, external_name`: defines an 8-byte GOT slot at
      // the current (writable-data) location.
      if (cur_section_ != Section::kData)
        return err(".import slots must live in .data");
      auto ops = split_operands(rest);
      if (ops.size() != 2) return err(".import needs <slot-label>, <name>");
      std::string slot(ops[0]);
      if (labels_.count(slot)) return err("duplicate label '" + slot + "'");
      labels_[slot] = cur_addr();
      imports_.emplace_back(slot, std::string(ops[1]));
      Stmt s;
      s.kind = StmtKind::kSpace;
      s.count = 8;
      s.size = 8;
      return push_stmt(std::move(s));
    }
    if (name == ".func" || name == ".object") {
      if (rest.empty()) return err(name[1] == 'f' ? ".func needs a name" : ".object needs a name");
      std::string label(rest);
      if (labels_.count(label)) return err("duplicate label '" + label + "'");
      labels_[label] = cur_addr();
      symbol_kinds_[label] =
          name == ".func" ? zelf::Symbol::Kind::kFunc : zelf::Symbol::Kind::kObject;
      symbol_order_.push_back(label);
      return Status::success();
    }

    if (name == ".byte" || name == ".word" || name == ".long" || name == ".quad") {
      Stmt s;
      s.kind = StmtKind::kData;
      s.width = name == ".byte" ? 1 : name == ".word" ? 2 : name == ".long" ? 4 : 8;
      for (auto op : split_operands(rest)) {
        ZIPR_ASSIGN_OR_RETURN(Expr e, parse_expr(op));
        s.values.push_back(std::move(e));
      }
      if (s.values.empty()) return err(std::string(name) + " needs values");
      s.size = s.values.size() * static_cast<std::size_t>(s.width);
      return push_stmt(std::move(s));
    }

    if (name == ".ascii" || name == ".asciz") {
      auto q1 = rest.find('"');
      auto q2 = rest.rfind('"');
      if (q1 == std::string_view::npos || q2 <= q1) return err("expected quoted string");
      Stmt s;
      s.kind = StmtKind::kData;
      s.width = 1;
      std::string text;
      auto body = rest.substr(q1 + 1, q2 - q1 - 1);
      for (std::size_t i = 0; i < body.size(); ++i) {
        char c = body[i];
        if (c == '\\' && i + 1 < body.size()) {
          char e = body[++i];
          c = e == 'n' ? '\n' : e == 't' ? '\t' : e == '0' ? '\0' : e == 'r' ? '\r' : e;
        }
        text.push_back(c);
      }
      if (name == ".asciz") text.push_back('\0');
      s.ascii = std::move(text);
      s.size = s.ascii.size();
      return push_stmt(std::move(s));
    }

    if (name == ".space") {
      auto ops = split_operands(rest);
      if (ops.empty()) return err(".space needs a size");
      auto n = parse_int(ops[0]);
      if (!n || *n < 0) return err("bad .space size");
      Stmt s;
      s.kind = StmtKind::kSpace;
      s.count = static_cast<std::uint64_t>(*n);
      s.size = static_cast<std::size_t>(*n);
      if (ops.size() > 1) {
        auto f = parse_int(ops[1]);
        if (!f) return err("bad .space fill");
        s.fill = static_cast<std::uint8_t>(*f);
      }
      return push_stmt(std::move(s));
    }

    if (name == ".align") {
      auto n = parse_int(rest);
      if (!n || *n <= 0 || (*n & (*n - 1)) != 0) return err("bad .align (need power of 2)");
      Stmt s;
      s.kind = StmtKind::kAlign;
      s.arg = static_cast<std::uint64_t>(*n);
      std::uint64_t a = cur_addr();
      std::uint64_t aligned = (a + s.arg - 1) & ~(s.arg - 1);
      s.size = static_cast<std::size_t>(aligned - a);
      return push_stmt(std::move(s));
    }

    if (name == ".org") {
      auto n = parse_int(rest);
      if (!n) return err("bad .org address");
      Stmt s;
      s.kind = StmtKind::kOrg;
      s.arg = static_cast<std::uint64_t>(*n);
      std::uint64_t a = cur_addr();
      if (s.arg < a) return err(".org cannot move backwards");
      s.size = static_cast<std::size_t>(s.arg - a);
      return push_stmt(std::move(s));
    }

    return err("unknown directive '" + std::string(name) + "'");
  }

  // ---- instruction parsing ----

  Status handle_insn(std::string_view line) {
    if (cur_section_ != Section::kText) return err("instructions only allowed in .text");
    std::size_t sp = line.find_first_of(" \t");
    std::string m(line.substr(0, sp));
    std::string_view rest = sp == std::string_view::npos ? "" : trim(line.substr(sp));
    auto ops = split_operands(rest);

    Stmt s;
    s.kind = StmtKind::kInsn;
    Insn& in = s.insn;

    auto finish = [&]() -> Status {
      s.size = static_cast<std::size_t>(isa::encoded_length(in));
      in.length = static_cast<std::uint8_t>(s.size);
      return push_stmt(std::move(s));
    };
    auto need = [&](std::size_t n) -> Status {
      if (ops.size() != n)
        return err(m + " expects " + std::to_string(n) + " operand(s)");
      return Status::success();
    };

    // No-operand forms.
    if (m == "ret") { in.op = Op::kRet; ZIPR_TRY(need(0)); return finish(); }
    if (m == "nop") { in.op = Op::kNop; ZIPR_TRY(need(0)); return finish(); }
    if (m == "hlt") { in.op = Op::kHlt; ZIPR_TRY(need(0)); return finish(); }
    if (m == "syscall") { in.op = Op::kSyscall; ZIPR_TRY(need(0)); return finish(); }

    // Branches (expression target, PC-relative).
    auto branch = [&](Op op, Cond c, BranchWidth w) -> Status {
      ZIPR_TRY(need(1));
      in.op = op;
      in.cond = c;
      in.width = w;
      ZIPR_ASSIGN_OR_RETURN(s.target, parse_expr(ops[0]));
      s.has_target = true;
      s.target_is_relative = true;
      return finish();
    };
    if (m == "jmp") return branch(Op::kJmp, Cond::kEq, BranchWidth::kRel32);
    if (m == "jmp8") return branch(Op::kJmp, Cond::kEq, BranchWidth::kRel8);
    if (m == "call") return branch(Op::kCall, Cond::kEq, BranchWidth::kRel32);
    static const std::map<std::string, Cond> kConds = {
        {"eq", Cond::kEq}, {"ne", Cond::kNe}, {"lt", Cond::kLt}, {"le", Cond::kLe},
        {"gt", Cond::kGt}, {"ge", Cond::kGe}, {"b", Cond::kB},   {"ae", Cond::kAe}};
    if (m.size() >= 2 && m[0] == 'j') {
      std::string cc = m.substr(1);
      bool rel8 = false;
      if (cc.size() > 1 && cc.back() == '8') {
        rel8 = true;
        cc.pop_back();
      }
      auto it = kConds.find(cc);
      if (it != kConds.end())
        return branch(Op::kJcc, it->second, rel8 ? BranchWidth::kRel8 : BranchWidth::kRel32);
    }

    // Register forms.
    if (m == "push" || m == "pop" || m == "callr" || m == "jmpr") {
      ZIPR_TRY(need(1));
      in.op = m == "push" ? Op::kPush : m == "pop" ? Op::kPop
              : m == "callr" ? Op::kCallR : Op::kJmpR;
      ZIPR_ASSIGN_OR_RETURN(in.ra, parse_reg(ops[0]));
      return finish();
    }

    if (m == "jmpt") {
      ZIPR_TRY(need(2));
      in.op = Op::kJmpT;
      ZIPR_ASSIGN_OR_RETURN(in.ra, parse_reg(ops[0]));
      ZIPR_ASSIGN_OR_RETURN(s.target, parse_expr(ops[1]));
      s.has_target = true;  // absolute
      return finish();
    }

    if (m == "pushi") {
      ZIPR_TRY(need(1));
      in.op = Op::kPushI;
      ZIPR_ASSIGN_OR_RETURN(s.target, parse_expr(ops[0]));
      s.has_target = true;
      return finish();
    }

    // reg,imm-expression forms.
    static const std::map<std::string, Op> kRegImm = {
        {"movi", Op::kMovI}, {"movi64", Op::kMovI64}, {"addi", Op::kAddI},
        {"subi", Op::kSubI}, {"andi", Op::kAndI},     {"ori", Op::kOrI},
        {"xori", Op::kXorI}, {"shli", Op::kShlI},     {"shri", Op::kShrI},
        {"cmpi", Op::kCmpI}};
    if (auto it = kRegImm.find(m); it != kRegImm.end()) {
      ZIPR_TRY(need(2));
      in.op = it->second;
      ZIPR_ASSIGN_OR_RETURN(in.ra, parse_reg(ops[0]));
      ZIPR_ASSIGN_OR_RETURN(s.target, parse_expr(ops[1]));
      s.has_target = true;
      return finish();
    }

    // reg,reg forms.
    static const std::map<std::string, Op> kRegReg = {
        {"mov", Op::kMov}, {"add", Op::kAdd}, {"sub", Op::kSub}, {"and", Op::kAnd},
        {"or", Op::kOr},   {"xor", Op::kXor}, {"mul", Op::kMul}, {"div", Op::kDiv},
        {"mod", Op::kMod}, {"shl", Op::kShl}, {"shr", Op::kShr}, {"sar", Op::kSar},
        {"cmp", Op::kCmp}, {"test", Op::kTest}};
    if (auto it = kRegReg.find(m); it != kRegReg.end()) {
      ZIPR_TRY(need(2));
      in.op = it->second;
      ZIPR_ASSIGN_OR_RETURN(in.ra, parse_reg(ops[0]));
      ZIPR_ASSIGN_OR_RETURN(in.rb, parse_reg(ops[1]));
      return finish();
    }

    // Memory forms.
    if (m == "load" || m == "load8") {
      ZIPR_TRY(need(2));
      in.op = m == "load" ? Op::kLoad : Op::kLoad8;
      ZIPR_ASSIGN_OR_RETURN(in.ra, parse_reg(ops[0]));
      ZIPR_ASSIGN_OR_RETURN(auto mem, parse_mem(ops[1]));
      in.rb = mem.first;
      in.imm = mem.second;
      return finish();
    }
    if (m == "store" || m == "store8") {
      ZIPR_TRY(need(2));
      in.op = m == "store" ? Op::kStore : Op::kStore8;
      ZIPR_ASSIGN_OR_RETURN(auto mem, parse_mem(ops[0]));
      in.ra = mem.first;
      in.imm = mem.second;
      ZIPR_ASSIGN_OR_RETURN(in.rb, parse_reg(ops[1]));
      return finish();
    }

    // PC-relative data forms: `lea r1, label` or `lea r1, [pc+8]`.
    if (m == "lea" || m == "loadpc") {
      ZIPR_TRY(need(2));
      in.op = m == "lea" ? Op::kLea : Op::kLoadPc;
      ZIPR_ASSIGN_OR_RETURN(in.ra, parse_reg(ops[0]));
      auto t = trim(ops[1]);
      if (!t.empty() && t.front() == '[') {
        if (t.substr(0, 3) != "[pc") return err(m + " memory form must be [pc+disp]");
        auto inner = trim(t.substr(3, t.size() - 4));
        std::int64_t disp = 0;
        if (!inner.empty()) {
          auto v = parse_int(inner);
          if (!v) return err("bad pc displacement");
          disp = *v;
        }
        in.imm = disp;
        return finish();
      }
      ZIPR_ASSIGN_OR_RETURN(s.target, parse_expr(ops[1]));
      s.has_target = true;
      s.target_is_relative = true;  // disp = value - end-of-insn
      return finish();
    }

    return err("unknown mnemonic '" + m + "'");
  }

  // ---- pass 2: evaluation + encoding ----

  Result<std::int64_t> eval(const Expr& e, int line) const {
    if (e.is_constant()) return e.addend;
    auto it = labels_.find(e.symbol);
    if (it == labels_.end())
      return Error::parse("line " + std::to_string(line) + ": undefined symbol '" + e.symbol + "'");
    return static_cast<std::int64_t>(it->second) + e.addend;
  }

  Result<zelf::Image> pass2() {
    for (auto& s : stmts_) {
      Bytes& out = body_[idx(s.section)];
      line_no_ = s.line;
      std::size_t before = out.size();

      switch (s.kind) {
        case StmtKind::kData: {
          if (!s.ascii.empty() || (s.values.empty() && s.width == 1)) {
            for (char c : s.ascii) out.push_back(static_cast<Byte>(c));
            break;
          }
          for (const auto& v : s.values) {
            ZIPR_ASSIGN_OR_RETURN(std::int64_t val, eval(v, s.line));
            switch (s.width) {
              case 1: put_u8(out, static_cast<std::uint8_t>(val)); break;
              case 2: put_u16(out, static_cast<std::uint16_t>(val)); break;
              case 4: put_u32(out, static_cast<std::uint32_t>(val)); break;
              case 8: put_u64(out, static_cast<std::uint64_t>(val)); break;
            }
          }
          break;
        }
        case StmtKind::kSpace:
          out.insert(out.end(), s.count, s.fill);
          break;
        case StmtKind::kAlign:
        case StmtKind::kOrg: {
          Byte fill = s.section == Section::kText ? Byte{0x90} : Byte{0};
          out.insert(out.end(), s.size, fill);
          break;
        }
        case StmtKind::kInsn: {
          Insn in = s.insn;
          if (s.has_target) {
            ZIPR_ASSIGN_OR_RETURN(std::int64_t val, eval(s.target, s.line));
            if (s.target_is_relative) {
              in.imm = val - static_cast<std::int64_t>(s.addr + s.size);
              if (in.width == BranchWidth::kRel8 &&
                  (in.imm < isa::kRel8Min || in.imm > isa::kRel8Max) &&
                  (in.op == Op::kJmp || in.op == Op::kJcc))
                return err("rel8 branch target out of range (" + std::to_string(in.imm) + ")");
            } else {
              in.imm = val;
            }
          }
          auto st = encode(in, out);
          if (!st.ok()) return err(st.error().message);
          break;
        }
      }
      if (s.section != Section::kBss && out.size() - before != s.size)
        return Error::internal("line " + std::to_string(s.line) + ": size mismatch pass1=" +
                               std::to_string(s.size) + " pass2=" +
                               std::to_string(out.size() - before));
      // bss keeps no bytes; roll back any fill emitted above.
      if (s.section == Section::kBss) out.clear();
    }

    zelf::Image img;
    auto add_segment = [&](Section sec, zelf::SegKind kind) {
      std::uint64_t used = cursor_[idx(sec)];
      if (used == 0) return;
      zelf::Segment seg;
      seg.kind = kind;
      seg.vaddr = section_base(sec);
      seg.memsize = used;
      if (kind != zelf::SegKind::kBss) seg.bytes = std::move(body_[idx(sec)]);
      img.segments.push_back(std::move(seg));
    };
    add_segment(Section::kText, zelf::SegKind::kText);
    add_segment(Section::kRodata, zelf::SegKind::kRodata);
    add_segment(Section::kData, zelf::SegKind::kData);
    add_segment(Section::kBss, zelf::SegKind::kBss);

    img.library = library_;
    img.entry = library_ ? 0 : labels_.at(entry_label_);
    for (const auto& label : export_labels_) {
      auto it = labels_.find(label);
      if (it == labels_.end())
        return Error::parse("exported label '" + label + "' undefined");
      img.exports.push_back({label, it->second});
    }
    for (const auto& [slot, name] : imports_) {
      img.imports.push_back({name, labels_.at(slot)});
    }
    if (opts_.emit_symbols) {
      for (const auto& name : symbol_order_) {
        zelf::Symbol sym;
        sym.kind = symbol_kinds_.at(name);
        sym.addr = labels_.at(name);
        sym.name = name;
        img.symbols.push_back(std::move(sym));
      }
    }
    ZIPR_TRY(img.validate());
    return img;
  }
};

}  // namespace

Result<zelf::Image> assemble(std::string_view source, const Options& opts) {
  Parser p(source, opts);
  return p.run();
}

}  // namespace zipr::assembler
