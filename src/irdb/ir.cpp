#include "irdb/ir.h"

#include <cassert>

namespace zipr::irdb {

void Database::set_backing(ByteView text, std::uint64_t vaddr) {
  assert(blob_.empty() && "set_backing must precede row insertion");
  blob_.assign(text.begin(), text.end());
  backing_vaddr_ = vaddr;
  backing_len_ = text.size();
}

OrigView Database::intern(ByteView bytes) {
  if (bytes.empty()) return {};
  // Re-interning bytes that already live in the blob (row snapshots,
  // cross-row assignment) is a no-copy offset computation.
  if (!blob_.empty() && bytes.data() >= blob_.data() &&
      bytes.data() + bytes.size() <= blob_.data() + blob_.size()) {
    return {static_cast<std::uint32_t>(bytes.data() - blob_.data()),
            static_cast<std::uint32_t>(bytes.size())};
  }
  OrigView v{static_cast<std::uint32_t>(blob_.size()),
             static_cast<std::uint32_t>(bytes.size())};
  blob_.insert(blob_.end(), bytes.begin(), bytes.end());
  return v;
}

OrigView Database::intern_at(std::uint64_t addr, ByteView bytes) {
  if (backing_len_ != 0 && addr >= backing_vaddr_ &&
      addr - backing_vaddr_ + bytes.size() <= backing_len_) {
    std::uint32_t off = static_cast<std::uint32_t>(addr - backing_vaddr_);
    assert(std::equal(bytes.begin(), bytes.end(), blob_.begin() + off) &&
           "orig_bytes disagree with the backing image at orig_addr");
    return {off, static_cast<std::uint32_t>(bytes.size())};
  }
  return intern(bytes);
}

InsnId Database::push_row(const isa::Insn& decoded, std::optional<std::uint64_t> orig_addr,
                          OrigView orig, InsnId fallthrough, InsnId target,
                          std::optional<std::uint64_t> abs_target,
                          std::optional<std::uint64_t> data_ref, FuncId function,
                          bool verbatim) {
  decoded_.push_back(decoded);
  orig_addr_.push_back(orig_addr);
  orig_.push_back(orig);
  fallthrough_.push_back(fallthrough);
  target_.push_back(target);
  abs_target_.push_back(abs_target);
  data_ref_.push_back(data_ref);
  function_.push_back(function);
  verbatim_.push_back(verbatim ? 1 : 0);
  return static_cast<InsnId>(decoded_.size());
}

void Database::reserve_insns(std::size_t n) {
  decoded_.reserve(n);
  orig_addr_.reserve(n);
  orig_.reserve(n);
  fallthrough_.reserve(n);
  target_.reserve(n);
  abs_target_.reserve(n);
  data_ref_.reserve(n);
  function_.reserve(n);
  verbatim_.reserve(n);
}

InsnId Database::add_instruction(Instruction insn) {
  OrigView v = insn.orig_addr ? intern_at(*insn.orig_addr, insn.orig_bytes)
                              : intern(insn.orig_bytes);
  return push_row(insn.decoded, insn.orig_addr, v, insn.fallthrough, insn.target,
                  insn.abs_target, insn.data_ref, insn.function, insn.verbatim);
}

InsnId Database::add_new(const isa::Insn& decoded) {
  isa::Insn d = decoded;
  d.length = static_cast<std::uint8_t>(isa::encoded_length(decoded));
  return push_row(d, std::nullopt, {}, kNullInsn, kNullInsn, std::nullopt, std::nullopt,
                  kNullFunc, false);
}

InsnId Database::add_original(const isa::Insn& decoded, std::uint64_t addr) {
  assert(backing_len_ != 0 && addr >= backing_vaddr_ &&
         addr - backing_vaddr_ + decoded.length <= backing_len_);
  OrigView v{static_cast<std::uint32_t>(addr - backing_vaddr_), decoded.length};
  return push_row(decoded, addr, v, kNullInsn, kNullInsn, std::nullopt, std::nullopt,
                  kNullFunc, false);
}

InsnId Database::add_verbatim_range(std::uint64_t addr, std::uint32_t len) {
  assert(backing_len_ != 0 && addr >= backing_vaddr_ &&
         addr - backing_vaddr_ + len <= backing_len_);
  OrigView v{static_cast<std::uint32_t>(addr - backing_vaddr_), len};
  isa::Insn raw;  // verbatim rows carry no semantic form
  return push_row(raw, addr, v, kNullInsn, kNullInsn, std::nullopt, std::nullopt,
                  kNullFunc, true);
}

Instruction Database::snapshot(InsnId id) const {
  assert(has_insn(id));
  std::size_t i = id - 1;
  Instruction out;
  out.id = id;
  out.decoded = decoded_[i];
  out.orig_addr = orig_addr_[i];
  ByteView b = orig_bytes_of(id);
  out.orig_bytes.assign(b.begin(), b.end());
  out.fallthrough = fallthrough_[i];
  out.target = target_[i];
  out.abs_target = abs_target_[i];
  out.data_ref = data_ref_[i];
  out.function = function_[i];
  out.verbatim = verbatim_[i] != 0;
  return out;
}

Status Database::pin(std::uint64_t addr, InsnId id) {
  if (!has_insn(id)) return Error::invalid_argument("pin names unknown instruction");
  if (pins_.empty() || pins_.back().first < addr) {
    pins_.emplace_back(addr, id);  // ascending insertion: the common case
    return Status::success();
  }
  auto it = std::lower_bound(pins_.begin(), pins_.end(), addr,
                             [](const auto& p, std::uint64_t a) { return p.first < a; });
  if (it != pins_.end() && it->first == addr)
    return Error::internal("address " + hex_addr(addr) + " already pinned");
  pins_.insert(it, {addr, id});
  return Status::success();
}

InsnId Database::pinned_at(std::uint64_t addr) const {
  auto it = std::lower_bound(pins_.begin(), pins_.end(), addr,
                             [](const auto& p, std::uint64_t a) { return p.first < a; });
  return (it != pins_.end() && it->first == addr) ? it->second : kNullInsn;
}

Status Database::repin(std::uint64_t addr, InsnId id) {
  auto it = std::lower_bound(pins_.begin(), pins_.end(), addr,
                             [](const auto& p, std::uint64_t a) { return p.first < a; });
  if (it == pins_.end() || it->first != addr)
    return Error::not_found("no pin at " + hex_addr(addr));
  if (!has_insn(id)) return Error::invalid_argument("repin names unknown instruction");
  it->second = id;
  return Status::success();
}

FuncId Database::add_function(Function f) {
  FuncId id = static_cast<FuncId>(funcs_.size() + 1);
  f.id = id;
  funcs_.push_back(std::move(f));
  return id;
}

Function& Database::function(FuncId id) {
  assert(id > 0 && id <= funcs_.size());
  return funcs_[id - 1];
}

const Function& Database::function(FuncId id) const {
  assert(id > 0 && id <= funcs_.size());
  return funcs_[id - 1];
}

InsnId Database::insert_before(InsnId id, const isa::Insn& what) {
  assert(has_insn(id));
  // Move the original payload to a fresh row (a straight column copy --
  // the orig-bytes view transfers without touching the blob)...
  std::size_t i = id - 1;
  InsnId moved_id = push_row(decoded_[i], orig_addr_[i], orig_[i], fallthrough_[i],
                             target_[i], abs_target_[i], data_ref_[i], function_[i],
                             verbatim_[i] != 0);
  // ...then rewrite row `id` in place as the inserted instruction. All
  // existing links/pins to `id` now reach `what` first, then fall through
  // to the original payload -- without scanning for back-references.
  i = id - 1;  // (columns may have reallocated)
  decoded_[i] = what;
  decoded_[i].length = static_cast<std::uint8_t>(isa::encoded_length(what));
  orig_[i] = {};
  verbatim_[i] = 0;
  target_[i] = kNullInsn;
  abs_target_[i] = std::nullopt;
  data_ref_[i] = std::nullopt;
  fallthrough_[i] = moved_id;
  // The moved payload keeps its own links; the pin (if any) stays on `id`
  // because pins are keyed by address, and orig_addr stays on the moved row
  // to preserve provenance.
  orig_addr_[i] = std::nullopt;
  FuncId func = function_[moved_id - 1];
  if (func != kNullFunc) {
    // Record membership of the new row.
    function(func).members.push_back(moved_id);
  }
  return moved_id;
}

InsnId Database::insert_after(InsnId id, const isa::Insn& what) {
  assert(has_insn(id));
  isa::Insn d = what;
  d.length = static_cast<std::uint8_t>(isa::encoded_length(what));
  InsnId new_id = push_row(d, std::nullopt, {}, fallthrough_[id - 1], kNullInsn,
                           std::nullopt, std::nullopt, function_[id - 1], false);
  fallthrough_[id - 1] = new_id;
  FuncId func = function_[new_id - 1];
  if (func != kNullFunc) function(func).members.push_back(new_id);
  return new_id;
}

void Database::replace(InsnId id, const isa::Insn& what) {
  assert(has_insn(id));
  std::size_t i = id - 1;
  decoded_[i] = what;
  decoded_[i].length = static_cast<std::uint8_t>(isa::encoded_length(what));
  orig_[i] = {};
  verbatim_[i] = 0;
}

Status Database::remove(InsnId id) {
  if (!has_insn(id)) return Error::invalid_argument("remove names unknown instruction");
  InsnId ft = fallthrough_[id - 1];
  if (ft == kNullInsn)
    return Error::invalid_argument("cannot remove instruction with no fallthrough");
  for (auto& f : fallthrough_)
    if (f == id) f = ft;
  for (auto& t : target_)
    if (t == id) t = ft;
  for (auto& [addr, pinned] : pins_)
    if (pinned == id) pinned = ft;
  for (auto& f : funcs_)
    if (f.entry == id) f.entry = ft;
  return Status::success();
}

Status Database::validate() const {
  for (std::size_t i = 0; i < decoded_.size(); ++i) {
    InsnId id = static_cast<InsnId>(i + 1);
    if (fallthrough_[i] != kNullInsn && !has_insn(fallthrough_[i]))
      return Error::internal("dangling fallthrough from insn " + std::to_string(id));
    if (target_[i] != kNullInsn && !has_insn(target_[i]))
      return Error::internal("dangling target from insn " + std::to_string(id));
    if (target_[i] != kNullInsn && abs_target_[i])
      return Error::internal("insn " + std::to_string(id) +
                             " has both target and abs_target (mutually exclusive)");
    if (verbatim_[i]) {
      if (!orig_addr_[i])
        return Error::internal("verbatim insn " + std::to_string(id) + " has no orig_addr");
      if (orig_[i].len == 0)
        return Error::internal("verbatim insn " + std::to_string(id) + " has no bytes");
    }
    if (function_[i] != kNullFunc && function_[i] > funcs_.size())
      return Error::internal("insn " + std::to_string(id) + " names unknown function");
  }
  for (const auto& [addr, id] : pins_) {
    if (!has_insn(id)) return Error::internal("pin at " + hex_addr(addr) + " dangles");
  }
  for (const auto& f : funcs_) {
    if (f.entry != kNullInsn && !has_insn(f.entry))
      return Error::internal("function " + f.name + " entry dangles");
    for (InsnId m : f.members)
      if (!has_insn(m)) return Error::internal("function " + f.name + " member dangles");
  }
  return Status::success();
}

}  // namespace zipr::irdb
