#include "irdb/ir.h"

#include <cassert>

namespace zipr::irdb {

InsnId Database::add_instruction(Instruction insn) {
  InsnId id = static_cast<InsnId>(insns_.size() + 1);
  insn.id = id;
  insns_.push_back(std::move(insn));
  return id;
}

InsnId Database::add_new(const isa::Insn& decoded) {
  Instruction row;
  row.decoded = decoded;
  row.decoded.length = static_cast<std::uint8_t>(isa::encoded_length(decoded));
  return add_instruction(std::move(row));
}

Instruction& Database::insn(InsnId id) {
  assert(has_insn(id));
  return insns_[id - 1];
}

const Instruction& Database::insn(InsnId id) const {
  assert(has_insn(id));
  return insns_[id - 1];
}

Status Database::pin(std::uint64_t addr, InsnId id) {
  if (!has_insn(id)) return Error::invalid_argument("pin names unknown instruction");
  auto [it, inserted] = pins_.emplace(addr, id);
  (void)it;
  if (!inserted) return Error::internal("address " + hex_addr(addr) + " already pinned");
  return Status::success();
}

InsnId Database::pinned_at(std::uint64_t addr) const {
  auto it = pins_.find(addr);
  return it == pins_.end() ? kNullInsn : it->second;
}

Status Database::repin(std::uint64_t addr, InsnId id) {
  auto it = pins_.find(addr);
  if (it == pins_.end()) return Error::not_found("no pin at " + hex_addr(addr));
  if (!has_insn(id)) return Error::invalid_argument("repin names unknown instruction");
  it->second = id;
  return Status::success();
}

FuncId Database::add_function(Function f) {
  FuncId id = static_cast<FuncId>(funcs_.size() + 1);
  f.id = id;
  funcs_.push_back(std::move(f));
  return id;
}

Function& Database::function(FuncId id) {
  assert(id > 0 && id <= funcs_.size());
  return funcs_[id - 1];
}

const Function& Database::function(FuncId id) const {
  assert(id > 0 && id <= funcs_.size());
  return funcs_[id - 1];
}

InsnId Database::insert_before(InsnId id, const isa::Insn& what) {
  assert(has_insn(id));
  // Move the original payload to a fresh row...
  Instruction moved = insn(id);
  InsnId moved_id = add_instruction(std::move(moved));
  // ...then rewrite row `id` in place as the inserted instruction. All
  // existing links/pins to `id` now reach `what` first, then fall through
  // to the original payload -- without scanning for back-references.
  Instruction& row = insn(id);
  Instruction& moved_row = insn(moved_id);
  row.decoded = what;
  row.decoded.length = static_cast<std::uint8_t>(isa::encoded_length(what));
  row.orig_bytes.clear();
  row.verbatim = false;
  row.target = kNullInsn;
  row.data_ref = std::nullopt;
  row.fallthrough = moved_id;
  row.function = moved_row.function;
  // The moved payload keeps its own links; the pin (if any) stays on `id`
  // because pins are keyed by address, and orig_addr stays on the moved row
  // to preserve provenance.
  row.orig_addr = std::nullopt;
  if (moved_row.function != kNullFunc) {
    // Record membership of the new row.
    function(moved_row.function).members.push_back(moved_id);
  }
  return moved_id;
}

InsnId Database::insert_after(InsnId id, const isa::Insn& what) {
  assert(has_insn(id));
  Instruction row;
  row.decoded = what;
  row.decoded.length = static_cast<std::uint8_t>(isa::encoded_length(what));
  row.function = insn(id).function;
  row.fallthrough = insn(id).fallthrough;
  InsnId new_id = add_instruction(std::move(row));
  insn(id).fallthrough = new_id;
  if (insn(new_id).function != kNullFunc)
    function(insn(new_id).function).members.push_back(new_id);
  return new_id;
}

void Database::replace(InsnId id, const isa::Insn& what) {
  assert(has_insn(id));
  Instruction& row = insn(id);
  row.decoded = what;
  row.decoded.length = static_cast<std::uint8_t>(isa::encoded_length(what));
  row.orig_bytes.clear();
  row.verbatim = false;
}

Status Database::remove(InsnId id) {
  if (!has_insn(id)) return Error::invalid_argument("remove names unknown instruction");
  InsnId ft = insn(id).fallthrough;
  if (ft == kNullInsn)
    return Error::invalid_argument("cannot remove instruction with no fallthrough");
  for (auto& row : insns_) {
    if (row.fallthrough == id) row.fallthrough = ft;
    if (row.target == id) row.target = ft;
  }
  for (auto& [addr, pinned] : pins_)
    if (pinned == id) pinned = ft;
  for (auto& f : funcs_)
    if (f.entry == id) f.entry = ft;
  return Status::success();
}

Status Database::validate() const {
  for (const auto& row : insns_) {
    if (row.fallthrough != kNullInsn && !has_insn(row.fallthrough))
      return Error::internal("dangling fallthrough from insn " + std::to_string(row.id));
    if (row.target != kNullInsn && !has_insn(row.target))
      return Error::internal("dangling target from insn " + std::to_string(row.id));
    if (row.verbatim) {
      if (!row.orig_addr)
        return Error::internal("verbatim insn " + std::to_string(row.id) + " has no orig_addr");
      if (row.orig_bytes.empty())
        return Error::internal("verbatim insn " + std::to_string(row.id) + " has no bytes");
    }
    if (row.function != kNullFunc && row.function > funcs_.size())
      return Error::internal("insn " + std::to_string(row.id) + " names unknown function");
  }
  for (const auto& [addr, id] : pins_) {
    if (!has_insn(id)) return Error::internal("pin at " + hex_addr(addr) + " dangles");
  }
  for (const auto& f : funcs_) {
    if (f.entry != kNullInsn && !has_insn(f.entry))
      return Error::internal("function " + f.name + " entry dangles");
    for (InsnId m : f.members)
      if (!has_insn(m)) return Error::internal("function " + f.name + " member dangles");
  }
  return Status::success();
}

}  // namespace zipr::irdb
