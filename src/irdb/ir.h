// The IR database (IRDB): the representation mediating between IR
// construction, transformation and reassembly (paper Sec. II).
//
// The paper's IRDB is an SQL database shared by cooperating tools; here it
// is an in-memory relational store with the same schema essentials:
//
//   * an instruction table where control-flow relationships are LOGICAL
//     links (fallthrough id, target id) rather than addresses, so
//     instructions can be re-placed anywhere (Sec. II-A1);
//   * a pinned-address table mapping original addresses that may be
//     targeted indirectly at runtime to the instruction that must appear
//     to live there (Sec. II-A2);
//   * a function table used by the user-transform API and by CFI.
//
// Storage is struct-of-arrays: each column of the instruction table is a
// dense vector indexed by id-1, so the hot reassembly loops (which touch
// only fallthrough/target/length) stream over contiguous memory instead of
// chasing 120-byte row objects. `insn(id)` returns a lightweight row PROXY
// whose members are references into the columns -- call sites keep the
// `row.field` syntax of a materialized struct. Original bytes are not
// copied per row: the database retains ONE copy of the input text image
// (`set_backing`) and rows reference (offset, length) views into it;
// synthetic bytes (deserialized rows, tests) are interned into an overflow
// region of the same blob.
//
// A pinned address `a` corresponds to exactly one instruction id at any
// time. Transforms that rewrite the instruction in place keep the pin
// attached (Fig. 2's i -> i' example); insert_before() exploits this by
// rewriting the pinned id and moving the original payload to a fresh id.
// The pin table is a sorted flat vector: IR construction appends pins in
// ascending address order (the common case is O(1)), and lookup is a
// binary search.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "isa/insn.h"
#include "support/bytes.h"
#include "support/status.h"

namespace zipr::irdb {

/// Instruction id; 0 is the null id.
using InsnId = std::uint32_t;
inline constexpr InsnId kNullInsn = 0;

using FuncId = std::uint32_t;
inline constexpr FuncId kNullFunc = 0;

/// A materialized instruction row: the INSERTION RECORD for
/// Database::add_instruction and the snapshot type for structured edits.
/// The database itself does not store these -- see the column arrays.
struct Instruction {
  InsnId id = kNullInsn;
  isa::Insn decoded;  ///< semantic form; branch displacement fields are NOT
                      ///< authoritative -- `target` is (mandatory transform)

  /// Address in the original program, if this instruction came from it.
  /// New instructions added by transforms have no original address.
  std::optional<std::uint64_t> orig_addr;

  /// Original encoding. Used (a) to re-emit `verbatim` rows byte-exactly
  /// and (b) by tests comparing pre/post images.
  Bytes orig_bytes;

  InsnId fallthrough = kNullInsn;  ///< logical successor; null if none
  InsnId target = kNullInsn;       ///< logical static CF target; null if none

  /// Static CF target expressed as an ORIGINAL absolute address, used when
  /// the target was not lifted to a row (it lies inside a verbatim
  /// code/data range that stays at its original location). Mutually
  /// exclusive with `target` (enforced by validate()).
  std::optional<std::uint64_t> abs_target;

  /// For PC-relative data instructions (lea/loadpc): the absolute address
  /// of the referenced datum. Data keeps its original addresses after
  /// rewriting, so an absolute link suffices; if the referent is in the
  /// text segment the analysis will have pinned it.
  std::optional<std::uint64_t> data_ref;

  FuncId function = kNullFunc;

  /// True if this row's bytes must appear verbatim at orig_addr in the
  /// output: the conservative handling of ranges that may be data
  /// (paper's disassembly Cases 2 and 3).
  bool verbatim = false;

  bool is_valid() const { return id != kNullInsn; }
};

/// One row of the function table.
struct Function {
  FuncId id = kNullFunc;
  std::string name;      ///< synthesized ("func_400123") -- no symbols used
  InsnId entry = kNullInsn;
  std::vector<InsnId> members;  ///< instruction ids, entry first
};

class Database;

/// (offset, length) view into the database's retained byte blob.
struct OrigView {
  std::uint32_t off = 0;
  std::uint32_t len = 0;
};

/// Read-only handle to a row's original bytes (a view into the blob).
class ConstOrigBytesRef {
 public:
  ConstOrigBytesRef(const Database* db, const OrigView* v) : db_(db), v_(v) {}
  std::size_t size() const { return v_->len; }
  bool empty() const { return v_->len == 0; }
  inline ByteView view() const;
  operator ByteView() const { return view(); }
  friend bool operator==(const ConstOrigBytesRef& a, ByteView b) {
    ByteView av = a.view();
    return std::equal(av.begin(), av.end(), b.begin(), b.end());
  }

 protected:
  const Database* db_;
  const OrigView* v_;
};

/// Mutable handle: assignment interns bytes into the blob; clear() drops
/// the view (the blob itself is append-only within a database lifetime).
class OrigBytesRef : public ConstOrigBytesRef {
 public:
  OrigBytesRef(Database* db, OrigView* v) : ConstOrigBytesRef(db, v) {}
  void clear() { const_cast<OrigView*>(v_)->len = 0; }
  inline OrigBytesRef& operator=(ByteView bytes);
};

/// Read-only row proxy over the column arrays. Cheap to construct; member
/// access compiles to a column load. `id` is the row's identity, not a
/// mutable field.
struct ConstRowRef {
  const InsnId id;
  const isa::Insn& decoded;
  const std::optional<std::uint64_t>& orig_addr;
  ConstOrigBytesRef orig_bytes;
  const InsnId& fallthrough;
  const InsnId& target;
  const std::optional<std::uint64_t>& abs_target;
  const std::optional<std::uint64_t>& data_ref;
  const FuncId& function;
  const std::uint8_t& verbatim;

  bool is_valid() const { return id != kNullInsn; }
};

/// Mutable row proxy.
struct RowRef {
  const InsnId id;
  isa::Insn& decoded;
  std::optional<std::uint64_t>& orig_addr;
  OrigBytesRef orig_bytes;
  InsnId& fallthrough;
  InsnId& target;
  std::optional<std::uint64_t>& abs_target;
  std::optional<std::uint64_t>& data_ref;
  FuncId& function;
  std::uint8_t& verbatim;  ///< boolean; stored dense as one byte

  bool is_valid() const { return id != kNullInsn; }
  operator ConstRowRef() const {
    return ConstRowRef{id,         decoded,    orig_addr, orig_bytes, fallthrough,
                       target,     abs_target, data_ref,  function,   verbatim};
  }
};

/// The database. Owns all rows; ids are stable for the database's lifetime.
class Database {
 public:
  // ---- byte backing ----

  /// Retain one copy of the original text image. Rows whose orig_bytes lie
  /// inside [vaddr, vaddr+text.size()) reference it with zero copies; call
  /// once, before lifting rows. Safe to skip (all bytes are then interned
  /// into the overflow region).
  void set_backing(ByteView text, std::uint64_t vaddr);

  ByteView blob() const { return blob_; }

  // ---- instruction table ----

  /// Add a new instruction row; returns its id. Non-empty orig_bytes are
  /// interned: referenced in place when they alias the backing image,
  /// appended to the overflow blob otherwise.
  InsnId add_instruction(Instruction insn);

  /// Convenience: add a brand-new (transform-created) instruction from its
  /// semantic form, with no original address.
  InsnId add_new(const isa::Insn& decoded);

  /// Fast path for IR construction: a row lifted from the original image
  /// at `addr`, whose original bytes are backing[addr .. addr+length).
  /// No byte copy is made.
  InsnId add_original(const isa::Insn& decoded, std::uint64_t addr);

  /// Fast path for IR construction: a verbatim row covering the backing
  /// range [addr, addr+len) byte-exactly.
  InsnId add_verbatim_range(std::uint64_t addr, std::uint32_t len);

  RowRef insn(InsnId id) {
    assert(has_insn(id));
    std::size_t i = id - 1;
    return RowRef{id,           decoded_[i],
                  orig_addr_[i], OrigBytesRef(this, &orig_[i]),
                  fallthrough_[i], target_[i],
                  abs_target_[i], data_ref_[i],
                  function_[i],  verbatim_[i]};
  }
  ConstRowRef insn(InsnId id) const {
    assert(has_insn(id));
    std::size_t i = id - 1;
    return ConstRowRef{id,           decoded_[i],
                       orig_addr_[i], ConstOrigBytesRef(this, &orig_[i]),
                       fallthrough_[i], target_[i],
                       abs_target_[i], data_ref_[i],
                       function_[i],  verbatim_[i]};
  }

  /// Materialize a full copy of a row (structured edits, serialization).
  Instruction snapshot(InsnId id) const;

  bool has_insn(InsnId id) const { return id > 0 && id <= decoded_.size(); }
  std::size_t insn_count() const { return decoded_.size(); }

  // Hot single-column accessors for inner loops (skip proxy construction).
  InsnId fallthrough_of(InsnId id) const { return fallthrough_[id - 1]; }
  InsnId target_of(InsnId id) const { return target_[id - 1]; }
  const isa::Insn& decoded_of(InsnId id) const { return decoded_[id - 1]; }
  bool is_verbatim(InsnId id) const { return verbatim_[id - 1] != 0; }
  ByteView orig_bytes_of(InsnId id) const {
    const OrigView& v = orig_[id - 1];
    return ByteView(blob_).subspan(v.off, v.len);
  }

  /// Reserve column capacity ahead of bulk row insertion.
  void reserve_insns(std::size_t n);

  /// Iterate all instruction rows in creation order (proxy per row).
  template <typename Fn>
  void for_each_insn(Fn&& fn) {
    for (InsnId id = 1; id <= decoded_.size(); ++id) fn(insn(id));
  }
  template <typename Fn>
  void for_each_insn(Fn&& fn) const {
    for (InsnId id = 1; id <= decoded_.size(); ++id) fn(insn(id));
  }

  // ---- pinned-address table ----

  using PinVec = std::vector<std::pair<std::uint64_t, InsnId>>;

  /// Pin `addr` to instruction `id`. An address pins at most one id;
  /// re-pinning an address is an error (internal invariant). Ascending
  /// insertion (IR construction order) is amortized O(1).
  Status pin(std::uint64_t addr, InsnId id);

  /// The instruction pinned at `addr`, or null.
  InsnId pinned_at(std::uint64_t addr) const;

  /// All (address, id) pins in ascending address order.
  const PinVec& pins() const { return pins_; }

  /// Move the pin at `addr` to a different instruction (used by
  /// insert_before-style edits at pin boundaries).
  Status repin(std::uint64_t addr, InsnId id);

  // ---- function table ----

  FuncId add_function(Function f);
  Function& function(FuncId id);
  const Function& function(FuncId id) const;
  std::size_t function_count() const { return funcs_.size(); }
  template <typename Fn>
  void for_each_function(Fn&& fn) {
    for (auto& f : funcs_) fn(f);
  }
  template <typename Fn>
  void for_each_function(Fn&& fn) const {
    for (const auto& f : funcs_) fn(f);
  }

  // ---- structured edits (the substrate of the user-transform API) ----

  /// Insert `what` immediately before instruction `id` in control flow:
  /// every existing link or pin that led to `id` now executes `what`
  /// first. Implemented by moving `id`'s payload to a fresh row and
  /// rewriting row `id` in place with `what`, falling through to the
  /// moved payload. Returns the id now holding the ORIGINAL payload.
  InsnId insert_before(InsnId id, const isa::Insn& what);

  /// Insert `what` between `id` and its fallthrough. Returns the new id.
  InsnId insert_after(InsnId id, const isa::Insn& what);

  /// Replace the semantic body of `id`, keeping links and pins.
  void replace(InsnId id, const isa::Insn& what);

  /// Remove `id` from control flow by redirecting all links and pins that
  /// point at it to its fallthrough. Fails if `id` has no fallthrough.
  /// The row remains but becomes unreachable.
  Status remove(InsnId id);

  // ---- integrity ----

  /// Check referential integrity: all links and pins name existing rows,
  /// verbatim rows have original addresses and bytes, target/abs_target
  /// are mutually exclusive, functions' members exist. Cheap enough to
  /// run in tests after every transform.
  Status validate() const;

 private:
  friend class ConstOrigBytesRef;
  friend class OrigBytesRef;

  /// Intern `bytes` (known not to alias the backing image region).
  OrigView intern(ByteView bytes);
  /// View for bytes at original address `addr`; references the backing
  /// image when covered, interns a copy otherwise.
  OrigView intern_at(std::uint64_t addr, ByteView bytes);
  InsnId push_row(const isa::Insn& decoded, std::optional<std::uint64_t> orig_addr,
                  OrigView orig, InsnId fallthrough, InsnId target,
                  std::optional<std::uint64_t> abs_target,
                  std::optional<std::uint64_t> data_ref, FuncId function, bool verbatim);

  // Instruction table columns; id = index + 1.
  std::vector<isa::Insn> decoded_;
  std::vector<std::optional<std::uint64_t>> orig_addr_;
  std::vector<OrigView> orig_;
  std::vector<InsnId> fallthrough_;
  std::vector<InsnId> target_;
  std::vector<std::optional<std::uint64_t>> abs_target_;
  std::vector<std::optional<std::uint64_t>> data_ref_;
  std::vector<FuncId> function_;
  std::vector<std::uint8_t> verbatim_;

  /// Retained bytes: [0, backing_len_) is the original text image (vaddr
  /// backing_vaddr_); the tail is the append-only overflow region for
  /// synthetic bytes. Views are offsets, so blob growth never dangles.
  Bytes blob_;
  std::uint64_t backing_vaddr_ = 0;
  std::size_t backing_len_ = 0;

  PinVec pins_;                  ///< sorted by address
  std::vector<Function> funcs_;  ///< id = index + 1
};

inline ByteView ConstOrigBytesRef::view() const {
  return db_->blob().subspan(v_->off, v_->len);
}

inline OrigBytesRef& OrigBytesRef::operator=(ByteView bytes) {
  *const_cast<OrigView*>(v_) = const_cast<Database*>(db_)->intern(bytes);
  return *this;
}

}  // namespace zipr::irdb
