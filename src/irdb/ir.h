// The IR database (IRDB): the representation mediating between IR
// construction, transformation and reassembly (paper Sec. II).
//
// The paper's IRDB is an SQL database shared by cooperating tools; here it
// is an in-memory relational store with the same schema essentials:
//
//   * an instruction table where control-flow relationships are LOGICAL
//     links (fallthrough id, target id) rather than addresses, so
//     instructions can be re-placed anywhere (Sec. II-A1);
//   * a pinned-address table mapping original addresses that may be
//     targeted indirectly at runtime to the instruction that must appear
//     to live there (Sec. II-A2);
//   * a function table used by the user-transform API and by CFI.
//
// A pinned address `a` corresponds to exactly one instruction id at any
// time. Transforms that rewrite the instruction in place keep the pin
// attached (Fig. 2's i -> i' example); insert_before() exploits this by
// rewriting the pinned id and moving the original payload to a fresh id.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/insn.h"
#include "support/bytes.h"
#include "support/status.h"

namespace zipr::irdb {

/// Instruction id; 0 is the null id.
using InsnId = std::uint32_t;
inline constexpr InsnId kNullInsn = 0;

using FuncId = std::uint32_t;
inline constexpr FuncId kNullFunc = 0;

/// One row of the instruction table.
struct Instruction {
  InsnId id = kNullInsn;
  isa::Insn decoded;  ///< semantic form; branch displacement fields are NOT
                      ///< authoritative -- `target` is (mandatory transform)

  /// Address in the original program, if this instruction came from it.
  /// New instructions added by transforms have no original address.
  std::optional<std::uint64_t> orig_addr;

  /// Original encoding. Used (a) to re-emit `verbatim` rows byte-exactly
  /// and (b) by tests comparing pre/post images.
  Bytes orig_bytes;

  InsnId fallthrough = kNullInsn;  ///< logical successor; null if none
  InsnId target = kNullInsn;       ///< logical static CF target; null if none

  /// Static CF target expressed as an ORIGINAL absolute address, used when
  /// the target was not lifted to a row (it lies inside a verbatim
  /// code/data range that stays at its original location). Mutually
  /// exclusive with `target`.
  std::optional<std::uint64_t> abs_target;

  /// For PC-relative data instructions (lea/loadpc): the absolute address
  /// of the referenced datum. Data keeps its original addresses after
  /// rewriting, so an absolute link suffices; if the referent is in the
  /// text segment the analysis will have pinned it.
  std::optional<std::uint64_t> data_ref;

  FuncId function = kNullFunc;

  /// True if this row's bytes must appear verbatim at orig_addr in the
  /// output: the conservative handling of ranges that may be data
  /// (paper's disassembly Cases 2 and 3).
  bool verbatim = false;

  bool is_valid() const { return id != kNullInsn; }
};

/// One row of the function table.
struct Function {
  FuncId id = kNullFunc;
  std::string name;      ///< synthesized ("func_400123") -- no symbols used
  InsnId entry = kNullInsn;
  std::vector<InsnId> members;  ///< instruction ids, entry first
};

/// The database. Owns all rows; ids are stable for the database's lifetime.
class Database {
 public:
  // ---- instruction table ----

  /// Add a new instruction row; returns its id.
  InsnId add_instruction(Instruction insn);

  /// Convenience: add a brand-new (transform-created) instruction from its
  /// semantic form, with no original address.
  InsnId add_new(const isa::Insn& decoded);

  Instruction& insn(InsnId id);
  const Instruction& insn(InsnId id) const;
  bool has_insn(InsnId id) const { return id > 0 && id <= insns_.size(); }

  std::size_t insn_count() const { return insns_.size(); }

  /// Iterate all instruction ids in creation order.
  template <typename Fn>
  void for_each_insn(Fn&& fn) {
    for (auto& row : insns_) fn(row);
  }
  template <typename Fn>
  void for_each_insn(Fn&& fn) const {
    for (const auto& row : insns_) fn(row);
  }

  // ---- pinned-address table ----

  /// Pin `addr` to instruction `id`. An address pins at most one id;
  /// re-pinning an address is an error (internal invariant).
  Status pin(std::uint64_t addr, InsnId id);

  /// The instruction pinned at `addr`, or null.
  InsnId pinned_at(std::uint64_t addr) const;

  /// All (address, id) pins in ascending address order.
  const std::map<std::uint64_t, InsnId>& pins() const { return pins_; }

  /// Move the pin at `addr` to a different instruction (used by
  /// insert_before-style edits at pin boundaries).
  Status repin(std::uint64_t addr, InsnId id);

  // ---- function table ----

  FuncId add_function(Function f);
  Function& function(FuncId id);
  const Function& function(FuncId id) const;
  std::size_t function_count() const { return funcs_.size(); }
  template <typename Fn>
  void for_each_function(Fn&& fn) {
    for (auto& f : funcs_) fn(f);
  }
  template <typename Fn>
  void for_each_function(Fn&& fn) const {
    for (const auto& f : funcs_) fn(f);
  }

  // ---- structured edits (the substrate of the user-transform API) ----

  /// Insert `what` immediately before instruction `id` in control flow:
  /// every existing link or pin that led to `id` now executes `what`
  /// first. Implemented by moving `id`'s payload to a fresh row and
  /// rewriting row `id` in place with `what`, falling through to the
  /// moved payload. Returns the id now holding the ORIGINAL payload.
  InsnId insert_before(InsnId id, const isa::Insn& what);

  /// Insert `what` between `id` and its fallthrough. Returns the new id.
  InsnId insert_after(InsnId id, const isa::Insn& what);

  /// Replace the semantic body of `id`, keeping links and pins.
  void replace(InsnId id, const isa::Insn& what);

  /// Remove `id` from control flow by redirecting all links and pins that
  /// point at it to its fallthrough. Fails if `id` has no fallthrough.
  /// The row remains but becomes unreachable.
  Status remove(InsnId id);

  // ---- integrity ----

  /// Check referential integrity: all links and pins name existing rows,
  /// verbatim rows have original addresses and bytes, functions' members
  /// exist. Cheap enough to run in tests after every transform.
  Status validate() const;

 private:
  std::vector<Instruction> insns_;  // id = index + 1
  std::map<std::uint64_t, InsnId> pins_;
  std::vector<Function> funcs_;     // id = index + 1
};

}  // namespace zipr::irdb
