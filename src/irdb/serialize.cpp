#include "irdb/serialize.h"

#include <charconv>
#include <sstream>

namespace zipr::irdb {

namespace {

constexpr const char* kHeader = "zipr-irdb 1";

std::string hex_bytes(ByteView b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (Byte v : b) {
    out.push_back(digits[v >> 4]);
    out.push_back(digits[v & 0xf]);
  }
  return out;
}

Result<Bytes> parse_hex(std::string_view s) {
  if (s.size() % 2) return Error::parse("odd hex length");
  Bytes out;
  out.reserve(s.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < s.size(); i += 2) {
    int hi = nibble(s[i]), lo = nibble(s[i + 1]);
    if (hi < 0 || lo < 0) return Error::parse("bad hex digit");
    out.push_back(static_cast<Byte>((hi << 4) | lo));
  }
  return out;
}

Result<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size())
    return Error::parse("bad number '" + std::string(s) + "'");
  return v;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

std::string serialize(const Database& db) {
  std::ostringstream out;
  out << kHeader << "\n";

  db.for_each_insn([&](const auto& row) {
    // Encoded bytes carry the semantics; verbatim rows keep raw bytes.
    ByteView raw = row.orig_bytes;
    Bytes bytes = row.verbatim ? Bytes(raw.begin(), raw.end())
                               : isa::encode(row.decoded).value_or(Bytes{});
    out << "insn " << row.id << " bytes=" << hex_bytes(bytes);
    if (row.orig_addr) out << " orig=" << *row.orig_addr;
    if (row.fallthrough != kNullInsn) out << " ft=" << row.fallthrough;
    if (row.target != kNullInsn) out << " tgt=" << row.target;
    if (row.abs_target) out << " abs=" << *row.abs_target;
    if (row.data_ref) out << " data=" << *row.data_ref;
    if (row.function != kNullFunc) out << " func=" << row.function;
    if (row.verbatim) out << " verbatim";
    out << "\n";
  });

  for (const auto& [addr, id] : db.pins()) out << "pin " << addr << " " << id << "\n";

  db.for_each_function([&](const Function& f) {
    out << "func " << f.id << " entry=" << f.entry << " name=" << f.name << " members=";
    for (std::size_t i = 0; i < f.members.size(); ++i) {
      if (i) out << ",";
      out << f.members[i];
    }
    out << "\n";
  });
  return out.str();
}

Result<Database> deserialize(std::string_view text) {
  Database db;
  std::size_t pos = 0;
  int line_no = 0;
  bool saw_header = false;

  auto err = [&](const std::string& m) {
    return Error::parse("irdb line " + std::to_string(line_no) + ": " + m);
  };

  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;

    if (!saw_header) {
      if (line != kHeader) return err("missing header");
      saw_header = true;
      continue;
    }

    auto fields = split(line, ' ');
    if (fields.empty()) continue;

    if (fields[0] == "insn") {
      if (fields.size() < 3) return err("truncated insn row");
      ZIPR_ASSIGN_OR_RETURN(std::uint64_t id, parse_u64(fields[1]));
      Instruction row;
      bool have_bytes = false;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        std::string_view f = fields[i];
        if (f == "verbatim") {
          row.verbatim = true;
        } else if (f.substr(0, 6) == "bytes=") {
          ZIPR_ASSIGN_OR_RETURN(row.orig_bytes, parse_hex(f.substr(6)));
          have_bytes = true;
        } else if (f.substr(0, 5) == "orig=") {
          ZIPR_ASSIGN_OR_RETURN(std::uint64_t v, parse_u64(f.substr(5)));
          row.orig_addr = v;
        } else if (f.substr(0, 3) == "ft=") {
          ZIPR_ASSIGN_OR_RETURN(std::uint64_t v, parse_u64(f.substr(3)));
          row.fallthrough = static_cast<InsnId>(v);
        } else if (f.substr(0, 4) == "tgt=") {
          ZIPR_ASSIGN_OR_RETURN(std::uint64_t v, parse_u64(f.substr(4)));
          row.target = static_cast<InsnId>(v);
        } else if (f.substr(0, 4) == "abs=") {
          ZIPR_ASSIGN_OR_RETURN(std::uint64_t v, parse_u64(f.substr(4)));
          row.abs_target = v;
        } else if (f.substr(0, 5) == "data=") {
          ZIPR_ASSIGN_OR_RETURN(std::uint64_t v, parse_u64(f.substr(5)));
          row.data_ref = v;
        } else if (f.substr(0, 5) == "func=") {
          ZIPR_ASSIGN_OR_RETURN(std::uint64_t v, parse_u64(f.substr(5)));
          row.function = static_cast<FuncId>(v);
        } else {
          return err("unknown field '" + std::string(f) + "'");
        }
      }
      if (!have_bytes) return err("insn row has no bytes");
      if (!row.verbatim) {
        auto decoded = isa::decode(row.orig_bytes);
        if (!decoded.ok()) return err("undecodable insn bytes");
        row.decoded = *decoded;
        if (!row.orig_addr) row.orig_bytes.clear();  // transform-created row
      }
      InsnId got = db.add_instruction(std::move(row));
      if (got != id) return err("non-sequential instruction id");
      continue;
    }

    if (fields[0] == "pin") {
      if (fields.size() != 3) return err("pin needs <addr> <id>");
      ZIPR_ASSIGN_OR_RETURN(std::uint64_t addr, parse_u64(fields[1]));
      ZIPR_ASSIGN_OR_RETURN(std::uint64_t id, parse_u64(fields[2]));
      ZIPR_TRY(db.pin(addr, static_cast<InsnId>(id)));
      continue;
    }

    if (fields[0] == "func") {
      if (fields.size() < 4) return err("truncated func row");
      ZIPR_ASSIGN_OR_RETURN(std::uint64_t id, parse_u64(fields[1]));
      Function f;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        std::string_view field = fields[i];
        if (field.substr(0, 6) == "entry=") {
          ZIPR_ASSIGN_OR_RETURN(std::uint64_t v, parse_u64(field.substr(6)));
          f.entry = static_cast<InsnId>(v);
        } else if (field.substr(0, 5) == "name=") {
          f.name = std::string(field.substr(5));
        } else if (field.substr(0, 8) == "members=") {
          for (auto m : split(field.substr(8), ',')) {
            ZIPR_ASSIGN_OR_RETURN(std::uint64_t v, parse_u64(m));
            f.members.push_back(static_cast<InsnId>(v));
          }
        } else {
          return err("unknown field '" + std::string(field) + "'");
        }
      }
      FuncId got = db.add_function(std::move(f));
      if (got != id) return err("non-sequential function id");
      continue;
    }

    return err("unknown record '" + std::string(fields[0]) + "'");
  }

  if (!saw_header) return Error::parse("empty irdb dump");
  ZIPR_TRY(db.validate());
  return db;
}

}  // namespace zipr::irdb
