// Text serialization of the IR database.
//
// The paper's IRDB is an SQL database precisely so that cooperating tools
// can exchange program state; this text format plays that role here: a
// dumped database can be inspected, diffed, stored, and reloaded by
// another process losslessly. The format is line-oriented:
//
//   zipr-irdb 1
//   insn <id> bytes=<hex> [orig=<addr>] [ft=<id>] [tgt=<id>]
//        [abs=<addr>] [data=<addr>] [func=<id>] [verbatim]
//   pin <addr> <insn-id>
//   func <id> entry=<insn-id> name=<name> members=<id,id,...>
//
// Instruction semantics are carried by the encoded bytes (round-tripped
// through isa::encode/decode), so the dump stays valid as long as the
// wire format does.
#pragma once

#include <string>

#include "irdb/ir.h"

namespace zipr::irdb {

/// Serialize the whole database. Deterministic: equal databases produce
/// equal text.
std::string serialize(const Database& db);

/// Parse a serialized database. Validates referential integrity.
Result<Database> deserialize(std::string_view text);

}  // namespace zipr::irdb
