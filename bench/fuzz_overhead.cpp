// Fuzzing-subsystem benchmark: what coverage instrumentation costs and
// what the persistent-mode executor buys, emitted as BENCH_fuzz.json so
// both are tracked PR over PR (tools/perf_guard.py --fuzz gates the
// regressions).
//
// Three measurements:
//   1. cov overhead across the 62-CB corpus -- file/exec/memory overhead
//      of "cov" and "cov-block" instrumentation next to the Null row, the
//      same protocol as the paper's Figs. 4-6;
//   2. fuzzing throughput + rediscovery -- the coverage-guided fuzzer runs
//      a fixed deterministic budget against each planted-bug CB from its
//      benign seed and must rediscover a crash that replays against the
//      uninstrumented original;
//   3. snapshot-restore vs full re-link -- per-run cost of the executor's
//      restore path against constructing a fresh VM per run (the paper-era
//      alternative), gated at >= 5x.
//
//   {
//     "bench": "fuzz_overhead",
//     "corpus_size": 62,
//     "configs": [
//       {"label": "zipr"|"zipr+cov"|"zipr+cov-block",
//        "mean_filesize_overhead": frac, "mean_exec_overhead": frac,
//        "mean_mem_overhead": frac, "functional": N,
//        -- instrumented configs additionally carry the selective-
//        -- instrumentation counters and their gate levels:
//        "max_exec_overhead": ceiling, "probes": N, "candidate_sites": N,
//        "prune_rate": frac, "min_prune_rate": floor,
//        "pruned_dominated": N, "collapsed_single_pred": N,
//        "split_critical_edges": N, "elided_flag_saves": N,
//        "elided_reg_saves": N}, ...
//     ],
//     "fuzz": {
//       "execs_per_sec": mean across targets,
//       "targets": [{"name", "execs", "execs_per_sec", "map_indices_hit",
//                    "unique_crashes", "rediscovered": bool}, ...],
//       "snapshot_restore_us_per_run": us, "full_relink_us_per_run": us,
//       "snapshot_speedup": ratio
//     }
//   }
//
// Usage: fuzz_overhead [--out=PATH]  (default: ./BENCH_fuzz.json)
#include <chrono>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "cgc/exploits.h"
#include "fuzz/fuzzer.h"

namespace {

using namespace zipr;
using namespace zipr::bench;

struct ConfigRow {
  std::string label;
  double file_ovh = 0;
  double exec_ovh = 0;
  double mem_ovh = 0;
  int functional = 0;
  transform::InstrumentationStats instr;  ///< summed across the corpus
};

ConfigRow measure_config(const Config& config) {
  auto metrics = evaluate(config, /*polls=*/2);
  ConfigRow row;
  row.label = config.label;
  row.functional = count_functional(metrics);
  row.file_ovh = cgc::mean_overhead(metrics, &cgc::CbMetrics::filesize_overhead);
  row.exec_ovh = cgc::mean_overhead(metrics, &cgc::CbMetrics::exec_overhead);
  row.mem_ovh = cgc::mean_overhead(metrics, &cgc::CbMetrics::mem_overhead);
  for (const auto& m : metrics) row.instr += m.instrumentation;
  return row;
}

struct TargetRow {
  std::string name;
  std::uint64_t execs = 0;
  double execs_per_sec = 0;
  std::size_t map_indices_hit = 0;
  std::size_t unique_crashes = 0;
  bool rediscovered = false;
};

zelf::Image instrument_cov(const zelf::Image& img, bool laf = false) {
  RewriteOptions opts;
  opts.transforms = laf ? std::vector<std::string>{"laf", "cov"} : std::vector<std::string>{"cov"};
  auto r = rewrite(img, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "cov instrumentation failed: %s\n", r.error().message.c_str());
    std::exit(1);
  }
  return std::move(r)->image;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Throughput floor for mean execs/sec: 4x the committed pre-decode-cache
// baseline (30762.7, BENCH_fuzz.json as of the parallel-batch PR). The
// predecoded-instruction VM core has to clear this on a quiet machine;
// perf_guard --fuzz re-checks fresh runs against the committed floor.
constexpr double kMinExecsPerSec = 4 * 30762.7;

// Execution-overhead ceilings for the instrumented configs, the headline
// numbers of the selective-instrumentation PR (dominator pruning +
// liveness-elided stubs brought edge mode from 180% to ~30% and block
// mode from 117% to ~15%). perf_guard --fuzz holds fresh runs to these.
constexpr double kMaxCovExecOverhead = 0.40;
constexpr double kMaxCovBlockExecOverhead = 0.30;

// Floor on the fraction of candidate probe sites the CFG analysis prunes
// or collapses; the measured corpus sits at ~29%. A regression below the
// floor means the dominator/derivability rules stopped firing.
constexpr double kMinPruneRate = 0.25;

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fuzz.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  // ---- 1. instrumentation overhead across the corpus ----
  std::printf("== Coverage-instrumentation overhead (62 CBs, vs original) ==\n\n");
  Config cov_cfg;
  cov_cfg.label = "zipr+cov";
  cov_cfg.rewrite.transforms = {"cov"};
  Config block_cfg;
  block_cfg.label = "zipr+cov-block";
  block_cfg.rewrite.transforms = {"cov-block"};

  std::vector<ConfigRow> configs;
  for (const auto& cfg : {baseline_config(), cov_cfg, block_cfg}) {
    configs.push_back(measure_config(cfg));
    const auto& r = configs.back();
    std::printf("  %-15s file %6.2f%%  exec %6.2f%%  mem %6.2f%%  functional %d/62\n",
                r.label.c_str(), r.file_ovh * 100, r.exec_ovh * 100, r.mem_ovh * 100,
                r.functional);
    const auto& in = r.instr;
    if (in.candidate_sites > 0)
      std::printf(
          "    %zu probes for %zu sites (%.0f%% pruned: %zu dominated + %zu collapsed; "
          "%zu edges split, %zu flag + %zu reg saves elided)\n",
          in.probes, in.candidate_sites, in.prune_rate() * 100, in.pruned_dominated,
          in.collapsed_single_pred, in.split_critical_edges, in.elided_flag_saves,
          in.elided_reg_saves);
  }

  // ---- 2. fuzzing throughput + planted-bug rediscovery ----
  std::printf("\n== Coverage-guided fuzzing (deterministic budget, benign seeds) ==\n\n");
  std::vector<TargetRow> targets;
  for (const auto& vuln : cgc::vulnerable_corpus()) {
    auto cov = instrument_cov(vuln.image, vuln.laf_gated);
    fuzz::FuzzOptions fopts;
    fopts.seed = 7;
    fopts.jobs = 4;
    fopts.max_execs = 6000;
    auto result = fuzz::fuzz(cov, {vuln.benign_input}, fopts);
    if (!result.ok()) {
      std::fprintf(stderr, "fuzz failed on %s: %s\n", vuln.name.c_str(),
                   result.error().message.c_str());
      return 1;
    }
    TargetRow row;
    row.name = vuln.name;
    row.execs = result->stats.execs;
    row.execs_per_sec = result->stats.execs_per_sec;
    row.map_indices_hit = result->stats.map_indices_hit;
    row.unique_crashes = result->crashes.size();
    for (const auto& crash : result->crashes) {
      auto replay = vm::run_program(vuln.image, crash.input);
      row.rediscovered |= !replay.exited && replay.fault != vm::Fault::kGasExhausted;
    }
    targets.push_back(row);
    std::printf("  %-12s %6llu execs  %8.0f/sec  map %4zu/%zu  %4zu unique crash(es)  %s\n",
                row.name.c_str(), static_cast<unsigned long long>(row.execs),
                row.execs_per_sec, row.map_indices_hit, fuzz::kMapSize, row.unique_crashes,
                row.rediscovered ? "REDISCOVERED" : "not rediscovered");
  }
  double mean_eps = 0;
  for (const auto& t : targets) mean_eps += t.execs_per_sec;
  mean_eps /= static_cast<double>(targets.size());

  // ---- 3. snapshot-restore vs full re-link per run ----
  std::printf("\n== Persistent mode: snapshot restore vs full VM re-link ==\n\n");
  auto vulns = cgc::vulnerable_corpus();
  auto cov = instrument_cov(vulns[0].image);
  const Bytes& seed_input = vulns[0].benign_input;

  fuzz::Executor warm(cov);
  (void)warm.execute(seed_input);  // first run: no reset, excluded
  constexpr int kPersistentRuns = 2000;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kPersistentRuns; ++i) {
    auto r = warm.execute(seed_input);
    if (!r.ok() || r->crashed) {
      std::fprintf(stderr, "persistent run misbehaved\n");
      return 1;
    }
  }
  const double persistent_us = seconds_since(t0) * 1e6 / kPersistentRuns;

  constexpr int kRelinkRuns = 200;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kRelinkRuns; ++i) {
    vm::Machine m(cov);
    m.set_input(seed_input);
    if (!m.run().exited) {
      std::fprintf(stderr, "re-link run misbehaved\n");
      return 1;
    }
  }
  const double relink_us = seconds_since(t0) * 1e6 / kRelinkRuns;
  const double speedup = persistent_us > 0 ? relink_us / persistent_us : 0;
  std::printf("  snapshot restore %8.1f us/run (%0.f resets/sec)\n", persistent_us,
              1e6 / persistent_us);
  std::printf("  full VM re-link  %8.1f us/run\n", relink_us);
  std::printf("  speedup          %8.1fx\n", speedup);

  // ---- emit JSON ----
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fuzz_overhead\",\n  \"corpus_size\": %zu,\n",
               cgc::cfe_corpus().size());
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& r = configs[i];
    std::fprintf(f,
                 "    {\"label\": \"%s\", \"mean_filesize_overhead\": %.6f,\n"
                 "     \"mean_exec_overhead\": %.6f, \"mean_mem_overhead\": %.6f,\n"
                 "     \"functional\": %d",
                 r.label.c_str(), r.file_ovh, r.exec_ovh, r.mem_ovh, r.functional);
    if (r.instr.candidate_sites > 0) {
      const double ceiling =
          r.label == "zipr+cov" ? kMaxCovExecOverhead : kMaxCovBlockExecOverhead;
      std::fprintf(f,
                   ",\n     \"max_exec_overhead\": %.2f, \"probes\": %zu,"
                   " \"candidate_sites\": %zu,\n"
                   "     \"prune_rate\": %.6f, \"min_prune_rate\": %.2f,\n"
                   "     \"pruned_dominated\": %zu, \"collapsed_single_pred\": %zu,\n"
                   "     \"split_critical_edges\": %zu, \"elided_flag_saves\": %zu,"
                   " \"elided_reg_saves\": %zu",
                   ceiling, r.instr.probes, r.instr.candidate_sites, r.instr.prune_rate(),
                   kMinPruneRate, r.instr.pruned_dominated, r.instr.collapsed_single_pred,
                   r.instr.split_critical_edges, r.instr.elided_flag_saves,
                   r.instr.elided_reg_saves);
    }
    std::fprintf(f, "}%s\n", i + 1 < configs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fuzz\": {\n    \"execs_per_sec\": %.1f,\n", mean_eps);
  std::fprintf(f, "    \"min_execs_per_sec\": %.1f,\n", kMinExecsPerSec);
  std::fprintf(f, "    \"targets\": [\n");
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto& t = targets[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"execs\": %llu, \"execs_per_sec\": %.1f,\n"
                 "       \"map_indices_hit\": %zu, \"unique_crashes\": %zu, "
                 "\"rediscovered\": %s}%s\n",
                 t.name.c_str(), static_cast<unsigned long long>(t.execs), t.execs_per_sec,
                 t.map_indices_hit, t.unique_crashes, t.rediscovered ? "true" : "false",
                 i + 1 < targets.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n    \"snapshot_restore_us_per_run\": %.2f,\n"
               "    \"full_relink_us_per_run\": %.2f,\n    \"snapshot_speedup\": %.2f\n  }\n}\n",
               persistent_us, relink_us, speedup);
  std::fclose(f);
  std::printf("\nwrote %s\n\n", out_path.c_str());

  // ---- qualitative gates ----
  ClaimChecker claims;
  for (const auto& r : configs)
    claims.check(r.functional == static_cast<int>(cgc::cfe_corpus().size()),
                 r.label + ": corpus stays fully functional");
  claims.check(configs[1].exec_ovh > configs[0].exec_ovh,
               "cov instrumentation costs measurable execution overhead over Null");
  claims.check(configs[2].exec_ovh <= configs[1].exec_ovh + 1e-9,
               "cov-block is no slower than edge mode");
  claims.check(configs[1].exec_ovh < kMaxCovExecOverhead,
               "selective edge instrumentation stays under 40% exec overhead");
  claims.check(configs[2].exec_ovh < kMaxCovBlockExecOverhead,
               "selective block instrumentation stays under 30% exec overhead");
  for (std::size_t i = 1; i < configs.size(); ++i)
    claims.check(configs[i].instr.prune_rate() >= kMinPruneRate,
                 configs[i].label + ": CFG analysis prunes >= 25% of candidate sites");
  for (const auto& t : targets)
    claims.check(t.rediscovered,
                 t.name + ": planted bug rediscovered within the deterministic budget");
  for (const auto& t : targets)
    claims.check(t.map_indices_hit > 0, t.name + ": coverage map is live during fuzzing");
  claims.check(speedup >= 5.0, "snapshot restore is >= 5x faster than full VM re-link");
  claims.check(mean_eps >= kMinExecsPerSec,
               "fuzzing throughput clears 4x the pre-decode-cache baseline");
  return claims.finish();
}
