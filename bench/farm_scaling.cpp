// Farm-scaling benchmark: the multi-shard campaign orchestrator at 1, 2,
// 4, and 8 shards over the same (image, seeds, campaign seed), emitted as
// BENCH_farm.json (tools/perf_guard.py --farm gates it).
//
// Three claims measured:
//   1. scaling -- aggregate execs/sec per shard count, with parallel
//      efficiency normalized by min(shards, hardware_concurrency): adding
//      lanes beyond the physical cores cannot be penalized, but up to the
//      core count the farm must keep at least the efficiency floor (0.6
//      at 8 shards) of perfectly-linear throughput;
//   2. reproducibility -- a digest over the merged corpus (inputs + maps)
//      and the deduped crash set (keys + winner origins, shard field
//      excluded) must be IDENTICAL at every shard count. This is the
//      whole point of the design; a digest split means scheduling leaked
//      into results and is gated as a hard failure, not a regression;
//   3. laf rediscovery -- the magic-gated CB (a 4-byte equality gate that
//      plain coverage cannot solve in budget) is rediscovered by the farm
//      when the laf compare-splitting transform is stacked under cov.
//
//   {
//     "bench": "farm_scaling",
//     "hardware_concurrency": N,
//     "identical_results": bool, "min_efficiency_8": 0.6,
//     "rows": [{"shards": N, "jobs": N, "execs": N, "epochs": N,
//               "execs_per_sec": X, "efficiency": F,
//               "corpus": N, "unique_crashes": N, "duplicate_crashes": N,
//               "digest": "hex"}, ...],
//     "laf": {"shards": N, "unique_crashes": N, "duplicate_crashes": N,
//             "rediscovered": bool}
//   }
//
// Usage: farm_scaling [--out=PATH]  (default: ./BENCH_farm.json)
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cgc/exploits.h"
#include "farm/farm.h"
#include "zipr/zipr.h"

namespace {

using namespace zipr;

const cgc::VulnCb& find_cb(const std::vector<cgc::VulnCb>& vulns, const char* name) {
  for (const auto& v : vulns)
    if (v.name == name) return v;
  std::fprintf(stderr, "planted-bug corpus lost %s\n", name);
  std::exit(1);
}

zelf::Image instrument(const zelf::Image& img, std::vector<std::string> transforms) {
  RewriteOptions opts;
  opts.transforms = std::move(transforms);
  auto r = rewrite(img, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "instrumentation failed: %s\n", r.error().message.c_str());
    std::exit(1);
  }
  return std::move(r)->image;
}

// FNV-1a over everything shard-count-independent in a campaign result:
// corpus inputs/maps/stages in admission order, then crash keys, winner
// inputs, and (epoch, stream, ordinal) origin tuples -- `shard` and the
// per-lane accounting are reporting-only and deliberately excluded.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void bytes(const Bytes& b) {
    for (Byte x : b) byte(x);
    byte(0xa5);  // length separator
  }
  void byte(std::uint8_t x) { h = (h ^ x) * 1099511628211ull; }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
};

std::uint64_t result_digest(const farm::FarmResult& res) {
  Digest d;
  for (const auto& e : res.corpus) {
    d.bytes(e.input);
    d.bytes(e.map);
    d.byte(static_cast<std::uint8_t>(e.stage));
  }
  for (const auto& c : res.crashes) {
    d.byte(static_cast<std::uint8_t>(c.crash.fault));
    d.u64(c.crash.fault_pc);
    d.u64(c.crash.path);
    d.bytes(c.crash.input);
    d.u64(c.origin.epoch);
    d.u64(c.origin.stream);
    d.u64(c.origin.ordinal);
    for (const auto& dup : c.duplicates) {
      d.u64(dup.epoch);
      d.u64(dup.stream);
      d.u64(dup.ordinal);
    }
  }
  return d.h;
}

struct Row {
  std::size_t shards = 0;
  int jobs = 0;
  std::uint64_t execs = 0;
  std::uint64_t epochs = 0;
  double eps = 0;
  double efficiency = 0;
  std::size_t corpus = 0;
  std::size_t unique_crashes = 0;
  std::uint64_t duplicate_crashes = 0;
  std::uint64_t digest = 0;
};

farm::FarmResult must_campaign(const zelf::Image& img, const Bytes& seed_input,
                               const farm::FarmOptions& opts) {
  auto res = farm::run_campaign(img, {seed_input}, opts);
  if (!res.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", res.error().message.c_str());
    std::exit(1);
  }
  return std::move(*res);
}

// Efficiency floor at 8 shards: the farm may not burn more than 40% of
// ideal aggregate throughput on orchestration (sync epochs, snapshots,
// the worker pool). Ideal = eps(1 shard) x min(shards, cores).
constexpr double kMinEfficiency8 = 0.6;

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_farm.json";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;

  const auto vulns = cgc::vulnerable_corpus();
  const auto& fptr = find_cb(vulns, "vuln_fptr");
  const auto cov = instrument(fptr.image, {"cov"});
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("== Farm scaling (campaign seed 7, %u core(s)) ==\n\n", hw);
  std::vector<Row> rows;
  double eps1 = 0;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    farm::FarmOptions opts;
    opts.seed = 7;
    opts.shards = shards;
    opts.jobs = static_cast<int>(shards);
    opts.max_execs = 20000;
    auto res = must_campaign(cov, fptr.benign_input, opts);

    Row row;
    row.shards = shards;
    row.jobs = opts.jobs;
    row.execs = res.stats.execs;
    row.epochs = res.stats.epochs;
    row.eps = res.stats.execs_per_sec;
    if (shards == 1) eps1 = row.eps;
    const double ideal = eps1 * static_cast<double>(std::min<unsigned>(shards, hw));
    row.efficiency = ideal > 0 ? row.eps / ideal : 0;
    row.corpus = res.corpus.size();
    row.unique_crashes = res.crashes.size();
    row.duplicate_crashes = res.stats.duplicate_crashes;
    row.digest = result_digest(res);
    rows.push_back(row);
    std::printf(
        "  %zu shard(s): %8llu execs / %2llu epochs  %9.0f/sec  eff %4.2f  corpus %zu  "
        "%zu crash(es) (+%llu dup)  digest %016llx\n",
        shards, static_cast<unsigned long long>(row.execs),
        static_cast<unsigned long long>(row.epochs), row.eps, row.efficiency, row.corpus,
        row.unique_crashes, static_cast<unsigned long long>(row.duplicate_crashes),
        static_cast<unsigned long long>(row.digest));
  }

  bool identical = true;
  for (const auto& row : rows) identical &= row.digest == rows.front().digest;
  std::printf("\n  merged results %s across shard counts\n",
              identical ? "IDENTICAL" : "DIVERGED");

  // ---- laf rediscovery through the farm ----
  const auto& magic = find_cb(vulns, "vuln_magic");
  const auto laf_cov = instrument(magic.image, {"laf", "cov"});
  farm::FarmOptions lopts;
  lopts.seed = 7;
  lopts.shards = 4;
  lopts.max_execs = 8000;
  auto laf_res = must_campaign(laf_cov, magic.benign_input, lopts);
  bool rediscovered = false;
  for (const auto& c : laf_res.crashes) {
    auto replay = vm::run_program(magic.image, c.crash.input);
    rediscovered |= !replay.exited && replay.fault != vm::Fault::kGasExhausted;
  }
  std::printf("  laf magic gate: %zu crash(es) (+%llu dup) at 4 shards -- %s\n",
              laf_res.crashes.size(),
              static_cast<unsigned long long>(laf_res.stats.duplicate_crashes),
              rediscovered ? "REDISCOVERED" : "not rediscovered");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"farm_scaling\",\n  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"identical_results\": %s,\n  \"min_efficiency_8\": %.2f,\n",
               identical ? "true" : "false", kMinEfficiency8);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"jobs\": %d, \"execs\": %llu, \"epochs\": %llu,\n"
                 "     \"execs_per_sec\": %.1f, \"efficiency\": %.4f,\n"
                 "     \"corpus\": %zu, \"unique_crashes\": %zu, \"duplicate_crashes\": %llu,\n"
                 "     \"digest\": \"%016llx\"}%s\n",
                 r.shards, r.jobs, static_cast<unsigned long long>(r.execs),
                 static_cast<unsigned long long>(r.epochs), r.eps, r.efficiency, r.corpus,
                 r.unique_crashes, static_cast<unsigned long long>(r.duplicate_crashes),
                 static_cast<unsigned long long>(r.digest), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"laf\": {\"shards\": %zu, \"unique_crashes\": %zu, "
               "\"duplicate_crashes\": %llu, \"rediscovered\": %s}\n}\n",
               static_cast<std::size_t>(lopts.shards), laf_res.crashes.size(),
               static_cast<unsigned long long>(laf_res.stats.duplicate_crashes),
               rediscovered ? "true" : "false");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", out_path.c_str());
  return identical && rediscovered ? 0 : 1;
}
