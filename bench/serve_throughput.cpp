// Serve-layer throughput benchmark: the 62-CB corpus through a ServeEngine
// cold, then warm (every request a content-addressed cache hit), then
// through the delta path (each CB resubmitted with a perturbed data byte).
//
// Emits machine-readable JSON (BENCH_serve.json; format documented in
// tools/run_bench.sh) recording cold/warm wall time, the warm speedup, the
// cache hit rate, chained output digests for cold and warm passes (they
// must match: a warm hit is byte-identical or it is a bug), and the delta
// experiment's hit/fallback counts with its own byte-identity check
// against direct cold rewrites.
//
// In-binary gates (exit 1 on violation):
//   * every warm request is a cache hit and its bytes equal the cold pass;
//   * warm throughput is at least kMinWarmSpeedup x cold;
//   * every delta-path response -- hit or cold fallback -- is
//     byte-identical to a direct rewrite of the perturbed input;
//   * a text-byte perturbation is NEVER served from the delta path.
//
//   serve_throughput [--out=BENCH_serve.json] [--repeats=N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cgc/generator.h"
#include "serve/engine.h"
#include "zelf/io.h"
#include "zipr/zipr.h"

namespace {

using namespace zipr;
using Clock = std::chrono::steady_clock;

constexpr double kMinWarmSpeedup = 10.0;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::uint64_t fnv1a(const Bytes& b, std::uint64_t h) {
  for (Byte c : b) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Flip the last byte of the last non-text segment with file bytes: a data
/// perturbation a CI resubmission would make (changed blob, version tag).
/// Whether the delta validator accepts it depends on the surrounding
/// bytes -- both outcomes must stay byte-correct, which is what we gate.
Bytes perturb_data(const Bytes& input) {
  auto img = zelf::read_image(input);
  if (!img.ok()) return {};
  zelf::Segment* victim = nullptr;
  for (auto& seg : img->segments)
    if (!seg.executable() && !seg.bytes.empty()) victim = &seg;
  if (victim == nullptr) return {};
  victim->bytes.back() ^= 0x01;
  return zelf::write_image(*img);
}

Bytes perturb_text(const Bytes& input) {
  auto img = zelf::read_image(input);
  if (!img.ok()) return {};
  for (auto& seg : img->segments)
    if (seg.executable() && !seg.bytes.empty()) {
      seg.bytes.back() ^= 0x01;
      return zelf::write_image(*img);
    }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--repeats=", 10) == 0) repeats = std::atoi(argv[i] + 10);
  }
  if (repeats < 1) repeats = 1;

  // Materialize the corpus as serialized images: the serve layer's unit of
  // exchange is bytes, exactly what a socket client would send.
  std::vector<Bytes> corpus;
  for (const auto& spec : cgc::cfe_corpus()) {
    auto cb = cgc::generate_cb(spec);
    if (!cb.ok()) {
      std::fprintf(stderr, "CB generation failed: %s\n", cb.error().message.c_str());
      return 1;
    }
    corpus.push_back(zelf::write_image(cb->image));
  }
  RewriteOptions opts;  // the CGC configuration: nearfit, no transforms

  std::printf("== serve throughput: %zu CBs, cold -> warm x%d -> delta ==\n", corpus.size(),
              repeats);

  serve::ServeOptions sopts;
  sopts.jobs = 1;  // handle() on this thread: pure engine cost, no pool noise
  serve::ServeEngine engine(sopts);

  // --- cold pass ---
  std::uint64_t cold_digest = 0xcbf29ce484222325ULL;
  Clock::time_point t0 = Clock::now();
  std::vector<Bytes> cold_outputs;
  cold_outputs.reserve(corpus.size());
  for (const Bytes& input : corpus) {
    auto r = engine.handle(input, opts);
    if (!r.ok() || r->source != serve::Source::kCold) {
      std::fprintf(stderr, "FAIL: cold pass request not cold-served\n");
      return 1;
    }
    cold_digest = fnv1a(r->output, cold_digest);
    cold_outputs.push_back(std::move(r->output));
  }
  double cold_ms = ms_since(t0);

  // --- warm passes (best of `repeats`): every request must hit ---
  std::uint64_t warm_digest = 0;
  double warm_ms = 0;
  bool warm_identical = true;
  for (int rep = 0; rep < repeats; ++rep) {
    std::uint64_t digest = 0xcbf29ce484222325ULL;
    t0 = Clock::now();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      auto r = engine.handle(corpus[i], opts);
      if (!r.ok() || r->source != serve::Source::kCacheHit) {
        std::fprintf(stderr, "FAIL: warm request %zu missed the cache\n", i);
        return 1;
      }
      warm_identical &= r->output == cold_outputs[i];
      digest = fnv1a(r->output, digest);
    }
    double ms = ms_since(t0);
    if (rep == 0 || ms < warm_ms) warm_ms = ms;
    warm_digest = digest;
  }
  double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  warm_identical &= warm_digest == cold_digest;

  auto after_warm = engine.stats();
  double hit_rate = static_cast<double>(after_warm.cache_hits) /
                    static_cast<double>(repeats * corpus.size());
  std::printf("  cold %8.1f ms   warm %8.3f ms   speedup %8.1fx   hit rate %.3f   "
              "digests %s\n",
              cold_ms, warm_ms, speedup, hit_rate,
              warm_identical ? "identical" : "DIVERGE");

  // --- delta experiment: perturb one data byte per CB and resubmit ---
  std::size_t delta_attempted = 0;
  std::size_t delta_hits = 0;
  std::size_t delta_cold = 0;
  bool delta_identical = true;
  t0 = Clock::now();
  for (const Bytes& input : corpus) {
    Bytes mutated = perturb_data(input);
    if (mutated.empty() || mutated == input) continue;
    ++delta_attempted;
    auto r = engine.handle(mutated, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: perturbed resubmission errored: %s\n",
                   r.error().message.c_str());
      return 1;
    }
    r->source == serve::Source::kDeltaHit ? ++delta_hits : ++delta_cold;

    // Byte-identity against a direct cold rewrite: the delta contract.
    auto img = zelf::read_image(mutated);
    auto direct = rewrite(*img, opts);
    if (!direct.ok() || r->output != zelf::write_image(direct->image)) {
      delta_identical = false;
      std::fprintf(stderr, "FAIL: delta-path response diverges from cold rewrite\n");
    }
  }
  double delta_ms = ms_since(t0);
  std::printf("  delta: %zu resubmissions -> %zu delta hit(s), %zu cold fallback(s) in "
              "%.1f ms; bytes %s\n",
              delta_attempted, delta_hits, delta_cold, delta_ms,
              delta_identical ? "identical to cold" : "DIVERGE");

  // --- text perturbation must NEVER ride the delta path ---
  bool text_never_delta = true;
  for (std::size_t i = 0; i < corpus.size(); i += 8) {
    Bytes mutated = perturb_text(corpus[i]);
    if (mutated.empty()) continue;
    auto r = engine.handle(mutated, opts);
    // A broken text byte may legitimately fail to rewrite; what it may
    // never do is come back stamped delta-hit.
    if (r.ok() && r->source == serve::Source::kDeltaHit) text_never_delta = false;
  }
  std::printf("  text perturbations served from delta path: %s\n",
              text_never_delta ? "none (correct)" : "YES (BUG)");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  auto stats = engine.stats();
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_throughput\",\n");
  std::fprintf(f, "  \"corpus_size\": %zu,\n", corpus.size());
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"cold_wall_ms\": %.3f,\n", cold_ms);
  std::fprintf(f, "  \"warm_wall_ms\": %.3f,\n", warm_ms);
  std::fprintf(f, "  \"warm_speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"min_warm_speedup\": %.1f,\n", kMinWarmSpeedup);
  std::fprintf(f, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
  std::fprintf(f, "  \"min_cache_hit_rate\": 1.0,\n");
  std::fprintf(f, "  \"outputs_identical\": %s,\n", warm_identical ? "true" : "false");
  std::fprintf(f, "  \"cold_digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(cold_digest));
  std::fprintf(f, "  \"warm_digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(warm_digest));
  std::fprintf(f, "  \"delta\": {\n");
  std::fprintf(f, "    \"attempted\": %zu,\n", delta_attempted);
  std::fprintf(f, "    \"hits\": %zu,\n", delta_hits);
  std::fprintf(f, "    \"min_hits\": 10,\n");
  std::fprintf(f, "    \"cold_fallbacks\": %zu,\n", delta_cold);
  std::fprintf(f, "    \"wall_ms\": %.3f,\n", delta_ms);
  std::fprintf(f, "    \"outputs_identical\": %s,\n", delta_identical ? "true" : "false");
  std::fprintf(f, "    \"text_never_delta\": %s\n", text_never_delta ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"engine\": {\"requests\": %llu, \"cold\": %llu, \"cache_hits\": %llu, "
               "\"delta_hits\": %llu, \"delta_fallbacks\": %llu, \"failures\": %llu,\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.cold),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.delta_hits),
               static_cast<unsigned long long>(stats.delta_fallbacks),
               static_cast<unsigned long long>(stats.failures));
  std::fprintf(f, "             \"cache_bytes\": %zu, \"cache_evictions\": %llu}\n",
               stats.cache.bytes, static_cast<unsigned long long>(stats.cache.evictions));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Correctness + throughput gates.
  int failures = 0;
  if (!warm_identical) {
    std::fprintf(stderr, "FAIL: warm outputs not byte-identical to cold\n");
    ++failures;
  }
  if (hit_rate < 1.0) {
    std::fprintf(stderr, "FAIL: cache hit rate %.4f < 1.0 on repeat submissions\n", hit_rate);
    ++failures;
  }
  if (speedup < kMinWarmSpeedup) {
    std::fprintf(stderr, "FAIL: warm speedup %.1fx below the %.0fx floor\n", speedup,
                 kMinWarmSpeedup);
    ++failures;
  }
  if (!delta_identical) ++failures;
  if (!text_never_delta) ++failures;
  return failures == 0 ? 0 : 1;
}
