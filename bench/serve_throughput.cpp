// Serve-layer throughput benchmark: the 62-CB corpus through a ServeEngine
// cold, then warm (every request a content-addressed cache hit), then
// through the delta path (each CB resubmitted with a perturbed data byte).
//
// Two experiments bracket the corpus run:
//
//   * cold-start: one large synthetic CB served cold on a fresh engine
//     (the daemon's first request), then served cold again repeatedly with
//     the cache cleared between requests -- so the pooled RewriteWorkspace
//     is the only thing that stays warm. The steady/first ratio is the
//     workspace win on repeated cold misses, and every response must be
//     byte-identical whether the workspace is fresh or recycled.
//   * persistence: a corpus slice served through an engine with a cache
//     file, then through a NEW engine on the same file (every request must
//     come back a byte-identical cache hit), then through a third engine
//     after a byte of the file is flipped (corrupt records must degrade to
//     cold fallbacks -- fewer hits, never wrong bytes).
//
// Emits machine-readable JSON (BENCH_serve.json; format documented in
// tools/run_bench.sh) recording cold/warm wall time, the warm speedup, the
// cache hit rate, chained output digests for cold and warm passes (they
// must match: a warm hit is byte-identical or it is a bug), the delta
// experiment's hit/fallback counts with its own byte-identity check
// against direct cold rewrites, the cold-start and persistence results,
// and the process peak RSS.
//
// The delta timed region contains ONLY engine.handle() calls: the inputs
// are perturbed before the clock starts and the byte-identity verification
// (a full direct rewrite per resubmission) runs after it stops, so
// delta.wall_ms is comparable against cold_wall_ms (tools/perf_guard.py
// --serve gates delta.wall_ms < cold_wall_ms).
//
// In-binary gates (exit 1 on violation):
//   * every warm request is a cache hit and its bytes equal the cold pass;
//   * warm throughput is at least kMinWarmSpeedup x cold;
//   * every delta-path response -- hit or cold fallback -- is
//     byte-identical to a direct rewrite of the perturbed input;
//   * a text-byte perturbation is NEVER served from the delta path;
//   * steady-state cold is at least kMinSteadySpeedup x faster than the
//     first request, with byte-identical output (fresh vs recycled
//     workspace, and vs a direct no-workspace rewrite);
//   * a restarted engine answers every persisted request as a
//     byte-identical cache hit; after corruption it falls back to cold on
//     the damaged records and still returns byte-identical output.
//
//   serve_throughput [--out=BENCH_serve.json] [--repeats=N]
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "cgc/generator.h"
#include "serve/engine.h"
#include "zelf/io.h"
#include "zipr/zipr.h"

namespace {

using namespace zipr;
using Clock = std::chrono::steady_clock;

constexpr double kMinWarmSpeedup = 10.0;
constexpr double kMinSteadySpeedup = 1.5;
constexpr int kColdStartScale = 10;  // ~1 MB synthetic text
constexpr int kSteadyReps = 5;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

std::uint64_t fnv1a(const Bytes& b, std::uint64_t h) {
  for (Byte c : b) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The synthetic large binary from the micro suite's BM_RewriteLarge sweep:
/// enough text that the pipeline's transient tables dominate the request,
/// which is the regime the workspace pool exists for.
Result<zelf::Image> make_large_image(int scale) {
  cgc::CbSpec spec;
  spec.name = "synthetic-large-x" + std::to_string(scale);
  spec.seed = 99;
  spec.handlers = 24;
  spec.dispatch = cgc::DispatchMode::kFptrTable;
  spec.filler_funcs = 48 * scale;
  spec.filler_ops = 24;
  spec.straightline = 600 * scale;
  spec.scratch_pages = 4;
  spec.data_in_text = true;
  spec.payload_max = 12;
  std::vector<int> payload_len;
  auto src = cgc::generate_cb_source(spec, &payload_len);
  if (!src.ok()) return src.error();
  // Widened segment layout: the rewritten text needs headroom beyond the
  // default 2 MB text/rodata gap at this scale.
  assembler::Options aopts;
  aopts.emit_symbols = false;
  aopts.rodata_base = 0x4000000;
  aopts.data_base = 0x4100000;
  aopts.bss_base = 0x4180000;
  return assembler::assemble(*src, aopts);
}

/// Flip the last byte of the last non-text segment with file bytes: a data
/// perturbation a CI resubmission would make (changed blob, version tag).
/// Whether the delta validator accepts it depends on the surrounding
/// bytes -- both outcomes must stay byte-correct, which is what we gate.
Bytes perturb_data(const Bytes& input) {
  auto img = zelf::read_image(input);
  if (!img.ok()) return {};
  zelf::Segment* victim = nullptr;
  for (auto& seg : img->segments)
    if (!seg.executable() && !seg.bytes.empty()) victim = &seg;
  if (victim == nullptr) return {};
  victim->bytes.back() ^= 0x01;
  return zelf::write_image(*img);
}

Bytes perturb_text(const Bytes& input) {
  auto img = zelf::read_image(input);
  if (!img.ok()) return {};
  for (auto& seg : img->segments)
    if (seg.executable() && !seg.bytes.empty()) {
      seg.bytes.back() ^= 0x01;
      return zelf::write_image(*img);
    }
  return {};
}

std::size_t peak_rss_kb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::size_t>(ru.ru_maxrss);  // KB on Linux
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--repeats=", 10) == 0) repeats = std::atoi(argv[i] + 10);
  }
  if (repeats < 1) repeats = 1;

  RewriteOptions opts;  // the CGC configuration: nearfit, no transforms

  serve::ServeOptions sopts;
  sopts.jobs = 1;  // handle() on this thread: pure engine cost, no pool noise

  // --- cold-start: first request vs steady-state cold on a warm engine ---
  //
  // Runs FIRST, before the corpus has touched the heap: the first handle()
  // is the true first request of a freshly started daemon (every transient
  // table faulted in from nothing). The steady passes clear the artifact
  // cache between requests so each one runs the full cold pipeline -- but
  // through the engine's recycled workspace.
  auto big = make_large_image(kColdStartScale);
  if (!big.ok()) {
    std::fprintf(stderr, "large CB generation failed: %s\n", big.error().message.c_str());
    return 1;
  }
  Bytes big_input = zelf::write_image(*big);
  std::size_t big_text = big->text().bytes.size();

  double first_ms = 0;
  double steady_ms = 0;
  bool cold_start_identical = true;
  {
    serve::ServeEngine cold_engine(sopts);
    Clock::time_point t0 = Clock::now();
    auto first = cold_engine.handle(big_input, opts);
    first_ms = ms_since(t0);
    if (!first.ok() || first->source != serve::Source::kCold) {
      std::fprintf(stderr, "FAIL: cold-start first request not cold-served\n");
      return 1;
    }
    Bytes first_output = std::move(first->output);

    for (int rep = 0; rep < kSteadyReps; ++rep) {
      cold_engine.clear_cache();
      t0 = Clock::now();
      auto r = cold_engine.handle(big_input, opts);
      double ms = ms_since(t0);
      if (!r.ok() || r->source != serve::Source::kCold) {
        std::fprintf(stderr, "FAIL: cold-start steady request not cold-served\n");
        return 1;
      }
      if (rep == 0 || ms < steady_ms) steady_ms = ms;
      cold_start_identical &= r->output == first_output;
    }

    // Fresh vs recycled must also agree with a direct rewrite that never
    // saw a workspace at all.
    auto direct = rewrite(*big, opts);
    cold_start_identical &=
        direct.ok() && zelf::write_image(direct->image) == first_output;
  }
  double steady_speedup = steady_ms > 0 ? first_ms / steady_ms : 0.0;
  std::printf("== cold start: x%d synthetic (%zu B text) ==\n", kColdStartScale, big_text);
  std::printf("  first %8.1f ms   steady %8.1f ms   speedup %6.2fx   bytes %s\n",
              first_ms, steady_ms, steady_speedup,
              cold_start_identical ? "identical" : "DIVERGE");

  // Materialize the corpus as serialized images: the serve layer's unit of
  // exchange is bytes, exactly what a socket client would send.
  std::vector<Bytes> corpus;
  for (const auto& spec : cgc::cfe_corpus()) {
    auto cb = cgc::generate_cb(spec);
    if (!cb.ok()) {
      std::fprintf(stderr, "CB generation failed: %s\n", cb.error().message.c_str());
      return 1;
    }
    corpus.push_back(zelf::write_image(cb->image));
  }

  std::printf("== serve throughput: %zu CBs, cold -> warm x%d -> delta ==\n", corpus.size(),
              repeats);

  serve::ServeEngine engine(sopts);

  // --- cold pass ---
  std::uint64_t cold_digest = 0xcbf29ce484222325ULL;
  Clock::time_point t0 = Clock::now();
  std::vector<Bytes> cold_outputs;
  cold_outputs.reserve(corpus.size());
  for (const Bytes& input : corpus) {
    auto r = engine.handle(input, opts);
    if (!r.ok() || r->source != serve::Source::kCold) {
      std::fprintf(stderr, "FAIL: cold pass request not cold-served\n");
      return 1;
    }
    cold_digest = fnv1a(r->output, cold_digest);
    cold_outputs.push_back(std::move(r->output));
  }
  double cold_ms = ms_since(t0);

  // --- warm passes (best of `repeats`): every request must hit ---
  std::uint64_t warm_digest = 0;
  double warm_ms = 0;
  bool warm_identical = true;
  for (int rep = 0; rep < repeats; ++rep) {
    std::uint64_t digest = 0xcbf29ce484222325ULL;
    t0 = Clock::now();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      auto r = engine.handle(corpus[i], opts);
      if (!r.ok() || r->source != serve::Source::kCacheHit) {
        std::fprintf(stderr, "FAIL: warm request %zu missed the cache\n", i);
        return 1;
      }
      warm_identical &= r->output == cold_outputs[i];
      digest = fnv1a(r->output, digest);
    }
    double ms = ms_since(t0);
    if (rep == 0 || ms < warm_ms) warm_ms = ms;
    warm_digest = digest;
  }
  double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  warm_identical &= warm_digest == cold_digest;

  auto after_warm = engine.stats();
  double hit_rate = static_cast<double>(after_warm.cache_hits) /
                    static_cast<double>(repeats * corpus.size());
  std::printf("  cold %8.1f ms   warm %8.3f ms   speedup %8.1fx   hit rate %.3f   "
              "digests %s\n",
              cold_ms, warm_ms, speedup, hit_rate,
              warm_identical ? "identical" : "DIVERGE");

  // --- delta experiment: perturb one data byte per CB and resubmit ---
  //
  // Perturbation happens BEFORE the clock starts and verification AFTER it
  // stops: the timed region is engine.handle() only, so delta_ms measures
  // what the serve layer charges for a resubmission, nothing else.
  std::vector<Bytes> mutated_inputs;
  mutated_inputs.reserve(corpus.size());
  for (const Bytes& input : corpus) {
    Bytes mutated = perturb_data(input);
    if (mutated.empty() || mutated == input) continue;
    mutated_inputs.push_back(std::move(mutated));
  }
  std::vector<serve::ServeResponse> delta_responses;
  delta_responses.reserve(mutated_inputs.size());
  t0 = Clock::now();
  for (const Bytes& mutated : mutated_inputs) {
    auto r = engine.handle(mutated, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: perturbed resubmission errored: %s\n",
                   r.error().message.c_str());
      return 1;
    }
    delta_responses.push_back(std::move(*r));
  }
  double delta_ms = ms_since(t0);

  // Byte-identity against a direct cold rewrite: the delta contract.
  std::size_t delta_attempted = mutated_inputs.size();
  std::size_t delta_hits = 0;
  std::size_t delta_cold = 0;
  bool delta_identical = true;
  for (std::size_t i = 0; i < mutated_inputs.size(); ++i) {
    const serve::ServeResponse& r = delta_responses[i];
    r.source == serve::Source::kDeltaHit ? ++delta_hits : ++delta_cold;
    auto img = zelf::read_image(mutated_inputs[i]);
    auto direct = rewrite(*img, opts);
    if (!direct.ok() || r.output != zelf::write_image(direct->image)) {
      delta_identical = false;
      std::fprintf(stderr, "FAIL: delta-path response diverges from cold rewrite\n");
    }
  }
  std::printf("  delta: %zu resubmissions -> %zu delta hit(s), %zu cold fallback(s) in "
              "%.1f ms; bytes %s\n",
              delta_attempted, delta_hits, delta_cold, delta_ms,
              delta_identical ? "identical to cold" : "DIVERGE");

  // --- text perturbation must NEVER ride the delta path ---
  bool text_never_delta = true;
  for (std::size_t i = 0; i < corpus.size(); i += 8) {
    Bytes mutated = perturb_text(corpus[i]);
    if (mutated.empty()) continue;
    auto r = engine.handle(mutated, opts);
    // A broken text byte may legitimately fail to rewrite; what it may
    // never do is come back stamped delta-hit.
    if (r.ok() && r->source == serve::Source::kDeltaHit) text_never_delta = false;
  }
  std::printf("  text perturbations served from delta path: %s\n",
              text_never_delta ? "none (correct)" : "YES (BUG)");

  // --- persistence: cache file survives an engine restart ---
  //
  // A corpus slice goes through engine A (writes the cache file), then a
  // NEW engine B on the same file: every request must come back a cache
  // hit with the cold pass's exact bytes. Then a byte in the middle of the
  // file is flipped and engine C attaches: the damaged records (and the
  // tail behind them, since replay stops at the first bad record) degrade
  // to cold fallbacks -- a smaller cache, never a wrong answer.
  std::string cache_path = out_path + ".cache";
  std::remove(cache_path.c_str());
  std::vector<std::size_t> slice;
  for (std::size_t i = 0; i < corpus.size(); i += 4) slice.push_back(i);

  serve::ServeOptions popts = sopts;
  popts.cache_file = cache_path;
  std::size_t restart_hits = 0;
  bool restart_identical = true;
  std::size_t corrupt_cold = 0;
  bool corrupt_identical = true;
  {
    serve::ServeEngine a(popts);
    for (std::size_t i : slice) {
      auto r = a.handle(corpus[i], opts);
      if (!r.ok() || r->source != serve::Source::kCold) {
        std::fprintf(stderr, "FAIL: persistence warm-up request not cold-served\n");
        return 1;
      }
      restart_identical &= r->output == cold_outputs[i];
    }
  }
  {
    serve::ServeEngine b(popts);  // fresh engine, same file
    for (std::size_t i : slice) {
      auto r = b.handle(corpus[i], opts);
      if (!r.ok()) {
        std::fprintf(stderr, "FAIL: post-restart request errored\n");
        return 1;
      }
      if (r->source == serve::Source::kCacheHit) ++restart_hits;
      restart_identical &= r->output == cold_outputs[i];
    }
  }
  // Flip one byte in the middle of the cache file.
  if (std::FILE* cf = std::fopen(cache_path.c_str(), "r+b")) {
    std::fseek(cf, 0, SEEK_END);
    long size = std::ftell(cf);
    std::fseek(cf, size / 2, SEEK_SET);
    int c = std::fgetc(cf);
    std::fseek(cf, size / 2, SEEK_SET);
    std::fputc(c ^ 0x01, cf);
    std::fclose(cf);
  } else {
    std::fprintf(stderr, "FAIL: cache file %s was never written\n", cache_path.c_str());
    return 1;
  }
  {
    serve::ServeEngine c(popts);  // attaches the corrupted file
    for (std::size_t i : slice) {
      auto r = c.handle(corpus[i], opts);
      if (!r.ok()) {
        std::fprintf(stderr, "FAIL: post-corruption request errored\n");
        return 1;
      }
      if (r->source == serve::Source::kCold) ++corrupt_cold;
      corrupt_identical &= r->output == cold_outputs[i];
    }
  }
  std::remove(cache_path.c_str());
  std::printf("  persist: %zu/%zu restart hit(s), %zu cold fallback(s) after corruption; "
              "bytes %s\n",
              restart_hits, slice.size(), corrupt_cold,
              restart_identical && corrupt_identical ? "identical" : "DIVERGE");

  std::size_t rss_kb = peak_rss_kb();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  auto stats = engine.stats();
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_throughput\",\n");
  std::fprintf(f, "  \"corpus_size\": %zu,\n", corpus.size());
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"cold_wall_ms\": %.3f,\n", cold_ms);
  std::fprintf(f, "  \"warm_wall_ms\": %.3f,\n", warm_ms);
  std::fprintf(f, "  \"warm_speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"min_warm_speedup\": %.1f,\n", kMinWarmSpeedup);
  std::fprintf(f, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
  std::fprintf(f, "  \"min_cache_hit_rate\": 1.0,\n");
  std::fprintf(f, "  \"outputs_identical\": %s,\n", warm_identical ? "true" : "false");
  std::fprintf(f, "  \"cold_digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(cold_digest));
  std::fprintf(f, "  \"warm_digest\": \"%016llx\",\n",
               static_cast<unsigned long long>(warm_digest));
  std::fprintf(f, "  \"cold_start\": {\n");
  std::fprintf(f, "    \"scale\": %d,\n", kColdStartScale);
  std::fprintf(f, "    \"text_bytes\": %zu,\n", big_text);
  std::fprintf(f, "    \"first_request_wall_ms\": %.3f,\n", first_ms);
  std::fprintf(f, "    \"steady_wall_ms\": %.3f,\n", steady_ms);
  std::fprintf(f, "    \"steady_speedup\": %.3f,\n", steady_speedup);
  std::fprintf(f, "    \"min_steady_speedup\": %.2f,\n", kMinSteadySpeedup);
  std::fprintf(f, "    \"outputs_identical\": %s\n",
               cold_start_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"delta\": {\n");
  std::fprintf(f, "    \"attempted\": %zu,\n", delta_attempted);
  std::fprintf(f, "    \"hits\": %zu,\n", delta_hits);
  std::fprintf(f, "    \"min_hits\": 10,\n");
  std::fprintf(f, "    \"cold_fallbacks\": %zu,\n", delta_cold);
  std::fprintf(f, "    \"wall_ms\": %.3f,\n", delta_ms);
  std::fprintf(f, "    \"outputs_identical\": %s,\n", delta_identical ? "true" : "false");
  std::fprintf(f, "    \"text_never_delta\": %s\n", text_never_delta ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"persist\": {\n");
  std::fprintf(f, "    \"requests\": %zu,\n", slice.size());
  std::fprintf(f, "    \"restart_hits\": %zu,\n", restart_hits);
  std::fprintf(f, "    \"restart_identical\": %s,\n", restart_identical ? "true" : "false");
  std::fprintf(f, "    \"corrupt_cold_fallbacks\": %zu,\n", corrupt_cold);
  std::fprintf(f, "    \"corrupt_fallback_identical\": %s\n",
               corrupt_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"peak_rss_kb\": %zu,\n", rss_kb);
  std::fprintf(f, "  \"max_peak_rss_kb\": %d,\n", 256 * 1024);
  std::fprintf(f, "  \"engine\": {\"requests\": %llu, \"cold\": %llu, \"cache_hits\": %llu, "
               "\"delta_hits\": %llu, \"delta_fallbacks\": %llu, \"failures\": %llu,\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.cold),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.delta_hits),
               static_cast<unsigned long long>(stats.delta_fallbacks),
               static_cast<unsigned long long>(stats.failures));
  std::fprintf(f, "             \"cache_bytes\": %zu, \"cache_evictions\": %llu}\n",
               stats.cache.bytes, static_cast<unsigned long long>(stats.cache.evictions));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (peak RSS %zu KB)\n", out_path.c_str(), rss_kb);

  // Correctness + throughput gates.
  int failures = 0;
  if (!warm_identical) {
    std::fprintf(stderr, "FAIL: warm outputs not byte-identical to cold\n");
    ++failures;
  }
  if (hit_rate < 1.0) {
    std::fprintf(stderr, "FAIL: cache hit rate %.4f < 1.0 on repeat submissions\n", hit_rate);
    ++failures;
  }
  if (speedup < kMinWarmSpeedup) {
    std::fprintf(stderr, "FAIL: warm speedup %.1fx below the %.0fx floor\n", speedup,
                 kMinWarmSpeedup);
    ++failures;
  }
  if (!delta_identical) ++failures;
  if (!text_never_delta) ++failures;
  if (!cold_start_identical) {
    std::fprintf(stderr, "FAIL: cold-start outputs diverge (fresh vs recycled workspace)\n");
    ++failures;
  }
  if (steady_speedup < kMinSteadySpeedup) {
    std::fprintf(stderr, "FAIL: steady-state cold speedup %.2fx below the %.1fx floor\n",
                 steady_speedup, kMinSteadySpeedup);
    ++failures;
  }
  if (restart_hits != slice.size()) {
    std::fprintf(stderr, "FAIL: only %zu/%zu requests hit after engine restart\n",
                 restart_hits, slice.size());
    ++failures;
  }
  if (!restart_identical) {
    std::fprintf(stderr, "FAIL: restarted-engine responses not byte-identical\n");
    ++failures;
  }
  if (corrupt_cold == 0) {
    std::fprintf(stderr, "FAIL: corrupted cache file produced no cold fallbacks "
                 "(corruption never reached the replay path)\n");
    ++failures;
  }
  if (!corrupt_identical) {
    std::fprintf(stderr, "FAIL: post-corruption responses not byte-identical\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
