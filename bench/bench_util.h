// Shared helpers for the figure-reproduction benchmarks: corpus
// evaluation under named configurations and paper-style text rendering
// (histograms, bar rows, PASS/FAIL claim checks).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cgc/metrics.h"

namespace zipr::bench {

struct Config {
  std::string label;           // "zipr" (Null baseline) or "zipr+cfi"
  RewriteOptions rewrite;
};

inline Config baseline_config() {
  Config c;
  c.label = "zipr";
  return c;
}

inline Config cfi_config() {
  Config c;
  c.label = "zipr+cfi";
  c.rewrite.transforms = {"cfi"};
  return c;
}

/// Evaluate the 62-CB corpus under one configuration. The corpus fans out
/// across a batch worker pool (jobs <= 0 = hardware concurrency, 1 =
/// serial); results are deterministic and order-preserving either way, so
/// every figure is identical whichever pool size ran it.
inline std::vector<cgc::CbMetrics> evaluate(const Config& config, int polls = 8, int jobs = 0) {
  cgc::EvalOptions opts;
  opts.rewrite = config.rewrite;
  opts.polls = polls;
  opts.jobs = jobs;
  auto r = cgc::evaluate_corpus(cgc::cfe_corpus(), opts);
  if (!r.ok()) {
    std::fprintf(stderr, "corpus evaluation failed: %s\n", r.error().message.c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

/// Render one histogram row: label, count, and a proportional bar.
inline void print_histogram(const char* title, const cgc::Histogram& h, std::size_t total) {
  std::printf("  %s\n", title);
  for (int b = 0; b < cgc::kHistogramBins; ++b) {
    std::printf("    %-7s %3d  ", cgc::kHistogramLabels[b], h.counts[b]);
    int bar = total == 0 ? 0 : static_cast<int>(60.0 * h.counts[b] / static_cast<double>(total));
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
}

inline cgc::Histogram histogram_of(const std::vector<cgc::CbMetrics>& ms,
                                   double cgc::CbMetrics::*field) {
  cgc::Histogram h;
  for (const auto& m : ms) h.add(m.*field);
  return h;
}

inline int count_functional(const std::vector<cgc::CbMetrics>& ms) {
  int n = 0;
  for (const auto& m : ms) n += m.functional ? 1 : 0;
  return n;
}

struct ClaimChecker {
  int failed = 0;
  void check(bool ok, const std::string& claim) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
    if (!ok) ++failed;
  }
  int finish() const {
    std::printf("\n%s\n", failed == 0 ? "All paper-shape claims hold."
                                      : "Some paper-shape claims FAILED.");
    return failed == 0 ? 0 : 1;
  }
};

}  // namespace zipr::bench
