// Figure 6 reproduction: histogram of memory (MaxRSS) overhead across the
// 62-CB corpus for the Zipr baseline and Zipr+CFI, measured in pages
// touched by the VM under the pollers' workload.
//
// Paper shape: the majority of CBs stay within 5 % for both
// configurations; CFI adds memory pressure; ONE pathological CB exceeds
// 50 % under CFI -- its pinned addresses fragment the address space and
// its large dollops spill into the overflow area (see cgc::cfe_corpus()).
// Pin-site dollop coalescing keeps those case bodies at their pinned
// addresses, so the outlier mechanism is demonstrated with coalescing
// disabled and the rescue with it enabled.
#include "bench_util.h"

int main() {
  using namespace zipr;
  using namespace zipr::bench;

  std::printf("== Figure 6: Histogram of Memory Overhead (62 CBs) ==\n\n");

  auto base = evaluate(baseline_config());
  auto cfi = evaluate(cfi_config());
  // Ablation: the same CFI configuration with dollop coalescing disabled.
  // Pin-site coalescing keeps the pathological CB's case bodies at their
  // pinned addresses; with it off, every executed case touches a pin page
  // AND an overflow page -- the paper's outlier mechanism.
  Config cfi_nc = cfi_config();
  cfi_nc.label = "zipr+cfi (no coalescing)";
  cfi_nc.rewrite.coalesce = false;
  auto cfi_off = evaluate(cfi_nc);

  auto hb = histogram_of(base, &cgc::CbMetrics::mem_overhead);
  auto hc = histogram_of(cfi, &cgc::CbMetrics::mem_overhead);
  print_histogram("zipr (Null transform)", hb, base.size());
  print_histogram("zipr + CFI", hc, cfi.size());

  double mb = cgc::mean_overhead(base, &cgc::CbMetrics::mem_overhead);
  double mc = cgc::mean_overhead(cfi, &cgc::CbMetrics::mem_overhead);
  std::printf("\n  mean memory overhead: zipr %.2f%%   zipr+cfi %.2f%%\n", mb * 100, mc * 100);

  // The pathological CB is the last corpus entry.
  const auto& outlier_cfi = cfi.back();
  const auto& outlier_off = cfi_off.back();
  std::printf(
      "  pathological CB (%s): baseline %.1f%%, CFI %.1f%%, "
      "CFI without coalescing %.1f%% memory overhead\n\n",
      outlier_cfi.name.c_str(), base.back().mem_overhead * 100,
      outlier_cfi.mem_overhead * 100, outlier_off.mem_overhead * 100);

  int base_within5 = hb.counts[0] + hb.counts[1];
  int cfi_within5 = hc.counts[0] + hc.counts[1];

  ClaimChecker claims;
  claims.check(count_functional(base) == 62 && count_functional(cfi) == 62,
               "all CBs remain functional under both configurations");
  claims.check(base_within5 >= 32, "baseline: majority of CBs within 5%");
  claims.check(cfi_within5 <= base_within5, "CFI adds memory pressure vs baseline");
  claims.check(outlier_off.mem_overhead > 0.50,
               "the pathological CB exceeds 50% memory overhead under CFI "
               "when coalescing is disabled (the paper's outlier mechanism)");
  claims.check(outlier_cfi.mem_overhead < outlier_off.mem_overhead,
               "pin-site coalescing reduces the pathological CB's memory overhead");
  claims.check(mc >= mb, "CFI mean memory overhead >= baseline");
  return claims.finish();
}
