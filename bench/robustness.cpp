// Section IV-A reproduction: robustness on large libraries.
//
// The paper Null-rewrites libc (1.6 MB, < 6 min), OpenJDK's libjvm (12 MB,
// < 58 min) and Apache (624 KB, 1:11) and re-runs their unit-test suites,
// observing identical results. This bench does the same with the
// ratio-preserving generated workloads: reports binary size, rewrite wall
// time, and the unit-suite pass rate before/after rewriting.
//
// Paper shape: every suite passes identically after the Null rewrite, and
// rewrite time grows with binary size (libjvm-like is the slowest).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "cgc/workload.h"
#include "zelf/io.h"

int main() {
  using namespace zipr;
  using Clock = std::chrono::steady_clock;

  std::printf("== Section IV-A: Robustness (Null transform on large libraries) ==\n\n");
  std::printf("  %-14s %10s %10s %12s %10s %10s\n", "library", "funcs", "file", "rewrite-ms",
              "tests", "passed");

  struct Row {
    std::string name;
    std::size_t file = 0;
    double ms = 0;
    cgc::SuiteResult suite;
  };
  std::vector<Row> rows;

  for (const auto& spec :
       {cgc::apache_like_spec(), cgc::libc_like_spec(), cgc::libjvm_like_spec()}) {
    auto w = cgc::make_workload(spec);
    if (!w.ok()) {
      std::fprintf(stderr, "workload %s failed: %s\n", spec.name.c_str(),
                   w.error().message.c_str());
      return 1;
    }

    auto t0 = Clock::now();
    auto rewritten = rewrite(w->image, {});
    auto t1 = Clock::now();
    if (!rewritten.ok()) {
      std::fprintf(stderr, "rewrite of %s failed: %s\n", spec.name.c_str(),
                   rewritten.error().message.c_str());
      return 1;
    }

    Row row;
    row.name = spec.name;
    row.file = zelf::write_image(w->image).size();
    row.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    row.suite = cgc::run_suite(*w, rewritten->image);
    rows.push_back(row);

    std::printf("  %-14s %10d %9zuB %12.1f %10d %10d\n", row.name.c_str(), spec.functions,
                row.file, row.ms, row.suite.total, row.suite.passed);
  }
  // The paper's Apache configuration additionally splits the code across a
  // main binary and shared libraries, rewrites EVERY image independently,
  // and tests the transformed set inter-operating.
  auto shared_spec = cgc::apache_like_spec();
  auto shared = cgc::make_shared_workload(shared_spec, 2);
  cgc::SuiteResult shared_suite;
  double shared_ms = 0;
  if (shared.ok()) {
    auto t0 = Clock::now();
    std::vector<zelf::Image> replacement;
    auto new_main = rewrite(shared->main_image, {});
    bool ok = new_main.ok();
    if (ok) replacement.push_back(std::move(new_main)->image);
    for (const auto& lib : shared->libraries) {
      auto new_lib = rewrite(lib, {});
      ok &= new_lib.ok();
      if (new_lib.ok()) replacement.push_back(std::move(new_lib)->image);
    }
    shared_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (ok) {
      auto suite = cgc::run_shared_suite(*shared, std::move(replacement));
      if (suite.ok()) shared_suite = *suite;
    }
    std::printf("  %-14s %10d %10s %12.1f %10d %10d   (main + 2 shared libs,\n",
                "apache-shared", shared_spec.functions, "3 images", shared_ms,
                shared_suite.total, shared_suite.passed);
    std::printf("  %62s all rewritten independently)\n", "");
  }
  std::printf("\n");

  bench::ClaimChecker claims;
  for (const auto& row : rows)
    claims.check(row.suite.all_passed(),
                 row.name + ": rewritten library passes its entire unit suite");
  claims.check(rows[2].file > rows[1].file && rows[1].file > rows[0].file,
               "size ordering matches the paper (apache < libc < libjvm)");
  claims.check(rows[2].ms >= rows[1].ms,
               "rewrite time grows with size (libjvm-like slowest)");
  claims.check(shared_suite.total > 0 && shared_suite.all_passed(),
               "independently rewritten main + shared libraries inter-operate");
  return claims.finish();
}
