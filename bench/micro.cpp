// Microbenchmarks (google-benchmark): throughput of the pieces the
// rewriting pipeline leans on -- instruction decode/encode, interval-set
// operations, VM execution, and the end-to-end rewrite itself.
#include <benchmark/benchmark.h>

#include "asm/assembler.h"
#include "cgc/generator.h"
#include "isa/insn.h"
#include "support/interval.h"
#include "support/rng.h"
#include "vm/machine.h"
#include "zipr/zipr.h"

namespace {

using namespace zipr;

// A buffer of valid, varied instruction encodings.
Bytes make_insn_stream(std::size_t count) {
  Bytes out;
  Rng rng(1);
  for (std::size_t i = 0; i < count; ++i) {
    isa::Insn in;
    switch (rng.below(6)) {
      case 0: in = isa::make_nop(); break;
      case 1: in = isa::make_jmp(static_cast<std::int64_t>(rng.below(100)), isa::BranchWidth::kRel32); break;
      case 2:
        in.op = isa::Op::kMovI;
        in.ra = static_cast<std::uint8_t>(rng.below(8));
        in.imm = static_cast<std::int64_t>(rng.below(1 << 30));
        break;
      case 3:
        in.op = isa::Op::kAdd;
        in.ra = static_cast<std::uint8_t>(rng.below(8));
        in.rb = static_cast<std::uint8_t>(rng.below(8));
        break;
      case 4:
        in.op = isa::Op::kLoad;
        in.ra = static_cast<std::uint8_t>(rng.below(8));
        in.rb = static_cast<std::uint8_t>(rng.below(8));
        in.imm = static_cast<std::int64_t>(rng.below(256));
        break;
      case 5: in = isa::make_push_imm(static_cast<std::uint32_t>(rng.below(1u << 31))); break;
    }
    auto enc = isa::encode(in);
    put_bytes(out, *enc);
  }
  return out;
}

void BM_Decode(benchmark::State& state) {
  Bytes stream = make_insn_stream(4096);
  for (auto _ : state) {
    std::size_t off = 0, n = 0;
    while (off < stream.size()) {
      auto in = isa::decode(ByteView(stream.data() + off, std::min<std::size_t>(10, stream.size() - off)));
      off += in->length;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Decode);

void BM_Encode(benchmark::State& state) {
  std::vector<isa::Insn> insns;
  Bytes stream = make_insn_stream(4096);
  std::size_t off = 0;
  while (off < stream.size()) {
    auto in = isa::decode(ByteView(stream.data() + off, std::min<std::size_t>(10, stream.size() - off)));
    insns.push_back(*in);
    off += in->length;
  }
  Bytes out;
  for (auto _ : state) {
    out.clear();
    for (const auto& in : insns) (void)isa::encode(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * insns.size()));
}
BENCHMARK(BM_Encode);

void BM_IntervalSetChurn(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet s;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
      std::uint64_t a = rng.below(1 << 20);
      std::uint64_t b = a + rng.below(256);
      if (rng.chance(2, 3))
        s.insert(a, b);
      else
        s.erase(a, b);
    }
    benchmark::DoNotOptimize(s.count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetChurn);

const char* kVmProgram = R"(
  .entry main
  .text
  main:
    movi r2, 0
    movi r3, 0
  loop:
    addi r3, 7
    xori r3, 0x5a5a
    addi r2, 1
    cmpi r2, 20000
    jlt loop
    movi r0, 1
    mov r1, r3
    syscall
)";

void BM_VmExecution(benchmark::State& state) {
  auto img = assembler::assemble(kVmProgram);
  for (auto _ : state) {
    auto r = vm::run_program(*img);
    benchmark::DoNotOptimize(r.stats.insns);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100003);
}
BENCHMARK(BM_VmExecution);

void BM_RewriteCb(benchmark::State& state) {
  auto corpus = cgc::cfe_corpus();
  auto cb = cgc::generate_cb(corpus[static_cast<std::size_t>(state.range(0))]);
  std::size_t text = cb->image.text().bytes.size();
  for (auto _ : state) {
    auto r = rewrite(cb->image, {});
    benchmark::DoNotOptimize(r->image.entry);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text));
  state.SetLabel(cb->spec.name + " (" + std::to_string(text) + "B text)");
}
BENCHMARK(BM_RewriteCb)->Arg(0)->Arg(40)->Arg(61);

void BM_RewriteWithCfi(benchmark::State& state) {
  auto corpus = cgc::cfe_corpus();
  auto cb = cgc::generate_cb(corpus[5]);
  RewriteOptions opts;
  opts.transforms = {"cfi"};
  for (auto _ : state) {
    auto r = rewrite(cb->image, opts);
    benchmark::DoNotOptimize(r->image.entry);
  }
}
BENCHMARK(BM_RewriteWithCfi);

}  // namespace

BENCHMARK_MAIN();
