// Microbenchmarks (google-benchmark): throughput of the pieces the
// rewriting pipeline leans on -- instruction decode/encode, interval-set
// operations, free-space allocation and placement under heavy
// fragmentation, VM execution, and the end-to-end rewrite itself.
//
// `tools/run_bench.sh` (or the `perf_smoke` CMake target) runs this suite
// with --benchmark_format=json into BENCH_micro.json so the throughput
// trajectory is tracked PR over PR.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>

#include "asm/assembler.h"
#include "batch/batch_rewriter.h"
#include "batch/worker_pool.h"
#include "cgc/generator.h"
#include "isa/insn.h"
#include "support/interval.h"
#include "support/rng.h"
#include "vm/machine.h"
#include "zelf/image.h"
#include "zipr/placement.h"
#include "zipr/workspace.h"
#include "zipr/zipr.h"

// ---- allocation accounting ----
//
// Replacement global new/delete counting every heap allocation, so the
// rewrite benchmarks can report allocations per iteration alongside
// throughput: the zero-copy emission work is visible as a falling
// allocs-per-rewrite counter, and a regression shows up in BENCH_micro.json
// even when wall-clock noise hides it.
//
// Live bytes are tracked too (via malloc_usable_size, so frees can subtract
// without a size tag), and a CAS-max over the live count yields a peak-heap
// watermark: unlike process RSS it is resettable per benchmark and is not
// polluted by whatever ran earlier in the process.

#include <malloc.h>

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_live{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (!p) throw std::bad_alloc();
  std::uint64_t usable = malloc_usable_size(p);
  std::uint64_t live = g_live_bytes.fetch_add(usable, std::memory_order_relaxed) + usable;
  std::uint64_t peak = g_peak_live.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_live.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept {
  if (p) g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace {

using namespace zipr;

/// RAII scope measuring heap traffic across a benchmark's iterations and
/// reporting it as per-iteration counters, plus the peak heap growth above
/// the scope's starting level ("peak_heap_B", absolute: scratch memory one
/// rewrite holds at its high-water mark, since per-rewrite scratch is freed
/// between iterations).
class AllocScope {
 public:
  explicit AllocScope(benchmark::State& state)
      : state_(state),
        count0_(g_alloc_count.load(std::memory_order_relaxed)),
        bytes0_(g_alloc_bytes.load(std::memory_order_relaxed)),
        live0_(g_live_bytes.load(std::memory_order_relaxed)) {
    g_peak_live.store(live0_, std::memory_order_relaxed);
  }

  ~AllocScope() {
    auto iters = static_cast<double>(std::max<std::int64_t>(state_.iterations(), 1));
    state_.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(g_alloc_count.load(std::memory_order_relaxed) - count0_) / iters);
    state_.counters["alloc_B/op"] = benchmark::Counter(
        static_cast<double>(g_alloc_bytes.load(std::memory_order_relaxed) - bytes0_) / iters);
    std::uint64_t peak = g_peak_live.load(std::memory_order_relaxed);
    state_.counters["peak_heap_B"] =
        benchmark::Counter(peak > live0_ ? static_cast<double>(peak - live0_) : 0.0);
  }

 private:
  benchmark::State& state_;
  std::uint64_t count0_, bytes0_, live0_;
};

// ---- shared fixtures ----
//
// Corpus and CB generation are hoisted into process-lifetime statics:
// every BM_Rewrite* registration (and repetition) shares one generated
// corpus and one CB per index instead of regenerating them, so adding
// benchmarks does not balloon bench startup time.

const std::vector<cgc::CbSpec>& shared_corpus() {
  static const std::vector<cgc::CbSpec> corpus = cgc::cfe_corpus();
  return corpus;
}

const cgc::CbProgram& shared_cb(std::size_t index) {
  static std::map<std::size_t, cgc::CbProgram> cache;
  auto it = cache.find(index);
  if (it == cache.end()) {
    auto r = cgc::generate_cb(shared_corpus()[index]);
    if (!r.ok()) {
      std::fprintf(stderr, "CB generation failed: %s\n", r.error().message.c_str());
      std::abort();
    }
    it = cache.emplace(index, std::move(*r)).first;
  }
  return it->second;
}

/// A synthetic large binary: far more handlers/straight-line code than any
/// corpus CB, approximating the paper's "real-world binary" scale for the
/// end-to-end rewrite benchmark. `scale` multiplies the text-dominating
/// knobs (straight-line code and filler functions), so scale=50 yields a
/// ~5 MB text segment; scale=1 is the historical BM_RewriteLarge input.
const cgc::CbProgram& shared_large_cb(int scale) {
  static std::map<int, cgc::CbProgram> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    cgc::CbSpec spec;
    spec.name = "synthetic-large-x" + std::to_string(scale);
    spec.seed = 99;
    spec.handlers = 24;
    spec.dispatch = cgc::DispatchMode::kFptrTable;
    spec.filler_funcs = 48 * scale;
    spec.filler_ops = 24;
    spec.straightline = 600 * scale;
    spec.scratch_pages = 4;
    spec.data_in_text = true;
    spec.payload_max = 12;
    // The default layout leaves 2 MB between text and rodata; the larger
    // sweep points need more, so assemble with a widened segment layout
    // (the rewriter takes segment bounds from the image, not constants).
    cgc::CbProgram prog;
    prog.spec = spec;
    auto src = cgc::generate_cb_source(spec, &prog.payload_len);
    if (src.ok()) {
      assembler::Options opts;
      opts.emit_symbols = false;
      opts.rodata_base = 0x4000000;  // 60 MB of text headroom
      opts.data_base = 0x4100000;
      opts.bss_base = 0x4180000;
      auto img = assembler::assemble(*src, opts);
      if (!img.ok()) {
        std::fprintf(stderr, "large CB assembly failed: %s\n", img.error().message.c_str());
        std::abort();
      }
      prog.image = std::move(*img);
    } else {
      std::fprintf(stderr, "large CB generation failed: %s\n", src.error().message.c_str());
      std::abort();
    }
    it = cache.emplace(scale, std::move(prog)).first;
  }
  return it->second;
}

// A buffer of valid, varied instruction encodings.
Bytes make_insn_stream(std::size_t count) {
  Bytes out;
  Rng rng(1);
  for (std::size_t i = 0; i < count; ++i) {
    isa::Insn in;
    switch (rng.below(6)) {
      case 0: in = isa::make_nop(); break;
      case 1: in = isa::make_jmp(static_cast<std::int64_t>(rng.below(100)), isa::BranchWidth::kRel32); break;
      case 2:
        in.op = isa::Op::kMovI;
        in.ra = static_cast<std::uint8_t>(rng.below(8));
        in.imm = static_cast<std::int64_t>(rng.below(1 << 30));
        break;
      case 3:
        in.op = isa::Op::kAdd;
        in.ra = static_cast<std::uint8_t>(rng.below(8));
        in.rb = static_cast<std::uint8_t>(rng.below(8));
        break;
      case 4:
        in.op = isa::Op::kLoad;
        in.ra = static_cast<std::uint8_t>(rng.below(8));
        in.rb = static_cast<std::uint8_t>(rng.below(8));
        in.imm = static_cast<std::int64_t>(rng.below(256));
        break;
      case 5: in = isa::make_push_imm(static_cast<std::uint32_t>(rng.below(1u << 31))); break;
    }
    auto enc = isa::encode(in);
    put_bytes(out, *enc);
  }
  return out;
}

void BM_Decode(benchmark::State& state) {
  Bytes stream = make_insn_stream(4096);
  for (auto _ : state) {
    std::size_t off = 0, n = 0;
    while (off < stream.size()) {
      auto in = isa::decode(ByteView(stream.data() + off, std::min<std::size_t>(10, stream.size() - off)));
      off += in->length;
      ++n;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Decode);

void BM_Encode(benchmark::State& state) {
  std::vector<isa::Insn> insns;
  Bytes stream = make_insn_stream(4096);
  std::size_t off = 0;
  while (off < stream.size()) {
    auto in = isa::decode(ByteView(stream.data() + off, std::min<std::size_t>(10, stream.size() - off)));
    insns.push_back(*in);
    off += in->length;
  }
  Bytes out;
  for (auto _ : state) {
    out.clear();
    for (const auto& in : insns) (void)isa::encode(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * insns.size()));
}
BENCHMARK(BM_Encode);

void BM_IntervalSetChurn(benchmark::State& state) {
  for (auto _ : state) {
    IntervalSet s;
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
      std::uint64_t a = rng.below(1 << 20);
      std::uint64_t b = a + rng.below(256);
      if (rng.chance(2, 3))
        s.insert(a, b);
      else
        s.erase(a, b);
    }
    benchmark::DoNotOptimize(s.count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetChurn);

// ---- free-space core under fragmentation ----
//
// The MemorySpace / placement benchmarks below are parameterized by the
// number of free fragments (1k / 10k / 100k): the regime a large binary's
// endgame reaches once pins and placed dollops have shredded the text
// span. Before the size-indexed IntervalSet, every query here copied and
// scanned the whole free list (O(n) per op); now allocation is O(log n)
// and window/fit queries touch only candidate ranges.

constexpr std::uint64_t kFragBase = 0x10000000;
constexpr std::uint64_t kFragStride = 128;  // one free fragment per stride

// A MemorySpace whose free set is `frags` disjoint fragments: mostly dust
// (8..15 bytes) with every 10th fragment larger (16..127 bytes), mirroring
// the skewed fragment-size distribution real rewrites produce.
std::uint64_t frag_size(std::uint64_t i) {
  return i % 10 == 0 ? 16 + (i / 10) % 112 : 8 + i % 8;
}

rewriter::MemorySpace fragmented_space(std::uint64_t frags) {
  rewriter::MemorySpace s({kFragBase, kFragBase + frags * kFragStride});
  for (std::uint64_t i = 0; i < frags; ++i) {
    std::uint64_t free_begin = kFragBase + i * kFragStride;
    std::uint64_t free_end = free_begin + frag_size(i);
    // Reserve the tail of the stride so [free_begin, free_end) stays free.
    if (!s.reserve(free_end, kFragBase + (i + 1) * kFragStride - free_end).ok()) std::abort();
  }
  return s;
}

void BM_MemorySpaceAlloc(benchmark::State& state) {
  auto frags = static_cast<std::uint64_t>(state.range(0));
  rewriter::MemorySpace s = fragmented_space(frags);
  constexpr std::uint64_t kSize = 64;
  for (auto _ : state) {
    auto a = s.allocate(kSize);
    benchmark::DoNotOptimize(a);
    if (a && !s.release(*a, kSize).ok()) std::abort();  // restore state
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemorySpaceAlloc)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AllocateInWindow(benchmark::State& state) {
  auto frags = static_cast<std::uint64_t>(state.range(0));
  rewriter::MemorySpace s = fragmented_space(frags);
  std::uint64_t span = frags * kFragStride;
  std::uint64_t prefer = kFragBase;
  for (auto _ : state) {
    // March the rel8-sized window across the span, as chaining does.
    prefer = kFragBase + (prefer - kFragBase + 7919) % span;
    auto a = s.allocate_in_window(5, prefer >= 126 ? prefer - 126 : 0, prefer + 129, prefer);
    benchmark::DoNotOptimize(a);
    if (a && !s.release(*a, 5).ok()) std::abort();  // restore state
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocateInWindow)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PlacementPick(benchmark::State& state, rewriter::PlacementKind kind) {
  auto frags = static_cast<std::uint64_t>(state.range(0));
  rewriter::MemorySpace s = fragmented_space(frags);
  // Pin a handful of pages, as a real binary's pin map would.
  std::set<std::uint64_t> pinned_pages;
  for (int i = 0; i < 16; ++i)
    pinned_pages.insert((kFragBase + static_cast<std::uint64_t>(i) * 37 * zelf::layout::kPageSize) &
                        ~(zelf::layout::kPageSize - 1));
  auto strategy = rewriter::make_placement(kind, 42, std::move(pinned_pages));
  rewriter::PlacementRequest req;
  req.size = 64;  // fits only the non-dust fragments
  req.min_viable = 7;
  std::uint64_t anchor = kFragBase;
  for (auto _ : state) {
    anchor = kFragBase + (anchor - kFragBase + 104729) % (frags * kFragStride);
    req.preferred = anchor;
    auto iv = strategy->pick(s, req);
    benchmark::DoNotOptimize(iv);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_PlacementPick, nearfit, rewriter::PlacementKind::kNearfit)
    ->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK_CAPTURE(BM_PlacementPick, diversity, rewriter::PlacementKind::kDiversity)
    ->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK_CAPTURE(BM_PlacementPick, pinpage, rewriter::PlacementKind::kPinPage)
    ->Arg(1000)->Arg(10000)->Arg(100000);

const char* kVmProgram = R"(
  .entry main
  .text
  main:
    movi r2, 0
    movi r3, 0
  loop:
    addi r3, 7
    xori r3, 0x5a5a
    addi r2, 1
    cmpi r2, 20000
    jlt loop
    movi r0, 1
    mov r1, r3
    syscall
)";

void BM_VmExecution(benchmark::State& state) {
  auto img = assembler::assemble(kVmProgram);
  for (auto _ : state) {
    auto r = vm::run_program(*img);
    benchmark::DoNotOptimize(r.stats.insns);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100003);
}
BENCHMARK(BM_VmExecution);

// The interpreter with the predecoded-instruction cache on vs off, same
// workload as BM_VmExecution. Machine construction (and therefore a cold
// cache build) is inside the timed region, so the on/off gap understates
// the fuzzing steady state where the cache stays warm across restores.
void BM_VmExec(benchmark::State& state) {
  auto img = assembler::assemble(kVmProgram);
  const bool cache = state.range(0) != 0;
  for (auto _ : state) {
    vm::Machine m(*img);
    m.set_decode_cache(cache);
    auto r = m.run();
    if (!r.exited) std::abort();
    benchmark::DoNotOptimize(r.stats.insns);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100003);
  state.SetLabel(cache ? "decode-cache" : "no-cache");
}
BENCHMARK(BM_VmExec)->Arg(0)->Arg(1);

// Bulk syscall I/O: transmit 256 KiB page-run by page-run and drain a
// 64 KiB input stream. Measures Memory::read_block/write_block (memcpy per
// contiguous page run, not byte loops) through the guest-visible path.
const char* kIoProgram = R"(
  .entry main
  .text
  main:
    movi r4, 0
  tx:
    movi r0, 2          ; transmit(1, buf, 4096)
    movi r1, 1
    movi r2, buf
    movi r3, 4096
    syscall
    addi r4, 1
    cmpi r4, 64
    jlt tx
  rx:
    movi r0, 3          ; receive(0, buf, 4096) until EOF
    movi r1, 0
    movi r2, buf
    movi r3, 4096
    syscall
    cmpi r0, 0
    jgt rx
    movi r0, 1
    movi r1, 0
    syscall
  .bss
  buf: .space 4096
)";

void BM_SyscallIO(benchmark::State& state) {
  auto img = assembler::assemble(kIoProgram);
  Bytes input(1 << 16, static_cast<Byte>(0x41));
  for (auto _ : state) {
    vm::Machine m(*img);
    m.set_input(input);
    auto r = m.run();
    if (!r.exited) std::abort();
    benchmark::DoNotOptimize(r.output.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(64 * 4096 + input.size()));
}
BENCHMARK(BM_SyscallIO);

void BM_RewriteCb(benchmark::State& state) {
  const auto& cb = shared_cb(static_cast<std::size_t>(state.range(0)));
  std::size_t text = cb.image.text().bytes.size();
  AllocScope allocs(state);
  for (auto _ : state) {
    auto r = rewrite(cb.image, {});
    benchmark::DoNotOptimize(r->image.entry);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text));
  state.SetLabel(cb.spec.name + " (" + std::to_string(text) + "B text)");
}
BENCHMARK(BM_RewriteCb)->Arg(0)->Arg(40)->Arg(61);

// End-to-end rewrite throughput on the synthetic large binary, swept
// across text sizes (x1 ~106 KB up to x50 ~5 MB). The sweep is the
// big-binary scaling curve: tools/perf_guard.py --micro checks that x50
// wall time stays within 1.5x of linear extrapolation from x1 (flat IR +
// arena reuse keep per-instruction cost size-independent) and gates
// allocs/op and peak_heap_B on the x1 row absolutely.
//
// Iterations share one RewriteWorkspace, the way a serve/batch worker
// recycles its tables across requests: warm iterations re-fill retained
// buffers instead of re-allocating them, which is what the x1 allocs/op
// ceiling measures. (BM_RewriteCb above stays workspace-free as the
// one-shot baseline.)
void BM_RewriteLarge(benchmark::State& state) {
  const auto& cb = shared_large_cb(static_cast<int>(state.range(0)));
  std::size_t text = cb.image.text().bytes.size();
  RewriteWorkspace workspace;
  ExecPolicy exec;
  exec.workspace = &workspace;
  // One untimed rewrite fills the workspace (and the thread arena) to its
  // steady-state capacity, so AllocScope's baseline includes the retained
  // buffers and the counters below measure WARM iterations: what a serve
  // worker pays per request, not the first-request fill.
  {
    auto r = rewrite(cb.image, {}, exec);
    benchmark::DoNotOptimize(r->image.entry);
  }
  AllocScope allocs(state);
  for (auto _ : state) {
    auto r = rewrite(cb.image, {}, exec);
    benchmark::DoNotOptimize(r->image.entry);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text));
  state.SetLabel(cb.spec.name + " (" + std::to_string(text) + "B text)");
}
// MinTime keeps the big sizes from being judged on two iterations (the
// first of which faults its whole working set cold): the x50 scaling gate
// in perf_guard --micro wants a steady-state mean, not cold-start jitter.
BENCHMARK(BM_RewriteLarge)->Arg(1)->Arg(10)->Arg(25)->Arg(50)->MinTime(3.0);

// Batch-rewrite a 16-image corpus slice on 1/2/4/8 workers. Wall-clock
// (real time) is the quantity of interest: on a multi-core host the
// speedup vs Arg(1) approaches min(jobs, cores); on a single core it stays
// ~1x and the pool overhead is what's being measured.
void BM_BatchRewrite(benchmark::State& state) {
  static const std::vector<zelf::Image>& images = [] {
    static std::vector<zelf::Image> imgs;
    for (std::size_t i = 0; i < 16; ++i)
      imgs.push_back(shared_cb(i * 3 % shared_corpus().size()).image);
    return std::ref(imgs);
  }().get();
  batch::BatchOptions opts;
  opts.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = batch::rewrite_batch(images, opts);
    if (r.stats.failed != 0) std::abort();
    benchmark::DoNotOptimize(r.stats.succeeded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * images.size()));
  // The worker count actually used (requested jobs capped by the corpus
  // size), so a reader of BENCH_micro.json can tell pool-scaling rows
  // apart without parsing the benchmark name.
  state.counters["workers"] = benchmark::Counter(
      static_cast<double>(batch::effective_jobs(opts.jobs, images.size())));
}
// Wall-clock (UseRealTime) is the scaling signal; process CPU time is
// recorded alongside so the pool's aggregate cost stays visible (cpu_time
// from the calling thread alone would misleadingly shrink as jobs grow).
BENCHMARK(BM_BatchRewrite)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->MeasureProcessCPUTime();

void BM_RewriteWithCfi(benchmark::State& state) {
  const auto& cb = shared_cb(5);
  RewriteOptions opts;
  opts.transforms = {"cfi"};
  for (auto _ : state) {
    auto r = rewrite(cb.image, opts);
    benchmark::DoNotOptimize(r->image.entry);
  }
}
BENCHMARK(BM_RewriteWithCfi);

}  // namespace

int main(int argc, char** argv) {
  // The big-size rewrite tables (x25/x50 sweep) sit above glibc's
  // mmap-threshold adaptation cap (32 MB), so by default every iteration
  // hands them straight back to the OS and re-faults ~150 MB of zero
  // pages on the next one -- a step-function allocator artifact at the
  // 32 MB boundary that shows up as superlinear "scaling" between sweep
  // sizes whose buffers fall on opposite sides of it. Pin the threshold
  // above the largest sweep table so the iteration loop measures the
  // rewrite pipeline, not the page allocator: a one-shot rewrite pays the
  // fault cost once and linearly, and the serve layer's long-lived
  // workers recycle their heap across requests exactly like this loop.
  mallopt(M_MMAP_THRESHOLD, 256 << 20);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
