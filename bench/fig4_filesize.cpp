// Figure 4 reproduction: histogram of file-size overhead across the 62-CB
// corpus for the Zipr baseline (Null transform) and Zipr+CFI.
//
// Paper shape: both configurations stay under 5 % for essentially every
// CB, well within the CGC's 20 % budget; CFI costs slightly more than the
// baseline (its target bitmap ships with the binary).
#include <thread>

#include "bench_util.h"

int main() {
  using namespace zipr;
  using namespace zipr::bench;

  std::printf("== Figure 4: Histogram of Filesize Overhead (62 CBs) ==\n\n");
  std::printf("  (corpus evaluated on a %u-worker batch pool)\n\n",
              std::max(1u, std::thread::hardware_concurrency()));

  // Both corpus sweeps run through the batch engine (jobs=0 = hardware
  // concurrency); histograms are identical to the serial path by design.
  auto base = evaluate(baseline_config());
  auto cfi = evaluate(cfi_config());

  auto hb = histogram_of(base, &cgc::CbMetrics::filesize_overhead);
  auto hc = histogram_of(cfi, &cgc::CbMetrics::filesize_overhead);
  print_histogram("zipr (Null transform)", hb, base.size());
  print_histogram("zipr + CFI", hc, cfi.size());

  double mb = cgc::mean_overhead(base, &cgc::CbMetrics::filesize_overhead);
  double mc = cgc::mean_overhead(cfi, &cgc::CbMetrics::filesize_overhead);
  std::printf("\n  mean filesize overhead: zipr %.2f%%   zipr+cfi %.2f%%\n\n", mb * 100,
              mc * 100);

  int within20_base = 0, within20_cfi = 0, within5_base = 0;
  for (const auto& m : base) {
    within20_base += m.filesize_overhead <= 0.20;
    within5_base += m.filesize_overhead <= 0.05;
  }
  for (const auto& m : cfi) within20_cfi += m.filesize_overhead <= 0.20;

  ClaimChecker claims;
  claims.check(count_functional(base) == 62, "all 62 baseline CBs remain functional");
  claims.check(count_functional(cfi) == 62, "all 62 CFI CBs remain functional");
  claims.check(within20_base == 62, "baseline: every CB within the 20% CGC budget");
  claims.check(within20_cfi == 62, "CFI: every CB within the 20% CGC budget");
  claims.check(within5_base >= 56, "baseline: vast majority of CBs under 5% overhead");
  claims.check(mc >= mb, "CFI file-size overhead >= baseline (bitmap cost)");
  return claims.finish();
}
