// Ablation B (paper Sec. III): placement strategies.
//
// The paper contrasts the default unconstrain-everything layout (which
// "naturally presents a way of realizing code layout diversity") with the
// LLVM-relaxation-style optimized layout that keeps references short and
// places dollops near their referents, "favoring memory overhead
// reduction over layout diversity". A third strategy fills pinned pages
// first. This bench runs a corpus slice under all three.
//
// Paper shape: nearfit beats diversity on file size (short references,
// less overflow) and memory; diversity yields distinct layouts per seed.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace zipr;
  using namespace zipr::bench;

  std::printf("== Ablation B: placement strategy trade-offs ==\n\n");

  auto corpus = cgc::cfe_corpus();
  corpus.resize(24);  // a representative slice keeps runtime modest

  struct Row {
    std::string label;
    rewriter::PlacementKind kind;
    double fs = 0, ex = 0, me = 0;
    int functional = 0;
  };
  std::vector<Row> rows = {
      {"nearfit", rewriter::PlacementKind::kNearfit, 0, 0, 0, 0},
      {"diversity", rewriter::PlacementKind::kDiversity, 0, 0, 0, 0},
      {"pinpage", rewriter::PlacementKind::kPinPage, 0, 0, 0, 0},
  };

  std::printf("  %-10s %10s %10s %10s %12s\n", "strategy", "file-ovh", "exec-ovh", "mem-ovh",
              "functional");
  for (auto& row : rows) {
    cgc::EvalOptions opts;
    opts.rewrite.placement = row.kind;
    opts.polls = 6;
    auto r = cgc::evaluate_corpus(corpus, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "evaluation failed: %s\n", r.error().message.c_str());
      return 1;
    }
    row.fs = cgc::mean_overhead(*r, &cgc::CbMetrics::filesize_overhead);
    row.ex = cgc::mean_overhead(*r, &cgc::CbMetrics::exec_overhead);
    row.me = cgc::mean_overhead(*r, &cgc::CbMetrics::mem_overhead);
    row.functional = count_functional(*r);
    std::printf("  %-10s %9.2f%% %9.2f%% %9.2f%% %8d/%zu\n", row.label.c_str(), row.fs * 100,
                row.ex * 100, row.me * 100, row.functional, corpus.size());
  }

  // Layout diversity: same CB, different seeds, different text bytes.
  auto cb = cgc::generate_cb(corpus[2]);
  int distinct = 0;
  if (cb.ok()) {
    RewriteOptions d;
    d.placement = rewriter::PlacementKind::kDiversity;
    std::set<Bytes> layouts;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      d.seed = seed;
      auto r = rewrite(cb->image, d);
      if (r.ok()) layouts.insert(r->image.text().bytes);
    }
    distinct = static_cast<int>(layouts.size());
    std::printf("\n  diversity layouts from 8 seeds on %s: %d distinct\n\n",
                cb->spec.name.c_str(), distinct);
  }

  ClaimChecker claims;
  claims.check(rows[0].functional == 24 && rows[1].functional == 24 && rows[2].functional == 24,
               "every strategy preserves functionality on the whole slice");
  claims.check(rows[0].fs <= rows[1].fs,
               "nearfit file-size overhead <= diversity (relaxation saves bytes)");
  claims.check(rows[0].me <= rows[1].me + 0.02,
               "nearfit memory overhead <= diversity (locality keeps pages warm)");
  claims.check(distinct >= 7, "diversity produces distinct layouts per seed");
  return claims.finish();
}
