// Layout-quality benchmark: per-strategy dollop-coalescing statistics over
// the 62-CB corpus, emitted as BENCH_layout.json so elision rate,
// trailing-jump spend, and output-size overhead are tracked PR over PR.
//
// For each placement strategy the corpus is rewritten twice -- coalescing
// on and coalescing off -- and the aggregate layout stats are compared:
//
//   {
//     "bench": "layout_stats",
//     "corpus_size": 62,
//     "configs": [
//       {"strategy": "nearfit", "coalesce": true,
//        "jumps_elided": N, "cont_jumps": N, "elision_rate": 0..1,
//        "trailing_jump_bytes": N, "bytes_saved": N,
//        "overflow_bytes": N, "mean_filesize_overhead": frac,
//        "functional": 62},
//       ...one entry per strategy x {on, off}...
//     ]
//   }
//
// Usage: layout_stats [--out=PATH]  (default: ./BENCH_layout.json)
#include <cstring>
#include <string>

#include "bench_util.h"

namespace {

using namespace zipr;
using namespace zipr::bench;

struct LayoutRow {
  std::string strategy;
  bool coalesce = false;
  std::size_t jumps_elided = 0;
  std::size_t cont_jumps = 0;
  std::uint64_t trailing_jump_bytes = 0;
  std::uint64_t bytes_saved = 0;
  std::uint64_t overflow_bytes = 0;
  double mean_filesize_overhead = 0;
  int functional = 0;

  double elision_rate() const {
    std::size_t total = jumps_elided + cont_jumps;
    return total == 0 ? 0.0 : static_cast<double>(jumps_elided) / static_cast<double>(total);
  }
};

LayoutRow measure(const char* strategy, rewriter::PlacementKind kind, bool coalesce) {
  Config c;
  c.label = std::string(strategy) + (coalesce ? "" : " (no coalescing)");
  c.rewrite.placement = kind;
  c.rewrite.coalesce = coalesce;
  auto metrics = evaluate(c, /*polls=*/2);

  LayoutRow row;
  row.strategy = strategy;
  row.coalesce = coalesce;
  row.functional = count_functional(metrics);
  row.mean_filesize_overhead = cgc::mean_overhead(metrics, &cgc::CbMetrics::filesize_overhead);
  for (const auto& m : metrics) {
    row.jumps_elided += m.rewrite_stats.jumps_elided;
    row.cont_jumps += m.rewrite_stats.cont_jumps;
    row.trailing_jump_bytes += m.rewrite_stats.trailing_jump_bytes;
    row.bytes_saved += m.rewrite_stats.bytes_saved;
    row.overflow_bytes += m.rewrite_stats.overflow_bytes;
  }
  return row;
}

void print_row(const LayoutRow& r) {
  std::printf("  %-10s coalesce=%-3s  elided %6zu  emitted %6zu  rate %5.1f%%  "
              "jump bytes %8llu  saved %7llu  overflow %8llu  file ovh %5.2f%%\n",
              r.strategy.c_str(), r.coalesce ? "on" : "off", r.jumps_elided, r.cont_jumps,
              r.elision_rate() * 100, static_cast<unsigned long long>(r.trailing_jump_bytes),
              static_cast<unsigned long long>(r.bytes_saved),
              static_cast<unsigned long long>(r.overflow_bytes),
              r.mean_filesize_overhead * 100);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_layout.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  std::printf("== Layout stats: coalescing across placement strategies (62 CBs) ==\n\n");

  const struct {
    const char* name;
    zipr::rewriter::PlacementKind kind;
  } kStrategies[] = {
      {"nearfit", zipr::rewriter::PlacementKind::kNearfit},
      {"diversity", zipr::rewriter::PlacementKind::kDiversity},
      {"pinpage", zipr::rewriter::PlacementKind::kPinPage},
  };

  std::vector<LayoutRow> rows;
  for (const auto& s : kStrategies) {
    rows.push_back(measure(s.name, s.kind, true));
    rows.push_back(measure(s.name, s.kind, false));
    print_row(rows[rows.size() - 2]);
    print_row(rows.back());
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"layout_stats\",\n  \"corpus_size\": %zu,\n",
               zipr::cgc::cfe_corpus().size());
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"strategy\": \"%s\", \"coalesce\": %s,\n"
                 "     \"jumps_elided\": %zu, \"cont_jumps\": %zu, \"elision_rate\": %.4f,\n"
                 "     \"trailing_jump_bytes\": %llu, \"bytes_saved\": %llu,\n"
                 "     \"overflow_bytes\": %llu, \"mean_filesize_overhead\": %.6f,\n"
                 "     \"functional\": %d}%s\n",
                 r.strategy.c_str(), r.coalesce ? "true" : "false", r.jumps_elided, r.cont_jumps,
                 r.elision_rate(), static_cast<unsigned long long>(r.trailing_jump_bytes),
                 static_cast<unsigned long long>(r.bytes_saved),
                 static_cast<unsigned long long>(r.overflow_bytes), r.mean_filesize_overhead,
                 r.functional, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n\n", out_path.c_str());

  // Qualitative gates: coalescing must actually fire where it defaults on,
  // must stay off where randomization wants it off, and must never cost
  // output size.
  auto row = [&rows](const char* strategy, bool coalesce) -> const LayoutRow& {
    for (const auto& r : rows)
      if (r.strategy == strategy && r.coalesce == coalesce) return r;
    std::abort();
  };

  ClaimChecker claims;
  const std::size_t corpus = zipr::cgc::cfe_corpus().size();
  for (const auto& r : rows)
    if (r.functional != static_cast<int>(corpus)) {
      claims.check(false, "all CBs functional under " + r.strategy +
                              (r.coalesce ? " (coalesce)" : " (no coalesce)"));
    }
  claims.check(true, "all configurations keep the corpus functional");
  for (const auto& s : kStrategies) {
    const auto& on = row(s.name, true);
    const auto& off = row(s.name, false);
    claims.check(on.jumps_elided > 0,
                 std::string(s.name) + ": coalescing elides trailing jumps");
    claims.check(off.jumps_elided == 0,
                 std::string(s.name) + ": --no-coalesce elides nothing");
    claims.check(on.overflow_bytes <= off.overflow_bytes,
                 std::string(s.name) + ": coalescing never grows the overflow area");
    claims.check(on.mean_filesize_overhead <= off.mean_filesize_overhead + 1e-9,
                 std::string(s.name) + ": coalescing never grows mean file-size overhead");
  }
  return claims.finish();
}
