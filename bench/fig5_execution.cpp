// Figure 5 reproduction: histogram of execution overhead across the 62-CB
// corpus for the Zipr baseline and Zipr+CFI, measured in VM cycles under
// the pollers' workload.
//
// Paper shape: the vast majority of baseline CBs stay within 5 %, several
// land between 5 % and 20 %; CFI shifts CBs out of the <5 % bin into the
// higher bins (each indirect transfer pays for its guard).
#include "bench_util.h"

int main() {
  using namespace zipr;
  using namespace zipr::bench;

  std::printf("== Figure 5: Histogram of Execution Overhead (62 CBs) ==\n\n");

  auto base = evaluate(baseline_config());
  auto cfi = evaluate(cfi_config());

  auto hb = histogram_of(base, &cgc::CbMetrics::exec_overhead);
  auto hc = histogram_of(cfi, &cgc::CbMetrics::exec_overhead);
  print_histogram("zipr (Null transform)", hb, base.size());
  print_histogram("zipr + CFI", hc, cfi.size());

  double mb = cgc::mean_overhead(base, &cgc::CbMetrics::exec_overhead);
  double mc = cgc::mean_overhead(cfi, &cgc::CbMetrics::exec_overhead);
  std::printf("\n  mean execution overhead: zipr %.2f%%   zipr+cfi %.2f%%\n\n", mb * 100,
              mc * 100);

  int base_within5 = hb.counts[0] + hb.counts[1];
  int cfi_within5 = hc.counts[0] + hc.counts[1];
  int base_within20 = base_within5 + hb.counts[2] + hb.counts[3];

  ClaimChecker claims;
  claims.check(count_functional(base) == 62 && count_functional(cfi) == 62,
               "all CBs remain functional under both configurations");
  claims.check(base_within5 >= 42, "baseline: vast majority of CBs within 5%");
  claims.check(base_within20 >= 58, "baseline: nearly all CBs within 20%");
  claims.check(cfi_within5 <= base_within5,
               "CFI reduces the number of CBs in the <5% bin (guards cost cycles)");
  claims.check(mc >= mb, "CFI mean execution overhead >= baseline");
  return claims.finish();
}
