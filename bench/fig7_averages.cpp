// Figure 7 reproduction: average file-size, memory and execution overhead
// across the 62 CBs, for the Zipr baseline and Zipr+CFI.
//
// Paper shape: all six bars are low; CFI's bars sit above the baseline's
// in every metric.
#include "bench_util.h"

namespace {

void bar(const char* label, double value) {
  std::printf("    %-22s %6.2f%%  ", label, value * 100);
  int n = static_cast<int>(value * 100 * 6);  // 6 chars per percent
  if (n > 72) n = 72;
  for (int i = 0; i < n; ++i) std::printf("#");
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace zipr;
  using namespace zipr::bench;

  std::printf("== Figure 7: Average overheads for final event CBs ==\n\n");

  // Corpus loops ride the batch worker pool (jobs=0 = hardware
  // concurrency); averages match the serial path exactly.
  auto base = evaluate(baseline_config());
  auto cfi = evaluate(cfi_config());

  double fs_b = cgc::mean_overhead(base, &cgc::CbMetrics::filesize_overhead);
  double fs_c = cgc::mean_overhead(cfi, &cgc::CbMetrics::filesize_overhead);
  double ex_b = cgc::mean_overhead(base, &cgc::CbMetrics::exec_overhead);
  double ex_c = cgc::mean_overhead(cfi, &cgc::CbMetrics::exec_overhead);
  double me_b = cgc::mean_overhead(base, &cgc::CbMetrics::mem_overhead);
  double me_c = cgc::mean_overhead(cfi, &cgc::CbMetrics::mem_overhead);

  bar("filesize  zipr", fs_b);
  bar("filesize  zipr+cfi", fs_c);
  bar("execution zipr", ex_b);
  bar("execution zipr+cfi", ex_c);
  bar("memory    zipr", me_b);
  bar("memory    zipr+cfi", me_c);
  std::printf("\n");

  ClaimChecker claims;
  claims.check(fs_b < 0.05 && fs_c < 0.10, "average filesize overhead is low");
  claims.check(ex_b < 0.10, "average baseline execution overhead is low");
  claims.check(me_b < 0.10, "average baseline memory overhead is low");
  claims.check(fs_c >= fs_b && ex_c >= ex_b && me_c >= me_b,
               "CFI averages sit above the baseline in every metric");
  return claims.finish();
}
