// Ablation A (paper Sec. II-A2): "As |P - B| grows, our method generates
// an increasingly less space-efficient rewritten binary."
//
// Sweep the extra-pin fraction from the heuristic pin set (fraction 0) to
// pin-everything (the naive assignment the paper rejects) on a mid-size
// CB, and report pin counts and file-size overhead.
//
// Paper shape: file-size overhead grows monotonically-ish with |P - B|,
// and the binary keeps working at every point.
#include <cstdio>

#include "bench_util.h"
#include "cgc/poller.h"
#include "zelf/io.h"

int main() {
  using namespace zipr;

  std::printf("== Ablation A: pin-set size vs space efficiency ==\n\n");

  auto corpus = cgc::cfe_corpus();
  auto cb = cgc::generate_cb(corpus[10]);  // a mid-size jump-table CB
  if (!cb.ok()) {
    std::fprintf(stderr, "CB generation failed: %s\n", cb.error().message.c_str());
    return 1;
  }
  std::size_t orig_size = zelf::write_image(cb->image).size();
  auto polls = cgc::make_polls(*cb, 4, 5);

  std::printf("  subject: %s, original file %zu bytes\n\n", cb->spec.name.c_str(), orig_size);
  std::printf("  %-12s %8s %10s %12s %11s\n", "extra-pins", "pins", "overflow", "file-ovh",
              "functional");

  struct Point {
    double fraction;
    std::size_t pins;
    double overhead;
    bool functional;
  };
  std::vector<Point> points;

  auto run_config = [&](const char* label, double fraction, bool naive) {
    RewriteOptions opts;
    opts.analysis.pinning.extra_pin_fraction = fraction;
    opts.analysis.pinning.naive_pin_all = naive;
    auto r = rewrite(cb->image, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "rewrite failed (%s): %s\n", label, r.error().message.c_str());
      std::exit(1);
    }
    bool functional = true;
    for (const auto& poll : polls) {
      auto cmp = cgc::run_poll(cb->image, r->image, poll);
      functional &= cmp.functional;
    }
    double overhead =
        static_cast<double>(zelf::write_image(r->image).size()) / static_cast<double>(orig_size) -
        1.0;
    std::printf("  %-12s %8zu %9zuB %11.2f%% %11s\n", label, r->analysis.pins,
                static_cast<std::size_t>(r->reassembly.overflow_bytes), overhead * 100,
                functional ? "yes" : "NO");
    points.push_back({fraction, r->analysis.pins, overhead, functional});
  };

  run_config("0% (B)", 0.0, false);
  for (double f : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    char label[16];
    std::snprintf(label, sizeof label, "%.0f%%", f * 100);
    run_config(label, f, false);
  }
  run_config("pin-all", 0.0, true);
  std::printf("\n");

  bench::ClaimChecker claims;
  bool all_functional = true;
  for (const auto& point : points) all_functional &= point.functional;
  claims.check(all_functional, "every pin configuration preserves functionality");
  claims.check(points.back().pins > points.front().pins * 2,
               "pin-all grows P well beyond the heuristic set");
  claims.check(points.back().overhead > points.front().overhead,
               "space efficiency degrades as |P - B| grows");
  bool monotone_ish = points[points.size() - 2].overhead >= points[1].overhead;
  claims.check(monotone_ish, "overhead trends upward across the sweep");
  return claims.finish();
}
