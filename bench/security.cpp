// Security scoring (paper Sec. IV-B narrative): Xandra defended CBs with
// CFI against control-flow hijacking and won the best defensive score,
// being breached only once by a control-flow attack.
//
// This bench scores each defense configuration against the vulnerable-CB
// corpus: a configuration scores a CB when benign traffic still works AND
// the exploit no longer leaks.
//
// Paper shape: the baseline blocks nothing; CFI blocks the forward-edge
// hijacks (fptr/table overwrites) but not the return overwrite -- the
// "breached once" analogue; CFI+canary blocks everything.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "cgc/exploits.h"

int main() {
  using namespace zipr;

  std::printf("== Security: defense configurations vs hijack exploits ==\n\n");

  auto vulns = cgc::vulnerable_corpus();

  struct Config {
    const char* label;
    std::vector<std::string> transforms;
  };
  const std::vector<Config> configs = {
      {"baseline", {}},
      {"cfi", {"cfi"}},
      {"canary", {"canary"}},
      {"cfi+canary", {"cfi", "canary"}},
  };

  std::printf("  %-12s", "config");
  for (const auto& v : vulns) std::printf(" %16s", v.name.c_str());
  std::printf(" %8s\n", "score");

  std::map<std::string, std::map<std::string, bool>> blocked;  // config -> cb -> blocked
  std::map<std::string, bool> benign_ok;

  for (const auto& config : configs) {
    std::printf("  %-12s", config.label);
    int score = 0;
    bool all_benign = true;
    for (const auto& v : vulns) {
      RewriteOptions opts;
      opts.transforms = config.transforms;
      auto rewritten = rewrite(v.image, opts);
      if (!rewritten.ok()) {
        std::fprintf(stderr, "rewrite failed: %s\n", rewritten.error().message.c_str());
        return 1;
      }
      auto outcome = cgc::assess(v, rewritten->image);
      bool cb_blocked = !outcome.exploit_leaked;
      bool ok = outcome.benign_works && cb_blocked;
      all_benign &= outcome.benign_works;
      blocked[config.label][v.name] = cb_blocked;
      score += ok ? 1 : 0;
      std::printf(" %16s", !outcome.benign_works ? "BENIGN-BROKEN"
                           : cb_blocked          ? "blocked"
                                                 : "BREACHED");
    }
    benign_ok[config.label] = all_benign;
    std::printf(" %5d/%zu\n", score, vulns.size());
  }
  std::printf("\n");

  bench::ClaimChecker claims;
  claims.check(benign_ok.at("baseline") && benign_ok.at("cfi") && benign_ok.at("canary") &&
                   benign_ok.at("cfi+canary"),
               "no defense breaks benign functionality");
  claims.check(!blocked["baseline"]["vuln_fptr"] && !blocked["baseline"]["vuln_stack"] &&
                   !blocked["baseline"]["vuln_table"] && !blocked["baseline"]["vuln_magic"],
               "the Null baseline blocks nothing");
  claims.check(blocked["cfi"]["vuln_fptr"] && blocked["cfi"]["vuln_table"] &&
                   blocked["cfi"]["vuln_magic"],
               "CFI blocks the forward-edge hijacks");
  claims.check(!blocked["cfi"]["vuln_stack"],
               "CFI alone is breached by the return overwrite (the 'breached once' analogue)");
  claims.check(blocked["cfi+canary"]["vuln_fptr"] && blocked["cfi+canary"]["vuln_stack"] &&
                   blocked["cfi+canary"]["vuln_table"] && blocked["cfi+canary"]["vuln_magic"],
               "CFI+canary blocks every exploit");
  return claims.finish();
}
