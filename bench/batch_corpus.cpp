// Corpus-scale batch-rewrite benchmark: the full 62-CB corpus through the
// BatchRewriter at 1 (serial reference), 2, 4 and 8 workers.
//
// Emits machine-readable JSON (BENCH_corpus.json; see tools/run_bench.sh
// for the format contract) recording per-run wall time, per-stage
// percentiles, success/failure counts, the speedup of each pool size over
// the serial run, and whether every pool size produced byte-identical
// images to the serial pass (it must -- the engine is deterministic by
// construction).
//
//   batch_corpus [--out=BENCH_corpus.json] [--repeats=N]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch_rewriter.h"
#include "cgc/generator.h"
#include "zelf/io.h"

namespace {

using namespace zipr;

constexpr int kPools[] = {1, 2, 4, 8};

struct RunRecord {
  int jobs = 0;
  double wall_ms = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  batch::BatchStats stats;
};

std::uint64_t fnv1a(const Bytes& b, std::uint64_t h) {
  for (Byte c : b) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Order-sensitive digest of every output image in the batch.
std::uint64_t digest_outputs(const batch::BatchResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& item : r.items) {
    if (!item.result.ok()) continue;
    h = fnv1a(zelf::write_image(item.result->image), h);
  }
  return h;
}

void emit_percentiles(std::FILE* f, const char* name, const batch::StagePercentiles& p,
                      const char* trailing) {
  std::fprintf(f,
               "      \"%s\": {\"p50_ms\": %.3f, \"p90_ms\": %.3f, \"p99_ms\": %.3f, "
               "\"max_ms\": %.3f}%s\n",
               name, p.p50_ms, p.p90_ms, p.p99_ms, p.max_ms, trailing);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_corpus.json";
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--repeats=", 10) == 0) repeats = std::atoi(argv[i] + 10);
  }
  if (repeats < 1) repeats = 1;

  // Materialize the corpus once up front so every run measures pure
  // batch-rewrite wall time over identical inputs.
  std::vector<zelf::Image> images;
  for (const auto& spec : cgc::cfe_corpus()) {
    auto cb = cgc::generate_cb(spec);
    if (!cb.ok()) {
      std::fprintf(stderr, "CB generation failed: %s\n", cb.error().message.c_str());
      return 1;
    }
    images.push_back(std::move(cb->image));
  }
  std::printf("== batch corpus: %zu CBs x {1,2,4,8} workers (best of %d) ==\n", images.size(),
              repeats);

  std::vector<RunRecord> runs;
  std::uint64_t serial_digest = 0;
  bool deterministic = true;
  for (int jobs : kPools) {
    batch::BatchOptions opts;
    opts.jobs = jobs;
    RunRecord best;
    std::uint64_t digest = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      batch::BatchResult r = batch::rewrite_batch(images, opts);
      if (rep == 0) digest = digest_outputs(r);
      if (rep == 0 || r.stats.wall_ms < best.wall_ms) {
        best.jobs = jobs;
        best.wall_ms = r.stats.wall_ms;
        best.succeeded = r.stats.succeeded;
        best.failed = r.stats.failed;
        best.stats = r.stats;
      }
    }
    if (jobs == 1) serial_digest = digest;
    bool matches = digest == serial_digest;
    deterministic &= matches;
    runs.push_back(best);
    std::printf("  jobs=%d  wall %8.1f ms  ok %zu  failed %zu  outputs %s serial\n", jobs,
                best.wall_ms, best.succeeded, best.failed,
                matches ? "identical to" : "DIVERGE from");
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"batch_corpus\",\n");
  std::fprintf(f, "  \"corpus_size\": %zu,\n", images.size());
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::max(1u, std::thread::hardware_concurrency()));
  std::fprintf(f, "  \"outputs_identical_across_pool_sizes\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    std::fprintf(f, "    {\"jobs\": %d, \"wall_ms\": %.3f, \"succeeded\": %zu, \"failed\": %zu,\n",
                 r.jobs, r.wall_ms, r.succeeded, r.failed);
    std::fprintf(f, "     \"speedup_vs_serial\": %.3f,\n",
                 r.wall_ms > 0 ? runs[0].wall_ms / r.wall_ms : 0.0);
    std::fprintf(f, "     \"stage_ms\": {\n");
    emit_percentiles(f, "ir", r.stats.ir, ",");
    emit_percentiles(f, "transform", r.stats.transform, ",");
    emit_percentiles(f, "reassembly", r.stats.reassembly, ",");
    emit_percentiles(f, "item_total", r.stats.item_total, "");
    std::fprintf(f, "    }}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Correctness gates (speedup is hardware-dependent and NOT gated here:
  // on a 1-core container every pool size necessarily runs ~1x).
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: parallel outputs diverge from serial\n");
    return 1;
  }
  for (const RunRecord& r : runs)
    if (r.failed != 0) {
      std::fprintf(stderr, "FAIL: %zu corpus rewrites failed at jobs=%d\n", r.failed, r.jobs);
      return 1;
    }
  return 0;
}
