// Tests for the parallel batch-rewrite engine: the bounded task queue, the
// worker pool, and BatchRewriter's determinism / fault-isolation / stats
// contracts. The stress tests run valid and corrupt inputs concurrently and
// are the tier-1 workload for the TSan configuration (`make tsan_smoke`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch_rewriter.h"
#include "batch/task_queue.h"
#include "batch/worker_pool.h"
#include "testing_util.h"
#include "zelf/io.h"

namespace zipr {
namespace {

using batch::BatchOptions;
using batch::BatchResult;
using batch::BatchRewriter;
using batch::BatchTask;
using batch::TaskQueue;
using batch::WorkerPool;
using ::zipr::testing::must_assemble;

// ---- TaskQueue ----

TEST(TaskQueue, FifoOrder) {
  TaskQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(TaskQueue, CloseDrainsThenEndsStream) {
  TaskQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // closed: new pushes fail
  EXPECT_EQ(q.pop(), 1);    // pending items stay poppable
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);  // drained: end of stream
}

TEST(TaskQueue, FullQueueAppliesBackpressure) {
  TaskQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::atomic<bool> second_pushed{false};
  std::jthread producer([&] {
    EXPECT_TRUE(q.push(1));  // must block until the consumer pops
    second_pushed = true;
  });
  // The producer cannot finish while the queue is full. (A sleep cannot
  // prove blocking, but it makes a broken non-blocking push fail reliably.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.pop(), 0);
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(TaskQueue, CloseWakesBlockedProducer) {
  TaskQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::atomic<bool> push_returned{false};
  std::jthread producer([&] {
    EXPECT_FALSE(q.push(1));  // blocked on full queue, then woken by close
    push_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
}

// ---- WorkerPool ----

TEST(WorkerPool, RunsEverySubmittedTask) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) pool.submit([&sum, i] { sum += i; });
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(WorkerPool, WaitIdleAllowsReuseAcrossRounds) {
  WorkerPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(WorkerPool, SubmitAfterShutdownFails) {
  WorkerPool pool(2);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  pool.wait_idle();  // the rejected submit must not leave in_flight stuck
}

// ---- shutdown edges (the serve engine's close() path leans on these) ----

TEST(WorkerPool, ShutdownWakesMultipleBlockedProducers) {
  // One slow worker, capacity-1 queue: several producers block inside
  // submit() simultaneously; shutdown() must wake every one of them and
  // each must observe the rejection (false), with wait_idle() consistent.
  auto pool = std::make_unique<WorkerPool>(1, 1);
  std::atomic<bool> release{false};
  pool->submit([&] {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  constexpr int kProducers = 4;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::jthread> producers;
  for (int i = 0; i < kProducers; ++i)
    producers.emplace_back([&] {
      if (pool->submit([] {}))
        ++accepted;
      else
        ++rejected;
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release = true;   // let the slow task finish so shutdown can join
  pool->shutdown();  // closes the queue: every blocked producer wakes
  for (auto& t : producers) t.join();

  // Producers that won a queue slot before close ran; the rest were
  // rejected. Nobody is left blocked and the accounting balances.
  EXPECT_EQ(accepted.load() + rejected.load(), kProducers);
  pool->wait_idle();
  pool.reset();  // second shutdown via destructor: idempotent
}

TEST(WorkerPool, ShutdownDrainsQueuedTasksBeforeJoining) {
  // Tasks accepted before shutdown() must RUN, not be dropped: the serve
  // engine's close() promises every accepted future resolves.
  std::atomic<int> ran{0};
  {
    WorkerPool pool(1, 16);
    std::atomic<bool> gate{false};
    pool.submit([&] {
      while (!gate.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    for (int i = 0; i < 10; ++i) pool.submit([&ran] { ++ran; });  // all queued
    gate = true;
    pool.shutdown();
  }
  EXPECT_EQ(ran.load(), 10) << "shutdown dropped accepted tasks";
}

TEST(WorkerPool, WaitIdleDuringShutdownReturns) {
  WorkerPool pool(2);
  for (int i = 0; i < 8; ++i)
    pool.submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); });
  std::jthread waiter([&] { pool.wait_idle(); });
  pool.shutdown();  // drains the 8 tasks; wait_idle sees in_flight hit 0
  waiter.join();
  pool.wait_idle();  // and again after shutdown: immediate
}

TEST(WorkerPool, ConcurrentShutdownCallsAreSafe) {
  for (int round = 0; round < 8; ++round) {
    WorkerPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 4; ++i) pool.submit([&ran] { ++ran; });
    std::vector<std::jthread> closers;
    for (int i = 0; i < 4; ++i) closers.emplace_back([&] { pool.shutdown(); });
    for (auto& t : closers) t.join();
    EXPECT_EQ(ran.load(), 4);
    EXPECT_FALSE(pool.submit([] {}));
  }
}

TEST(WorkerPool, EffectiveJobsClampsToTaskCount) {
  EXPECT_EQ(batch::effective_jobs(8, 3), 3u);
  EXPECT_EQ(batch::effective_jobs(2, 100), 2u);
  EXPECT_EQ(batch::effective_jobs(4, 0), 1u);  // empty batch still sane
  EXPECT_GE(batch::effective_jobs(0, 100), 1u);  // 0 = hardware concurrency
  EXPECT_GE(batch::effective_jobs(-1, 100), 1u);
}

TEST(WorkerPool, ParallelForHitsEveryIndexOnce) {
  for (int jobs : {1, 2, 4, 8}) {
    constexpr std::size_t kN = 64;
    std::vector<std::atomic<int>> hits(kN);
    batch::parallel_for(jobs, kN, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
  }
}

// ---- BatchRewriter ----

// A family of small but distinct programs for corpus-style batches.
std::string program_source(int i) {
  std::string src = ".entry main\n.text\nmain:\n  movi r2, 0\n";
  for (int k = 0; k <= i % 4; ++k)
    src += "  addi r2, " + std::to_string(7 * i + k + 1) + "\n";
  src += R"(
  call f
  movi r0, 1
  mov r1, r2
  syscall
f:
  addi r2, 5
  ret
)";
  return src;
}

// Six pins one byte apart overflow the sled's capacity: rewrite fails with
// kUnsupported (see zipr_test's DenseRunBeyondCapacityFailsLoudly).
zelf::Image corrupt_image() {
  std::string src = ".entry main\n.text\nmain:\n  jmpt r0, table\n";
  for (int i = 0; i < 6; ++i) src += "t" + std::to_string(i) + ": push r1\n";
  src += "  hlt\n.rodata\ntable: .quad t0, t1, t2, t3, t4, t5\n  .quad 0\n";
  return must_assemble(src);
}

TEST(BatchRewriter, ParallelOutputsAreByteIdenticalToSerial) {
  std::vector<zelf::Image> images;
  for (int i = 0; i < 10; ++i) images.push_back(must_assemble(program_source(i)));

  BatchOptions serial;
  serial.jobs = 1;
  BatchResult a = batch::rewrite_batch(images, serial);

  BatchOptions parallel;
  parallel.jobs = 4;
  BatchResult b = batch::rewrite_batch(images, parallel);

  ASSERT_EQ(a.items.size(), images.size());
  ASSERT_EQ(b.items.size(), images.size());
  EXPECT_EQ(a.stats.failed, 0u);
  EXPECT_EQ(b.stats.failed, 0u);
  for (std::size_t i = 0; i < images.size(); ++i) {
    ASSERT_TRUE(a.items[i].result.ok()) << a.items[i].result.error().message;
    ASSERT_TRUE(b.items[i].result.ok()) << b.items[i].result.error().message;
    EXPECT_EQ(a.items[i].name, b.items[i].name);
    EXPECT_EQ(zelf::write_image(a.items[i].result->image),
              zelf::write_image(b.items[i].result->image))
        << "image " << i << " diverges between serial and 4-worker runs";
  }
}

TEST(BatchRewriter, ResultOrderMatchesSubmissionOrder) {
  std::vector<BatchTask> tasks;
  for (int i = 0; i < 16; ++i)
    tasks.push_back({"task-" + std::to_string(i), must_assemble(program_source(i)), std::nullopt});
  BatchOptions opts;
  opts.jobs = 8;
  BatchResult r = BatchRewriter(opts).run(std::move(tasks));
  ASSERT_EQ(r.items.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.items[i].name, "task-" + std::to_string(i));
}

TEST(BatchRewriter, FaultsAreIsolatedAndCountedByKind) {
  std::vector<BatchTask> tasks;
  tasks.push_back({"good-0", must_assemble(program_source(0)), std::nullopt});
  tasks.push_back({"unsupported", corrupt_image(), std::nullopt});
  tasks.push_back({"good-1", must_assemble(program_source(1)), std::nullopt});
  tasks.push_back(
      {"factory-error",
       batch::ImageFactory([]() -> Result<zelf::Image> { return Error::parse("bad bytes"); }),
       std::nullopt});
  tasks.push_back({"throwing-factory", batch::ImageFactory([]() -> Result<zelf::Image> {
                     throw std::runtime_error("boom");
                   }),
                   std::nullopt});
  tasks.push_back({"empty-factory", batch::ImageFactory(), std::nullopt});
  tasks.push_back({"good-2", must_assemble(program_source(2)), std::nullopt});

  BatchOptions opts;
  opts.jobs = 4;
  BatchResult r = BatchRewriter(opts).run(std::move(tasks));
  ASSERT_EQ(r.items.size(), 7u);

  EXPECT_TRUE(r.items[0].result.ok());
  EXPECT_TRUE(r.items[2].result.ok());
  EXPECT_TRUE(r.items[6].result.ok());

  ASSERT_FALSE(r.items[1].result.ok());
  EXPECT_EQ(r.items[1].result.error().kind, Error::Kind::kUnsupported);
  ASSERT_FALSE(r.items[3].result.ok());
  EXPECT_EQ(r.items[3].result.error().kind, Error::Kind::kParse);
  ASSERT_FALSE(r.items[4].result.ok());
  EXPECT_EQ(r.items[4].result.error().kind, Error::Kind::kInternal);
  ASSERT_FALSE(r.items[5].result.ok());
  EXPECT_EQ(r.items[5].result.error().kind, Error::Kind::kInvalidArgument);

  EXPECT_EQ(r.stats.total, 7u);
  EXPECT_EQ(r.stats.succeeded, 3u);
  EXPECT_EQ(r.stats.failed, 4u);
  using K = Error::Kind;
  EXPECT_EQ(r.stats.failures_by_kind[static_cast<std::size_t>(K::kUnsupported)], 1u);
  EXPECT_EQ(r.stats.failures_by_kind[static_cast<std::size_t>(K::kParse)], 1u);
  EXPECT_EQ(r.stats.failures_by_kind[static_cast<std::size_t>(K::kInternal)], 1u);
  EXPECT_EQ(r.stats.failures_by_kind[static_cast<std::size_t>(K::kInvalidArgument)], 1u);
}

TEST(BatchRewriter, PerTaskOptionsOverrideBatchDefaults) {
  zelf::Image img = must_assemble(program_source(3));
  RewriteOptions alt;
  alt.placement = rewriter::PlacementKind::kDiversity;
  alt.seed = 12345;

  std::vector<BatchTask> tasks;
  tasks.push_back({"default", img, std::nullopt});
  tasks.push_back({"override", img, alt});
  BatchResult r = BatchRewriter(BatchOptions{}).run(std::move(tasks));
  ASSERT_TRUE(r.items[0].result.ok());
  ASSERT_TRUE(r.items[1].result.ok());
  EXPECT_NE(r.items[0].result->image.text().bytes, r.items[1].result->image.text().bytes)
      << "per-task options were ignored";
}

TEST(BatchRewriter, EmptyBatchIsANoOp) {
  BatchResult r = BatchRewriter(BatchOptions{}).run({});
  EXPECT_TRUE(r.items.empty());
  EXPECT_EQ(r.stats.total, 0u);
  EXPECT_EQ(r.stats.succeeded, 0u);
  EXPECT_EQ(r.stats.failed, 0u);
}

TEST(BatchRewriter, StatsPercentilesAreOrdered) {
  std::vector<zelf::Image> images;
  for (int i = 0; i < 8; ++i) images.push_back(must_assemble(program_source(i)));
  BatchOptions opts;
  opts.jobs = 2;
  BatchResult r = batch::rewrite_batch(images, opts);
  ASSERT_EQ(r.stats.succeeded, images.size());
  EXPECT_EQ(r.stats.jobs, 2u);
  EXPECT_GT(r.stats.wall_ms, 0.0);
  for (const batch::StagePercentiles* p :
       {&r.stats.ir, &r.stats.transform, &r.stats.reassembly, &r.stats.item_total}) {
    EXPECT_LE(p->p50_ms, p->p90_ms);
    EXPECT_LE(p->p90_ms, p->p99_ms);
    EXPECT_LE(p->p99_ms, p->max_ms);
  }
  // Stage times nest inside the per-item wall time.
  EXPECT_GT(r.stats.item_total.max_ms, 0.0);
}

// ---- stress: valid and corrupt inputs concurrently ----
//
// The ASan/TSan workhorse: many rounds of mixed good/bad tasks on a wide
// pool, verifying isolation and determinism every round.
TEST(BatchRewriter, StressMixedCorpusUnderContention) {
  constexpr int kTasks = 24;
  constexpr int kRounds = 4;

  std::vector<Bytes> reference;  // serialized outputs of round 0's successes
  for (int round = 0; round < kRounds; ++round) {
    std::vector<BatchTask> tasks;
    for (int i = 0; i < kTasks; ++i) {
      if (i % 3 == 2) {
        if (i % 2 == 0) {
          tasks.push_back({"bad-" + std::to_string(i), corrupt_image(), std::nullopt});
        } else {
          tasks.push_back({"bad-" + std::to_string(i),
                           batch::ImageFactory([i]() -> Result<zelf::Image> {
                             if (i % 6 == 1) throw std::runtime_error("factory blew up");
                             return Error::decode("synthetic decode failure");
                           }),
                           std::nullopt});
        }
      } else {
        // Lazy factories exercise concurrent materialization too.
        tasks.push_back({"good-" + std::to_string(i),
                         batch::ImageFactory([i]() -> Result<zelf::Image> {
                           return must_assemble(program_source(i));
                         }),
                         std::nullopt});
      }
    }

    BatchOptions opts;
    opts.jobs = 8;
    BatchResult r = BatchRewriter(opts).run(std::move(tasks));
    ASSERT_EQ(r.items.size(), static_cast<std::size_t>(kTasks));

    std::vector<Bytes> outputs;
    for (int i = 0; i < kTasks; ++i) {
      if (i % 3 == 2) {
        EXPECT_FALSE(r.items[i].result.ok()) << "corrupt task " << i << " succeeded";
      } else {
        ASSERT_TRUE(r.items[i].result.ok())
            << "task " << i << ": " << r.items[i].result.error().message;
        outputs.push_back(zelf::write_image(r.items[i].result->image));
      }
    }
    EXPECT_EQ(r.stats.failed, static_cast<std::size_t>(kTasks / 3));
    EXPECT_EQ(r.stats.succeeded, static_cast<std::size_t>(kTasks - kTasks / 3));

    if (round == 0) {
      reference = std::move(outputs);
    } else {
      EXPECT_EQ(outputs, reference) << "round " << round << " diverged";
    }
  }
}

}  // namespace
}  // namespace zipr
