// Tests for IRDB text serialization: round trips, determinism, and
// rejection of malformed dumps.
#include <gtest/gtest.h>

#include "analysis/ir_builder.h"
#include "irdb/serialize.h"
#include "testing_util.h"

namespace zipr::irdb {
namespace {

using ::zipr::testing::must_assemble;

Database sample_db() {
  Database db;
  Instruction a;
  a.decoded = isa::make_jmp(0, isa::BranchWidth::kRel32);
  a.orig_addr = 0x400000;
  a.orig_bytes = {0xE9, 0, 0, 0, 0};
  InsnId ja = db.add_instruction(std::move(a));

  Instruction b;
  b.decoded = isa::make_ret();
  b.orig_addr = 0x400005;
  b.orig_bytes = {0xC3};
  InsnId rb = db.add_instruction(std::move(b));

  db.insn(ja).target = rb;

  Instruction v;
  v.verbatim = true;
  v.orig_addr = 0x400006;
  v.orig_bytes = {0x00, 0x01, 0x02};
  db.add_instruction(std::move(v));

  Instruction lea;
  lea.decoded.op = isa::Op::kLea;
  lea.decoded.ra = 1;
  lea.decoded.length = 6;
  lea.data_ref = 0x600010;
  InsnId l = db.add_instruction(std::move(lea));
  db.insn(rb).fallthrough = l;

  EXPECT_TRUE(db.pin(0x400000, ja).ok());
  EXPECT_TRUE(db.pin(0x400005, rb).ok());

  Function f;
  f.name = "func_400000";
  f.entry = ja;
  f.members = {ja, rb};
  FuncId fid = db.add_function(std::move(f));
  db.insn(ja).function = fid;
  db.insn(rb).function = fid;
  return db;
}

TEST(Serialize, RoundTripPreservesEverything) {
  Database db = sample_db();
  std::string text = serialize(db);
  auto back = deserialize(text);
  ASSERT_TRUE(back.ok()) << back.error().message;

  EXPECT_EQ(back->insn_count(), db.insn_count());
  EXPECT_EQ(back->pins(), db.pins());
  EXPECT_EQ(back->function_count(), db.function_count());
  EXPECT_EQ(back->insn(1).decoded.op, isa::Op::kJmp);
  EXPECT_EQ(back->insn(1).target, 2u);
  EXPECT_EQ(back->insn(1).orig_addr, 0x400000u);
  EXPECT_EQ(back->insn(2).fallthrough, 4u);
  EXPECT_TRUE(back->insn(3).verbatim);
  EXPECT_EQ(back->insn(3).orig_bytes, (Bytes{0x00, 0x01, 0x02}));
  EXPECT_EQ(back->insn(4).data_ref, 0x600010u);
  EXPECT_EQ(back->function(1).name, "func_400000");
  EXPECT_EQ(back->function(1).members, (std::vector<InsnId>{1, 2}));
}

TEST(Serialize, CanonicalFormIsStable) {
  Database db = sample_db();
  std::string once = serialize(db);
  auto back = deserialize(once);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(serialize(*back), once);
}

TEST(Serialize, RealProgramIrRoundTrips) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r1, helper
      callr r1
      lea r2, konst
      movi r0, 1
      movi r1, 0
      syscall
    helper:
      movi r1, 9
      ret
    blob:
      .byte 0x00, 0x13, 0x37
    .rodata
    konst: .quad 5
  )");
  auto prog = analysis::build_ir(img);
  ASSERT_TRUE(prog.ok()) << prog.error().message;

  std::string text = serialize(prog->db);
  auto back = deserialize(text);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back->insn_count(), prog->db.insn_count());
  EXPECT_EQ(back->pins(), prog->db.pins());
  EXPECT_EQ(serialize(*back), text);
}

struct BadDump {
  const char* name;
  const char* text;
};

class SerializeErrorTest : public ::testing::TestWithParam<BadDump> {};

TEST_P(SerializeErrorTest, Rejected) {
  EXPECT_FALSE(deserialize(GetParam().text).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SerializeErrorTest,
    ::testing::Values(
        BadDump{"Empty", ""},
        BadDump{"NoHeader", "insn 1 bytes=90\n"},
        BadDump{"BadHeader", "zipr-irdb 99\n"},
        BadDump{"BadHex", "zipr-irdb 1\ninsn 1 bytes=zz\n"},
        BadDump{"OddHex", "zipr-irdb 1\ninsn 1 bytes=901\n"},
        BadDump{"NoBytes", "zipr-irdb 1\ninsn 1 orig=4\n"},
        BadDump{"UndecodableBytes", "zipr-irdb 1\ninsn 1 bytes=00\n"},
        BadDump{"NonSequentialId", "zipr-irdb 1\ninsn 5 bytes=90\n"},
        BadDump{"DanglingPin", "zipr-irdb 1\ninsn 1 bytes=90\npin 4194304 9\n"},
        BadDump{"DanglingTarget", "zipr-irdb 1\ninsn 1 bytes=90 tgt=7\n"},
        BadDump{"UnknownRecord", "zipr-irdb 1\nfrob 1 2 3\n"},
        BadDump{"UnknownField", "zipr-irdb 1\ninsn 1 bytes=90 wat=3\n"}),
    [](const ::testing::TestParamInfo<BadDump>& info) { return info.param.name; });

}  // namespace
}  // namespace zipr::irdb
