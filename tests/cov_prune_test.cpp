// Tests for CFG-aware selective coverage instrumentation: the pruned and
// conservative emission paths must preserve behaviour, the prune counters
// must reflect the shapes that earn them, and -- the headline guarantee --
// a pruned fuzzing campaign must find the same bugs as an unpruned one.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "cgc/exploits.h"
#include "fuzz/fuzzer.h"
#include "testing_util.h"

namespace zipr {
namespace {

using ::zipr::testing::expect_equivalent;
using ::zipr::testing::must_assemble;
using ::zipr::testing::must_rewrite;

RewriteOptions cov_options(const char* transform, bool prune) {
  RewriteOptions opts;
  opts.transforms = {transform};
  opts.cov_prune = prune;
  return opts;
}

// A diamond over a compare: the join is post-dominance-equivalent to the
// top, so one of the two merged probe sites is pruned as dominated.
constexpr const char* kDiamond = R"(
  .entry main
  .text
  main:
    cmpi r0, 1
    jeq left
    movi r3, 101
    jmp join
  left:
    movi r3, 102
  join:
    addi r3, 1
    movi r0, 1
    movi r1, 0
    syscall
)";

// A chain of unconditionally-linked blocks: every jmp target is a probe
// site with a single predecessor inside its own equivalence class.
constexpr const char* kChain = R"(
  .entry main
  .text
  main:
    movi r3, 1
    jmp b
  b:
    addi r3, 1
    jmp c
  c:
    addi r3, 1
    jmp d
  d:
    movi r0, 1
    movi r1, 0
    syscall
)";

// A jcc whose target IS its fallthrough: both CFG edges connect the same
// block pair, so edge-mode coverage cannot tell them apart without
// splitting one through a trampoline.
constexpr const char* kDoubleEdge = R"(
  .entry main
  .text
  main:
    cmpi r0, 0
    jeq next
  next:
    movi r0, 1
    movi r1, 0
    syscall
)";

TEST(CovPrune, DiamondCountsDominatedSites) {
  auto img = must_assemble(kDiamond);
  auto r = must_rewrite(img, cov_options("cov", true));
  EXPECT_GE(r.instrumentation.pruned_dominated, 1u);
  EXPECT_LT(r.instrumentation.probes, r.instrumentation.candidate_sites);
  expect_equivalent(img, r.image);
}

TEST(CovPrune, ChainCountsCollapsedSites) {
  auto img = must_assemble(kChain);
  auto r = must_rewrite(img, cov_options("cov", true));
  EXPECT_GT(r.instrumentation.collapsed_single_pred, 0u);
  expect_equivalent(img, r.image);
}

TEST(CovPrune, DoubleEdgeJccSplitsOnce) {
  auto img = must_assemble(kDoubleEdge);
  auto r = must_rewrite(img, cov_options("cov", true));
  EXPECT_EQ(r.instrumentation.split_critical_edges, 1u);
  expect_equivalent(img, r.image);
}

TEST(CovPrune, BlockModeNeverSplitsEdges) {
  auto img = must_assemble(kDoubleEdge);
  auto r = must_rewrite(img, cov_options("cov-block", true));
  EXPECT_EQ(r.instrumentation.split_critical_edges, 0u);
  expect_equivalent(img, r.image);
}

TEST(CovPrune, DeadRegistersElideSaves) {
  // The programs above touch only r0/r1/r3, so liveness hands the stubs
  // free scratch registers and the push/pop pairs disappear.
  auto img = must_assemble(kChain);
  auto r = must_rewrite(img, cov_options("cov", true));
  EXPECT_GT(r.instrumentation.elided_reg_saves, 0u);
}

TEST(CovPrune, ConservativePathKeepsLegacyAccounting) {
  // With pruning off the transform reproduces the historical emission:
  // every candidate site is probed or flag-skipped, and no CFG-derived
  // counter may fire.
  for (const char* src : {kDiamond, kChain, kDoubleEdge}) {
    auto img = must_assemble(src);
    auto r = must_rewrite(img, cov_options("cov", false));
    const auto& in = r.instrumentation;
    EXPECT_EQ(in.probes + in.skipped_flags, in.candidate_sites);
    EXPECT_EQ(in.pruned_dominated, 0u);
    EXPECT_EQ(in.collapsed_single_pred, 0u);
    EXPECT_EQ(in.split_critical_edges, 0u);
    EXPECT_EQ(in.elided_flag_saves, 0u);
    EXPECT_EQ(in.elided_reg_saves, 0u);
    expect_equivalent(img, r.image);
  }
}

TEST(CovPrune, PrunedEmitsFewerProbesSameBehaviour) {
  for (const char* transform : {"cov", "cov-block"}) {
    for (const char* src : {kDiamond, kChain}) {
      auto img = must_assemble(src);
      auto on = must_rewrite(img, cov_options(transform, true));
      auto off = must_rewrite(img, cov_options(transform, false));
      EXPECT_LT(on.instrumentation.probes, off.instrumentation.probes)
          << transform << " pruning did not reduce probe count";
      expect_equivalent(img, on.image);
      expect_equivalent(img, off.image);
      expect_equivalent(img, on.image, /*input=*/{}, /*seed=*/99);
    }
  }
}

// ---- differential bug rediscovery ----

/// Fuzz an instrumented build of `vuln` and triage every crash by
/// replaying its input on the ORIGINAL image. The key is the replayed
/// fault class: unlike the fuzzer's own path-sensitive crash identity
/// (or the faulting pc, which mutation steers to arbitrary addresses
/// for the same planted out-of-bounds bug), the fault class survives a
/// change of instrumentation.
std::set<vm::Fault> triage_keys(const cgc::VulnCb& vuln, std::uint64_t seed, bool prune) {
  auto opts = cov_options("cov", prune);
  if (vuln.laf_gated) opts.transforms.insert(opts.transforms.begin(), "laf");
  auto rewritten = must_rewrite(vuln.image, opts);
  fuzz::FuzzOptions fopts;
  fopts.seed = seed;
  fopts.jobs = 4;
  fopts.max_execs = 6000;
  auto result = fuzz::fuzz(rewritten.image, {vuln.benign_input}, fopts);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  if (!result.ok()) return {};
  std::set<vm::Fault> keys;
  for (const auto& crash : result->crashes) {
    auto replay = vm::run_program(vuln.image, crash.input);
    if (!replay.exited && replay.fault != vm::Fault::kGasExhausted)
      keys.insert(replay.fault);
  }
  return keys;
}

TEST(CovPruneDifferential, SameBugsWithAndWithoutPruning) {
  // The planted-bug corpus must be rediscovered identically whether or
  // not the instrumentation was pruned, across independent campaign
  // seeds: pruning may drop probes, never signal.
  for (const auto& vuln : cgc::vulnerable_corpus()) {
    for (std::uint64_t seed : {7ull, 11ull}) {
      auto pruned = triage_keys(vuln, seed, /*prune=*/true);
      auto full = triage_keys(vuln, seed, /*prune=*/false);
      EXPECT_FALSE(full.empty()) << vuln.name << " seed " << seed
                                 << ": unpruned campaign found nothing";
      EXPECT_EQ(pruned, full) << vuln.name << " seed " << seed
                              << ": pruning changed the set of rediscovered bugs";
    }
  }
}

}  // namespace
}  // namespace zipr
