// Tests for the CFG analysis layer: basic-block discovery, dominator and
// post-dominator trees, backward register+flag liveness, and its agreement
// with the historical conservative flag walk the coverage transform used.
#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/ir_builder.h"
#include "analysis/liveness.h"
#include "testing_util.h"

namespace zipr::analysis {
namespace {

using ::zipr::testing::must_assemble;

struct CfgFixture {
  IrProgram prog;
  Cfg cfg;

  explicit CfgFixture(std::string_view src) {
    auto p = build_ir(must_assemble(src));
    EXPECT_TRUE(p.ok()) << (p.ok() ? "" : p.error().message);
    if (!p.ok()) std::abort();
    prog = std::move(p).value();
    cfg = Cfg::build(prog);
  }

  /// Block containing a `movi rN, imm` with this immediate -- the tests
  /// plant distinctive immediates instead of hand-computing addresses.
  BlockId block_with_imm(std::int64_t imm) const {
    for (BlockId b = 0; b < cfg.size(); ++b)
      for (irdb::InsnId id : cfg.block(b).insns) {
        const auto& in = prog.db.insn(id).decoded;
        if ((in.op == isa::Op::kMovI || in.op == isa::Op::kMovI64) && in.imm == imm) return b;
      }
    return kNoBlock;
  }

  std::uint64_t text_end() const {
    const zelf::Segment& text = prog.original.text();
    return text.vaddr + text.bytes.size();
  }

  BlockId entry_block() const { return cfg.block_of(prog.db.pinned_at(prog.original.entry)); }
};

// ---- dominators ----

TEST(Dominators, Diamond) {
  CfgFixture f(R"(
    .entry main
    .text
    main:
      movi r3, 100
      cmpi r0, 1
      jeq left
      movi r3, 101     ; right arm (fallthrough)
      jmp join
    left:
      movi r3, 102
    join:
      movi r3, 103
      movi r0, 1
      movi r1, 0
      syscall
  )");
  BlockId top = f.block_with_imm(100), right = f.block_with_imm(101);
  BlockId left = f.block_with_imm(102), join = f.block_with_imm(103);
  ASSERT_NE(top, kNoBlock);
  ASSERT_NE(right, kNoBlock);
  ASSERT_NE(left, kNoBlock);
  ASSERT_NE(join, kNoBlock);
  EXPECT_EQ(f.cfg.idom()[left], top);
  EXPECT_EQ(f.cfg.idom()[right], top);
  EXPECT_EQ(f.cfg.idom()[join], top);  // neither arm dominates the join
  EXPECT_TRUE(f.cfg.dominates(top, join));
  EXPECT_FALSE(f.cfg.dominates(left, join));
  EXPECT_FALSE(f.cfg.dominates(right, join));
  // Post-dominance mirrors: the join post-dominates everything above it.
  EXPECT_TRUE(f.cfg.postdominates(join, top));
  EXPECT_TRUE(f.cfg.postdominates(join, left));
  EXPECT_TRUE(f.cfg.postdominates(join, right));
  EXPECT_FALSE(f.cfg.postdominates(left, top));
}

TEST(Dominators, LoopWithSelfEdge) {
  CfgFixture f(R"(
    .entry main
    .text
    main:
      movi r2, 100
    loop:
      movi r3, 101
      addi r2, 1
      cmpi r2, 3
      jlt loop
      movi r3, 102
      movi r0, 1
      movi r1, 0
      syscall
  )");
  BlockId pre = f.block_with_imm(100), loop = f.block_with_imm(101);
  BlockId after = f.block_with_imm(102);
  ASSERT_NE(pre, kNoBlock);
  ASSERT_NE(loop, kNoBlock);
  ASSERT_NE(after, kNoBlock);
  EXPECT_EQ(f.cfg.idom()[loop], pre);
  EXPECT_EQ(f.cfg.idom()[after], loop);
  // The back edge is a self-edge: loop is its own successor and
  // (reflexively) dominates the source of the back edge.
  bool self_edge = false;
  for (BlockId s : f.cfg.block(loop).succs) self_edge |= s == loop;
  EXPECT_TRUE(self_edge);
  EXPECT_TRUE(f.cfg.dominates(loop, loop));
  EXPECT_TRUE(f.cfg.postdominates(after, loop));
}

TEST(Dominators, CriticalEdge) {
  // main has two successors and join has two predecessors, so the
  // main->join edge is critical: neither endpoint can carry an
  // edge-specific probe without splitting.
  CfgFixture f(R"(
    .entry main
    .text
    main:
      movi r3, 100
      cmpi r0, 0
      jeq join
      movi r3, 101
    join:
      movi r3, 102
      movi r0, 1
      movi r1, 0
      syscall
  )");
  BlockId top = f.block_with_imm(100), mid = f.block_with_imm(101);
  BlockId join = f.block_with_imm(102);
  ASSERT_NE(top, kNoBlock);
  ASSERT_NE(mid, kNoBlock);
  ASSERT_NE(join, kNoBlock);
  EXPECT_EQ(f.cfg.block(top).succs.size(), 2u);
  EXPECT_EQ(f.cfg.block(join).preds.size(), 2u);
  EXPECT_EQ(f.cfg.idom()[join], top);
  EXPECT_TRUE(f.cfg.postdominates(join, top));
  EXPECT_FALSE(f.cfg.postdominates(mid, top));
}

TEST(Dominators, ComputedJumpFallsBackToUnknown) {
  // Jump-table targets are pinned, and pinned blocks keep an UNKNOWN
  // predecessor whenever indirect flow exists -- the conservative
  // fallback that keeps the instrumentation pruner honest about
  // computed jumps.
  CfgFixture f(R"(
    .entry main
    .text
    main:
      jmpt r0, table
    case0:
      movi r3, 100
      movi r0, 1
      movi r1, 0
      syscall
    case1:
      movi r3, 101
      movi r0, 1
      movi r1, 0
      syscall
    .rodata
    table: .quad case0, case1
           .quad 0
  )");
  for (std::int64_t imm : {100, 101}) {
    BlockId c = f.block_with_imm(imm);
    ASSERT_NE(c, kNoBlock);
    EXPECT_TRUE(f.cfg.block(c).pinned);
    bool unknown_pred = false;
    for (BlockId p : f.cfg.block(c).preds) unknown_pred |= p == Cfg::kUnknown;
    EXPECT_TRUE(unknown_pred) << "case block lost its conservative UNKNOWN edge";
  }
}

TEST(Dominators, CallEdgesAreInterprocedural) {
  CfgFixture f(R"(
    .entry main
    .text
    main:
      movi r3, 100
      call helper
      movi r3, 101     ; continuation
      movi r0, 1
      movi r1, 0
      syscall
    helper:
      movi r3, 102
      ret
  )");
  BlockId caller = f.block_with_imm(100), cont = f.block_with_imm(101);
  BlockId callee = f.block_with_imm(102);
  ASSERT_NE(caller, kNoBlock);
  ASSERT_NE(cont, kNoBlock);
  ASSERT_NE(callee, kNoBlock);
  // call -> callee entry, callee ret -> continuation: the continuation's
  // coverage is derivable from the callee, not from an opaque edge.
  bool call_edge = false;
  for (BlockId s : f.cfg.block(caller).succs) call_edge |= s == callee;
  EXPECT_TRUE(call_edge);
  bool ret_edge = false;
  for (BlockId p : f.cfg.block(cont).preds) ret_edge |= p == callee;
  EXPECT_TRUE(ret_edge);
  EXPECT_TRUE(f.cfg.dominates(caller, callee));
  EXPECT_TRUE(f.cfg.dominates(callee, cont));
}

// ---- liveness ----

TEST(LivenessTest, FlagsLiveBetweenCompareAndBranch) {
  CfgFixture f(R"(
    .entry main
    .text
    main:
      movi r1, 5
      cmpi r1, 3
      jeq out
      movi r3, 100
    out:
      movi r0, 1
      movi r1, 0
      syscall
  )");
  auto lv = Liveness::compute(f.prog, f.cfg);
  BlockId b = f.entry_block();
  ASSERT_NE(b, kNoBlock);
  const auto& insns = f.cfg.block(b).insns;
  ASSERT_EQ(insns.size(), 3u);  // movi, cmpi, jeq
  EXPECT_FALSE(flags_live(lv.live_before(b, 0)));  // cmpi redefines first
  EXPECT_FALSE(flags_live(lv.live_before(b, 1)));
  EXPECT_TRUE(flags_live(lv.live_before(b, 2)));  // jeq reads them
  // r1 is dead before its own definition, live before the cmpi that
  // reads it.
  EXPECT_FALSE(reg_live(lv.live_before(b, 0), 1));
  EXPECT_TRUE(reg_live(lv.live_before(b, 1), 1));
}

TEST(LivenessTest, PreciseNeverClaimsDeadWhereLegacySaysDead) {
  // The legacy forward walk is the conservative baseline: wherever it
  // reports flags DEAD, the backward dataflow must agree (the reverse
  // may differ -- that differential is the whole point of the pass).
  CfgFixture f(R"(
    .entry main
    .text
    main:
      movi r2, 0
    loop:
      addi r2, 1
      cmpi r2, 5
      jlt loop
      cmpi r2, 9
      jeq odd
      movi r3, 100
      jmp done
    odd:
      movi r3, 101
    done:
      movi r0, 1
      mov r1, r3
      syscall
  )");
  auto lv = Liveness::compute(f.prog, f.cfg);
  for (BlockId b = 3; b < f.cfg.size(); ++b) {
    const auto& blk = f.cfg.block(b);
    if (blk.insns.empty() || blk.opaque) continue;
    if (!flags_live_at(f.prog.db, blk.leader, f.text_end()))
      EXPECT_FALSE(flags_live(lv.live_in(b)))
          << "precise analysis claims flags live where the conservative "
             "walk already proved them dead (block " << b << ")";
  }
}

TEST(LivenessTest, RescuesFlagsAcrossLongFlagFreeCall) {
  // The legacy walk explodes past its 256-row budget inside the long
  // callee and gives up as "live"; the backward dataflow sees the cmpi
  // after the return redefine the flags before the jeq reads them. This
  // is exactly the conservatism the precise pass exists to shed.
  std::string src = R"(
    .entry main
    .text
    main:
      call longfunc
      cmpi r2, 1
      jeq out
      movi r3, 100
    out:
      movi r0, 1
      movi r1, 0
      syscall
    longfunc:
)";
  for (int i = 0; i < 300; ++i) src += "      nop\n";
  src += "      ret\n";
  CfgFixture f(src);
  auto lv = Liveness::compute(f.prog, f.cfg);
  irdb::InsnId entry_row = f.prog.db.pinned_at(f.prog.original.entry);
  ASSERT_NE(entry_row, irdb::kNullInsn);
  BlockId entry_block = f.cfg.block_of(entry_row);
  ASSERT_NE(entry_block, kNoBlock);
  EXPECT_TRUE(flags_live_at(f.prog.db, entry_row, f.text_end()));
  EXPECT_FALSE(flags_live(lv.live_in(entry_block)));
}

TEST(LivenessTest, UnknownAndOpaqueDemandEverything) {
  // A callr makes the continuation reachable only through UNKNOWN: the
  // pass must treat everything as live on that path rather than eliding
  // saves around state it cannot see.
  CfgFixture f(R"(
    .entry main
    .text
    main:
      movi r4, helper
      callr r4
      movi r3, 100
      movi r0, 1
      movi r1, 0
      syscall
    helper:
      movi r3, 101
      ret
  )");
  auto lv = Liveness::compute(f.prog, f.cfg);
  EXPECT_EQ(lv.live_in(Cfg::kUnknown), kAllLive);
  BlockId cont = f.block_with_imm(100);
  ASSERT_NE(cont, kNoBlock);
  bool unknown_pred = false;
  for (BlockId p : f.cfg.block(cont).preds) unknown_pred |= p == Cfg::kUnknown;
  EXPECT_TRUE(unknown_pred);
}

}  // namespace
}  // namespace zipr::analysis
