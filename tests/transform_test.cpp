// Tests for the transformation framework and the built-in transforms:
// registry, mandatory-invariant verification, null/stackpad/canary/cfi
// behaviour preservation, and CFI attack blocking.
#include <gtest/gtest.h>

#include "testing_util.h"
#include "transform/api.h"

namespace zipr::transform {
namespace {

using ::zipr::testing::behaviour_of;
using ::zipr::testing::expect_equivalent;
using ::zipr::testing::must_assemble;
using ::zipr::testing::must_rewrite;

TEST(Registry, BuiltinsAvailable) {
  auto names = registered_transforms();
  for (const char* want : {"null", "cfi", "stackpad", "canary"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end()) << want;
  }
}

TEST(Registry, UnknownNameFails) {
  EXPECT_FALSE(make_transform("does-not-exist").ok());
}

TEST(Registry, UserTransformsRegister) {
  class Custom final : public Transform {
   public:
    std::string name() const override { return "custom-test"; }
    Status apply(TransformContext&) override { return Status::success(); }
  };
  register_transform("custom-test", [] { return std::make_unique<Custom>(); });
  auto t = make_transform("custom-test");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "custom-test");
}

TEST(Mandatory, AcceptsWellFormedIr) {
  auto img = must_assemble(".entry m\n.text\nm: call f\nmovi r0, 1\nsyscall\nf: ret\n");
  auto prog = analysis::build_ir(img);
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(verify_mandatory(*prog).ok());
}

TEST(Mandatory, RejectsBranchWithoutLink) {
  auto img = must_assemble(".entry m\n.text\nm: movi r0, 1\nmovi r1, 0\nsyscall\n");
  auto prog = analysis::build_ir(img);
  ASSERT_TRUE(prog.ok());
  // Sabotage: add a branch row with no target link.
  prog->db.add_new(isa::make_jmp(0, isa::BranchWidth::kRel32));
  EXPECT_FALSE(verify_mandatory(*prog).ok());
}

TEST(Mandatory, RejectsPcRelativeWithoutDataRef) {
  auto img = must_assemble(".entry m\n.text\nm: movi r0, 1\nmovi r1, 0\nsyscall\n");
  auto prog = analysis::build_ir(img);
  ASSERT_TRUE(prog.ok());
  isa::Insn lea;
  lea.op = isa::Op::kLea;
  lea.ra = 1;
  prog->db.add_new(lea);
  EXPECT_FALSE(verify_mandatory(*prog).ok());
}

TEST(Context, AddSegmentRejectsOverlap) {
  auto img = must_assemble(".entry m\n.text\nm: hlt\n");
  auto prog = analysis::build_ir(img);
  ASSERT_TRUE(prog.ok());
  TransformContext ctx(*prog, 1);
  zelf::Segment seg;
  seg.kind = zelf::SegKind::kRodata;
  seg.vaddr = zelf::layout::kTextBase;  // overlaps text
  seg.memsize = 16;
  seg.bytes = Bytes(16, 0);
  EXPECT_FALSE(ctx.add_segment(std::move(seg)).ok());
}

// A program with a stack frame, locals, calls, and indirect control flow;
// used to check each transform preserves behaviour.
const char* kWorkload = R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, inbuf
      movi r3, 8
      syscall
      movi r1, 3
      call compute
      movi r4, emit
      callr r4
      movi r0, 1
      movi r1, 0
      syscall
    compute:
      subi sp, 32
      store [sp+8], r1
      load r2, [sp+8]
      add r1, r2          ; r1 = 2n
      store [sp+16], r1
      load r1, [sp+16]
      addi r1, 1          ; 2n + 1
      addi sp, 32
      ret
    emit:
      subi sp, 16
      store [sp], r1
      movi r0, 2
      movi r1, 1
      mov r2, sp
      movi r3, 8
      syscall
      addi sp, 16
      ret
    .bss
    inbuf: .space 8
)";

class TransformBehaviourTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TransformBehaviourTest, PreservesWorkloadBehaviour) {
  zelf::Image original = must_assemble(kWorkload);
  RewriteOptions opts;
  opts.transforms = {GetParam()};
  RewriteResult r = must_rewrite(original, opts);
  expect_equivalent(original, r.image, Bytes{'a', 'b', 'c'});
  expect_equivalent(original, r.image, Bytes{});
}

INSTANTIATE_TEST_SUITE_P(Builtins, TransformBehaviourTest,
                         ::testing::Values("null", "cfi", "stackpad", "canary"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(TransformStacking, AllThreeSecurityTransformsTogether) {
  zelf::Image original = must_assemble(kWorkload);
  RewriteOptions opts;
  opts.transforms = {"cfi", "stackpad", "canary"};
  RewriteResult r = must_rewrite(original, opts);
  expect_equivalent(original, r.image, Bytes{'x'});
}

TEST(StackPad, GrowsMatchedFrames) {
  zelf::Image original = must_assemble(kWorkload);
  RewriteOptions null_opts;
  RewriteOptions pad_opts;
  pad_opts.transforms = {"stackpad"};
  auto plain = must_rewrite(original, null_opts);
  auto padded = must_rewrite(original, pad_opts);
  // Padding changes the emitted frame immediates, hence the text bytes.
  EXPECT_NE(plain.image.text().bytes, padded.image.text().bytes);
  expect_equivalent(plain.image, padded.image, Bytes{'q'});
}

TEST(Canary, DifferentSeedsDifferentCanaries) {
  zelf::Image original = must_assemble(kWorkload);
  RewriteOptions a, b;
  a.transforms = b.transforms = {"canary"};
  a.seed = 1;
  b.seed = 2;
  auto ra = must_rewrite(original, a);
  auto rb = must_rewrite(original, b);
  EXPECT_NE(ra.image.text().bytes, rb.image.text().bytes);
  expect_equivalent(ra.image, rb.image, Bytes{'z'});
}

// ---- security: the transforms actually stop attacks ----

// A vulnerable service: reads 8 bytes straight into a function-pointer
// slot, then calls through it (a classic control-flow hijack). The
// legitimate input calls `greet`; the exploit overwrites the pointer with
// an address inside `secret` (never a legitimate IBT).
const char* kVulnerableFptr = R"(
    .entry main
    .text
    main:
      movi r4, greet
      movi r6, fslot
      store [r6], r4
      movi r0, 3
      movi r1, 0
      movi r2, fslot          ; BUG: reads attacker bytes over the pointer
      movi r3, 8
      syscall
      movi r6, fslot
      load r4, [r6]
      callr r4
      movi r0, 1
      movi r1, 0
      syscall
    greet:
      movi r0, 2
      movi r1, 1
      movi r2, gmsg
      movi r3, 6
      syscall
      ret
    secret:
      movi r0, 2
      movi r1, 1
      movi r2, smsg
      movi r3, 7
      syscall
      ret
    .rodata
    gmsg: .ascii "hello\n"
    smsg: .ascii "SECRET\n"
    .data
    fslot: .quad 0
)";

Bytes addr_bytes(std::uint64_t v) {
  Bytes b;
  put_u64(b, v);
  return b;
}

TEST(CfiSecurity, LegitimateInputStillWorks) {
  zelf::Image original = must_assemble(kVulnerableFptr);
  // Find greet's address from ground-truth symbols.
  std::uint64_t greet = 0;
  for (const auto& s : original.symbols)
    if (s.name == "greet") greet = s.addr;
  ASSERT_NE(greet, 0u);

  RewriteOptions opts;
  opts.transforms = {"cfi"};
  RewriteResult r = must_rewrite(original, opts);
  auto b = behaviour_of(r.image, addr_bytes(greet));
  EXPECT_TRUE(b.exited);
  EXPECT_EQ(std::string(b.output.begin(), b.output.end()), "hello\n");
}

TEST(CfiSecurity, HijackSucceedsWithoutCfiAndIsBlockedWithIt) {
  zelf::Image original = must_assemble(kVulnerableFptr);
  std::uint64_t secret = 0;
  for (const auto& s : original.symbols)
    if (s.name == "secret") secret = s.addr;
  ASSERT_NE(secret, 0u);
  Bytes exploit = addr_bytes(secret);

  // Baseline (null) rewrite: the hijack works -- SECRET leaks.
  RewriteOptions base;
  RewriteResult plain = must_rewrite(original, base);
  auto hijacked = behaviour_of(plain.image, exploit);
  EXPECT_NE(std::string(hijacked.output.begin(), hijacked.output.end()).find("SECRET"),
            std::string::npos)
      << "exploit should work on the unprotected binary";

  // CFI rewrite: the same input must trap before the transfer.
  RewriteOptions cfi;
  cfi.transforms = {"cfi"};
  RewriteResult guarded = must_rewrite(original, cfi);
  auto blocked = behaviour_of(guarded.image, exploit);
  EXPECT_FALSE(blocked.exited);
  EXPECT_EQ(blocked.fault, vm::Fault::kHalt);
  EXPECT_EQ(std::string(blocked.output.begin(), blocked.output.end()).find("SECRET"),
            std::string::npos);
}

TEST(CfiSecurity, WildTargetOutsideTextIsBlocked) {
  zelf::Image original = must_assemble(kVulnerableFptr);
  RewriteOptions cfi;
  cfi.transforms = {"cfi"};
  RewriteResult guarded = must_rewrite(original, cfi);
  // Jump into the data segment.
  auto blocked = behaviour_of(guarded.image, addr_bytes(zelf::layout::kDataBase));
  EXPECT_FALSE(blocked.exited);
  EXPECT_EQ(blocked.fault, vm::Fault::kHalt);
}

// A vulnerable function: fixed-size stack buffer, attacker-controlled
// length -- the return address can be overwritten.
const char* kVulnerableStack = R"(
    .entry main
    .text
    main:
      call handler
      movi r0, 1
      movi r1, 0
      syscall
    handler:
      subi sp, 32
      ; receive(0, sp, 256) -- BUG: buffer is only 32 bytes
      movi r0, 3
      movi r1, 0
      mov r2, sp
      movi r3, 256
      syscall
      addi sp, 32
      ret
    secret:
      movi r0, 2
      movi r1, 1
      movi r2, smsg
      movi r3, 7
      syscall
      movi r0, 1
      movi r1, 0
      syscall
    .rodata
    smsg: .ascii "SECRET\n"
)";

TEST(CanarySecurity, ReturnOverwriteBlockedByCanary) {
  zelf::Image original = must_assemble(kVulnerableStack);
  std::uint64_t secret = 0;
  for (const auto& s : original.symbols)
    if (s.name == "secret") secret = s.addr;
  ASSERT_NE(secret, 0u);

  // Exploit: 32 bytes of fill, then a new return address.
  Bytes exploit(32, 'A');
  put_u64(exploit, secret);

  RewriteOptions base;
  RewriteResult plain = must_rewrite(original, base);
  auto hijacked = behaviour_of(plain.image, exploit);
  EXPECT_NE(std::string(hijacked.output.begin(), hijacked.output.end()).find("SECRET"),
            std::string::npos)
      << "return-address overwrite should work on the unprotected binary";

  RewriteOptions can;
  can.transforms = {"canary"};
  RewriteResult guarded = must_rewrite(original, can);
  auto blocked = behaviour_of(guarded.image, exploit);
  EXPECT_FALSE(blocked.exited);
  EXPECT_EQ(blocked.fault, vm::Fault::kHalt);
  EXPECT_EQ(std::string(blocked.output.begin(), blocked.output.end()).find("SECRET"),
            std::string::npos);

  // Legitimate short input still works under the canary.
  expect_equivalent(original, guarded.image, Bytes{'o', 'k'});
}

}  // namespace
}  // namespace zipr::transform
