// Tests for the IR-construction phase: disassembly engines, aggregation
// (the paper's Cases 1-4), jump-table discovery, pinning, and IR building.
#include <gtest/gtest.h>

#include "analysis/disasm.h"
#include "analysis/ir_builder.h"
#include "analysis/pinning.h"
#include "testing_util.h"

namespace zipr::analysis {
namespace {

using ::zipr::testing::must_assemble;
using zelf::layout::kTextBase;

TEST(LinearSweep, DecodesCleanCode) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 0
      syscall
  )");
  auto r = linear_sweep(img.text());
  EXPECT_EQ(r.insns.size(), 3u);
  EXPECT_TRUE(r.code.contains_range(kTextBase, kTextBase + 14));
}

TEST(LinearSweep, ResynchronizesAfterBadBytes) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      nop
      .byte 0x00, 0x00   ; undecodable
      ret
  )");
  auto r = linear_sweep(img.text());
  // nop and ret decode; the zero bytes do not.
  EXPECT_TRUE(r.insns.count(kTextBase));
  EXPECT_TRUE(r.insns.count(kTextBase + 3));
  EXPECT_FALSE(r.code.contains(kTextBase + 1));
}

TEST(LinearSweep, DesynchronizedByEmbeddedData) {
  // ASCII text decodes as plausible instructions -- the classic linear
  // sweep failure the aggregator must survive.
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      jmp after
      .ascii "hello world, this is data"
    after:
      ret
  )");
  auto r = linear_sweep(img.text());
  // The sweep claims *something* inside the string region (e.g. 'h' = 0x68
  // push). We only require that it decoded bytes there.
  bool claimed_inside = false;
  for (const auto& [addr, insn] : r.insns)
    if (addr > kTextBase + 5 && addr < kTextBase + 30) claimed_inside = true;
  EXPECT_TRUE(claimed_inside);
}

TEST(RecursiveTraversal, FollowsControlFlowOnly) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      jmp after
      .ascii "embedded data that is never executed"
    after:
      movi r0, 1
      movi r1, 0
      syscall
  )");
  auto r = recursive_traversal(img);
  EXPECT_TRUE(r.dis.insns.count(kTextBase));  // the jmp
  // Nothing inside the string is claimed.
  for (const auto& [addr, insn] : r.dis.insns)
    EXPECT_FALSE(addr > kTextBase && addr < kTextBase + 5 + 36) << hex_addr(addr);
}

TEST(RecursiveTraversal, DiscoversCallTargetsAsFunctions) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      call helper
      movi r0, 1
      movi r1, 0
      syscall
    helper:
      ret
  )");
  auto r = recursive_traversal(img);
  EXPECT_TRUE(r.function_entries.count(img.entry));
  EXPECT_TRUE(r.function_entries.count(kTextBase + 5 + 6 + 6 + 2));
}

TEST(RecursiveTraversal, DiscoversJumpTables) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      jmpt r0, table
    case0: ret
    case1: ret
    case2: ret
    .rodata
    table:
      .quad case0, case1, case2
      .quad 0              ; terminator
  )");
  auto r = recursive_traversal(img);
  ASSERT_EQ(r.jump_tables.size(), 1u);
  EXPECT_EQ(r.jump_tables[0].slots.size(), 3u);
  EXPECT_EQ(r.jump_tables[0].slots[0], kTextBase + 6);
  EXPECT_EQ(r.indirect_targets.size(), 3u);
  // All three cases were claimed as code.
  EXPECT_TRUE(r.dis.insns.count(kTextBase + 6));
  EXPECT_TRUE(r.dis.insns.count(kTextBase + 8));
}

TEST(RecursiveTraversal, DiscoversFunctionPointerImmediates) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r1, helper
      callr r1
      movi r0, 1
      syscall
    helper:
      movi r1, 0
      ret
  )");
  auto r = recursive_traversal(img);
  std::uint64_t helper = kTextBase + 6 + 2 + 6 + 2;
  EXPECT_TRUE(r.indirect_targets.count(helper));
  EXPECT_TRUE(r.function_entries.count(helper));
  EXPECT_TRUE(r.dis.insns.count(helper));
}

TEST(RecursiveTraversal, DiscoversPointersInDataSegments) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      loadpc r1, fptr
      callr r1
      movi r0, 1
      syscall
    helper:
      movi r1, 5
      ret
    .data
    fptr: .quad helper
  )");
  auto r = recursive_traversal(img);
  std::uint64_t helper = kTextBase + 6 + 2 + 6 + 2;
  EXPECT_TRUE(r.indirect_targets.count(helper));
}

TEST(RecursiveTraversal, RejectsAddressLikeDataThatIsNotCode) {
  // A data word that happens to land mid-string: validation must reject it
  // (the paper's Case-4 guard).
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 0
      syscall
    blob:
      .byte 0x00, 0x01, 0x00, 0x00   ; never valid VLX code
    .data
    lure: .quad blob
  )");
  auto r = recursive_traversal(img);
  std::uint64_t blob = kTextBase + 14;
  EXPECT_TRUE(r.rejected_seeds.count(blob));
  EXPECT_FALSE(r.dis.insns.count(blob));
}

TEST(Aggregate, ReachedCodeIsDefinite) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      jmp after
      .ascii "xyz"
    after:
      ret
  )");
  auto linear = linear_sweep(img.text());
  auto rec = recursive_traversal(img);
  auto agg = aggregate(img.text(), linear, rec);
  EXPECT_TRUE(agg.definite_code.contains(kTextBase));
  EXPECT_TRUE(agg.definite_code.contains(kTextBase + 8));  // the ret
  EXPECT_TRUE(agg.ambiguous.contains(kTextBase + 5));      // 'x'
  EXPECT_TRUE(agg.ambiguous.contains(kTextBase + 7));      // 'z'
  EXPECT_GE(agg.disagreements, 0u);
}

TEST(Aggregate, FullyCleanProgramHasNoAmbiguity) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 0
      syscall
  )");
  auto linear = linear_sweep(img.text());
  auto rec = recursive_traversal(img);
  auto agg = aggregate(img.text(), linear, rec);
  EXPECT_TRUE(agg.ambiguous.empty());
  EXPECT_EQ(agg.code_insns.size(), 3u);
}

// ---- pinning ----

TEST(Pinning, VerbatimRangeIntoMemsizeTailDoesNotUnderflow) {
  // A verbatim (ambiguous) range that extends past the text segment's file
  // bytes into its zero-filled memsize tail used to compute
  // `bytes.size() - off` with off beyond the file bytes: the subtraction
  // underflowed into a huge bogus span and the decoder read out of bounds.
  // The scan must clamp to the file bytes and terminate cleanly.
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 0
      syscall
    tail:
      .byte 0xde, 0xad
  )");
  zelf::Segment& text = img.text();
  const std::uint64_t file_end = text.vaddr + text.bytes.size();
  text.memsize = text.bytes.size() + 0x40;  // zero-filled in-memory tail

  auto linear = linear_sweep(img.text());
  auto rec = recursive_traversal(img);
  auto agg = aggregate(img.text(), linear, rec);
  // Force an ambiguous range straddling the end of the file bytes deep
  // into the memsize tail.
  agg.ambiguous.insert(file_end - 2, file_end + 0x20);

  PinSet pins = compute_pins(img, agg, rec, {});
  for (const auto& [addr, reason] : pins.pins) {
    (void)reason;
    EXPECT_LT(addr, file_end) << "pin conjured from the zero-filled tail";
  }
}

struct PinFixture {
  zelf::Image img;
  Aggregate agg;
  TraversalResult rec;

  explicit PinFixture(std::string_view src) : img(must_assemble(src)) {
    auto linear = linear_sweep(img.text());
    rec = recursive_traversal(img);
    agg = aggregate(img.text(), linear, rec);
  }

  PinSet pins(PinningOptions opts = {}) { return compute_pins(img, agg, rec, opts); }
};

TEST(Pinning, EntryIsAlwaysPinned) {
  PinFixture f(".entry main\n.text\nmain: movi r0, 1\nmovi r1, 0\nsyscall\n");
  auto p = f.pins();
  ASSERT_TRUE(p.pins.count(f.img.entry));
  EXPECT_TRUE(p.pins.at(f.img.entry) & kPinEntry);
}

TEST(Pinning, JumpTableSlotsPinned) {
  PinFixture f(R"(
    .entry main
    .text
    main:
      jmpt r0, table
    case0: ret
    case1: ret
    .rodata
    table: .quad case0, case1
           .quad 0
  )");
  auto p = f.pins();
  EXPECT_TRUE(p.pins.count(kTextBase + 6));
  EXPECT_TRUE(p.pins.count(kTextBase + 7));
  EXPECT_TRUE(p.pins.at(kTextBase + 6) & kPinJumpTable);
}

TEST(Pinning, CallReturnSitesPinnedWhenEnabled) {
  PinFixture f(R"(
    .entry main
    .text
    main:
      call helper
      movi r0, 1
      movi r1, 0
      syscall
    helper: ret
  )");
  PinningOptions on;
  on.pin_call_returns = true;
  auto with = f.pins(on);
  ASSERT_TRUE(with.pins.count(kTextBase + 5));
  EXPECT_TRUE(with.pins.at(kTextBase + 5) & kPinCallReturn);

  PinningOptions off;
  off.pin_call_returns = false;
  auto without = f.pins(off);
  EXPECT_FALSE(without.pins.count(kTextBase + 5));
}

TEST(Pinning, NaivePinAllPinsEveryReferenceableInstruction) {
  // Naive mode pins every instruction except ones within 5 bytes of an
  // existing pin (artificial pins never justify sleds or chains). Here the
  // packed nops thin out but the spaced instructions all pin.
  PinFixture f(".entry main\n.text\nmain: nop\nnop\nnop\nmovi r0, 1\nmovi r1, 0\nsyscall\n");
  PinningOptions opts;
  opts.naive_pin_all = true;
  auto p = f.pins(opts);
  EXPECT_EQ(p.pins.size(), 3u);  // nop@0 (entry), movi@9, syscall@15
  EXPECT_TRUE(p.pins.count(kTextBase + 9));
  EXPECT_TRUE(p.pins.count(kTextBase + 15));

  // On a program with no adjacent instructions, naive mode pins them all.
  PinFixture g(".entry main\n.text\nmain: movi r2, 5\nmovi r0, 1\nmovi r1, 0\nsyscall\n");
  auto q = g.pins(opts);
  EXPECT_EQ(q.pins.size(), g.agg.code_insns.size());
}

TEST(Pinning, ExtraFractionGrowsPMinusB) {
  std::string big = ".entry main\n.text\nmain:\n";
  for (int i = 0; i < 200; ++i) big += " addi r2, 1\n";
  big += " movi r0, 1\n movi r1, 0\n syscall\n";
  PinFixture f(big);
  PinningOptions none;
  none.pin_call_returns = false;
  PinningOptions half;
  half.pin_call_returns = false;
  half.extra_pin_fraction = 0.5;
  auto base = f.pins(none);
  auto grown = f.pins(half);
  EXPECT_GT(grown.pins.size(), base.pins.size() + 50);
}

TEST(Pinning, VerbatimEmbeddedBranchTargetsPinned) {
  // The unreachable blob contains a decodable jump to `after`; since the
  // blob stays in place (it may be data), `after` must stay reachable at
  // its original address.
  PinFixture f(R"(
    .entry main
    .text
    main:
      jeq after          ; conclusive edge keeps `after` definite code
      jmp out
    blob:
      .byte 0xEB, 0x00   ; jmp +0 -> resolves to `after`
    after:
      ret
    out:
      movi r0, 1
      movi r1, 0
      syscall
  )");
  // Sanity: the blob stayed ambiguous.
  ASSERT_TRUE(f.agg.ambiguous.contains(kTextBase + 10));
  auto p = f.pins();
  std::uint64_t after = kTextBase + 12;
  ASSERT_TRUE(p.pins.count(after));
  EXPECT_TRUE(p.pins.at(after) & (kPinVerbatimTarget | kPinVerbatimFall));
}

// ---- IR builder ----

TEST(IrBuilder, BuildsLinkedRows) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r2, 0
    loop:
      addi r2, 1
      cmpi r2, 3
      jlt loop
      movi r0, 1
      mov r1, r2
      syscall
  )");
  auto prog = build_ir(img);
  ASSERT_TRUE(prog.ok()) << prog.error().message;
  EXPECT_EQ(prog->stats.code_insns, 7u);
  EXPECT_EQ(prog->stats.verbatim_ranges, 0u);

  // The jlt row must have a logical target (the addi at `loop`), not a
  // displacement.
  bool found_branch = false;
  prog->db.for_each_insn([&](const auto& row) {
    if (row.decoded.op == isa::Op::kJcc) {
      found_branch = true;
      ASSERT_NE(row.target, irdb::kNullInsn);
      EXPECT_EQ(prog->db.insn(row.target).orig_addr, kTextBase + 6);
    }
  });
  EXPECT_TRUE(found_branch);
}

TEST(IrBuilder, SynthesizesJumpForFallthroughIntoVerbatim) {
  // The syscall's fallthrough address holds bytes that do not decode, so
  // the traversal cannot claim them; the lifted syscall needs a synthetic
  // jump back to the original (now verbatim) address to preserve the
  // original in-place behaviour.
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 0
      syscall          ; has fallthrough into the blob below
      .byte 0x00, 0x01, 0x02, 0x03   ; undecodable
  )");
  auto prog = build_ir(img);
  ASSERT_TRUE(prog.ok()) << prog.error().message;
  EXPECT_GE(prog->stats.verbatim_ranges, 1u);
  EXPECT_EQ(prog->stats.synthetic_jumps, 1u);
}

TEST(IrBuilder, PcRelativeRowsGetDataRefs) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      lea r1, value
      loadpc r2, value
      movi r0, 1
      movi r1, 0
      syscall
    .rodata
    value: .quad 7
  )");
  auto prog = build_ir(img);
  ASSERT_TRUE(prog.ok()) << prog.error().message;
  int pc_rel = 0;
  prog->db.for_each_insn([&](const auto& row) {
    if (row.decoded.is_pc_relative_data()) {
      ++pc_rel;
      ASSERT_TRUE(row.data_ref.has_value());
      EXPECT_EQ(*row.data_ref, zelf::layout::kRodataBase);
    }
  });
  EXPECT_EQ(pc_rel, 2);
}

TEST(IrBuilder, GroupsInstructionsIntoFunctions) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      call helper
      movi r0, 1
      movi r1, 0
      syscall
    helper:
      movi r1, 3
      ret
  )");
  auto prog = build_ir(img);
  ASSERT_TRUE(prog.ok()) << prog.error().message;
  EXPECT_EQ(prog->stats.functions, 2u);
  // helper's two instructions belong to the same function, distinct from
  // main's.
  irdb::FuncId main_f = irdb::kNullFunc, helper_f = irdb::kNullFunc;
  prog->db.for_each_insn([&](const auto& row) {
    if (!row.orig_addr) return;
    if (*row.orig_addr == img.entry) main_f = row.function;
    if (*row.orig_addr == kTextBase + 5 + 6 + 6 + 2) helper_f = row.function;
  });
  ASSERT_NE(main_f, irdb::kNullFunc);
  ASSERT_NE(helper_f, irdb::kNullFunc);
  EXPECT_NE(main_f, helper_f);
}

TEST(IrBuilder, StripsSymbolsFromWorkingCopy) {
  auto img = must_assemble(".entry main\n.text\n.func main\n nop\n hlt\n");
  ASSERT_FALSE(img.symbols.empty());
  auto prog = build_ir(img);
  ASSERT_TRUE(prog.ok());
  EXPECT_TRUE(prog->original.symbols.empty());
}

TEST(IrBuilder, PinsRecordedInDatabase) {
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r1, helper
      callr r1
      movi r0, 1
      syscall
    helper:
      movi r1, 9
      ret
  )");
  auto prog = build_ir(img);
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->db.pinned_at(img.entry) != irdb::kNullInsn, true);
  std::uint64_t helper = kTextBase + 6 + 2 + 6 + 2;
  irdb::InsnId h = prog->db.pinned_at(helper);
  ASSERT_NE(h, irdb::kNullInsn);
  EXPECT_EQ(prog->db.insn(h).orig_addr, helper);
}

TEST(IrBuilder, RejectsImageWithoutText) {
  zelf::Image img;
  img.entry = 0;
  EXPECT_FALSE(build_ir(img).ok());
}

}  // namespace
}  // namespace zipr::analysis
