// Stress and property tests across the whole pipeline: rewriting a
// rewritten binary, malformed-input handling, the profile transform's
// counters, disassembler accuracy against ground truth, and full
// defense-stack sweeps.
#include <gtest/gtest.h>

#include "analysis/disasm.h"
#include "cgc/generator.h"
#include "cgc/poller.h"
#include "testing_util.h"
#include "transform/profile.h"
#include "zelf/io.h"

namespace zipr {
namespace {

using ::zipr::testing::behaviour_of;
using ::zipr::testing::expect_equivalent;
using ::zipr::testing::must_assemble;
using ::zipr::testing::must_rewrite;

// ---- Zipr eats its own output ----

TEST(DoubleRewrite, RewrittenBinaryRewritesAgain) {
  // The output of a rewrite is itself a valid, metadata-free binary; a
  // second rewrite (even with a different strategy) must preserve
  // behaviour. This exercises analysis of machine-generated layouts:
  // reference jumps at pins, relocated dollops, overflow code.
  cgc::CbSpec spec;
  spec.name = "double-subject";
  spec.seed = 99;
  spec.handlers = 3;
  spec.filler_funcs = 6;
  spec.filler_ops = 10;
  auto cb = cgc::generate_cb(spec);
  ASSERT_TRUE(cb.ok());

  RewriteOptions first;
  first.placement = rewriter::PlacementKind::kNearfit;
  auto once = must_rewrite(cb->image, first);

  RewriteOptions second;
  second.placement = rewriter::PlacementKind::kDiversity;
  second.seed = 5;
  auto twice = must_rewrite(once.image, second);

  for (const auto& poll : cgc::make_polls(*cb, 5, 321)) {
    auto a = vm::run_program(cb->image, poll.input, poll.vm_seed);
    auto c = vm::run_program(twice.image, poll.input, poll.vm_seed);
    EXPECT_EQ(a.exited, c.exited);
    EXPECT_EQ(a.exit_status, c.exit_status);
    EXPECT_EQ(a.output, c.output) << "double rewrite diverged";
  }
}

TEST(DoubleRewrite, TripleNullRewriteConverges) {
  zelf::Image original = must_assemble(R"(
    .entry main
    .text
    main:
      movi r2, 0
    loop:
      addi r2, 3
      cmpi r2, 30
      jlt loop
      call f
      movi r0, 1
      mov r1, r2
      syscall
    f:
      addi r2, 100
      ret
  )");
  zelf::Image current = original;
  for (int round = 0; round < 3; ++round) {
    RewriteOptions opts;
    opts.seed = static_cast<std::uint64_t>(round + 1);
    current = must_rewrite(current, opts).image;
    expect_equivalent(original, current);
  }
}

// ---- malformed inputs must error, never crash ----

TEST(Fuzz, TruncatedImagesRejectedCleanly) {
  zelf::Image img = must_assemble(".entry m\n.text\nm: movi r0, 1\nmovi r1, 0\nsyscall\n");
  Bytes wire = zelf::write_image(img);
  for (std::size_t cut = 0; cut < wire.size(); cut += 3) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    auto r = zelf::read_image(truncated);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST(Fuzz, BitflippedImagesNeverCrashTheRewriter) {
  zelf::Image img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r1, f
      callr r1
      movi r0, 1
      movi r1, 0
      syscall
    f:
      movi r1, 1
      ret
  )");
  Bytes wire = zelf::write_image(img);
  Rng rng(2024);
  int parsed = 0, rewritten_count = 0;
  for (int iter = 0; iter < 300; ++iter) {
    Bytes mutated = wire;
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      std::size_t at = rng.below(mutated.size());
      mutated[at] ^= static_cast<Byte>(1u << rng.below(8));
    }
    auto loaded = zelf::read_image(mutated);
    if (!loaded.ok()) continue;  // rejected at parse: fine
    ++parsed;
    auto r = rewrite(*loaded, {});
    // Either a clean error or a successful rewrite; both acceptable.
    if (r.ok()) ++rewritten_count;
  }
  // Many mutations only touch code bytes, which still parse.
  EXPECT_GT(parsed, 10);
  EXPECT_GT(rewritten_count, 0);
}

TEST(Fuzz, RandomTextSegmentsNeverCrashTheRewriter) {
  Rng rng(77);
  int ok_count = 0;
  for (int iter = 0; iter < 100; ++iter) {
    zelf::Image img;
    zelf::Segment text;
    text.kind = zelf::SegKind::kText;
    text.vaddr = zelf::layout::kTextBase;
    std::size_t n = 16 + rng.below(256);
    for (std::size_t i = 0; i < n; ++i)
      text.bytes.push_back(static_cast<Byte>(rng.below(256)));
    text.memsize = text.bytes.size();
    img.segments.push_back(std::move(text));
    img.entry = zelf::layout::kTextBase;
    auto r = rewrite(img, {});
    if (r.ok()) ++ok_count;  // conservative handling may well succeed
  }
  // No crash is the property; most random programs should still rewrite
  // (everything unprovable stays verbatim).
  EXPECT_GT(ok_count, 50);
}

// ---- the profile transform ----

TEST(Profile, CountersMatchCallCounts) {
  zelf::Image original = must_assemble(R"(
    .entry main
    .text
    main:
      movi r2, 0
    again:
      call twice_called
      addi r2, 1
      cmpi r2, 2
      jlt again
      call once_called
      movi r0, 1
      movi r1, 0
      syscall
    twice_called:
      call nested        ; nested runs once per call -> twice total
      ret
    nested:
      ret
    once_called:
      ret
  )");
  RewriteOptions opts;
  opts.transforms = {"profile"};
  auto r = must_rewrite(original, opts);
  expect_equivalent(original, r.image);

  // Function ids are assigned in entry-address order during IR
  // construction: main, twice_called, nested, once_called.
  vm::Machine m(r.image);
  auto run = m.run();
  ASSERT_TRUE(run.exited);
  auto counter = [&](std::size_t index) {
    auto v = m.memory().read_u64(
        transform::profile_counter_addr(zelf::layout::kTextBase, index));
    EXPECT_TRUE(v.ok());
    return v.ok() ? *v : 0;
  };
  EXPECT_EQ(counter(0), 1u);  // main
  EXPECT_EQ(counter(1), 2u);  // twice_called
  EXPECT_EQ(counter(2), 2u);  // nested
  EXPECT_EQ(counter(3), 1u);  // once_called
}

TEST(Profile, ComposesWithSecurityTransforms) {
  auto corpus = cgc::cfe_corpus();
  auto cb = cgc::generate_cb(corpus[4]);
  ASSERT_TRUE(cb.ok());
  RewriteOptions opts;
  opts.transforms = {"profile", "cfi", "canary"};
  auto r = must_rewrite(cb->image, opts);
  for (const auto& poll : cgc::make_polls(*cb, 3, 9))
    EXPECT_TRUE(cgc::run_poll(cb->image, r.image, poll).functional);
}

// ---- disassembler accuracy against ground truth ----

TEST(Accuracy, TraversalFindsAllGroundTruthFunctions) {
  // Assemble WITH symbols, analyze WITHOUT, compare function entries.
  cgc::CbSpec spec;
  spec.name = "accuracy-subject";
  spec.seed = 31337;
  spec.handlers = 4;
  spec.filler_funcs = 8;
  spec.filler_ops = 10;
  spec.recursion = true;
  std::vector<int> payload_len;
  auto src = cgc::generate_cb_source(spec, &payload_len);
  ASSERT_TRUE(src.ok());
  auto with_symbols = assembler::assemble(*src);  // symbols on
  ASSERT_TRUE(with_symbols.ok());

  auto rec = analysis::recursive_traversal(*with_symbols);
  std::size_t truth = 0, reachable = 0, found = 0;
  for (const auto& sym : with_symbols->symbols) {
    if (sym.kind != zelf::Symbol::Kind::kFunc) continue;
    ++truth;
    // Some generated fillers are dead code (never called, never
    // address-taken); only reachable functions can be discovered.
    if (!rec.dis.insns.count(sym.addr)) continue;
    ++reachable;
    found += rec.function_entries.count(sym.addr) ? 1 : 0;
  }
  ASSERT_GT(truth, 5u);
  ASSERT_GE(reachable, 7u);
  // Every reachable ground-truth function must be recognized as one.
  EXPECT_EQ(found, reachable);
  // And no entry may be invented inside data.
  for (std::uint64_t entry : rec.function_entries)
    EXPECT_TRUE(rec.dis.insns.count(entry)) << hex_addr(entry);
}

TEST(Accuracy, LinearSweepOverclaimsOnDataInText) {
  cgc::CbSpec spec;
  spec.name = "overclaim-subject";
  spec.seed = 4242;
  spec.handlers = 2;
  spec.filler_funcs = 2;
  spec.data_in_text = true;
  std::vector<int> payload_len;
  auto src = cgc::generate_cb_source(spec, &payload_len);
  ASSERT_TRUE(src.ok());
  auto img = assembler::assemble(*src);
  ASSERT_TRUE(img.ok());

  auto linear = analysis::linear_sweep(img->text());
  auto rec = analysis::recursive_traversal(*img);
  // Linear sweep claims at least as many bytes as conclusive traversal;
  // the difference is exactly what the aggregator treats as ambiguous.
  EXPECT_GE(linear.code.total_size(), rec.dis.code.total_size());
  auto agg = analysis::aggregate(img->text(), linear, rec);
  EXPECT_FALSE(agg.ambiguous.empty());
}

// ---- full defense stack across a corpus slice ----

class DefenseStackTest : public ::testing::TestWithParam<int> {};

TEST_P(DefenseStackTest, AllTransformsTogetherPreserveBehaviour) {
  auto corpus = cgc::cfe_corpus();
  std::size_t idx = static_cast<std::size_t>(GetParam()) * 9 + 2;
  ASSERT_LT(idx, corpus.size());
  auto cb = cgc::generate_cb(corpus[idx]);
  ASSERT_TRUE(cb.ok()) << corpus[idx].name;

  RewriteOptions opts;
  opts.transforms = {"cfi", "stackpad", "canary", "profile"};
  opts.seed = 1234;
  auto r = must_rewrite(cb->image, opts);
  for (const auto& poll : cgc::make_polls(*cb, 3, 55)) {
    EXPECT_TRUE(cgc::run_poll(cb->image, r.image, poll).functional)
        << corpus[idx].name << " under the full stack";
  }
}

INSTANTIATE_TEST_SUITE_P(Slices, DefenseStackTest, ::testing::Range(0, 6));

// ---- reference chaining under pin pressure ----

TEST(Chains, NaivePinningForcesChainsAndStaysCorrect) {
  // Saturated pin sets squeeze some references to 2 bytes with far
  // targets: those must resolve through chained trampolines (Sec. II-C3)
  // without behavioural change.
  auto corpus = cgc::cfe_corpus();
  auto cb = cgc::generate_cb(corpus[10]);
  ASSERT_TRUE(cb.ok());
  RewriteOptions opts;
  opts.analysis.pinning.naive_pin_all = true;
  auto r = must_rewrite(cb->image, opts);
  EXPECT_GE(r.reassembly.chains, 1u);
  for (const auto& poll : cgc::make_polls(*cb, 3, 17))
    EXPECT_TRUE(cgc::run_poll(cb->image, r.image, poll).functional);
}

// ---- rewritten binaries stay structurally valid ----

TEST(Validity, RewrittenImagesSerializeAndReload) {
  auto corpus = cgc::cfe_corpus();
  for (std::size_t i = 0; i < corpus.size(); i += 13) {
    auto cb = cgc::generate_cb(corpus[i]);
    ASSERT_TRUE(cb.ok());
    auto r = must_rewrite(cb->image, {});
    Bytes wire = zelf::write_image(r.image);
    auto back = zelf::read_image(wire);
    ASSERT_TRUE(back.ok()) << corpus[i].name;
    EXPECT_TRUE(back->validate().ok());
    // The reloaded image runs identically.
    auto poll = cgc::make_polls(*cb, 1, 3).front();
    EXPECT_TRUE(cgc::run_poll(r.image, *back, poll).functional);
  }
}

}  // namespace
}  // namespace zipr
