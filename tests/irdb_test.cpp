// Tests for the IRDB: tables, logical links, pins, and structured edits.
#include <gtest/gtest.h>

#include "irdb/ir.h"

namespace zipr::irdb {
namespace {

using isa::BranchWidth;
using isa::Op;

isa::Insn nop() { return isa::make_nop(); }
isa::Insn ret() { return isa::make_ret(); }

TEST(Irdb, AddAndGet) {
  Database db;
  InsnId a = db.add_new(nop());
  InsnId b = db.add_new(ret());
  EXPECT_EQ(db.insn_count(), 2u);
  EXPECT_EQ(db.insn(a).decoded.op, Op::kNop);
  EXPECT_EQ(db.insn(b).decoded.op, Op::kRet);
  EXPECT_TRUE(db.has_insn(a));
  EXPECT_FALSE(db.has_insn(99));
  EXPECT_FALSE(db.has_insn(kNullInsn));
}

TEST(Irdb, AddNewComputesLength) {
  Database db;
  InsnId j = db.add_new(isa::make_jmp(0, BranchWidth::kRel32));
  EXPECT_EQ(db.insn(j).decoded.length, 5);
}

TEST(Irdb, PinLifecycle) {
  Database db;
  InsnId a = db.add_new(nop());
  InsnId b = db.add_new(nop());
  ASSERT_TRUE(db.pin(0x400000, a).ok());
  EXPECT_EQ(db.pinned_at(0x400000), a);
  EXPECT_EQ(db.pinned_at(0x400001), kNullInsn);
  // Double pin is an integrity error.
  EXPECT_FALSE(db.pin(0x400000, b).ok());
  // Repin moves it.
  ASSERT_TRUE(db.repin(0x400000, b).ok());
  EXPECT_EQ(db.pinned_at(0x400000), b);
  EXPECT_FALSE(db.repin(0x500000, b).ok());
}

TEST(Irdb, PinRejectsUnknownInsn) {
  Database db;
  EXPECT_FALSE(db.pin(0x400000, 42).ok());
}

TEST(Irdb, InsertBeforeRedirectsIncomingEdges) {
  Database db;
  // a -> b (fallthrough), c targets b, pin at 0x400010 -> b.
  InsnId b = db.add_new(ret());
  InsnId a = db.add_new(nop());
  InsnId c = db.add_new(isa::make_jmp(0, BranchWidth::kRel32));
  db.insn(a).fallthrough = b;
  db.insn(c).target = b;
  ASSERT_TRUE(db.pin(0x400010, b).ok());

  InsnId moved = db.insert_before(b, nop());

  // Row id b is now the inserted nop, falling through to the moved ret.
  EXPECT_EQ(db.insn(b).decoded.op, Op::kNop);
  EXPECT_EQ(db.insn(b).fallthrough, moved);
  EXPECT_EQ(db.insn(moved).decoded.op, Op::kRet);
  // All incoming edges still point at id b == they now reach the nop first.
  EXPECT_EQ(db.insn(a).fallthrough, b);
  EXPECT_EQ(db.insn(c).target, b);
  EXPECT_EQ(db.pinned_at(0x400010), b);
  EXPECT_TRUE(db.validate().ok());
}

TEST(Irdb, InsertBeforePreservesProvenanceOnMovedRow) {
  Database db;
  Instruction row;
  row.decoded = ret();
  row.orig_addr = 0x400123;
  row.orig_bytes = {0xC3};
  InsnId b = db.add_instruction(std::move(row));
  InsnId moved = db.insert_before(b, nop());
  EXPECT_FALSE(db.insn(b).orig_addr.has_value());
  EXPECT_EQ(db.insn(moved).orig_addr, 0x400123u);
  EXPECT_EQ(db.insn(moved).orig_bytes, (Bytes{0xC3}));
}

TEST(Irdb, InsertAfterLinksIntoChain) {
  Database db;
  InsnId a = db.add_new(nop());
  InsnId c = db.add_new(ret());
  db.insn(a).fallthrough = c;
  InsnId b = db.insert_after(a, nop());
  EXPECT_EQ(db.insn(a).fallthrough, b);
  EXPECT_EQ(db.insn(b).fallthrough, c);
  EXPECT_TRUE(db.validate().ok());
}

TEST(Irdb, InsertChainOrderMatchesExecutionOrder) {
  Database db;
  InsnId orig = db.add_new(ret());
  // Insert three guard instructions "before" orig, building forward.
  db.insert_before(orig, isa::make_push_imm(1));
  InsnId cursor = orig;
  cursor = db.insert_after(cursor, isa::make_push_imm(2));
  db.insert_after(cursor, isa::make_push_imm(3));
  // Walk the chain: 1, 2, 3, then the moved ret.
  std::vector<std::int64_t> imms;
  InsnId cur = orig;
  while (cur != kNullInsn && db.insn(cur).decoded.op == isa::Op::kPushI) {
    imms.push_back(db.insn(cur).decoded.imm);
    cur = db.insn(cur).fallthrough;
  }
  EXPECT_EQ(imms, (std::vector<std::int64_t>{1, 2, 3}));
  ASSERT_NE(cur, kNullInsn);
  EXPECT_EQ(db.insn(cur).decoded.op, Op::kRet);
}

TEST(Irdb, ReplaceKeepsLinksAndPins) {
  Database db;
  InsnId a = db.add_new(nop());
  InsnId b = db.add_new(ret());
  db.insn(a).fallthrough = b;
  ASSERT_TRUE(db.pin(0x400000, a).ok());
  isa::Insn bigger;
  bigger.op = Op::kAddI;
  bigger.ra = isa::kSpReg;
  bigger.imm = 64;
  db.replace(a, bigger);
  EXPECT_EQ(db.insn(a).decoded.op, Op::kAddI);
  EXPECT_EQ(db.insn(a).fallthrough, b);
  EXPECT_EQ(db.pinned_at(0x400000), a);
  EXPECT_EQ(db.insn(a).decoded.length, 6);
}

TEST(Irdb, RemoveRedirectsEverything) {
  Database db;
  InsnId a = db.add_new(nop());
  InsnId b = db.add_new(nop());
  InsnId c = db.add_new(ret());
  db.insn(a).fallthrough = b;
  db.insn(b).fallthrough = c;
  InsnId j = db.add_new(isa::make_jmp(0, BranchWidth::kRel32));
  db.insn(j).target = b;
  ASSERT_TRUE(db.pin(0x400004, b).ok());

  ASSERT_TRUE(db.remove(b).ok());
  EXPECT_EQ(db.insn(a).fallthrough, c);
  EXPECT_EQ(db.insn(j).target, c);
  EXPECT_EQ(db.pinned_at(0x400004), c);
}

TEST(Irdb, RemoveWithoutFallthroughFails) {
  Database db;
  InsnId r = db.add_new(ret());
  EXPECT_FALSE(db.remove(r).ok());
}

TEST(Irdb, FunctionsTrackMembers) {
  Database db;
  InsnId e = db.add_new(nop());
  Function f;
  f.name = "f";
  f.entry = e;
  f.members = {e};
  FuncId fid = db.add_function(std::move(f));
  db.insn(e).function = fid;
  EXPECT_EQ(db.function(fid).name, "f");
  // insert_before registers the moved row with the function.
  db.insert_before(e, nop());
  EXPECT_EQ(db.function(fid).members.size(), 2u);
  EXPECT_TRUE(db.validate().ok());
}

TEST(IrdbValidate, CatchesDanglingFallthrough) {
  Database db;
  InsnId a = db.add_new(nop());
  db.insn(a).fallthrough = 77;
  EXPECT_FALSE(db.validate().ok());
}

TEST(IrdbValidate, CatchesDanglingTarget) {
  Database db;
  InsnId a = db.add_new(isa::make_jmp(0, BranchWidth::kRel32));
  db.insn(a).target = 12;
  EXPECT_FALSE(db.validate().ok());
}

TEST(IrdbValidate, CatchesVerbatimWithoutBytes) {
  Database db;
  Instruction row;
  row.verbatim = true;
  row.orig_addr = 0x400000;
  db.add_instruction(std::move(row));
  EXPECT_FALSE(db.validate().ok());
}

TEST(IrdbValidate, CatchesVerbatimWithoutAddr) {
  Database db;
  Instruction row;
  row.verbatim = true;
  row.orig_bytes = {0x90};
  db.add_instruction(std::move(row));
  EXPECT_FALSE(db.validate().ok());
}

TEST(IrdbValidate, CatchesTargetAndAbsTargetTogether) {
  // target (row link) and abs_target (original-address reference) encode
  // the same operand two different ways; a row carrying both is ambiguous
  // about which the reassembler should honor.
  Database db;
  InsnId a = db.add_new(isa::make_jmp(0, BranchWidth::kRel32));
  InsnId b = db.add_new(ret());
  db.insn(a).target = b;
  db.insn(a).abs_target = 0x400010;
  EXPECT_FALSE(db.validate().ok());

  // Clearing either side restores validity.
  db.insn(a).abs_target = std::nullopt;
  EXPECT_TRUE(db.validate().ok());
}

TEST(IrdbValidate, AcceptsWellFormed) {
  Database db;
  InsnId a = db.add_new(nop());
  InsnId b = db.add_new(ret());
  db.insn(a).fallthrough = b;
  ASSERT_TRUE(db.pin(0x400000, a).ok());
  EXPECT_TRUE(db.validate().ok());
}

}  // namespace
}  // namespace zipr::irdb
