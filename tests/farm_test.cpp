// Tests for the multi-shard fuzz farm: the reproducibility contract
// (merged corpus / crash set / triage keys are invariant to shard count
// and worker count), cross-shard crash dedup with the deterministic
// winner rule, oversubscription clamping, and stats accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "cgc/exploits.h"
#include "farm/farm.h"
#include "testing_util.h"
#include "transform/api.h"

namespace zipr::farm {
namespace {

using ::zipr::testing::must_rewrite;

// The farm fuzzes the fptr CB: small, crashy (no magic gate), so short
// campaigns produce both corpus growth and repeat crash sightings.
const cgc::VulnCb& fptr_cb() {
  static const std::vector<cgc::VulnCb> corpus = cgc::vulnerable_corpus();
  auto it = std::find_if(corpus.begin(), corpus.end(),
                         [](const cgc::VulnCb& v) { return v.name == "vuln_fptr"; });
  EXPECT_NE(it, corpus.end());
  return *it;
}

const zelf::Image& instrumented_fptr() {
  static const zelf::Image img = [] {
    RewriteOptions opts;
    opts.transforms = {"cov"};
    return must_rewrite(fptr_cb().image, opts).image;
  }();
  return img;
}

FarmOptions small_campaign(std::size_t shards, int jobs = 0) {
  FarmOptions opts;
  opts.seed = 7;
  opts.shards = shards;
  opts.jobs = jobs;
  opts.max_execs = 2500;
  opts.streams_per_epoch = 8;
  opts.rounds_per_stream = 2;
  opts.tasks_per_round = 4;
  opts.execs_per_task = 24;
  return opts;
}

FarmResult must_campaign(const FarmOptions& opts) {
  auto res = run_campaign(instrumented_fptr(), {fptr_cb().benign_input}, opts);
  EXPECT_TRUE(res.ok()) << (res.ok() ? "" : res.error().message);
  return std::move(*res);
}

// Everything shard-count-independent about a crash: identity + winning
// origin + dedup trail, with the reporting-only `shard` field masked out.
struct CrashView {
  vm::Fault fault;
  std::uint64_t fault_pc;
  std::uint64_t path;
  Bytes input;
  fuzz::MutationStage stage;
  std::uint64_t epoch;
  std::size_t stream;
  std::uint64_t ordinal;
  std::vector<std::tuple<std::uint64_t, std::size_t, std::uint64_t>> duplicates;

  bool operator==(const CrashView&) const = default;
};

CrashView view_of(const Crash& c) {
  CrashView v{c.crash.fault, c.crash.fault_pc, c.crash.path,  c.crash.input,
              c.crash.stage, c.origin.epoch,   c.origin.stream, c.origin.ordinal,
              {}};
  for (const auto& d : c.duplicates) v.duplicates.emplace_back(d.epoch, d.stream, d.ordinal);
  return v;
}

void expect_same_results(const FarmResult& a, const FarmResult& b, const char* what) {
  ASSERT_EQ(a.corpus.size(), b.corpus.size()) << what;
  for (std::size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(a.corpus[i].input, b.corpus[i].input) << what << " corpus entry " << i;
    EXPECT_EQ(a.corpus[i].map, b.corpus[i].map) << what << " corpus map " << i;
    EXPECT_EQ(a.corpus[i].stage, b.corpus[i].stage) << what << " corpus stage " << i;
  }
  ASSERT_EQ(a.crashes.size(), b.crashes.size()) << what;
  for (std::size_t i = 0; i < a.crashes.size(); ++i)
    EXPECT_TRUE(view_of(a.crashes[i]) == view_of(b.crashes[i])) << what << " crash " << i;
  EXPECT_EQ(a.stats.execs, b.stats.execs) << what;
  EXPECT_EQ(a.stats.epochs, b.stats.epochs) << what;
  EXPECT_EQ(a.stats.imported_entries, b.stats.imported_entries) << what;
  EXPECT_EQ(a.stats.rejected_duplicates, b.stats.rejected_duplicates) << what;
  EXPECT_EQ(a.stats.duplicate_crashes, b.stats.duplicate_crashes) << what;
  EXPECT_EQ(a.stats.map_indices_hit, b.stats.map_indices_hit) << what;
  EXPECT_EQ(a.stats.stages.admitted, b.stats.stages.admitted) << what;
  EXPECT_EQ(a.stats.stages.crashes, b.stats.stages.crashes) << what;
}

// ---- the headline differential: shard-count invariance ----

TEST(FarmInvariance, ShardCountDoesNotChangeResults) {
  const FarmResult one = must_campaign(small_campaign(1));
  const FarmResult two = must_campaign(small_campaign(2));
  const FarmResult eight = must_campaign(small_campaign(8));

  // The campaign must be non-trivial for the comparison to mean much.
  EXPECT_GE(one.corpus.size(), 2u);
  EXPECT_GE(one.crashes.size(), 1u);
  EXPECT_GE(one.stats.epochs, 1u);

  expect_same_results(one, two, "shards 1 vs 2");
  expect_same_results(one, eight, "shards 1 vs 8");
}

TEST(FarmInvariance, ShardFieldIsTheOnlyDifference) {
  // With 8 streams on 2 shards, stream s reports lane s % 2.
  const FarmResult two = must_campaign(small_campaign(2));
  for (const auto& c : two.crashes) {
    if (c.origin.epoch == 0) {
      EXPECT_EQ(c.origin.shard, 0u);  // seed phase runs on lane 0
    } else {
      EXPECT_EQ(c.origin.shard, c.origin.stream % 2);
    }
    for (const auto& d : c.duplicates) EXPECT_EQ(d.shard, d.stream % 2);
  }
}

TEST(FarmInvariance, WorkerCountDoesNotChangeResults) {
  // jobs undersubscribes lanes; jobs > shards clamps. All identical.
  const FarmResult serial = must_campaign(small_campaign(4, 1));
  const FarmResult matched = must_campaign(small_campaign(4, 4));
  const FarmResult oversub = must_campaign(small_campaign(4, 16));
  expect_same_results(serial, matched, "jobs 1 vs 4");
  expect_same_results(serial, oversub, "jobs 1 vs 16");
}

// ---- cross-shard dedup ----

TEST(FarmDedup, DuplicateCrashesCarryDeterministicWinner) {
  const FarmResult res = must_campaign(small_campaign(8));

  // The fptr CB crashes readily: with 8 streams all mutating from the
  // same adopted corpus, at least one CrashKey must be sighted by more
  // than one stream.
  bool any_duplicates = false;
  for (const auto& c : res.crashes) {
    if (c.duplicates.empty()) continue;
    any_duplicates = true;
    const auto key = [](const CrashOrigin& o) {
      return std::tuple(o.epoch, o.stream, o.ordinal);
    };
    // Winner rule: the kept origin precedes every duplicate sighting,
    // and the trail itself is recorded in schedule order.
    for (const auto& d : c.duplicates) EXPECT_LT(key(c.origin), key(d));
    for (std::size_t i = 1; i < c.duplicates.size(); ++i)
      EXPECT_LE(key(c.duplicates[i - 1]), key(c.duplicates[i]));
  }
  EXPECT_TRUE(any_duplicates) << "campaign too short to exercise cross-shard dedup";
  EXPECT_GT(res.stats.duplicate_crashes, 0u);
}

TEST(FarmDedup, CrashesSortedByKeyAndReplayOnOriginal) {
  const FarmResult res = must_campaign(small_campaign(2));
  ASSERT_GE(res.crashes.size(), 1u);
  for (std::size_t i = 1; i < res.crashes.size(); ++i) {
    const auto key = [](const Crash& c) {
      return fuzz::CrashKey(c.crash.fault, c.crash.fault_pc, c.crash.path);
    };
    EXPECT_LT(key(res.crashes[i - 1]), key(res.crashes[i]));
  }
  // Same contract as the single-stream fuzzer: at least one deduped
  // winner input reproduces on the uninstrumented binary (a few triaged
  // keys are path variants only reachable with instrumentation applied).
  bool replays = false;
  for (const auto& c : res.crashes) {
    auto replay = vm::run_program(fptr_cb().image, c.crash.input);
    replays |= !replay.exited && replay.fault != vm::Fault::kGasExhausted;
  }
  EXPECT_TRUE(replays) << "no winner input reproduces on the original";
}

// ---- stats accounting ----

TEST(FarmStatsTest, AccountingAddsUp) {
  const FarmResult res = must_campaign(small_campaign(4));
  const FarmStats& st = res.stats;

  EXPECT_GE(st.execs, small_campaign(4).max_execs);
  EXPECT_GE(st.epochs, 1u);
  ASSERT_EQ(st.shards.size(), 4u);

  std::uint64_t shard_execs = 0, streams_run = 0;
  for (const auto& sh : st.shards) {
    shard_execs += sh.execs;
    streams_run += sh.streams_run;
  }
  EXPECT_EQ(shard_execs, st.execs);
  EXPECT_EQ(streams_run, st.epochs * 8u);  // streams_per_epoch = 8

  std::uint64_t admitted = 0, stage_crashes = 0;
  for (std::size_t i = 0; i < fuzz::kStageCount; ++i) {
    admitted += st.stages.admitted[i];
    stage_crashes += st.stages.crashes[i];
  }
  EXPECT_EQ(admitted, res.corpus.size());
  EXPECT_EQ(stage_crashes, res.crashes.size());
  EXPECT_GT(st.map_indices_hit, 0u);
  EXPECT_GT(st.execs_per_sec, 0.0);
}

TEST(FarmStatsTest, RejectsDegenerateGeometry) {
  auto opts = small_campaign(1);
  opts.shards = 0;
  auto res = run_campaign(instrumented_fptr(), {fptr_cb().benign_input}, opts);
  EXPECT_FALSE(res.ok());

  opts = small_campaign(1);
  opts.streams_per_epoch = 0;
  res = run_campaign(instrumented_fptr(), {fptr_cb().benign_input}, opts);
  EXPECT_FALSE(res.ok());

  opts = small_campaign(1);
  opts.rounds_per_stream = 0;
  res = run_campaign(instrumented_fptr(), {fptr_cb().benign_input}, opts);
  EXPECT_FALSE(res.ok());
}

}  // namespace
}  // namespace zipr::farm
