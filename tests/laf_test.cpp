// Tests for the "laf" constant-compare-splitting transform: lowering
// shape and refusal rules, behaviour preservation on the full CB corpus
// across placement strategies, and the headline differential -- the
// magic-gated planted bug is rediscoverable with laf stacked under cov
// and NOT with cov alone under the same deterministic budget.
#include <gtest/gtest.h>

#include <algorithm>

#include "cgc/exploits.h"
#include "cgc/poller.h"
#include "fuzz/fuzzer.h"
#include "testing_util.h"
#include "transform/api.h"

namespace zipr {
namespace {

using ::zipr::testing::expect_equivalent;
using ::zipr::testing::must_assemble;
using ::zipr::testing::must_rewrite;

RewriteOptions laf_opts(std::vector<std::string> transforms,
                        rewriter::PlacementKind placement = rewriter::PlacementKind::kNearfit) {
  RewriteOptions opts;
  opts.transforms = std::move(transforms);
  opts.placement = placement;
  return opts;
}

// A 4-byte magic gate in one compare: the laf motivating shape.
const char* kGated = R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, inbuf
      movi r3, 8
      syscall
      movi r6, inbuf
      load r1, [r6]
      cmpi r1, 0x11223344
      jeq hit
      movi r2, 0
      jmp out
    hit:
      movi r2, 1
    out:
      movi r0, 2
      movi r1, 1
      movi r2, msg
      movi r3, 3
      syscall
      movi r0, 1
      movi r1, 0
      syscall
    .rodata
    msg: .ascii "ok\n"
    .bss
    inbuf: .space 8
)";

// The same compare feeding TWO conditional branches: the flags stay live
// into the jeq's fallthrough, so the lowering must refuse the site.
const char* kFlagsLive = R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, inbuf
      movi r3, 8
      syscall
      movi r6, inbuf
      load r1, [r6]
      cmpi r1, 0x11223344
      jeq exact
      jlt below
      movi r2, 2
      jmp out
    exact:
      movi r2, 0
      jmp out
    below:
      movi r2, 1
    out:
      movi r0, 1
      mov r1, r2
      syscall
    .rodata
    .bss
    inbuf: .space 8
)";

Bytes le64(std::uint64_t v) {
  Bytes b;
  put_u64(b, v);
  return b;
}

TEST(LafTransform, SplitsMultiByteCompareAndPreservesBehaviour) {
  auto img = must_assemble(kGated);
  auto r = must_rewrite(img, laf_opts({"laf"}));
  EXPECT_EQ(r.instrumentation.compares_split, 1u);
  EXPECT_EQ(r.instrumentation.compares_skipped, 0u);
  // Full match, partial matches of every prefix length, wild misses.
  for (std::uint64_t v : {0x11223344ull, 0x11223345ull, 0x11223300ull, 0x11220044ull,
                          0x00223344ull, 0ull, ~0ull, 0x4433221100ull})
    expect_equivalent(img, r.image, le64(v));
}

TEST(LafTransform, RefusesSiteWithLiveFlags) {
  auto img = must_assemble(kFlagsLive);
  auto r = must_rewrite(img, laf_opts({"laf"}));
  EXPECT_EQ(r.instrumentation.compares_split, 0u);
  EXPECT_GE(r.instrumentation.compares_skipped, 1u);
  for (std::uint64_t v : {0x11223344ull, 0x11223343ull, 0x7fffffffffffffffull, 0ull})
    expect_equivalent(img, r.image, le64(v));
}

TEST(LafTransform, SingleByteCompareLeftAlone) {
  // imm in [-128, 127] carries no gradient to recover: not a candidate.
  auto img = must_assemble(R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, inbuf
      movi r3, 8
      syscall
      movi r6, inbuf
      load r1, [r6]
      cmpi r1, 65
      jeq yes
      movi r1, 0
      jmp out
    yes:
      movi r1, 0
    out:
      movi r0, 1
      syscall
    .bss
    inbuf: .space 8
  )");
  auto r = must_rewrite(img, laf_opts({"laf"}));
  EXPECT_EQ(r.instrumentation.compares_split, 0u);
  EXPECT_EQ(r.instrumentation.compares_skipped, 0u);
  expect_equivalent(img, r.image, le64(65));
}

// Satellite: laf under cov stays poll-functional on the whole 62-CB
// corpus for every placement strategy. Sliced so failures localize.
class LafCorpusFunctionalTest : public ::testing::TestWithParam<int> {};

TEST_P(LafCorpusFunctionalTest, LafPlusCovPassesAllPolls) {
  auto corpus = cgc::cfe_corpus();
  const int slice = GetParam();
  for (std::size_t i = static_cast<std::size_t>(slice); i < corpus.size(); i += 8) {
    auto cb = cgc::generate_cb(corpus[i]);
    ASSERT_TRUE(cb.ok()) << corpus[i].name;
    for (auto placement : {rewriter::PlacementKind::kNearfit, rewriter::PlacementKind::kDiversity,
                           rewriter::PlacementKind::kPinPage}) {
      auto rewritten = must_rewrite(cb->image, laf_opts({"laf", "cov"}, placement));
      for (const auto& poll : cgc::make_polls(*cb, 2, 99)) {
        auto cmp = cgc::run_poll(cb->image, rewritten.image, poll);
        EXPECT_TRUE(cmp.functional)
            << corpus[i].name << " placement " << static_cast<int>(placement)
            << " diverged on input " << hex_dump(poll.input);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Slices, LafCorpusFunctionalTest, ::testing::Range(0, 8));

// The headline differential: same budget, same seeds, same campaign
// seed. cov alone never sees a gradient through the 4-byte magic gate;
// cov over laf solves it byte-by-byte in the deterministic stage.
TEST(LafDifferential, MagicGatedBugNeedsLaf) {
  const auto vulns = cgc::vulnerable_corpus();
  auto magic = std::find_if(vulns.begin(), vulns.end(),
                            [](const cgc::VulnCb& v) { return v.laf_gated; });
  ASSERT_NE(magic, vulns.end()) << "corpus lost its magic-gated CB";

  fuzz::FuzzOptions fopts;
  fopts.seed = 7;
  fopts.max_execs = 6000;

  auto cov_only = must_rewrite(magic->image, laf_opts({"cov"}));
  auto plain = fuzz::fuzz(cov_only.image, {magic->benign_input}, fopts);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->crashes.empty())
      << "cov alone cracked the 2^-32 magic gate in budget: the gate is too weak";

  auto laf_cov = must_rewrite(magic->image, laf_opts({"laf", "cov"}));
  EXPECT_EQ(laf_cov.instrumentation.compares_split, 1u);
  auto split = fuzz::fuzz(laf_cov.image, {magic->benign_input}, fopts);
  ASSERT_TRUE(split.ok());
  ASSERT_GE(split->crashes.size(), 1u) << "laf+cov missed the magic-gated bug";
  bool replays = false;
  for (const auto& crash : split->crashes) {
    auto replay = vm::run_program(magic->image, crash.input);
    replays |= !replay.exited && replay.fault != vm::Fault::kGasExhausted;
  }
  EXPECT_TRUE(replays);

  // Stage attribution shows the byte-ladder: the deterministic stage
  // admitted the prefix-match entries that walked up to the crash.
  const auto& stages = split->stats.stages;
  EXPECT_GE(stages.admitted[static_cast<std::size_t>(fuzz::MutationStage::kDet)], 3u);
}

}  // namespace
}  // namespace zipr
