// Tests for the Zipr core: memory space, dollop management, placement
// strategies, sleds/chaining, and full-pipeline Null-rewrite equivalence.
#include <gtest/gtest.h>

#include "analysis/ir_builder.h"
#include "isa/opcodes.h"
#include "testing_util.h"
#include "zelf/io.h"
#include "zipr/dollop.h"
#include "zipr/memory_space.h"
#include "zipr/placement.h"
#include "zipr/reassembler.h"
#include "zipr/workspace.h"
#include "zipr/zipr.h"

namespace zipr {
namespace rewriter {

/// Friend of Reassembler: exposes checked-invariant internals to tests.
class ReassemblerTestPeer {
 public:
  static Status write_bytes(Reassembler& r, std::uint64_t addr, ByteView bytes) {
    return r.write_bytes(addr, bytes);
  }
};

}  // namespace rewriter

namespace {

using rewriter::Dollop;
using rewriter::DollopManager;
using rewriter::MemorySpace;
using rewriter::PlacementKind;
using ::zipr::testing::behaviour_of;
using ::zipr::testing::expect_equivalent;
using ::zipr::testing::must_assemble;
using ::zipr::testing::must_rewrite;
using zelf::layout::kTextBase;

// ---- MemorySpace ----

TEST(MemorySpace, ReserveAllocateRelease) {
  MemorySpace s({0x1000, 0x2000});
  EXPECT_EQ(s.free_bytes(), 0x1000u);
  ASSERT_TRUE(s.reserve(0x1000, 0x10).ok());
  EXPECT_FALSE(s.is_free(0x1000, 1));
  EXPECT_FALSE(s.reserve(0x1008, 0x10).ok());  // overlaps

  auto a = s.allocate(0x20);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0x1010u);
  s.release(*a, 0x20);
  EXPECT_TRUE(s.is_free(0x1010, 0x20));
}

TEST(MemorySpace, AllocateFailsWhenFull) {
  MemorySpace s({0x1000, 0x1010});
  ASSERT_TRUE(s.reserve(0x1000, 0x10).ok());
  EXPECT_FALSE(s.allocate(1).has_value());
  EXPECT_EQ(s.largest_free(), 0u);
}

TEST(MemorySpace, OverflowBumpAndShrink) {
  MemorySpace s({0x1000, 0x2000});
  EXPECT_EQ(s.overflow_begin(), 0x2000u);
  auto b = s.allocate_overflow(100);
  EXPECT_EQ(b, 0x2000u);
  EXPECT_EQ(s.overflow_used(), 100u);
  ASSERT_TRUE(s.shrink_overflow(0x2040).ok());
  EXPECT_EQ(s.overflow_used(), 0x40u);
  EXPECT_EQ(s.allocate_overflow(8), 0x2040u);
}

TEST(MemorySpace, ShrinkOverflowBelowBaseIsRejected) {
  // Rolling the bump pointer below the overflow base would silently donate
  // main-span bytes to the bump allocator; formerly an assert (a no-op
  // under NDEBUG), now a checked error that leaves the frontier untouched.
  MemorySpace s({0x1000, 0x2000});
  s.allocate_overflow(0x80);
  Status bad = s.shrink_overflow(0x1fff);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().kind, Error::Kind::kInvalidArgument);
  EXPECT_EQ(s.overflow_used(), 0x80u);
  // At/past the frontier is an explicit no-op, not an error.
  ASSERT_TRUE(s.shrink_overflow(0x2100).ok());
  EXPECT_EQ(s.overflow_used(), 0x80u);
}

TEST(MemorySpace, AllocateInWindowPrefersNearest) {
  MemorySpace s({0x1000, 0x2000});
  ASSERT_TRUE(s.reserve(0x1000, 0x800).ok());  // free space is [0x1800, 0x2000)
  auto b = s.allocate_in_window(5, 0x1700, 0x1900, 0x1750);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, 0x1800u);  // nearest in-window free base
  auto c = s.allocate_in_window(5, 0x1000, 0x10ff, 0x1000);
  EXPECT_FALSE(c.has_value());  // window fully reserved
}

TEST(MemorySpace, AllocateInWindowRespectsSize) {
  MemorySpace s({0x1000, 0x2000});
  ASSERT_TRUE(s.reserve(0x1004, 0xff0).ok());  // free: [0x1000,0x1004) + tail
  EXPECT_FALSE(s.allocate_in_window(5, 0x1000, 0x1003, 0x1000).has_value());
  EXPECT_TRUE(s.allocate_in_window(4, 0x1000, 0x1003, 0x1000).has_value());
}

TEST(MemorySpace, AllocateInWindowHiIsInclusive) {
  // reserve_pin_sites/chain_pin pass [addr-126, addr+129] expecting both
  // bounds to be valid bases; a half-open hi would silently lose the last
  // reachable trampoline slot.
  MemorySpace s({0x1000, 0x2000});
  // Free space is exactly one 5-byte slot at 0x1800.
  ASSERT_TRUE(s.reserve(0x1000, 0x800).ok());
  ASSERT_TRUE(s.reserve(0x1805, 0x7fb).ok());
  EXPECT_FALSE(s.allocate_in_window(5, 0x1700, 0x17ff, 0x1700).has_value());
  auto at_hi = s.allocate_in_window(5, 0x1700, 0x1800, 0x1700);
  ASSERT_TRUE(at_hi.has_value());
  EXPECT_EQ(*at_hi, 0x1800u);
}

TEST(MemorySpace, Rel8WindowLowEdgeIsReachable) {
  // A trampoline allocated at exactly addr-126 (the window's low bound)
  // must be reachable by the 2-byte jump at addr: disp = -128 = kRel8Min.
  const std::uint64_t addr = 0x1800;
  MemorySpace s({0x1000, 0x2000});
  ASSERT_TRUE(s.reserve(0x1000, (addr - 126) - 0x1000).ok());
  ASSERT_TRUE(s.reserve(addr - 126 + 5, 0x2000 - (addr - 126 + 5)).ok());
  auto slot = s.allocate_in_window(5, addr - 126, addr + 129, addr);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, addr - 126);
  std::int64_t disp = static_cast<std::int64_t>(*slot) - static_cast<std::int64_t>(addr + 2);
  EXPECT_EQ(disp, isa::kRel8Min);
}

TEST(MemorySpace, Rel8WindowHighEdgeIsReachable) {
  // Same at the high bound addr+129: disp = +127 = kRel8Max. One byte
  // further and the window must reject it.
  const std::uint64_t addr = 0x1800;
  MemorySpace s({0x1000, 0x2000});
  ASSERT_TRUE(s.reserve(0x1000, (addr + 129) - 0x1000).ok());
  ASSERT_TRUE(s.reserve(addr + 129 + 5, 0x2000 - (addr + 129 + 5)).ok());
  auto slot = s.allocate_in_window(5, addr - 126, addr + 129, addr);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(*slot, addr + 129);
  std::int64_t disp = static_cast<std::int64_t>(*slot) - static_cast<std::int64_t>(addr + 2);
  EXPECT_EQ(disp, isa::kRel8Max);

  // Shift the free slot one byte past the window: no allocation.
  MemorySpace s2({0x1000, 0x2000});
  ASSERT_TRUE(s2.reserve(0x1000, (addr + 130) - 0x1000).ok());
  ASSERT_TRUE(s2.reserve(addr + 130 + 5, 0x2000 - (addr + 130 + 5)).ok());
  EXPECT_FALSE(s2.allocate_in_window(5, addr - 126, addr + 129, addr).has_value());
}

// ---- DollopManager ----

struct DollopFixture {
  irdb::Database db;
  std::vector<irdb::InsnId> chain;

  explicit DollopFixture(int n) {
    for (int i = 0; i < n; ++i) chain.push_back(db.add_new(isa::make_nop()));
    for (int i = 0; i + 1 < n; ++i) db.insn(chain[i]).fallthrough = chain[i + 1];
  }
};

TEST(DollopManager, ConstructsFallthroughChain) {
  DollopFixture f(4);
  DollopManager dm(f.db);
  auto never_placed = [](irdb::InsnId) { return false; };
  Dollop* d = dm.dollop_starting_at(f.chain[0], never_placed);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->insns.size(), 4u);
  EXPECT_EQ(d->continuation, irdb::kNullInsn);
  EXPECT_EQ(d->size_estimate, 4u);  // four 1-byte nops
}

TEST(DollopManager, MidChainRequestSplits) {
  DollopFixture f(4);
  DollopManager dm(f.db);
  auto never_placed = [](irdb::InsnId) { return false; };
  Dollop* whole = dm.dollop_starting_at(f.chain[0], never_placed);
  ASSERT_EQ(whole->insns.size(), 4u);
  // Request a dollop starting at instruction 2: the original splits.
  Dollop* tail = dm.dollop_starting_at(f.chain[2], never_placed);
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(tail->insns.size(), 2u);
  EXPECT_EQ(tail->insns.front(), f.chain[2]);
  EXPECT_EQ(whole->insns.size(), 2u);
  EXPECT_EQ(whole->continuation, f.chain[2]);
  // Split adds a trailing jump to the head's size.
  EXPECT_EQ(whole->size_estimate, 2u + 5u);
  EXPECT_EQ(dm.total_splits(), 1u);
}

TEST(DollopManager, ConstructionStopsAtPlacedCode) {
  DollopFixture f(4);
  DollopManager dm(f.db);
  auto placed_at_2 = [&](irdb::InsnId id) { return id == f.chain[2]; };
  Dollop* d = dm.dollop_starting_at(f.chain[0], placed_at_2);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->insns.size(), 2u);
  EXPECT_EQ(d->continuation, f.chain[2]);
}

TEST(DollopManager, SplitToFitRespectsBudget) {
  DollopFixture f(10);  // 10 bytes of nops
  DollopManager dm(f.db);
  auto never_placed = [](irdb::InsnId) { return false; };
  Dollop* d = dm.dollop_starting_at(f.chain[0], never_placed);
  // Budget 8: head must hold at most 3 nops + 5-byte jump.
  Dollop* tail = dm.split_to_fit(d, 8);
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(d->insns.size(), 3u);
  EXPECT_LE(d->size_estimate, 8u);
  EXPECT_EQ(tail->insns.size(), 7u);
}

TEST(DollopManager, RetireOfUnownedDollopIsRejected) {
  // retire() used to assert on an unknown dollop and silently return on a
  // stale slot; under NDEBUG a stale retire could erase another dollop's
  // where_ entries. Now both are one checked error path that leaves the
  // manager untouched.
  DollopFixture f(4);
  DollopManager dm(f.db);
  auto never_placed = [](irdb::InsnId) { return false; };
  Dollop* d = dm.dollop_starting_at(f.chain[0], never_placed);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(dm.unplaced_count(), 1u);

  // Slot out of range (the shape a double retire leaves behind once the
  // list has shrunk).
  Dollop stray;
  stray.slot = 99;
  Status bad = dm.retire(&stray);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().kind, Error::Kind::kInternal);
  EXPECT_EQ(dm.unplaced_count(), 1u);

  // Slot in range but owned by a different dollop: pointer identity must
  // catch it and not disturb the real occupant.
  Dollop alias;
  alias.slot = d->slot;
  alias.insns = d->insns;  // even matching contents must not fool it
  EXPECT_FALSE(dm.retire(&alias).ok());
  EXPECT_EQ(dm.unplaced_count(), 1u);

  // The legitimate owner still retires cleanly afterwards.
  EXPECT_TRUE(dm.retire(d).ok());
  EXPECT_EQ(dm.unplaced_count(), 0u);
}

TEST(DollopManager, SplitToFitFailsWhenFirstInsnTooBig) {
  irdb::Database db;
  isa::Insn big;
  big.op = isa::Op::kMovI64;
  big.ra = 0;
  irdb::InsnId a = db.add_new(big);  // 10 bytes
  irdb::InsnId b = db.add_new(isa::make_ret());
  db.insn(a).fallthrough = b;
  DollopManager dm(db);
  auto never_placed = [](irdb::InsnId) { return false; };
  Dollop* d = dm.dollop_starting_at(a, never_placed);
  EXPECT_EQ(dm.split_to_fit(d, 12), nullptr);  // 10 + 5 > 12
}

// ---- end-to-end: Null rewrite preserves behaviour ----

// Programs exercising every rewriting hazard; each runs against a set of
// inputs under original and rewritten binaries.
struct E2eCase {
  const char* name;
  const char* src;
  std::vector<Bytes> inputs;
};

std::vector<E2eCase> e2e_cases() {
  std::vector<E2eCase> cases;

  cases.push_back({"Minimal", R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 41
      syscall
  )",
                   {{}}});

  cases.push_back({"LoopAndBranches", R"(
    .entry main
    .text
    main:
      movi r2, 0
      movi r3, 0
    loop:
      addi r3, 3
      addi r2, 1
      cmpi r2, 10
      jlt loop
      movi r0, 1
      mov r1, r3
      syscall
  )",
                   {{}}});

  cases.push_back({"CallsAndReturns", R"(
    .entry main
    .text
    main:
      movi r1, 5
      call square
      call square        ; 625
      movi r0, 1
      syscall
    square:
      mov r2, r1
      mul r1, r2
      ret
  )",
                   {{}}});

  cases.push_back({"IndirectCallViaImmediate", R"(
    .entry main
    .text
    main:
      movi r4, adder
      movi r1, 3
      callr r4
      callr r4
      movi r0, 1
      syscall
    adder:
      addi r1, 10
      ret
  )",
                   {{}}});

  cases.push_back({"FunctionPointerTable", R"(
    .entry main
    .text
    main:
      movi r0, 3          ; receive selector
      movi r1, 0
      movi r2, buf
      movi r3, 1
      syscall
      load8 r4, [r2]
      shli r4, 3
      movi r5, ftab
      add r5, r4
      load r5, [r5]
      movi r1, 7
      callr r5
      movi r0, 1
      syscall
    double:
      add r1, r1
      ret
    triple:
      mov r2, r1
      add r1, r2
      add r1, r2
      ret
    .rodata
    ftab: .quad double, triple
    .bss
    buf: .space 8
  )",
                   {Bytes{0}, Bytes{1}}});

  cases.push_back({"JumpTableSwitch", R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, buf
      movi r3, 1
      syscall
      load8 r0, [r2]
      jmpt r0, table
    c0: movi r1, 100
        jmp done
    c1: movi r1, 200
        jmp done
    c2: movi r1, 300
        jmp done
    c3: movi r1, 400
    done:
      movi r0, 1
      syscall
    .rodata
    table: .quad c0, c1, c2, c3
           .quad 0
    .bss
    buf: .space 8
  )",
                   {Bytes{0}, Bytes{1}, Bytes{2}, Bytes{3}}});

  cases.push_back({"DataInText", R"(
    .entry main
    .text
    main:
      jmp start
    key:
      .byte 0x13, 0x37, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00
    start:
      loadpc r2, key       ; read embedded data through a pc-relative load
      movi r0, 1
      mov r1, r2
      syscall
  )",
                   {{}}});

  cases.push_back({"PcRelativeLea", R"(
    .entry main
    .text
    main:
      lea r2, msg
      movi r0, 2
      movi r1, 1
      mov r3, r2       ; keep address
      mov r2, r3
      movi r3, 5
      syscall
      movi r0, 1
      movi r1, 0
      syscall
    .rodata
    msg: .ascii "lea!\n"
  )",
                   {{}}});

  cases.push_back({"EchoService", R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, buf
      movi r3, 64
      syscall
      test r0, r0
      jeq quit
      mov r3, r0
      movi r0, 2
      movi r1, 1
      movi r2, buf
      syscall
      jmp main
    quit:
      movi r0, 1
      movi r1, 0
      syscall
    .bss
    buf: .space 64
  )",
                   {Bytes{'h', 'i'}, Bytes{}, Bytes(64, 'x')}});

  cases.push_back({"RecursionFibonacci", R"(
    .entry main
    .text
    main:
      movi r1, 12
      call fib
      movi r0, 1
      syscall
    fib:
      cmpi r1, 2
      jlt base
      push r1
      subi r1, 1
      call fib
      pop r2          ; n
      push r1         ; fib(n-1)
      mov r1, r2
      subi r1, 2
      call fib
      pop r2
      add r1, r2
      ret
    base:
      ret
  )",
                   {{}}});

  cases.push_back({"RandomSyscall", R"(
    .entry main
    .text
    main:
      movi r0, 7
      movi r1, buf
      movi r2, 16
      syscall
      movi r0, 2
      movi r1, 1
      movi r2, buf
      movi r3, 16
      syscall
      movi r0, 1
      movi r1, 0
      syscall
    .bss
    buf: .space 16
  )",
                   {{}}});

  cases.push_back({"SharedCodeTailJump", R"(
    .entry main
    .text
    main:
      movi r1, 1
      call f1
      call f2
      movi r0, 1
      syscall
    f1:
      addi r1, 10
      jmp shared
    f2:
      addi r1, 100
    shared:
      addi r1, 1000
      ret
  )",
                   {{}}});

  return cases;
}

class NullRewriteTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, PlacementKind>> {};

TEST_P(NullRewriteTest, PreservesBehaviour) {
  auto cases = e2e_cases();
  auto [idx, placement] = GetParam();
  ASSERT_LT(idx, cases.size());
  const E2eCase& c = cases[idx];
  SCOPED_TRACE(c.name);

  zelf::Image original = must_assemble(c.src);
  RewriteOptions opts;
  opts.placement = placement;
  opts.seed = 42;
  RewriteResult rewritten = must_rewrite(original, opts);

  for (const auto& input : c.inputs) {
    expect_equivalent(original, rewritten.image, input, /*seed=*/7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCasesAllStrategies, NullRewriteTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 12),
                       ::testing::Values(PlacementKind::kNearfit, PlacementKind::kDiversity,
                                         PlacementKind::kPinPage)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, PlacementKind>>& info) {
      auto cases = e2e_cases();
      return std::string(cases[std::get<0>(info.param)].name) + "_" +
             rewriter::placement_kind_name(std::get<1>(info.param));
    });

TEST(NullRewrite, CaseCountMatchesRange) { EXPECT_EQ(e2e_cases().size(), 12u); }

// ---- checked invariants in the reassembler ----

TEST(Reassembler, WriteBelowOutputSpanIsRejected) {
  // write_bytes used to assert(addr >= main.begin); with NDEBUG the offset
  // subtraction underflowed into a wild out-of-bounds write. It is now a
  // checked error on every build.
  zelf::Image img =
      must_assemble(".entry main\n.text\nmain: movi r0, 1\nmovi r1, 0\nsyscall\n");
  auto prog = analysis::build_ir(img);
  ASSERT_TRUE(prog.ok()) << prog.error().message;
  rewriter::Reassembler reasm(*prog, rewriter::ReassemblyOptions{});

  const std::uint64_t base = prog->original.text().vaddr;
  Bytes nop{0x90};
  Status bad = rewriter::ReassemblerTestPeer::write_bytes(reasm, base - 1, nop);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().kind, Error::Kind::kInternal);

  // The span base itself, and the overflow area past main.end, stay valid.
  EXPECT_TRUE(rewriter::ReassemblerTestPeer::write_bytes(reasm, base, nop).ok());
  const std::uint64_t end = base + prog->original.text().bytes.size();
  EXPECT_TRUE(rewriter::ReassemblerTestPeer::write_bytes(reasm, end + 16, nop).ok());

  // Empty writes are a no-op regardless of address.
  EXPECT_TRUE(rewriter::ReassemblerTestPeer::write_bytes(reasm, 0, Bytes{}).ok());
}

// ---- structural properties of the rewritten binary ----

TEST(Rewrite, NoCopyOfOriginalCodeRemains) {
  // The defining property vs. prior static rewriters: the output must NOT
  // contain the original text as a contiguous blob.
  std::string src = ".entry main\n.text\nmain:\n";
  for (int i = 0; i < 50; ++i) src += " addi r2, " + std::to_string(i) + "\n";
  src += " movi r0, 1\n mov r1, r2\n syscall\n";
  zelf::Image original = must_assemble(src);
  RewriteResult r = must_rewrite(original);

  const Bytes& orig_text = original.text().bytes;
  const Bytes& new_text = r.image.text().bytes;
  auto it = std::search(new_text.begin(), new_text.end(), orig_text.begin(), orig_text.end());
  EXPECT_EQ(it, new_text.end()) << "rewritten text contains a full copy of the original";
  expect_equivalent(original, r.image);
}

TEST(Rewrite, FileSizeOverheadIsOverflowOnly) {
  zelf::Image original = must_assemble(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 3
      syscall
  )");
  RewriteResult r = must_rewrite(original);
  std::size_t orig_size = zelf::write_image(original).size();
  // The original image carries ground-truth symbols; the rewritten one has
  // none, so compare against a stripped original.
  zelf::Image stripped = original;
  stripped.symbols.clear();
  orig_size = zelf::write_image(stripped).size();
  std::size_t new_size = zelf::write_image(r.image).size();
  EXPECT_EQ(new_size, orig_size + r.reassembly.overflow_bytes);
}

TEST(Rewrite, EntryAddressUnchanged) {
  zelf::Image original = must_assemble(".entry main\n.text\nmain: movi r0, 1\nmovi r1, 0\nsyscall\n");
  RewriteResult r = must_rewrite(original);
  EXPECT_EQ(r.image.entry, original.entry);
}

TEST(Rewrite, DataSegmentsCopiedVerbatim) {
  zelf::Image original = must_assemble(R"(
    .entry main
    .text
    main:
      movi r0, 1
      movi r1, 0
      syscall
    .rodata
    r: .quad 0x1122334455667788
    .data
    d: .byte 1, 2, 3
    .bss
    b: .space 128
  )");
  RewriteResult r = must_rewrite(original);
  EXPECT_EQ(r.image.segment_of(zelf::SegKind::kRodata)->bytes,
            original.segment_of(zelf::SegKind::kRodata)->bytes);
  EXPECT_EQ(r.image.segment_of(zelf::SegKind::kData)->bytes,
            original.segment_of(zelf::SegKind::kData)->bytes);
  EXPECT_EQ(r.image.segment_of(zelf::SegKind::kBss)->memsize, 128u);
}

TEST(Rewrite, DiversitySeedsChangeLayoutNotBehaviour) {
  // Enough separate functions that the random placement has real choices.
  std::string src = R"(
    .entry main
    .text
    main:
      movi r2, 0
    loop:
      addi r2, 7
      cmpi r2, 70
      jlt loop
)";
  for (int i = 0; i < 8; ++i) src += "      call f" + std::to_string(i) + "\n";
  src += R"(
      movi r0, 1
      mov r1, r2
      syscall
)";
  for (int i = 0; i < 8; ++i)
    src += "    f" + std::to_string(i) + ":\n      addi r2, " + std::to_string(i + 1) +
           "\n      xori r2, " + std::to_string(17 * (i + 3)) + "\n      ret\n";
  zelf::Image original = must_assemble(src);
  RewriteOptions a, b;
  a.placement = b.placement = PlacementKind::kDiversity;
  a.seed = 1;
  b.seed = 2;
  auto ra = must_rewrite(original, a);
  auto rb = must_rewrite(original, b);
  EXPECT_NE(ra.image.text().bytes, rb.image.text().bytes) << "layouts identical across seeds";
  expect_equivalent(original, ra.image);
  expect_equivalent(original, rb.image);
  expect_equivalent(ra.image, rb.image);
}

TEST(Rewrite, SameSeedIsDeterministic) {
  zelf::Image original = must_assemble(
      ".entry main\n.text\nmain: call f\nmovi r0, 1\nsyscall\nf: movi r1, 2\nret\n");
  RewriteOptions opts;
  opts.placement = PlacementKind::kDiversity;
  opts.seed = 99;
  auto a = must_rewrite(original, opts);
  auto b = must_rewrite(original, opts);
  EXPECT_EQ(a.image.text().bytes, b.image.text().bytes);
}

TEST(Rewrite, UnreachableCodeIsNotLifted) {
  // Code behind an unconditional jump that nothing references is never
  // reached by conclusive traversal; it stays as verbatim bytes at its
  // original address instead of being lifted into relocatable dollops.
  zelf::Image original = must_assemble(R"(
    .entry main
    .text
    main:
      jmp finish
    dead:                 ; never referenced: must not be lifted
      movi r2, 1
      movi r3, 2
      add r2, r3
      jmp dead
    finish:
      movi r0, 1
      movi r1, 0
      syscall
  )");
  RewriteResult r = must_rewrite(original);
  // Lifted instructions: jmp + the three in finish (+ a possible synthetic
  // jump for the syscall's fallthrough); the four dead ones stay verbatim.
  EXPECT_LE(r.reassembly.insns_placed, 5u);
  EXPECT_GE(r.analysis.verbatim_ranges, 1u);
  expect_equivalent(original, r.image);
}

TEST(Rewrite, VerbatimBytesStayAtOriginalAddresses) {
  zelf::Image original = must_assemble(R"(
    .entry main
    .text
    main:
      jmp start
    blob:
      .byte 0xde, 0xad, 0xbe, 0xef
    start:
      movi r0, 1
      movi r1, 0
      syscall
  )");
  RewriteResult r = must_rewrite(original);
  const Bytes& text = r.image.text().bytes;
  EXPECT_EQ(text[5], 0xde);
  EXPECT_EQ(text[6], 0xad);
  EXPECT_EQ(text[7], 0xbe);
  EXPECT_EQ(text[8], 0xef);
}

TEST(Rewrite, PinnedAddressHoldsReferenceToRelocatedCode) {
  zelf::Image original = must_assemble(R"(
    .entry main
    .text
    main:
      movi r1, target
      jmpr r1
    target:
      movi r0, 1
      movi r1, 55
      syscall
  )");
  RewriteResult r = must_rewrite(original);
  // `target` (0x400008) is pinned; the byte there must now be a jump
  // opcode (2- or 5-byte form), not the original movi opcode.
  std::uint64_t target_off = 6 + 2;
  Byte op = r.image.text().bytes[target_off];
  EXPECT_TRUE(op == 0xEB || op == 0xE9) << "expected jmp at pinned address, got " << int(op);
  auto res = behaviour_of(r.image);
  EXPECT_EQ(res.exit_status, 55);
}

TEST(Rewrite, GrowingTransformSpillsToOverflowNotBreakage) {
  // A program whose text is almost fully pinned leaves little free space;
  // relocated code must spill to the overflow area and still work.
  std::string src = ".entry main\n.text\nmain:\n";
  for (int i = 0; i < 40; ++i) src += " call f" + std::to_string(i) + "\n";
  src += " movi r0, 1\n mov r1, r2\n syscall\n";
  for (int i = 0; i < 40; ++i)
    src += "f" + std::to_string(i) + ":\n addi r2, " + std::to_string(i) + "\n ret\n";
  zelf::Image original = must_assemble(src);
  RewriteOptions opts;
  opts.analysis.pinning.naive_pin_all = true;  // worst case: pin everything
  RewriteResult r = must_rewrite(original, opts);
  EXPECT_GT(r.reassembly.overflow_bytes, 0u);
  expect_equivalent(original, r.image);
}

TEST(Rewrite, NaivePinningCostsMoreFileSize) {
  std::string src = ".entry main\n.text\nmain:\n";
  for (int i = 0; i < 100; ++i) src += " addi r2, 1\n";
  src += " movi r0, 1\n mov r1, r2\n syscall\n";
  zelf::Image original = must_assemble(src);

  RewriteOptions smart;
  RewriteResult a = must_rewrite(original, smart);
  RewriteOptions naive;
  naive.analysis.pinning.naive_pin_all = true;
  RewriteResult b = must_rewrite(original, naive);

  EXPECT_GT(b.reassembly.overflow_bytes, a.reassembly.overflow_bytes);
  expect_equivalent(original, a.image);
  expect_equivalent(original, b.image);
}

// ---- sleds (dense pins) ----

TEST(Sled, AdjacentPinnedTargetsDispatchCorrectly) {
  // Two jump-table slots one byte apart force a sled: there is no 1-byte
  // control transfer (paper Sec. II-C2).
  const char* src = R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, buf
      movi r3, 1
      syscall
      load8 r0, [r2]
      jmpt r0, table
    t0: nop                ; 1 byte -- the next slot is 1 byte away
    t1: movi r1, 111
        jmp done
    done:
      movi r0, 1
      syscall
    .rodata
    table: .quad t0, t1
           .quad 0
    .bss
    buf: .space 8
  )";
  zelf::Image original = must_assemble(src);
  RewriteResult r = must_rewrite(original);
  EXPECT_GE(r.reassembly.sleds, 1u);
  for (Byte sel : {Byte{0}, Byte{1}}) {
    expect_equivalent(original, r.image, Bytes{sel});
  }
}

TEST(Sled, FourAdjacentPins) {
  const char* src = R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, buf
      movi r3, 1
      syscall
      load8 r0, [r2]
      mov r6, sp
      jmpt r0, table
    t0: push r1
    t1: push r1
    t2: push r1
    t3: push r1
        mov r5, r6
        sub r5, sp
        shri r5, 3          ; observable landing depth: 4 - index
        mov sp, r6
        movi r0, 1
        mov r1, r5
        syscall
    .rodata
    table: .quad t0, t1, t2, t3
           .quad 0
    .bss
    buf: .space 8
  )";
  zelf::Image original = must_assemble(src);
  RewriteResult r = must_rewrite(original);
  EXPECT_GE(r.reassembly.sleds, 1u);
  EXPECT_GE(r.reassembly.sled_entries, 4u);
  for (Byte sel : {Byte{0}, Byte{1}, Byte{2}, Byte{3}}) {
    auto a = behaviour_of(original, Bytes{sel});
    auto b = behaviour_of(r.image, Bytes{sel});
    EXPECT_EQ(a.exit_status, 4 - sel);
    EXPECT_EQ(a, b) << "selector " << int(sel);
  }
}

TEST(Sled, DenseRunBeyondCapacityFailsLoudly) {
  // Six pins one byte apart exceed the single-push sled's capacity; the
  // rewrite must fail with a clear unsupported error, never mis-rewrite.
  std::string src = R"(
    .entry main
    .text
    main:
      jmpt r0, table
  )";
  for (int i = 0; i < 6; ++i) src += "    t" + std::to_string(i) + ": push r1\n";
  src += R"(
      hlt
    .rodata
    table: .quad t0, t1, t2, t3, t4, t5
           .quad 0
  )";
  zelf::Image original = must_assemble(src);
  auto r = rewrite(original, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, Error::Kind::kUnsupported);
  EXPECT_NE(r.error().message.find("sled"), std::string::npos) << r.error().message;
}

TEST(Pins, OneByteTerminatorSqueezedAgainstDataEmitsInPlace) {
  // The pinned `ret` has a verbatim blob right after it: no room for even
  // a 2-byte reference, so the 1-byte instruction itself is materialized
  // at its pin.
  const char* src = R"(
    .entry main
    .text
    main:
      movi r1, quickret
      callr r1
      movi r0, 1
      movi r1, 0
      syscall
    quickret:
      ret
    blob:
      .byte 0x00, 0x00, 0x00, 0x00
  )";
  zelf::Image original = must_assemble(src);
  RewriteResult r = must_rewrite(original);
  // At least the squeezed terminator is in place; pin-site coalescing may
  // keep other pinned dollops at their original addresses too.
  EXPECT_GE(r.reassembly.pins_in_place, 1u);
  // The byte at the pin is the original ret, not a jump.
  std::uint64_t off = 6 + 2 + 6 + 6 + 2;  // movi,callr,movi,movi,syscall
  EXPECT_EQ(r.image.text().bytes[off], 0xC3);
  expect_equivalent(original, r.image);
}

TEST(Sled, ThreeAdjacentPins) {
  const char* src = R"(
    .entry main
    .text
    main:
      movi r0, 3
      movi r1, 0
      movi r2, buf
      movi r3, 1
      syscall
      load8 r0, [r2]
      jmpt r0, table
    t0: nop
    t1: nop
    t2: movi r1, 5
        addi r1, 10
    done:
      movi r0, 1
      syscall
    .rodata
    table: .quad t0, t1, t2
           .quad 0
    .bss
    buf: .space 8
  )";
  zelf::Image original = must_assemble(src);
  RewriteResult r = must_rewrite(original);
  EXPECT_GE(r.reassembly.sleds, 1u);
  EXPECT_GE(r.reassembly.sled_entries, 3u);
  for (Byte sel : {Byte{0}, Byte{1}, Byte{2}}) {
    expect_equivalent(original, r.image, Bytes{sel});
  }
}

// ---- recycled workspaces (ExecPolicy::workspace) ----

// A straight-line program whose size scales linearly with `n`, for driving
// the workspace's text-proportional scratch tables to chosen demands.
std::string straightline_program(int n) {
  std::string src = ".entry main\n.text\nmain:\n";
  for (int i = 0; i < n; ++i) src += "  addi r2, " + std::to_string(i % 7) + "\n";
  src += "  movi r0, 1\n  mov r1, r2\n  syscall\n";
  return src;
}

TEST(Workspace, RecyclingNeverChangesOutputBytes) {
  zelf::Image img = must_assemble(straightline_program(400));
  RewriteOptions opts;
  opts.transforms = {"cfi"};
  Bytes reference = zelf::write_image(must_rewrite(img, opts).image);

  RewriteWorkspace ws;
  ExecPolicy exec;
  exec.workspace = &ws;
  for (int pass = 0; pass < 3; ++pass) {
    auto r = rewrite(img, opts, exec);
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_EQ(zelf::write_image(r->image), reference)
        << "recycled workspace drifted on pass " << pass;
  }
  EXPECT_EQ(ws.cycles(), 3u);
  EXPECT_GT(ws.retained_bytes(), 0u) << "nothing was actually recycled";
}

TEST(Workspace, ReuseAcrossDifferentImagesMatchesFreshRewrites) {
  zelf::Image a = must_assemble(straightline_program(300));
  zelf::Image b = must_assemble(straightline_program(37));
  Bytes ref_a = zelf::write_image(must_rewrite(a).image);
  Bytes ref_b = zelf::write_image(must_rewrite(b).image);

  // Big then small then big again through ONE workspace: stale capacity
  // from a previous (differently-sized) input must never leak into bytes.
  RewriteWorkspace ws;
  ExecPolicy exec;
  exec.workspace = &ws;
  for (const auto* want : {&ref_a, &ref_b, &ref_a}) {
    const zelf::Image& img = (want == &ref_a) ? a : b;
    auto r = rewrite(img, {}, exec);
    ASSERT_TRUE(r.ok()) << r.error().message;
    EXPECT_EQ(zelf::write_image(r->image), *want);
  }
}

TEST(Workspace, OversizedCycleAgesOutOfTheRetentionWindow) {
  // Regression for unbounded retention: one x50-scale request must not pin
  // its high-water mark once the trim window fills with x1 traffic.
  zelf::Image big = must_assemble(straightline_program(20000));
  zelf::Image small = must_assemble(straightline_program(50));

  RewriteWorkspace ws;
  ExecPolicy exec;
  exec.workspace = &ws;
  ASSERT_TRUE(rewrite(big, {}, exec).ok());
  std::size_t after_big = ws.retained_bytes();
  ASSERT_GT(after_big, 0u);

  // More small cycles than the trim window holds: the oversized demand
  // ages out and finish_cycle() releases down to ~2x the small demand.
  std::size_t settled = after_big;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rewrite(small, {}, exec).ok());
    settled = std::min(settled, ws.retained_bytes());
  }
  EXPECT_LT(settled, after_big / 2)
      << "workspace still pins the oversized high-water mark ("
      << after_big << " -> " << settled << " bytes)";

  // And the trimmed workspace still produces correct bytes.
  auto r = rewrite(small, {}, exec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(zelf::write_image(r->image), zelf::write_image(must_rewrite(small).image));
}

TEST(Workspace, ThreadLocalArenaRetentionIsBounded) {
  // Workspace-less rewrites share a thread_local reassembly arena; its
  // retention uses a two-cycle hysteresis, so a x50 rewrite followed by
  // sustained x1 traffic must release the high-water mark by the third
  // small acquire instead of pinning it for the thread's lifetime.
  zelf::Image big = must_assemble(straightline_program(20000));
  zelf::Image small = must_assemble(straightline_program(50));

  ASSERT_TRUE(rewrite(big).ok());
  std::size_t after_big = rewriter::thread_arena_retained_bytes();
  ASSERT_GT(after_big, 0u);

  std::size_t settled = after_big;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rewrite(small).ok());
    settled = std::min(settled, rewriter::thread_arena_retained_bytes());
  }
  EXPECT_LT(settled, after_big / 2)
      << "thread arena still pins the oversized high-water mark ("
      << after_big << " -> " << settled << " bytes)";
}

TEST(WorkspacePool, CheckoutRecyclesSequentiallyAndLeaseReturns) {
  WorkspacePool pool;
  EXPECT_EQ(pool.created(), 0u);
  {
    WorkspacePool::Lease lease = pool.checkout();
    ASSERT_TRUE(lease);
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.idle_count(), 0u);

    // A concurrent checkout while the first is leased makes a SECOND
    // workspace rather than sharing (workspaces are single-owner).
    WorkspacePool::Lease other = pool.checkout();
    EXPECT_NE(lease.get(), other.get());
    EXPECT_EQ(pool.created(), 2u);
  }
  EXPECT_EQ(pool.idle_count(), 2u);

  // Sequential checkouts now recycle; nothing new is created.
  for (int i = 0; i < 5; ++i) WorkspacePool::Lease lease = pool.checkout();
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.idle_count(), 2u);
}

}  // namespace
}  // namespace zipr
