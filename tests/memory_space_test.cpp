// Differential tests for the size-indexed free-space core: the
// IntervalSet fit queries and MemorySpace allocation paths are churned
// against a naive byte-map reference model and must agree on every
// observable at every step. Plus edge-case coverage for
// allocate_in_window at window boundaries and the release() diagnostics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/rng.h"
#include "zipr/memory_space.h"

namespace zipr::rewriter {
namespace {

// ---- reference model: a byte map over a small address span ----

class ByteModel {
 public:
  ByteModel(std::uint64_t lo, std::uint64_t hi) : lo_(lo), free_(hi - lo, false) {}

  void set_free(std::uint64_t begin, std::uint64_t end, bool f) {
    for (std::uint64_t a = begin; a < end; ++a) free_[a - lo_] = f;
  }
  bool all_free(std::uint64_t begin, std::uint64_t end) const {
    if (begin < lo_ || end > lo_ + free_.size() || begin > end) return false;
    for (std::uint64_t a = begin; a < end; ++a)
      if (!free_[a - lo_]) return false;
    return true;
  }
  bool any_free(std::uint64_t begin, std::uint64_t end) const {
    for (std::uint64_t a = std::max(begin, lo_); a < std::min(end, lo_ + free_.size()); ++a)
      if (free_[a - lo_]) return true;
    return false;
  }

  /// Maximal free runs, ascending.
  std::vector<Interval> intervals() const {
    std::vector<Interval> out;
    std::uint64_t n = free_.size();
    for (std::uint64_t i = 0; i < n;) {
      if (!free_[i]) { ++i; continue; }
      std::uint64_t j = i;
      while (j < n && free_[j]) ++j;
      out.push_back({lo_ + i, lo_ + j});
      i = j;
    }
    return out;
  }

  std::uint64_t total_free() const {
    std::uint64_t t = 0;
    for (bool f : free_) t += f ? 1 : 0;
    return t;
  }

  /// Best-fit expectation: smallest maximal run >= size, ties by lowest base.
  std::optional<std::uint64_t> best_fit(std::uint64_t size) const {
    std::optional<Interval> best;
    for (const auto& iv : intervals())
      if (iv.size() >= size && (!best || iv.size() < best->size())) best = iv;
    return best ? std::optional(best->begin) : std::nullopt;
  }

  /// allocate_in_window expectation: brute force over every base in
  /// [lo, hi], nearest to prefer, ties to the lower base.
  std::optional<std::uint64_t> window_fit(std::uint64_t size, std::uint64_t lo,
                                          std::uint64_t hi, std::uint64_t prefer) const {
    std::optional<std::uint64_t> best;
    std::uint64_t best_dist = UINT64_MAX;
    for (std::uint64_t b = lo; b <= hi; ++b) {
      if (!all_free(b, b + size)) continue;
      std::uint64_t dist = b > prefer ? b - prefer : prefer - b;
      if (dist < best_dist) {
        best_dist = dist;
        best = b;
      }
    }
    return best;
  }

 private:
  std::uint64_t lo_;
  std::vector<bool> free_;
};

// ---- IntervalSet churn vs model: fit queries and copy-free visitors ----

class IntervalSetDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetDifferentialTest, SizeIndexMatchesModel) {
  constexpr std::uint64_t kLo = 0x1000, kHi = 0x3000;
  Rng rng(GetParam());
  IntervalSet s;
  ByteModel model(kLo, kHi);

  for (int step = 0; step < 3000; ++step) {
    std::uint64_t a = kLo + rng.below(kHi - kLo);
    std::uint64_t b = std::min(kHi, a + 1 + rng.below(96));
    if (rng.chance(3, 5)) {
      s.insert(a, b);
      model.set_free(a, b, true);
    } else {
      s.erase(a, b);
      model.set_free(a, b, false);
    }

    ASSERT_EQ(s.total_size(), model.total_free()) << "step " << step;
    if (step % 16 != 0) continue;  // full structural compare periodically

    auto want = model.intervals();
    ASSERT_EQ(s.intervals(), want) << "step " << step;

    // Iterators agree with intervals().
    std::vector<Interval> via_iter(s.begin(), s.end());
    ASSERT_EQ(via_iter, want);

    // for_each_in visits exactly the overlapping intervals.
    std::uint64_t wl = kLo + rng.below(kHi - kLo), wh = std::min(kHi, wl + 1 + rng.below(512));
    std::vector<Interval> in_window;
    s.for_each_in(wl, wh, [&](const Interval& iv) { in_window.push_back(iv); });
    std::vector<Interval> want_window;
    for (const auto& iv : want)
      if (iv.begin < wh && iv.end > wl) want_window.push_back(iv);
    ASSERT_EQ(in_window, want_window) << "window [" << wl << "," << wh << ")";

    // Fit queries agree with brute force over the model's runs.
    for (std::uint64_t size : {1u, 2u, 7u, 31u, 64u, 200u}) {
      auto best = s.best_fit(size);
      std::optional<Interval> want_best, want_first, want_largest;
      for (const auto& iv : want) {
        if (iv.size() >= size) {
          if (!want_best || iv.size() < want_best->size()) want_best = iv;
          if (!want_first) want_first = iv;
        }
        if (!want_largest || iv.size() >= want_largest->size()) want_largest = iv;
      }
      ASSERT_EQ(best, want_best) << "best_fit(" << size << ") step " << step;
      ASSERT_EQ(s.first_fit(size), want_first) << "first_fit(" << size << ")";
      ASSERT_EQ(s.largest(), want_largest);

      // for_each_fitting yields exactly the fitting intervals, smallest
      // first, and honors early exit.
      std::uint64_t fit_count = 0, want_fit_count = 0;
      std::uint64_t prev_size = 0;
      s.for_each_fitting(size, [&](const Interval& iv) {
        EXPECT_GE(iv.size(), size);
        EXPECT_GE(iv.size(), prev_size);
        prev_size = iv.size();
        ++fit_count;
      });
      for (const auto& iv : want) want_fit_count += iv.size() >= size ? 1 : 0;
      ASSERT_EQ(fit_count, want_fit_count);
      bool stopped = false;
      s.for_each_fitting(size, [&](const Interval&) {
        EXPECT_FALSE(stopped);
        stopped = true;
        return false;  // early exit after one
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetDifferentialTest, ::testing::Values(1, 7, 99));

// ---- MemorySpace churn vs model ----

class MemorySpaceDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemorySpaceDifferentialTest, ChurnMatchesModel) {
  constexpr std::uint64_t kLo = 0x1000, kHi = 0x5000;
  Rng rng(GetParam());
  MemorySpace s({kLo, kHi});
  ByteModel model(kLo, kHi);
  model.set_free(kLo, kHi, true);

  for (int step = 0; step < 10000; ++step) {
    switch (rng.below(5)) {
      case 0: {  // reserve
        std::uint64_t a = kLo + rng.below(kHi - kLo);
        std::uint64_t n = 1 + rng.below(64);
        bool want_ok = a + n <= kHi && model.all_free(a, a + n);
        EXPECT_EQ(s.reserve(a, n).ok(), want_ok) << "step " << step;
        if (want_ok) model.set_free(a, a + n, false);
        break;
      }
      case 1: {  // release: sometimes valid, sometimes out of span / double
        std::uint64_t a = kLo - 8 + rng.below(kHi - kLo + 16);
        std::uint64_t n = 1 + rng.below(64);
        bool in_span = a >= kLo && a + n <= kHi;
        bool want_ok = in_span && !model.any_free(a, a + n);
        EXPECT_EQ(s.release(a, n).ok(), want_ok) << "step " << step;
        if (want_ok) model.set_free(a, a + n, true);
        break;
      }
      case 2: {  // allocate (best fit)
        std::uint64_t n = 1 + rng.below(96);
        auto got = s.allocate(n);
        auto want = model.best_fit(n);
        ASSERT_EQ(got, want) << "allocate(" << n << ") step " << step;
        if (got) model.set_free(*got, *got + n, false);
        break;
      }
      case 3: {  // allocate_in_window
        std::uint64_t n = 1 + rng.below(8);
        std::uint64_t prefer = kLo + rng.below(kHi - kLo);
        std::uint64_t lo = prefer >= 126 ? prefer - 126 : 0;
        std::uint64_t hi = prefer + 129;
        auto got = s.allocate_in_window(n, lo, hi, prefer);
        auto want = model.window_fit(n, lo, hi, prefer);
        ASSERT_EQ(got, want) << "window alloc step " << step;
        if (got) model.set_free(*got, *got + n, false);
        break;
      }
      case 4: {  // read-only observables
        EXPECT_EQ(s.free_bytes(), model.total_free());
        auto runs = model.intervals();
        std::uint64_t largest = 0;
        for (const auto& iv : runs) largest = std::max(largest, iv.size());
        EXPECT_EQ(s.largest_free(), largest);
        std::uint64_t a = kLo + rng.below(kHi - kLo);
        std::uint64_t n = 1 + rng.below(32);
        EXPECT_EQ(s.is_free(a, n), a + n <= kHi && model.all_free(a, a + n));
        break;
      }
    }
  }
  ASSERT_EQ(s.free_ranges(), model.intervals());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemorySpaceDifferentialTest, ::testing::Values(2, 17, 4242));

// ---- allocate_in_window edge cases ----

TEST(MemorySpaceWindow, SingleBaseWindow) {
  MemorySpace s({0x1000, 0x2000});
  // lo == hi: the only candidate base is 0x1800.
  auto a = s.allocate_in_window(8, 0x1800, 0x1800, 0x1800);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0x1800u);
  // The same single-base window is now occupied.
  EXPECT_FALSE(s.allocate_in_window(8, 0x1800, 0x1800, 0x1800).has_value());
  // A single-base window whose extent hangs past the free range fails.
  ASSERT_TRUE(s.reserve(0x1900, 0x100).ok());
  EXPECT_FALSE(s.allocate_in_window(8, 0x18f9, 0x18f9, 0x18f9).has_value());
  EXPECT_TRUE(s.allocate_in_window(8, 0x18f8, 0x18f8, 0x18f8).has_value());
}

TEST(MemorySpaceWindow, InvertedWindowIsEmpty) {
  MemorySpace s({0x1000, 0x2000});
  EXPECT_FALSE(s.allocate_in_window(8, 0x1900, 0x1800, 0x1850).has_value());
}

TEST(MemorySpaceWindow, StraddlingOverflowFrontierStaysInMain) {
  MemorySpace s({0x1000, 0x2000});
  // Window reaches past main.end: only main-span bytes are allocatable, so
  // the last viable base leaves the allocation flush with the frontier.
  auto a = s.allocate_in_window(8, 0x1ff0, 0x2100, 0x2100);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0x2000u - 8);
  // With the tail occupied, a window entirely past the frontier finds nothing.
  EXPECT_FALSE(s.allocate_in_window(8, 0x2000, 0x2100, 0x2000).has_value());
  EXPECT_EQ(s.overflow_used(), 0u) << "window allocation must never touch overflow";
}

TEST(MemorySpaceWindow, WindowClampedAtSpanStart) {
  MemorySpace s({0x1000, 0x2000});
  auto a = s.allocate_in_window(8, 0x0, 0x1000, 0x0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 0x1000u);  // nearest in-span base at the span edge
}

// ---- release diagnostics (no silent corruption without asserts) ----

TEST(MemorySpaceRelease, OutOfSpanIsRejected) {
  MemorySpace s({0x1000, 0x2000});
  ASSERT_TRUE(s.reserve(0x1000, 0x1000).ok());
  EXPECT_FALSE(s.release(0xff0, 0x20).ok());    // starts below the span
  EXPECT_FALSE(s.release(0x1ff0, 0x20).ok());   // runs past the frontier
  EXPECT_FALSE(s.release(0x2000, 0x10).ok());   // entirely in overflow
  EXPECT_EQ(s.free_bytes(), 0u) << "failed releases must not free anything";
}

TEST(MemorySpaceRelease, DoubleReleaseIsRejected) {
  MemorySpace s({0x1000, 0x2000});
  ASSERT_TRUE(s.reserve(0x1000, 0x100).ok());
  ASSERT_TRUE(s.release(0x1000, 0x100).ok());
  EXPECT_FALSE(s.release(0x1000, 0x100).ok());  // exact double release
  EXPECT_FALSE(s.release(0x10f8, 0x10).ok());   // partial overlap with free
  EXPECT_EQ(s.free_bytes(), 0x1000u);
}

}  // namespace
}  // namespace zipr::rewriter
