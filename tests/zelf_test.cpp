// Unit tests for the ZELF container: image model, validation, and
// serialization round trips.
#include <gtest/gtest.h>

#include "zelf/image.h"
#include "zelf/io.h"

namespace zipr::zelf {
namespace {

Image minimal_image() {
  Image img;
  Segment text;
  text.kind = SegKind::kText;
  text.vaddr = layout::kTextBase;
  text.bytes = {0x90, 0xC3};  // nop; ret
  text.memsize = text.bytes.size();
  img.segments.push_back(text);
  img.entry = layout::kTextBase;
  return img;
}

TEST(Image, SegmentLookup) {
  Image img = minimal_image();
  EXPECT_NE(img.segment_containing(layout::kTextBase), nullptr);
  EXPECT_NE(img.segment_containing(layout::kTextBase + 1), nullptr);
  EXPECT_EQ(img.segment_containing(layout::kTextBase + 2), nullptr);
  EXPECT_EQ(img.segment_containing(0), nullptr);
  EXPECT_EQ(&img.text(), img.segment_of(SegKind::kText));
}

TEST(Image, ReadBytes) {
  Image img = minimal_image();
  auto b = img.read_bytes(layout::kTextBase, 2);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, (Bytes{0x90, 0xC3}));
  EXPECT_FALSE(img.read_bytes(layout::kTextBase, 3).ok());
  EXPECT_FALSE(img.read_bytes(0x1000, 1).ok());
}

TEST(Image, ValidationAcceptsMinimal) {
  EXPECT_TRUE(minimal_image().validate().ok());
}

TEST(Image, ValidationRejectsEntryOutsideText) {
  Image img = minimal_image();
  img.entry = 0x1000;
  EXPECT_FALSE(img.validate().ok());
}

TEST(Image, ValidationRejectsEntryInData) {
  Image img = minimal_image();
  Segment data;
  data.kind = SegKind::kData;
  data.vaddr = layout::kDataBase;
  data.bytes = {1, 2, 3};
  data.memsize = 3;
  img.segments.push_back(data);
  img.entry = layout::kDataBase;
  EXPECT_FALSE(img.validate().ok());
}

TEST(Image, ValidationRejectsOverlap) {
  Image img = minimal_image();
  Segment rod;
  rod.kind = SegKind::kRodata;
  rod.vaddr = layout::kTextBase + 1;  // overlaps text
  rod.bytes = {0};
  rod.memsize = 1;
  img.segments.push_back(rod);
  EXPECT_FALSE(img.validate().ok());
}

TEST(Image, ValidationRejectsBssWithBytes) {
  Image img = minimal_image();
  Segment bss;
  bss.kind = SegKind::kBss;
  bss.vaddr = layout::kBssBase;
  bss.bytes = {0};
  bss.memsize = 1;
  img.segments.push_back(bss);
  EXPECT_FALSE(img.validate().ok());
}

TEST(Image, ValidationRejectsTwoTextSegments) {
  Image img = minimal_image();
  Segment t2 = img.segments[0];
  t2.vaddr = layout::kTextBase + 0x1000;
  img.segments.push_back(t2);
  EXPECT_FALSE(img.validate().ok());
}

TEST(Image, ValidationRejectsMemsizeSmallerThanFile) {
  Image img = minimal_image();
  img.segments[0].memsize = 1;  // bytes.size() == 2
  EXPECT_FALSE(img.validate().ok());
}

TEST(Io, RoundTripMinimal) {
  Image img = minimal_image();
  Bytes wire = write_image(img);
  EXPECT_EQ(wire.size(), img.file_size());
  auto back = read_image(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->entry, img.entry);
  ASSERT_EQ(back->segments.size(), 1u);
  EXPECT_EQ(back->segments[0].bytes, img.segments[0].bytes);
}

TEST(Io, RoundTripFullImage) {
  Image img = minimal_image();
  Segment rod;
  rod.kind = SegKind::kRodata;
  rod.vaddr = layout::kRodataBase;
  rod.bytes = {1, 2, 3, 4};
  rod.memsize = 4;
  img.segments.push_back(rod);
  Segment data;
  data.kind = SegKind::kData;
  data.vaddr = layout::kDataBase;
  data.bytes = {9};
  data.memsize = 16;  // trailing zero-fill
  img.segments.push_back(data);
  Segment bss;
  bss.kind = SegKind::kBss;
  bss.vaddr = layout::kBssBase;
  bss.memsize = 4096;
  img.segments.push_back(bss);
  img.symbols.push_back({Symbol::Kind::kFunc, layout::kTextBase, 2, "main"});
  img.symbols.push_back({Symbol::Kind::kObject, layout::kDataBase, 1, "counter"});

  auto back = read_image(write_image(img));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->segments.size(), 4u);
  EXPECT_EQ(back->segments[2].memsize, 16u);
  ASSERT_EQ(back->symbols.size(), 2u);
  EXPECT_EQ(back->symbols[0].name, "main");
  EXPECT_EQ(back->symbols[0].kind, Symbol::Kind::kFunc);
  EXPECT_EQ(back->symbols[1].addr, layout::kDataBase);
}

TEST(Io, RejectsBadMagic) {
  Bytes wire = write_image(minimal_image());
  wire[0] = 'X';
  EXPECT_FALSE(read_image(wire).ok());
}

TEST(Io, RejectsTruncated) {
  Bytes wire = write_image(minimal_image());
  wire.resize(wire.size() - 1);
  EXPECT_FALSE(read_image(wire).ok());
}

TEST(Io, RejectsTrailingGarbage) {
  Bytes wire = write_image(minimal_image());
  wire.push_back(0);
  EXPECT_FALSE(read_image(wire).ok());
}

TEST(Io, FileSizeMatchesSerializedLength) {
  Image img = minimal_image();
  img.symbols.push_back({Symbol::Kind::kLabel, layout::kTextBase + 1, 0, "loop_top"});
  EXPECT_EQ(write_image(img).size(), img.file_size());
}

TEST(Io, SaveAndLoadFile) {
  Image img = minimal_image();
  std::string path = ::testing::TempDir() + "/zelf_test.zelf";
  ASSERT_TRUE(save_image(img, path).ok());
  auto back = load_image(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->entry, img.entry);
}

}  // namespace
}  // namespace zipr::zelf
