// Tests for the VLX assembler: directives, operand forms, label/expression
// resolution, section layout, and error reporting.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "isa/insn.h"
#include "zelf/image.h"

namespace zipr::assembler {
namespace {

using zelf::layout::kDataBase;
using zelf::layout::kRodataBase;
using zelf::layout::kTextBase;

Result<zelf::Image> asm_ok(std::string_view src) {
  auto img = assemble(src);
  EXPECT_TRUE(img.ok()) << (img.ok() ? "" : img.error().message);
  return img;
}

TEST(Asm, MinimalProgram) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      movi r0, 1       ; terminate
      movi r1, 42
      syscall
  )");
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->entry, kTextBase);
  EXPECT_EQ(img->text().bytes.size(), 6u + 6u + 2u);
}

TEST(Asm, EntryCanBeNonFirstLabel) {
  auto img = asm_ok(R"(
    .entry start
    .text
    helper:
      ret
    start:
      nop
      hlt
  )");
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->entry, kTextBase + 1);
}

TEST(Asm, BranchEncodingAndTargets) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      jmp done        ; rel32, 5 bytes at 0x400000
      nop
    done:
      hlt
  )");
  ASSERT_TRUE(img.ok());
  const auto& text = img->text().bytes;
  auto j = isa::decode(text);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->op, isa::Op::kJmp);
  EXPECT_EQ(j->target(kTextBase), kTextBase + 6);  // past jmp+nop
}

TEST(Asm, ForcedRel8Branch) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      jmp8 done
      nop
    done:
      hlt
  )");
  ASSERT_TRUE(img.ok());
  auto j = isa::decode(img->text().bytes);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->width, isa::BranchWidth::kRel8);
  EXPECT_EQ(j->length, 2);
  EXPECT_EQ(j->target(kTextBase), kTextBase + 3);
}

TEST(Asm, Rel8OutOfRangeIsError) {
  std::string src = ".entry main\n.text\nmain:\n jmp8 done\n";
  for (int i = 0; i < 50; ++i) src += " movi r0, 1\n";  // 300 bytes
  src += "done:\n hlt\n";
  auto img = assemble(src);
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("rel8"), std::string::npos);
}

TEST(Asm, BackwardBranch) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
    loop:
      addi r0, 1
      cmpi r0, 10
      jlt loop
      hlt
  )");
  ASSERT_TRUE(img.ok());
  // Decode third instruction (offset 12).
  Bytes tail(img->text().bytes.begin() + 12, img->text().bytes.end());
  auto j = isa::decode(tail);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->op, isa::Op::kJcc);
  EXPECT_EQ(j->cond, isa::Cond::kLt);
  EXPECT_EQ(j->target(kTextBase + 12), kTextBase);
}

TEST(Asm, AllConditionalMnemonics) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      jeq t
      jne t
      jlt t
      jle t
      jgt t
      jge t
      jb t
      jae t
    t: hlt
  )");
  ASSERT_TRUE(img.ok());
  std::size_t off = 0;
  using isa::Cond;
  for (Cond c : {Cond::kEq, Cond::kNe, Cond::kLt, Cond::kLe, Cond::kGt, Cond::kGe,
                 Cond::kB, Cond::kAe}) {
    Bytes at(img->text().bytes.begin() + static_cast<long>(off), img->text().bytes.end());
    auto j = isa::decode(at);
    ASSERT_TRUE(j.ok());
    EXPECT_EQ(j->cond, c);
    off += j->length;
  }
}

TEST(Asm, MemoryOperands) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      load r1, [r2+8]
      store [r3-16], r4
      load8 r0, [sp]
      store8 [sp+1], r0
      hlt
  )");
  ASSERT_TRUE(img.ok());
  auto b = img->text().bytes;
  auto i1 = isa::decode(b);
  ASSERT_TRUE(i1.ok());
  EXPECT_EQ(i1->op, isa::Op::kLoad);
  EXPECT_EQ(i1->ra, 1);
  EXPECT_EQ(i1->rb, 2);
  EXPECT_EQ(i1->imm, 8);
  Bytes b2(b.begin() + 6, b.end());
  auto i2 = isa::decode(b2);
  ASSERT_TRUE(i2.ok());
  EXPECT_EQ(i2->op, isa::Op::kStore);
  EXPECT_EQ(i2->ra, 3);
  EXPECT_EQ(i2->rb, 4);
  EXPECT_EQ(i2->imm, -16);
  Bytes b3(b.begin() + 12, b.end());
  auto i3 = isa::decode(b3);
  ASSERT_TRUE(i3.ok());
  EXPECT_EQ(i3->rb, isa::kSpReg);
}

TEST(Asm, LeaResolvesLabelToPcRelative) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      lea r1, table
      hlt
    .rodata
    table:
      .quad 1, 2
  )");
  ASSERT_TRUE(img.ok());
  auto i = isa::decode(img->text().bytes);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->op, isa::Op::kLea);
  EXPECT_EQ(i->pc_ref(kTextBase), kRodataBase);
}

TEST(Asm, LabelAsImmediateIsAbsoluteAddress) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      movi r1, helper    ; function pointer -> indirect branch target
      callr r1
      hlt
    helper:
      ret
  )");
  ASSERT_TRUE(img.ok());
  auto i = isa::decode(img->text().bytes);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(static_cast<std::uint64_t>(i->imm), kTextBase + 6 + 2 + 1);
}

TEST(Asm, LabelPlusOffsetExpression) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      movi r0, buf+8
      hlt
    .data
    buf:
      .space 16
  )");
  ASSERT_TRUE(img.ok());
  auto i = isa::decode(img->text().bytes);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(static_cast<std::uint64_t>(i->imm), kDataBase + 8);
}

TEST(Asm, DataDirectives) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main: hlt
    .rodata
    bytes:  .byte 1, 2, 0xff, 'A'
    words:  .word 0x1234
    longs:  .long 0xdeadbeef
    quads:  .quad main
    str:    .asciz "hi\n"
  )");
  ASSERT_TRUE(img.ok());
  const auto* rod = img->segment_of(zelf::SegKind::kRodata);
  ASSERT_NE(rod, nullptr);
  const auto& b = rod->bytes;
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[2], 0xff);
  EXPECT_EQ(b[3], 'A');
  EXPECT_EQ(get_u16(b, 4), 0x1234);
  EXPECT_EQ(get_u32(b, 6), 0xdeadbeefu);
  EXPECT_EQ(get_u64(b, 10), kTextBase);
  EXPECT_EQ(b[18], 'h');
  EXPECT_EQ(b[20], '\n');
  EXPECT_EQ(b[21], 0);
}

TEST(Asm, JumpTableViaQuadLabels) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      jmpt r0, table
    case0: hlt
    case1: ret
    .rodata
    table:
      .quad case0, case1
  )");
  ASSERT_TRUE(img.ok());
  const auto& rod = img->segment_of(zelf::SegKind::kRodata)->bytes;
  EXPECT_EQ(get_u64(rod, 0), kTextBase + 6);
  EXPECT_EQ(get_u64(rod, 8), kTextBase + 7);
}

TEST(Asm, BssTakesNoFileBytes) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main: hlt
    .bss
    buf: .space 4096
  )");
  ASSERT_TRUE(img.ok());
  const auto* bss = img->segment_of(zelf::SegKind::kBss);
  ASSERT_NE(bss, nullptr);
  EXPECT_EQ(bss->memsize, 4096u);
  EXPECT_TRUE(bss->bytes.empty());
}

TEST(Asm, BssRejectsData) {
  auto img = assemble(".entry m\n.text\nm: hlt\n.bss\n.byte 1\n");
  EXPECT_FALSE(img.ok());
}

TEST(Asm, AlignPadsWithNopInText) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      nop
      .align 8
    aligned:
      hlt
  )");
  ASSERT_TRUE(img.ok());
  const auto& b = img->text().bytes;
  ASSERT_EQ(b.size(), 9u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b[i], 0x90) << i;
  EXPECT_EQ(b[8], 0xF4);
}

TEST(Asm, OrgAdvances) {
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      nop
      .org 0x400010
    there:
      hlt
  )");
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->text().bytes.size(), 0x11u);
  EXPECT_EQ(img->text().bytes[0x10], 0xF4);
}

TEST(Asm, OrgBackwardsIsError) {
  auto img = assemble(".entry m\n.text\nm: nop\nnop\n.org 0x400001\nhlt\n");
  EXPECT_FALSE(img.ok());
}

TEST(Asm, DataInTextViaByteDirective) {
  // Embedding data in the code section is legal (and is how tests recreate
  // the paper's code/data ambiguity).
  auto img = asm_ok(R"(
    .entry main
    .text
    main:
      jmp after
    embedded:
      .byte 0x68, 0x65, 0x6c, 0x6c, 0x6f   ; "hello" inside .text
    after:
      hlt
  )");
  ASSERT_TRUE(img.ok());
  const auto& b = img->text().bytes;
  EXPECT_EQ(b[5], 0x68);
  EXPECT_EQ(b[9], 0x6f);
}

TEST(Asm, SymbolsEmittedWithKinds) {
  auto img = asm_ok(R"(
    .entry main
    .text
    .func main
      nop
      hlt
    .data
    counter: .quad 0
  )");
  ASSERT_TRUE(img.ok());
  bool saw_func = false, saw_obj = false;
  for (const auto& s : img->symbols) {
    if (s.name == "main") {
      EXPECT_EQ(s.kind, zelf::Symbol::Kind::kFunc);
      saw_func = true;
    }
    if (s.name == "counter") {
      EXPECT_EQ(s.kind, zelf::Symbol::Kind::kObject);
      saw_obj = true;
    }
  }
  EXPECT_TRUE(saw_func);
  EXPECT_TRUE(saw_obj);
}

TEST(Asm, SymbolsSuppressedOnRequest) {
  Options o;
  o.emit_symbols = false;
  auto img = assemble(".entry m\n.text\nm: hlt\n", o);
  ASSERT_TRUE(img.ok());
  EXPECT_TRUE(img->symbols.empty());
}

struct ErrorCase {
  const char* name;
  const char* src;
  const char* expect_fragment;
};

class AsmErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(AsmErrorTest, ReportsLineAndCause) {
  auto img = assemble(GetParam().src);
  ASSERT_FALSE(img.ok()) << "expected failure";
  EXPECT_NE(img.error().message.find(GetParam().expect_fragment), std::string::npos)
      << "got: " << img.error().message;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AsmErrorTest,
    ::testing::Values(
        ErrorCase{"NoEntry", ".text\nm: hlt\n", "entry"},
        ErrorCase{"UndefinedEntry", ".entry nope\n.text\nm: hlt\n", "nope"},
        ErrorCase{"UndefinedSymbol", ".entry m\n.text\nm: jmp nowhere\n", "nowhere"},
        ErrorCase{"DuplicateLabel", ".entry m\n.text\nm: nop\nm: hlt\n", "duplicate"},
        ErrorCase{"BadMnemonic", ".entry m\n.text\nm: frob r0\n", "frob"},
        ErrorCase{"BadRegister", ".entry m\n.text\nm: push r9\n", "register"},
        ErrorCase{"WrongOperandCount", ".entry m\n.text\nm: add r0\n", "expects"},
        ErrorCase{"InsnInData", ".entry m\n.text\nm: hlt\n.data\nnop\n", "only allowed in .text"},
        ErrorCase{"BadDirective", ".entry m\n.text\nm: hlt\n.bogus\n", "bogus"},
        ErrorCase{"BadAlign", ".entry m\n.text\nm: hlt\n.align 3\n", "align"}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) { return info.param.name; });

TEST(Asm, ErrorsCarryLineNumbers) {
  auto img = assemble(".entry m\n.text\nm: nop\n badop r1\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("line 4"), std::string::npos) << img.error().message;
}

TEST(Asm, CommentsAndBlankLines) {
  auto img = asm_ok(R"(
    ; full-line comment
    # hash comment
    .entry main
    .text
    main:        ; trailing comment
      movi r0, ';'   ; a char literal containing the comment marker
      hlt
  )");
  ASSERT_TRUE(img.ok());
  auto i = isa::decode(img->text().bytes);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->imm, ';');
}

}  // namespace
}  // namespace zipr::assembler
