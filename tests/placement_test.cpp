// Direct unit tests for the placement strategies (paper Sec. III), driving
// them against hand-built memory-space states.
#include <gtest/gtest.h>

#include "zipr/placement.h"

namespace zipr::rewriter {
namespace {

constexpr std::uint64_t kBase = 0x400000;

// A space with three free ranges: [base+0x10, +0x30), [base+0x100, +0x110),
// [base+0x800, +0xc00).
MemorySpace fragmented() {
  MemorySpace s({kBase, kBase + 0x1000});
  EXPECT_TRUE(s.reserve(kBase, 0x10).ok());
  EXPECT_TRUE(s.reserve(kBase + 0x30, 0xd0).ok());
  EXPECT_TRUE(s.reserve(kBase + 0x110, 0x6f0).ok());
  EXPECT_TRUE(s.reserve(kBase + 0xc00, 0x400).ok());
  return s;
}

PlacementRequest req(std::uint64_t size, std::optional<std::uint64_t> preferred = {}) {
  PlacementRequest r;
  r.size = size;
  r.min_viable = 10;
  r.preferred = preferred;
  return r;
}

TEST(Nearfit, PicksRangeNearestPreferred) {
  MemorySpace s = fragmented();
  auto p = make_placement(PlacementKind::kNearfit, 1, {});
  auto iv = p->pick(s, req(0x8, kBase + 0x105));
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->begin, kBase + 0x100);

  iv = p->pick(s, req(0x8, kBase + 0x20));
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->begin, kBase + 0x10);
}

TEST(Nearfit, PrefersWholeFitOverNearerFragment) {
  MemorySpace s = fragmented();
  auto p = make_placement(PlacementKind::kNearfit, 1, {});
  // 0x80 bytes fit only in the big range, even though smaller ranges are
  // nearer to the preferred point.
  auto iv = p->pick(s, req(0x80, kBase + 0x20));
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->begin, kBase + 0x800);
}

TEST(Nearfit, FallsBackToViableFragment) {
  MemorySpace s({kBase, kBase + 0x100});
  ASSERT_TRUE(s.reserve(kBase + 0x20, 0xe0).ok());  // only [base, +0x20) free
  auto p = make_placement(PlacementKind::kNearfit, 1, {});
  auto iv = p->pick(s, req(0x1000, kBase));  // nothing fits whole
  ASSERT_TRUE(iv.has_value());               // but the fragment is viable
  EXPECT_EQ(iv->begin, kBase);
}

TEST(Nearfit, NulloptWhenNothingViable) {
  MemorySpace s({kBase, kBase + 0x100});
  ASSERT_TRUE(s.reserve(kBase, 0xfc).ok());  // 4 bytes left < min_viable
  auto p = make_placement(PlacementKind::kNearfit, 1, {});
  EXPECT_FALSE(p->pick(s, req(0x40, kBase)).has_value());
}

TEST(Diversity, SeedChangesChoice) {
  auto base_choice = [&](std::uint64_t seed) {
    MemorySpace s = fragmented();
    auto p = make_placement(PlacementKind::kDiversity, seed, {});
    auto iv = p->pick(s, req(0x8));
    return iv ? iv->begin : 0;
  };
  std::set<std::uint64_t> begins;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) begins.insert(base_choice(seed));
  EXPECT_GE(begins.size(), 3u) << "diversity should explore different placements";
}

TEST(Diversity, StaysWithinFreeSpace) {
  MemorySpace s = fragmented();
  auto p = make_placement(PlacementKind::kDiversity, 7, {});
  for (int i = 0; i < 50; ++i) {
    auto iv = p->pick(s, req(0x8));
    ASSERT_TRUE(iv.has_value());
    EXPECT_TRUE(s.is_free(iv->begin, 0x8)) << hex_addr(iv->begin);
  }
}

TEST(PinPage, PrefersPinnedPages) {
  // Free ranges on two pages; only the second page holds a pin.
  MemorySpace s({kBase, kBase + 0x2000});
  ASSERT_TRUE(s.reserve(kBase, 0xf00).ok());          // page 0: [f00,1000) free
  ASSERT_TRUE(s.reserve(kBase + 0x1000, 0xe00).ok()); // page 1: [1e00,2000) free
  std::set<std::uint64_t> pinned_pages{kBase + 0x1000};
  auto p = make_placement(PlacementKind::kPinPage, 1, pinned_pages);
  auto iv = p->pick(s, req(0x40));
  ASSERT_TRUE(iv.has_value());
  EXPECT_GE(iv->begin, kBase + 0x1000) << "should fill the pinned page first";
}

TEST(PinPage, FillsSmallestViableFragmentFirst) {
  MemorySpace s = fragmented();
  std::set<std::uint64_t> pinned_pages{kBase & ~0xfffull};  // everything on page 0
  auto p = make_placement(PlacementKind::kPinPage, 1, pinned_pages);
  auto iv = p->pick(s, req(0x8));
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->begin, kBase + 0x100);  // the 0x10-byte fragment
}

TEST(AllStrategies, RespectMinViable) {
  MemorySpace s({kBase, kBase + 0x100});
  ASSERT_TRUE(s.reserve(kBase + 0x8, 0xf8).ok());  // 8 free bytes < min_viable 10
  for (auto kind :
       {PlacementKind::kNearfit, PlacementKind::kDiversity, PlacementKind::kPinPage}) {
    auto p = make_placement(kind, 3, {});
    EXPECT_FALSE(p->pick(s, req(0x40)).has_value()) << placement_kind_name(kind);
  }
}

}  // namespace
}  // namespace zipr::rewriter
